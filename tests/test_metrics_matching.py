"""Unit tests for detection-to-GT matching with ignore handling."""

import numpy as np
import pytest

from repro.datasets.types import FrameAnnotations
from repro.detections import Detections
from repro.metrics.matching import match_frame


def annotations(boxes, labels=None, track_ids=None, occ=None, trunc=None):
    boxes = np.asarray(boxes, dtype=float).reshape(-1, 4)
    n = boxes.shape[0]
    return FrameAnnotations(
        frame=0,
        boxes=boxes,
        labels=np.zeros(n, dtype=int) if labels is None else np.asarray(labels),
        track_ids=np.arange(n) if track_ids is None else np.asarray(track_ids),
        occlusion=np.zeros(n) if occ is None else np.asarray(occ),
        truncation=np.zeros(n) if trunc is None else np.asarray(trunc),
    )


def detections(boxes, scores, labels=None):
    boxes = np.asarray(boxes, dtype=float).reshape(-1, 4)
    n = boxes.shape[0]
    return Detections(
        boxes,
        np.asarray(scores, dtype=float),
        np.zeros(n, dtype=int) if labels is None else np.asarray(labels),
    )


class TestMatchFrame:
    def test_simple_tp(self):
        ann = annotations([[0, 0, 100, 100]])
        det = detections([[2, 2, 98, 98]], [0.9])
        res = match_frame(det, ann, 0, 0.5, np.array([True]))
        assert res.det_tp.tolist() == [True]
        assert res.num_gt == 1
        assert res.gt_matched_scores[0] == pytest.approx(0.9)

    def test_low_iou_is_fp(self):
        ann = annotations([[0, 0, 100, 100]])
        det = detections([[80, 80, 200, 200]], [0.9])
        res = match_frame(det, ann, 0, 0.5, np.array([True]))
        assert res.det_tp.tolist() == [False]
        assert res.gt_matched_scores[0] == -np.inf

    def test_greedy_by_score(self):
        """The higher-scoring detection claims the ground truth."""
        ann = annotations([[0, 0, 100, 100]])
        det = detections([[0, 0, 100, 100], [1, 1, 99, 99]], [0.5, 0.9])
        res = match_frame(det, ann, 0, 0.5, np.array([True]))
        # Detection order is by descending score; the 0.9 one wins.
        assert res.det_scores.tolist() == [0.9, 0.5]
        assert res.det_tp.tolist() == [True, False]
        assert res.gt_matched_scores[0] == pytest.approx(0.9)

    def test_one_gt_matched_once(self):
        ann = annotations([[0, 0, 100, 100]])
        det = detections(
            [[0, 0, 100, 100], [0, 0, 100, 100], [0, 0, 100, 100]], [0.9, 0.8, 0.7]
        )
        res = match_frame(det, ann, 0, 0.5, np.array([True]))
        assert res.det_tp.sum() == 1

    def test_ignored_gt_absorbs_detection(self):
        """Detections on ignored GT are neither TP nor FP (KITTI rule)."""
        ann = annotations([[0, 0, 100, 100]])
        det = detections([[0, 0, 100, 100]], [0.9])
        res = match_frame(det, ann, 0, 0.5, np.array([False]))
        assert res.det_tp.tolist() == [False]
        assert res.det_ignored.tolist() == [True]
        assert res.num_gt == 0

    def test_class_filtering(self):
        ann = annotations([[0, 0, 100, 100]], labels=[1])
        det = detections([[0, 0, 100, 100]], [0.9], labels=[0])
        res = match_frame(det, ann, 0, 0.5, np.array([True]))
        assert res.det_tp.tolist() == [False]  # class 0 det, class 1 GT
        assert res.num_gt == 0  # no class-0 GT

    def test_class_specific_iou_threshold(self):
        ann = annotations([[0, 0, 100, 100]])
        det = detections([[0, 0, 100, 60]], [0.9])  # IoU 0.6
        res_strict = match_frame(det, ann, 0, 0.7, np.array([True]))
        res_loose = match_frame(det, ann, 0, 0.5, np.array([True]))
        assert res_strict.det_tp.tolist() == [False]
        assert res_loose.det_tp.tolist() == [True]

    def test_gt_track_ids_include_ignored(self):
        """Delay needs matched scores for ignored (pre-difficulty) frames too."""
        ann = annotations([[0, 0, 100, 100], [200, 0, 220, 20]], track_ids=[7, 9])
        det = detections([[200, 0, 220, 20]], [0.8])
        care = np.array([True, False])
        res = match_frame(det, ann, 0, 0.5, care)
        assert res.gt_track_ids.tolist() == [7, 9]
        assert res.gt_care.tolist() == [True, False]
        assert res.gt_matched_scores[1] == pytest.approx(0.8)

    def test_care_length_mismatch_raises(self):
        ann = annotations([[0, 0, 1, 1]])
        det = detections([[0, 0, 1, 1]], [0.5])
        with pytest.raises(ValueError, match="care"):
            match_frame(det, ann, 0, 0.5, np.array([True, False]))

    def test_empty_detections(self):
        ann = annotations([[0, 0, 100, 100]])
        res = match_frame(Detections.empty(), ann, 0, 0.5, np.array([True]))
        assert res.det_tp.shape == (0,)
        assert res.num_gt == 1
        assert res.gt_matched_scores[0] == -np.inf

    def test_empty_annotations(self):
        ann = annotations(np.zeros((0, 4)))
        det = detections([[0, 0, 10, 10]], [0.5])
        res = match_frame(det, ann, 0, 0.5, np.zeros(0, dtype=bool))
        assert res.det_tp.tolist() == [False]
        assert res.num_gt == 0
