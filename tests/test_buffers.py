"""Columnar accumulators: DetectionsBuffer and FrameResultBuffer.

Both must round-trip appended values bit-identically and behave like the
plain-list containers they replaced (len/iter/index/slice/zip).
"""

import numpy as np
import pytest

from repro.core.results import FrameResult, FrameResultBuffer, FrameTiming, OpsAccount
from repro.detections import Detections, DetectionsBuffer


def _dets(rng, n):
    xy = rng.uniform(0, 500, size=(n, 2))
    return Detections(
        np.concatenate([xy, xy + rng.uniform(5, 80, size=(n, 2))], axis=1),
        rng.uniform(0, 1, size=n),
        rng.integers(0, 4, size=n),
    )


class TestDetectionsBuffer:
    def test_round_trip_bit_identical(self):
        rng = np.random.default_rng(0)
        frames = [_dets(rng, int(n)) for n in rng.integers(0, 12, size=40)]
        buf = DetectionsBuffer(capacity_rows=4, capacity_frames=2)  # force growth
        for d in frames:
            buf.append(d)
        assert len(buf) == len(frames)
        assert buf.num_rows == sum(len(d) for d in frames)
        for i, d in enumerate(frames):
            got = buf.frame(i)
            np.testing.assert_array_equal(got.boxes, d.boxes)
            np.testing.assert_array_equal(got.scores, d.scores)
            np.testing.assert_array_equal(got.labels, d.labels)

    def test_track_ids_stored_and_defaulted(self):
        rng = np.random.default_rng(1)
        buf = DetectionsBuffer()
        buf.append(_dets(rng, 3), track_ids=np.array([7, 8, 9]))
        buf.append(_dets(rng, 2))
        np.testing.assert_array_equal(buf.frame_track_ids(0), [7, 8, 9])
        np.testing.assert_array_equal(buf.frame_track_ids(1), [-1, -1])

    def test_track_id_length_validated(self):
        buf = DetectionsBuffer()
        with pytest.raises(ValueError, match="track_ids"):
            buf.append(_dets(np.random.default_rng(2), 3), track_ids=np.array([1]))

    def test_negative_and_out_of_range_index(self):
        rng = np.random.default_rng(3)
        frames = [_dets(rng, 2), _dets(rng, 5)]
        buf = DetectionsBuffer()
        for d in frames:
            buf.append(d)
        np.testing.assert_array_equal(buf.frame(-1).boxes, frames[-1].boxes)
        with pytest.raises(IndexError):
            buf.frame(2)
        with pytest.raises(IndexError):
            buf.frame(-3)

    def test_column_views_concatenate_in_order(self):
        rng = np.random.default_rng(4)
        frames = [_dets(rng, 3), _dets(rng, 0), _dets(rng, 4)]
        buf = DetectionsBuffer()
        for d in frames:
            buf.append(d)
        np.testing.assert_array_equal(
            buf.boxes, np.concatenate([d.boxes for d in frames])
        )
        np.testing.assert_array_equal(
            buf.scores, np.concatenate([d.scores for d in frames])
        )
        np.testing.assert_array_equal(
            buf.labels, np.concatenate([d.labels for d in frames])
        )


def _frame_result(rng, frame, timed):
    return FrameResult(
        frame=frame,
        detections=_dets(rng, int(rng.integers(0, 8))),
        ops=OpsAccount(
            proposal=float(rng.uniform(0, 1e9)),
            refinement=float(rng.uniform(0, 1e9)),
            refinement_from_tracker=float(rng.uniform(0, 1e9)),
            refinement_from_proposal=float(rng.uniform(0, 1e9)),
        ),
        num_regions=int(rng.integers(0, 20)),
        coverage_fraction=float(rng.uniform(0, 1)),
        timing=FrameTiming(
            gpu_seconds=float(rng.uniform(0, 0.1)),
            cpu_seconds=float(rng.uniform(0, 0.1)),
            num_launches=float(rng.integers(1, 9)),
        )
        if timed
        else None,
    )


class TestFrameResultBuffer:
    def _filled(self, n=50, timed_every=3):
        rng = np.random.default_rng(5)
        originals = [
            _frame_result(rng, i, timed=(i % timed_every == 0)) for i in range(n)
        ]
        buf = FrameResultBuffer(capacity=2)  # force growth
        for r in originals:
            buf.append(r)
        return originals, buf

    def test_round_trip_bit_identical(self):
        originals, buf = self._filled()
        assert len(buf) == len(originals)
        for got, want in zip(buf, originals):
            assert got.frame == want.frame
            np.testing.assert_array_equal(got.detections.boxes, want.detections.boxes)
            np.testing.assert_array_equal(got.detections.scores, want.detections.scores)
            np.testing.assert_array_equal(got.detections.labels, want.detections.labels)
            assert got.ops.proposal == want.ops.proposal
            assert got.ops.refinement == want.ops.refinement
            assert got.ops.refinement_from_tracker == want.ops.refinement_from_tracker
            assert got.ops.refinement_from_proposal == want.ops.refinement_from_proposal
            assert got.num_regions == want.num_regions
            assert got.coverage_fraction == want.coverage_fraction
            if want.timing is None:
                assert got.timing is None
            else:
                assert got.timing == want.timing

    def test_sequence_protocol(self):
        originals, buf = self._filled(n=10)
        assert buf[0].frame == originals[0].frame
        assert buf[-1].frame == originals[-1].frame
        assert [r.frame for r in buf[2:5]] == [2, 3, 4]
        assert isinstance(buf[2:5], list)
        with pytest.raises(IndexError):
            buf[10]
        assert len(list(zip(buf, originals))) == 10

    def test_materialized_results_are_independent(self):
        _, buf = self._filled(n=4)
        a, b = buf[1], buf[1]
        a.ops.proposal = -1.0
        assert b.ops.proposal != -1.0
