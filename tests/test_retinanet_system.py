"""Tests for the RetinaNet-based systems (paper Appendix II)."""

import pytest

from repro.core.config import SystemConfig
from repro.core.systems import CaTDetSystem, SingleModelSystem


class TestRetinaNetSingle:
    def test_ops_match_analytic_model(self, kitti_sequence):
        system = SingleModelSystem("retinanet50", seed=0)
        result = system.process_sequence(kitti_sequence)
        assert result.frames[0].ops.total == pytest.approx(94.2e9, rel=0.1)

    def test_detects_objects(self, kitti_sequence):
        system = SingleModelSystem("retinanet50", seed=0)
        result = system.process_sequence(kitti_sequence)
        assert sum(len(f.detections) for f in result.frames) > 0


class TestRetinaNetCaTDet:
    def test_regional_ops_scale_with_coverage(self, kitti_sequence):
        """RetinaNet has no per-proposal head: regional cost is coverage *
        full cost, so refinement ops track the coverage fraction."""
        system = CaTDetSystem("resnet10a", "retinanet50", seed=0)
        result = system.process_sequence(kitti_sequence)
        full = SingleModelSystem("retinanet50", seed=0).process_sequence(
            kitti_sequence
        ).frames[0].ops.total
        for frame in result.frames[5:15]:
            expected = full * frame.coverage_fraction
            assert frame.ops.refinement == pytest.approx(expected, rel=1e-6)

    def test_cheaper_than_single(self, kitti_sequence):
        single = SingleModelSystem("retinanet50", seed=0)
        catdet = CaTDetSystem("resnet10a", "retinanet50", seed=0)
        ops_single = single.process_sequence(kitti_sequence).mean_ops().total
        ops_catdet = catdet.process_sequence(kitti_sequence).mean_ops().total
        assert ops_catdet < ops_single

    def test_config_builds(self, kitti_small):
        from repro.core.pipeline import run_on_dataset

        run = run_on_dataset(
            SystemConfig("catdet", "retinanet50", "resnet10a"),
            kitti_small,
            max_sequences=1,
        )
        assert run.mean_ops_gops() > 0
