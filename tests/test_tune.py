"""Closed-loop policy tuning tests (``repro serve --tune``).

The scenario is the regime micro-batching exists for: a device with a
large per-invocation overhead (50 ms) under a load that saturates the
unbatched server.  Batch-size 1 policies blow the p99 target, batch-8
policies meet it — the tuner must pick a feasible point, report the
infeasible ones as such, and serve a complete re-tune from the cache.
"""

import pytest

from repro.api.session import Session
from repro.api.spec import DatasetSpec, ServeSpec
from repro.core.config import SystemConfig
from repro.serve import LoadSpec, ServePolicy, ServiceModel
from repro.serve.tune import tune_policy

SLO_P99_MS = 300.0
BATCH_GRID = (1, 8)
WAIT_GRID = (0.0, 40.0)


def _base_spec():
    return ServeSpec(
        system=SystemConfig("catdet", "resnet50", "resnet10a", detailed_ops=False),
        dataset=DatasetSpec("kitti", num_sequences=2, frames_per_sequence=20),
        load=LoadSpec(
            pattern="uniform", num_streams=2, rate_hz=10.0, frames_per_stream=15
        ),
        policy=ServePolicy(slo_ms=500.0),
        # Overhead-dominated accelerator: unbatched service costs 100 ms
        # per frame against a 100 ms per-stream inter-arrival — saturated.
        service=ServiceModel(invocation_overhead_ms=50.0, gops_per_second=1e6),
    )


@pytest.fixture(scope="module")
def tuned(tmp_path_factory):
    session = Session(cache_dir=tmp_path_factory.mktemp("tune-cache"))
    result = session.tune_serve(
        _base_spec(),
        slo_p99_ms=SLO_P99_MS,
        batch_sizes=BATCH_GRID,
        max_waits_ms=WAIT_GRID,
    )
    return session, result


class TestTunePolicy:
    def test_best_meets_slo_and_rejected_does_not(self, tuned):
        _, result = tuned
        assert result.best is not None
        assert result.best.feasible
        assert result.best.p99_ms <= SLO_P99_MS
        assert result.best.report.frames_shed == 0
        rejected = [c for c in result.candidates if not c.feasible]
        assert rejected, "the grid must contain an infeasible policy"
        assert all(c.p99_ms > SLO_P99_MS for c in rejected)
        # The saturating unbatched policies are the infeasible ones.
        assert {c.spec.policy.max_batch_size for c in rejected} == {1}
        assert result.best.spec.policy.max_batch_size == 8

    def test_best_is_cheapest_feasible(self, tuned):
        _, result = tuned
        feasible = [c for c in result.candidates if c.feasible]
        assert result.best.cost_seconds == min(c.cost_seconds for c in feasible)

    def test_grid_covers_all_points(self, tuned):
        _, result = tuned
        points = {
            (c.spec.policy.max_batch_size, c.spec.policy.max_wait_ms)
            for c in result.candidates
        }
        assert points == {(b, w) for b in BATCH_GRID for w in WAIT_GRID}

    def test_retune_is_pure_cache_hits(self, tuned):
        session, first = tuned
        hits_before = session.cache_hits
        misses_before = session.cache_misses
        again = session.tune_serve(
            _base_spec(),
            slo_p99_ms=SLO_P99_MS,
            batch_sizes=BATCH_GRID,
            max_waits_ms=WAIT_GRID,
        )
        assert session.cache_misses == misses_before  # zero new computes
        # Aliases never touch the cache: only canonical points are served.
        unique = [c for c in first.candidates if c.alias_of is None]
        assert session.cache_hits == hits_before + len(unique)
        assert again.best.spec.fingerprint == first.best.spec.fingerprint
        assert again.best.report.to_dict() == first.best.report.to_dict()

    def test_format_names_best_policy(self, tuned):
        _, result = tuned
        text = result.format()
        assert "Policy sweep" in text
        assert "best policy: max_batch_size=8" in text

    def test_candidates_surface_cost_per_frame(self, tuned):
        import math

        _, result = tuned
        for cand in result.candidates:
            if cand.report.frames_served:
                cpf = cand.cost_per_frame
                assert math.isfinite(cpf) and cpf >= 0.0
                rate = cand.spec.service.cost_model().profile.cost_per_second
                assert cpf == pytest.approx(
                    cand.cost_seconds * rate / cand.report.frames_served
                )
        assert "cost/kf" in result.format()

    def test_infeasible_everywhere_returns_none(self, tuned):
        session, _ = tuned
        result = tune_policy(
            session,
            _base_spec(),
            slo_p99_ms=1.0,  # nothing meets 1 ms end-to-end
            batch_sizes=BATCH_GRID,
            max_waits_ms=WAIT_GRID,
        )
        assert result.best is None
        assert "infeasible" in result.format()

    def test_validation(self, tuned):
        session, _ = tuned
        with pytest.raises(ValueError, match="slo_p99_ms"):
            tune_policy(session, _base_spec(), slo_p99_ms=0.0)
        with pytest.raises(ValueError, match="non-empty"):
            tune_policy(
                session, _base_spec(), slo_p99_ms=100.0, batch_sizes=()
            )

    def test_progress_callback_fires_per_point(self, tuned):
        session, _ = tuned
        seen = []
        tune_policy(
            session,
            _base_spec(),
            slo_p99_ms=SLO_P99_MS,
            batch_sizes=BATCH_GRID,
            max_waits_ms=WAIT_GRID,
            on_progress=lambda done, total, label: seen.append((done, total)),
        )
        assert seen == [(i + 1, 4) for i in range(4)]


class TestGridDedupe:
    def test_wait_axis_collapses_at_batch_one(self, tuned):
        """Any ``max_wait_ms`` at ``max_batch_size=1`` is the same
        effective policy: one simulation, the rest are marked aliases."""
        _, result = tuned
        aliases = [c for c in result.candidates if c.alias_of is not None]
        assert len(aliases) == 1
        (alias,) = aliases
        assert alias.spec.policy.max_batch_size == 1
        assert alias.spec.policy.max_wait_ms == 40.0
        assert alias.alias_of == "batch=1 wait=0ms"
        canonical = next(
            c for c in result.candidates
            if c.spec.policy.max_batch_size == 1
            and c.spec.policy.max_wait_ms == 0.0
        )
        assert canonical.alias_of is None
        assert alias.report is canonical.report
        assert alias.feasible == canonical.feasible

    def test_cold_sweep_simulates_only_unique_points(self, tmp_path):
        session = Session(cache_dir=tmp_path / "cache")
        result = session.tune_serve(
            _base_spec(),
            slo_p99_ms=SLO_P99_MS,
            batch_sizes=BATCH_GRID,
            max_waits_ms=WAIT_GRID,
        )
        unique = [c for c in result.candidates if c.alias_of is None]
        assert len(unique) == 3  # (1,*) collapsed; (8,0) and (8,40) distinct
        assert session.cache_misses == len(unique)

    def test_best_is_never_an_alias(self, tuned):
        _, result = tuned
        assert result.best.alias_of is None

    def test_format_marks_aliases(self, tuned):
        _, result = tuned
        assert "= batch=1 wait=0ms" in result.format()


class TestParallelSweep:
    def test_workers_match_serial_byte_for_byte(self, tmp_path):
        serial_session = Session(cache_dir=tmp_path / "a")
        serial = serial_session.tune_serve(
            _base_spec(),
            slo_p99_ms=SLO_P99_MS,
            batch_sizes=BATCH_GRID,
            max_waits_ms=WAIT_GRID,
        )
        par_session = Session(cache_dir=tmp_path / "b")
        par = par_session.tune_serve(
            _base_spec(),
            slo_p99_ms=SLO_P99_MS,
            batch_sizes=BATCH_GRID,
            max_waits_ms=WAIT_GRID,
            workers=2,
        )
        assert par.best.spec.fingerprint == serial.best.spec.fingerprint
        for a, b in zip(serial.candidates, par.candidates):
            assert a.spec.fingerprint == b.spec.fingerprint
            assert a.feasible == b.feasible
            assert a.alias_of == b.alias_of
            assert a.report.to_dict() == b.report.to_dict()

    def test_parallel_progress_covers_every_point_once(self, tmp_path):
        session = Session(cache_dir=tmp_path / "cache")
        seen = []
        session.tune_serve(
            _base_spec(),
            slo_p99_ms=SLO_P99_MS,
            batch_sizes=BATCH_GRID,
            max_waits_ms=WAIT_GRID,
            workers=2,
            on_progress=lambda done, total, label: seen.append(
                (done, total, label)
            ),
        )
        # As-completed ordering, but the counter is dense and total fixed.
        assert [d for d, _, _ in seen] == [1, 2, 3, 4]
        assert all(t == 4 for _, t, _ in seen)
        labels = {label.split(" (= ")[0] for _, _, label in seen}
        assert labels == {
            f"batch={b} wait={w:g}ms" for b in BATCH_GRID for w in WAIT_GRID
        }

    def test_parallel_retune_is_serial_cache_hits(self, tmp_path):
        """A warm re-tune never spawns a pool: every unique point is
        already cached, so hits land on the parent session."""
        session = Session(cache_dir=tmp_path / "cache")
        first = session.tune_serve(
            _base_spec(),
            slo_p99_ms=SLO_P99_MS,
            batch_sizes=BATCH_GRID,
            max_waits_ms=WAIT_GRID,
            workers=2,
        )
        hits_before = session.cache_hits
        again = session.tune_serve(
            _base_spec(),
            slo_p99_ms=SLO_P99_MS,
            batch_sizes=BATCH_GRID,
            max_waits_ms=WAIT_GRID,
            workers=2,
        )
        unique = [c for c in first.candidates if c.alias_of is None]
        assert session.cache_hits == hits_before + len(unique)
        assert again.best.report.to_dict() == first.best.report.to_dict()


class TestQueueWaitBound:
    def test_wait_bound_tightens_feasibility(self, tuned):
        """A generous p99 with a tiny queue-wait bound must reject more
        candidates than the p99 target alone."""
        session, _ = tuned
        unbounded = tune_policy(
            session, _base_spec(), slo_p99_ms=10_000.0,
            batch_sizes=BATCH_GRID, max_waits_ms=WAIT_GRID,
        )
        bounded = tune_policy(
            session, _base_spec(), slo_p99_ms=10_000.0, slo_wait_p95_ms=0.001,
            batch_sizes=BATCH_GRID, max_waits_ms=WAIT_GRID,
        )
        assert all(c.feasible for c in unbounded.candidates)
        assert not any(c.feasible for c in bounded.candidates)
        assert bounded.best is None
        assert bounded.slo_wait_p95_ms == 0.001
        # The verdict names the wait bound, not just the p99 target.
        assert "queue-wait p95" in bounded.format()

    def test_loose_wait_bound_changes_nothing(self, tuned):
        session, _ = tuned
        plain = tune_policy(
            session, _base_spec(), slo_p99_ms=SLO_P99_MS,
            batch_sizes=BATCH_GRID, max_waits_ms=WAIT_GRID,
        )
        bounded = tune_policy(
            session, _base_spec(), slo_p99_ms=SLO_P99_MS,
            slo_wait_p95_ms=1e6,
            batch_sizes=BATCH_GRID, max_waits_ms=WAIT_GRID,
        )
        assert [c.feasible for c in bounded.candidates] == [
            c.feasible for c in plain.candidates
        ]
        assert bounded.best.spec.fingerprint == plain.best.spec.fingerprint

    def test_candidates_surface_wait_percentile(self, tuned):
        _, result = tuned
        assert all(c.wait_p95_ms >= 0.0 for c in result.candidates)
        # Saturating unbatched policies park frames in the queue; the
        # batched ones drain it — waits must reflect that ordering.
        slow = max(c.wait_p95_ms for c in result.candidates
                   if c.spec.policy.max_batch_size == 1)
        fast = min(c.wait_p95_ms for c in result.candidates
                   if c.spec.policy.max_batch_size == 8)
        assert slow > fast

    def test_validation(self, tuned):
        session, _ = tuned
        with pytest.raises(ValueError, match="slo_wait_p95_ms"):
            tune_policy(
                session, _base_spec(), slo_p99_ms=100.0, slo_wait_p95_ms=0.0
            )
