"""Tests for dataset statistics, MOT metrics and the calibration report."""

import numpy as np
import pytest

from repro.datasets.statistics import compute_statistics
from repro.datasets.types import ObjectTrack, Sequence
from repro.harness.calibration import (
    CalibrationRow,
    calibration_report,
    max_absolute_error,
)
from repro.harness.experiment import standard_kitti
from repro.tracker.mot_metrics import (
    MotAccumulator,
    evaluate_tracking,
    hypothesis_frames_from_tracklets,
)
from repro.tracker.sort import Sort, SortConfig
from repro.detections import Detections


class TestDatasetStatistics:
    def test_counts(self, kitti_small):
        stats = compute_statistics(kitti_small)
        assert stats.num_sequences == len(kitti_small.sequences)
        assert stats.num_tracks == kitti_small.total_objects
        assert stats.num_instances > 0
        assert stats.instances_per_frame > 1.0

    def test_per_class_names(self, kitti_small):
        stats = compute_statistics(kitti_small)
        assert {c.name for c in stats.per_class} == {"Car", "Pedestrian"}
        with pytest.raises(KeyError):
            stats.class_stats("Bike")

    def test_cars_wider_than_pedestrians(self, kitti_small):
        stats = compute_statistics(kitti_small)
        car = stats.class_stats("Car")
        ped = stats.class_stats("Pedestrian")
        assert car.width_percentiles[1] > ped.width_percentiles[1]
        # And pedestrians are taller than wide.
        assert ped.height_percentiles[1] > ped.width_percentiles[1]

    def test_occlusion_present(self, kitti_small):
        stats = compute_statistics(kitti_small)
        for cs in stats.per_class:
            assert 0.0 < cs.occluded_fraction < 1.0

    def test_summary_renders(self, kitti_small):
        text = compute_statistics(kitti_small).summary()
        assert "Car" in text and "width" in text


class TestMotAccumulator:
    def test_perfect_tracking(self):
        acc = MotAccumulator()
        boxes = np.array([[0, 0, 10, 10], [50, 50, 70, 70]])
        ids = np.array([1, 2])
        for _ in range(5):
            acc.update(boxes, ids, boxes, ids)
        assert acc.mota == pytest.approx(1.0)
        assert acc.motp == pytest.approx(1.0)
        assert acc.id_switches == 0

    def test_misses_counted(self):
        acc = MotAccumulator()
        boxes = np.array([[0, 0, 10, 10]])
        acc.update(boxes, np.array([1]), np.zeros((0, 4)), np.zeros(0, dtype=int))
        assert acc.misses == 1
        assert acc.mota == pytest.approx(0.0)

    def test_false_positives_counted(self):
        acc = MotAccumulator()
        acc.update(
            np.zeros((0, 4)), np.zeros(0, dtype=int),
            np.array([[0, 0, 10, 10]]), np.array([9]),
        )
        assert acc.false_positives == 1

    def test_id_switch_detected(self):
        acc = MotAccumulator()
        box = np.array([[0, 0, 10, 10]])
        acc.update(box, np.array([1]), box, np.array([100]))
        acc.update(box, np.array([1]), box, np.array([200]))  # identity change
        assert acc.id_switches == 1

    def test_low_iou_is_miss_plus_fp(self):
        acc = MotAccumulator()
        acc.update(
            np.array([[0, 0, 10, 10]]), np.array([1]),
            np.array([[100, 100, 110, 110]]), np.array([5]),
        )
        assert acc.misses == 1 and acc.false_positives == 1

    def test_length_validation(self):
        acc = MotAccumulator()
        with pytest.raises(ValueError, match="gt_boxes"):
            acc.update(np.zeros((1, 4)), np.zeros(2, dtype=int),
                       np.zeros((0, 4)), np.zeros(0, dtype=int))


class TestEvaluateTracking:
    def test_sort_on_clean_detections(self, kitti_sequence):
        """SORT fed with ground truth must track near-perfectly."""
        sort = Sort(SortConfig(min_hits=1, max_age=2))
        for frame in range(kitti_sequence.num_frames):
            ann = kitti_sequence.annotations(frame)
            sort.update(
                Detections(ann.boxes, np.ones(len(ann)), ann.labels)
            )
        hyps = hypothesis_frames_from_tracklets(
            sort.tracklets, kitti_sequence.num_frames
        )
        acc = evaluate_tracking(kitti_sequence, hyps, min_gt_height=10.0)
        assert acc.mota > 0.85
        assert acc.motp > 0.9

    def test_frame_count_validation(self, kitti_sequence):
        with pytest.raises(ValueError, match="hypothesis frames"):
            evaluate_tracking(kitti_sequence, [])


class TestCalibrationReport:
    def test_report_structure(self):
        ds = standard_kitti(1, 40)
        rows = calibration_report(ds, models=("resnet10b",))
        assert len(rows) == 1
        row = rows[0]
        assert row.model == "resnet10b"
        assert 0.0 < row.measured_map < 1.0
        assert row.error is not None

    def test_max_absolute_error(self):
        rows = [
            CalibrationRow("a", 0.7, 0.74),
            CalibrationRow("b", 0.5, 0.48),
            CalibrationRow("c", 0.9, None),
        ]
        assert max_absolute_error(rows) == pytest.approx(0.04)
        with pytest.raises(ValueError, match="targets"):
            max_absolute_error([CalibrationRow("c", 0.9, None)])

    def test_zoo_stays_calibrated(self):
        """Regression tripwire: the zoo must stay within 8 points of the
        paper's single-model accuracies on a mid-size dataset."""
        ds = standard_kitti(4, 80)
        rows = calibration_report(ds, models=("resnet50", "resnet10a", "resnet10b"))
        assert max_absolute_error(rows) < 0.08
