"""End-to-end integration tests: the paper's qualitative claims must hold.

These run the full pipeline (world -> detectors -> systems -> metrics) on a
small dataset and assert the *shape* results of the paper: ops savings,
cascade/CaTDet accuracy relationships, tracker value, delay behavior.
"""

import numpy as np
import pytest

from repro.core.config import SystemConfig
from repro.core.pipeline import run_on_dataset
from repro.metrics.evaluate import evaluate_dataset
from repro.metrics.kitti_eval import HARD, MODERATE


@pytest.fixture(scope="module")
def runs(kitti_small):
    """Shared system runs on the small KITTI dataset."""
    configs = {
        "single50": SystemConfig("single", "resnet50"),
        "single10a": SystemConfig("single", "resnet10a"),
        "cascade": SystemConfig("cascade", "resnet50", "resnet10a"),
        "catdet": SystemConfig("catdet", "resnet50", "resnet10a"),
    }
    out = {}
    for key, config in configs.items():
        run = run_on_dataset(config, kitti_small)
        out[key] = {
            "run": run,
            "hard": evaluate_dataset(kitti_small, run.detections_by_sequence, HARD),
            "moderate": evaluate_dataset(
                kitti_small, run.detections_by_sequence, MODERATE
            ),
        }
    return out


class TestOpsClaims:
    def test_catdet_saves_over_4x(self, runs):
        """Paper: 5.1-8.7x fewer operations than single-model (Table 2)."""
        single = runs["single50"]["run"].mean_ops_gops()
        catdet = runs["catdet"]["run"].mean_ops_gops()
        assert single / catdet > 4.0

    def test_cascade_cheaper_than_catdet(self, runs):
        """The tracker adds regions, hence ops (Table 2)."""
        assert (
            runs["cascade"]["run"].mean_ops_gops()
            < runs["catdet"]["run"].mean_ops_gops()
        )

    def test_proposal_net_ops_matches_single_10a(self, runs):
        """The cascade's proposal component is a full 10a pass."""
        cascade_prop = runs["cascade"]["run"].mean_ops().proposal
        single_10a = runs["single10a"]["run"].mean_ops().refinement
        assert cascade_prop == pytest.approx(single_10a, rel=0.01)


class TestAccuracyClaims:
    def test_catdet_matches_single_model_map(self, runs):
        """Paper: CaTDet has the same (or slightly better) mAP (Table 2)."""
        single = runs["single50"]["hard"].mean_ap()
        catdet = runs["catdet"]["hard"].mean_ap()
        assert catdet >= single - 0.02

    def test_cascade_loses_map(self, runs):
        """Paper: cascade drops ~0.5-1% that cannot be recovered."""
        catdet = runs["catdet"]["hard"].mean_ap()
        cascade = runs["cascade"]["hard"].mean_ap()
        assert cascade < catdet

    def test_weak_single_model_much_worse(self, runs):
        """10a alone is far below 10a+50 CaTDet (Table 4)."""
        weak = runs["single10a"]["hard"].mean_ap()
        catdet = runs["catdet"]["hard"].mean_ap()
        assert catdet > weak + 0.1

    def test_moderate_easier_than_hard(self, runs):
        for key in ("single50", "catdet"):
            assert runs[key]["moderate"].mean_ap() >= runs[key]["hard"].mean_ap() - 0.01


class TestDelayClaims:
    def test_delay_ordering_single_catdet_cascade(self, runs):
        """Paper Table 2: single <= CaTDet <= cascade in delay."""
        single = runs["single50"]["hard"].mean_delay(0.8)
        catdet = runs["catdet"]["hard"].mean_delay(0.8)
        cascade = runs["cascade"]["hard"].mean_delay(0.8)
        assert single <= catdet + 0.5
        assert catdet <= cascade + 0.3

    def test_weak_model_delay_much_worse(self, runs):
        """Paper Table 4: 10a single-model delay is worse than ResNet-50.

        The 2-sequence fixture carries sampling noise of ~1 frame, so this
        only asserts the soft ordering; the full-size claim is asserted by
        ``benchmarks/test_table4_proposal_analysis.py``.
        """
        weak = runs["single10a"]["hard"].mean_delay(0.8)
        strong = runs["single50"]["hard"].mean_delay(0.8)
        assert weak > strong - 1.0

    def test_delay_positive_but_small_for_strong_systems(self, runs):
        delay = runs["single50"]["hard"].mean_delay(0.8)
        assert 0.0 < delay < 8.0


class TestDeterminism:
    def test_full_pipeline_reproducible(self, kitti_small):
        config = SystemConfig("catdet", "resnet50", "resnet10a", seed=3)
        a = run_on_dataset(config, kitti_small)
        b = run_on_dataset(config, kitti_small)
        assert a.mean_ops_gops() == pytest.approx(b.mean_ops_gops())
        ra = evaluate_dataset(kitti_small, a.detections_by_sequence, HARD)
        rb = evaluate_dataset(kitti_small, b.detections_by_sequence, HARD)
        assert ra.mean_ap() == pytest.approx(rb.mean_ap())

    def test_seed_changes_results(self, kitti_small):
        a = run_on_dataset(
            SystemConfig("single", "resnet10b", seed=1), kitti_small
        )
        b = run_on_dataset(
            SystemConfig("single", "resnet10b", seed=2), kitti_small
        )
        da = a.detections_by_sequence[kitti_small.sequences[0].name][5]
        db = b.detections_by_sequence[kitti_small.sequences[0].name][5]
        assert len(da) != len(db) or not np.allclose(da.boxes, db.boxes)


class TestCityPersons:
    def test_cascade_gap_larger_than_kitti(self, citypersons_small):
        """Paper §7: the plain cascade loses >5% mAP on CityPersons."""
        from repro.harness.configs import CITYPERSONS_INPUT_SCALE

        def ap(kind, proposal=None):
            config = (
                SystemConfig(kind, "resnet50", proposal, num_classes=1,
                             input_scale=CITYPERSONS_INPUT_SCALE)
                if proposal
                else SystemConfig(kind, "resnet50", num_classes=1,
                                  input_scale=CITYPERSONS_INPUT_SCALE)
            )
            run = run_on_dataset(config, citypersons_small)
            res = evaluate_dataset(
                citypersons_small, run.detections_by_sequence, MODERATE,
                with_delay=False,
            )
            return res.mean_ap("voc11")

        single = ap("single")
        cascade = ap("cascade", "resnet10a")
        catdet = ap("catdet", "resnet10a")
        assert cascade < single - 0.02   # big cascade drop
        assert catdet > cascade + 0.02   # tracker recovers most of it
