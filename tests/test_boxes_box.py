"""Unit tests for the box array kernel."""

import numpy as np
import pytest

from repro.boxes.box import (
    area,
    as_boxes,
    box_center_size,
    center_size_to_boxes,
    clip_boxes,
    empty_boxes,
    expand_boxes,
    intersect_box,
    is_valid,
    scale_boxes,
    union_box,
    width_height,
)


class TestAsBoxes:
    def test_single_flat_box_promoted(self):
        out = as_boxes([0, 0, 10, 10])
        assert out.shape == (1, 4)

    def test_empty_input(self):
        assert as_boxes([]).shape == (0, 4)

    def test_copies_input(self):
        src = np.array([[0.0, 0.0, 5.0, 5.0]])
        out = as_boxes(src)
        out[0, 0] = 99.0
        assert src[0, 0] == 0.0

    def test_wrong_width_raises(self):
        with pytest.raises(ValueError, match="shape"):
            as_boxes(np.zeros((3, 5)))

    def test_flat_wrong_length_raises(self):
        with pytest.raises(ValueError, match="4 coordinates"):
            as_boxes([1, 2, 3])

    def test_validate_rejects_degenerate(self):
        with pytest.raises(ValueError, match="degenerate"):
            as_boxes([[0, 0, 0, 10]], validate=True)

    def test_validate_accepts_proper(self):
        assert as_boxes([[0, 0, 1, 1]], validate=True).shape == (1, 4)


class TestAreaAndValidity:
    def test_area_simple(self):
        assert area(np.array([[0, 0, 4, 5]]))[0] == 20.0

    def test_area_degenerate_is_zero(self):
        assert area(np.array([[5, 5, 3, 3]]))[0] == 0.0

    def test_is_valid(self):
        boxes = np.array([[0, 0, 1, 1], [0, 0, 0, 1], [2, 2, 1, 3]])
        assert is_valid(boxes).tolist() == [True, False, False]

    def test_width_height(self):
        w, h = width_height(np.array([[1, 2, 4, 8]]))
        assert w[0] == 3.0 and h[0] == 6.0


class TestConversions:
    def test_center_size_roundtrip(self):
        boxes = np.array([[10.0, 20.0, 50.0, 60.0], [0.0, 0.0, 7.0, 3.0]])
        np.testing.assert_allclose(
            center_size_to_boxes(box_center_size(boxes)), boxes
        )

    def test_center_values(self):
        cs = box_center_size(np.array([[0, 0, 10, 20]]))
        np.testing.assert_allclose(cs[0], [5, 10, 10, 20])


class TestClipExpandScale:
    def test_clip(self):
        out = clip_boxes(np.array([[-5.0, -5.0, 15.0, 8.0]]), 10, 6)
        np.testing.assert_allclose(out[0], [0, 0, 10, 6])

    def test_clip_does_not_mutate(self):
        src = np.array([[-5.0, 0.0, 5.0, 5.0]])
        clip_boxes(src, 10, 10)
        assert src[0, 0] == -5.0

    def test_expand(self):
        out = expand_boxes(np.array([[10.0, 10.0, 20.0, 20.0]]), 30.0)
        np.testing.assert_allclose(out[0], [-20, -20, 50, 50])

    def test_expand_zero_margin_identity(self):
        boxes = np.array([[1.0, 2.0, 3.0, 4.0]])
        np.testing.assert_allclose(expand_boxes(boxes, 0.0), boxes)

    def test_scale(self):
        out = scale_boxes(np.array([[1.0, 2.0, 3.0, 4.0]]), 2.0, 0.5)
        np.testing.assert_allclose(out[0], [2, 1, 6, 2])


class TestUnionIntersect:
    def test_union_box(self):
        boxes = np.array([[0, 0, 5, 5], [3, -2, 8, 4]])
        np.testing.assert_allclose(union_box(boxes), [0, -2, 8, 5])

    def test_union_empty_raises(self):
        with pytest.raises(ValueError, match="at least one"):
            union_box(empty_boxes())

    def test_intersect_overlapping(self):
        out = intersect_box([0, 0, 10, 10], [5, 5, 15, 15])
        np.testing.assert_allclose(out, [5, 5, 10, 10])

    def test_intersect_disjoint_degenerate(self):
        out = intersect_box([0, 0, 1, 1], [5, 5, 6, 6])
        assert area(out[None, :])[0] == 0.0
