"""Serving subsystem tests.

The load-bearing guarantees:

* a frame served through the batched path carries detections
  byte-identical to the offline :class:`SerialExecutor` run, for single
  streams and for every stream of a coalesced multi-stream cohort;
* the micro-batcher flushes on both of its triggers (size, deadline);
* the shedding policy drops the oldest queued frame and counts it in
  the SLO statistics;
* the load generator is deterministic under a fixed seed;
* serve specs round-trip through JSON and their reports are served
  bit-identically from the session cache.
"""

import numpy as np
import pytest

from repro.api.spec import DatasetSpec, ServeSpec
from repro.core.config import SystemConfig
from repro.core.pipeline import run_on_dataset
from repro.serve import (
    DetectionServer,
    FrameRequest,
    LoadSpec,
    MicroBatcher,
    QueuedFrame,
    ServePolicy,
    ServeReport,
    ServiceModel,
    generate_load,
)

CATDET = SystemConfig("catdet", "resnet50", "resnet10a", detailed_ops=False)
#: Modeled accelerator where per-invocation overhead matters: the regime
#: micro-batching exists for.
FAST_ACCEL = ServiceModel(invocation_overhead_ms=4.0, gops_per_second=8000.0)


def assert_frames_identical(fa, fb):
    assert fa.frame == fb.frame
    np.testing.assert_array_equal(fa.detections.boxes, fb.detections.boxes)
    np.testing.assert_array_equal(fa.detections.scores, fb.detections.scores)
    np.testing.assert_array_equal(fa.detections.labels, fb.detections.labels)
    assert fa.ops.proposal == fb.ops.proposal
    assert fa.ops.refinement == fb.ops.refinement
    assert fa.num_regions == fb.num_regions
    assert fa.coverage_fraction == fb.coverage_fraction


class TestByteIdentity:
    def test_single_stream_matches_serial_executor(self, kitti_small):
        """Acceptance gate: batched-path serving == SerialExecutor output."""
        serial = run_on_dataset(CATDET, kitti_small, workers=1)
        load = LoadSpec(pattern="replay", num_streams=1, frames_per_stream=60)
        requests = generate_load(load, kitti_small)
        report = DetectionServer(CATDET, policy=ServePolicy(max_batch_size=8)).run(
            requests
        )
        (stream_id,) = report.frame_results
        served = report.frame_results[stream_id]
        reference = serial.sequences[kitti_small.sequences[0].name].frames
        assert len(served) == len(reference) == 60
        for fa, fb in zip(served, reference):
            assert_frames_identical(fa, fb)

    @pytest.mark.parametrize(
        "config",
        [
            SystemConfig("single", "resnet10b"),
            SystemConfig("cascade", "resnet50", "resnet10a"),
            CATDET,
            SystemConfig("keyframe", "resnet50", stride=4),
        ],
        ids=lambda c: c.kind,
    )
    def test_interleaved_streams_each_match_solo_runs(self, config, kitti_small):
        """Every stream of a coalesced cohort is byte-identical to running
        its sequence alone — whatever frames it shared batches with."""
        serial = run_on_dataset(config, kitti_small, workers=1)
        load = LoadSpec(
            pattern="poisson", num_streams=2, rate_hz=8.0,
            frames_per_stream=40, seed=5,
        )
        requests = generate_load(load, kitti_small)
        report = DetectionServer(
            config, policy=ServePolicy(max_batch_size=4, max_wait_ms=50.0)
        ).run(requests)
        assert report.frames_shed == 0
        for i, sequence in enumerate(kitti_small.sequences):
            served = report.frame_results[f"s{i}:{sequence.name}"]
            reference = serial.sequences[sequence.name].frames
            assert len(served) == 40
            for fa, fb in zip(served, reference):
                assert_frames_identical(fa, fb)

    def test_rerun_on_one_server_is_identical_and_isolated(self, kitti_small):
        """run() is reentrant: a repeat of the same schedule reproduces
        the report exactly and never mutates the earlier report."""
        load = LoadSpec(pattern="uniform", num_streams=2, rate_hz=10.0,
                        frames_per_stream=12)
        server = DetectionServer(CATDET, policy=ServePolicy(max_batch_size=4))
        first = server.run(generate_load(load, kitti_small))
        first_lengths = {s: len(r) for s, r in first.frame_results.items()}
        second = server.run(generate_load(load, kitti_small))
        assert first.to_dict() == second.to_dict()
        # The earlier report's per-stream results must not have grown.
        assert {s: len(r) for s, r in first.frame_results.items()} == first_lengths
        for stream, results in second.frame_results.items():
            for fa, fb in zip(first.frame_results[stream], results):
                assert_frames_identical(fa, fb)

    def test_batching_coalesces_detector_invocations(self, kitti_small):
        """Same frames, strictly fewer detector invocations when batched."""
        load = LoadSpec(
            pattern="uniform", num_streams=2, rate_hz=10.0, frames_per_stream=30
        )
        batched = DetectionServer(
            CATDET, policy=ServePolicy(max_batch_size=8, max_wait_ms=60.0)
        ).run(generate_load(load, kitti_small))
        unbatched = DetectionServer(
            CATDET, policy=ServePolicy(max_batch_size=1, max_wait_ms=0.0)
        ).run(generate_load(load, kitti_small))
        assert batched.frames_served == unbatched.frames_served == 60
        assert batched.invocations < unbatched.invocations
        # Unbatched: one proposal + one refinement invocation per frame.
        assert unbatched.invocations == 2 * unbatched.frames_served
        assert batched.mean_batch_size > 1.0


def _request(stream, frame, arrival, sequence):
    return QueuedFrame(
        request=FrameRequest(
            stream=stream, sequence=sequence, frame=frame, arrival=arrival
        ),
        enqueued=arrival,
    )


class TestMicroBatcher:
    def test_flushes_on_size(self, kitti_sequence):
        batcher = MicroBatcher(max_batch_size=3, max_wait=1.0)
        ready = [_request(f"s{i}", 0, 0.0, kitti_sequence) for i in range(3)]
        batch, wake = batcher.decide(0.0, ready, more_arrivals=True)
        assert batch is not None and len(batch) == 3
        assert wake is None

    def test_waits_below_size_until_deadline(self, kitti_sequence):
        batcher = MicroBatcher(max_batch_size=4, max_wait=0.030)
        ready = [_request("s0", 0, 0.0, kitti_sequence)]
        batch, wake = batcher.decide(0.010, ready, more_arrivals=True)
        assert batch is None
        assert wake == pytest.approx(0.030)

    def test_flushes_on_deadline(self, kitti_sequence):
        batcher = MicroBatcher(max_batch_size=4, max_wait=0.030)
        ready = [_request("s0", 0, 0.0, kitti_sequence)]
        batch, _ = batcher.decide(0.030, ready, more_arrivals=True)
        assert batch is not None and len(batch) == 1

    def test_flushes_partial_when_no_more_arrivals(self, kitti_sequence):
        batcher = MicroBatcher(max_batch_size=4, max_wait=10.0)
        ready = [_request("s0", 0, 0.0, kitti_sequence)]
        batch, _ = batcher.decide(0.0, ready, more_arrivals=False)
        assert batch is not None

    def test_one_frame_per_stream_per_batch(self, kitti_sequence):
        """Causality: only head-of-line frames are batchable."""
        batcher = MicroBatcher(max_batch_size=8, max_wait=0.0)
        queue = [
            _request("s0", 0, 0.0, kitti_sequence),
            _request("s0", 1, 0.001, kitti_sequence),
            _request("s1", 0, 0.002, kitti_sequence),
        ]
        ready = batcher.ready(queue)
        assert [(q.request.stream, q.request.frame) for q in ready] == [
            ("s0", 0),
            ("s1", 0),
        ]

    def test_server_batches_simultaneous_arrivals_by_size(self, kitti_small):
        """Four streams arriving in lockstep + max_batch_size=2 → every
        dispatch is a full batch of exactly 2."""
        load = LoadSpec(
            pattern="uniform", num_streams=4, rate_hz=5.0, frames_per_stream=10
        )
        report = DetectionServer(
            CATDET,
            policy=ServePolicy(max_batch_size=2, max_wait_ms=1000.0),
            service=ServiceModel(invocation_overhead_ms=0.1, gops_per_second=1e6),
        ).run(generate_load(load, kitti_small))
        assert report.frames_served == 40
        assert report.mean_batch_size == pytest.approx(2.0)

    def test_server_respects_deadline_under_sparse_arrivals(self, kitti_small):
        """Arrivals spaced wider than max_wait → no coalescing, and no
        frame waits past its deadline while the engine sits idle."""
        load = LoadSpec(
            pattern="uniform", num_streams=1, rate_hz=2.0, frames_per_stream=8
        )
        policy = ServePolicy(max_batch_size=8, max_wait_ms=20.0)
        report = DetectionServer(
            CATDET,
            policy=policy,
            service=ServiceModel(invocation_overhead_ms=0.1, gops_per_second=1e6),
        ).run(generate_load(load, kitti_small))
        assert report.mean_batch_size == pytest.approx(1.0)
        fleet = report.slo["fleet"]
        # Queue wait is bounded by the coalescing deadline (compute is
        # near-free under this service model).
        assert fleet["mean_wait_ms"] <= policy.max_wait_ms + 1e-6


class TestShedding:
    def _overload(self, kitti_small, shed_policy):
        # 2 streams, every frame of both arrives in one instant burst; a
        # 3-slot queue must shed most of it.
        sequence = kitti_small.sequences[0]
        requests = [
            FrameRequest(
                stream=f"s{i}", sequence=sequence, frame=f, arrival=0.001 * (f + 1)
            )
            for f in range(6)
            for i in range(2)
        ]
        requests.sort(key=lambda r: (r.arrival, r.stream))
        policy = ServePolicy(
            max_batch_size=2,
            max_wait_ms=0.0,
            queue_capacity=3,
            shed_policy=shed_policy,
            slo_ms=500.0,
        )
        # Slow engine: the burst lands while the first batch computes.
        service = ServiceModel(invocation_overhead_ms=50.0, gops_per_second=2000.0)
        return DetectionServer(CATDET, policy=policy, service=service).run(requests)

    def test_oldest_policy_sheds_and_counts(self, kitti_small):
        report = self._overload(kitti_small, "oldest")
        assert report.frames_shed > 0
        assert report.frames_served + report.frames_shed == report.frames_offered
        fleet = report.slo["fleet"]
        assert fleet["shed"] == report.frames_shed
        # Drop-oldest keeps the *newest* frames: both streams' final
        # frames get served, their earliest queued ones are the victims.
        for stream, results in report.frame_results.items():
            if results:
                assert results[-1].frame == 5

    def test_oldest_drops_head_of_queue(self, kitti_small):
        """The first shed victim is exactly the oldest queued frame."""
        report = self._overload(kitti_small, "oldest")
        served_frames = {
            stream: [fr.frame for fr in results]
            for stream, results in report.frame_results.items()
        }
        # The burst overflows while frame 0 of each stream is queued
        # behind the in-flight batch; drop-oldest evicts those first, so
        # some early frame of some stream never runs.
        all_served = sorted(f for frames in served_frames.values() for f in frames)
        assert 0 not in all_served or len(all_served) < 12

    def test_newest_policy_rejects_arrivals(self, kitti_small):
        report = self._overload(kitti_small, "newest")
        assert report.frames_shed > 0
        # Reject-newest preserves the oldest queued work instead.
        earliest_served = min(
            fr.frame
            for results in report.frame_results.values()
            for fr in results
        )
        assert earliest_served == 0

    def test_shed_frames_never_execute(self, kitti_small):
        report = self._overload(kitti_small, "oldest")
        executed = sum(len(r) for r in report.frame_results.values())
        assert executed == report.frames_served


class TestLoadgen:
    def test_deterministic_under_fixed_seed(self, kitti_small):
        load = LoadSpec(pattern="poisson", num_streams=3, rate_hz=12.0,
                        frames_per_stream=25, seed=42)
        a = generate_load(load, kitti_small)
        b = generate_load(load, kitti_small)
        assert [(r.stream, r.frame, r.arrival) for r in a] == [
            (r.stream, r.frame, r.arrival) for r in b
        ]

    def test_seed_changes_schedule(self, kitti_small):
        base = LoadSpec(pattern="poisson", num_streams=2, frames_per_stream=20, seed=0)
        other = LoadSpec(pattern="poisson", num_streams=2, frames_per_stream=20, seed=1)
        a = generate_load(base, kitti_small)
        b = generate_load(other, kitti_small)
        assert [r.arrival for r in a] != [r.arrival for r in b]

    def test_streams_are_causal_and_sorted(self, kitti_small):
        load = LoadSpec(pattern="poisson", num_streams=3, frames_per_stream=30, seed=7)
        requests = generate_load(load, kitti_small)
        assert all(
            requests[i].arrival <= requests[i + 1].arrival
            for i in range(len(requests) - 1)
        )
        per_stream = {}
        for r in requests:
            per_stream.setdefault(r.stream, []).append(r.frame)
        for frames in per_stream.values():
            assert frames == sorted(frames)

    def test_replay_uses_native_fps(self, kitti_small):
        load = LoadSpec(pattern="replay", num_streams=1, frames_per_stream=10)
        requests = generate_load(load, kitti_small)
        fps = kitti_small.sequences[0].fps
        assert requests[1].arrival - requests[0].arrival == pytest.approx(1.0 / fps)

    def test_more_streams_than_sequences_wraps(self, kitti_small):
        n = len(kitti_small.sequences)
        load = LoadSpec(pattern="uniform", num_streams=n + 1, frames_per_stream=5)
        requests = generate_load(load, kitti_small)
        streams = {r.stream for r in requests}
        assert len(streams) == n + 1

    def test_validation(self):
        with pytest.raises(ValueError, match="num_streams"):
            LoadSpec(num_streams=0)
        with pytest.raises(ValueError, match="rate_hz"):
            LoadSpec(rate_hz=0.0)
        with pytest.raises(ValueError, match="unknown LoadSpec"):
            LoadSpec.from_dict({"pattern": "poisson", "bogus": 1})


class TestTrafficModels:
    """Bursty (two-state MMPP) and diurnal (sinusoidal-rate) arrivals."""

    @pytest.mark.parametrize("pattern", ["bursty", "diurnal"])
    def test_registered_and_deterministic(self, pattern, kitti_small):
        load = LoadSpec(pattern=pattern, num_streams=3, rate_hz=12.0,
                        frames_per_stream=30, seed=11)
        a = generate_load(load, kitti_small)
        b = generate_load(load, kitti_small)
        assert [(r.stream, r.frame, r.arrival) for r in a] == [
            (r.stream, r.frame, r.arrival) for r in b
        ]
        # Per-stream counts and causal order hold like any other pattern.
        per_stream = {}
        for r in a:
            per_stream.setdefault(r.stream, []).append(r)
        assert all(len(rs) == 30 for rs in per_stream.values())
        for rs in per_stream.values():
            arrivals = [r.arrival for r in rs]
            assert arrivals == sorted(arrivals)
            assert all(t > 0 for t in arrivals)

    @pytest.mark.parametrize("pattern", ["bursty", "diurnal"])
    def test_seed_and_stream_independence(self, pattern, kitti_small):
        base = LoadSpec(pattern=pattern, num_streams=2, frames_per_stream=25, seed=0)
        reseeded = LoadSpec(pattern=pattern, num_streams=2, frames_per_stream=25, seed=1)
        a = generate_load(base, kitti_small)
        b = generate_load(reseeded, kitti_small)
        assert [r.arrival for r in a] != [r.arrival for r in b]
        # Adding a stream never perturbs existing streams' schedules.
        widened = LoadSpec(pattern=pattern, num_streams=3,
                           frames_per_stream=25, seed=0)
        c = generate_load(widened, kitti_small)
        for stream in {r.stream for r in a}:
            assert [r.arrival for r in a if r.stream == stream] == [
                r.arrival for r in c if r.stream == stream
            ]

    def test_bursty_is_burstier_than_poisson(self, kitti_small):
        """The MMPP's inter-arrival dispersion exceeds the memoryless
        baseline: squared coefficient of variation > 1 for an MMPP, == 1
        in expectation for Poisson."""
        import numpy as np

        def scv(pattern):
            load = LoadSpec(pattern=pattern, num_streams=1, rate_hz=20.0,
                            frames_per_stream=60, seed=3)
            gaps = np.diff([r.arrival for r in generate_load(load, kitti_small)])
            return np.var(gaps) / np.mean(gaps) ** 2

        assert scv("bursty") > scv("poisson")

    @pytest.mark.parametrize("pattern", ["bursty", "diurnal"])
    def test_served_end_to_end(self, pattern, kitti_small):
        load = LoadSpec(pattern=pattern, num_streams=2, rate_hz=8.0,
                        frames_per_stream=10, seed=2)
        report = DetectionServer(CATDET).run(generate_load(load, kitti_small))
        assert report.frames_served + report.frames_shed == 20


class TestServeSpec:
    def _spec(self):
        return ServeSpec(
            system=CATDET,
            dataset=DatasetSpec("kitti", num_sequences=2, frames_per_sequence=30),
            load=LoadSpec(pattern="uniform", num_streams=2, rate_hz=10.0,
                          frames_per_stream=15),
            policy=ServePolicy(max_batch_size=4),
            service=FAST_ACCEL,
        )

    def test_json_round_trip(self):
        spec = self._spec()
        again = ServeSpec.from_json(spec.to_json())
        assert again == spec
        assert again.fingerprint == spec.fingerprint

    def test_fingerprint_covers_policy_and_service(self):
        import dataclasses

        spec = self._spec()
        repoliced = dataclasses.replace(spec, policy=ServePolicy(max_batch_size=2))
        remodeled = dataclasses.replace(spec, service=ServiceModel())
        assert spec.fingerprint != repoliced.fingerprint
        assert spec.fingerprint != remodeled.fingerprint

    def test_session_serve_cached_bit_identical(self, tmp_path):
        from repro.api.session import Session

        session = Session(cache_dir=tmp_path)
        spec = self._spec()
        fresh = session.serve(spec)
        cached = session.serve(spec)
        assert isinstance(cached, ServeReport)
        assert cached.frame_results is None  # stats-only from the store
        assert fresh.to_dict() == cached.to_dict()
        assert session.cache_hits == 1

    def test_validation_rejects_wrong_types(self):
        with pytest.raises(TypeError, match="load"):
            ServeSpec(system=CATDET, load=3)
        with pytest.raises(ValueError, match="shed_policy"):
            ServePolicy(shed_policy="coinflip")
        with pytest.raises(ValueError, match="gops"):
            ServiceModel(gops_per_second=0.0)


class TestDeviceCalibration:
    """One accelerator description per spec: device XOR explicit rates."""

    def test_default_service_is_calibrated_from_abstract(self):
        model = ServiceModel()
        assert model.device == "abstract"
        assert model.invocation_overhead_ms == 2.0
        assert model.gops_per_second == 2000.0
        spec = ServeSpec(system=CATDET)
        assert spec.device == "abstract"
        assert spec.service == model

    def test_device_spec_round_trips_with_fingerprint(self):
        spec = ServeSpec(system=CATDET, device="titanx")
        assert spec.service.device == "titanx"
        again = ServeSpec.from_json(spec.to_json())
        assert again == spec
        assert again.fingerprint == spec.fingerprint

    def test_fingerprint_changes_on_device(self):
        base = ServeSpec(system=CATDET)
        titanx = ServeSpec(system=CATDET, device="titanx")
        assert base.fingerprint != titanx.fingerprint

    def test_explicit_service_plus_device_raises(self):
        with pytest.raises(ValueError, match="both an explicit service model"):
            ServeSpec(system=CATDET, service=FAST_ACCEL, device="titanx")
        with pytest.raises(ValueError, match="both an explicit service model"):
            DetectionServer(CATDET, service=FAST_ACCEL, device="titanx")
        with pytest.raises(ValueError, match="contradicts device"):
            ServiceModel(device="titanx", gops_per_second=123.0)

    def test_unknown_device_raises_with_known_names(self):
        with pytest.raises(KeyError, match="titanx"):
            ServeSpec(system=CATDET, device="tpu-v9")

    def test_system_device_flows_into_service_model(self):
        config = SystemConfig(
            "catdet", "resnet50", "resnet10a",
            detailed_ops=False, device="titanx",
        )
        spec = ServeSpec(system=config)
        assert spec.device == "titanx"
        assert spec.service.device == "titanx"

    def test_device_profile_charges_cpu_per_frame(self):
        from repro.cost import TITANX

        model = ServiceModel.for_device("titanx")
        without_frames = model.batch_seconds(2, 1e9)
        with_frames = model.batch_seconds(2, 1e9, frames=4)
        assert with_frames - without_frames == pytest.approx(
            4 * TITANX.cpu_frame_overhead
        )
        # Uncalibrated explicit rates model no CPU side (legacy behavior).
        assert FAST_ACCEL.batch_seconds(2, 1e9, frames=4) == pytest.approx(
            FAST_ACCEL.batch_seconds(2, 1e9)
        )

    def test_titanx_serving_report_is_deterministic(self, kitti_small, tmp_path):
        from repro.api.session import Session

        spec = ServeSpec(
            system=CATDET,
            dataset=DatasetSpec("kitti", num_sequences=2, frames_per_sequence=30),
            load=LoadSpec(pattern="uniform", num_streams=2, rate_hz=4.0,
                          frames_per_stream=8),
            device="titanx",
        )
        session = Session(cache_dir=tmp_path)
        fresh = session.serve(spec)
        cached = session.serve(spec)
        assert session.cache_hits == 1
        assert fresh.to_dict() == cached.to_dict()
        assert cached.service.device == "titanx"


class TestReport:
    def test_report_dict_round_trip(self, kitti_small):
        load = LoadSpec(pattern="uniform", num_streams=2, rate_hz=10.0,
                        frames_per_stream=10)
        report = DetectionServer(CATDET).run(generate_load(load, kitti_small))
        again = ServeReport.from_dict(report.to_dict())
        assert again.to_dict() == report.to_dict()

    def test_report_formats(self, kitti_small):
        load = LoadSpec(pattern="uniform", num_streams=2, rate_hz=10.0,
                        frames_per_stream=10)
        report = DetectionServer(CATDET).run(generate_load(load, kitti_small))
        text = report.format()
        assert "Serving report" in text
        assert "throughput" in text
        assert "(fleet)" in text


class TestLongRunBufferedResults:
    """Long served runs accumulate results in FrameResultBuffer — the
    columnar storage must be invisible: byte-identical frames, list-like
    access, bounded object churn."""

    def test_long_run_through_buffer_is_byte_identical(self):
        from repro.core.results import FrameResultBuffer
        from repro.datasets.kitti import kitti_like_dataset

        dataset = kitti_like_dataset(num_sequences=1, frames_per_sequence=240)
        serial = run_on_dataset(CATDET, dataset, workers=1)
        load = LoadSpec(pattern="replay", num_streams=1, frames_per_stream=240)
        requests = generate_load(load, dataset)
        report = DetectionServer(CATDET, policy=ServePolicy(max_batch_size=8)).run(
            requests
        )
        (stream_id,) = report.frame_results
        served = report.frame_results[stream_id]
        assert isinstance(served, FrameResultBuffer)
        reference = serial.sequences[dataset.sequences[0].name].frames
        assert len(served) == len(reference) == 240
        # Every access pattern downstream code uses: zip, index, slice.
        for fa, fb in zip(served, reference):
            assert_frames_identical(fa, fb)
        assert_frames_identical(served[-1], reference[-1])
        tail = served[230:]
        assert isinstance(tail, list) and len(tail) == 10
        for fa, fb in zip(tail, reference[230:]):
            assert_frames_identical(fa, fb)


class TestBoundedMemoryAccounting:
    """LatencyStats beyond ``max_exact_samples``: lists released,
    histogram percentiles within one bucket width of exact."""

    def _synthetic(self, n, max_exact, rng_seed=3):
        from repro.serve.slo import LatencyStats

        rng = np.random.default_rng(rng_seed)
        latencies = rng.gamma(shape=2.0, scale=0.05, size=n)
        stats = LatencyStats(max_exact_samples=max_exact)
        for lat in latencies:
            stats.add(lat * 0.4, lat * 0.6, lat, violated=False)
        return stats, latencies

    def test_exact_below_the_bound(self):
        stats, latencies = self._synthetic(100, max_exact=4096)
        assert stats.exact
        assert stats.percentile(99) == pytest.approx(
            float(np.percentile(latencies, 99))
        )

    def test_overflow_releases_lists_and_keeps_scalars_exact(self):
        stats, latencies = self._synthetic(500, max_exact=64)
        assert not stats.exact
        assert stats.latencies == [] and stats.waits == [] and stats.computes == []
        assert stats.served == 500
        assert stats.mean_wait() == pytest.approx(float(np.mean(latencies)) * 0.4)
        assert stats.to_dict()["max_ms"] == pytest.approx(
            float(np.max(latencies)) * 1e3
        )

    def test_histogram_p99_within_one_bucket_width_of_exact(self):
        stats, latencies = self._synthetic(2000, max_exact=64)
        exact = float(np.percentile(latencies, 99))
        estimate = stats.percentile(99)
        # The estimate must land inside the hard bracket, whose span is
        # at most one bucket width (clamped to observed extremes).
        lo, hi = stats.hist_latency.quantile_bracket(99)
        assert lo <= estimate <= hi
        assert lo <= exact <= hi
        bounds = stats.hist_latency.bounds
        idx = int(np.searchsorted(bounds, exact))
        lower_edge = bounds[idx - 1] if idx > 0 else 0.0
        upper_edge = bounds[idx] if idx < len(bounds) else float(np.max(latencies))
        width = upper_edge - lower_edge
        assert abs(estimate - exact) <= width

    def test_merge_of_overflowed_stats_is_histogram_backed(self):
        from repro.serve.slo import LatencyStats

        a, la = self._synthetic(300, max_exact=64, rng_seed=1)
        b, lb = self._synthetic(40, max_exact=4096, rng_seed=2)
        a.merge(b)
        assert a.served == 340 and not a.exact
        combined = np.concatenate([la, lb])
        exact = float(np.percentile(combined, 95))
        lo, hi = a.hist_latency.quantile_bracket(95)
        assert lo <= exact <= hi
        assert lo <= a.percentile(95) <= hi

    def test_server_respects_max_exact_samples(self, kitti_small):
        load = LoadSpec(pattern="uniform", num_streams=2, rate_hz=30.0,
                        frames_per_stream=30)
        requests = generate_load(load, kitti_small)
        bounded = DetectionServer(CATDET, max_exact_samples=8).run(requests)
        unbounded = DetectionServer(CATDET).run(requests)
        assert bounded.slo["fleet"]["exact"] is False
        assert unbounded.slo["fleet"]["exact"] is True
        assert bounded.frames_served == unbounded.frames_served
        # Scalar stats stay exact either way; percentiles agree within
        # the histogram bracket.
        assert bounded.slo["fleet"]["mean_wait_ms"] == pytest.approx(
            unbounded.slo["fleet"]["mean_wait_ms"]
        )


class TestShedReasons:
    def _overload(self, kitti_small, shed_policy):
        sequence = kitti_small.sequences[0]
        requests = [
            FrameRequest(
                stream=f"s{i}", sequence=sequence, frame=f, arrival=0.001 * (f + 1)
            )
            for f in range(6)
            for i in range(2)
        ]
        requests.sort(key=lambda r: (r.arrival, r.stream))
        policy = ServePolicy(
            max_batch_size=2, max_wait_ms=0.0, queue_capacity=3,
            shed_policy=shed_policy, slo_ms=500.0,
        )
        service = ServiceModel(invocation_overhead_ms=50.0, gops_per_second=2000.0)
        return DetectionServer(CATDET, policy=policy, service=service).run(requests)

    def test_oldest_policy_reports_shed_oldest(self, kitti_small):
        report = self._overload(kitti_small, "oldest")
        reasons = report.slo["fleet"]["shed_reasons"]
        assert reasons == {"shed_oldest": report.frames_shed}

    def test_newest_policy_reports_reject_newest(self, kitti_small):
        report = self._overload(kitti_small, "newest")
        reasons = report.slo["fleet"]["shed_reasons"]
        assert reasons == {"reject_newest": report.frames_shed}

    def test_drop_counters_split_by_reason(self, kitti_small):
        from repro.obs import MetricsRegistry

        reg = MetricsRegistry()
        report = self._overload_with_metrics(kitti_small, "oldest", reg)
        drops = reg.get("serve_drops_total")
        assert drops.total() == report.frames_shed
        assert drops.value(("shed_oldest",)) == report.frames_shed
        frames = reg.get("serve_frames_total")
        assert frames.value(("in",)) == report.frames_offered
        assert frames.value(("out",)) == report.frames_served

    def _overload_with_metrics(self, kitti_small, shed_policy, registry):
        sequence = kitti_small.sequences[0]
        requests = [
            FrameRequest(
                stream=f"s{i}", sequence=sequence, frame=f, arrival=0.001 * (f + 1)
            )
            for f in range(6)
            for i in range(2)
        ]
        requests.sort(key=lambda r: (r.arrival, r.stream))
        policy = ServePolicy(
            max_batch_size=2, max_wait_ms=0.0, queue_capacity=3,
            shed_policy=shed_policy, slo_ms=500.0,
        )
        service = ServiceModel(invocation_overhead_ms=50.0, gops_per_second=2000.0)
        return DetectionServer(
            CATDET, policy=policy, service=service, metrics=registry
        ).run(requests)

    def test_shed_records_reach_sinks(self, kitti_small):
        from repro.obs import Sink

        class ListSink(Sink):
            def __init__(self):
                self.records = []

            def emit(self, record):
                self.records.append(record)

        sink = ListSink()
        sequence = kitti_small.sequences[0]
        requests = [
            FrameRequest(
                stream=f"s{i}", sequence=sequence, frame=f, arrival=0.001 * (f + 1)
            )
            for f in range(6)
            for i in range(2)
        ]
        requests.sort(key=lambda r: (r.arrival, r.stream))
        policy = ServePolicy(
            max_batch_size=2, max_wait_ms=0.0, queue_capacity=3,
            shed_policy="oldest", slo_ms=500.0,
        )
        service = ServiceModel(invocation_overhead_ms=50.0, gops_per_second=2000.0)
        report = DetectionServer(
            CATDET, policy=policy, service=service, sinks=sink
        ).run(requests)
        kinds = {}
        for record in sink.records:
            kinds[record["record"]] = kinds.get(record["record"], 0) + 1
        assert kinds["serve.frame"] == report.frames_served
        assert kinds["serve.shed"] == report.frames_shed
        assert kinds["serve.summary"] == 1
        (summary,) = [r for r in sink.records if r["record"] == "serve.summary"]
        assert summary["frames_offered"] == report.frames_offered
        shed = [r for r in sink.records if r["record"] == "serve.shed"]
        assert all(r["reason"] == "shed_oldest" for r in shed)
