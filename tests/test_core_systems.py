"""Unit tests for the detection systems and ops accounting."""

import numpy as np
import pytest

from repro.core.config import SystemConfig, build_system
from repro.core.pipeline import run_on_dataset
from repro.core.results import OpsAccount
from repro.core.systems import CascadedSystem, CaTDetSystem, SingleModelSystem
from repro.tracker.catdet_tracker import TrackerConfig


class TestSystemConfig:
    def test_labels(self):
        assert SystemConfig("single", "resnet50").label == "resnet50, Faster R-CNN"
        assert (
            SystemConfig("catdet", "resnet50", "resnet10a").label
            == "resnet10a, resnet50, CaTDet"
        )
        assert (
            SystemConfig("cascade", "resnet50", "resnet10b").label
            == "resnet10b, resnet50, Cascaded"
        )

    def test_invalid_kind(self):
        with pytest.raises(ValueError, match="kind"):
            SystemConfig("magic", "resnet50")

    def test_cascade_requires_proposal(self):
        with pytest.raises(ValueError, match="proposal_model"):
            SystemConfig("cascade", "resnet50")

    def test_build_types(self):
        assert isinstance(build_system(SystemConfig("single", "resnet50")), SingleModelSystem)
        cascade = build_system(SystemConfig("cascade", "resnet50", "resnet10a"))
        assert isinstance(cascade, CascadedSystem)
        assert not isinstance(cascade, CaTDetSystem)
        assert isinstance(
            build_system(SystemConfig("catdet", "resnet50", "resnet10a")), CaTDetSystem
        )


class TestSingleModel:
    def test_constant_ops_per_frame(self, kitti_sequence):
        system = SingleModelSystem("resnet10a", seed=0)
        result = system.process_sequence(kitti_sequence)
        totals = {f.ops.total for f in result.frames}
        assert len(totals) == 1
        assert result.frames[0].ops.total == pytest.approx(20.7e9, rel=0.1)

    def test_produces_detections(self, kitti_sequence):
        system = SingleModelSystem("resnet50", seed=0)
        result = system.process_sequence(kitti_sequence)
        assert sum(len(f.detections) for f in result.frames) > 0

    def test_output_threshold(self, kitti_sequence):
        loose = SingleModelSystem("resnet50", seed=0)
        strict = SingleModelSystem("resnet50", seed=0, output_threshold=0.9)
        n_loose = sum(len(f.detections) for f in loose.process_sequence(kitti_sequence).frames)
        n_strict = sum(len(f.detections) for f in strict.process_sequence(kitti_sequence).frames)
        assert n_strict < n_loose
        for f in strict.process_sequence(kitti_sequence).frames:
            assert np.all(f.detections.scores >= 0.9)


class TestCascade:
    def test_ops_below_single_model(self, kitti_sequence):
        single = SingleModelSystem("resnet50", seed=0)
        cascade = CascadedSystem("resnet10a", "resnet50", seed=0)
        ops_single = single.process_sequence(kitti_sequence).mean_ops().total
        ops_cascade = cascade.process_sequence(kitti_sequence).mean_ops().total
        assert ops_cascade < ops_single / 3

    def test_higher_cthresh_fewer_regions_fewer_ops(self, kitti_sequence):
        low = CascadedSystem("resnet10a", "resnet50", c_thresh=0.02, seed=0)
        high = CascadedSystem("resnet10a", "resnet50", c_thresh=0.6, seed=0)
        r_low = low.process_sequence(kitti_sequence)
        r_high = high.process_sequence(kitti_sequence)
        mean_regions = lambda r: np.mean([f.num_regions for f in r.frames])
        assert mean_regions(r_high) < mean_regions(r_low)
        assert r_high.mean_ops().total < r_low.mean_ops().total

    def test_ops_breakdown_fields(self, kitti_sequence):
        cascade = CascadedSystem("resnet10a", "resnet50", seed=0)
        result = cascade.process_sequence(kitti_sequence)
        frame = result.frames[5]
        assert frame.ops.proposal > 0
        assert frame.ops.refinement > 0
        assert frame.ops.refinement_from_tracker == 0.0  # no tracker

    def test_coverage_fraction_recorded(self, kitti_sequence):
        cascade = CascadedSystem("resnet10a", "resnet50", seed=0)
        result = cascade.process_sequence(kitti_sequence)
        fracs = [f.coverage_fraction for f in result.frames]
        assert all(0.0 <= c <= 1.0 for c in fracs)
        assert np.mean(fracs) < 0.8  # regions, not the whole image

    def test_invalid_params(self):
        with pytest.raises(ValueError, match="c_thresh"):
            CascadedSystem("resnet10a", "resnet50", c_thresh=1.5)
        with pytest.raises(ValueError, match="margin"):
            CascadedSystem("resnet10a", "resnet50", margin=-1)


class TestCaTDet:
    def test_tracker_adds_regions(self, kitti_sequence):
        cascade = CascadedSystem("resnet10a", "resnet50", seed=0)
        catdet = CaTDetSystem("resnet10a", "resnet50", seed=0)
        r_cascade = cascade.process_sequence(kitti_sequence)
        r_catdet = catdet.process_sequence(kitti_sequence)
        mean_regions = lambda r: np.mean([f.num_regions for f in r.frames])
        assert mean_regions(r_catdet) > mean_regions(r_cascade)

    def test_breakdown_sources_overlap(self, kitti_sequence):
        """Table 3's key fact: per-source costs sum to more than the total."""
        catdet = CaTDetSystem("resnet10a", "resnet50", seed=0)
        result = catdet.process_sequence(kitti_sequence)
        ops = result.mean_ops()
        assert ops.refinement_from_tracker > 0
        assert ops.refinement_from_proposal > 0
        assert (
            ops.refinement_from_tracker + ops.refinement_from_proposal
            >= ops.refinement - 1e-6
        )

    def test_first_frame_has_no_tracker_regions(self, kitti_sequence):
        catdet = CaTDetSystem("resnet10a", "resnet50", seed=0)
        result = catdet.process_sequence(kitti_sequence)
        assert result.frames[0].ops.refinement_from_tracker == pytest.approx(0.0)

    def test_causality_prefix_invariance(self, kitti_sequence):
        """Frame t's output depends only on frames <= t (strictly causal)."""
        full = CaTDetSystem("resnet10a", "resnet50", seed=0).process_sequence(
            kitti_sequence
        )
        # Re-running on the same sequence gives identical output (stateless
        # across process_sequence calls thanks to a fresh tracker).
        again = CaTDetSystem("resnet10a", "resnet50", seed=0).process_sequence(
            kitti_sequence
        )
        for fa, fb in zip(full.frames, again.frames):
            np.testing.assert_array_equal(fa.detections.boxes, fb.detections.boxes)

    def test_tracker_config_passed(self, kitti_sequence):
        strict = CaTDetSystem(
            "resnet10a",
            "resnet50",
            seed=0,
            tracker_config=TrackerConfig(input_score_threshold=0.99),
        )
        result = strict.process_sequence(kitti_sequence)
        # Nearly nothing enters the tracker, so tracker regions stay tiny.
        assert result.mean_ops().refinement_from_tracker < 5e9


class TestRunOnDataset:
    def test_runs_all_sequences(self, kitti_small):
        run = run_on_dataset(SystemConfig("single", "resnet10b"), kitti_small)
        assert set(run.sequences) == {s.name for s in kitti_small.sequences}
        assert run.mean_ops_gops() > 0

    def test_max_sequences(self, kitti_small):
        run = run_on_dataset(
            SystemConfig("single", "resnet10b"), kitti_small, max_sequences=1
        )
        assert len(run.sequences) == 1

    def test_detections_by_sequence_shape(self, kitti_small):
        run = run_on_dataset(SystemConfig("single", "resnet10b"), kitti_small)
        for seq in kitti_small.sequences:
            assert len(run.detections_by_sequence[seq.name]) == seq.num_frames


class TestOpsAccount:
    def test_add(self):
        a = OpsAccount(1.0, 2.0, 3.0, 4.0)
        b = a + a
        assert b.proposal == 2.0 and b.refinement == 4.0
        assert b.total == 6.0

    def test_scaled(self):
        a = OpsAccount(2.0, 4.0).scaled(0.5)
        assert a.proposal == 1.0 and a.refinement == 2.0
