"""Unit tests for the from-scratch Kalman filter."""

import numpy as np
import pytest

from repro.tracker.kalman import ConstantVelocityBoxKalman, KalmanFilter


def _scalar_cv_filter(x0=0.0, v0=0.0):
    """1-D constant-velocity filter observing position only."""
    F = np.array([[1.0, 1.0], [0.0, 1.0]])
    H = np.array([[1.0, 0.0]])
    Q = np.eye(2) * 1e-4
    R = np.array([[0.01]])
    P = np.eye(2)
    return KalmanFilter(F, H, Q, R, np.array([x0, v0]), P)


class TestKalmanFilter:
    def test_predict_advances_constant_velocity(self):
        kf = _scalar_cv_filter(x0=0.0, v0=2.0)
        state = kf.predict()
        assert state[0] == pytest.approx(2.0)
        state = kf.predict()
        assert state[0] == pytest.approx(4.0)

    def test_update_pulls_toward_observation(self):
        kf = _scalar_cv_filter(x0=0.0, v0=0.0)
        kf.predict()
        state = kf.update(np.array([10.0]))
        assert 0.0 < state[0] <= 10.0
        assert state[0] > 5.0  # R is small, so the observation dominates

    def test_converges_to_linear_motion(self):
        kf = _scalar_cv_filter()
        for t in range(1, 50):
            kf.predict()
            kf.update(np.array([3.0 * t]))
        assert kf.x[1] == pytest.approx(3.0, abs=0.2)  # velocity learned

    def test_covariance_shrinks_with_updates(self):
        kf = _scalar_cv_filter()
        p0 = np.trace(kf.P)
        for t in range(10):
            kf.predict()
            kf.update(np.array([0.0]))
        assert np.trace(kf.P) < p0

    def test_shape_validation(self):
        with pytest.raises(ValueError, match="transition"):
            KalmanFilter(
                np.eye(3), np.eye(2), np.eye(2), np.eye(2), np.zeros(2), np.eye(2)
            )

    def test_observation_length_validation(self):
        kf = _scalar_cv_filter()
        with pytest.raises(ValueError, match="length"):
            kf.update(np.array([1.0, 2.0]))


class TestBoxKalman:
    def test_initial_box_recovered(self):
        box = np.array([10.0, 20.0, 50.0, 100.0])
        kf = ConstantVelocityBoxKalman(box)
        np.testing.assert_allclose(kf.box, box, atol=1e-6)

    def test_stationary_box_stays(self):
        box = np.array([10.0, 20.0, 50.0, 100.0])
        kf = ConstantVelocityBoxKalman(box)
        for _ in range(5):
            kf.predict()
            kf.update(box)
        np.testing.assert_allclose(kf.box, box, atol=0.5)

    def test_tracks_moving_box(self):
        kf = ConstantVelocityBoxKalman(np.array([0.0, 0.0, 10.0, 10.0]))
        for t in range(1, 20):
            kf.predict()
            kf.update(np.array([2.0 * t, 0.0, 2.0 * t + 10.0, 10.0]))
        pred = kf.predict()
        # Next prediction continues the 2 px/frame motion.
        assert pred[0] == pytest.approx(2.0 * 20, abs=1.0)

    def test_degenerate_box_raises(self):
        with pytest.raises(ValueError, match="positive size"):
            ConstantVelocityBoxKalman(np.array([10.0, 10.0, 10.0, 20.0]))

    def test_area_never_negative(self):
        kf = ConstantVelocityBoxKalman(np.array([0.0, 0.0, 4.0, 4.0]))
        # Shrinking observations drive area velocity negative.
        for s in [3.0, 2.0, 1.5, 1.2, 1.1]:
            kf.predict()
            kf.update(np.array([0.0, 0.0, s, s]))
        for _ in range(50):
            box = kf.predict()
        assert box[2] >= box[0]
        assert box[3] >= box[1]
