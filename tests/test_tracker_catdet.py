"""Unit tests for the CaTDet tracker (paper §4.1)."""

import numpy as np
import pytest

from repro.detections import Detections
from repro.tracker.catdet_tracker import CaTDetTracker, TrackerConfig


def dets(boxes, scores=None, labels=None):
    boxes = np.asarray(boxes, dtype=float).reshape(-1, 4)
    n = boxes.shape[0]
    return Detections(
        boxes,
        np.ones(n) if scores is None else np.asarray(scores, dtype=float),
        np.zeros(n, dtype=int) if labels is None else np.asarray(labels),
    )


class TestLifecycle:
    def test_empty_tracker_predicts_nothing(self):
        tracker = CaTDetTracker()
        assert len(tracker.predict()) == 0

    def test_detection_spawns_track(self):
        tracker = CaTDetTracker()
        tracker.update(dets([[0, 0, 50, 50]]))
        assert len(tracker.tracks) == 1
        assert len(tracker.predict()) == 1

    def test_low_confidence_detections_ignored(self):
        tracker = CaTDetTracker(TrackerConfig(input_score_threshold=0.5))
        tracker.update(dets([[0, 0, 50, 50]], scores=[0.2]))
        assert len(tracker.tracks) == 0

    def test_track_dies_after_misses(self):
        config = TrackerConfig(
            initial_confidence=1.0, miss_penalty=1.0, max_confidence=3.0
        )
        tracker = CaTDetTracker(config)
        tracker.update(dets([[0, 0, 50, 50]]))
        for _ in range(2):
            tracker.predict()
            tracker.update(Detections.empty())
        assert len(tracker.tracks) == 0

    def test_matches_extend_lifetime(self):
        """Adaptive confidence: more matches let the track survive longer."""
        config = TrackerConfig(
            initial_confidence=1.0, match_gain=1.0, miss_penalty=1.0,
            max_confidence=3.0,
        )
        box = [100, 100, 160, 160]
        tracker = CaTDetTracker(config)
        for _ in range(5):  # confidence saturates at 3
            tracker.predict()
            tracker.update(dets([box]))
        survived = 0
        for _ in range(5):
            tracker.predict()
            tracker.update(Detections.empty())
            if tracker.tracks:
                survived += 1
        assert survived == 3  # 3 = max_confidence / miss_penalty

    def test_confidence_capped(self):
        config = TrackerConfig(max_confidence=2.0, match_gain=1.0)
        tracker = CaTDetTracker(config)
        for _ in range(10):
            tracker.predict()
            tracker.update(dets([[0, 0, 50, 50]]))
        assert tracker.tracks[0].confidence <= 2.0

    def test_reset(self):
        tracker = CaTDetTracker()
        tracker.update(dets([[0, 0, 50, 50]]))
        tracker.reset()
        assert len(tracker.tracks) == 0
        assert tracker.frames_processed == 0


class TestPrediction:
    def test_predicts_continued_motion(self):
        tracker = CaTDetTracker()
        for t in range(6):
            tracker.predict()
            tracker.update(dets([[10 * t, 0, 10 * t + 50, 50]]))
        pred = tracker.predict()
        assert len(pred) == 1
        # Object moving +10 px/frame: prediction should be ahead of the
        # last observation (at 50) by a positive step.
        assert pred.boxes[0, 0] > 50.0

    def test_size_filter_drops_small_predictions(self):
        config = TrackerConfig(min_prediction_width=10.0, input_score_threshold=0.0)
        tracker = CaTDetTracker(config)
        tracker.update(dets([[0, 0, 5, 20]]))  # 5 px wide
        assert len(tracker.tracks) == 1
        assert len(tracker.predict()) == 0  # filtered, but track persists

    def test_boundary_filter(self):
        config = TrackerConfig(min_visible_fraction=0.5, input_score_threshold=0.0)
        tracker = CaTDetTracker(config, image_size=(100, 100))
        # Moving object about to leave: predictions chopped by the border.
        tracker.update(dets([[-40, 0, 20, 30]]))
        pred = tracker.predict()
        assert len(pred) == 0

    def test_prediction_scores_normalized(self):
        tracker = CaTDetTracker()
        tracker.update(dets([[0, 0, 60, 60]]))
        pred = tracker.predict()
        assert np.all(pred.scores <= 1.0) and np.all(pred.scores >= 0.0)

    def test_per_class_tracking(self):
        tracker = CaTDetTracker()
        tracker.update(dets([[0, 0, 50, 50], [0, 0, 50, 50]], labels=[0, 1]))
        assert len(tracker.tracks) == 2  # same box, different classes
        pred = tracker.predict()
        assert sorted(pred.labels.tolist()) == [0, 1]


class TestIdentity:
    def test_continuous_object_keeps_track_id(self):
        tracker = CaTDetTracker()
        tracker.update(dets([[0, 0, 50, 50]]))
        tid = tracker.tracks[0].track_id
        for t in range(1, 5):
            tracker.predict()
            tracker.update(dets([[2 * t, 0, 2 * t + 50, 50]]))
        assert len(tracker.tracks) == 1
        assert tracker.tracks[0].track_id == tid
        assert tracker.tracks[0].hits == 5

    def test_distinct_objects_get_distinct_ids(self):
        tracker = CaTDetTracker()
        tracker.update(dets([[0, 0, 50, 50], [200, 0, 260, 60]]))
        ids = {t.track_id for t in tracker.tracks}
        assert len(ids) == 2

    def test_kalman_motion_variant(self):
        tracker = CaTDetTracker(TrackerConfig(motion_model="kalman"))
        for t in range(4):
            tracker.predict()
            tracker.update(dets([[5 * t, 0, 5 * t + 50, 50]]))
        assert len(tracker.tracks) == 1

    def test_invalid_motion_model(self):
        with pytest.raises(ValueError, match="motion_model"):
            TrackerConfig(motion_model="magic")
