"""Unified cost-layer tests.

The load-bearing guarantees:

* the ``titanx`` profile reproduces the legacy ``gpu/timing.py``
  kernel/wall numbers **bit-for-bit** at the Table-7 operating points
  (calibration parity — the shim and the cost layer can never drift);
* the ``abstract`` profile reproduces the serving layer's historical
  defaults (2 ms/invocation, 2000 Gops/s) exactly;
* profiles are frozen, validated, registered by name and JSON
  round-trippable;
* the engine's ``TimingAccountingStage`` (``SystemConfig(device=...)``)
  adds a per-frame latency column without perturbing detections or ops,
  and the timing survives the result cache bit-identically.
"""

import numpy as np
import pytest

from repro.core.config import SystemConfig
from repro.core.pipeline import run_on_dataset
from repro.cost import (
    ABSTRACT,
    DEVICE_PROFILES,
    TITANX,
    CostModel,
    DeviceProfile,
    FrameTiming,
    get_device,
    profile_from_service_rates,
    register_device,
)
from repro.gpu.timing import (
    GpuTimingModel,
    estimate_catdet_timing,
    estimate_single_model_timing,
)

GIGA = 1e9


class TestDeviceProfile:
    def test_json_round_trip(self):
        again = DeviceProfile.from_json(TITANX.to_json())
        assert again == TITANX
        assert again.launch_overhead_seconds == TITANX.launch_overhead_seconds

    def test_validation(self):
        with pytest.raises(ValueError, match="alpha"):
            DeviceProfile(name="bad", alpha=0.0)
        with pytest.raises(ValueError, match="CPU"):
            DeviceProfile(name="bad", alpha=1e-12, cpu_frame_overhead=-1.0)
        with pytest.raises(ValueError, match="name"):
            DeviceProfile(name="", alpha=1e-12)
        with pytest.raises(ValueError, match="unknown DeviceProfile fields"):
            DeviceProfile.from_dict({"name": "x", "alpha": 1e-12, "bogus": 1})

    def test_builtin_registry(self):
        assert "titanx" in DEVICE_PROFILES and "abstract" in DEVICE_PROFILES
        assert get_device("titanx") is TITANX
        assert get_device(TITANX) is TITANX  # profiles pass through
        with pytest.raises(KeyError, match="device profile"):
            get_device("quantum-annealer")

    def test_register_device(self):
        name = "test-datacenter-gpu"
        if name not in DEVICE_PROFILES:
            register_device(DeviceProfile(name=name, alpha=2.0e-13))
        assert get_device(name).alpha == 2.0e-13
        with pytest.raises(ValueError, match="already registered"):
            register_device(DeviceProfile(name=name, alpha=1.0e-13))
        with pytest.raises(TypeError, match="DeviceProfile"):
            register_device("not-a-profile")

    def test_abstract_reproduces_legacy_serving_defaults(self):
        # The exact historical ServiceModel defaults, now derived.
        assert ABSTRACT.invocation_overhead_ms == 2.0
        assert ABSTRACT.gops_per_second == 2000.0
        assert ABSTRACT.cpu_frame_overhead == 0.0

    def test_profile_from_service_rates_inverts(self):
        p = profile_from_service_rates(4.0, 8000.0)
        assert p.launch_overhead_seconds == pytest.approx(0.004, rel=1e-12)
        assert p.gops_per_second == pytest.approx(8000.0, rel=1e-12)
        with pytest.raises(ValueError, match="gops_per_second"):
            profile_from_service_rates(1.0, 0.0)


class TestCalibrationParity:
    """CostModel must reproduce gpu/timing.py numbers bit-for-bit."""

    def test_titanx_matches_legacy_constants(self):
        legacy = GpuTimingModel()
        assert TITANX.alpha == legacy.alpha
        assert TITANX.launch_overhead_seconds == legacy.launch_overhead_seconds

    def test_single_model_table7_point_bit_for_bit(self):
        """Res50 Faster R-CNN: 254.3 Gops (0.159 s GPU / 0.193 s wall)."""
        legacy = estimate_single_model_timing(254.3 * GIGA)
        cost = CostModel(TITANX).single_model_timing(254.3 * GIGA)
        assert cost.gpu_seconds == legacy.gpu_seconds
        assert cost.cpu_seconds == legacy.cpu_seconds
        assert cost.total_seconds == legacy.total_seconds
        assert cost.num_launches == legacy.num_launches
        assert cost.gpu_seconds == pytest.approx(0.159, rel=0.1)
        assert cost.total_seconds == pytest.approx(0.193, rel=0.1)

    def test_catdet_table7_point_bit_for_bit(self):
        """Res10a+Res50 CaTDet at the KITTI-geometry operating point of
        tests/test_gpu_timing.py (0.042 s GPU / 0.094 s wall)."""
        rng = np.random.default_rng(0)
        x = rng.uniform(0, 1100, size=16)
        y = rng.uniform(150, 230, size=16)
        w = rng.uniform(60, 140, size=16)
        regions = np.stack([x, y, x + w, y + w * 0.7], axis=1)
        for merge in (True, False):
            legacy = estimate_catdet_timing(
                20.7 * GIGA, regions, 12 * GIGA, merge=merge
            )
            cost = CostModel(TITANX).catdet_timing(
                20.7 * GIGA, regions, 12 * GIGA, merge=merge
            )
            assert cost.gpu_seconds == legacy.gpu_seconds
            assert cost.cpu_seconds == legacy.cpu_seconds
            assert cost.num_launches == legacy.num_launches

    def test_kernel_seconds_bit_for_bit(self):
        legacy = GpuTimingModel()
        cost = CostModel(TITANX)
        for macs in (0.0, 1.0, 20.7 * GIGA, 254.3 * GIGA):
            assert cost.kernel_seconds(macs) == legacy.kernel_time(macs)
        with pytest.raises(ValueError, match="macs"):
            cost.kernel_seconds(-1.0)

    def test_merge_cost_model_parity(self):
        legacy = GpuTimingModel().merge_cost_model()
        cost = CostModel(TITANX).merge_cost_model()
        assert cost == legacy

    def test_abstract_batch_seconds_matches_legacy_formula(self):
        cost = CostModel(ABSTRACT)
        for invocations, macs in ((1, 0.0), (2, 51 * GIGA), (16, 400 * GIGA)):
            legacy = invocations * 2.0 / 1e3 + macs / (2000.0 * GIGA)
            assert cost.batch_seconds(invocations, macs) == pytest.approx(
                legacy, rel=1e-12
            )


class TestFrameTimingModel:
    def test_zero_ops_frame_costs_cpu_only(self):
        from repro.core.results import OpsAccount

        t = CostModel(TITANX).frame_timing(OpsAccount(), full_frame=True)
        assert t.gpu_seconds == 0.0
        assert t.num_launches == 0
        assert t.cpu_seconds == TITANX.cpu_frame_overhead

    def test_regional_counts_merged_launches(self):
        from repro.core.results import OpsAccount

        ops = OpsAccount(proposal=20 * GIGA, refinement=10 * GIGA)
        # Two heavily-overlapping regions merge into one launch.
        boxes = np.array([[0, 0, 100, 100], [10, 10, 110, 110]], dtype=float)
        merged = CostModel(TITANX).frame_timing(ops, region_boxes=boxes)
        unmerged = CostModel(TITANX).frame_timing(
            ops, region_boxes=boxes, merge=False
        )
        assert merged.num_launches == 2  # proposal + 1 merged region
        assert unmerged.num_launches == 3
        assert merged.gpu_seconds < unmerged.gpu_seconds
        # Both charge the same measured compute; they differ in overhead.
        assert unmerged.gpu_seconds - merged.gpu_seconds == pytest.approx(
            TITANX.launch_overhead_seconds
        )


CATDET = SystemConfig("catdet", "resnet50", "resnet10a", detailed_ops=False)


class TestTimingAccounting:
    def test_device_adds_timing_without_perturbing_results(self, kitti_small):
        plain = run_on_dataset(CATDET, kitti_small, max_sequences=1)
        timed = run_on_dataset(
            SystemConfig(
                "catdet", "resnet50", "resnet10a",
                detailed_ops=False, device="titanx",
            ),
            kitti_small,
            max_sequences=1,
        )
        assert plain.mean_timing() is None
        mean = timed.mean_timing()
        assert mean is not None and mean.total_seconds > 0
        for (name, seq), (_, seq2) in zip(
            plain.sequences.items(), timed.sequences.items()
        ):
            for a, b in zip(seq.frames, seq2.frames):
                np.testing.assert_array_equal(a.detections.boxes, b.detections.boxes)
                np.testing.assert_array_equal(a.detections.scores, b.detections.scores)
                assert a.ops.proposal == b.ops.proposal
                assert a.ops.refinement == b.ops.refinement
                assert a.timing is None and b.timing is not None
                assert b.timing.num_launches >= 1

    @pytest.mark.parametrize(
        "config",
        [
            SystemConfig("single", "resnet10b", device="titanx"),
            SystemConfig("cascade", "resnet50", "resnet10a", device="titanx"),
            SystemConfig("keyframe", "resnet10a", stride=4, device="titanx"),
        ],
        ids=lambda c: c.kind,
    )
    def test_every_kind_reports_timing(self, config, kitti_small):
        run = run_on_dataset(config, kitti_small, max_sequences=1)
        assert run.mean_timing() is not None
        if config.kind == "keyframe":
            # Skipped frames run no network: zero launches, CPU only.
            frames = next(iter(run.sequences.values())).frames
            skipped = [f for f in frames if f.frame % 4 != 0]
            assert all(f.timing.num_launches == 0 for f in skipped)
            assert all(f.timing.gpu_seconds == 0.0 for f in skipped)

    def test_single_model_tracks_table7(self, kitti_small):
        run = run_on_dataset(
            SystemConfig("single", "resnet50", device="titanx"),
            kitti_small,
            max_sequences=1,
        )
        mean = run.mean_timing()
        # Within the known ~11 % op-count gap of the analytic model.
        assert mean.gpu_seconds == pytest.approx(0.159, rel=0.25)
        assert mean.total_seconds == pytest.approx(0.193, rel=0.25)

    def test_timing_survives_io_round_trip(self, kitti_small):
        from repro.harness.io import (
            sequence_result_from_dict,
            sequence_result_to_dict,
        )

        config = SystemConfig(
            "catdet", "resnet50", "resnet10a",
            detailed_ops=False, device="abstract",
        )
        run = run_on_dataset(config, kitti_small, max_sequences=1)
        seq = next(iter(run.sequences.values()))
        again = sequence_result_from_dict(sequence_result_to_dict(seq))
        for a, b in zip(seq.frames, again.frames):
            assert a.timing == b.timing  # bit-identical dataclass equality

    def test_timing_survives_result_cache(self, kitti_small, tmp_path):
        from repro.api.session import Session

        session = Session(cache_dir=tmp_path)
        config = SystemConfig(
            "catdet", "resnet50", "resnet10a",
            detailed_ops=False, device="titanx",
        )
        fresh = session.run_experiment(config, kitti_small)
        cached = session.run_experiment(config, kitti_small)
        assert session.cache_hits == 1
        assert fresh.mean_timing() == cached.mean_timing()
        for name, seq in fresh.run.sequences.items():
            for a, b in zip(seq.frames, cached.run.sequences[name].frames):
                assert a.timing == b.timing
