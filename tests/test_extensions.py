"""Tests for the extension features: exit delay, multi-seed runs, CLI, viz."""

import numpy as np
import pytest

from repro.core.config import SystemConfig
from repro.harness.experiment import standard_kitti
from repro.harness.multiseed import (
    MetricSummary,
    compare_systems,
    run_replicated,
)
from repro.metrics.delay import DelayEvaluation, TrackDelayRecord
from repro.metrics.evaluate import evaluate_dataset
from repro.metrics.kitti_eval import HARD
from repro.__main__ import main as cli_main
from repro.viz import render_frame, render_track_timeline


def record(scores):
    r = TrackDelayRecord()
    for i, s in enumerate(scores):
        r.append(i, s, cared=True)
    return r


class TestExitDelay:
    def test_detected_to_the_end(self):
        assert record([0.9, 0.9, 0.9]).exit_delay_at(0.5) == 0

    def test_trailing_misses(self):
        assert record([0.9, 0.9, -np.inf, -np.inf]).exit_delay_at(0.5) == 2

    def test_never_detected_full_length(self):
        assert record([0.1, 0.1]).exit_delay_at(0.5) == 2

    def test_single_mid_detection(self):
        r = record([-np.inf, 0.9, -np.inf])
        assert r.delay_at(0.5) == 1
        assert r.exit_delay_at(0.5) == 1

    def test_mean_exit_delay(self):
        e = DelayEvaluation(
            scores=np.array([0.9]),
            tp=np.array([True]),
            tracks=[record([0.9, -np.inf]), record([0.9, 0.9])],
        )
        assert e.mean_exit_delay(0.5) == pytest.approx(0.5)

    def test_evaluation_result_exit_delay(self, kitti_small):
        from repro.core.pipeline import run_on_dataset

        run = run_on_dataset(SystemConfig("single", "resnet50"), kitti_small)
        res = evaluate_dataset(kitti_small, run.detections_by_sequence, HARD)
        exit_delay = res.mean_exit_delay(0.8)
        assert np.isfinite(exit_delay)
        assert exit_delay >= 0.0


class TestMultiSeed:
    @pytest.fixture(scope="class")
    def replicated(self):
        ds = standard_kitti(1, 40)
        return run_replicated(
            SystemConfig("single", "resnet10b"), ds, seeds=(0, 1, 2)
        )

    def test_metrics_present(self, replicated):
        assert "ops_gops" in replicated.metrics
        assert "mAP[hard]" in replicated.metrics
        assert "mD@0.8[hard]" in replicated.metrics

    def test_summary_statistics(self, replicated):
        summary = replicated.metric("mAP[hard]")
        assert len(summary.values) == 3
        assert summary.mean == pytest.approx(np.mean(summary.values))
        assert summary.std >= 0.0
        assert np.isfinite(summary.stderr)

    def test_ops_identical_structure_varies_little(self, replicated):
        # Single-model ops are deterministic in the architecture.
        assert replicated.metric("ops_gops").std == pytest.approx(0.0)

    def test_unknown_metric_raises(self, replicated):
        with pytest.raises(KeyError, match="known"):
            replicated.metric("nope")

    def test_empty_seeds_raises(self):
        ds = standard_kitti(1, 40)
        with pytest.raises(ValueError, match="seed"):
            run_replicated(SystemConfig("single", "resnet10b"), ds, seeds=())

    def test_compare_systems_paired(self, replicated):
        ds = standard_kitti(1, 40)
        other = run_replicated(
            SystemConfig("single", "resnet50"), ds, seeds=(0, 1, 2)
        )
        out = compare_systems(other, replicated, "mAP[hard]")
        assert out["difference"] > 0  # resnet50 beats resnet10b
        assert "paired_z" in out


class TestCli:
    def test_models_command(self, capsys):
        assert cli_main(["models"]) == 0
        out = capsys.readouterr().out
        assert "resnet50" in out and "retinanet50" in out

    def test_run_command(self, capsys):
        code = cli_main(
            ["run", "single", "resnet10b", "--sequences", "1", "--frames", "30"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "mAP=" in out and "ops/frame" in out

    def test_run_catdet_command(self, capsys):
        code = cli_main(
            ["run", "catdet", "resnet50", "resnet10a",
             "--sequences", "1", "--frames", "30"]
        )
        assert code == 0
        assert "CaTDet" in capsys.readouterr().out


class TestViz:
    def test_render_frame_contains_gt(self, kitti_sequence):
        art = render_frame(kitti_sequence, 5, width=60)
        assert "#" in art
        assert art.count("\n") > 5

    def test_render_frame_with_detections_and_mask(self, kitti_sequence):
        from repro.boxes.mask import RegionMask
        from repro.simdet.detector import SimulatedDetector
        from repro.simdet.zoo import get_model

        det = SimulatedDetector(get_model("resnet50").profile, seed=0)
        detections = det.detect_full_frame(kitti_sequence, 5)
        mask = RegionMask(
            detections.boxes, kitti_sequence.width, kitti_sequence.height, 30
        )
        art = render_frame(
            kitti_sequence, 5, detections=detections, mask=mask, width=60
        )
        assert "o" in art or len(detections.above_score(0.5)) == 0
        assert "." in art
        assert "RoI mask" in art

    def test_render_frame_validation(self, kitti_sequence):
        with pytest.raises(ValueError, match="width"):
            render_frame(kitti_sequence, 0, width=5)

    def test_track_timeline(self, kitti_sequence):
        art = render_track_timeline(kitti_sequence, max_tracks=5)
        assert "=" in art
        lines = art.splitlines()
        assert len(lines) <= 7  # header + 5 tracks + ellipsis
