"""Property tests: online query evaluation == the offline reference.

The automaton (:mod:`repro.query.automaton`) and the dynamic program
(:mod:`repro.query.offline`) implement the same matching semantics with
completely different algorithms — an NFA advanced one frame at a time
versus an O(T^2 K) search over materialized timelines.  Hypothesis holds
them equivalent window-for-window over random specs and random
detection/track streams, plus the structural invariants every window
set must satisfy (ordering, non-overlap, in-bounds ticks).
"""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.core.results import FrameResult, OpsAccount
from repro.detections import Detections
from repro.query import (
    AllOf,
    Always,
    AnyOf,
    ClassPresent,
    CountAtLeast,
    Eventually,
    Not,
    QueryEvaluator,
    QuerySpec,
    Then,
    TrackPersisted,
    evaluate_frames,
)


@st.composite
def atomic_prop(draw):
    kind = draw(st.sampled_from(["class", "count", "persist"]))
    if kind == "class":
        return ClassPresent(draw(st.integers(0, 1)))
    if kind == "count":
        return CountAtLeast(
            draw(st.integers(1, 3)),
            label=draw(st.sampled_from([None, 0, 1])),
        )
    return TrackPersisted(
        draw(st.integers(1, 3)), label=draw(st.sampled_from([None, 0, 1]))
    )


@st.composite
def proposition(draw):
    base = draw(atomic_prop())
    wrap = draw(st.sampled_from(["plain", "not", "all", "any"]))
    if wrap == "not":
        return Not(base)
    if wrap == "all":
        return AllOf((base, draw(atomic_prop())))
    if wrap == "any":
        return AnyOf((base, draw(atomic_prop())))
    return base


@st.composite
def temporal_step(draw):
    prop = draw(proposition())
    if draw(st.booleans()):
        return Eventually(prop, within=draw(st.sampled_from([None, 1, 2, 4])))
    frames = draw(st.integers(1, 3))
    within = draw(st.sampled_from([None, frames, frames + 3]))
    return Always(prop, frames=frames, within=within)


@st.composite
def query_spec(draw):
    n_steps = draw(st.integers(1, 3))
    if n_steps == 1:
        expr = draw(temporal_step())
    else:
        expr = Then(tuple(draw(temporal_step()) for _ in range(n_steps)))
    return QuerySpec("prop-test", expr)


@st.composite
def frame_timeline(draw, max_frames=24):
    """Random frames: 0..3 detections each, labels and track ids varied."""
    n_frames = draw(st.integers(1, max_frames))
    frames = []
    for t in range(n_frames):
        n = draw(st.integers(0, 3))
        xs = [20.0 * i for i in range(n)]
        boxes = np.asarray(
            [[x, 10.0, x + 16.0, 26.0] for x in xs], dtype=float
        ).reshape(-1, 4)
        labels = np.asarray([draw(st.integers(0, 1)) for _ in range(n)], int)
        ids = np.asarray(
            [draw(st.sampled_from([-1, 1, 2, 3])) for _ in range(n)],
            dtype=np.int64,
        )
        if draw(st.booleans()):
            track_ids = ids
        else:
            track_ids = None  # tracker-less frames: ids default to -1
        frames.append(
            FrameResult(
                frame=t,
                detections=Detections(boxes, np.ones(n), labels),
                ops=OpsAccount(),
                track_ids=track_ids,
            )
        )
    return frames


def online_windows(spec, frames):
    ev = QueryEvaluator(spec, stream="s")
    for fr in frames:
        ev.observe(fr)
    return ev.windows


class TestOnlineOfflineEquivalence:
    @given(query_spec(), frame_timeline())
    @settings(max_examples=120, deadline=None)
    def test_windows_identical(self, spec, frames):
        online = online_windows(spec, frames)
        offline = evaluate_frames(spec, frames, stream="s").windows
        assert online == offline

    @given(query_spec(), frame_timeline())
    @settings(max_examples=60, deadline=None)
    def test_window_invariants(self, spec, frames):
        windows = online_windows(spec, frames)
        n_phases = len(
            spec.expr.steps if isinstance(spec.expr, Then) else (spec.expr,)
        )
        prev_end = -1
        for w in windows:
            assert 0 <= w.start_tick <= w.end_tick < len(frames)
            assert w.start_tick > prev_end  # never overlaps the previous
            prev_end = w.end_tick
            assert len(w.phases) == n_phases
            assert w.phases[-1] == w.end
            assert w.start == frames[w.start_tick].frame
            assert w.end == frames[w.end_tick].frame

    @given(query_spec(), frame_timeline())
    @settings(max_examples=40, deadline=None)
    def test_online_is_prefix_stable(self, spec, frames):
        """Windows already emitted never change as more frames arrive."""
        full = online_windows(spec, frames)
        cut = len(frames) // 2
        prefix = online_windows(spec, frames[:cut])
        completed = [w for w in full if w.end_tick < cut]
        assert prefix == completed
