"""Stream-churn regressions: state stays isolated as streams come and go.

Serving fleets see sequences join, leave, and return over long uptimes,
bounded by two LRU caps: :class:`~repro.engine.stream.StreamRouter`
evicts the least-recently-fed stream's pipeline beyond ``max_streams``,
and :class:`~repro.simdet.detector.SimulatedDetector` evicts RNG-latent
caches beyond ``max_cached_sequences``.  Neither bound may corrupt a
surviving stream: tracker state, detector determinism, and per-stream
query evaluation must behave exactly as if each stream ran alone.
"""

import itertools

import numpy as np
import pytest

from repro.core.config import SystemConfig
from repro.core.pipeline import build_system
from repro.datasets.kitti import kitti_like_dataset
from repro.engine.stream import FrameRef, StreamRouter
from repro.query import (
    ClassPresent,
    Eventually,
    QueryEvaluator,
    QuerySpec,
    Then,
    TrackPersisted,
    evaluate_frames,
)

CATDET = SystemConfig("catdet", "resnet50", "resnet10a", detailed_ops=False)

QUERY = QuerySpec(
    "churn",
    Then((Eventually(ClassPresent(0)), Eventually(TrackPersisted(3, label=0), within=30))),
)


def assert_frames_identical(fa, fb):
    assert fa.frame == fb.frame
    np.testing.assert_array_equal(fa.detections.boxes, fb.detections.boxes)
    np.testing.assert_array_equal(fa.detections.scores, fb.detections.scores)
    np.testing.assert_array_equal(fa.detections.labels, fb.detections.labels)
    if fa.track_ids is None:
        assert fb.track_ids is None
    else:
        np.testing.assert_array_equal(fa.track_ids, fb.track_ids)


def isolated_frames(system, sequence, n_frames):
    return list(itertools.islice(system.stream(sequence), n_frames))


@pytest.fixture(scope="module")
def churn_dataset():
    return kitti_like_dataset(num_sequences=4, frames_per_sequence=30)


class TestRouterEviction:
    def test_survivors_unaffected_by_eviction(self, churn_dataset):
        """Streams still under the cap match their isolated runs exactly."""
        seqs = churn_dataset.sequences[:3]
        system = build_system(CATDET)
        router = StreamRouter(system.build_pipeline, max_streams=2)
        n = 20
        # s0 and s1 interleave; s2 joins mid-way, evicting s0 (the LRU).
        results = {seq.name: [] for seq in seqs}
        for f in range(n):
            for seq in (seqs[1], seqs[2]) if f >= 10 else (seqs[0], seqs[1]):
                results[seq.name].append(router.feed(seq, f))
        assert router.active_streams == 2
        # s1 was never evicted: bit-identical to streaming it alone.
        reference = isolated_frames(build_system(CATDET), seqs[1], n)
        for got, want in zip(results[seqs[1].name], reference):
            assert_frames_identical(got, want)
        # s2 joined at frame 10 with a fresh pipeline: identical to an
        # isolated stream that also starts at frame 10.
        ref_stream = build_system(CATDET).stream(
            FrameRef(seqs[2], f) for f in range(10, n)
        )
        for got, want in zip(results[seqs[2].name], ref_stream):
            assert_frames_identical(got, want)

    def test_evicted_stream_restarts_fresh(self, churn_dataset):
        seq_a, seq_b, seq_c = churn_dataset.sequences[:3]
        system = build_system(CATDET)
        router = StreamRouter(system.build_pipeline, max_streams=2)
        for f in range(5):
            router.feed(seq_a, f)
        router.feed(seq_b, 0)
        router.feed(seq_c, 0)  # evicts seq_a
        returned = router.feed(seq_a, 5)
        # A fresh pipeline fed only frame 5 is what "restarts fresh" means.
        fresh = build_system(CATDET).stream([FrameRef(seq_a, 5)])
        assert_frames_identical(returned, next(iter(fresh)))

    def test_queries_survive_interleaving(self, churn_dataset):
        """Per-stream evaluators over an interleaved feed == isolated runs."""
        seqs = churn_dataset.sequences[:3]
        n = 25
        system = build_system(CATDET)
        evaluators = {seq.name: QueryEvaluator(QUERY, seq.name) for seq in seqs}
        refs = [FrameRef(seq, f) for f in range(n) for seq in seqs]
        for ref, result in zip(refs, system.stream(refs)):
            evaluators[ref.sequence.name].observe(result)
        for seq in seqs:
            isolated = evaluate_frames(
                QUERY,
                isolated_frames(build_system(CATDET), seq, n),
                stream=seq.name,
            )
            assert evaluators[seq.name].windows == isolated.windows


class TestDetectorCacheBounds:
    def test_eviction_never_changes_results(self, churn_dataset):
        """max_cached_sequences is a memory bound, not a behavior knob."""
        n = 15
        reference = {
            seq.name: isolated_frames(build_system(CATDET), seq, n)
            for seq in churn_dataset.sequences
        }
        system = build_system(CATDET)
        for det in system._detectors():
            det.max_cached_sequences = 2
        # Visit all 4 sequences round-robin: every revisit of a sequence
        # re-derives evicted latents, which must reproduce bit-identically.
        evaluators = {
            seq.name: QueryEvaluator(QUERY, seq.name)
            for seq in churn_dataset.sequences
        }
        refs = [
            FrameRef(seq, f) for f in range(n) for seq in churn_dataset.sequences
        ]
        for ref, result in zip(refs, system.stream(refs)):
            assert_frames_identical(result, reference[ref.sequence.name][ref.frame])
            evaluators[ref.sequence.name].observe(result)
        for seq in churn_dataset.sequences:
            isolated = evaluate_frames(QUERY, reference[seq.name], stream=seq.name)
            assert evaluators[seq.name].windows == isolated.windows

    def test_cache_stays_bounded(self, churn_dataset):
        system = build_system(CATDET)
        detectors = system._detectors()
        assert detectors
        for det in detectors:
            det.max_cached_sequences = 2
        for seq in churn_dataset.sequences:
            for _ in system.stream([FrameRef(seq, 0)]):
                pass
        for det in detectors:
            assert len(det._owners) <= 2
