"""Unit tests for validation helpers."""

import numpy as np
import pytest

from repro.utils.validation import (
    check_finite,
    check_in_range,
    check_nonnegative,
    check_positive,
    check_probability,
    check_shape,
)


class TestScalarChecks:
    def test_positive_accepts(self):
        assert check_positive(2.5, "x") == 2.5

    @pytest.mark.parametrize("bad", [0.0, -1.0, float("nan"), float("inf")])
    def test_positive_rejects(self, bad):
        with pytest.raises(ValueError, match="x"):
            check_positive(bad, "x")

    def test_nonnegative(self):
        assert check_nonnegative(0.0, "x") == 0.0
        with pytest.raises(ValueError):
            check_nonnegative(-0.1, "x")

    def test_probability(self):
        assert check_probability(1.0, "p") == 1.0
        assert check_probability(0.0, "p") == 0.0
        with pytest.raises(ValueError, match="p"):
            check_probability(1.01, "p")

    def test_in_range_inclusive(self):
        assert check_in_range(5, "v", 0, 5) == 5.0
        with pytest.raises(ValueError):
            check_in_range(5, "v", 0, 5, inclusive=False)


class TestArrayChecks:
    def test_finite_passes(self):
        arr = check_finite(np.ones(3), "a")
        assert arr.shape == (3,)

    def test_finite_rejects_nan(self):
        with pytest.raises(ValueError, match="non-finite"):
            check_finite(np.array([1.0, np.nan]), "a")

    def test_finite_empty_ok(self):
        check_finite(np.zeros(0), "a")

    def test_shape_wildcards(self):
        arr = check_shape(np.zeros((7, 4)), "boxes", (None, 4))
        assert arr.shape == (7, 4)

    def test_shape_wrong_ndim(self):
        with pytest.raises(ValueError, match="dimensions"):
            check_shape(np.zeros(4), "boxes", (None, 4))

    def test_shape_wrong_axis(self):
        with pytest.raises(ValueError, match="axis 1"):
            check_shape(np.zeros((3, 5)), "boxes", (None, 4))
