"""Tests for anchor generation, experiment IO and threshold tuning."""

import json

import numpy as np
import pytest

from repro.boxes.anchors import (
    AnchorCoverage,
    anchor_coverage,
    anchor_shapes,
    generate_anchors,
)
from repro.core.config import SystemConfig
from repro.harness.experiment import run_experiment, standard_kitti
from repro.harness.io import load_experiment_summary, save_experiment
from repro.harness.tuning import (
    cheapest_cthresh_for_accuracy,
    cthresh_for_budget,
    sweep_operating_points,
)
from repro.metrics.kitti_eval import HARD


class TestAnchorShapes:
    def test_count_is_ratios_times_scales(self):
        shapes = anchor_shapes(ratios=(0.5, 1.0, 2.0), scales=(1.0, 2.0, 4.0, 8.0))
        assert shapes.shape == (12, 2)

    def test_area_and_ratio(self):
        shapes = anchor_shapes(ratios=(2.0,), scales=(8.0,), stride=16)
        w, h = shapes[0]
        assert w * h == pytest.approx((8 * 16) ** 2)
        assert h / w == pytest.approx(2.0)

    def test_invalid_ratio(self):
        with pytest.raises(ValueError, match="ratios"):
            anchor_shapes(ratios=(0.0,))


class TestGenerateAnchors:
    def test_grid_size(self):
        anchors = generate_anchors(160, 80, stride=16, clip=False)
        # 10x5 locations x 12 shapes
        assert anchors.shape == (10 * 5 * 12, 4)

    def test_kitti_anchor_count(self):
        anchors = generate_anchors(1242, 375)
        assert anchors.shape[0] == 78 * 24 * 12

    def test_clipping(self):
        anchors = generate_anchors(160, 80)
        assert np.all(anchors[:, 0] >= 0) and np.all(anchors[:, 2] <= 160)

    def test_invalid_size(self):
        with pytest.raises(ValueError, match="image size"):
            generate_anchors(0, 10)


class TestAnchorCoverage:
    def test_full_coverage_of_anchor_sized_boxes(self):
        anchors = generate_anchors(1242, 375, clip=False)
        # Ground truths exactly equal to some anchors: perfect coverage.
        rng = np.random.default_rng(0)
        gt = anchors[rng.integers(0, anchors.shape[0], size=20)]
        cov = anchor_coverage(gt, anchors, iou_threshold=0.99)
        assert cov.covered_fraction == 1.0
        assert cov.mean_best_iou == pytest.approx(1.0)

    def test_kitti_gt_mostly_covered(self, kitti_sequence):
        """The standard anchor grid covers most KITTI-sized objects at 0.5."""
        anchors = generate_anchors(1242, 375)
        boxes = []
        for frame in range(0, 40, 5):
            ann = kitti_sequence.annotations(frame)
            keep = (
                ((ann.boxes[:, 3] - ann.boxes[:, 1]) >= 25)
                & ((ann.boxes[:, 2] - ann.boxes[:, 0]) >= 20)
            )
            boxes.append(ann.boxes[keep])
        gt = np.concatenate(boxes, axis=0)
        cov = anchor_coverage(gt, anchors, iou_threshold=0.5)
        assert cov.covered_fraction > 0.8

    def test_tiny_objects_uncovered(self):
        anchors = generate_anchors(1242, 375)
        tiny = np.array([[100.0, 100.0, 104.0, 104.0]])  # 4 px
        cov = anchor_coverage(tiny, anchors, iou_threshold=0.5)
        assert cov.covered_fraction == 0.0

    def test_empty_gt(self):
        cov = anchor_coverage(np.zeros((0, 4)), generate_anchors(160, 80))
        assert cov.num_gt == 0 and cov.covered_fraction == 0.0


class TestExperimentIO:
    @pytest.fixture(scope="class")
    def experiment(self):
        return run_experiment(
            SystemConfig("catdet", "resnet50", "resnet10a"),
            standard_kitti(1, 40),
            (HARD,),
        )

    def test_roundtrip_summary(self, experiment, tmp_path):
        path = tmp_path / "run.json"
        save_experiment(experiment, path)
        payload = load_experiment_summary(path)
        assert payload["label"] == experiment.label
        assert payload["config"]["proposal_model"] == "resnet10a"
        assert payload["metrics"]["hard"]["mAP_r40"] == pytest.approx(
            experiment.mean_ap("hard")
        )
        assert "mD@0.8" in payload["metrics"]["hard"]

    def test_detections_optional(self, experiment, tmp_path):
        slim = tmp_path / "slim.json"
        fat = tmp_path / "fat.json"
        save_experiment(experiment, slim, include_detections=False)
        save_experiment(experiment, fat, include_detections=True)
        assert fat.stat().st_size > slim.stat().st_size * 2
        payload = load_experiment_summary(fat)
        seq = next(iter(payload["run"]["sequences"].values()))
        assert len(seq["frames"]) == seq["num_frames"]

    def test_unknown_format_rejected(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text(json.dumps({"format": "other/9"}))
        with pytest.raises(ValueError, match="unsupported"):
            load_experiment_summary(path)


class TestTuning:
    @pytest.fixture(scope="class")
    def dataset(self):
        return standard_kitti(1, 40)

    def test_sweep_sorted_and_monotone_ops(self, dataset):
        points = sweep_operating_points(
            SystemConfig("catdet", "resnet50", "resnet10a"),
            dataset,
            c_values=(0.05, 0.6),
        )
        assert points[0].c_thresh < points[1].c_thresh
        assert points[1].ops_gops <= points[0].ops_gops + 1.0

    def test_budget_selection(self, dataset):
        config = SystemConfig("catdet", "resnet50", "resnet10a")
        point = cthresh_for_budget(config, dataset, budget_gops=80.0,
                                   c_values=(0.05, 0.3))
        assert point is not None
        assert point.ops_gops <= 80.0

    def test_budget_unreachable(self, dataset):
        config = SystemConfig("catdet", "resnet50", "resnet10a")
        assert cthresh_for_budget(config, dataset, budget_gops=5.0,
                                  c_values=(0.05,)) is None

    def test_accuracy_selection(self, dataset):
        config = SystemConfig("catdet", "resnet50", "resnet10a")
        point = cheapest_cthresh_for_accuracy(config, dataset, min_map=0.3,
                                              c_values=(0.05, 0.3))
        assert point is not None and point.mean_ap >= 0.3

    def test_single_model_rejected(self, dataset):
        with pytest.raises(ValueError, match="C-thresh"):
            sweep_operating_points(SystemConfig("single", "resnet50"), dataset)

    def test_invalid_args(self, dataset):
        config = SystemConfig("catdet", "resnet50", "resnet10a")
        with pytest.raises(ValueError, match="budget"):
            cthresh_for_budget(config, dataset, budget_gops=0.0)
        with pytest.raises(ValueError, match="min_map"):
            cheapest_cthresh_for_accuracy(config, dataset, min_map=0.0)
