"""Session facade: cache correctness (bit-identical hits), dedupe, shims."""

import numpy as np
import pytest

import repro.core.pipeline as pipeline_mod
from repro.api.cache import ResultCache, fingerprint_dataset
from repro.api.session import Session, build_dataset
from repro.api.spec import DatasetSpec, EvalSpec, ExecSpec, ExperimentSpec
from repro.core.config import SystemConfig
from repro.harness.experiment import run_experiment, standard_kitti
from repro.metrics.kitti_eval import HARD, MODERATE, DifficultyFilter

TINY = DatasetSpec("kitti", num_sequences=1, frames_per_sequence=25)


def _spec(**system_kw) -> ExperimentSpec:
    config = SystemConfig(
        system_kw.pop("kind", "catdet"),
        system_kw.pop("refinement", "resnet50"),
        system_kw.pop("proposal", "resnet10a"),
        **system_kw,
    )
    return ExperimentSpec(system=config, dataset=TINY, eval=EvalSpec(("hard",)))


def _assert_bit_identical(a, b):
    assert a.config == b.config
    assert set(a.run.sequences) == set(b.run.sequences)
    for name in a.run.sequences:
        fa, fb = a.run.sequences[name].frames, b.run.sequences[name].frames
        assert len(fa) == len(fb)
        for x, y in zip(fa, fb):
            assert x.frame == y.frame
            assert np.array_equal(x.detections.boxes, y.detections.boxes)
            assert np.array_equal(x.detections.scores, y.detections.scores)
            assert np.array_equal(x.detections.labels, y.detections.labels)
            assert x.ops.proposal == y.ops.proposal
            assert x.ops.refinement == y.ops.refinement
            assert x.ops.refinement_from_tracker == y.ops.refinement_from_tracker
            assert x.ops.refinement_from_proposal == y.ops.refinement_from_proposal
            assert x.num_regions == y.num_regions
            assert x.coverage_fraction == y.coverage_fraction
    assert set(a.evaluations) == set(b.evaluations)
    for name in a.evaluations:
        ea, eb = a.evaluations[name], b.evaluations[name]
        assert ea.mean_ap() == eb.mean_ap()
        for ca, cb in zip(ea.per_class, eb.per_class):
            assert np.array_equal(ca.scores, cb.scores)
            assert np.array_equal(ca.tp, cb.tp)
            assert ca.num_gt == cb.num_gt
            assert len(ca.tracks) == len(cb.tracks)
            for ta, tb in zip(ca.tracks, cb.tracks):
                assert ta.frames == tb.frames
                assert ta.matched_scores == tb.matched_scores
                assert ta.ever_cared == tb.ever_cared


class TestSessionCache:
    def test_second_run_is_bit_identical_without_pipeline(self, tmp_path, monkeypatch):
        session = Session(cache_dir=tmp_path / "cache")
        spec = _spec()
        first = session.run(spec)
        assert session.cache_misses == 1

        def _boom(*args, **kwargs):  # pragma: no cover - failure path
            raise AssertionError("pipeline ran on a warm cache")

        monkeypatch.setattr("repro.api.session.run_on_dataset", _boom)
        second = session.run(spec)
        assert session.cache_hits == 1
        _assert_bit_identical(first, second)
        # Delay metrics survive the -Infinity JSON round trip.
        assert first.mean_delay("hard") == second.mean_delay("hard")

    def test_cache_shared_across_sessions(self, tmp_path):
        spec = _spec()
        a = Session(cache_dir=tmp_path)
        first = a.run(spec)
        b = Session(cache_dir=tmp_path)
        second = b.run(spec)
        assert b.cache_hits == 1 and b.cache_misses == 0
        _assert_bit_identical(first, second)

    def test_no_cache_dir_means_no_files(self, tmp_path):
        session = Session()
        session.run(_spec())
        assert session.cache is None
        assert list(tmp_path.iterdir()) == []

    def test_use_cache_false_bypasses(self, tmp_path):
        session = Session(cache_dir=tmp_path)
        session.run(_spec(), use_cache=False)
        assert len(session.cache) == 0

    def test_corrupt_entry_recomputed(self, tmp_path):
        session = Session(cache_dir=tmp_path)
        spec = _spec()
        first = session.run(spec)
        path = session.cache.path_for(spec.fingerprint)
        path.write_text("{not json", encoding="utf-8")
        second = session.run(spec)
        _assert_bit_identical(first, second)
        # The corrupt entry was rewritten with a valid payload.
        third = session.run(spec)
        _assert_bit_identical(first, third)

    def test_exec_variants_share_entries(self, tmp_path):
        session = Session(cache_dir=tmp_path)
        spec = _spec()
        serial = session.run(spec)
        import dataclasses

        parallel_spec = dataclasses.replace(spec, exec=ExecSpec(workers=2))
        parallel = session.run(parallel_spec)
        assert session.cache_hits == 1
        _assert_bit_identical(serial, parallel)


class TestRunMany:
    def test_dedupes_identical_specs(self, tmp_path, monkeypatch):
        session = Session(cache_dir=tmp_path)
        calls = []
        real = pipeline_mod.run_on_dataset

        def _counting(*args, **kwargs):
            calls.append(1)
            return real(*args, **kwargs)

        monkeypatch.setattr("repro.api.session.run_on_dataset", _counting)
        spec = _spec()
        cheaper = spec.with_system(c_thresh=0.4)
        results = session.run_many([spec, cheaper, spec, spec])
        assert len(results) == 4
        assert len(calls) == 2
        assert results[0] is results[2] is results[3]
        _assert_bit_identical(results[0], results[2])

    def test_order_preserved(self):
        session = Session()
        specs = [_spec(), _spec(kind="cascade"), _spec()]
        results = session.run_many(specs)
        assert [r.config for r in results] == [s.system for s in specs]


class TestRunExperimentShim:
    def test_signature_and_result_shape(self):
        dataset = build_dataset(TINY)
        result = run_experiment(
            SystemConfig("cascade", "resnet50", "resnet10a"), dataset
        )
        assert set(result.evaluations) == {"moderate", "hard"}
        assert result.ops_gops > 0

    def test_shim_caches_by_dataset_content(self, tmp_path, monkeypatch):
        session = Session(cache_dir=tmp_path)
        dataset = build_dataset(TINY)
        config = SystemConfig("catdet", "resnet50", "resnet10a")
        first = run_experiment(config, dataset, (HARD,), session=session)
        monkeypatch.setattr(
            "repro.api.session.run_on_dataset",
            lambda *a, **k: pytest.fail("pipeline ran on a warm cache"),
        )
        second = run_experiment(config, dataset, (HARD,), session=session)
        assert session.cache_hits == 1
        _assert_bit_identical(first, second)

    def test_custom_difficulty_bypasses_cache(self, tmp_path):
        session = Session(cache_dir=tmp_path)
        dataset = build_dataset(TINY)
        custom = DifficultyFilter(
            name="hard", min_height=30.0, max_occlusion=0.9, max_truncation=0.9
        )
        run_experiment(
            SystemConfig("single", "resnet10a"), dataset, (custom,), session=session
        )
        assert len(session.cache) == 0

    def test_spec_and_shim_agree(self, tmp_path):
        """The declarative and classic paths produce identical numbers."""
        spec = _spec()
        via_spec = Session().run(spec)
        via_shim = run_experiment(spec.system, build_dataset(TINY), (HARD,))
        _assert_bit_identical(via_spec, via_shim)


class TestDatasetHelpers:
    def test_build_dataset_memoized(self):
        assert build_dataset(TINY) is build_dataset(TINY)

    def test_standard_kitti_shim_memoized(self):
        assert standard_kitti(2, 30) is standard_kitti(2, 30)

    def test_fingerprint_tracks_content(self):
        a = build_dataset(TINY)
        b = build_dataset(DatasetSpec("kitti", 1, 25, seed=7))
        assert fingerprint_dataset(a) == fingerprint_dataset(a)
        assert fingerprint_dataset(a) != fingerprint_dataset(b)

    def test_unknown_family_error(self):
        with pytest.raises(KeyError, match="dataset family"):
            build_dataset(DatasetSpec("imagenet"))


class TestResultCacheUnit:
    def test_len_and_clear(self, tmp_path):
        session = Session(cache_dir=tmp_path)
        session.run(_spec())
        session.run(_spec(kind="cascade"))
        cache = session.cache
        assert len(cache) == 2
        assert cache.clear() == 2
        assert len(cache) == 0

    def test_contains(self, tmp_path):
        session = Session(cache_dir=tmp_path)
        spec = _spec()
        assert spec.fingerprint not in ResultCache(tmp_path)
        session.run(spec)
        assert spec.fingerprint in ResultCache(tmp_path)
