"""Unit tests for the synthetic world generator."""

import numpy as np
import pytest

from repro.datasets.kitti import kitti_world_config
from repro.datasets.synth import (
    ClassPopulation,
    SyntheticWorldConfig,
    _occlusion_profile,
    generate_dataset,
    generate_sequence,
)
from repro.datasets.types import ClassSpec
from repro.datasets.motion_models import TrajectoryConfig


def _config():
    return kitti_world_config()


class TestGenerateSequence:
    def test_deterministic_in_seed(self):
        a = generate_sequence(_config(), 40, "s", seed=5)
        b = generate_sequence(_config(), 40, "s", seed=5)
        assert len(a.tracks) == len(b.tracks)
        for ta, tb in zip(a.tracks, b.tracks):
            np.testing.assert_array_equal(ta.boxes, tb.boxes)
            np.testing.assert_array_equal(ta.occlusion, tb.occlusion)

    def test_different_seeds_differ(self):
        a = generate_sequence(_config(), 40, "s", seed=5)
        b = generate_sequence(_config(), 40, "s", seed=6)
        differs = len(a.tracks) != len(b.tracks) or any(
            ta.boxes.shape != tb.boxes.shape or not np.allclose(ta.boxes, tb.boxes)
            for ta, tb in zip(a.tracks, b.tracks)
        )
        assert differs

    def test_tracks_inside_sequence_bounds(self):
        seq = generate_sequence(_config(), 50, "s", seed=1)
        for track in seq.tracks:
            assert track.first_frame >= 0
            assert track.last_frame < 50

    def test_tracks_persist_multiple_frames(self):
        """Temporal locality: objects span many frames, not blips."""
        seq = generate_sequence(_config(), 60, "s", seed=2)
        assert seq.tracks, "world should contain objects"
        assert np.mean([t.length for t in seq.tracks]) > 5

    def test_smooth_motion(self):
        """Spatial locality: frame-to-frame displacement is bounded."""
        seq = generate_sequence(_config(), 60, "s", seed=3)
        for track in seq.tracks:
            if track.length < 2:
                continue
            centers = (track.boxes[:, :2] + track.boxes[:, 2:]) / 2
            steps = np.linalg.norm(np.diff(centers, axis=0), axis=1)
            assert steps.max() < 60.0  # px/frame, generous bound

    def test_both_classes_present(self):
        seq = generate_sequence(_config(), 120, "s", seed=4)
        labels = {t.label for t in seq.tracks}
        assert labels == {0, 1}

    def test_occlusion_and_truncation_in_range(self):
        seq = generate_sequence(_config(), 60, "s", seed=5)
        for track in seq.tracks:
            assert np.all(track.occlusion >= 0) and np.all(track.occlusion <= 1)
            assert np.all(track.truncation >= 0) and np.all(track.truncation <= 1)

    def test_some_objects_enter_midway(self):
        seq = generate_sequence(_config(), 120, "s", seed=6)
        assert any(t.first_frame > 0 for t in seq.tracks)

    def test_invalid_num_frames(self):
        with pytest.raises(ValueError, match="num_frames"):
            generate_sequence(_config(), 0, "s", seed=1)


class TestOcclusionProfile:
    def _pop(self, **kw):
        defaults = dict(
            spec=ClassSpec("C", 0),
            trajectory=TrajectoryConfig(),
            occlusion_rate=50.0,
            occlusion_duration_mean=5.0,
        )
        defaults.update(kw)
        return ClassPopulation(**defaults)

    def test_occluded_entry_ramps_down(self):
        rng = np.random.default_rng(0)
        pop = self._pop(occlusion_rate=0.0, entry_occlusion_decay=(10, 10))
        occ = _occlusion_profile(30, pop, rng, occluded_entry=True)
        assert occ[0] > 0.5
        assert occ[0] > occ[5] > occ[9]
        assert np.all(occ[10:] == 0.0)

    def test_no_entry_occlusion_when_disabled(self):
        rng = np.random.default_rng(0)
        pop = self._pop(occlusion_rate=0.0)
        occ = _occlusion_profile(30, pop, rng, occluded_entry=False)
        assert np.all(occ == 0.0)

    def test_episodes_bounded(self):
        rng = np.random.default_rng(1)
        occ = _occlusion_profile(100, self._pop(), rng)
        assert np.all(occ <= 1.0) and np.all(occ >= 0.0)


class TestGenerateDataset:
    def test_sequence_content_stable_under_count(self):
        """Sequence i is identical regardless of how many are generated."""
        small = generate_dataset(
            _config(), name="d", num_sequences=2, frames_per_sequence=30, seed=9
        )
        big = generate_dataset(
            _config(), name="d", num_sequences=4, frames_per_sequence=30, seed=9
        )
        for sa, sb in zip(small.sequences, big.sequences[:2]):
            assert len(sa.tracks) == len(sb.tracks)
            for ta, tb in zip(sa.tracks, sb.tracks):
                np.testing.assert_array_equal(ta.boxes, tb.boxes)

    def test_validation(self):
        with pytest.raises(ValueError, match="num_sequences"):
            generate_dataset(
                _config(), name="d", num_sequences=0, frames_per_sequence=5, seed=1
            )

    def test_population_validation(self):
        with pytest.raises(ValueError, match="edge_entry_prob"):
            ClassPopulation(
                spec=ClassSpec("C", 0),
                trajectory=TrajectoryConfig(),
                edge_entry_prob=1.5,
            )
        with pytest.raises(ValueError, match="occlusion_depth_range"):
            ClassPopulation(
                spec=ClassSpec("C", 0),
                trajectory=TrajectoryConfig(),
                occlusion_depth_range=(0.9, 0.2),
            )

    def test_world_config_validation(self):
        with pytest.raises(ValueError, match="population"):
            SyntheticWorldConfig(width=10, height=10, fps=10, populations=())
