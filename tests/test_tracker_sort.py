"""Unit tests for the SORT baseline tracker."""

import numpy as np
import pytest

from repro.detections import Detections
from repro.tracker.sort import Sort, SortConfig


def dets(boxes, labels=None):
    boxes = np.asarray(boxes, dtype=float).reshape(-1, 4)
    n = boxes.shape[0]
    return Detections(
        boxes,
        np.ones(n),
        np.zeros(n, dtype=int) if labels is None else np.asarray(labels),
    )


class TestSort:
    def test_track_confirmed_after_min_hits(self):
        sort = Sort(SortConfig(min_hits=3, max_age=1))
        box = [0, 0, 50, 50]
        # Early frames (frame < min_hits) are emitted immediately per the
        # reference implementation.
        out0 = sort.update(dets([box]))
        assert len(out0) == 1

    def test_steady_object_tracked_with_stable_id(self):
        sort = Sort(SortConfig(min_hits=1, max_age=2))
        tracklet_ids = set()
        for t in range(10):
            out = sort.update(dets([[3 * t, 0, 3 * t + 40, 40]]))
            assert len(out) == 1
        assert len(sort.tracklets) == 1
        tracklet = next(iter(sort.tracklets.values()))
        assert len(tracklet) == 10

    def test_track_dropped_after_max_age(self):
        sort = Sort(SortConfig(min_hits=1, max_age=1))
        sort.update(dets([[0, 0, 40, 40]]))
        sort.update(Detections.empty())
        sort.update(Detections.empty())
        out = sort.update(dets([[0, 0, 40, 40]]))
        # Old track died; the new detection starts a new id.
        assert len(sort.tracklets) >= 1
        ids = [t.track_id for t in sort.tracklets.values()]
        assert max(ids) > min(ids) or len(ids) == 1

    def test_class_separation(self):
        sort = Sort(SortConfig(min_hits=1))
        out = sort.update(dets([[0, 0, 40, 40], [0, 0, 40, 40]], labels=[0, 1]))
        assert len(out) == 2
        assert sorted(out.labels.tolist()) == [0, 1]

    def test_reset(self):
        sort = Sort()
        sort.update(dets([[0, 0, 40, 40]]))
        sort.reset()
        assert sort.tracklets == {}
        assert len(sort.update(Detections.empty())) == 0

    def test_invalid_config(self):
        with pytest.raises(ValueError, match="max_age"):
            SortConfig(max_age=-1)
        with pytest.raises(ValueError, match="iou_threshold"):
            SortConfig(iou_threshold=2.0)

    def test_tracklet_records_frames(self):
        sort = Sort(SortConfig(min_hits=1))
        for t in range(4):
            sort.update(dets([[t, 0, t + 40, 40]]))
        tracklet = next(iter(sort.tracklets.values()))
        assert tracklet.frames == [0, 1, 2, 3]
        assert len(tracklet.boxes) == 4
