"""Unit + reference tests for the from-scratch Hungarian solver."""

import numpy as np
import pytest
from scipy.optimize import linear_sum_assignment as scipy_lsa

from repro.hungarian import hungarian, linear_sum_assignment


class TestBasics:
    def test_identity_matrix(self):
        cost = np.eye(3)
        rows, cols = hungarian(1.0 - cost)  # maximize the diagonal
        assert rows.tolist() == [0, 1, 2]
        assert cols.tolist() == [0, 1, 2]

    def test_simple_2x2(self):
        cost = np.array([[1.0, 2.0], [2.0, 1.0]])
        rows, cols = hungarian(cost)
        assert cost[rows, cols].sum() == pytest.approx(2.0)

    def test_rectangular_wide(self):
        cost = np.array([[10.0, 1.0, 10.0]])
        rows, cols = hungarian(cost)
        assert rows.tolist() == [0]
        assert cols.tolist() == [1]

    def test_rectangular_tall(self):
        cost = np.array([[10.0], [1.0], [5.0]])
        rows, cols = hungarian(cost)
        assert rows.tolist() == [1]
        assert cols.tolist() == [0]

    def test_empty(self):
        rows, cols = hungarian(np.zeros((0, 5)))
        assert rows.shape == (0,) and cols.shape == (0,)

    def test_non_2d_raises(self):
        with pytest.raises(ValueError, match="2-D"):
            hungarian(np.zeros(4))

    def test_nonfinite_raises(self):
        with pytest.raises(ValueError, match="finite"):
            hungarian(np.array([[np.inf, 1.0], [1.0, 2.0]]))

    def test_rows_sorted_and_unique(self):
        rng = np.random.default_rng(0)
        cost = rng.normal(size=(6, 9))
        rows, cols = hungarian(cost)
        assert rows.tolist() == sorted(rows.tolist())
        assert len(set(rows.tolist())) == len(rows)
        assert len(set(cols.tolist())) == len(cols)


class TestAgainstScipy:
    @pytest.mark.parametrize("seed", range(8))
    def test_square_random(self, seed):
        rng = np.random.default_rng(seed)
        cost = rng.normal(size=(7, 7))
        r1, c1 = hungarian(cost)
        r2, c2 = scipy_lsa(cost)
        assert cost[r1, c1].sum() == pytest.approx(cost[r2, c2].sum())

    @pytest.mark.parametrize("shape", [(3, 8), (8, 3), (1, 5), (5, 1), (2, 2)])
    def test_rectangular_random(self, shape):
        rng = np.random.default_rng(hash(shape) % 2**31)
        cost = rng.normal(size=shape) * 10
        r1, c1 = hungarian(cost)
        r2, c2 = scipy_lsa(cost)
        assert len(r1) == min(shape)
        assert cost[r1, c1].sum() == pytest.approx(cost[r2, c2].sum())

    def test_maximize_flag(self):
        rng = np.random.default_rng(42)
        cost = rng.random((5, 5))
        r1, c1 = linear_sum_assignment(cost, maximize=True)
        r2, c2 = scipy_lsa(cost, maximize=True)
        assert cost[r1, c1].sum() == pytest.approx(cost[r2, c2].sum())

    def test_integer_costs(self):
        cost = np.array([[4, 1, 3], [2, 0, 5], [3, 2, 2]], dtype=float)
        r1, c1 = hungarian(cost)
        r2, c2 = scipy_lsa(cost)
        assert cost[r1, c1].sum() == pytest.approx(cost[r2, c2].sum())

    def test_ties_still_optimal(self):
        cost = np.ones((4, 4))
        rows, cols = hungarian(cost)
        assert cost[rows, cols].sum() == pytest.approx(4.0)


class TestFastPaths:
    """The single-row and diagonal-dominant shortcuts must be invisible:
    same output as the full augmenting-path solver."""

    def test_single_row_first_minimum(self):
        rows, cols = hungarian(np.array([[3.0, 1.0, 1.0, 2.0]]))
        assert rows.tolist() == [0]
        assert cols.tolist() == [1]  # first of the tied minima

    def test_single_column_first_minimum(self):
        rows, cols = hungarian(np.array([[3.0], [1.0], [1.0]]))
        assert rows.tolist() == [1]
        assert cols.tolist() == [0]

    @pytest.mark.parametrize("seed", range(8))
    def test_diagonal_dominant_matches_scipy(self, seed):
        """Strictly unique row minima at distinct columns -> the optimum is
        unique, so ours and SciPy's must agree element-for-element."""
        rng = np.random.default_rng(seed)
        n = int(rng.integers(2, 12))
        cost = rng.uniform(1.0, 2.0, size=(n, n))
        perm = rng.permutation(n)
        cost[np.arange(n), perm] = rng.uniform(0.0, 0.5, size=n)
        r1, c1 = hungarian(cost)
        r2, c2 = scipy_lsa(cost)
        np.testing.assert_array_equal(r1, r2)
        np.testing.assert_array_equal(c1, c2)

    def test_near_dominant_falls_through_to_full_solver(self):
        """Duplicate argmin columns must NOT take the shortcut; the result
        still has to be optimal."""
        cost = np.array(
            [
                [0.1, 5.0, 5.0],
                [0.2, 5.0, 6.0],  # both rows want column 0
                [5.0, 0.3, 5.0],
            ]
        )
        rows, cols = hungarian(cost)
        r2, c2 = scipy_lsa(cost)
        assert cost[rows, cols].sum() == pytest.approx(cost[r2, c2].sum())
        assert sorted(cols.tolist()) == [0, 1, 2]

    def test_tied_row_minimum_falls_through(self):
        """A row whose minimum appears twice is not strictly unique."""
        cost = np.array([[1.0, 1.0, 5.0], [5.0, 2.0, 5.0], [5.0, 5.0, 3.0]])
        rows, cols = hungarian(cost)
        r2, c2 = scipy_lsa(cost)
        assert cost[rows, cols].sum() == pytest.approx(cost[r2, c2].sum())

    @pytest.mark.parametrize("shape", [(3, 9), (9, 3)])
    def test_rectangular_dominant_matches_scipy(self, shape):
        rng = np.random.default_rng(99)
        n, m = shape
        k = min(n, m)
        cost = rng.uniform(1.0, 2.0, size=shape)
        if n <= m:
            cost[np.arange(k), rng.permutation(m)[:k]] = 0.01 * (1 + np.arange(k))
        else:
            cost[rng.permutation(n)[:k], np.arange(k)] = 0.01 * (1 + np.arange(k))
        r1, c1 = hungarian(cost)
        r2, c2 = scipy_lsa(cost)
        np.testing.assert_array_equal(r1, r2)
        np.testing.assert_array_equal(c1, c2)
