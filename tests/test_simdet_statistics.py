"""Statistical validation of the detector simulation.

These tests verify the *distributional* properties the reproduction relies
on: detection probability responds to size/occlusion as specified, errors
are temporally correlated (the property that makes the tracker matter), and
the confidence model separates true from false positives.
"""

import numpy as np
import pytest

from repro.boxes.iou import iou_matrix
from repro.datasets.types import ObjectTrack, Sequence
from repro.simdet.detector import SimulatedDetector
from repro.simdet.profile import DetectorProfile


def _single_object_sequence(width_px=40.0, occlusion=0.0, num_frames=400):
    """A stationary object of fixed size/occlusion, for clean statistics."""
    boxes = np.tile(
        np.array([[300.0, 150.0, 300.0 + width_px, 150.0 + width_px]]),
        (num_frames, 1),
    )
    track = ObjectTrack(
        track_id=0,
        label=0,
        first_frame=0,
        boxes=boxes,
        occlusion=np.full(num_frames, occlusion),
        truncation=np.zeros(num_frames),
    )
    return Sequence("stat", 1242, 375, num_frames, 10.0, tracks=[track])


def _profile(**overrides):
    base = dict(
        name="stat-model",
        size_midpoint=4.5,
        size_slope=1.6,
        max_recall=0.95,
        occlusion_penalty=6.0,
        persistent_weight=0.0,   # isolate the per-frame process by default
        temporal_weight=0.0,
        fp_rate=0.0,
        clutter_rate=0.0,
    )
    base.update(overrides)
    return DetectorProfile(**base)


def _detection_series(detector, sequence, iou_min=0.5):
    """Boolean per-frame series: was the (single) object detected?"""
    gt = sequence.tracks[0].boxes[0][None, :]
    hits = np.zeros(sequence.num_frames, dtype=bool)
    for frame in range(sequence.num_frames):
        out = detector.detect_full_frame(sequence, frame)
        if len(out):
            hits[frame] = iou_matrix(gt, out.boxes).max() >= iou_min
    return hits


class TestDetectionRates:
    def test_rate_matches_probability(self):
        """Empirical detection rate ~ the profile's analytic probability."""
        seq = _single_object_sequence(width_px=40.0)
        profile = _profile()
        detector = SimulatedDetector(profile, seed=0)
        hits = _detection_series(detector, seq)
        logit = profile.base_logit(np.array([40.0]), np.zeros(1), np.zeros(1))
        expected = profile.detection_probability(logit)[0]
        assert hits.mean() == pytest.approx(expected, abs=0.08)

    def test_larger_objects_detected_more(self):
        profile = _profile()
        rates = []
        for width in (18.0, 30.0, 60.0):
            seq = _single_object_sequence(width_px=width)
            rates.append(
                _detection_series(SimulatedDetector(profile, seed=0), seq).mean()
            )
        assert rates[0] < rates[1] < rates[2]

    def test_occlusion_suppresses_detection(self):
        profile = _profile(size_midpoint=3.5)
        clear = _single_object_sequence(width_px=50.0, occlusion=0.0)
        occluded = _single_object_sequence(width_px=50.0, occlusion=0.75)
        r_clear = _detection_series(SimulatedDetector(profile, seed=0), clear).mean()
        r_occ = _detection_series(SimulatedDetector(profile, seed=0), occluded).mean()
        assert r_occ < r_clear - 0.3


class TestTemporalCorrelation:
    @staticmethod
    def _lag1_autocorr(series: np.ndarray) -> float:
        x = series.astype(float)
        if x.std() == 0:
            return 0.0
        a, b = x[:-1] - x.mean(), x[1:] - x.mean()
        return float((a * b).mean() / x.var())

    def test_correlated_profile_produces_bursty_misses(self):
        """AR(1) difficulty must show up as autocorrelated detections."""
        # A marginal object (p ~ 0.5) maximizes the visibility of bursts.
        profile = _profile(
            size_midpoint=np.log2(40.0),
            temporal_weight=2.0,
            temporal_rho=0.95,
        )
        seq = _single_object_sequence(width_px=40.0)
        hits = _detection_series(SimulatedDetector(profile, seed=0), seq)
        # Binary thinning dilutes the latent AR(1)'s correlation, so the
        # observable series autocorrelation is moderate but clearly nonzero.
        assert self._lag1_autocorr(hits) > 0.2

    def test_iid_profile_has_no_memory(self):
        profile = _profile(size_midpoint=np.log2(40.0))
        seq = _single_object_sequence(width_px=40.0)
        hits = _detection_series(SimulatedDetector(profile, seed=0), seq)
        assert abs(self._lag1_autocorr(hits)) < 0.15

    def test_persistent_latent_differentiates_tracks(self):
        """Same-geometry objects get systematically different treatment."""
        profile = _profile(
            size_midpoint=np.log2(40.0), persistent_weight=2.0
        )
        rates = []
        for track_id in range(8):
            boxes = np.tile(np.array([[300.0, 150.0, 340.0, 190.0]]), (200, 1))
            track = ObjectTrack(
                track_id=track_id, label=0, first_frame=0, boxes=boxes,
                occlusion=np.zeros(200), truncation=np.zeros(200),
            )
            seq = Sequence(f"p{track_id}", 1242, 375, 200, 10.0, tracks=[track])
            detector = SimulatedDetector(profile, seed=0)
            rates.append(_detection_series(detector, seq).mean())
        # Identical objects, wildly different per-track rates.
        assert max(rates) - min(rates) > 0.3


class TestScoreModel:
    def test_tp_scores_exceed_fp_scores(self):
        profile = _profile(
            size_midpoint=3.0, fp_rate=5.0, score_center=1.0,
            fp_score_mean=-2.5,
        )
        seq = _single_object_sequence(width_px=60.0)
        detector = SimulatedDetector(profile, seed=0)
        gt = seq.tracks[0].boxes[0][None, :]
        tp_scores, fp_scores = [], []
        for frame in range(150):
            out = detector.detect_full_frame(seq, frame)
            if not len(out):
                continue
            ious = iou_matrix(gt, out.boxes)[0]
            tp_scores.extend(out.scores[ious >= 0.5].tolist())
            fp_scores.extend(out.scores[ious < 0.5].tolist())
        assert np.mean(tp_scores) > np.mean(fp_scores) + 0.3

    def test_easier_objects_score_higher(self):
        profile = _profile(size_midpoint=4.0, score_scale=0.6)
        detector = SimulatedDetector(profile, seed=0)

        def mean_score(width):
            seq = _single_object_sequence(width_px=width)
            gt = seq.tracks[0].boxes[0][None, :]
            scores = []
            for frame in range(200):
                out = detector.detect_full_frame(seq, frame)
                if len(out):
                    ious = iou_matrix(gt, out.boxes)[0]
                    scores.extend(out.scores[ious >= 0.5].tolist())
            return np.mean(scores) if scores else 0.0

        assert mean_score(80.0) > mean_score(25.0)
