"""Unit tests for deterministic RNG management."""

import numpy as np
import pytest

from repro.utils.rng import RngFactory, as_generator, spawn_seeds


class TestAsGenerator:
    def test_int_seed_deterministic(self):
        a = as_generator(42).random(5)
        b = as_generator(42).random(5)
        np.testing.assert_array_equal(a, b)

    def test_generator_passthrough(self):
        g = np.random.default_rng(1)
        assert as_generator(g) is g

    def test_none_gives_generator(self):
        assert isinstance(as_generator(None), np.random.Generator)


class TestSpawnSeeds:
    def test_deterministic(self):
        np.testing.assert_array_equal(spawn_seeds(7, 5), spawn_seeds(7, 5))

    def test_distinct_children(self):
        seeds = spawn_seeds(7, 100)
        assert len(set(seeds.tolist())) == 100

    def test_streams_disjoint(self):
        a = spawn_seeds(7, 10, stream=0)
        b = spawn_seeds(7, 10, stream=1)
        assert set(a.tolist()).isdisjoint(b.tolist())

    def test_prefix_stability(self):
        # Child i doesn't change when asking for more children.
        a = spawn_seeds(7, 3)
        b = spawn_seeds(7, 10)
        np.testing.assert_array_equal(a, b[:3])

    def test_negative_raises(self):
        with pytest.raises(ValueError, match=">= 0"):
            spawn_seeds(7, -1)


class TestRngFactory:
    def test_same_key_same_stream(self):
        f = RngFactory(123)
        a = f.child("x", 1).random(4)
        b = RngFactory(123).child("x", 1).random(4)
        np.testing.assert_array_equal(a, b)

    def test_different_keys_differ(self):
        f = RngFactory(123)
        a = f.child("x", 1).random(4)
        b = f.child("x", 2).random(4)
        c = f.child("y", 1).random(4)
        assert not np.array_equal(a, b)
        assert not np.array_equal(a, c)

    def test_string_hash_stable(self):
        # The FNV hash must be process-independent: fixed expected value.
        assert RngFactory._encode("dataset") == RngFactory._encode("dataset")
        assert RngFactory._encode("a") != RngFactory._encode("b")

    def test_child_seed_matches_child(self):
        f = RngFactory(9)
        seed = f.child_seed("m", 3)
        assert isinstance(seed, int)
        assert seed == RngFactory(9).child_seed("m", 3)

    def test_bad_root_type(self):
        with pytest.raises(TypeError, match="int"):
            RngFactory("not-an-int")

    def test_negative_int_key_raises(self):
        with pytest.raises(ValueError, match=">= 0"):
            RngFactory(1).child(-5)

    def test_bad_key_type_raises(self):
        with pytest.raises(TypeError, match="str or int"):
            RngFactory(1).child(3.14)
