"""Scenario-query layer tests.

The load-bearing guarantees:

* propositions and query specs round-trip through JSON exactly, and the
  fingerprint is a stable content address;
* the online automaton implements the documented matching semantics
  (earliest completion, deadlines, always-runs, non-overlap);
* per-scene multi-camera conjunction is exact interval intersection;
* the acceptance gate — a query evaluated online inside the batched
  multi-stream server and offline over ``system.stream()`` produces
  byte-identical formatted reports;
* serve-side observability balances: one ``query.window`` sink record
  and one counter increment per emitted window.
"""

import json

import numpy as np
import pytest

from repro.api import Session
from repro.api.spec import DatasetSpec, ExperimentSpec, ServeSpec
from repro.core.config import SystemConfig
from repro.core.pipeline import build_system
from repro.core.results import FrameResult, OpsAccount
from repro.detections import Detections
from repro.obs.registry import MetricsRegistry
from repro.obs.sinks import Sink
from repro.query import (
    AllOf,
    Always,
    AnyOf,
    BoxInRegion,
    ClassPresent,
    CountAtLeast,
    Eventually,
    FramesOfInterest,
    Not,
    QueryEvaluator,
    QueryReport,
    QuerySpec,
    QueryWindow,
    Region,
    Then,
    TrackEnteredRegion,
    TrackLeftRegion,
    TrackPersisted,
    conjoin,
    evaluate_frames,
    prop_from_dict,
    scene_of_stream,
)
from repro.serve.loadgen import LoadSpec

CATDET = SystemConfig("catdet", "resnet50", "resnet10a", detailed_ops=False)

CAR, PED = 0, 1


def frame(n_dets, frame_no, track_ids=None, labels=None, xs=None):
    """A minimal FrameResult with ``n_dets`` unit-score detections."""
    if xs is None:
        xs = [20.0 * i for i in range(n_dets)]
    boxes = np.asarray(
        [[x, 10.0, x + 16.0, 26.0] for x in xs], dtype=float
    ).reshape(-1, 4)
    labels = (
        np.zeros(n_dets, dtype=int) if labels is None else np.asarray(labels, int)
    )
    dets = Detections(boxes, np.ones(n_dets), labels)
    ids = None if track_ids is None else np.asarray(track_ids, dtype=np.int64)
    return FrameResult(
        frame=frame_no, detections=dets, ops=OpsAccount(), track_ids=ids
    )


def presence_frames(pattern):
    """Frames where '1' means one detection present, '0' means none."""
    return [frame(1 if ch == "1" else 0, i) for i, ch in enumerate(pattern)]


def windows_of(spec, frames):
    ev = QueryEvaluator(spec, stream="t")
    for fr in frames:
        ev.observe(fr)
    return [(w.start, w.end, w.phases) for w in ev.windows]


SEEN = CountAtLeast(1)


class TestPropositions:
    def test_region_validation(self):
        with pytest.raises(ValueError):
            Region(10, 0, 10, 5)

    def test_class_present_and_count(self):
        fr = frame(3, 0, labels=[CAR, CAR, PED])
        from repro.query.props import FrameState, TrackBook

        state = FrameState(fr.detections, None, TrackBook())
        assert ClassPresent(CAR).evaluate(state)
        assert ClassPresent(PED).evaluate(state)
        assert CountAtLeast(2, label=CAR).evaluate(state)
        assert not CountAtLeast(3, label=CAR).evaluate(state)
        assert Not(ClassPresent(CAR)).evaluate(state) is False
        assert AllOf((ClassPresent(CAR), ClassPresent(PED))).evaluate(state)
        assert AnyOf((ClassPresent(2), ClassPresent(PED))).evaluate(state)

    def test_box_in_region_by_center(self):
        fr = frame(1, 0, xs=[100.0])  # center x = 108
        from repro.query.props import FrameState, TrackBook

        state = FrameState(fr.detections, None, TrackBook())
        assert BoxInRegion(Region(100, 0, 120, 50)).evaluate(state)
        assert not BoxInRegion(Region(0, 0, 100, 50)).evaluate(state)

    def test_track_persistence_is_causal(self):
        spec = QuerySpec("persist", Eventually(TrackPersisted(3)))
        frames = [frame(1, i, track_ids=[7]) for i in range(5)]
        # Observed on frames 0,1,2 -> persisted >= 3 first true at tick 2
        # (and on every later tick, each its own restarted-scan window).
        assert windows_of(spec, frames) == [
            (2, 2, (2,)),
            (3, 3, (3,)),
            (4, 4, (4,)),
        ]

    def test_track_region_crossing(self):
        region = Region(50, 0, 150, 50)
        # Track 3 moves: outside (x=0) -> inside (x=92) -> outside (x=200).
        frames = [
            frame(1, 0, track_ids=[3], xs=[0.0]),
            frame(1, 1, track_ids=[3], xs=[92.0]),
            frame(1, 2, track_ids=[3], xs=[200.0]),
        ]
        entered = QuerySpec("in", Eventually(TrackEnteredRegion(region)))
        left = QuerySpec("out", Eventually(TrackLeftRegion(region)))
        assert windows_of(entered, frames) == [(1, 1, (1,))]
        assert windows_of(left, frames) == [(2, 2, (2,))]

    def test_first_observation_never_crosses(self):
        region = Region(50, 0, 150, 50)
        frames = [frame(1, 0, track_ids=[3], xs=[92.0])]
        assert windows_of(
            QuerySpec("in", Eventually(TrackEnteredRegion(region))), frames
        ) == []

    def test_prop_round_trips(self):
        props = [
            ClassPresent(CAR, min_score=0.5),
            CountAtLeast(3, label=PED),
            BoxInRegion(Region(0, 0, 100, 50), label=CAR),
            TrackPersisted(4, label=CAR),
            TrackEnteredRegion(Region(1, 2, 3, 4)),
            TrackLeftRegion(Region(1, 2, 3, 4), label=PED),
            Not(ClassPresent(CAR)),
            AllOf((ClassPresent(CAR), CountAtLeast(1))),
            AnyOf((ClassPresent(CAR), Not(CountAtLeast(2)))),
        ]
        for prop in props:
            clone = prop_from_dict(json.loads(json.dumps(prop.to_dict())))
            assert clone == prop


class TestQuerySpec:
    def test_round_trip_and_fingerprint(self):
        spec = QuerySpec(
            "demo",
            Then(
                (
                    Always(ClassPresent(CAR), frames=2, within=10),
                    Eventually(TrackPersisted(3), within=20),
                )
            ),
        )
        clone = QuerySpec.from_json(spec.to_json())
        assert clone == spec
        assert clone.fingerprint == spec.fingerprint
        renamed = QuerySpec("demo2", spec.expr)
        assert renamed.fingerprint != spec.fingerprint

    def test_bare_prop_means_eventually(self):
        spec = QuerySpec("p", ClassPresent(CAR))
        assert spec.expr == Eventually(ClassPresent(CAR))
        then = Then((ClassPresent(CAR), ClassPresent(PED)))
        assert then.steps[0] == Eventually(ClassPresent(CAR))

    def test_nested_then_rejected(self):
        inner = Then((ClassPresent(CAR), ClassPresent(PED)))
        with pytest.raises(TypeError):
            Then((inner, ClassPresent(CAR)))

    def test_validation(self):
        with pytest.raises(ValueError):
            Always(ClassPresent(CAR), frames=3, within=2)
        with pytest.raises(ValueError):
            Eventually(ClassPresent(CAR), within=0)
        with pytest.raises(ValueError):
            Then((ClassPresent(CAR),))


class TestAutomaton:
    def test_eventually_earliest_completion(self):
        spec = QuerySpec("q", Eventually(SEEN))
        assert windows_of(spec, presence_frames("00101")) == [
            (2, 2, (2,)),
            (4, 4, (4,)),
        ]

    def test_always_needs_consecutive_run(self):
        spec = QuerySpec("q", Always(SEEN, frames=3))
        # Run of 2 broken at tick 2; run 3..5 completes at tick 5.
        assert windows_of(spec, presence_frames("1101110")) == [(3, 5, (5,))]

    def test_then_strict_order(self):
        spec = QuerySpec("q", Then((SEEN, Not(SEEN), SEEN)))
        # present(0), absent(1), present(2): one window spanning 0..2.
        assert windows_of(spec, presence_frames("1011")) == [(0, 2, (0, 1, 2))]

    def test_within_deadline_prunes(self):
        spec = QuerySpec("q", Then((SEEN, Eventually(SEEN, within=2))))
        # Phase 1 must complete <= 2 frames after phase 0's completion.
        assert windows_of(spec, presence_frames("10001")) == []
        # A later phase-0 completion rescues the deadline.
        assert windows_of(spec, presence_frames("10011")) == [(3, 4, (3, 4))]

    def test_phase0_deadline_anchors_at_scan_start(self):
        spec = QuerySpec("q", Eventually(SEEN, within=2))
        # First scan: true at tick 3 > deadline 2 from scan start 0 -> no
        # match ever (the scan start never advances without a match).
        assert windows_of(spec, presence_frames("00010")) == []
        # True at tick 1 is within the deadline; scan restarts at 2 and
        # the next true tick 2 is frame 1 of the new scan.
        assert windows_of(spec, presence_frames("0110")) == [
            (1, 1, (1,)),
            (2, 2, (2,)),
        ]

    def test_windows_never_overlap(self):
        spec = QuerySpec("q", Always(SEEN, frames=2))
        # Six consecutive true ticks -> runs [0,1], [2,3], [4,5].
        assert windows_of(spec, presence_frames("111111")) == [
            (0, 1, (1,)),
            (2, 3, (3,)),
            (4, 5, (5,)),
        ]

    def test_window_reports_frame_numbers(self):
        spec = QuerySpec("q", Eventually(SEEN))
        frames = [frame(0, 10), frame(1, 17)]
        ev = QueryEvaluator(spec, stream="s")
        assert ev.observe(frames[0]) is None
        w = ev.observe(frames[1])
        assert (w.start, w.end, w.start_tick, w.end_tick) == (17, 17, 1, 1)

    def test_observe_returns_the_emitted_window(self):
        spec = QuerySpec("q", Eventually(SEEN))
        ev = QueryEvaluator(spec, stream="s")
        emitted = [ev.observe(fr) for fr in presence_frames("0101")]
        assert [w is not None for w in emitted] == [False, True, False, True]
        assert [w for w in emitted if w is not None] == ev.windows

    def test_state_stays_bounded(self):
        spec = QuerySpec(
            "q", Then((SEEN, Eventually(SEEN, within=5), Always(SEEN, frames=2)))
        )
        ev = QueryEvaluator(spec, stream="s")
        sizes = []
        for fr in presence_frames("10" * 200):
            ev.observe(fr)
            sizes.append(len(ev._partials))
        # Dedup keys: (phase, run, anchor-within-deadline) — a small
        # constant for this spec, regardless of stream length.
        assert max(sizes) <= 16

    def test_finish_round_trips(self):
        spec = QuerySpec("q", Eventually(SEEN))
        ev = QueryEvaluator(spec, stream="s")
        for fr in presence_frames("0101"):
            ev.observe(fr)
        foi = ev.finish()
        clone = FramesOfInterest.from_dict(json.loads(json.dumps(foi.to_dict())))
        assert clone == foi


class TestConjunction:
    def w(self, start, end):
        return QueryWindow("s", start, end, start, end, (end,))

    def test_intersection(self):
        a = [self.w(0, 5), self.w(10, 20)]
        b = [self.w(3, 12), self.w(18, 25)]
        assert conjoin([a, b]) == [(3, 5), (10, 12), (18, 20)]

    def test_empty_stream_empties_conjunction(self):
        assert conjoin([[self.w(0, 5)], []]) == []

    def test_adjacent_windows_merge(self):
        a = [self.w(0, 4), self.w(5, 9)]
        b = [self.w(2, 7)]
        assert conjoin([a, b]) == [(2, 7)]

    def test_scene_of_stream(self):
        assert scene_of_stream("s0:kitti-like-0000") == "kitti-like-0000"
        assert scene_of_stream("plain-name") == "plain-name"


PERSIST_QUERY = QuerySpec(
    "car-persists",
    Then((Eventually(ClassPresent(CAR)), Eventually(TrackPersisted(3, label=CAR), within=30))),
)


def offline_replay_report(query, dataset, num_streams, frames_per_stream):
    """The CLI's offline mode: fresh system per stream, loadgen naming."""
    import itertools

    by_stream = {}
    for i in range(num_streams):
        seq = dataset.sequences[i % len(dataset.sequences)]
        frames = list(
            itertools.islice(build_system(CATDET).stream(seq), frames_per_stream)
        )
        name = f"s{i}:{seq.name}"
        by_stream[name] = evaluate_frames(query, frames, stream=name)
    return QueryReport.build(query, by_stream)


class ListSink(Sink):
    def __init__(self):
        self.records = []

    def emit(self, record):
        self.records.append(record)


class TestServeIntegration:
    def serve_spec(self, query=PERSIST_QUERY):
        return ServeSpec(
            system=CATDET,
            dataset=DatasetSpec("kitti", num_sequences=2, frames_per_sequence=40),
            load=LoadSpec(pattern="replay", num_streams=4, frames_per_stream=40),
            query=query,
        )

    def test_serve_vs_offline_byte_identical(self):
        """Acceptance gate: served (multi-stream, batched) == offline."""
        session = Session()
        spec = self.serve_spec()
        report = session.serve(spec, use_cache=False)
        served = report.query_report()
        dataset = session.dataset(spec.dataset)
        offline = offline_replay_report(PERSIST_QUERY, dataset, 4, 40)
        assert served.format() == offline.format()
        assert served.to_dict() == offline.to_dict()
        assert served.total_windows > 0
        # Same scene watched by two cameras -> a conjunction per sequence.
        assert set(served.conjunctions) == {s.name for s in dataset.sequences}

    def test_observability_balances(self):
        metrics = MetricsRegistry()
        sink = ListSink()
        report = Session().serve(
            self.serve_spec(), use_cache=False, metrics=metrics, sinks=sink
        )
        qreport = report.query_report()
        window_records = [
            r for r in sink.records if r.get("record") == "query.window"
        ]
        assert len(window_records) == qreport.total_windows
        series = metrics.snapshot()["serve_query_events_total"]["series"]
        assert sum(s["value"] for s in series) == qreport.total_windows
        per_stream = {s["labels"][0]: s["value"] for s in series}
        assert per_stream == {
            name: len(foi.windows) for name, foi in qreport.streams.items()
        }
        summary = [r for r in sink.records if r.get("record") == "serve.summary"][0]
        assert summary["query"] == PERSIST_QUERY.name
        assert summary["query_events"] == qreport.total_windows

    def test_report_round_trips_with_query(self):
        report = Session().serve(self.serve_spec(), use_cache=False)
        clone = type(report).from_dict(json.loads(json.dumps(report.to_dict())))
        assert clone.query_windows == report.query_windows
        assert clone.format() == report.format()

    def test_report_cached_with_query(self, tmp_path):
        session = Session(cache_dir=tmp_path)
        spec = self.serve_spec()
        fresh = session.serve(spec)
        cached = session.serve(spec)
        assert session.cache_hits == 1
        assert cached.query_report().format() == fresh.query_report().format()

    def test_query_changes_serve_fingerprint(self):
        with_query = self.serve_spec()
        without = ServeSpec(
            system=CATDET, dataset=with_query.dataset, load=with_query.load
        )
        assert with_query.fingerprint != without.fingerprint
        clone = ServeSpec.from_dict(json.loads(json.dumps(with_query.to_dict())))
        assert clone.fingerprint == with_query.fingerprint
        assert clone.query == PERSIST_QUERY

    def test_no_query_report_without_query(self):
        spec = ServeSpec(
            system=CATDET,
            dataset=DatasetSpec("kitti", num_sequences=1, frames_per_sequence=20),
            load=LoadSpec(pattern="replay", num_streams=1, frames_per_stream=20),
        )
        report = Session().serve(spec, use_cache=False)
        assert report.query_windows is None
        assert report.query_report() is None


class TestSessionQuery:
    def test_query_over_cached_run(self, tmp_path):
        session = Session(cache_dir=tmp_path)
        spec = ExperimentSpec(
            system=CATDET,
            dataset=DatasetSpec("kitti", num_sequences=2, frames_per_sequence=40),
        )
        report = session.query(spec, PERSIST_QUERY)
        assert set(report.streams) == {
            s.name for s in session.dataset(spec.dataset).sequences
        }
        assert report.total_windows > 0
        # Second query re-reads the cached experiment result.
        again = session.query(spec, PERSIST_QUERY)
        assert session.cache_hits >= 1
        assert again.format() == report.format()

    def test_rejects_non_spec(self):
        with pytest.raises(TypeError):
            Session().query(
                ExperimentSpec(system=CATDET), {"kind": "class_present"}
            )
