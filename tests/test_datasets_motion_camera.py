"""Unit tests for trajectory generation and the ego-camera model."""

import numpy as np
import pytest

from repro.datasets.camera import EgoCamera, EgoMotionConfig
from repro.datasets.motion_models import (
    TrajectoryConfig,
    generate_trajectory,
    sample_initial_box,
    truncation_of,
)


class TestEgoCamera:
    def test_deterministic(self):
        cam1 = EgoCamera(EgoMotionConfig(), 20, 1242, 375, seed=3)
        cam2 = EgoCamera(EgoMotionConfig(), 20, 1242, 375, seed=3)
        np.testing.assert_array_equal(cam1.pan, cam2.pan)
        np.testing.assert_array_equal(cam1.zoom, cam2.zoom)

    def test_zoom_expands_about_foe(self):
        config = EgoMotionConfig(pan_std=0.0, zoom_rate_mean=1.1, zoom_rate_std=0.0)
        cam = EgoCamera(config, 5, 1000, 500, seed=0)
        # A box centered on the focus of expansion grows in place.
        foe = cam.foe
        box = np.array([foe[0] - 10, foe[1] - 10, foe[0] + 10, foe[1] + 10])
        out = cam.transform_box(box, 0)
        assert out[2] - out[0] == pytest.approx(20 * 1.1)
        center = (out[:2] + out[2:]) / 2
        np.testing.assert_allclose(center, foe)

    def test_flow_zero_at_foe_without_pan(self):
        config = EgoMotionConfig(pan_std=0.0, zoom_rate_mean=1.05, zoom_rate_std=0.0)
        cam = EgoCamera(config, 5, 1000, 500, seed=0)
        flow = cam.flow_at(cam.foe, 0)
        np.testing.assert_allclose(flow, [0, 0], atol=1e-9)

    def test_flow_outward_under_zoom(self):
        config = EgoMotionConfig(pan_std=0.0, zoom_rate_mean=1.05, zoom_rate_std=0.0)
        cam = EgoCamera(config, 5, 1000, 500, seed=0)
        right_of_foe = cam.foe + np.array([100.0, 0.0])
        flow = cam.flow_at(right_of_foe, 0)
        assert flow[0] > 0  # moving away from the FOE

    def test_config_validation(self):
        with pytest.raises(ValueError, match="pan_smoothness"):
            EgoMotionConfig(pan_smoothness=1.0)
        with pytest.raises(ValueError, match="num_frames"):
            EgoCamera(EgoMotionConfig(), 0, 100, 100)


class TestSampleInitialBox:
    def test_edge_entry_truncated(self):
        rng = np.random.default_rng(0)
        config = TrajectoryConfig()
        for _ in range(20):
            box = sample_initial_box(config, 1000, 400, rng, at_edge=True)
            trunc = truncation_of(box, 1000, 400)
            assert trunc > 0.3  # starts substantially outside

    def test_interior_entry_smaller_than_initial(self):
        rng = np.random.default_rng(1)
        config = TrajectoryConfig(width_log_std=0.0)  # isolate the mean shift
        w_init = []
        w_enter = []
        for _ in range(20):
            b1 = sample_initial_box(config, 1000, 400, rng, initial=True)
            b2 = sample_initial_box(config, 1000, 400, rng)
            w_init.append(b1[2] - b1[0])
            w_enter.append(b2[2] - b2[0])
        assert np.mean(w_enter) < np.mean(w_init)

    def test_boxes_have_positive_size(self):
        rng = np.random.default_rng(2)
        config = TrajectoryConfig()
        for at_edge in (False, True):
            box = sample_initial_box(config, 1242, 375, rng, at_edge=at_edge)
            assert box[2] > box[0] and box[3] > box[1]


class TestGenerateTrajectory:
    def test_deterministic(self):
        config = TrajectoryConfig()
        a = generate_trajectory(config, 0, 50, 1242, 375, seed=4)
        b = generate_trajectory(config, 0, 50, 1242, 375, seed=4)
        np.testing.assert_array_equal(a, b)

    def test_ends_by_sequence_end(self):
        config = TrajectoryConfig()
        boxes = generate_trajectory(config, 45, 50, 1242, 375, seed=4)
        assert 0 < boxes.shape[0] <= 5

    def test_interior_entries_grow(self):
        config = TrajectoryConfig(speed_std=0.5, accel_std=0.05)
        rng_hits = 0
        for seed in range(10):
            boxes = generate_trajectory(
                config, 0, 60, 1242, 375, seed=seed, initial=False
            )
            if boxes.shape[0] >= 30:
                w0 = boxes[0, 2] - boxes[0, 0]
                w1 = boxes[29, 2] - boxes[29, 0]
                if w1 > w0:
                    rng_hits += 1
        assert rng_hits >= 5  # approach growth dominates for most objects

    def test_edge_entry_moves_inward(self):
        config = TrajectoryConfig(speed_std=3.0)
        for seed in range(5):
            boxes = generate_trajectory(
                config, 0, 40, 1242, 375, seed=seed, at_edge=True
            )
            if boxes.shape[0] < 5:
                continue
            t0 = truncation_of(boxes[0], 1242, 375)
            t4 = truncation_of(boxes[4], 1242, 375)
            assert t4 <= t0 + 1e-6

    def test_invalid_start_frame(self):
        with pytest.raises(ValueError, match="start_frame"):
            generate_trajectory(TrajectoryConfig(), 50, 50, 100, 100)

    def test_truncation_of(self):
        assert truncation_of(np.array([0, 0, 10, 10]), 100, 100) == pytest.approx(0.0)
        assert truncation_of(np.array([-5, 0, 5, 10]), 100, 100) == pytest.approx(0.5)
        assert truncation_of(np.array([-20, 0, -10, 10]), 100, 100) == pytest.approx(1.0)
