"""Compute-trace record/replay tests (the serving fast path).

The load-bearing guarantee: a server run that replays a recorded
compute trace produces reports **byte-identical** to the live path —
detections, SLO statistics, sink records and query windows — including
when shedding diverges the admitted subsequence mid-stream and the
server must fall back to live compute.  Plus the trace-store plumbing:
fingerprints cover only the compute-determining sections, entries
round-trip losslessly, and corruption is a miss, never an error.
"""

import json

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.api.spec import DatasetSpec, ServeSpec
from repro.core.config import SystemConfig
from repro.datasets.kitti import kitti_like_dataset
from repro.fleet import FleetServer, FleetSpec
from repro.obs import Sink
from repro.query import Eventually, QuerySpec, TrackPersisted
from repro.serve import (
    DetectionServer,
    FrameRequest,
    LoadSpec,
    ServePolicy,
    ServiceModel,
    generate_load,
)
from repro.serve.trace import (
    ComputeTrace,
    TraceStore,
    trace_fingerprint,
)

CATDET = SystemConfig("catdet", "resnet50", "resnet10a", detailed_ops=False)
KEYFRAME = SystemConfig("keyframe", "resnet50", stride=4)
SERVICE = ServiceModel(invocation_overhead_ms=50.0, gops_per_second=2000.0)
LOAD = LoadSpec(pattern="uniform", num_streams=2, rate_hz=10.0, frames_per_stream=20)


class ListSink(Sink):
    def __init__(self):
        self.records = []

    def emit(self, record):
        self.records.append(record)


def _assert_frames_identical(fa, fb):
    assert fa.frame == fb.frame
    np.testing.assert_array_equal(fa.detections.boxes, fb.detections.boxes)
    np.testing.assert_array_equal(fa.detections.scores, fb.detections.scores)
    np.testing.assert_array_equal(fa.detections.labels, fb.detections.labels)
    assert (fa.track_ids is None) == (fb.track_ids is None)
    if fa.track_ids is not None:
        np.testing.assert_array_equal(fa.track_ids, fb.track_ids)
    assert fa.ops.proposal == fb.ops.proposal
    assert fa.ops.refinement == fb.ops.refinement
    assert fa.ops.total == fb.ops.total


def _assert_reports_identical(live, replay):
    assert live.to_dict() == replay.to_dict()
    assert set(live.frame_results) == set(replay.frame_results)
    for stream in live.frame_results:
        a, b = live.frame_results[stream], replay.frame_results[stream]
        assert len(a) == len(b)
        for fa, fb in zip(a, b):
            _assert_frames_identical(fa, fb)


def _record(system, requests, *, policy, query=None):
    """Run live once with recording on; returns (report, trace)."""
    server = DetectionServer(
        system, policy=policy, service=SERVICE, query=query, record_trace=True
    )
    report = server.run(requests)
    assert server.frames_replayed == 0
    trace = server.recorded_trace
    assert trace is not None and trace.total_frames > 0
    return report, trace


class TestServeReplay:
    @pytest.mark.parametrize("system", [CATDET, KEYFRAME], ids=lambda c: c.kind)
    def test_replay_report_byte_identical(self, system, kitti_small):
        """Replay under a *different* policy == live under that policy."""
        requests = generate_load(LOAD, kitti_small)
        _, trace = _record(
            system, requests, policy=ServePolicy(max_batch_size=1)
        )
        policy = ServePolicy(max_batch_size=4, max_wait_ms=25.0, slo_ms=500.0)
        live_sink, replay_sink = ListSink(), ListSink()
        live = DetectionServer(
            system, policy=policy, service=SERVICE, sinks=live_sink
        ).run(requests)
        replayer = DetectionServer(
            system, policy=policy, service=SERVICE, sinks=replay_sink, trace=trace
        )
        replay = replayer.run(requests)
        assert replayer.frames_replayed == len(requests)
        _assert_reports_identical(live, replay)
        assert live_sink.records == replay_sink.records

    def test_replay_preserves_query_windows(self, kitti_small):
        query = QuerySpec("persist", Eventually(TrackPersisted(3)))
        requests = generate_load(LOAD, kitti_small)
        _, trace = _record(
            CATDET, requests, policy=ServePolicy(max_batch_size=1), query=query
        )
        policy = ServePolicy(max_batch_size=4, max_wait_ms=25.0)
        live = DetectionServer(
            CATDET, policy=policy, service=SERVICE, query=query
        ).run(requests)
        replay = DetectionServer(
            CATDET, policy=policy, service=SERVICE, query=query, trace=trace
        ).run(requests)
        assert live.query_windows == replay.query_windows
        assert live.query_windows  # the scenario must actually fire
        _assert_reports_identical(live, replay)

    def test_shedding_run_falls_back_mid_stream(self, kitti_small):
        """A shed frame diverges the admitted subsequence; the stream must
        rebuild causal state live and the report must not change."""
        requests = generate_load(LOAD, kitti_small)
        _, trace = _record(
            CATDET, requests, policy=ServePolicy(max_batch_size=1)
        )
        # Tiny queue + slow service: shedding guaranteed.
        policy = ServePolicy(
            max_batch_size=2, max_wait_ms=0.0, queue_capacity=1,
            shed_policy="oldest", slo_ms=500.0,
        )
        slow = ServiceModel(invocation_overhead_ms=120.0, gops_per_second=500.0)
        live = DetectionServer(CATDET, policy=policy, service=slow).run(requests)
        assert live.frames_shed > 0, "scenario must actually shed"
        replayer = DetectionServer(
            CATDET, policy=policy, service=slow, trace=trace
        )
        replay = replayer.run(requests)
        assert 0 < replayer.frames_replayed < live.frames_served
        _assert_reports_identical(live, replay)

    def test_partial_divergence_extends_the_trace(self, kitti_small):
        """The out-trace of a diverged run covers its full admitted run —
        longer than the replayed prefix, so the cache only improves."""
        requests = generate_load(LOAD, kitti_small)
        _, trace = _record(
            CATDET, requests, policy=ServePolicy(max_batch_size=1)
        )
        half = [r for r in requests if r.frame < 10]
        replayer = DetectionServer(
            CATDET, policy=ServePolicy(max_batch_size=4), service=SERVICE,
            trace=trace, record_trace=True,
        )
        replayer.run(half)
        out = replayer.recorded_trace
        assert out.total_frames == len(half)


class TestFleetReplay:
    def test_serve_recorded_trace_replays_in_a_fleet(self, kitti_small):
        """One trace serves both layers: detections are keyed by
        (model, seed, sequence, frame), never by replica placement."""
        requests = generate_load(LOAD, kitti_small)
        _, trace = _record(
            CATDET, requests, policy=ServePolicy(max_batch_size=1)
        )
        spec = FleetSpec(
            system=CATDET,
            load=LOAD,
            policy=ServePolicy(max_batch_size=4, max_wait_ms=20.0, slo_ms=2000.0),
            replicas=2,
            devices=("edge",),
        )
        live = FleetServer(spec).run(requests)
        replayer = FleetServer(spec, trace=trace)
        replay = replayer.run(requests)
        assert replayer.frames_replayed == len(requests)
        _assert_reports_identical(live, replay)

    def test_fleet_records_a_trace_serve_can_replay(self, kitti_small):
        requests = generate_load(LOAD, kitti_small)
        spec = FleetSpec(
            system=CATDET,
            load=LOAD,
            policy=ServePolicy(max_batch_size=2, max_wait_ms=10.0, slo_ms=2000.0),
            replicas=2,
            devices=("edge",),
        )
        recorder = FleetServer(spec, record_trace=True)
        recorder.run(requests)
        trace = recorder.recorded_trace
        assert trace is not None and trace.total_frames == len(requests)

        policy = ServePolicy(max_batch_size=4, max_wait_ms=25.0)
        live = DetectionServer(CATDET, policy=policy, service=SERVICE).run(requests)
        replayer = DetectionServer(
            CATDET, policy=policy, service=SERVICE, trace=trace
        )
        replay = replayer.run(requests)
        assert replayer.frames_replayed == len(requests)
        _assert_reports_identical(live, replay)


@settings(max_examples=8, deadline=None)
@given(data=st.data())
def test_random_admitted_prefixes_replay_identically(data):
    """Property: whatever subset of the offered frames is admitted, the
    traced server matches the live server byte for byte — matching
    prefixes replay, diverged streams fall back."""
    dataset = kitti_like_dataset(num_sequences=2, frames_per_sequence=12)
    load = LoadSpec(
        pattern="uniform", num_streams=2, rate_hz=10.0, frames_per_stream=12
    )
    full = generate_load(load, dataset)
    _, trace = _record(CATDET, full, policy=ServePolicy(max_batch_size=1))

    keep = data.draw(
        st.lists(st.booleans(), min_size=len(full), max_size=len(full)),
        label="kept requests",
    )
    subset = [r for r, k in zip(full, keep) if k]
    if not subset:
        return
    policy = ServePolicy(max_batch_size=4, max_wait_ms=25.0)
    live = DetectionServer(CATDET, policy=policy, service=SERVICE).run(subset)
    replay = DetectionServer(
        CATDET, policy=policy, service=SERVICE, trace=trace
    ).run(subset)
    _assert_reports_identical(live, replay)


class TestTraceStore:
    def _trace(self, kitti_small):
        requests = generate_load(LOAD, kitti_small)
        _, trace = _record(
            CATDET, requests, policy=ServePolicy(max_batch_size=1)
        )
        return trace

    def test_round_trip_is_lossless(self, tmp_path, kitti_small):
        trace = self._trace(kitti_small)
        store = TraceStore(tmp_path)
        fp = "ab" + "0" * 62
        store.store(fp, trace)
        assert fp in store
        loaded = store.load(fp)
        assert loaded.to_dict() == trace.to_dict()
        for stream, st_in in trace.streams.items():
            st_out = loaded.streams[stream]
            assert st_out.sequence == st_in.sequence
            for ra, rb in zip(st_in.records, st_out.records):
                assert ra.invocations == rb.invocations
                _assert_frames_identical(ra.result, rb.result)

    def test_corrupt_entry_is_a_miss(self, tmp_path, kitti_small):
        store = TraceStore(tmp_path)
        fp = "cd" + "0" * 62
        store.store(fp, self._trace(kitti_small))
        path = store.path_for(fp)
        path.write_text("{not json")
        assert store.load(fp) is None
        path.write_text(json.dumps({"format": "wrong", "trace": {}}))
        assert store.load(fp) is None
        assert store.load("ee" + "0" * 62) is None  # absent entry

    def test_format_marker_is_checked(self):
        with pytest.raises(ValueError):
            ComputeTrace.from_dict({"format": "bogus", "streams": {}})


class TestTraceFingerprint:
    def _serve_spec(self, **overrides):
        base = dict(
            system=CATDET,
            dataset=DatasetSpec("kitti", num_sequences=2, frames_per_sequence=20),
            load=LOAD,
            policy=ServePolicy(max_batch_size=2),
            service=SERVICE,
        )
        base.update(overrides)
        return ServeSpec(**base)

    def test_policy_and_service_do_not_change_it(self):
        base = self._serve_spec()
        same = self._serve_spec(
            policy=ServePolicy(max_batch_size=8, max_wait_ms=75.0),
            service=ServiceModel(invocation_overhead_ms=1.0, gops_per_second=9e9),
        )
        assert trace_fingerprint(base) == trace_fingerprint(same)

    def test_compute_sections_do_change_it(self):
        base = self._serve_spec()
        other_system = self._serve_spec(system=KEYFRAME)
        other_dataset = self._serve_spec(
            dataset=DatasetSpec("kitti", num_sequences=3, frames_per_sequence=20)
        )
        other_load = self._serve_spec(
            load=LoadSpec(
                pattern="uniform", num_streams=3, rate_hz=10.0, frames_per_stream=20
            )
        )
        fps = {
            trace_fingerprint(s)
            for s in (base, other_system, other_dataset, other_load)
        }
        assert len(fps) == 4

    def test_serve_and_fleet_specs_share_a_fingerprint(self):
        serve = self._serve_spec()
        fleet = FleetSpec(
            system=CATDET,
            dataset=DatasetSpec("kitti", num_sequences=2, frames_per_sequence=20),
            load=LOAD,
            policy=ServePolicy(max_batch_size=4),
            replicas=3,
            devices=("edge", "titanx"),
        )
        assert trace_fingerprint(serve) == trace_fingerprint(fleet)
