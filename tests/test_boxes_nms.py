"""Unit tests for NMS variants."""

import numpy as np
import pytest

from repro.boxes.nms import class_aware_nms, nms, soft_nms


class TestNms:
    def test_keeps_highest_scoring_duplicate(self):
        boxes = np.array([[0, 0, 10, 10], [1, 1, 11, 11], [50, 50, 60, 60]])
        scores = np.array([0.9, 0.8, 0.7])
        keep = nms(boxes, scores, 0.5)
        assert 0 in keep and 2 in keep and 1 not in keep

    def test_no_suppression_below_threshold(self):
        boxes = np.array([[0, 0, 10, 10], [8, 8, 20, 20]])
        scores = np.array([0.9, 0.8])
        keep = nms(boxes, scores, 0.5)
        assert len(keep) == 2

    def test_returns_descending_score_order(self):
        boxes = np.array([[0, 0, 5, 5], [20, 20, 30, 30], [50, 50, 60, 60]])
        scores = np.array([0.1, 0.9, 0.5])
        keep = nms(boxes, scores, 0.5)
        assert scores[keep].tolist() == sorted(scores.tolist(), reverse=True)

    def test_empty(self):
        assert nms(np.zeros((0, 4)), np.zeros(0)).shape == (0,)

    def test_length_mismatch_raises(self):
        with pytest.raises(ValueError, match="equal length"):
            nms(np.zeros((2, 4)), np.zeros(3))

    def test_invalid_threshold_raises(self):
        with pytest.raises(ValueError, match="iou_threshold"):
            nms(np.zeros((1, 4)), np.zeros(1), iou_threshold=1.5)

    def test_identical_boxes_keep_one(self):
        boxes = np.tile(np.array([[0.0, 0.0, 10.0, 10.0]]), (5, 1))
        scores = np.linspace(0.5, 0.9, 5)
        keep = nms(boxes, scores, 0.5)
        assert len(keep) == 1
        assert scores[keep[0]] == pytest.approx(0.9)


class TestClassAwareNms:
    def test_different_classes_not_suppressed(self):
        boxes = np.array([[0, 0, 10, 10], [0, 0, 10, 10]])
        scores = np.array([0.9, 0.8])
        labels = np.array([0, 1])
        keep = class_aware_nms(boxes, scores, labels, 0.5)
        assert len(keep) == 2

    def test_same_class_suppressed(self):
        boxes = np.array([[0, 0, 10, 10], [0, 0, 10, 10]])
        scores = np.array([0.9, 0.8])
        labels = np.array([0, 0])
        keep = class_aware_nms(boxes, scores, labels, 0.5)
        assert len(keep) == 1

    def test_mismatched_lengths_raise(self):
        with pytest.raises(ValueError, match="equal length"):
            class_aware_nms(np.zeros((2, 4)), np.zeros(2), np.zeros(3))


class TestSoftNms:
    def test_decays_overlapping_scores(self):
        boxes = np.array([[0, 0, 10, 10], [1, 1, 11, 11]])
        scores = np.array([0.9, 0.8])
        keep, decayed = soft_nms(boxes, scores, iou_threshold=0.3)
        assert keep[0] == 0
        # Second box survives but with a reduced score.
        idx = list(keep).index(1)
        assert decayed[idx] < 0.8

    def test_disjoint_scores_unchanged(self):
        boxes = np.array([[0, 0, 10, 10], [100, 100, 110, 110]])
        scores = np.array([0.9, 0.8])
        _, decayed = soft_nms(boxes, scores)
        np.testing.assert_allclose(sorted(decayed, reverse=True), [0.9, 0.8])

    def test_score_threshold_drops_tail(self):
        boxes = np.tile(np.array([[0.0, 0.0, 10.0, 10.0]]), (3, 1))
        scores = np.array([0.9, 0.88, 0.86])
        keep, _ = soft_nms(boxes, scores, sigma=0.05, score_threshold=0.5)
        assert len(keep) < 3

    def test_bad_sigma_raises(self):
        with pytest.raises(ValueError, match="sigma"):
            soft_nms(np.zeros((1, 4)), np.zeros(1), sigma=0.0)
