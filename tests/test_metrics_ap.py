"""Unit tests for Average Precision."""

import numpy as np
import pytest

from repro.metrics.ap import average_precision, interpolated_precision_at


class TestAveragePrecision:
    def test_perfect_detector(self):
        scores = np.array([0.9, 0.8, 0.7])
        tp = np.array([True, True, True])
        for method in ("voc11", "r40", "continuous"):
            assert average_precision(scores, tp, 3, method=method) == pytest.approx(1.0)

    def test_all_false_positives(self):
        scores = np.array([0.9, 0.8])
        tp = np.array([False, False])
        assert average_precision(scores, tp, 5) == 0.0

    def test_no_detections(self):
        assert average_precision(np.zeros(0), np.zeros(0, dtype=bool), 5) == 0.0

    def test_no_ground_truth(self):
        assert average_precision(np.array([0.5]), np.array([True]), 0) == 0.0

    def test_half_recall_perfect_precision(self):
        # 5 TPs out of 10 GT, no FPs: precision 1 up to recall .5, 0 beyond.
        scores = np.linspace(0.9, 0.5, 5)
        tp = np.ones(5, dtype=bool)
        ap11 = average_precision(scores, tp, 10, method="voc11")
        assert ap11 == pytest.approx(6 / 11)  # recalls 0.0..0.5 -> 6 points
        cont = average_precision(scores, tp, 10, method="continuous")
        assert cont == pytest.approx(0.5)

    def test_fp_before_tp_hurts(self):
        tp_first = average_precision(
            np.array([0.9, 0.8]), np.array([True, False]), 1
        )
        fp_first = average_precision(
            np.array([0.9, 0.8]), np.array([False, True]), 1
        )
        assert fp_first < tp_first

    def test_score_order_not_input_order(self):
        """AP must sort by score internally."""
        scores = np.array([0.5, 0.9])
        tp = np.array([False, True])  # the higher-scored one is the TP
        ap = average_precision(scores, tp, 1, method="continuous")
        assert ap == pytest.approx(1.0)

    def test_r40_finer_than_voc11(self):
        rng = np.random.default_rng(0)
        scores = rng.random(200)
        tp = rng.random(200) < 0.6
        ap11 = average_precision(scores, tp, 150, method="voc11")
        ap40 = average_precision(scores, tp, 150, method="r40")
        cont = average_precision(scores, tp, 150, method="continuous")
        # All three agree within a few points on a smooth curve.
        assert abs(ap40 - cont) < 0.05
        assert abs(ap11 - cont) < 0.08

    def test_unknown_method(self):
        with pytest.raises(ValueError, match="unknown AP method"):
            average_precision(np.array([0.5]), np.array([True]), 1, method="x")

    def test_negative_gt_raises(self):
        with pytest.raises(ValueError, match="num_gt"):
            average_precision(np.array([0.5]), np.array([True]), -1)

    def test_length_mismatch_raises(self):
        with pytest.raises(ValueError, match="equal length"):
            average_precision(np.zeros(2), np.zeros(3, dtype=bool), 5)


class TestInterpolatedPrecision:
    def test_at_zero_recall_is_max_precision(self):
        scores = np.array([0.9, 0.8, 0.7])
        tp = np.array([True, False, True])
        p = interpolated_precision_at(scores, tp, 2, 0.0)
        assert p == pytest.approx(1.0)

    def test_beyond_max_recall_zero(self):
        scores = np.array([0.9])
        tp = np.array([True])
        assert interpolated_precision_at(scores, tp, 10, 0.9) == 0.0

    def test_invalid_recall_level(self):
        with pytest.raises(ValueError, match="recall_level"):
            interpolated_precision_at(np.zeros(1), np.zeros(1, dtype=bool), 1, 1.5)
