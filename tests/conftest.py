"""Shared fixtures: small deterministic datasets and runs."""

import pytest

from repro.datasets.citypersons import citypersons_like_dataset
from repro.datasets.kitti import kitti_like_dataset, kitti_world_config
from repro.datasets.synth import generate_sequence


@pytest.fixture(scope="session")
def kitti_small():
    """A small KITTI-like dataset shared across tests (2 seqs x 60 frames)."""
    return kitti_like_dataset(num_sequences=2, frames_per_sequence=60)


@pytest.fixture(scope="session")
def kitti_sequence():
    """One KITTI-like sequence."""
    return generate_sequence(kitti_world_config(), 60, name="seq-test", seed=7)


@pytest.fixture(scope="session")
def citypersons_small():
    """A small CityPersons-like dataset (6 snippets)."""
    return citypersons_like_dataset(num_sequences=6)
