"""Unit tests for per-class Hungarian association (paper §4.1)."""

import numpy as np
import pytest

from repro.tracker.association import associate, associate_per_class


class TestAssociate:
    def test_perfect_match(self):
        tracks = np.array([[0, 0, 10, 10], [50, 50, 60, 60]])
        dets = np.array([[51, 51, 61, 61], [1, 1, 11, 11]])
        res = associate(tracks, dets)
        matches = {tuple(m) for m in res.matches.tolist()}
        assert matches == {(0, 1), (1, 0)}
        assert res.unmatched_tracks.size == 0
        assert res.unmatched_detections.size == 0

    def test_empty_tracks(self):
        dets = np.array([[0, 0, 10, 10]])
        res = associate(np.zeros((0, 4)), dets)
        assert res.matches.shape == (0, 2)
        assert res.unmatched_detections.tolist() == [0]

    def test_empty_detections(self):
        tracks = np.array([[0, 0, 10, 10]])
        res = associate(tracks, np.zeros((0, 4)))
        assert res.unmatched_tracks.tolist() == [0]

    def test_iou_gate_severs_weak_pairs(self):
        tracks = np.array([[0, 0, 10, 10]])
        dets = np.array([[9, 9, 20, 20]])  # tiny overlap
        res = associate(tracks, dets, iou_threshold=0.3)
        assert res.matches.shape[0] == 0
        assert res.unmatched_tracks.tolist() == [0]
        assert res.unmatched_detections.tolist() == [0]

    def test_beta_zero_allows_any_positive_overlap(self):
        tracks = np.array([[0, 0, 10, 10]])
        dets = np.array([[9, 9, 20, 20]])
        res = associate(tracks, dets, iou_threshold=0.0)
        assert res.matches.shape[0] == 1

    def test_disjoint_never_matched_even_at_beta_zero(self):
        tracks = np.array([[0, 0, 10, 10]])
        dets = np.array([[100, 100, 110, 110]])
        res = associate(tracks, dets, iou_threshold=0.0)
        assert res.matches.shape[0] == 0

    def test_maximizes_total_iou(self):
        # Greedy would pair track0 with det0 (IoU .58); optimal pairs differ.
        tracks = np.array([[0.0, 0.0, 10.0, 10.0], [4.0, 0.0, 14.0, 10.0]])
        dets = np.array([[3.0, 0.0, 13.0, 10.0], [5.0, 0.0, 15.0, 10.0]])
        res = associate(tracks, dets)
        matches = dict(res.matches.tolist())
        assert matches == {0: 0, 1: 1}


class TestAssociatePerClass:
    def test_classes_never_cross_match(self):
        tracks = np.array([[0, 0, 10, 10]])
        track_labels = np.array([0])
        dets = np.array([[0, 0, 10, 10]])
        det_labels = np.array([1])
        res = associate_per_class(tracks, track_labels, dets, det_labels)
        assert res.matches.shape[0] == 0
        assert res.unmatched_tracks.tolist() == [0]
        assert res.unmatched_detections.tolist() == [0]

    def test_indices_refer_to_full_arrays(self):
        tracks = np.array([[0, 0, 10, 10], [100, 100, 120, 120]])
        track_labels = np.array([0, 1])
        dets = np.array([[101, 101, 121, 121], [1, 1, 11, 11]])
        det_labels = np.array([1, 0])
        res = associate_per_class(tracks, track_labels, dets, det_labels)
        matches = {tuple(m) for m in res.matches.tolist()}
        assert matches == {(0, 1), (1, 0)}

    def test_length_mismatch_raises(self):
        with pytest.raises(ValueError, match="track_boxes"):
            associate_per_class(
                np.zeros((2, 4)), np.zeros(1), np.zeros((0, 4)), np.zeros(0)
            )

    def test_all_empty(self):
        res = associate_per_class(
            np.zeros((0, 4)), np.zeros(0), np.zeros((0, 4)), np.zeros(0)
        )
        assert res.matches.shape == (0, 2)
