"""Unit tests for IoU computations."""

import numpy as np
import pytest

from repro.boxes.iou import ioa_matrix, iou_matrix, iou_pairwise


class TestIouMatrix:
    def test_identical_boxes(self):
        b = np.array([[0, 0, 10, 10]])
        assert iou_matrix(b, b)[0, 0] == pytest.approx(1.0)

    def test_disjoint(self):
        a = np.array([[0, 0, 1, 1]])
        b = np.array([[5, 5, 6, 6]])
        assert iou_matrix(a, b)[0, 0] == 0.0

    def test_half_overlap(self):
        a = np.array([[0, 0, 10, 10]])
        b = np.array([[0, 0, 10, 5]])
        # intersection 50, union 100
        assert iou_matrix(a, b)[0, 0] == pytest.approx(0.5)

    def test_shape(self):
        a = np.zeros((3, 4)) + [0, 0, 1, 1]
        b = np.zeros((5, 4)) + [0, 0, 1, 1]
        assert iou_matrix(a, b).shape == (3, 5)

    def test_empty_inputs(self):
        a = np.zeros((0, 4))
        b = np.array([[0, 0, 1, 1]])
        assert iou_matrix(a, b).shape == (0, 1)
        assert iou_matrix(b, a).shape == (1, 0)

    def test_degenerate_box_iou_zero(self):
        a = np.array([[5, 5, 5, 5]])
        b = np.array([[0, 0, 10, 10]])
        assert iou_matrix(a, b)[0, 0] == 0.0

    def test_symmetry(self):
        rng = np.random.default_rng(3)
        pts = rng.random((6, 4)) * 100
        boxes = np.stack(
            [
                np.minimum(pts[:, 0], pts[:, 2]),
                np.minimum(pts[:, 1], pts[:, 3]),
                np.maximum(pts[:, 0], pts[:, 2]) + 1,
                np.maximum(pts[:, 1], pts[:, 3]) + 1,
            ],
            axis=1,
        )
        m = iou_matrix(boxes, boxes)
        np.testing.assert_allclose(m, m.T)
        np.testing.assert_allclose(np.diag(m), 1.0)


class TestIouPairwise:
    def test_matches_matrix_diagonal(self):
        a = np.array([[0, 0, 10, 10], [5, 5, 20, 20]])
        b = np.array([[0, 0, 5, 10], [5, 5, 20, 25]])
        expected = np.diag(iou_matrix(a, b))
        np.testing.assert_allclose(iou_pairwise(a, b), expected)

    def test_length_mismatch_raises(self):
        with pytest.raises(ValueError, match="equal length"):
            iou_pairwise(np.zeros((2, 4)), np.zeros((3, 4)))


class TestIoaMatrix:
    def test_contained_box(self):
        inner = np.array([[2, 2, 4, 4]])
        outer = np.array([[0, 0, 10, 10]])
        assert ioa_matrix(inner, outer)[0, 0] == pytest.approx(1.0)
        # Outer covered by inner only fractionally.
        assert ioa_matrix(outer, inner)[0, 0] == pytest.approx(4 / 100)

    def test_not_symmetric(self):
        a = np.array([[0, 0, 2, 2]])
        b = np.array([[0, 0, 10, 10]])
        assert ioa_matrix(a, b)[0, 0] != ioa_matrix(b, a)[0, 0]


class TestIouMatrixOutBuffer:
    """The in-place variant NMS uses: result written into a scratch buffer."""

    def _random(self, n, m, seed=0):
        rng = np.random.default_rng(seed)
        def boxes(k):
            xy = rng.uniform(0, 300, size=(k, 2))
            return np.concatenate([xy, xy + rng.uniform(1, 90, size=(k, 2))], axis=1)
        return boxes(n), boxes(m)

    def test_matches_allocating_variant_exactly(self):
        a, b = self._random(17, 23)
        out = np.empty((32, 32))
        np.testing.assert_array_equal(
            iou_matrix(a, b, out=out), iou_matrix(a, b)
        )

    def test_result_is_contiguous_view_of_buffer(self):
        a, b = self._random(5, 7)
        out = np.empty((16, 16))
        got = iou_matrix(a, b, out=out)
        assert got.shape == (5, 7)
        assert got.flags["C_CONTIGUOUS"]
        assert got.base is out or got.base is out.base or np.shares_memory(got, out)

    def test_flat_buffer_accepted(self):
        a, b = self._random(4, 6)
        out = np.empty(64)
        np.testing.assert_array_equal(iou_matrix(a, b, out=out), iou_matrix(a, b))

    def test_too_small_buffer_raises(self):
        a, b = self._random(8, 8)
        with pytest.raises(ValueError, match="too small"):
            iou_matrix(a, b, out=np.empty((4, 4)))

    def test_wrong_dtype_or_layout_raises(self):
        a, b = self._random(3, 3)
        with pytest.raises(ValueError, match="C-contiguous float64"):
            iou_matrix(a, b, out=np.empty((8, 8), dtype=np.float32))
        with pytest.raises(ValueError, match="C-contiguous float64"):
            iou_matrix(a, b, out=np.empty((8, 8)).T)

    def test_degenerate_boxes_zero_with_buffer(self):
        a = np.array([[0.0, 0.0, 0.0, 10.0]])  # zero width
        b = np.array([[0.0, 0.0, 5.0, 5.0]])
        out = np.full((4, 4), 99.0)
        assert iou_matrix(a, b, out=out)[0, 0] == 0.0

    def test_empty_inputs_skip_buffer(self):
        a = np.zeros((0, 4))
        b = np.array([[0.0, 0.0, 5.0, 5.0]])
        got = iou_matrix(a, b, out=np.empty(16))
        assert got.shape == (0, 1)
