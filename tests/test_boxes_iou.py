"""Unit tests for IoU computations."""

import numpy as np
import pytest

from repro.boxes.iou import ioa_matrix, iou_matrix, iou_pairwise


class TestIouMatrix:
    def test_identical_boxes(self):
        b = np.array([[0, 0, 10, 10]])
        assert iou_matrix(b, b)[0, 0] == pytest.approx(1.0)

    def test_disjoint(self):
        a = np.array([[0, 0, 1, 1]])
        b = np.array([[5, 5, 6, 6]])
        assert iou_matrix(a, b)[0, 0] == 0.0

    def test_half_overlap(self):
        a = np.array([[0, 0, 10, 10]])
        b = np.array([[0, 0, 10, 5]])
        # intersection 50, union 100
        assert iou_matrix(a, b)[0, 0] == pytest.approx(0.5)

    def test_shape(self):
        a = np.zeros((3, 4)) + [0, 0, 1, 1]
        b = np.zeros((5, 4)) + [0, 0, 1, 1]
        assert iou_matrix(a, b).shape == (3, 5)

    def test_empty_inputs(self):
        a = np.zeros((0, 4))
        b = np.array([[0, 0, 1, 1]])
        assert iou_matrix(a, b).shape == (0, 1)
        assert iou_matrix(b, a).shape == (1, 0)

    def test_degenerate_box_iou_zero(self):
        a = np.array([[5, 5, 5, 5]])
        b = np.array([[0, 0, 10, 10]])
        assert iou_matrix(a, b)[0, 0] == 0.0

    def test_symmetry(self):
        rng = np.random.default_rng(3)
        pts = rng.random((6, 4)) * 100
        boxes = np.stack(
            [
                np.minimum(pts[:, 0], pts[:, 2]),
                np.minimum(pts[:, 1], pts[:, 3]),
                np.maximum(pts[:, 0], pts[:, 2]) + 1,
                np.maximum(pts[:, 1], pts[:, 3]) + 1,
            ],
            axis=1,
        )
        m = iou_matrix(boxes, boxes)
        np.testing.assert_allclose(m, m.T)
        np.testing.assert_allclose(np.diag(m), 1.0)


class TestIouPairwise:
    def test_matches_matrix_diagonal(self):
        a = np.array([[0, 0, 10, 10], [5, 5, 20, 20]])
        b = np.array([[0, 0, 5, 10], [5, 5, 20, 25]])
        expected = np.diag(iou_matrix(a, b))
        np.testing.assert_allclose(iou_pairwise(a, b), expected)

    def test_length_mismatch_raises(self):
        with pytest.raises(ValueError, match="equal length"):
            iou_pairwise(np.zeros((2, 4)), np.zeros((3, 4)))


class TestIoaMatrix:
    def test_contained_box(self):
        inner = np.array([[2, 2, 4, 4]])
        outer = np.array([[0, 0, 10, 10]])
        assert ioa_matrix(inner, outer)[0, 0] == pytest.approx(1.0)
        # Outer covered by inner only fractionally.
        assert ioa_matrix(outer, inner)[0, 0] == pytest.approx(4 / 100)

    def test_not_symmetric(self):
        a = np.array([[0, 0, 2, 2]])
        b = np.array([[0, 0, 10, 10]])
        assert ioa_matrix(a, b)[0, 0] != ioa_matrix(b, a)[0, 0]
