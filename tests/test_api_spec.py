"""Spec round trips, fingerprints, config dict round trips, registries."""

import dataclasses
import json

import pytest

from repro.api.registry import Registry, SYSTEMS, register_system
from repro.api.spec import DatasetSpec, EvalSpec, ExecSpec, ExperimentSpec
from repro.core.config import SystemConfig, build_system
from repro.harness.io import config_from_dict, config_to_dict
from repro.tracker.catdet_tracker import TrackerConfig


def _rich_spec() -> ExperimentSpec:
    return ExperimentSpec(
        system=SystemConfig(
            "catdet",
            "resnet50",
            "resnet10b",
            c_thresh=0.25,
            margin=12.5,
            seed=3,
            num_classes=1,
            input_scale=0.72,
            detailed_ops=False,
            tracker=TrackerConfig(eta=0.5, input_score_threshold=0.6, motion_model="kalman"),
        ),
        dataset=DatasetSpec("citypersons", num_sequences=5, seed=11),
        eval=EvalSpec(difficulties=("moderate",), ap_method="voc11", with_delay=False),
        exec=ExecSpec(executor="process", workers=2),
    )


class TestSpecRoundTrip:
    def test_json_round_trip_exact(self):
        spec = _rich_spec()
        assert ExperimentSpec.from_json(spec.to_json()) == spec

    def test_default_spec_round_trip(self):
        spec = ExperimentSpec(SystemConfig("single", "resnet50"))
        assert ExperimentSpec.from_json(spec.to_json(indent=2)) == spec

    def test_difficulties_list_coerced_to_tuple(self):
        # JSON has no tuples; equality after a round trip relies on coercion.
        ev = EvalSpec(difficulties=["hard"])
        assert ev.difficulties == ("hard",)

    def test_from_dict_rejects_unknown_fields(self):
        payload = _rich_spec().to_dict()
        payload["dataset"]["typo"] = 1
        with pytest.raises(ValueError, match="typo"):
            ExperimentSpec.from_dict(payload)

    def test_from_dict_rejects_bad_format(self):
        payload = _rich_spec().to_dict()
        payload["format"] = "other/9"
        with pytest.raises(ValueError, match="format"):
            ExperimentSpec.from_dict(payload)

    def test_missing_sections_default(self):
        spec = ExperimentSpec.from_dict({"system": config_to_dict(SystemConfig("single", "vgg16"))})
        assert spec.dataset == DatasetSpec()
        assert spec.eval == EvalSpec()
        assert spec.exec == ExecSpec()


class TestFingerprint:
    def test_exec_plan_does_not_change_fingerprint(self):
        spec = _rich_spec()
        other = dataclasses.replace(spec, exec=ExecSpec(executor="auto", workers=0))
        assert other.fingerprint == spec.fingerprint

    def test_result_affecting_fields_change_fingerprint(self):
        spec = _rich_spec()
        assert spec.with_system(c_thresh=0.3).fingerprint != spec.fingerprint
        assert (
            dataclasses.replace(spec, dataset=DatasetSpec("kitti")).fingerprint
            != spec.fingerprint
        )
        assert (
            dataclasses.replace(spec, eval=EvalSpec(("hard",))).fingerprint
            != spec.fingerprint
        )

    def test_read_time_eval_knobs_share_fingerprint(self):
        # ap_method / delay_beta are applied when reading the cached
        # evaluation state — they must not fork cache entries.
        spec = ExperimentSpec(SystemConfig("single", "resnet50"))
        voc = dataclasses.replace(spec, eval=EvalSpec(ap_method="voc11"))
        beta = dataclasses.replace(spec, eval=EvalSpec(delay_beta=0.9))
        assert spec.fingerprint == voc.fingerprint == beta.fingerprint
        no_delay = dataclasses.replace(spec, eval=EvalSpec(with_delay=False))
        assert no_delay.fingerprint != spec.fingerprint

    def test_keyframe_stride_in_fingerprint(self):
        # stride lives on SystemConfig precisely so the cache sees it.
        spec = ExperimentSpec(SystemConfig("keyframe", "resnet50", stride=7))
        assert spec.with_system(stride=3).fingerprint != spec.fingerprint

    def test_fingerprint_stable_across_processes(self):
        # sha256 of canonical JSON — no dict-ordering or hash-seed effects.
        spec = _rich_spec()
        assert spec.fingerprint == ExperimentSpec.from_json(spec.to_json()).fingerprint

    def test_device_changes_fingerprint(self):
        # The modeled device changes the reported timing column, so the
        # same system on different devices must not share a cache entry.
        spec = ExperimentSpec(SystemConfig("catdet", "resnet50", "resnet10a"))
        titanx = spec.with_device("titanx")
        assert titanx.device == "titanx"
        assert titanx.fingerprint != spec.fingerprint
        assert titanx.with_device(None).fingerprint == spec.fingerprint

    def test_device_round_trips(self):
        spec = ExperimentSpec(
            SystemConfig("single", "resnet50", device="abstract")
        )
        again = ExperimentSpec.from_json(spec.to_json())
        assert again == spec
        assert again.device == "abstract"

    def test_unknown_device_rejected(self):
        with pytest.raises(ValueError, match="unknown device"):
            SystemConfig("single", "resnet50", device="warp-core")


class TestConfigDictRoundTrip:
    def test_round_trip_preserves_every_field(self):
        config = _rich_spec().system
        assert config_from_dict(config_to_dict(config)) == config

    def test_detailed_ops_survives(self):
        # Regression: the old _config_dict dropped detailed_ops (and the
        # tracker lifecycle fields), silently reverting them on reload.
        config = SystemConfig("catdet", "resnet50", "resnet10a", detailed_ops=False)
        assert config_from_dict(config_to_dict(config)).detailed_ops is False

    def test_json_safe(self):
        payload = json.loads(json.dumps(config_to_dict(_rich_spec().system)))
        assert config_from_dict(payload) == _rich_spec().system

    def test_missing_optional_fields_default(self):
        config = config_from_dict({"kind": "single", "refinement_model": "resnet50"})
        assert config == SystemConfig("single", "resnet50")

    def test_unknown_field_rejected(self):
        with pytest.raises(ValueError, match="unknown"):
            config_from_dict({"kind": "single", "refinement_model": "r", "nope": 1})


class TestValidation:
    def test_unknown_difficulty(self):
        with pytest.raises(ValueError, match="difficulty"):
            EvalSpec(difficulties=("impossible",))

    def test_bad_ap_method(self):
        with pytest.raises(ValueError, match="ap_method"):
            EvalSpec(ap_method="r11")

    def test_bad_beta(self):
        with pytest.raises(ValueError, match="delay_beta"):
            EvalSpec(delay_beta=0.0)

    def test_bad_dataset_counts(self):
        with pytest.raises(ValueError, match="num_sequences"):
            DatasetSpec("kitti", num_sequences=0)

    def test_bad_workers(self):
        with pytest.raises(ValueError, match="workers"):
            ExecSpec(workers=-1)


class TestRegistries:
    def test_builtin_kinds_registered(self):
        for kind in ("single", "cascade", "catdet", "keyframe"):
            assert kind in SYSTEMS

    def test_keyframe_kind_builds(self):
        from repro.core.keyframe import KeyFrameSystem

        system = build_system(SystemConfig("keyframe", "resnet50"))
        assert isinstance(system, KeyFrameSystem)

    def test_keyframe_stride_round_trips_and_builds(self):
        config = SystemConfig("keyframe", "resnet50", stride=7)
        assert config_from_dict(config_to_dict(config)) == config
        assert build_system(config).stride == 7
        with pytest.raises(ValueError, match="stride"):
            SystemConfig("keyframe", "resnet50", stride=0)

    def test_unknown_kind_lists_known(self):
        with pytest.raises(ValueError, match="kind"):
            SystemConfig("warp", "resnet50")

    def test_proposal_requirement_from_registry(self):
        with pytest.raises(ValueError, match="proposal_model"):
            SystemConfig("cascade", "resnet50")

    def test_custom_system_registers_and_builds(self):
        name = "test-custom-kind"
        if name not in SYSTEMS:

            @register_system(name)
            def _build(config):
                from repro.core.systems import SingleModelSystem

                return SingleModelSystem(config.refinement_model, seed=config.seed)

        from repro.core.systems import SingleModelSystem

        config = SystemConfig(name, "resnet10a", seed=5)
        system = build_system(config)
        assert isinstance(system, SingleModelSystem)
        assert name in config.label

    def test_duplicate_registration_rejected(self):
        registry = Registry("thing")
        registry.register("a", 1)
        with pytest.raises(ValueError, match="already registered"):
            registry.register("a", 2)
        registry.register("a", 3, override=True)
        assert registry.get("a") == 3

    def test_unknown_entry_error_names_known(self):
        registry = Registry("thing")
        registry.register("known", 1)
        with pytest.raises(KeyError, match="known"):
            registry.get("missing")
