"""Property-based tests on tracker and delay-metric invariants."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.detections import Detections
from repro.metrics.delay import DelayEvaluation, TrackDelayRecord
from repro.tracker.catdet_tracker import CaTDetTracker, TrackerConfig


@st.composite
def detection_stream(draw, max_frames=15, max_objects=5):
    """A short random stream of per-frame detections."""
    n_frames = draw(st.integers(1, max_frames))
    frames = []
    for _ in range(n_frames):
        n = draw(st.integers(0, max_objects))
        boxes = []
        for _ in range(n):
            x = draw(st.floats(0, 900))
            y = draw(st.floats(0, 300))
            w = draw(st.floats(12, 120))
            h = draw(st.floats(12, 120))
            boxes.append([x, y, x + w, y + h])
        frames.append(
            Detections(
                np.asarray(boxes).reshape(-1, 4),
                np.linspace(1.0, 0.6, n) if n else np.zeros(0),
                np.zeros(n, dtype=int),
            )
        )
    return frames


class TestTrackerInvariants:
    @given(detection_stream())
    @settings(max_examples=40, deadline=None)
    def test_track_ids_never_reused(self, frames):
        tracker = CaTDetTracker(TrackerConfig(input_score_threshold=0.0))
        seen = set()
        alive_prev = set()
        for dets in frames:
            tracker.predict()
            tracker.update(dets)
            alive = {t.track_id for t in tracker.tracks}
            new = alive - alive_prev
            # New ids must never collide with any id ever seen before.
            assert not (new & seen)
            seen |= alive
            alive_prev = alive

    @given(detection_stream())
    @settings(max_examples=40, deadline=None)
    def test_confidence_within_bounds(self, frames):
        config = TrackerConfig(max_confidence=3.0, input_score_threshold=0.0)
        tracker = CaTDetTracker(config)
        for dets in frames:
            tracker.predict()
            tracker.update(dets)
            for track in tracker.tracks:
                assert 0.0 <= track.confidence <= config.max_confidence

    @given(detection_stream())
    @settings(max_examples=40, deadline=None)
    def test_hits_and_misses_bounded_by_age(self, frames):
        tracker = CaTDetTracker(TrackerConfig(input_score_threshold=0.0))
        for dets in frames:
            tracker.predict()
            tracker.update(dets)
            for track in tracker.tracks:
                # age counts update steps since spawn; hits start at 1;
                # misses is the *consecutive* miss count (reset on match).
                assert 1 <= track.hits <= track.age + 1
                assert 0 <= track.misses <= track.age

    @given(detection_stream(), st.integers(1, 10))
    @settings(max_examples=30, deadline=None)
    def test_all_tracks_die_without_detections(self, frames, extra):
        config = TrackerConfig(
            max_confidence=3.0, miss_penalty=1.0, input_score_threshold=0.0
        )
        tracker = CaTDetTracker(config)
        for dets in frames:
            tracker.predict()
            tracker.update(dets)
        # Starve the tracker past the max survivable miss count.
        for _ in range(4 + extra):
            tracker.predict()
            tracker.update(Detections.empty())
        assert tracker.tracks == []


class TestDelayMetricProperties:
    @st.composite
    @staticmethod
    def track_records(draw):
        n_tracks = draw(st.integers(1, 8))
        tracks = []
        for _ in range(n_tracks):
            length = draw(st.integers(1, 12))
            scores = draw(
                st.lists(
                    st.one_of(st.just(-np.inf), st.floats(0.0, 1.0)),
                    min_size=length, max_size=length,
                )
            )
            record = TrackDelayRecord()
            for i, s in enumerate(scores):
                record.append(i, s, cared=True)
            tracks.append(record)
        return tracks

    @given(track_records(), st.floats(0.0, 1.0), st.floats(0.0, 1.0))
    @settings(max_examples=60, deadline=None)
    def test_delay_monotone_in_threshold(self, tracks, t1, t2):
        lo, hi = min(t1, t2), max(t1, t2)
        for record in tracks:
            assert record.delay_at(lo) <= record.delay_at(hi)
            assert record.exit_delay_at(lo) <= record.exit_delay_at(hi)

    @given(track_records(), st.floats(0.0, 1.0))
    @settings(max_examples=60, deadline=None)
    def test_delays_bounded_by_length(self, tracks, threshold):
        for record in tracks:
            assert 0 <= record.delay_at(threshold) <= len(record)
            assert 0 <= record.exit_delay_at(threshold) <= len(record)

    @given(track_records(), st.floats(0.0, 1.0))
    @settings(max_examples=40, deadline=None)
    def test_entry_plus_exit_consistent(self, tracks, threshold):
        """If detected at all, entry + exit delays leave >= 1 detected frame."""
        for record in tracks:
            entry = record.delay_at(threshold)
            exit_ = record.exit_delay_at(threshold)
            if entry < len(record):  # detected at least once
                assert entry + exit_ <= len(record) - 1


# --------------------------------------------------------------------------- #
# Vectorized-vs-scalar equivalence (the perf refactor's safety net)
# --------------------------------------------------------------------------- #


@st.composite
def quantized_boxes_scores(draw, max_boxes=30):
    """Integer-grid boxes and coarse scores — forces ties in NMS/merge."""
    n = draw(st.integers(0, max_boxes))
    boxes = []
    for _ in range(n):
        x = draw(st.integers(0, 30)) * 10.0
        y = draw(st.integers(0, 30)) * 10.0
        w = draw(st.integers(1, 12)) * 10.0
        h = draw(st.integers(1, 12)) * 10.0
        boxes.append([x, y, x + w, y + h])
    scores = np.asarray([draw(st.integers(0, 10)) / 10.0 for _ in range(n)])
    return np.asarray(boxes).reshape(-1, 4), scores


@st.composite
def labeled_box_sets(draw, max_boxes=12, num_classes=3):
    """Two labeled box sets (tracks, detections) sharing a class alphabet."""
    def one_side():
        n = draw(st.integers(0, max_boxes))
        boxes = []
        for _ in range(n):
            x = draw(st.integers(0, 40)) * 10.0
            y = draw(st.integers(0, 40)) * 10.0
            w = draw(st.integers(1, 10)) * 10.0
            h = draw(st.integers(1, 10)) * 10.0
            boxes.append([x, y, x + w, y + h])
        labels = np.asarray(
            [draw(st.integers(0, num_classes - 1)) for _ in range(n)], dtype=np.int64
        )
        return np.asarray(boxes).reshape(-1, 4), labels

    tb, tl = one_side()
    db, dl = one_side()
    return tb, tl, db, dl


class TestVectorizedKernelEquivalence:
    """The array-level kernels must reproduce the preserved scalar loops
    exactly — including tie-breaking order — on randomized inputs."""

    @given(quantized_boxes_scores(), st.sampled_from([0.0, 0.3, 0.5, 0.7, 1.0]))
    @settings(max_examples=80, deadline=None)
    def test_nms_matches_scalar_reference(self, boxes_scores, threshold):
        from repro.boxes.nms import nms
        from repro.boxes.reference import scalar_nms

        boxes, scores = boxes_scores
        np.testing.assert_array_equal(
            nms(boxes, scores, threshold), scalar_nms(boxes, scores, threshold)
        )

    @given(quantized_boxes_scores(max_boxes=14))
    @settings(max_examples=40, deadline=None)
    def test_merge_matches_scalar_reference(self, boxes_scores):
        from repro.boxes.merge import greedy_merge_boxes
        from repro.boxes.reference import scalar_greedy_merge_boxes

        boxes, _ = boxes_scores
        vec_boxes, vec_assign = greedy_merge_boxes(boxes)
        ref_boxes, ref_assign = scalar_greedy_merge_boxes(boxes)
        np.testing.assert_array_equal(vec_boxes, ref_boxes)
        np.testing.assert_array_equal(vec_assign, ref_assign)

    @given(labeled_box_sets(), st.sampled_from([0.0, 0.3]))
    @settings(max_examples=60, deadline=None)
    def test_stacked_association_matches_per_class_scan(self, sets, threshold):
        """associate_per_class's label-sorted blocks == the naive full-scan
        per-class decomposition calling the same per-class associate."""
        from repro.tracker.association import associate, associate_per_class

        tb, tl, db, dl = sets
        result = associate_per_class(tb, tl, db, dl, threshold)

        matches, u_tracks, u_dets = [], [], []
        for cls in np.unique(np.concatenate([tl, dl])):
            t_idx = np.flatnonzero(tl == cls)
            d_idx = np.flatnonzero(dl == cls)
            res = associate(tb[t_idx], db[d_idx], threshold)
            if res.matches.shape[0]:
                matches.append(
                    np.stack(
                        [t_idx[res.matches[:, 0]], d_idx[res.matches[:, 1]]], axis=1
                    )
                )
            u_tracks.append(t_idx[res.unmatched_tracks])
            u_dets.append(d_idx[res.unmatched_detections])
        ref_matches = (
            np.concatenate(matches, axis=0) if matches else np.zeros((0, 2), dtype=np.int64)
        )
        np.testing.assert_array_equal(result.matches, ref_matches)
        np.testing.assert_array_equal(
            result.unmatched_tracks,
            np.sort(np.concatenate(u_tracks)) if u_tracks else np.zeros(0),
        )
        np.testing.assert_array_equal(
            result.unmatched_detections,
            np.sort(np.concatenate(u_dets)) if u_dets else np.zeros(0),
        )


@st.composite
def box_walk(draw, max_steps=12):
    """A random per-step action sequence for a handful of Kalman tracks."""
    steps = []
    for _ in range(draw(st.integers(1, max_steps))):
        action = draw(st.sampled_from(["predict", "update"]))
        jitter = draw(st.integers(-3, 3))
        steps.append((action, jitter))
    return steps


class TestBatchKalmanEquivalence:
    """BatchBoxKalman must track a bank of scalar filters to float tolerance
    (batched matmul/solve reorders reductions, so exact equality is not
    guaranteed — allclose at tight tolerance is)."""

    @given(box_walk(), st.integers(1, 6))
    @settings(max_examples=40, deadline=None)
    def test_batch_matches_scalar_filters(self, steps, num_tracks):
        from repro.tracker.kalman import BatchBoxKalman, ConstantVelocityBoxKalman

        base = np.asarray(
            [[10.0 + 50 * i, 20.0, 40.0 + 50 * i, 80.0] for i in range(num_tracks)]
        )
        batch = BatchBoxKalman()
        batch.add_many(base)
        scalars = [ConstantVelocityBoxKalman(b) for b in base]

        for action, jitter in steps:
            if action == "predict":
                got = batch.predict()
                want = np.stack([kf.predict() for kf in scalars])
            else:
                obs = base + jitter
                got = batch.update(np.arange(num_tracks), obs)
                want = np.stack([kf.update(b) for kf, b in zip(scalars, obs)])
            np.testing.assert_allclose(got, want, rtol=1e-9, atol=1e-9)


@st.composite
def tracked_stream(draw, max_frames=10, max_objects=6):
    """Detection frames with smooth motion plus random clutter/dropout."""
    n_obj = draw(st.integers(1, max_objects))
    n_frames = draw(st.integers(2, max_frames))
    starts = [
        (draw(st.integers(0, 50)) * 20.0, draw(st.integers(0, 50)) * 20.0)
        for _ in range(n_obj)
    ]
    vels = [(draw(st.integers(-4, 4)), draw(st.integers(-4, 4))) for _ in range(n_obj)]
    sizes = [draw(st.integers(3, 10)) * 10.0 for _ in range(n_obj)]
    labels = [draw(st.integers(0, 1)) for _ in range(n_obj)]
    frames = []
    for t in range(n_frames):
        boxes, scores, labs = [], [], []
        for i in range(n_obj):
            if draw(st.booleans()) or t == 0:  # random dropout
                x = starts[i][0] + vels[i][0] * t
                y = starts[i][1] + vels[i][1] * t
                boxes.append([x, y, x + sizes[i], y + sizes[i]])
                scores.append(draw(st.integers(5, 10)) / 10.0)
                labs.append(labels[i])
        frames.append(
            Detections(
                np.asarray(boxes).reshape(-1, 4),
                np.asarray(scores),
                np.asarray(labs, dtype=np.int64),
            )
        )
    return frames


class TestColumnarTrackerEquivalence:
    """The columnar trackers vs the preserved per-object scalar loops."""

    @given(tracked_stream())
    @settings(max_examples=30, deadline=None)
    def test_catdet_decay_bit_identical(self, frames):
        from repro.tracker.reference import ScalarCaTDetTracker

        config = TrackerConfig(input_score_threshold=0.5)
        vec = CaTDetTracker(config, image_size=(1200, 1200))
        ref = ScalarCaTDetTracker(config, image_size=(1200, 1200))
        for dets in frames:
            pv, pr = vec.predict(), ref.predict()
            np.testing.assert_array_equal(pv.boxes, pr.boxes)
            np.testing.assert_array_equal(pv.scores, pr.scores)
            np.testing.assert_array_equal(pv.labels, pr.labels)
            vec.update(dets)
            ref.update(dets)
        assert [t.track_id for t in vec.tracks] == [t.track_id for t in ref.tracks]
        for tv, tr in zip(vec.tracks, ref.tracks):
            assert (tv.confidence, tv.hits, tv.misses, tv.age) == (
                tr.confidence,
                tr.hits,
                tr.misses,
                tr.age,
            )
            np.testing.assert_array_equal(tv.last_box, tr.last_box)

    @given(tracked_stream())
    @settings(max_examples=20, deadline=None)
    def test_catdet_kalman_allclose(self, frames):
        from repro.tracker.reference import ScalarCaTDetTracker

        config = TrackerConfig(motion_model="kalman", input_score_threshold=0.5)
        vec = CaTDetTracker(config, image_size=(1200, 1200))
        ref = ScalarCaTDetTracker(config, image_size=(1200, 1200))
        for dets in frames:
            pv, pr = vec.predict(), ref.predict()
            np.testing.assert_allclose(pv.boxes, pr.boxes, rtol=1e-8, atol=1e-8)
            np.testing.assert_array_equal(pv.labels, pr.labels)
            vec.update(dets)
            ref.update(dets)
        assert [t.track_id for t in vec.tracks] == [t.track_id for t in ref.tracks]

    @given(tracked_stream())
    @settings(max_examples=30, deadline=None)
    def test_sort_matches_scalar(self, frames):
        from repro.tracker.reference import ScalarSort
        from repro.tracker.sort import Sort, SortConfig

        config = SortConfig(max_age=2, min_hits=2)
        vec, ref = Sort(config), ScalarSort(config)
        for dets in frames:
            rv, rr = vec.update(dets), ref.update(dets)
            np.testing.assert_allclose(rv.boxes, rr.boxes, rtol=1e-8, atol=1e-8)
            np.testing.assert_array_equal(rv.labels, rr.labels)
        assert sorted(vec.tracklets) == sorted(ref.tracklets)
        for tid, tracklet in vec.tracklets.items():
            assert tracklet.frames == ref.tracklets[tid].frames
