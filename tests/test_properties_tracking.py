"""Property-based tests on tracker and delay-metric invariants."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.detections import Detections
from repro.metrics.delay import DelayEvaluation, TrackDelayRecord
from repro.tracker.catdet_tracker import CaTDetTracker, TrackerConfig


@st.composite
def detection_stream(draw, max_frames=15, max_objects=5):
    """A short random stream of per-frame detections."""
    n_frames = draw(st.integers(1, max_frames))
    frames = []
    for _ in range(n_frames):
        n = draw(st.integers(0, max_objects))
        boxes = []
        for _ in range(n):
            x = draw(st.floats(0, 900))
            y = draw(st.floats(0, 300))
            w = draw(st.floats(12, 120))
            h = draw(st.floats(12, 120))
            boxes.append([x, y, x + w, y + h])
        frames.append(
            Detections(
                np.asarray(boxes).reshape(-1, 4),
                np.linspace(1.0, 0.6, n) if n else np.zeros(0),
                np.zeros(n, dtype=int),
            )
        )
    return frames


class TestTrackerInvariants:
    @given(detection_stream())
    @settings(max_examples=40, deadline=None)
    def test_track_ids_never_reused(self, frames):
        tracker = CaTDetTracker(TrackerConfig(input_score_threshold=0.0))
        seen = set()
        alive_prev = set()
        for dets in frames:
            tracker.predict()
            tracker.update(dets)
            alive = {t.track_id for t in tracker.tracks}
            new = alive - alive_prev
            # New ids must never collide with any id ever seen before.
            assert not (new & seen)
            seen |= alive
            alive_prev = alive

    @given(detection_stream())
    @settings(max_examples=40, deadline=None)
    def test_confidence_within_bounds(self, frames):
        config = TrackerConfig(max_confidence=3.0, input_score_threshold=0.0)
        tracker = CaTDetTracker(config)
        for dets in frames:
            tracker.predict()
            tracker.update(dets)
            for track in tracker.tracks:
                assert 0.0 <= track.confidence <= config.max_confidence

    @given(detection_stream())
    @settings(max_examples=40, deadline=None)
    def test_hits_and_misses_bounded_by_age(self, frames):
        tracker = CaTDetTracker(TrackerConfig(input_score_threshold=0.0))
        for dets in frames:
            tracker.predict()
            tracker.update(dets)
            for track in tracker.tracks:
                # age counts update steps since spawn; hits start at 1;
                # misses is the *consecutive* miss count (reset on match).
                assert 1 <= track.hits <= track.age + 1
                assert 0 <= track.misses <= track.age

    @given(detection_stream(), st.integers(1, 10))
    @settings(max_examples=30, deadline=None)
    def test_all_tracks_die_without_detections(self, frames, extra):
        config = TrackerConfig(
            max_confidence=3.0, miss_penalty=1.0, input_score_threshold=0.0
        )
        tracker = CaTDetTracker(config)
        for dets in frames:
            tracker.predict()
            tracker.update(dets)
        # Starve the tracker past the max survivable miss count.
        for _ in range(4 + extra):
            tracker.predict()
            tracker.update(Detections.empty())
        assert tracker.tracks == []


class TestDelayMetricProperties:
    @st.composite
    @staticmethod
    def track_records(draw):
        n_tracks = draw(st.integers(1, 8))
        tracks = []
        for _ in range(n_tracks):
            length = draw(st.integers(1, 12))
            scores = draw(
                st.lists(
                    st.one_of(st.just(-np.inf), st.floats(0.0, 1.0)),
                    min_size=length, max_size=length,
                )
            )
            record = TrackDelayRecord()
            for i, s in enumerate(scores):
                record.append(i, s, cared=True)
            tracks.append(record)
        return tracks

    @given(track_records(), st.floats(0.0, 1.0), st.floats(0.0, 1.0))
    @settings(max_examples=60, deadline=None)
    def test_delay_monotone_in_threshold(self, tracks, t1, t2):
        lo, hi = min(t1, t2), max(t1, t2)
        for record in tracks:
            assert record.delay_at(lo) <= record.delay_at(hi)
            assert record.exit_delay_at(lo) <= record.exit_delay_at(hi)

    @given(track_records(), st.floats(0.0, 1.0))
    @settings(max_examples=60, deadline=None)
    def test_delays_bounded_by_length(self, tracks, threshold):
        for record in tracks:
            assert 0 <= record.delay_at(threshold) <= len(record)
            assert 0 <= record.exit_delay_at(threshold) <= len(record)

    @given(track_records(), st.floats(0.0, 1.0))
    @settings(max_examples=40, deadline=None)
    def test_entry_plus_exit_consistent(self, tracks, threshold):
        """If detected at all, entry + exit delays leave >= 1 detected frame."""
        for record in tracks:
            entry = record.delay_at(threshold)
            exit_ = record.exit_delay_at(threshold)
            if entry < len(record):  # detected at least once
                assert entry + exit_ <= len(record) - 1
