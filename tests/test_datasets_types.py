"""Unit tests for the ground-truth data model."""

import numpy as np
import pytest

from repro.datasets.types import ClassSpec, Dataset, ObjectTrack, Sequence


def _track(track_id=0, label=0, first=2, length=5, x0=100.0):
    boxes = np.stack(
        [np.array([x0 + 3 * t, 50.0, x0 + 3 * t + 40.0, 90.0]) for t in range(length)]
    )
    return ObjectTrack(
        track_id=track_id,
        label=label,
        first_frame=first,
        boxes=boxes,
        occlusion=np.zeros(length),
        truncation=np.zeros(length),
    )


class TestObjectTrack:
    def test_length_and_last_frame(self):
        t = _track(first=2, length=5)
        assert t.length == 5
        assert t.last_frame == 6

    def test_frame_index(self):
        t = _track(first=2, length=5)
        assert t.frame_index(2) == 0
        assert t.frame_index(6) == 4
        assert t.frame_index(1) is None
        assert t.frame_index(7) is None

    def test_box_at(self):
        t = _track(first=2, length=5, x0=100.0)
        np.testing.assert_allclose(t.box_at(3), [103, 50, 143, 90])
        assert t.box_at(0) is None

    def test_mismatched_arrays_raise(self):
        with pytest.raises(ValueError, match="equal length"):
            ObjectTrack(0, 0, 0, np.zeros((3, 4)), np.zeros(2), np.zeros(3))

    def test_negative_first_frame_raises(self):
        with pytest.raises(ValueError, match="first_frame"):
            ObjectTrack(0, 0, -1, np.zeros((1, 4)), np.zeros(1), np.zeros(1))


class TestSequence:
    def test_annotations_collects_visible_tracks(self):
        seq = Sequence(
            "s", 200, 100, 10, 10.0, tracks=[_track(0, 0, 2, 5), _track(1, 1, 0, 3)]
        )
        ann = seq.annotations(2)
        assert len(ann) == 2
        assert sorted(ann.track_ids.tolist()) == [0, 1]
        ann5 = seq.annotations(5)
        assert ann5.track_ids.tolist() == [0]
        assert len(seq.annotations(9)) == 0

    def test_annotations_clipped_by_default(self):
        track = _track(0, 0, 0, 1, x0=180.0)  # extends past width 200
        seq = Sequence("s", 200, 100, 5, 10.0, tracks=[track])
        ann = seq.annotations(0)
        assert ann.boxes[0, 2] <= 200.0
        raw = seq.annotations(0, clip=False)
        assert raw.boxes[0, 2] > 200.0

    def test_track_outlives_sequence_raises(self):
        with pytest.raises(ValueError, match="extends"):
            Sequence("s", 200, 100, 3, 10.0, tracks=[_track(0, 0, 0, 5)])

    def test_frame_out_of_range(self):
        seq = Sequence("s", 200, 100, 3, 10.0)
        with pytest.raises(IndexError):
            seq.annotations(3)

    def test_iter_annotations(self):
        seq = Sequence("s", 200, 100, 4, 10.0, tracks=[_track(0, 0, 0, 4)])
        frames = list(seq.iter_annotations())
        assert len(frames) == 4
        assert all(len(f) == 1 for f in frames)


class TestDataset:
    def _dataset(self, labeled=None):
        seq = Sequence("s0", 200, 100, 7, 10.0, tracks=[_track()])
        classes = (ClassSpec("Car", 0, 0.7), ClassSpec("Ped", 1, 0.5))
        return Dataset("d", classes, [seq], labeled_frames=labeled)

    def test_class_lookup(self):
        ds = self._dataset()
        assert ds.class_spec(0).name == "Car"
        with pytest.raises(KeyError):
            ds.class_spec(9)

    def test_duplicate_labels_raise(self):
        with pytest.raises(ValueError, match="unique"):
            Dataset("d", (ClassSpec("A", 0), ClassSpec("B", 0)), [])

    def test_evaluation_frames_default_all(self):
        ds = self._dataset()
        assert ds.evaluation_frames(ds.sequences[0]) == list(range(7))

    def test_evaluation_frames_sparse(self):
        ds = self._dataset(labeled={"s0": [3]})
        assert ds.evaluation_frames(ds.sequences[0]) == [3]

    def test_totals(self):
        ds = self._dataset()
        assert ds.total_frames == 7
        assert ds.total_objects == 1
