"""Unit tests for the experiment harness."""

import numpy as np
import pytest

from repro.core.config import SystemConfig
from repro.harness.configs import TABLE2_CONFIGS, TABLE6_CONFIGS
from repro.harness.experiment import (
    run_experiment,
    standard_citypersons,
    standard_kitti,
)
from repro.harness.sweeps import cthresh_sweep
from repro.harness.tables import format_table
from repro.metrics.kitti_eval import HARD


class TestFormatTable:
    def test_alignment_and_floats(self):
        out = format_table(
            ["name", "x"], [["a", 1.23456], ["bb", None]], precision=2
        )
        lines = out.splitlines()
        assert len(lines) == 4
        assert "1.23" in out
        assert "-" in lines[-1]

    def test_title(self):
        out = format_table(["h"], [["v"]], title="Table X")
        assert out.splitlines()[0] == "Table X"

    def test_row_width_mismatch_raises(self):
        with pytest.raises(ValueError, match="cells"):
            format_table(["a", "b"], [["only-one"]])


class TestStandardDatasets:
    def test_kitti_cached(self):
        assert standard_kitti(2, 30) is standard_kitti(2, 30)

    def test_citypersons_sparse(self):
        ds = standard_citypersons(4)
        assert ds.labeled_frames is not None


class TestConfigs:
    def test_table2_structure(self):
        kinds = [c.kind for c in TABLE2_CONFIGS]
        assert kinds == ["single", "cascade", "catdet", "cascade", "catdet"]

    def test_table6_citypersons_settings(self):
        for config in TABLE6_CONFIGS:
            assert config.num_classes == 1
            assert config.input_scale < 1.0


class TestRunExperiment:
    def test_smoke(self):
        ds = standard_kitti(1, 30)
        result = run_experiment(SystemConfig("single", "resnet10b"), ds, (HARD,))
        assert result.ops_gops > 0
        assert 0.0 <= result.mean_ap("hard") <= 1.0
        assert result.label == "resnet10b, Faster R-CNN"
        assert result.evaluation("hard").difficulty == "hard"


class TestCthreshSweep:
    def test_sweep_structure(self):
        ds = standard_kitti(1, 30)
        points = cthresh_sweep(
            ds, proposal_models=("resnet10a",), c_values=(0.05, 0.4)
        )
        assert len(points) == 4  # 1 model x {tracker, no-tracker} x 2 values
        tracked = [p for p in points if p.with_tracker]
        untracked = [p for p in points if not p.with_tracker]
        assert len(tracked) == len(untracked) == 2

    def test_ops_decrease_with_cthresh(self):
        ds = standard_kitti(1, 30)
        points = cthresh_sweep(
            ds, proposal_models=("resnet10a",), c_values=(0.02, 0.6)
        )
        untracked = sorted(
            (p for p in points if not p.with_tracker), key=lambda p: p.c_thresh
        )
        assert untracked[1].ops_gops <= untracked[0].ops_gops
