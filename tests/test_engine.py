"""Engine tests: stage pipelines, streaming, and parallel execution.

The load-bearing guarantees:

* the parallel executor produces byte-identical ``SystemRunResult``s to
  the serial executor for all three system kinds;
* ``stream()`` matches ``process_sequence()`` frame-for-frame;
* ``reset()`` makes back-to-back runs on one instance bit-identical.
"""

import numpy as np
import pytest

from repro.core.config import SystemConfig, build_system
from repro.core.keyframe import KeyFrameSystem
from repro.core.pipeline import run_on_dataset
from repro.core.systems import CaTDetSystem
from repro.engine.scheduler import (
    FrameParallelExecutor,
    ParallelExecutor,
    SerialExecutor,
    make_executor,
    run_frame_range,
    split_frame_ranges,
)
from repro.engine.stream import FrameRef, sequence_frames

ALL_KINDS = [
    SystemConfig("single", "resnet10b"),
    SystemConfig("cascade", "resnet50", "resnet10a"),
    SystemConfig("catdet", "resnet50", "resnet10a"),
]


def assert_frames_identical(fa, fb):
    """Byte-identical frame results: detections, ops and region stats."""
    assert fa.frame == fb.frame
    np.testing.assert_array_equal(fa.detections.boxes, fb.detections.boxes)
    np.testing.assert_array_equal(fa.detections.scores, fb.detections.scores)
    np.testing.assert_array_equal(fa.detections.labels, fb.detections.labels)
    assert fa.ops.proposal == fb.ops.proposal
    assert fa.ops.refinement == fb.ops.refinement
    assert fa.ops.refinement_from_tracker == fb.ops.refinement_from_tracker
    assert fa.ops.refinement_from_proposal == fb.ops.refinement_from_proposal
    assert fa.num_regions == fb.num_regions
    assert fa.coverage_fraction == fb.coverage_fraction


def assert_runs_identical(a, b):
    assert set(a.sequences) == set(b.sequences)
    for name in a.sequences:
        for fa, fb in zip(a.sequences[name].frames, b.sequences[name].frames):
            assert_frames_identical(fa, fb)


class TestParallelExecutor:
    @pytest.mark.parametrize("config", ALL_KINDS, ids=lambda c: c.kind)
    def test_parallel_matches_serial(self, config, kitti_small):
        serial = run_on_dataset(config, kitti_small, workers=1)
        parallel = run_on_dataset(config, kitti_small, workers=2)
        assert serial.system_name == parallel.system_name
        assert_runs_identical(serial, parallel)

    def test_parallel_accepts_system_instance(self, kitti_small):
        config = SystemConfig("catdet", "resnet50", "resnet10a")
        serial = run_on_dataset(config, kitti_small)
        parallel = run_on_dataset(build_system(config), kitti_small, workers=2)
        assert_runs_identical(serial, parallel)

    def test_workers_zero_uses_cpu_count(self, kitti_small):
        config = SystemConfig("single", "resnet10b")
        auto = run_on_dataset(config, kitti_small, workers=0, max_sequences=1)
        serial = run_on_dataset(config, kitti_small, workers=1, max_sequences=1)
        assert_runs_identical(serial, auto)

    def test_executor_selection(self):
        assert isinstance(make_executor(None), SerialExecutor)
        assert isinstance(make_executor(1), SerialExecutor)
        pool = make_executor(4)
        assert isinstance(pool, ParallelExecutor)
        assert pool.workers == 4
        with pytest.raises(ValueError, match="workers"):
            make_executor(-1)
        with pytest.raises(ValueError, match="workers"):
            ParallelExecutor(0)

    def test_max_sequences_respected(self, kitti_small):
        run = run_on_dataset(
            SystemConfig("single", "resnet10b"), kitti_small, workers=2, max_sequences=1
        )
        assert len(run.sequences) == 1


class TestFrameParallelExecutor:
    @pytest.mark.parametrize(
        "config",
        [SystemConfig("single", "resnet10b"),
         SystemConfig("cascade", "resnet50", "resnet10a")],
        ids=lambda c: c.kind,
    )
    def test_frame_chunks_match_serial(self, config, kitti_small):
        """Frame-range sharding is byte-identical for independent-frame kinds."""
        serial = run_on_dataset(config, kitti_small, workers=1)
        chunked = run_on_dataset(
            config, kitti_small, executor=FrameParallelExecutor(3)
        )
        assert_runs_identical(serial, chunked)

    def test_tracker_kinds_stay_sequence_serial(self, kitti_small):
        """catdet degrades to whole-sequence shards — still identical."""
        config = SystemConfig("catdet", "resnet50", "resnet10a")
        serial = run_on_dataset(config, kitti_small, workers=1)
        fallback = run_on_dataset(
            config, kitti_small, executor=FrameParallelExecutor(2)
        )
        assert_runs_identical(serial, fallback)

    def test_requires_declarative_config(self, kitti_small):
        system = build_system(SystemConfig("single", "resnet10b"))
        with pytest.raises(TypeError, match="SystemConfig"):
            FrameParallelExecutor(2).map_sequences(
                system, kitti_small.sequences[:1]
            )

    def test_run_frame_range_prefix_only_for_causal_kinds(self, kitti_small):
        sequence = kitti_small.sequences[0]
        catdet = SystemConfig("catdet", "resnet50", "resnet10a")
        with pytest.raises(ValueError, match="cross-frame feedback"):
            run_frame_range(catdet, sequence, 5, 10)
        # The guard must hold for live instances too, not just configs.
        with pytest.raises(ValueError, match="cross-frame feedback"):
            run_frame_range(build_system(catdet), sequence, 5, 10)
        prefix = run_frame_range(catdet, sequence, 0, 10)
        serial = build_system(catdet).process_sequence(sequence)
        for fa, fb in zip(prefix.frames, serial.frames[:10]):
            assert_frames_identical(fa, fb)

    def test_run_frame_range_accepts_live_independent_system(self, kitti_small):
        sequence = kitti_small.sequences[0]
        config = SystemConfig("cascade", "resnet50", "resnet10a")
        chunk = run_frame_range(build_system(config), sequence, 10, 15)
        serial = build_system(config).process_sequence(sequence)
        for fa, fb in zip(chunk.frames, serial.frames[10:15]):
            assert_frames_identical(fa, fb)

    def test_run_frame_range_mid_sequence_for_independent_kinds(self, kitti_small):
        sequence = kitti_small.sequences[0]
        config = SystemConfig("cascade", "resnet50", "resnet10a")
        chunk = run_frame_range(config, sequence, 20, 30)
        serial = build_system(config).process_sequence(sequence)
        assert [fr.frame for fr in chunk.frames] == list(range(20, 30))
        for fa, fb in zip(chunk.frames, serial.frames[20:30]):
            assert_frames_identical(fa, fb)

    def test_split_frame_ranges_covers_exactly(self):
        assert split_frame_ranges(10, 3) == [(0, 4), (4, 7), (7, 10)]
        assert split_frame_ranges(2, 5) == [(0, 1), (1, 2)]
        assert split_frame_ranges(0, 3) == []

    def test_frames_executor_registered(self):
        from repro.api.registry import EXECUTORS

        executor = EXECUTORS.get("frames")(2)
        assert isinstance(executor, FrameParallelExecutor)
        assert executor.workers == 2


class TestStream:
    @pytest.mark.parametrize("config", ALL_KINDS, ids=lambda c: c.kind)
    def test_stream_matches_process_sequence(self, config, kitti_small):
        sequence = kitti_small.sequences[0]
        batch = build_system(config).process_sequence(sequence)
        streamed = list(build_system(config).stream(sequence))
        assert len(streamed) == batch.num_frames
        for fa, fb in zip(batch.frames, streamed):
            assert_frames_identical(fa, fb)

    def test_keyframe_stream_matches_process_sequence(self, kitti_small):
        sequence = kitti_small.sequences[0]
        batch = KeyFrameSystem("resnet50", stride=4, seed=0).process_sequence(sequence)
        streamed = list(KeyFrameSystem("resnet50", stride=4, seed=0).stream(sequence))
        for fa, fb in zip(batch.frames, streamed):
            assert_frames_identical(fa, fb)

    def test_chunked_stream_preserves_tracker_state(self, kitti_small):
        """Consuming the feed in chunks equals consuming it in one go."""
        sequence = kitti_small.sequences[0]
        config = SystemConfig("catdet", "resnet50", "resnet10a")
        one_shot = list(build_system(config).stream(sequence))
        chunked_system = build_system(config)
        chunked = []
        for start in range(0, sequence.num_frames, 7):
            chunked.extend(
                chunked_system.stream(sequence_frames(sequence, start, start + 7))
            )
        for fa, fb in zip(one_shot, chunked):
            assert_frames_identical(fa, fb)

    def test_stream_accepts_pairs_and_refs(self, kitti_small):
        sequence = kitti_small.sequences[0]
        system = build_system(SystemConfig("single", "resnet10b"))
        via_refs = list(system.stream([FrameRef(sequence, 0), FrameRef(sequence, 1)]))
        system.reset()
        via_pairs = list(system.stream([(sequence, 0), (sequence, 1)]))
        for fa, fb in zip(via_refs, via_pairs):
            assert_frames_identical(fa, fb)

    def test_same_name_different_sequence_restarts_tracking(self, kitti_small):
        """Sequence identity, not its name, decides when tracking restarts."""
        import dataclasses

        seq_a = kitti_small.sequences[0]
        seq_b = dataclasses.replace(kitti_small.sequences[1], name=seq_a.name)
        config = SystemConfig("catdet", "resnet50", "resnet10a")
        system = build_system(config)
        list(system.stream(sequence_frames(seq_a, 0, 10)))
        restarted = list(system.stream(sequence_frames(seq_b, 0, 10)))
        fresh = list(build_system(config).stream(sequence_frames(seq_b, 0, 10)))
        assert restarted[0].ops.refinement_from_tracker == pytest.approx(0.0)
        for fa, fb in zip(restarted, fresh):
            assert_frames_identical(fa, fb)

    def test_switching_sequences_restarts_tracking(self, kitti_small):
        """Feeding a new sequence starts it fresh (no cross-sequence leaks)."""
        seq_a, seq_b = kitti_small.sequences[:2]
        config = SystemConfig("catdet", "resnet50", "resnet10a")
        system = build_system(config)
        interleaved = list(system.stream(sequence_frames(seq_a, 0, 10)))
        interleaved += list(system.stream(sequence_frames(seq_b, 0, 10)))
        fresh = list(build_system(config).stream(sequence_frames(seq_b, 0, 10)))
        # The first frame of seq_b must carry no tracker regions from seq_a.
        assert interleaved[10].ops.refinement_from_tracker == pytest.approx(0.0)
        for fa, fb in zip(interleaved[10:], fresh):
            assert_frames_identical(fa, fb)

    @pytest.mark.parametrize("config", ALL_KINDS, ids=lambda c: c.kind)
    def test_interleaved_streams_match_back_to_back(self, config, kitti_small):
        """Multi-stream regression: two live feeds interleaved frame by
        frame through *one* system must equal running each back-to-back.

        Before stream routing, every sequence switch re-initialized the
        single pipeline, so interleaving corrupted (restarted) the
        tracker on each alternation.
        """
        seq_a, seq_b = kitti_small.sequences[:2]
        system = build_system(config)
        interleaved = list(
            system.stream(
                ref
                for frame in range(20)
                for ref in ((seq_a, frame), (seq_b, frame))
            )
        )
        solo_a = list(build_system(config).stream(sequence_frames(seq_a, 0, 20)))
        solo_b = list(build_system(config).stream(sequence_frames(seq_b, 0, 20)))
        for i in range(20):
            assert_frames_identical(interleaved[2 * i], solo_a[i])
            assert_frames_identical(interleaved[2 * i + 1], solo_b[i])

    def test_interleaved_keyframe_streams_match_solo(self, kitti_small):
        """The duck-typed keyframe stage is stateful too — interleaving
        must not share its tracker across streams."""
        seq_a, seq_b = kitti_small.sequences[:2]
        system = KeyFrameSystem("resnet50", stride=4, seed=0)
        interleaved = list(
            system.stream(
                ref
                for frame in range(16)
                for ref in ((seq_a, frame), (seq_b, frame))
            )
        )
        solo_b = list(
            KeyFrameSystem("resnet50", stride=4, seed=0).stream(
                sequence_frames(seq_b, 0, 16)
            )
        )
        for i in range(16):
            assert_frames_identical(interleaved[2 * i + 1], solo_b[i])

    def test_stream_router_evicts_least_recently_fed(self, kitti_small):
        """Beyond max_streams the stalest stream restarts when it returns."""
        from repro.engine.stream import StreamRouter

        seq_a, seq_b = kitti_small.sequences[:2]
        system = build_system(SystemConfig("catdet", "resnet50", "resnet10a"))
        router = StreamRouter(system.build_pipeline, max_streams=1)
        router.feed(seq_a, 0)
        router.feed(seq_b, 0)  # evicts seq_a's state
        assert router.active_streams == 1
        restarted = router.feed(seq_a, 0)
        fresh = next(iter(build_system(
            SystemConfig("catdet", "resnet50", "resnet10a")
        ).stream(sequence_frames(seq_a, 0, 1))))
        assert_frames_identical(restarted, fresh)


class TestReset:
    @pytest.mark.parametrize("config", ALL_KINDS, ids=lambda c: c.kind)
    def test_back_to_back_runs_bit_identical(self, config, kitti_small):
        system = build_system(config)
        first = run_on_dataset(system, kitti_small)
        second = run_on_dataset(system, kitti_small)
        assert_runs_identical(first, second)

    def test_reset_clears_detector_caches(self, kitti_small):
        system = build_system(SystemConfig("catdet", "resnet50", "resnet10a"))
        system.process_sequence(kitti_small.sequences[0])
        assert system.proposal_detector._clutter  # caches were populated
        system.reset()
        for detector in (system.proposal_detector, system.refinement_detector):
            assert not detector._persistent
            assert not detector._temporal
            assert not detector._clutter
            assert not detector._track_index

    def test_reset_clears_stream_state(self, kitti_small):
        sequence = kitti_small.sequences[0]
        config = SystemConfig("catdet", "resnet50", "resnet10a")
        system = build_system(config)
        list(system.stream(sequence_frames(sequence, 0, 10)))
        system.reset()
        restarted = list(system.stream(sequence_frames(sequence, 0, 10)))
        fresh = list(build_system(config).stream(sequence_frames(sequence, 0, 10)))
        for fa, fb in zip(restarted, fresh):
            assert_frames_identical(fa, fb)


class TestDetailedOpsFlag:
    def test_fast_path_same_results_except_breakdown(self, kitti_sequence):
        detailed = CaTDetSystem("resnet10a", "resnet50", seed=0, detailed_ops=True)
        fast = CaTDetSystem("resnet10a", "resnet50", seed=0, detailed_ops=False)
        r_detailed = detailed.process_sequence(kitti_sequence)
        r_fast = fast.process_sequence(kitti_sequence)
        for fa, fb in zip(r_detailed.frames, r_fast.frames):
            np.testing.assert_array_equal(fa.detections.boxes, fb.detections.boxes)
            assert fa.ops.proposal == fb.ops.proposal
            assert fa.ops.refinement == fb.ops.refinement
            assert fb.ops.refinement_from_tracker == 0.0
            assert fb.ops.refinement_from_proposal == 0.0
        assert r_detailed.mean_ops().refinement_from_tracker > 0

    def test_config_carries_flag(self):
        config = SystemConfig("catdet", "resnet50", "resnet10a", detailed_ops=False)
        system = build_system(config)
        assert isinstance(system, CaTDetSystem)
        assert system.detailed_ops is False


class TestConfigValidation:
    def test_errors_name_the_offending_field(self):
        cases = [
            ("kind", dict(kind="magic", refinement_model="resnet50")),
            ("refinement_model", dict(kind="single", refinement_model="")),
            (
                "proposal_model",
                dict(kind="cascade", refinement_model="resnet50"),
            ),
            (
                "c_thresh",
                dict(
                    kind="cascade",
                    refinement_model="resnet50",
                    proposal_model="resnet10a",
                    c_thresh=1.5,
                ),
            ),
            (
                "margin",
                dict(
                    kind="cascade",
                    refinement_model="resnet50",
                    proposal_model="resnet10a",
                    margin=-1.0,
                ),
            ),
            ("num_classes", dict(kind="single", refinement_model="resnet50", num_classes=0)),
            (
                "input_scale",
                dict(kind="single", refinement_model="resnet50", input_scale=0.0),
            ),
        ]
        for fieldname, kwargs in cases:
            with pytest.raises(ValueError, match=fieldname):
                SystemConfig(**kwargs)
