"""Engine tests: stage pipelines, streaming, and parallel execution.

The load-bearing guarantees:

* the parallel executor produces byte-identical ``SystemRunResult``s to
  the serial executor for all three system kinds;
* ``stream()`` matches ``process_sequence()`` frame-for-frame;
* ``reset()`` makes back-to-back runs on one instance bit-identical.
"""

import numpy as np
import pytest

from repro.core.config import SystemConfig, build_system
from repro.core.keyframe import KeyFrameSystem
from repro.core.pipeline import run_on_dataset
from repro.core.systems import CaTDetSystem
from repro.engine.scheduler import (
    ParallelExecutor,
    SerialExecutor,
    make_executor,
)
from repro.engine.stream import FrameRef, sequence_frames

ALL_KINDS = [
    SystemConfig("single", "resnet10b"),
    SystemConfig("cascade", "resnet50", "resnet10a"),
    SystemConfig("catdet", "resnet50", "resnet10a"),
]


def assert_frames_identical(fa, fb):
    """Byte-identical frame results: detections, ops and region stats."""
    assert fa.frame == fb.frame
    np.testing.assert_array_equal(fa.detections.boxes, fb.detections.boxes)
    np.testing.assert_array_equal(fa.detections.scores, fb.detections.scores)
    np.testing.assert_array_equal(fa.detections.labels, fb.detections.labels)
    assert fa.ops.proposal == fb.ops.proposal
    assert fa.ops.refinement == fb.ops.refinement
    assert fa.ops.refinement_from_tracker == fb.ops.refinement_from_tracker
    assert fa.ops.refinement_from_proposal == fb.ops.refinement_from_proposal
    assert fa.num_regions == fb.num_regions
    assert fa.coverage_fraction == fb.coverage_fraction


def assert_runs_identical(a, b):
    assert set(a.sequences) == set(b.sequences)
    for name in a.sequences:
        for fa, fb in zip(a.sequences[name].frames, b.sequences[name].frames):
            assert_frames_identical(fa, fb)


class TestParallelExecutor:
    @pytest.mark.parametrize("config", ALL_KINDS, ids=lambda c: c.kind)
    def test_parallel_matches_serial(self, config, kitti_small):
        serial = run_on_dataset(config, kitti_small, workers=1)
        parallel = run_on_dataset(config, kitti_small, workers=2)
        assert serial.system_name == parallel.system_name
        assert_runs_identical(serial, parallel)

    def test_parallel_accepts_system_instance(self, kitti_small):
        config = SystemConfig("catdet", "resnet50", "resnet10a")
        serial = run_on_dataset(config, kitti_small)
        parallel = run_on_dataset(build_system(config), kitti_small, workers=2)
        assert_runs_identical(serial, parallel)

    def test_workers_zero_uses_cpu_count(self, kitti_small):
        config = SystemConfig("single", "resnet10b")
        auto = run_on_dataset(config, kitti_small, workers=0, max_sequences=1)
        serial = run_on_dataset(config, kitti_small, workers=1, max_sequences=1)
        assert_runs_identical(serial, auto)

    def test_executor_selection(self):
        assert isinstance(make_executor(None), SerialExecutor)
        assert isinstance(make_executor(1), SerialExecutor)
        pool = make_executor(4)
        assert isinstance(pool, ParallelExecutor)
        assert pool.workers == 4
        with pytest.raises(ValueError, match="workers"):
            make_executor(-1)
        with pytest.raises(ValueError, match="workers"):
            ParallelExecutor(0)

    def test_max_sequences_respected(self, kitti_small):
        run = run_on_dataset(
            SystemConfig("single", "resnet10b"), kitti_small, workers=2, max_sequences=1
        )
        assert len(run.sequences) == 1


class TestStream:
    @pytest.mark.parametrize("config", ALL_KINDS, ids=lambda c: c.kind)
    def test_stream_matches_process_sequence(self, config, kitti_small):
        sequence = kitti_small.sequences[0]
        batch = build_system(config).process_sequence(sequence)
        streamed = list(build_system(config).stream(sequence))
        assert len(streamed) == batch.num_frames
        for fa, fb in zip(batch.frames, streamed):
            assert_frames_identical(fa, fb)

    def test_keyframe_stream_matches_process_sequence(self, kitti_small):
        sequence = kitti_small.sequences[0]
        batch = KeyFrameSystem("resnet50", stride=4, seed=0).process_sequence(sequence)
        streamed = list(KeyFrameSystem("resnet50", stride=4, seed=0).stream(sequence))
        for fa, fb in zip(batch.frames, streamed):
            assert_frames_identical(fa, fb)

    def test_chunked_stream_preserves_tracker_state(self, kitti_small):
        """Consuming the feed in chunks equals consuming it in one go."""
        sequence = kitti_small.sequences[0]
        config = SystemConfig("catdet", "resnet50", "resnet10a")
        one_shot = list(build_system(config).stream(sequence))
        chunked_system = build_system(config)
        chunked = []
        for start in range(0, sequence.num_frames, 7):
            chunked.extend(
                chunked_system.stream(sequence_frames(sequence, start, start + 7))
            )
        for fa, fb in zip(one_shot, chunked):
            assert_frames_identical(fa, fb)

    def test_stream_accepts_pairs_and_refs(self, kitti_small):
        sequence = kitti_small.sequences[0]
        system = build_system(SystemConfig("single", "resnet10b"))
        via_refs = list(system.stream([FrameRef(sequence, 0), FrameRef(sequence, 1)]))
        system.reset()
        via_pairs = list(system.stream([(sequence, 0), (sequence, 1)]))
        for fa, fb in zip(via_refs, via_pairs):
            assert_frames_identical(fa, fb)

    def test_same_name_different_sequence_restarts_tracking(self, kitti_small):
        """Sequence identity, not its name, decides when tracking restarts."""
        import dataclasses

        seq_a = kitti_small.sequences[0]
        seq_b = dataclasses.replace(kitti_small.sequences[1], name=seq_a.name)
        config = SystemConfig("catdet", "resnet50", "resnet10a")
        system = build_system(config)
        list(system.stream(sequence_frames(seq_a, 0, 10)))
        restarted = list(system.stream(sequence_frames(seq_b, 0, 10)))
        fresh = list(build_system(config).stream(sequence_frames(seq_b, 0, 10)))
        assert restarted[0].ops.refinement_from_tracker == pytest.approx(0.0)
        for fa, fb in zip(restarted, fresh):
            assert_frames_identical(fa, fb)

    def test_switching_sequences_restarts_tracking(self, kitti_small):
        """Feeding a new sequence starts it fresh (no cross-sequence leaks)."""
        seq_a, seq_b = kitti_small.sequences[:2]
        config = SystemConfig("catdet", "resnet50", "resnet10a")
        system = build_system(config)
        interleaved = list(system.stream(sequence_frames(seq_a, 0, 10)))
        interleaved += list(system.stream(sequence_frames(seq_b, 0, 10)))
        fresh = list(build_system(config).stream(sequence_frames(seq_b, 0, 10)))
        # The first frame of seq_b must carry no tracker regions from seq_a.
        assert interleaved[10].ops.refinement_from_tracker == pytest.approx(0.0)
        for fa, fb in zip(interleaved[10:], fresh):
            assert_frames_identical(fa, fb)


class TestReset:
    @pytest.mark.parametrize("config", ALL_KINDS, ids=lambda c: c.kind)
    def test_back_to_back_runs_bit_identical(self, config, kitti_small):
        system = build_system(config)
        first = run_on_dataset(system, kitti_small)
        second = run_on_dataset(system, kitti_small)
        assert_runs_identical(first, second)

    def test_reset_clears_detector_caches(self, kitti_small):
        system = build_system(SystemConfig("catdet", "resnet50", "resnet10a"))
        system.process_sequence(kitti_small.sequences[0])
        assert system.proposal_detector._clutter  # caches were populated
        system.reset()
        for detector in (system.proposal_detector, system.refinement_detector):
            assert not detector._persistent
            assert not detector._temporal
            assert not detector._clutter
            assert not detector._track_index

    def test_reset_clears_stream_state(self, kitti_small):
        sequence = kitti_small.sequences[0]
        config = SystemConfig("catdet", "resnet50", "resnet10a")
        system = build_system(config)
        list(system.stream(sequence_frames(sequence, 0, 10)))
        system.reset()
        restarted = list(system.stream(sequence_frames(sequence, 0, 10)))
        fresh = list(build_system(config).stream(sequence_frames(sequence, 0, 10)))
        for fa, fb in zip(restarted, fresh):
            assert_frames_identical(fa, fb)


class TestDetailedOpsFlag:
    def test_fast_path_same_results_except_breakdown(self, kitti_sequence):
        detailed = CaTDetSystem("resnet10a", "resnet50", seed=0, detailed_ops=True)
        fast = CaTDetSystem("resnet10a", "resnet50", seed=0, detailed_ops=False)
        r_detailed = detailed.process_sequence(kitti_sequence)
        r_fast = fast.process_sequence(kitti_sequence)
        for fa, fb in zip(r_detailed.frames, r_fast.frames):
            np.testing.assert_array_equal(fa.detections.boxes, fb.detections.boxes)
            assert fa.ops.proposal == fb.ops.proposal
            assert fa.ops.refinement == fb.ops.refinement
            assert fb.ops.refinement_from_tracker == 0.0
            assert fb.ops.refinement_from_proposal == 0.0
        assert r_detailed.mean_ops().refinement_from_tracker > 0

    def test_config_carries_flag(self):
        config = SystemConfig("catdet", "resnet50", "resnet10a", detailed_ops=False)
        system = build_system(config)
        assert isinstance(system, CaTDetSystem)
        assert system.detailed_ops is False


class TestConfigValidation:
    def test_errors_name_the_offending_field(self):
        cases = [
            ("kind", dict(kind="magic", refinement_model="resnet50")),
            ("refinement_model", dict(kind="single", refinement_model="")),
            (
                "proposal_model",
                dict(kind="cascade", refinement_model="resnet50"),
            ),
            (
                "c_thresh",
                dict(
                    kind="cascade",
                    refinement_model="resnet50",
                    proposal_model="resnet10a",
                    c_thresh=1.5,
                ),
            ),
            (
                "margin",
                dict(
                    kind="cascade",
                    refinement_model="resnet50",
                    proposal_model="resnet10a",
                    margin=-1.0,
                ),
            ),
            ("num_classes", dict(kind="single", refinement_model="resnet50", num_classes=0)),
            (
                "input_scale",
                dict(kind="single", refinement_model="resnet50", input_scale=0.0),
            ),
        ]
        for fieldname, kwargs in cases:
            with pytest.raises(ValueError, match=fieldname):
                SystemConfig(**kwargs)
