"""Unit tests for the detector simulation."""

import numpy as np
import pytest

from repro.boxes.iou import iou_matrix
from repro.boxes.mask import RegionMask
from repro.simdet.detector import SimulatedDetector
from repro.simdet.profile import DetectorProfile, sigmoid
from repro.simdet.zoo import MODEL_ZOO, get_model


class TestSigmoid:
    def test_values(self):
        assert sigmoid(np.array([0.0]))[0] == pytest.approx(0.5)
        assert sigmoid(np.array([100.0]))[0] == pytest.approx(1.0)
        assert sigmoid(np.array([-100.0]))[0] == pytest.approx(0.0)

    def test_no_overflow(self):
        out = sigmoid(np.array([-1000.0, 1000.0]))
        assert np.all(np.isfinite(out))


class TestProfile:
    def test_base_logit_monotone_in_width(self):
        p = DetectorProfile(name="m", size_midpoint=4.0)
        widths = np.array([10.0, 30.0, 100.0])
        logits = p.base_logit(widths, np.zeros(3), np.zeros(3))
        assert logits.tolist() == sorted(logits.tolist())

    def test_occlusion_penalty_convex(self):
        p = DetectorProfile(name="m", size_midpoint=4.0, occlusion_penalty=8.0)
        w = np.full(3, 50.0)
        logits = p.base_logit(w, np.array([0.0, 0.4, 0.8]), np.zeros(3))
        drop_light = logits[0] - logits[1]
        drop_heavy = logits[1] - logits[2]
        assert drop_heavy > drop_light  # convex: heavy occlusion hurts more

    def test_detection_probability_capped(self):
        p = DetectorProfile(name="m", size_midpoint=2.0, max_recall=0.9)
        assert p.detection_probability(np.array([50.0]))[0] == pytest.approx(0.9)

    def test_with_overrides(self):
        p = DetectorProfile(name="m", size_midpoint=4.0)
        q = p.with_overrides(name="m2", fp_rate=7.0)
        assert q.fp_rate == 7.0 and p.fp_rate != 7.0

    @pytest.mark.parametrize(
        "kw",
        [
            dict(max_recall=0.0),
            dict(temporal_rho=1.0),
            dict(loc_noise=-0.1),
            dict(clutter_persistence=2.0),
            dict(fp_confirm_rate=-0.5),
            dict(refine_loc_factor=0.0),
            dict(occlusion_exponent=0.0),
        ],
    )
    def test_validation(self, kw):
        with pytest.raises(ValueError):
            DetectorProfile(name="m", size_midpoint=4.0, **kw)


class TestDeterminism:
    def test_same_seed_same_detections(self, kitti_sequence):
        p = get_model("resnet50").profile
        d1 = SimulatedDetector(p, seed=5)
        d2 = SimulatedDetector(p, seed=5)
        for frame in (0, 10, 25):
            a = d1.detect_full_frame(kitti_sequence, frame)
            b = d2.detect_full_frame(kitti_sequence, frame)
            np.testing.assert_array_equal(a.boxes, b.boxes)
            np.testing.assert_array_equal(a.scores, b.scores)

    def test_call_order_independence(self, kitti_sequence):
        """Frame results must not depend on which frames were queried before."""
        p = get_model("resnet50").profile
        d1 = SimulatedDetector(p, seed=5)
        d2 = SimulatedDetector(p, seed=5)
        d2.detect_full_frame(kitti_sequence, 40)  # query out of order first
        a = d1.detect_full_frame(kitti_sequence, 10)
        b = d2.detect_full_frame(kitti_sequence, 10)
        np.testing.assert_array_equal(a.boxes, b.boxes)

    def test_different_seeds_differ(self, kitti_sequence):
        p = get_model("resnet50").profile
        a = SimulatedDetector(p, seed=1).detect_full_frame(kitti_sequence, 5)
        b = SimulatedDetector(p, seed=2).detect_full_frame(kitti_sequence, 5)
        assert len(a) != len(b) or not np.allclose(a.boxes, b.boxes)

    def test_batched_calls_match_serial_and_count_one_invocation(
        self, kitti_sequence
    ):
        p = get_model("resnet50").profile
        serial = SimulatedDetector(p, seed=5)
        batched = SimulatedDetector(p, seed=5)
        expected = [serial.detect_full_frame(kitti_sequence, f) for f in (0, 3, 7)]
        got = batched.detect_full_frame_batch(
            [(kitti_sequence, f) for f in (0, 3, 7)]
        )
        for a, b in zip(expected, got):
            np.testing.assert_array_equal(a.boxes, b.boxes)
            np.testing.assert_array_equal(a.scores, b.scores)
        assert serial.invocations == 3
        assert batched.invocations == 1
        assert batched.detect_full_frame_batch([]) == []
        assert batched.invocations == 1  # empty batches are free

    def test_name_collision_purges_stale_caches(self, kitti_sequence):
        """A different sequence object reusing a name must not inherit the
        first owner's latents."""
        import dataclasses

        p = get_model("resnet50").profile
        shifted = dataclasses.replace(
            kitti_sequence,
            tracks=kitti_sequence.tracks[: len(kitti_sequence.tracks) // 2],
        )
        detector = SimulatedDetector(p, seed=5)
        detector.detect_full_frame(kitti_sequence, 0)  # warm original caches
        collided = detector.detect_full_frame(shifted, 0)
        fresh = SimulatedDetector(p, seed=5).detect_full_frame(shifted, 0)
        np.testing.assert_array_equal(collided.boxes, fresh.boxes)
        np.testing.assert_array_equal(collided.scores, fresh.scores)

    def test_cached_sequences_are_bounded(self, kitti_small):
        """Long-lived detectors under stream churn keep bounded caches."""
        import dataclasses

        p = get_model("resnet50").profile
        detector = SimulatedDetector(p, seed=5)
        detector.max_cached_sequences = 3
        variants = [
            dataclasses.replace(kitti_small.sequences[0], name=f"cam-{i:03d}")
            for i in range(10)
        ]
        for sequence in variants:
            detector.detect_full_frame(sequence, 0)
        assert len(detector._owners) <= 3
        assert len(detector._clutter) <= 3
        # Eviction is a recompute cost, never a result change.
        evicted = variants[0]
        again = detector.detect_full_frame(evicted, 0)
        fresh = SimulatedDetector(p, seed=5).detect_full_frame(evicted, 0)
        np.testing.assert_array_equal(again.boxes, fresh.boxes)


class TestDetectionBehavior:
    def test_detections_inside_image(self, kitti_sequence):
        d = SimulatedDetector(get_model("resnet10a").profile, seed=0)
        for frame in range(0, 30, 5):
            out = d.detect_full_frame(kitti_sequence, frame)
            assert np.all(out.boxes[:, 0] >= 0)
            assert np.all(out.boxes[:, 2] <= kitti_sequence.width)
            assert np.all(out.scores >= 0) and np.all(out.scores <= 1)

    def test_strong_model_recalls_more(self, kitti_sequence):
        strong = SimulatedDetector(get_model("resnet50").profile, seed=0)
        weak = SimulatedDetector(get_model("resnet10c").profile, seed=0)

        def recall(detector):
            hits = total = 0
            for frame in range(30):
                ann = kitti_sequence.annotations(frame)
                out = detector.detect_full_frame(kitti_sequence, frame)
                big = (ann.boxes[:, 3] - ann.boxes[:, 1]) >= 25
                total += int(big.sum())
                if len(out) and big.any():
                    ious = iou_matrix(ann.boxes[big], out.boxes)
                    hits += int((ious.max(axis=1) >= 0.5).sum())
            return hits / max(total, 1)

        assert recall(strong) > recall(weak) + 0.05

    def test_weak_model_more_false_positives(self, kitti_sequence):
        strong = SimulatedDetector(get_model("resnet50").profile, seed=0)
        weak = SimulatedDetector(get_model("resnet10c").profile, seed=0)
        n_strong = sum(
            len(strong.detect_full_frame(kitti_sequence, f)) for f in range(10)
        )
        n_weak = sum(len(weak.detect_full_frame(kitti_sequence, f)) for f in range(10))
        assert n_weak > n_strong

    def test_input_scale_reduces_recall(self, kitti_sequence):
        p = get_model("resnet10b").profile
        native = SimulatedDetector(p, seed=0)
        scaled = SimulatedDetector(p, seed=0, input_scale=0.4)
        n_native = sum(
            len(native.detect_full_frame(kitti_sequence, f).above_score(0.5))
            for f in range(20)
        )
        n_scaled = sum(
            len(scaled.detect_full_frame(kitti_sequence, f).above_score(0.5))
            for f in range(20)
        )
        assert n_scaled < n_native

    def test_invalid_input_scale(self):
        with pytest.raises(ValueError, match="input_scale"):
            SimulatedDetector(get_model("resnet50").profile, input_scale=0.0)


class TestRegionalDetection:
    def test_empty_mask_detects_nothing_real(self, kitti_sequence):
        d = SimulatedDetector(get_model("resnet50").profile, seed=0)
        mask = RegionMask(np.zeros((0, 4)), kitti_sequence.width, kitti_sequence.height)
        out = d.detect_regions(kitti_sequence, 5, mask)
        # No regions -> no objects can be confirmed (rate-scaled FPs only).
        ann = kitti_sequence.annotations(5)
        if len(out) and len(ann):
            ious = iou_matrix(out.boxes, ann.boxes)
            assert np.all(ious.max(axis=1) < 0.5)

    def test_full_mask_approximates_full_frame_recall(self, kitti_sequence):
        d = SimulatedDetector(get_model("resnet50").profile, seed=0)
        w, h = kitti_sequence.width, kitti_sequence.height
        mask = RegionMask(np.array([[0.0, 0.0, w, h]]), w, h, margin=0)
        hits = total = 0
        for frame in range(20):
            ann = kitti_sequence.annotations(frame)
            big = (ann.boxes[:, 3] - ann.boxes[:, 1]) >= 25
            out = d.detect_regions(kitti_sequence, frame, mask)
            total += int(big.sum())
            if len(out) and big.any():
                ious = iou_matrix(ann.boxes[big], out.boxes)
                hits += int((ious.max(axis=1) >= 0.5).sum())
        assert hits / max(total, 1) > 0.7

    def test_objects_outside_mask_undetected(self, kitti_sequence):
        d = SimulatedDetector(get_model("resnet50").profile, seed=0)
        ann = kitti_sequence.annotations(5)
        assert len(ann) > 0
        # Mask covering only the far corner, away from all objects.
        mask = RegionMask(
            np.array([[0.0, 0.0, 5.0, 5.0]]),
            kitti_sequence.width,
            kitti_sequence.height,
            margin=0,
        )
        out = d.detect_regions(kitti_sequence, 5, mask)
        if len(out):
            ious = iou_matrix(out.boxes, ann.boxes)
            assert np.all(ious.max(axis=1) < 0.5)


class TestZoo:
    def test_all_entries_complete(self):
        for name, entry in MODEL_ZOO.items():
            assert entry.profile.name == name

    def test_get_model_error_lists_known(self):
        with pytest.raises(KeyError, match="resnet50"):
            get_model("nope")

    def test_quality_ordering(self):
        """Weaker nets localize worse and produce more false positives."""
        order = ("resnet50", "resnet18", "resnet10a", "resnet10b", "resnet10c")
        locs = [get_model(n).profile.loc_noise for n in order]
        fps = [get_model(n).profile.fp_rate for n in order]
        assert locs == sorted(locs)
        assert fps == sorted(fps)

    def test_ops_wrappers(self):
        entry = get_model("resnet50")
        assert entry.rcnn_ops(1242, 375).full_frame(300).total > 0
        with pytest.raises(ValueError, match="not a RetinaNet"):
            entry.retinanet_ops(1242, 375)
        retina = get_model("retinanet50")
        assert retina.retinanet_ops(1242, 375).full_frame().total > 0
        with pytest.raises(ValueError, match="not a Faster R-CNN"):
            retina.rcnn_ops(1242, 375)
