"""Unit tests for KITTI / CityPersons dataset specs and label-format IO."""

import io

import numpy as np
import pytest

from repro.datasets.citypersons import (
    CITYPERSONS_LABELED_FRAME,
    citypersons_like_dataset,
)
from repro.datasets.kitti import (
    KITTI_CLASSES,
    kitti_like_dataset,
    parse_kitti_tracking_labels,
    write_kitti_tracking_labels,
)


class TestKittiDataset:
    def test_spec(self, kitti_small):
        assert kitti_small.sequences[0].width == 1242
        assert kitti_small.sequences[0].height == 375
        assert kitti_small.sequences[0].fps == 10.0
        assert [c.name for c in kitti_small.classes] == ["Car", "Pedestrian"]

    def test_class_iou_thresholds(self):
        assert KITTI_CLASSES[0].min_iou == 0.7   # Car
        assert KITTI_CLASSES[1].min_iou == 0.5   # Pedestrian

    def test_deterministic(self):
        a = kitti_like_dataset(num_sequences=1, frames_per_sequence=20, seed=3)
        b = kitti_like_dataset(num_sequences=1, frames_per_sequence=20, seed=3)
        assert a.total_objects == b.total_objects


class TestCityPersonsDataset:
    def test_spec(self, citypersons_small):
        seq = citypersons_small.sequences[0]
        assert seq.width == 2048 and seq.height == 1024
        assert seq.num_frames == 30
        assert citypersons_small.class_names == ["Person"]

    def test_sparse_labels(self, citypersons_small):
        frames = citypersons_small.evaluation_frames(citypersons_small.sequences[0])
        assert frames == [CITYPERSONS_LABELED_FRAME]


class TestKittiLabelIO:
    def test_roundtrip(self, kitti_sequence):
        buf = io.StringIO()
        write_kitti_tracking_labels(kitti_sequence, buf)
        buf.seek(0)
        parsed = parse_kitti_tracking_labels(
            buf, num_frames=kitti_sequence.num_frames
        )
        # Same number of per-frame annotations everywhere.
        for frame in range(kitti_sequence.num_frames):
            orig = kitti_sequence.annotations(frame, clip=False)
            back = parsed.annotations(frame, clip=False)
            assert len(orig) == len(back)
        assert parsed.num_frames == kitti_sequence.num_frames

    def test_roundtrip_box_coordinates(self, kitti_sequence):
        buf = io.StringIO()
        write_kitti_tracking_labels(kitti_sequence, buf)
        buf.seek(0)
        parsed = parse_kitti_tracking_labels(buf, num_frames=kitti_sequence.num_frames)
        orig = kitti_sequence.annotations(0, clip=False)
        back = parsed.annotations(0, clip=False)
        # Same boxes up to the 2-decimal text format, order-insensitive.
        np.testing.assert_allclose(
            np.sort(orig.boxes, axis=0), np.sort(back.boxes, axis=0), atol=0.01
        )

    def test_parse_skips_dontcare(self):
        text = (
            "0 1 Car 0.0 0 -10 100.0 100.0 200.0 150.0 -1 -1 -1 -1000 -1000 -1000 -10\n"
            "0 2 DontCare 0.0 0 -10 0.0 0.0 10.0 10.0 -1 -1 -1 -1000 -1000 -1000 -10\n"
        )
        seq = parse_kitti_tracking_labels(io.StringIO(text), num_frames=1)
        assert len(seq.tracks) == 1
        assert seq.tracks[0].label == 0

    def test_parse_splits_on_gaps(self):
        lines = []
        for frame in (0, 1, 5, 6):  # gap between 1 and 5
            lines.append(
                f"{frame} 7 Pedestrian 0.0 0 -10 50.0 50.0 80.0 120.0 "
                "-1 -1 -1 -1000 -1000 -1000 -10"
            )
        seq = parse_kitti_tracking_labels(io.StringIO("\n".join(lines)), num_frames=7)
        assert len(seq.tracks) == 2  # two contiguous runs
        assert sorted(t.length for t in seq.tracks) == [2, 2]

    def test_parse_occlusion_mapping(self):
        text = "0 1 Car 0.0 2 -10 10.0 10.0 60.0 40.0 -1 -1 -1 -1000 -1000 -1000 -10\n"
        seq = parse_kitti_tracking_labels(io.StringIO(text), num_frames=1)
        assert seq.tracks[0].occlusion[0] == pytest.approx(0.7)

    def test_parse_malformed_line_raises(self):
        with pytest.raises(ValueError, match="fields"):
            parse_kitti_tracking_labels(io.StringIO("0 1 Car 0.0\n"), num_frames=1)

    def test_write_sorted_by_frame(self, kitti_sequence):
        buf = io.StringIO()
        write_kitti_tracking_labels(kitti_sequence, buf)
        frames = [int(line.split()[0]) for line in buf.getvalue().splitlines()]
        assert frames == sorted(frames)
