"""Unit tests for the GPU timing model (Appendix I / Table 7)."""

import numpy as np
import pytest

from repro.gpu.timing import (
    GpuTimingModel,
    estimate_catdet_timing,
    estimate_single_model_timing,
)

GIGA = 1e9


class TestGpuTimingModel:
    def test_kernel_time_linear(self):
        m = GpuTimingModel()
        t1 = m.kernel_time(10 * GIGA)
        t2 = m.kernel_time(20 * GIGA)
        assert t2 - t1 == pytest.approx(m.alpha * 10 * GIGA)

    def test_launch_overhead_positive(self):
        assert GpuTimingModel().launch_overhead_seconds > 0

    def test_negative_macs_raises(self):
        with pytest.raises(ValueError, match="macs"):
            GpuTimingModel().kernel_time(-1.0)

    def test_validation(self):
        with pytest.raises(ValueError, match="alpha"):
            GpuTimingModel(alpha=0.0)
        with pytest.raises(ValueError, match="CPU"):
            GpuTimingModel(cpu_frame_overhead=-1.0)

    def test_merge_cost_model_consistent(self):
        m = GpuTimingModel()
        mc = m.merge_cost_model()
        # A region of A pixels should cost the same through both paths.
        region_area = 300.0 * 200.0
        assert mc.region_time(region_area) == pytest.approx(
            m.kernel_time(region_area * m.trunk_macs_per_pixel)
        )


class TestSingleModelTiming:
    def test_matches_paper_calibration(self):
        """Res50 Faster R-CNN: 0.159 s GPU, 0.193 s total (Table 7)."""
        timing = estimate_single_model_timing(254.3 * GIGA)
        assert timing.gpu_seconds == pytest.approx(0.159, rel=0.1)
        assert timing.total_seconds == pytest.approx(0.193, rel=0.1)
        assert timing.num_launches == 1


class TestCaTDetTiming:
    def _regions(self, n, size=80.0, spacing=300.0):
        out = []
        for i in range(n):
            x = (i % 4) * spacing
            y = (i // 4) * spacing
            out.append([x, y, x + size, y + size])
        return np.array(out)

    def test_catdet_faster_than_single(self):
        single = estimate_single_model_timing(254.3 * GIGA)
        catdet = estimate_catdet_timing(
            proposal_macs=20.7 * GIGA,
            region_boxes=self._regions(15),
            refinement_head_macs=12 * GIGA,
        )
        assert catdet.gpu_seconds < single.gpu_seconds / 2
        assert catdet.total_seconds < single.total_seconds

    def test_matches_paper_scale(self):
        """Res10a+Res50 CaTDet: 0.042 s GPU, 0.094 s total (Table 7).

        Regions follow KITTI geometry: objects cluster along the road band,
        so the greedy merge collapses them into a handful of launches.
        """
        rng = np.random.default_rng(0)
        x = rng.uniform(0, 1100, size=16)
        y = rng.uniform(150, 230, size=16)
        w = rng.uniform(60, 140, size=16)
        regions = np.stack([x, y, x + w, y + w * 0.7], axis=1)
        catdet = estimate_catdet_timing(
            proposal_macs=20.7 * GIGA,
            region_boxes=regions,
            refinement_head_macs=12 * GIGA,
        )
        assert catdet.gpu_seconds == pytest.approx(0.042, rel=0.5)
        assert catdet.total_seconds == pytest.approx(0.094, rel=0.5)

    def test_merging_reduces_time_for_clustered_regions(self):
        # Many overlapping small regions: merging trims launch overhead.
        rng = np.random.default_rng(0)
        base = rng.random((12, 2)) * 50
        boxes = np.concatenate([base, base + 60], axis=1)
        merged = estimate_catdet_timing(1 * GIGA, boxes, 0.0, merge=True)
        unmerged = estimate_catdet_timing(1 * GIGA, boxes, 0.0, merge=False)
        assert merged.gpu_seconds <= unmerged.gpu_seconds + 1e-12
        assert merged.num_launches <= unmerged.num_launches

    def test_empty_regions(self):
        timing = estimate_catdet_timing(5 * GIGA, np.zeros((0, 4)), 0.0)
        assert timing.num_launches == 1  # the proposal pass only
        assert timing.gpu_seconds > 0
