"""Tests for the key-frame baseline system."""

import numpy as np
import pytest

from repro.core.keyframe import KeyFrameSystem
from repro.core.pipeline import run_on_dataset
from repro.core.systems import SingleModelSystem
from repro.metrics.evaluate import evaluate_dataset
from repro.metrics.kitti_eval import HARD


class TestKeyFrameSystem:
    def test_ops_only_on_key_frames(self, kitti_sequence):
        system = KeyFrameSystem("resnet50", stride=5, seed=0)
        result = system.process_sequence(kitti_sequence)
        for frame_result in result.frames:
            if frame_result.frame % 5 == 0:
                assert frame_result.ops.total > 0
            else:
                assert frame_result.ops.total == 0.0

    def test_mean_ops_scale_with_stride(self, kitti_sequence):
        single_ops = (
            SingleModelSystem("resnet50", seed=0)
            .process_sequence(kitti_sequence)
            .mean_ops()
            .total
        )
        for stride in (2, 5):
            kf_ops = (
                KeyFrameSystem("resnet50", stride=stride, seed=0)
                .process_sequence(kitti_sequence)
                .mean_ops()
                .total
            )
            assert kf_ops == pytest.approx(single_ops / stride, rel=0.05)

    def test_stride_one_matches_single_model_ops(self, kitti_sequence):
        kf = KeyFrameSystem("resnet50", stride=1, seed=0)
        single = SingleModelSystem("resnet50", seed=0)
        assert kf.process_sequence(kitti_sequence).mean_ops().total == pytest.approx(
            single.process_sequence(kitti_sequence).mean_ops().total
        )

    def test_skipped_frames_carry_tracked_output(self, kitti_sequence):
        system = KeyFrameSystem("resnet50", stride=4, seed=0)
        result = system.process_sequence(kitti_sequence)
        # After the first key frame, skipped frames should usually carry
        # coasted detections for the standing population.
        skipped = [f for f in result.frames[1:20] if f.frame % 4 != 0]
        assert any(len(f.detections) > 0 for f in skipped)

    def test_accuracy_degrades_with_stride(self, kitti_small):
        maps = []
        for stride in (1, 8):
            run = run_on_dataset(
                KeyFrameSystem("resnet50", stride=stride, seed=0), kitti_small
            )
            res = evaluate_dataset(kitti_small, run.detections_by_sequence, HARD)
            maps.append(res.mean_ap())
        assert maps[1] < maps[0]

    def test_delay_worse_than_dense_detection(self, kitti_small):
        """The key weakness vs CaTDet: new objects wait for a key frame."""
        dense = run_on_dataset(SingleModelSystem("resnet50", seed=0), kitti_small)
        sparse = run_on_dataset(
            KeyFrameSystem("resnet50", stride=8, seed=0), kitti_small
        )
        d_dense = evaluate_dataset(
            kitti_small, dense.detections_by_sequence, HARD
        ).mean_delay(0.8)
        d_sparse = evaluate_dataset(
            kitti_small, sparse.detections_by_sequence, HARD
        ).mean_delay(0.8)
        assert d_sparse > d_dense

    def test_invalid_stride(self):
        with pytest.raises(ValueError, match="stride"):
            KeyFrameSystem("resnet50", stride=0)
