"""Fleet serving subsystem tests (``repro fleet``).

The load-bearing guarantees:

* a 1-replica fleet is *byte-identical* to a bare
  :class:`~repro.serve.server.DetectionServer` — same detections per
  frame and the same latency distribution, because for one replica the
  fleet event loop must be provably the same simulation;
* per-stream detections are invariant under replica count, placement and
  autoscaling schedule (detections are keyed by (model, seed, sequence,
  frame), never by where they were computed);
* on the pinned bursty scenario the autoscaled fleet meets the same SLO
  as the static max-size fleet with strictly fewer replica-seconds and
  lower cost per frame — the headline claim of elasticity — and does so
  deterministically under the fixed seed;
* fleet specs round-trip through JSON, validate their shape, and their
  reports are served bit-identically from the session cache;
* the load generator's heterogeneous per-stream rates skew exactly the
  streams they name without perturbing anyone else's arrivals.
"""

import math

import numpy as np
import pytest

from repro.api.session import Session
from repro.api.spec import DatasetSpec
from repro.core.config import SystemConfig
from repro.fleet import (
    SCALE_IN,
    SCALE_OUT,
    AutoscalerPolicy,
    FleetServer,
    FleetSpec,
)
from repro.serve import (
    DetectionServer,
    LoadSpec,
    ServePolicy,
    generate_load,
)

SYSTEM = SystemConfig("single", "resnet10a", detailed_ops=False)

#: The pinned acceptance scenario (also CI's fleet-smoke job): bursty
#: arrivals whose peaks genuinely exceed one edge replica's capacity
#: (~23 fps at batch 4) but whose average load does not — the regime
#: autoscaling exists for.
PIN_LOAD = LoadSpec(
    pattern="bursty", num_streams=4, rate_hz=8.0, frames_per_stream=50, seed=11
)
PIN_POLICY = ServePolicy(
    max_batch_size=4, max_wait_ms=20.0, queue_capacity=256, slo_ms=2000.0
)
PIN_AUTO = AutoscalerPolicy(
    min_replicas=1,
    max_replicas=4,
    interval_s=0.5,
    cooldown_s=1.0,
    slo_p99_ms=2000.0,
    scale_out_wait_share=0.2,
    scale_in_occupancy=0.5,
)
SLO_P99_MS = 2000.0


def _fleet_spec(**overrides):
    base = dict(
        system=SYSTEM,
        load=PIN_LOAD,
        policy=PIN_POLICY,
        replicas=4,
        devices=("edge",),
    )
    base.update(overrides)
    return FleetSpec(**base)


def _run(spec, dataset):
    return FleetServer(spec).run(generate_load(spec.load, dataset))


def _detections_by_stream(report):
    out = {}
    for stream, results in report.frame_results.items():
        out[stream] = [
            (fr.frame, fr.detections.boxes, fr.detections.scores, fr.detections.labels)
            for fr in results
        ]
    return out


def assert_same_detections(a, b):
    assert a.keys() == b.keys()
    for stream in a:
        assert len(a[stream]) == len(b[stream])
        for (fa, ba, sa, la), (fb, bb, sb, lb) in zip(a[stream], b[stream]):
            assert fa == fb
            np.testing.assert_array_equal(ba, bb)
            np.testing.assert_array_equal(sa, sb)
            np.testing.assert_array_equal(la, lb)


@pytest.fixture(scope="module")
def static_report(kitti_small):
    return _run(_fleet_spec(), kitti_small)


@pytest.fixture(scope="module")
def auto_report(kitti_small):
    return _run(_fleet_spec(replicas=1, autoscaler=PIN_AUTO), kitti_small)


class TestByteIdentity:
    def test_one_replica_matches_bare_server(self, kitti_small):
        """The fleet loop degenerates to DetectionServer for one replica:
        identical detections *and* an identical latency distribution."""
        load = LoadSpec(
            pattern="poisson", num_streams=2, rate_hz=10.0,
            frames_per_stream=40, seed=3,
        )
        policy = ServePolicy(max_batch_size=4, max_wait_ms=10.0, slo_ms=2000.0)
        bare = DetectionServer(SYSTEM, policy=policy, device="edge").run(
            generate_load(load, kitti_small)
        )
        fleet = _run(
            _fleet_spec(load=load, policy=policy, replicas=1), kitti_small
        )
        assert_same_detections(
            _detections_by_stream(bare), _detections_by_stream(fleet)
        )
        assert fleet.frames_served == bare.frames_served
        assert fleet.frames_shed == bare.frames_shed
        for key in (
            "p50_ms", "p95_ms", "p99_ms",
            "mean_wait_ms", "mean_compute_ms", "max_ms",
        ):
            assert fleet.slo["fleet"][key] == pytest.approx(
                bare.slo["fleet"][key], abs=1e-9
            )

    @pytest.mark.parametrize("replicas", [2, 3])
    def test_replica_count_invariance(self, kitti_small, replicas, static_report):
        """Where a frame was computed never changes what it computed."""
        report = _run(_fleet_spec(replicas=replicas), kitti_small)
        assert_same_detections(
            _detections_by_stream(static_report), _detections_by_stream(report)
        )

    def test_autoscaling_schedule_invariance(self, static_report, auto_report):
        """Scale events move streams mid-run; detections must not notice."""
        assert auto_report.scale_events  # the schedule actually moved things
        assert_same_detections(
            _detections_by_stream(static_report),
            _detections_by_stream(auto_report),
        )


class TestAutoscaler:
    def test_both_fleets_meet_the_slo(self, static_report, auto_report):
        for report in (static_report, auto_report):
            assert float(report.slo["fleet"]["p99_ms"]) <= SLO_P99_MS
            assert report.frames_shed == 0
            assert report.dead_streams == []
            assert report.frames_served == report.frames_offered == 200

    def test_autoscaled_is_strictly_cheaper_than_static_max(
        self, static_report, auto_report
    ):
        """The acceptance criterion: same SLO, fewer replica-seconds,
        lower cost per frame than the always-max static fleet."""
        assert auto_report.replica_seconds < static_report.replica_seconds
        assert auto_report.cost_per_frame < static_report.cost_per_frame
        assert auto_report.cost < static_report.cost

    def test_scales_out_under_burst_and_back_in_after(self, auto_report):
        actions = [e["action"] for e in auto_report.scale_events]
        assert SCALE_OUT in actions and SCALE_IN in actions
        # Bursts hit every replica the policy allows, then capacity drains.
        assert auto_report.peak_replicas == PIN_AUTO.max_replicas
        retired = [r for r in auto_report.replicas if r["retired_s"] is not None]
        assert len(retired) == actions.count(SCALE_IN)
        for event in auto_report.scale_events:
            assert set(event) >= {
                "t", "action", "replica", "device", "reason", "moved_streams",
            }

    def test_deterministic_under_fixed_seed(self, kitti_small, auto_report):
        again = _run(_fleet_spec(replicas=1, autoscaler=PIN_AUTO), kitti_small)
        assert again.to_dict() == auto_report.to_dict()

    def test_report_round_trips_through_json(self, auto_report):
        from repro.fleet import FleetReport

        clone = FleetReport.from_dict(auto_report.to_dict())
        assert clone.to_dict() == auto_report.to_dict()
        assert clone.format() == auto_report.format()


class TestFleetSpec:
    def test_json_round_trip_preserves_fingerprint(self):
        spec = _fleet_spec(replicas=2, autoscaler=PIN_AUTO)
        clone = FleetSpec.from_json(spec.to_json())
        assert clone == spec
        assert clone.fingerprint == spec.fingerprint

    def test_distinct_fleets_have_distinct_fingerprints(self):
        assert _fleet_spec().fingerprint != _fleet_spec(replicas=2).fingerprint
        assert (
            _fleet_spec().fingerprint
            != _fleet_spec(devices=("edge", "datacenter")).fingerprint
        )
        assert (
            _fleet_spec().fingerprint
            != _fleet_spec(placement="cost_aware").fingerprint
        )

    def test_device_cycle(self):
        spec = _fleet_spec(devices=("edge", "datacenter"))
        assert [spec.device_for(i) for i in range(4)] == [
            "edge", "datacenter", "edge", "datacenter",
        ]

    def test_validation(self):
        with pytest.raises(ValueError):
            _fleet_spec(replicas=0)
        with pytest.raises(KeyError):
            _fleet_spec(devices=("warp-drive",))
        with pytest.raises(KeyError):
            _fleet_spec(placement="nearest-star")
        with pytest.raises(ValueError):
            _fleet_spec(replicas=4, autoscaler=AutoscalerPolicy(max_replicas=2))
        with pytest.raises(ValueError):
            AutoscalerPolicy(min_replicas=0)
        with pytest.raises(ValueError):
            AutoscalerPolicy(scale_out_wait_share=1.5)
        with pytest.raises(ValueError):
            AutoscalerPolicy(interval_s=0.0)


class TestSessionCache:
    @pytest.fixture(scope="class")
    def session(self, tmp_path_factory):
        return Session(cache_dir=tmp_path_factory.mktemp("fleet-cache"))

    @pytest.fixture(scope="class")
    def small_spec(self):
        return FleetSpec(
            system=SYSTEM,
            dataset=DatasetSpec("kitti", num_sequences=2, frames_per_sequence=20),
            load=LoadSpec(
                pattern="poisson", num_streams=2, rate_hz=5.0,
                frames_per_stream=10, seed=1,
            ),
            policy=ServePolicy(max_batch_size=4, max_wait_ms=20.0, slo_ms=2000.0),
            replicas=1,
            devices=("edge",),
        )

    def test_report_served_bit_identically_from_cache(self, session, small_spec):
        misses = session.cache_misses
        first = session.serve_fleet(small_spec)
        assert session.cache_misses == misses + 1
        hits = session.cache_hits
        again = session.serve_fleet(small_spec)
        assert session.cache_hits == hits + 1
        assert again.to_dict() == first.to_dict()

    def test_tune_picks_cheapest_feasible_then_rehits(self, session, small_spec):
        result = session.tune_fleet(
            small_spec,
            slo_p99_ms=SLO_P99_MS,
            replica_counts=(1, 2),
            batch_sizes=(2, 4),
        )
        assert len(result.candidates) == 4
        feasible = [c for c in result.candidates if c.feasible]
        assert result.best is not None and result.best.feasible
        assert result.best.cost_per_frame == min(
            c.cost_per_frame for c in feasible
        )
        assert "cost/kf" in result.format()
        misses = session.cache_misses
        hits = session.cache_hits
        again = session.tune_fleet(
            small_spec,
            slo_p99_ms=SLO_P99_MS,
            replica_counts=(1, 2),
            batch_sizes=(2, 4),
        )
        assert session.cache_misses == misses  # zero new computes
        assert session.cache_hits == hits + len(result.candidates)
        assert again.best.spec.fingerprint == result.best.spec.fingerprint


class TestHeterogeneousRates:
    def test_uniform_arrivals_follow_per_stream_rates(self, kitti_small):
        load = LoadSpec(
            pattern="uniform", num_streams=3, rate_hz=5.0,
            frames_per_stream=4, rates=(2.0, 10.0),
        )
        by_stream = {}
        for request in generate_load(load, kitti_small):
            by_stream.setdefault(request.stream, []).append(request.arrival)
        assert len(by_stream) == 3
        for i, stream in enumerate(sorted(by_stream)):
            # Stream i cycles through the rates tuple: 2, 10, 2 frames/s.
            expected = 1.0 / load.stream_rate(i)
            np.testing.assert_allclose(np.diff(by_stream[stream]), expected)
        assert load.stream_rate(2) == 2.0  # i % len(rates) wraps

    def test_one_streams_rate_never_perturbs_another(self, kitti_small):
        homogeneous = LoadSpec(
            pattern="poisson", num_streams=2, rate_hz=6.0, frames_per_stream=10
        )
        skewed = LoadSpec(
            pattern="poisson", num_streams=2, rate_hz=6.0,
            frames_per_stream=10, rates=(6.0, 30.0),
        )
        base = {}
        for request in generate_load(homogeneous, kitti_small):
            base.setdefault(request.stream, []).append(request.arrival)
        skew = {}
        for request in generate_load(skewed, kitti_small):
            skew.setdefault(request.stream, []).append(request.arrival)
        streams = sorted(base)
        # Stream 0 keeps rate 6.0: its RNG child is untouched by the
        # override on stream 1, so its arrivals are bit-identical.
        assert skew[streams[0]] == base[streams[0]]
        assert skew[streams[1]] != base[streams[1]]

    def test_rates_omitted_from_dict_when_unset(self):
        assert "rates" not in LoadSpec().to_dict()
        spec = LoadSpec(rates=(3.0, 9.0))
        assert spec.to_dict()["rates"] == [3.0, 9.0]
        assert LoadSpec.from_dict(spec.to_dict()) == spec

    def test_rates_validation(self):
        with pytest.raises(ValueError):
            LoadSpec(rates=())
        with pytest.raises(ValueError):
            LoadSpec(rates=(5.0, -1.0))
