"""Observability subsystem tests: registry, histograms, sinks, health, status.

The load-bearing guarantees:

* registry get-or-create is idempotent but raises on shape drift (type,
  labels, or bucket layout changing under an existing name);
* histogram quantile *brackets* provably contain ``numpy.percentile``
  for arbitrary workloads and bucket layouts (hypothesis-pinned);
* ``snapshot()`` is JSON-native and lossless under concurrent writers;
* health files are atomic, rate-limited, age out as stale, and vanish
  on clean shutdown;
* ``gather_status`` reads a live queue directory without importing (or
  perturbing) the cluster machinery.
"""

import json
import threading
import time

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.obs import (
    Counter,
    Gauge,
    HealthReporter,
    Histogram,
    JsonlSink,
    MetricsRegistry,
    MultiSink,
    NullSink,
    Sink,
    SummaryTableSink,
    as_sinks,
    default_registry,
    exponential_buckets,
    format_status,
    gather_status,
    health_dir,
    linear_buckets,
    make_sink,
    read_health,
    resolve_registry,
    set_default_registry,
)


class TestBucketLayouts:
    def test_linear(self):
        assert linear_buckets(1.0, 2.0, 3) == (1.0, 3.0, 5.0)

    def test_exponential(self):
        assert exponential_buckets(1.0, 2.0, 4) == (1.0, 2.0, 4.0, 8.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            linear_buckets(0.0, -1.0, 3)
        with pytest.raises(ValueError):
            linear_buckets(0.0, 1.0, 0)
        with pytest.raises(ValueError):
            exponential_buckets(0.0, 2.0, 3)
        with pytest.raises(ValueError):
            exponential_buckets(1.0, 1.0, 3)


class TestCounterAndGauge:
    def test_counter_accumulates(self):
        c = Counter("hits")
        c.inc()
        c.inc(2.5)
        assert c.value() == 3.5
        assert c.total() == 3.5

    def test_counter_rejects_negative(self):
        with pytest.raises(ValueError, match="only go up"):
            Counter("hits").inc(-1)

    def test_counter_labels(self):
        c = Counter("drops", labels=("reason",))
        c.inc(labels=("oldest",))
        c.inc(2, labels=("newest",))
        assert c.value(("oldest",)) == 1
        assert c.total() == 3
        assert c.labels_seen() == [("newest",), ("oldest",)]

    def test_label_arity_checked(self):
        c = Counter("drops", labels=("reason",))
        with pytest.raises(ValueError, match="expects 1 label"):
            c.inc()
        with pytest.raises(ValueError, match="expects 1 label"):
            c.inc(labels=("a", "b"))

    def test_gauge_set_inc_dec(self):
        g = Gauge("depth")
        g.set(10)
        g.inc(5)
        g.dec(3)
        assert g.value() == 12


class TestHistogram:
    def test_rejects_bad_bounds(self):
        with pytest.raises(ValueError, match="at least one bucket"):
            Histogram("h", buckets=())
        with pytest.raises(ValueError, match="strictly increase"):
            Histogram("h", buckets=(1.0, 1.0, 2.0))

    def test_counts_sum_mean(self):
        h = Histogram("h", buckets=(1.0, 2.0, 4.0))
        for v in (0.5, 1.5, 3.0, 10.0):
            h.observe(v)
        assert h.count() == 4
        assert h.sum() == 15.0
        assert h.mean() == pytest.approx(3.75)

    def test_overflow_bucket_is_implicit(self):
        h = Histogram("h", buckets=(1.0,))
        h.observe(5.0)
        (series,) = h.snapshot()["series"]
        assert series["counts"] == [0, 1]

    def test_empty_quantile_is_zero(self):
        h = Histogram("h", buckets=(1.0, 2.0))
        assert h.quantile(99) == 0.0
        assert h.quantile_bracket(99) == (0.0, 0.0)

    def test_quantile_clamped_to_observed_extremes(self):
        h = Histogram("h", buckets=(100.0,))
        for v in (3.0, 4.0, 5.0):
            h.observe(v)
        assert h.quantile(0) == 3.0
        assert h.quantile(100) == 5.0
        lo, hi = h.quantile_bracket(50)
        assert 3.0 <= lo <= hi <= 5.0

    def test_merge_requires_same_bounds(self):
        a = Histogram("h", buckets=(1.0, 2.0))
        b = Histogram("h", buckets=(1.0, 3.0))
        with pytest.raises(ValueError, match="different bounds"):
            a.merge(b)

    def test_merge_folds_counts(self):
        a = Histogram("h", buckets=(1.0, 2.0))
        b = Histogram("h", buckets=(1.0, 2.0))
        a.observe(0.5)
        b.observe(1.5)
        b.observe(5.0)
        a.merge(b)
        assert a.count() == 3
        assert a.sum() == 7.0

    @given(
        samples=st.lists(
            st.floats(min_value=0.0, max_value=1e4, allow_nan=False,
                      allow_infinity=False),
            min_size=1,
            max_size=200,
        ),
        edges=st.lists(
            st.floats(min_value=1e-3, max_value=1e4, allow_nan=False,
                      allow_infinity=False),
            min_size=1,
            max_size=12,
            unique=True,
        ),
        q=st.sampled_from([0, 1, 25, 50, 75, 90, 95, 99, 100]),
    )
    @settings(max_examples=200, deadline=None)
    def test_bracket_contains_numpy_percentile(self, samples, edges, q):
        """The pinned property: exact percentile lies inside the bracket."""
        h = Histogram("h", buckets=sorted(edges))
        for v in samples:
            h.observe(v)
        exact = float(np.percentile(samples, q))
        lo, hi = h.quantile_bracket(q)
        assert lo - 1e-9 <= exact <= hi + 1e-9
        # The point estimate stays inside its own hard bounds too.
        assert lo - 1e-9 <= h.quantile(q) <= hi + 1e-9


class TestRegistry:
    def test_get_or_create_is_idempotent(self):
        reg = MetricsRegistry()
        a = reg.counter("hits", "first")
        b = reg.counter("hits", "second help ignored")
        assert a is b
        assert reg.get("hits") is a
        assert reg.names() == ["hits"]

    def test_type_mismatch_raises(self):
        reg = MetricsRegistry()
        reg.counter("x")
        with pytest.raises(ValueError, match="already registered as counter"):
            reg.gauge("x")

    def test_label_mismatch_raises(self):
        reg = MetricsRegistry()
        reg.counter("x", labels=("a",))
        with pytest.raises(ValueError, match="labels"):
            reg.counter("x", labels=("b",))

    def test_bucket_mismatch_raises(self):
        reg = MetricsRegistry()
        reg.histogram("h", buckets=(1.0, 2.0))
        with pytest.raises(ValueError, match="bucket bounds"):
            reg.histogram("h", buckets=(1.0, 3.0))

    def test_snapshot_round_trips_through_json(self):
        reg = MetricsRegistry()
        reg.counter("hits").inc(3)
        reg.gauge("depth", labels=("state",)).set(7, labels=("pending",))
        reg.histogram("lat", buckets=(1.0, 2.0)).observe(1.5)
        snap = reg.snapshot()
        assert json.loads(json.dumps(snap)) == snap

    def test_default_registry_swap_and_resolve(self):
        fresh = MetricsRegistry()
        previous = set_default_registry(fresh)
        try:
            assert default_registry() is fresh
            assert resolve_registry(None) is fresh
            mine = MetricsRegistry()
            assert resolve_registry(mine) is mine
        finally:
            set_default_registry(previous)

    def test_concurrent_observe_snapshot_is_lossless(self):
        """4 writer threads; the final snapshot is exact and JSON-stable."""
        reg = MetricsRegistry()
        counter = reg.counter("ops", labels=("thread",))
        hist = reg.histogram("vals", buckets=(10.0, 100.0, 1000.0))
        per_thread = 500

        def writer(tid: int) -> None:
            labels = (f"t{tid}",)
            for i in range(per_thread):
                counter.inc(labels=labels)
                hist.observe(float(i))

        threads = [threading.Thread(target=writer, args=(t,)) for t in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        snap = reg.snapshot()
        assert json.loads(json.dumps(snap)) == snap
        assert counter.total() == 4 * per_thread
        (series,) = snap["vals"]["series"]
        assert series["count"] == 4 * per_thread
        assert sum(series["counts"]) == 4 * per_thread
        assert series["sum"] == pytest.approx(4 * sum(range(per_thread)))


class TestSinks:
    def test_jsonl_round_trip(self, tmp_path):
        path = tmp_path / "out" / "records.jsonl"
        with JsonlSink(path) as sink:
            sink.emit({"record": "a", "n": 1})
            sink.emit({"record": "b", "n": 2})
        lines = path.read_text().splitlines()
        assert [json.loads(l)["record"] for l in lines] == ["a", "b"]
        assert sink.records_written == 2

    def test_summary_table_counts_by_kind(self):
        out = []
        sink = SummaryTableSink(write=out.append)
        for kind in ("x", "x", "y"):
            sink.emit({"record": kind})
        sink.close()
        assert "x" in out[0] and "y" in out[0]
        assert sink.counts == {"x": 2, "y": 1}

    def test_multi_sink_fans_out(self, tmp_path):
        jsonl = JsonlSink(tmp_path / "a.jsonl")
        table = SummaryTableSink(write=lambda _: None)
        multi = MultiSink([jsonl, table])
        multi.emit({"record": "z"})
        multi.close()
        assert jsonl.records_written == 1 and table.total == 1

    def test_make_sink_specs(self, tmp_path):
        assert isinstance(make_sink(f"jsonl:{tmp_path}/s.jsonl"), JsonlSink)
        assert isinstance(make_sink("table"), SummaryTableSink)
        assert isinstance(make_sink("null"), NullSink)
        with pytest.raises(ValueError, match="unknown sink"):
            make_sink("bogus")
        with pytest.raises(ValueError, match="needs a path"):
            make_sink("jsonl:")

    def test_as_sinks_normalizes(self):
        one = NullSink()
        assert as_sinks(None) == []
        assert as_sinks(one) == [one]
        assert as_sinks([one, one]) == [one, one]


class TestHealth:
    def test_beat_writes_and_read_health_sees_it(self, tmp_path):
        reg = MetricsRegistry()
        reg.counter("worker_tasks_total", labels=("outcome",)).inc(
            labels=("done",)
        )
        rep = HealthReporter(
            tmp_path, component="worker", component_id="w0", registry=reg
        )
        rep.in_flight = "task-1"
        rep.extra["note"] = "hi"
        assert rep.beat(force=True)
        (record,) = read_health(tmp_path)
        assert record["component"] == "worker" and record["id"] == "w0"
        assert record["in_flight"] == "task-1"
        assert record["note"] == "hi"
        assert "worker_tasks_total" in record["metrics"]
        assert record["stale"] is False and record["age_seconds"] >= 0

    def test_beat_is_rate_limited(self, tmp_path):
        rep = HealthReporter(
            tmp_path, component="worker", component_id="w0", interval=60.0
        )
        assert rep.beat()
        assert not rep.due()
        assert not rep.beat()  # within the interval
        assert rep.beat(force=True)
        assert rep.due(now=time.time() + 61)

    def test_stale_flag_from_mtime(self, tmp_path):
        rep = HealthReporter(tmp_path, component="server", component_id="s0")
        rep.beat(force=True)
        (record,) = read_health(tmp_path, stale_after=5.0,
                                now=time.time() + 60)
        assert record["stale"] is True

    def test_close_removes_file(self, tmp_path):
        rep = HealthReporter(tmp_path, component="worker", component_id="w0")
        rep.beat(force=True)
        assert rep.path.exists()
        rep.close()
        assert not rep.path.exists()
        assert read_health(tmp_path) == []

    def test_unparseable_files_skipped(self, tmp_path):
        (tmp_path / "junk.json").write_text("{ not json")
        (tmp_path / "list.json").write_text("[1, 2]")
        assert read_health(tmp_path) == []

    def test_component_id_is_sanitized(self, tmp_path):
        rep = HealthReporter(
            tmp_path, component="worker", component_id="host:1234/x"
        )
        assert "/" not in rep.path.name and ":" not in rep.path.name


class TestStatus:
    def _queue_with_work(self, tmp_path):
        from repro.cluster.protocol import sequence_task
        from repro.cluster.queue import FileWorkQueue
        from repro.core.config import SystemConfig

        queue = FileWorkQueue(tmp_path / "q", lease_ttl=10, max_attempts=1)
        config = SystemConfig("catdet", "resnet50", "resnet10a")
        dataset = {"family": "kitti", "num_sequences": 1,
                   "frames_per_sequence": 5}
        for i in range(3):
            queue.submit(sequence_task(config, dataset=dataset, index=i))
        return queue

    def test_counts_and_lease_age(self, tmp_path):
        queue = self._queue_with_work(tmp_path)
        lease = queue.claim("w1")
        lease.complete({"ok": True})
        queue.claim("w2")  # still leased
        status = gather_status(queue.root)
        assert status["counts"] == {
            "pending": 1, "leased": 1, "done": 1, "dead": 0,
        }
        assert status["oldest_lease_age_seconds"] >= 0

    def test_dead_letters_surface_reason(self, tmp_path):
        queue = self._queue_with_work(tmp_path)
        queue.claim("w1")
        # max_attempts=1: the expired lease dead-letters immediately.
        queue.recover_expired(now=time.time() + 11)
        status = gather_status(queue.root)
        assert status["counts"]["dead"] == 1
        (dead,) = status["dead_letters"]
        assert "lease expired" in dead["reason"]

    def test_components_from_health_dir(self, tmp_path):
        queue = self._queue_with_work(tmp_path)
        rep = HealthReporter(
            health_dir(queue.root), component="worker", component_id="w7"
        )
        rep.beat(force=True)
        status = gather_status(queue.root)
        (component,) = status["components"]
        assert component["id"] == "w7"
        text = format_status(status)
        assert "w7" in text and "pending" in text

    def test_format_without_components(self, tmp_path):
        queue = self._queue_with_work(tmp_path)
        text = format_status(gather_status(queue.root))
        assert "is anything running?" in text

    def test_status_json_round_trips(self, tmp_path):
        queue = self._queue_with_work(tmp_path)
        status = gather_status(queue.root)
        assert json.loads(json.dumps(status)) == status
