"""Unit tests for motion models (paper equations 1-3)."""

import numpy as np
import pytest

from repro.tracker.motion import (
    ExponentialDecayMotion,
    KalmanMotion,
    box_to_xsr,
    xsr_to_box,
)


class TestStateConversion:
    def test_roundtrip(self):
        box = np.array([10.0, 20.0, 40.0, 80.0])
        x, y, s, r = box_to_xsr(box)
        np.testing.assert_allclose(xsr_to_box(x, y, s, r), box)

    def test_s_is_width_r_is_aspect(self):
        x, y, s, r = box_to_xsr(np.array([0.0, 0.0, 30.0, 60.0]))
        assert s == pytest.approx(30.0)   # width
        assert r == pytest.approx(2.0)    # height/width

    def test_degenerate_raises(self):
        with pytest.raises(ValueError, match="positive size"):
            box_to_xsr(np.array([0.0, 0.0, 0.0, 10.0]))


class TestExponentialDecayMotion:
    def test_initial_velocity_zero(self):
        m = ExponentialDecayMotion(np.array([0.0, 0.0, 10.0, 10.0]))
        np.testing.assert_allclose(m.predict(), [0, 0, 10, 10])

    def test_velocity_update_rule(self):
        # eta=0.5: after one update with displacement d, velocity = 0.5*d.
        m = ExponentialDecayMotion(np.array([0.0, 0.0, 10.0, 10.0]), eta=0.5)
        m.update(np.array([4.0, 0.0, 14.0, 10.0]))  # moved +4 in x
        pred = m.predict()
        assert pred[0] == pytest.approx(4.0 + 0.5 * 4.0)

    def test_prediction_uses_current_velocity(self):
        m = ExponentialDecayMotion(np.array([0.0, 0.0, 10.0, 10.0]), eta=0.0)
        # eta=0: velocity equals last displacement exactly.
        m.update(np.array([3.0, 0.0, 13.0, 10.0]))
        np.testing.assert_allclose(m.predict(), [6.0, 0.0, 16.0, 10.0])

    def test_aspect_ratio_kept_constant(self):
        m = ExponentialDecayMotion(np.array([0.0, 0.0, 10.0, 20.0]))
        m.update(np.array([0.0, 0.0, 20.0, 40.0]))  # same aspect, bigger
        pred = m.predict()
        w = pred[2] - pred[0]
        h = pred[3] - pred[1]
        assert h / w == pytest.approx(2.0)

    def test_coast_keeps_constant_motion(self):
        m = ExponentialDecayMotion(np.array([0.0, 0.0, 10.0, 10.0]), eta=0.0)
        m.update(np.array([2.0, 0.0, 12.0, 10.0]))
        m.coast()  # advance one frame without observation
        pred = m.predict()
        # position advanced by v once in coast, predict adds v again
        assert pred[0] == pytest.approx(6.0)

    def test_eta_smooths_velocity(self):
        smooth = ExponentialDecayMotion(np.array([0.0, 0.0, 10.0, 10.0]), eta=0.9)
        jerky = ExponentialDecayMotion(np.array([0.0, 0.0, 10.0, 10.0]), eta=0.1)
        obs = np.array([10.0, 0.0, 20.0, 10.0])
        smooth.update(obs)
        jerky.update(obs)
        assert smooth.vel[0] < jerky.vel[0]

    def test_invalid_eta(self):
        with pytest.raises(ValueError, match="eta"):
            ExponentialDecayMotion(np.array([0, 0, 1, 1]), eta=1.5)


class TestKalmanMotion:
    def test_interface_contract(self):
        m = KalmanMotion(np.array([0.0, 0.0, 10.0, 10.0]))
        pred = m.predict()
        assert pred.shape == (4,)
        m.update(np.array([1.0, 0.0, 11.0, 10.0]))
        m.coast()  # no-op after predict

    def test_tracks_linear_motion_comparably_to_decay(self):
        """Both models should track steady motion; decay needs no tuning."""
        start = np.array([0.0, 0.0, 20.0, 40.0])
        kalman = KalmanMotion(start.copy())
        decay = ExponentialDecayMotion(start.copy(), eta=0.7)
        for t in range(1, 15):
            obs = start + np.array([3.0 * t, 0.0, 3.0 * t, 0.0])
            kalman.predict()
            kalman.update(obs)
            decay.predict()
            decay.update(obs)
        truth = start + np.array([3.0 * 15, 0.0, 3.0 * 15, 0.0])
        for model in (kalman, decay):
            pred = model.predict()
            assert abs(pred[0] - truth[0]) < 3.0
