"""Unit tests for RegionMask union-area geometry."""

import numpy as np
import pytest

from repro.boxes.mask import RegionMask, boxes_coverage_fraction


class TestUnionArea:
    def test_single_box(self):
        m = RegionMask(np.array([[10, 10, 20, 30]]), 100, 100, margin=0)
        assert m.union_area() == pytest.approx(200.0)

    def test_disjoint_boxes_sum(self):
        m = RegionMask(
            np.array([[0, 0, 10, 10], [50, 50, 60, 60]]), 100, 100, margin=0
        )
        assert m.union_area() == pytest.approx(200.0)

    def test_overlap_not_double_counted(self):
        m = RegionMask(
            np.array([[0, 0, 100, 100], [50, 50, 150, 150]]), 1000, 1000, margin=0
        )
        assert m.union_area() == pytest.approx(100 * 100 * 2 - 50 * 50)

    def test_nested_boxes(self):
        m = RegionMask(
            np.array([[0, 0, 100, 100], [10, 10, 20, 20]]), 1000, 1000, margin=0
        )
        assert m.union_area() == pytest.approx(10_000.0)

    def test_margin_expands_area(self):
        small = RegionMask(np.array([[50, 50, 60, 60]]), 1000, 1000, margin=0)
        big = RegionMask(np.array([[50, 50, 60, 60]]), 1000, 1000, margin=30)
        assert big.union_area() == pytest.approx(70 * 70)
        assert big.union_area() > small.union_area()

    def test_clipped_to_image(self):
        m = RegionMask(np.array([[0, 0, 10, 10]]), 100, 100, margin=30)
        # Expansion beyond the image border is clipped.
        assert m.union_area() == pytest.approx(40 * 40)

    def test_empty_mask(self):
        m = RegionMask(np.zeros((0, 4)), 100, 100)
        assert m.is_empty()
        assert m.union_area() == 0.0
        assert m.coverage_fraction() == 0.0

    def test_coverage_fraction_bounds(self):
        m = RegionMask(np.array([[0, 0, 100, 100]]), 100, 100, margin=50)
        assert m.coverage_fraction() == pytest.approx(1.0)


class TestContains:
    def test_object_inside_region(self):
        m = RegionMask(np.array([[0, 0, 100, 100]]), 500, 500, margin=0)
        assert m.contains(np.array([[10, 10, 50, 50]])).tolist() == [True]

    def test_object_outside_region(self):
        m = RegionMask(np.array([[0, 0, 100, 100]]), 500, 500, margin=0)
        assert m.contains(np.array([[300, 300, 400, 400]])).tolist() == [False]

    def test_margin_captures_nearby_object(self):
        m = RegionMask(np.array([[0, 0, 100, 100]]), 500, 500, margin=30)
        assert m.contains(np.array([[100, 100, 125, 125]])).tolist() == [True]

    def test_partial_overlap_threshold(self):
        m = RegionMask(np.array([[0, 0, 100, 100]]), 500, 500, margin=0)
        query = np.array([[60, 0, 160, 100]])  # 40% covered
        assert m.contains(query, min_overlap=0.7).tolist() == [False]
        assert m.contains(query, min_overlap=0.3).tolist() == [True]

    def test_empty_mask_contains_nothing(self):
        m = RegionMask(np.zeros((0, 4)), 100, 100)
        assert m.contains(np.array([[0, 0, 10, 10]])).tolist() == [False]

    def test_empty_query(self):
        m = RegionMask(np.array([[0, 0, 10, 10]]), 100, 100)
        assert m.contains(np.zeros((0, 4))).shape == (0,)


class TestValidation:
    def test_bad_image_size_raises(self):
        with pytest.raises(ValueError, match="dimensions"):
            RegionMask(np.zeros((0, 4)), 0, 100)

    def test_negative_margin_raises(self):
        with pytest.raises(ValueError, match="margin"):
            RegionMask(np.zeros((0, 4)), 10, 10, margin=-1)

    def test_convenience_wrapper(self):
        frac = boxes_coverage_fraction(np.array([[0, 0, 50, 100]]), 100, 100)
        assert frac == pytest.approx(0.5)
