"""Unit tests for the analytic FLOPs models (Table 1 reproduction)."""

import numpy as np
import pytest

from repro.flops.layers import ConvLayer, FCLayer, PoolLayer, conv_output_hw, count_ops, total_macs
from repro.flops.rcnn import FasterRCNNOps
from repro.flops.resnet import (
    RESNET10A,
    RESNET10B,
    RESNET10C,
    RESNET18,
    RESNET50,
    resnet_head_layers,
    resnet_trunk_layers,
)
from repro.flops.retinanet import RetinaNetOps
from repro.flops.vgg import VGG16, vgg_head_layers, vgg_trunk_layers

KITTI_W, KITTI_H = 1242, 375


class TestLayers:
    def test_conv_macs_formula(self):
        layer = ConvLayer("c", 3, 64, kernel=7, stride=2)
        assert layer.macs(10, 10) == 7 * 7 * 3 * 64 * 100

    def test_conv_output_hw_ceil(self):
        assert conv_output_hw(375, 1242, 2) == (188, 621)
        assert conv_output_hw(5, 5, 1) == (5, 5)

    def test_count_ops_propagates_resolution(self):
        layers = [
            ConvLayer("a", 3, 8, kernel=3, stride=2),
            PoolLayer("p", stride=2),
            ConvLayer("b", 8, 16, kernel=3, stride=1),
        ]
        ops = count_ops(layers, 100, 100)
        assert ops[0].out_h == 50
        assert ops[1].out_h == 25 and ops[1].macs == 0
        assert ops[2].out_h == 25
        assert ops[2].macs == 9 * 8 * 16 * 25 * 25

    def test_fc_macs(self):
        assert FCLayer("f", 100, 10).macs() == 1000

    def test_invalid_specs(self):
        with pytest.raises(ValueError):
            ConvLayer("c", 0, 8)
        with pytest.raises(ValueError):
            FCLayer("f", 10, 0)
        with pytest.raises(ValueError, match="resolution"):
            count_ops([ConvLayer("c", 3, 8)], 0, 10)


class TestResNetBuilders:
    def test_trunk_stride_16(self):
        ops = count_ops(resnet_trunk_layers(RESNET50), KITTI_H, KITTI_W)
        assert ops[-1].out_h == -(-KITTI_H // 16)
        assert ops[-1].out_w == -(-KITTI_W // 16)

    def test_resnet18_has_two_blocks_per_stage(self):
        names = [l.name for l in resnet_trunk_layers(RESNET18)]
        assert any("block1.1" in n for n in names)
        names10 = [l.name for l in resnet_trunk_layers(RESNET10A)]
        assert not any("block1.1" in n for n in names10)

    def test_bottleneck_expansion(self):
        assert RESNET50.trunk_out_channels == 1024  # 256 * 4
        assert RESNET18.trunk_out_channels == 256

    def test_head_layers_are_stage4(self):
        names = [l.name for l in resnet_head_layers(RESNET50)]
        assert all("block4" in n for n in names)


class TestTable1:
    """Table 1: proposal-net ops on KITTI (1242x375, 300 proposals)."""

    @pytest.mark.parametrize(
        "arch,roi_pool,paper_gops,tol",
        [
            (RESNET10A, 7, 20.7, 0.10),
            (RESNET10B, 7, 7.5, 0.10),
            (RESNET10C, 7, 4.5, 0.10),
            (RESNET18, 14, 138.3, 0.10),
        ],
    )
    def test_proposal_net_ops_match_paper(self, arch, roi_pool, paper_gops, tol):
        model = FasterRCNNOps(arch, KITTI_W, KITTI_H, roi_pool=roi_pool)
        gops = model.full_frame(300).total_gops
        assert gops == pytest.approx(paper_gops, rel=tol)

    def test_ordering(self):
        gops = [
            FasterRCNNOps(a, KITTI_W, KITTI_H).full_frame(300).total_gops
            for a in (RESNET18, RESNET10A, RESNET10B, RESNET10C)
        ]
        assert gops == sorted(gops, reverse=True)

    def test_resnet50_kitti_scale(self):
        model = FasterRCNNOps(RESNET50, KITTI_W, KITTI_H, roi_pool=14)
        gops = model.full_frame(300).total_gops
        # Paper: 254.3 G; counting-convention differences leave ~11 %.
        assert gops == pytest.approx(254.3, rel=0.15)

    def test_vgg16_kitti(self):
        model = FasterRCNNOps(VGG16, KITTI_W, KITTI_H)
        assert model.full_frame(300).total_gops == pytest.approx(179.0, rel=0.05)


class TestRegionalMode:
    def test_zero_coverage_only_heads(self):
        model = FasterRCNNOps(RESNET50, KITTI_W, KITTI_H)
        ops = model.regional(0.0, 10)
        assert ops.trunk == 0.0
        assert ops.rpn == 0.0
        assert ops.head == pytest.approx(model.head_macs_per_proposal * 10)

    def test_full_coverage_matches_trunk(self):
        model = FasterRCNNOps(RESNET50, KITTI_W, KITTI_H)
        assert model.regional(1.0, 0).trunk == pytest.approx(model.trunk_macs)

    def test_regional_monotone_in_coverage(self):
        model = FasterRCNNOps(RESNET50, KITTI_W, KITTI_H)
        totals = [model.regional(c, 20).total for c in (0.1, 0.3, 0.7)]
        assert totals == sorted(totals)

    def test_regional_cheaper_than_full(self):
        """The core CaTDet premise at the ops level."""
        model = FasterRCNNOps(RESNET50, KITTI_W, KITTI_H, roi_pool=14)
        regional = model.regional(0.35, 20).total
        full = model.full_frame(300).total
        assert regional < full / 4

    def test_validation(self):
        model = FasterRCNNOps(RESNET50, KITTI_W, KITTI_H)
        with pytest.raises(ValueError, match="coverage"):
            model.regional(1.5, 10)
        with pytest.raises(ValueError, match="n_proposals"):
            model.regional(0.5, -1)
        with pytest.raises(ValueError, match="image size"):
            FasterRCNNOps(RESNET50, 0, 100)


class TestOpsBreakdownArithmetic:
    def test_add_and_scale(self):
        model = FasterRCNNOps(RESNET10A, KITTI_W, KITTI_H)
        a = model.full_frame(300)
        double = a + a
        assert double.total == pytest.approx(2 * a.total)
        half = a.scaled(0.5)
        assert half.total == pytest.approx(a.total / 2)


class TestRetinaNet:
    def test_matches_paper_table8(self):
        model = RetinaNetOps(RESNET50, KITTI_W, KITTI_H)
        assert model.full_frame().total_gops == pytest.approx(96.7, rel=0.08)

    def test_regional_scales_all_parts(self):
        model = RetinaNetOps(RESNET50, KITTI_W, KITTI_H)
        half = model.regional(0.5)
        full = model.full_frame()
        assert half.total == pytest.approx(full.total / 2)

    def test_subnets_dominate_backbone_at_kitti(self):
        # RetinaNet's dense heads are a large share of its cost.
        model = RetinaNetOps(RESNET50, KITTI_W, KITTI_H)
        assert model.subnet_macs > 0.3 * model.backbone_macs

    def test_validation(self):
        with pytest.raises(ValueError, match="image size"):
            RetinaNetOps(RESNET50, -1, 5)
        with pytest.raises(ValueError, match="coverage"):
            RetinaNetOps(RESNET50, 100, 100).regional(2.0)


class TestResolutionScaling:
    def test_citypersons_trunk_scales_with_area(self):
        kitti = FasterRCNNOps(RESNET50, KITTI_W, KITTI_H, roi_pool=14)
        cityp = FasterRCNNOps(RESNET50, 2048, 1024, roi_pool=14, num_classes=1)
        area_ratio = (2048 * 1024) / (KITTI_W * KITTI_H)
        assert cityp.trunk_macs / kitti.trunk_macs == pytest.approx(area_ratio, rel=0.02)
        # Heads are resolution-independent.
        assert cityp.head_macs_per_proposal == pytest.approx(
            kitti.head_macs_per_proposal, rel=0.01
        )
