"""Unit tests for the Detections container."""

import numpy as np
import pytest

from repro.detections import Detections


def make(n=3, label=0):
    boxes = np.stack([np.array([10.0 * i, 0.0, 10.0 * i + 8.0, 8.0]) for i in range(n)])
    return Detections(boxes, np.linspace(0.9, 0.5, n), np.full(n, label, dtype=int))


class TestConstruction:
    def test_empty(self):
        d = Detections.empty()
        assert len(d) == 0
        assert d.boxes.shape == (0, 4)

    def test_length_mismatch_raises(self):
        with pytest.raises(ValueError, match="agree in length"):
            Detections(np.zeros((2, 4)), np.zeros(3), np.zeros(2, dtype=int))

    def test_iteration(self):
        d = make(2)
        items = list(d)
        assert len(items) == 2
        box, score, label = items[0]
        assert box.shape == (4,)
        assert isinstance(score, float) and isinstance(label, int)


class TestOperations:
    def test_concatenate(self):
        d = Detections.concatenate([make(2, 0), make(3, 1)])
        assert len(d) == 5
        assert sorted(np.unique(d.labels).tolist()) == [0, 1]

    def test_concatenate_empty_parts(self):
        d = Detections.concatenate([Detections.empty(), make(2)])
        assert len(d) == 2
        assert len(Detections.concatenate([])) == 0

    def test_above_score(self):
        d = make(3)  # scores .9, .7, .5
        assert len(d.above_score(0.6)) == 2

    def test_for_class(self):
        d = Detections.concatenate([make(2, 0), make(1, 1)])
        assert len(d.for_class(1)) == 1

    def test_sorted_by_score(self):
        d = Detections(
            np.zeros((3, 4)) + [0, 0, 1, 1],
            np.array([0.2, 0.9, 0.5]),
            np.zeros(3, dtype=int),
        )
        assert d.sorted_by_score().scores.tolist() == [0.9, 0.5, 0.2]

    def test_select_by_mask(self):
        d = make(4)
        sel = d.select(d.scores > 0.6)
        assert np.all(sel.scores > 0.6)

    def test_nms_collapses_duplicates(self):
        boxes = np.array([[0, 0, 10, 10], [0.5, 0.5, 10.5, 10.5], [50, 50, 60, 60]])
        d = Detections(boxes, np.array([0.9, 0.8, 0.7]), np.zeros(3, dtype=int))
        assert len(d.nms(0.5)) == 2

    def test_nms_respects_classes(self):
        boxes = np.array([[0, 0, 10, 10], [0, 0, 10, 10]])
        d = Detections(boxes, np.array([0.9, 0.8]), np.array([0, 1]))
        assert len(d.nms(0.5)) == 2
