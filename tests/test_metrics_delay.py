"""Unit tests for the mean Delay metric (paper §5)."""

import numpy as np
import pytest

from repro.metrics.delay import (
    DelayEvaluation,
    TrackDelayRecord,
    delay_at_threshold,
    mean_delay_at_precision,
    threshold_for_precision,
)


def record(scores, cared=True):
    r = TrackDelayRecord()
    for i, s in enumerate(scores):
        r.append(i, s, cared=cared)
    return r


class TestTrackDelayRecord:
    def test_detected_first_frame(self):
        assert record([0.9, 0.9]).delay_at(0.5) == 0

    def test_detected_third_frame(self):
        assert record([-np.inf, 0.3, 0.9]).delay_at(0.5) == 2

    def test_never_detected_full_length(self):
        assert record([0.1, 0.2, 0.1]).delay_at(0.5) == 3

    def test_threshold_sensitivity(self):
        r = record([0.4, 0.6, 0.9])
        assert r.delay_at(0.3) == 0
        assert r.delay_at(0.5) == 1
        assert r.delay_at(0.8) == 2

    def test_figure5_example(self):
        """Paper Figure 5: detected in frames 1-3 of 5, delay 1."""
        r = record([-np.inf, 0.9, 0.9, 0.9, -np.inf])
        assert r.delay_at(0.5) == 1

    def test_ever_cared_tracking(self):
        r = TrackDelayRecord()
        r.append(0, 0.5, cared=False)
        assert not r.ever_cared
        r.append(1, 0.5, cared=True)
        assert r.ever_cared


class TestPrecisionAndThreshold:
    def _evaluation(self):
        scores = np.array([0.9, 0.8, 0.7, 0.6, 0.5, 0.4])
        tp = np.array([True, True, False, True, False, False])
        return DelayEvaluation(scores=scores, tp=tp, tracks=[record([0.9])])

    def test_precision_at(self):
        e = self._evaluation()
        assert e.precision_at(0.85) == pytest.approx(1.0)
        assert e.precision_at(0.65) == pytest.approx(2 / 3)
        assert e.precision_at(0.0) == pytest.approx(0.5)

    def test_precision_empty_is_one(self):
        e = self._evaluation()
        assert e.precision_at(0.99) == 1.0

    def test_threshold_for_precision_hits_target(self):
        e = self._evaluation()
        t = threshold_for_precision([e], beta=1.0)
        assert e.precision_at(t) == pytest.approx(1.0)

    def test_threshold_prefers_lower_on_tie(self):
        scores = np.array([0.9, 0.5])
        tp = np.array([True, True])
        e = DelayEvaluation(scores=scores, tp=tp, tracks=[])
        t = threshold_for_precision([e], beta=1.0)
        assert t <= 0.5  # precision is 1.0 everywhere; lowest wins

    def test_invalid_beta(self):
        with pytest.raises(ValueError, match="beta"):
            threshold_for_precision([self._evaluation()], beta=0.0)

    def test_empty_class_list_raises(self):
        with pytest.raises(ValueError, match="non-empty"):
            threshold_for_precision([], beta=0.8)


class TestMeanDelay:
    def test_average_over_classes(self):
        c0 = DelayEvaluation(
            scores=np.array([0.9]),
            tp=np.array([True]),
            tracks=[record([0.9, 0.9]), record([-np.inf, 0.9])],
        )
        c1 = DelayEvaluation(
            scores=np.array([0.9]),
            tp=np.array([True]),
            tracks=[record([-np.inf, -np.inf, 0.9])],
        )
        # class 0 mean delay = (0 + 1)/2 = 0.5; class 1 = 2.0 -> mean 1.25
        assert delay_at_threshold([c0, c1], 0.5) == pytest.approx(1.25)

    def test_classes_without_tracks_skipped(self):
        c0 = DelayEvaluation(
            scores=np.array([0.9]), tp=np.array([True]), tracks=[record([0.9])]
        )
        c1 = DelayEvaluation(scores=np.array([0.9]), tp=np.array([True]), tracks=[])
        assert delay_at_threshold([c0, c1], 0.5) == pytest.approx(0.0)

    def test_mean_delay_at_precision_returns_threshold(self):
        c = DelayEvaluation(
            scores=np.array([0.9, 0.8, 0.2]),
            tp=np.array([True, True, False]),
            tracks=[record([0.9])],
        )
        delay, t = mean_delay_at_precision([c], beta=1.0)
        assert delay == 0.0
        assert c.precision_at(t) == 1.0

    def test_higher_beta_never_lowers_delay(self):
        rng = np.random.default_rng(1)
        scores = rng.random(300)
        tp = rng.random(300) < scores  # score-correlated correctness
        tracks = [record(list(rng.random(10) * s)) for s in rng.random(20)]
        e = DelayEvaluation(scores=scores, tp=tp, tracks=tracks)
        d_low, _ = mean_delay_at_precision([e], beta=0.5)
        d_high, _ = mean_delay_at_precision([e], beta=0.9)
        assert d_high >= d_low - 1e-9
