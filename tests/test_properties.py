"""Property-based tests (hypothesis) on the core geometric/metric kernels."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st
from scipy.optimize import linear_sum_assignment as scipy_lsa

from repro.boxes.box import area, clip_boxes, expand_boxes, union_box
from repro.boxes.iou import iou_matrix
from repro.boxes.mask import RegionMask
from repro.boxes.merge import MergeCostModel, greedy_merge_boxes
from repro.boxes.nms import nms
from repro.hungarian import hungarian
from repro.metrics.ap import average_precision


@st.composite
def boxes_strategy(draw, max_boxes=12, max_coord=500.0):
    """Non-degenerate boxes with bounded coordinates."""
    n = draw(st.integers(min_value=1, max_value=max_boxes))
    coords = draw(
        st.lists(
            st.tuples(
                st.floats(0, max_coord), st.floats(0, max_coord),
                st.floats(1, 80), st.floats(1, 80),
            ),
            min_size=n,
            max_size=n,
        )
    )
    out = np.array([[x, y, x + w, y + h] for x, y, w, h in coords])
    return out


class TestIouProperties:
    @given(boxes_strategy())
    @settings(max_examples=50, deadline=None)
    def test_iou_bounds_and_symmetry(self, boxes):
        m = iou_matrix(boxes, boxes)
        assert np.all(m >= 0) and np.all(m <= 1 + 1e-12)
        np.testing.assert_allclose(m, m.T, atol=1e-12)
        np.testing.assert_allclose(np.diag(m), 1.0)

    @given(boxes_strategy(), st.floats(1, 50))
    @settings(max_examples=30, deadline=None)
    def test_translation_invariance(self, boxes, shift):
        moved = boxes + np.array([shift, shift, shift, shift])
        np.testing.assert_allclose(
            iou_matrix(boxes, boxes), iou_matrix(moved, moved), atol=1e-9
        )

    @given(boxes_strategy(), st.floats(0.5, 3.0))
    @settings(max_examples=30, deadline=None)
    def test_scale_invariance(self, boxes, scale):
        np.testing.assert_allclose(
            iou_matrix(boxes, boxes), iou_matrix(boxes * scale, boxes * scale),
            atol=1e-9,
        )


class TestNmsProperties:
    @given(boxes_strategy(), st.floats(0.1, 0.9))
    @settings(max_examples=50, deadline=None)
    def test_kept_set_mutually_nonoverlapping(self, boxes, thr):
        scores = np.linspace(1.0, 0.1, boxes.shape[0])
        keep = nms(boxes, scores, thr)
        kept = boxes[keep]
        m = iou_matrix(kept, kept)
        np.fill_diagonal(m, 0.0)
        assert np.all(m <= thr + 1e-9)

    @given(boxes_strategy())
    @settings(max_examples=30, deadline=None)
    def test_top_scorer_always_kept(self, boxes):
        scores = np.linspace(1.0, 0.1, boxes.shape[0])
        keep = nms(boxes, scores, 0.5)
        assert 0 in keep

    @given(boxes_strategy(), st.floats(0.1, 0.9))
    @settings(max_examples=30, deadline=None)
    def test_idempotent(self, boxes, thr):
        scores = np.linspace(1.0, 0.1, boxes.shape[0])
        keep1 = nms(boxes, scores, thr)
        keep2 = nms(boxes[keep1], scores[keep1], thr)
        assert len(keep2) == len(keep1)


class TestHungarianProperties:
    @given(
        st.integers(1, 8),
        st.integers(1, 8),
        st.integers(0, 2**31 - 1),
    )
    @settings(max_examples=80, deadline=None)
    def test_optimal_cost_matches_scipy(self, n, m, seed):
        cost = np.random.default_rng(seed).normal(size=(n, m)) * 10
        r1, c1 = hungarian(cost)
        r2, c2 = scipy_lsa(cost)
        assert cost[r1, c1].sum() == pytest.approx(cost[r2, c2].sum(), abs=1e-8)

    @given(st.integers(1, 8), st.integers(0, 2**31 - 1))
    @settings(max_examples=30, deadline=None)
    def test_permutation_matrix_structure(self, n, seed):
        cost = np.random.default_rng(seed).random((n, n))
        rows, cols = hungarian(cost)
        assert sorted(rows.tolist()) == list(range(n))
        assert sorted(cols.tolist()) == list(range(n))


class TestMaskProperties:
    @given(boxes_strategy(max_coord=400.0), st.floats(0, 40))
    @settings(max_examples=50, deadline=None)
    def test_union_area_bounds(self, boxes, margin):
        """max(single areas) <= union <= sum of areas (after clipping)."""
        mask = RegionMask(boxes, 500, 500, margin=margin)
        clipped = clip_boxes(expand_boxes(boxes, margin), 500, 500)
        areas = area(clipped)
        union = mask.union_area()
        assert union <= areas.sum() + 1e-6
        assert union >= areas.max() - 1e-6

    @given(boxes_strategy(max_coord=400.0))
    @settings(max_examples=30, deadline=None)
    def test_union_le_enclosing_box(self, boxes):
        mask = RegionMask(boxes, 500, 500, margin=0)
        enclosing = union_box(clip_boxes(boxes, 500, 500))
        assert mask.union_area() <= area(enclosing[None, :])[0] + 1e-6

    @given(boxes_strategy(max_coord=400.0), st.floats(0, 30), st.floats(5, 30))
    @settings(max_examples=30, deadline=None)
    def test_monotone_in_margin(self, boxes, margin, extra):
        small = RegionMask(boxes, 600, 600, margin=margin)
        big = RegionMask(boxes, 600, 600, margin=margin + extra)
        assert big.union_area() >= small.union_area() - 1e-9


class TestMergeProperties:
    @given(boxes_strategy(max_boxes=8), st.floats(1e2, 1e6))
    @settings(max_examples=40, deadline=None)
    def test_merge_never_worse_and_covers(self, boxes, base_area):
        model = MergeCostModel(alpha=1.0, base_area=base_area)
        merged, assignment = greedy_merge_boxes(boxes, model)
        assert model.total_time(merged) <= model.total_time(boxes) + 1e-6
        assert assignment.shape[0] == boxes.shape[0]
        for i, box in enumerate(boxes):
            region = merged[assignment[i]]
            assert region[0] <= box[0] + 1e-9 and region[2] >= box[2] - 1e-9


class TestApProperties:
    @given(st.integers(1, 60), st.integers(0, 2**31 - 1))
    @settings(max_examples=50, deadline=None)
    def test_ap_in_unit_interval(self, n, seed):
        rng = np.random.default_rng(seed)
        scores = rng.random(n)
        tp = rng.random(n) < 0.5
        num_gt = max(int(tp.sum()), 1) + int(rng.integers(0, 5))
        for method in ("voc11", "r40", "continuous"):
            ap = average_precision(scores, tp, num_gt, method=method)
            assert 0.0 <= ap <= 1.0

    @given(st.integers(2, 40), st.integers(0, 2**31 - 1))
    @settings(max_examples=40, deadline=None)
    def test_extra_fp_below_all_tp_scores_never_helps(self, n, seed):
        rng = np.random.default_rng(seed)
        scores = rng.random(n) * 0.5 + 0.5
        tp = rng.random(n) < 0.7
        num_gt = max(int(tp.sum()), 1)
        base = average_precision(scores, tp, num_gt, method="continuous")
        scores2 = np.concatenate([scores, [0.1]])
        tp2 = np.concatenate([tp, [False]])
        worse = average_precision(scores2, tp2, num_gt, method="continuous")
        assert worse <= base + 1e-12
