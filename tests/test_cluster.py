"""Cluster subsystem tests: queue semantics, fault tolerance, parity.

The load-bearing guarantees:

* exactly one worker wins each task (claim-by-rename);
* a SIGKILL'd worker's shard is re-leased and the finished run is
  byte-identical to the serial executor;
* corrupt or expired leases recover without losing tasks, and exhausted
  attempt budgets surface as dead letters, not hangs;
* every registered executor kind produces identical ``SystemRunResult``s.
"""

import json
import os
import signal
import subprocess
import sys
import threading
import time

import pytest

from repro.api.registry import EXECUTORS
from repro.api.session import Session
from repro.api.spec import DatasetSpec, ExecSpec, ExperimentSpec
from repro.cluster import (
    ClusterTaskError,
    FileWorkQueue,
    MultiHostExecutor,
    Worker,
    dispatch_specs,
    execute_task,
)
from repro.cluster.protocol import experiment_task, sequence_task
from repro.core.config import SystemConfig
from repro.core.pipeline import run_on_dataset
from repro.core.results import SequenceResult
from repro.engine.scheduler import SequenceExecutionError
from repro.harness.io import experiment_to_dict, run_to_dict

CONFIG = SystemConfig("catdet", "resnet50", "resnet10a")
DATASET = DatasetSpec("kitti", num_sequences=2, frames_per_sequence=15)


def tiny_spec(**system_changes):
    system = CONFIG if not system_changes else SystemConfig(
        "catdet", "resnet50", "resnet10a", **system_changes
    )
    return ExperimentSpec(system=system, dataset=DATASET)


def drain(queue, *, max_tasks, cache=True):
    """Run an inline worker until ``max_tasks`` tasks are processed."""
    worker = Worker(queue, cache_dir="auto" if cache else None,
                    heartbeat_interval=0.2)
    worker.run(max_tasks=max_tasks, poll_interval=0.02, idle_timeout=30)
    return worker


def background_worker(queue, *, max_tasks):
    thread = threading.Thread(
        target=lambda: drain(queue, max_tasks=max_tasks), daemon=True
    )
    thread.start()
    return thread


class TestFileWorkQueue:
    def make_task(self):
        return sequence_task(CONFIG, dataset=DATASET.to_dict(), index=0)

    def test_submit_then_claim_round_trip(self, tmp_path):
        queue = FileWorkQueue(tmp_path)
        task_id = queue.submit(self.make_task())
        lease = queue.claim("w1")
        assert lease is not None and lease.task_id == task_id
        assert lease.task["worker"] == "w1"
        assert queue.stats() == {"pending": 0, "leased": 1, "done": 0, "dead": 0}

    def test_exactly_one_claimer_wins(self, tmp_path):
        queue = FileWorkQueue(tmp_path)
        queue.submit(self.make_task())
        wins = []
        barrier = threading.Barrier(8)

        def contender(i):
            barrier.wait()
            lease = queue.claim(f"w{i}")
            if lease is not None:
                wins.append(lease)

        threads = [threading.Thread(target=contender, args=(i,)) for i in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert len(wins) == 1

    def test_heartbeat_prevents_recovery(self, tmp_path):
        queue = FileWorkQueue(tmp_path, lease_ttl=10)
        queue.submit(self.make_task())
        lease = queue.claim("w1")
        late = time.time() + 9
        assert lease.heartbeat()  # deadline moves to now + 10
        assert queue.recover_expired(now=late) == []

    def test_expired_lease_is_requeued_with_attempt_count(self, tmp_path):
        queue = FileWorkQueue(tmp_path, lease_ttl=10)
        task_id = queue.submit(self.make_task())
        queue.claim("w1")
        assert queue.recover_expired(now=time.time() + 11) == [task_id]
        lease = queue.claim("w2")
        assert lease.task_id == task_id
        assert lease.task["attempts"] == 1
        assert "lease expired" in lease.task["history"][0]

    def test_attempt_budget_exhaustion_dead_letters(self, tmp_path):
        queue = FileWorkQueue(tmp_path, lease_ttl=10, max_attempts=2)
        task_id = queue.submit(self.make_task())
        for _ in range(2):
            assert queue.claim("w1") is not None
            queue.recover_expired(now=time.time() + 11)
        assert queue.claim("w1") is None
        record = queue.dead_letter(task_id)
        assert record is not None and record["attempts"] == 2
        assert queue.stats()["dead"] == 1

    def test_complete_releases_lease_and_stores_result(self, tmp_path):
        queue = FileWorkQueue(tmp_path)
        task_id = queue.submit(self.make_task())
        lease = queue.claim("w1")
        lease.complete({"ok": True})
        assert queue.result(task_id) == {"ok": True}
        assert queue.stats() == {"pending": 0, "leased": 0, "done": 1, "dead": 0}

    def test_corrupt_lease_recovers_to_dead_letter(self, tmp_path):
        queue = FileWorkQueue(tmp_path, lease_ttl=10)
        task_id = queue.submit(self.make_task())
        lease = queue.claim("w1")
        lease.path.write_text("{ not json")
        assert queue.recover_expired(now=time.time() + 11) == [task_id]
        assert queue.dead_letter(task_id) is not None
        assert queue.stats()["leased"] == 0

    def test_finished_but_unreleased_lease_reconciles_as_done(self, tmp_path):
        queue = FileWorkQueue(tmp_path, lease_ttl=10)
        task_id = queue.submit(self.make_task())
        lease = queue.claim("w1")
        # Crash window: result written, lease never released.
        queue._write_json(queue.result_dir / f"{task_id}.json", {"ok": True})
        assert queue.recover_expired(now=time.time() + 11) == []
        assert not lease.path.exists()
        assert queue.result(task_id) == {"ok": True}


class TestWorkerExecution:
    def test_experiment_task_matches_serial_session(self, tmp_path):
        spec = tiny_spec()
        serial = Session().run(spec)
        queue = FileWorkQueue(tmp_path / "q")
        queue.submit(experiment_task(spec.to_dict(), spec.fingerprint))
        worker = drain(queue, max_tasks=1)
        assert worker.tasks_done == 1
        results = dispatch_specs(queue, [spec])
        assert experiment_to_dict(results[0]) == experiment_to_dict(serial)

    def test_cached_fingerprint_served_without_execution(self, tmp_path):
        spec = tiny_spec()
        queue = FileWorkQueue(tmp_path / "q")
        task = experiment_task(spec.to_dict(), spec.fingerprint)
        first = execute_task(task, cache_dir=tmp_path / "q" / "cache")
        second = execute_task(task, cache_dir=tmp_path / "q" / "cache")
        assert first["cached"] is False
        assert second["cached"] is True
        assert second["payload"] == first["payload"]

    def test_use_cache_false_forces_recomputation(self, tmp_path):
        spec = tiny_spec()
        cache_dir = tmp_path / "q" / "cache"
        warm = experiment_task(spec.to_dict(), spec.fingerprint)
        execute_task(warm, cache_dir=cache_dir)
        forced = experiment_task(spec.to_dict(), spec.fingerprint, use_cache=False)
        envelope = execute_task(forced, cache_dir=cache_dir)
        assert envelope["cached"] is False

    def test_cached_grid_dispatch_needs_no_workers(self, tmp_path):
        spec = tiny_spec()
        queue = FileWorkQueue(tmp_path / "q")
        queue.submit(experiment_task(spec.to_dict(), spec.fingerprint))
        drain(queue, max_tasks=1)
        # No worker running now: the grid must resolve purely from cache.
        results = dispatch_specs(queue, [spec, spec], timeout=5)
        assert len(results) == 2 and results[0] is results[1]
        assert queue.stats()["pending"] == 0

    def test_failing_task_is_retried_then_dead_lettered(self, tmp_path):
        queue = FileWorkQueue(tmp_path / "q", max_attempts=2)
        broken = experiment_task(
            {"system": {"kind": "no-such-kind", "refinement_model": "resnet50"}},
            "0" * 64,
        )
        task_id = queue.submit(broken)
        worker = drain(queue, max_tasks=2)
        assert worker.tasks_failed == 2
        record = queue.dead_letter(task_id)
        assert record is not None
        assert "no-such-kind" in record["history"][-1]
        # A coordinator waiting on that shard surfaces the dead letter
        # instead of hanging.
        from repro.cluster.coordinator import _wait_for_results

        with pytest.raises(ClusterTaskError, match="dead-letter"):
            _wait_for_results(queue, [task_id], poll_interval=0.01, timeout=5)

    def test_sequence_task_inline_and_ref_agree(self, tmp_path, kitti_small):
        sequence = kitti_small.sequences[0]
        inline = sequence_task(CONFIG, sequence)
        ref = sequence_task(
            CONFIG,
            dataset=DatasetSpec("kitti", num_sequences=2,
                                frames_per_sequence=60).to_dict(),
            index=0,
        )
        a = execute_task(inline, cache_dir=None)
        b = execute_task(ref, cache_dir=None)
        assert a["payload"] == b["payload"]

    def test_frame_range_task_matches_serial_slice(self, kitti_small):
        """A frame-range shard equals the same frames of a serial run."""
        from repro.harness.io import sequence_result_from_dict

        sequence = kitti_small.sequences[0]
        config = SystemConfig("cascade", "resnet50", "resnet10a")
        task = sequence_task(config, sequence, frame_range=(10, 20))
        envelope = execute_task(task, cache_dir=None)
        chunk = sequence_result_from_dict(envelope["payload"]["sequence"])
        serial = run_on_dataset(config, kitti_small, workers=1)
        reference = serial.sequences[sequence.name].frames[10:20]
        assert [fr.frame for fr in chunk.frames] == list(range(10, 20))
        for fa, fb in zip(chunk.frames, reference):
            assert fa.frame == fb.frame
            assert fa.ops.total == fb.ops.total
            assert (fa.detections.boxes == fb.detections.boxes).all()
            assert (fa.detections.scores == fb.detections.scores).all()

    def test_frame_range_changes_fingerprint(self, kitti_small):
        """Partial and full shards must never alias in the shared store."""
        sequence = kitti_small.sequences[0]
        config = SystemConfig("cascade", "resnet50", "resnet10a")
        full = sequence_task(config, sequence)
        first_half = sequence_task(config, sequence, frame_range=(0, 30))
        second_half = sequence_task(config, sequence, frame_range=(30, 60))
        fingerprints = {
            full["fingerprint"],
            first_half["fingerprint"],
            second_half["fingerprint"],
        }
        assert len(fingerprints) == 3
        with pytest.raises(ValueError, match="frame_range"):
            sequence_task(config, sequence, frame_range=(5, 5))

    def test_frame_range_causal_guard_on_worker(self, kitti_small):
        """A mid-sequence range for a tracker system fails execution
        (recorded as a task failure, never a silently-wrong result)."""
        sequence = kitti_small.sequences[0]
        task = sequence_task(CONFIG, sequence, frame_range=(5, 10))
        with pytest.raises(ValueError, match="cross-frame feedback"):
            execute_task(task, cache_dir=None)


def stuck_worker_script(queue_dir):
    """A worker that claims a shard, heartbeats, and never finishes."""
    return f"""
import sys, time
from repro.cluster.queue import FileWorkQueue

queue = FileWorkQueue({str(queue_dir)!r})
lease = None
while lease is None:
    lease = queue.claim("stuck")
    time.sleep(0.02)
print("CLAIMED", flush=True)
while True:
    time.sleep(0.1)
    lease.heartbeat()
"""


class TestFaultTolerance:
    def test_sigkilled_worker_mid_lease_releases_and_run_is_byte_identical(
        self, tmp_path
    ):
        dataset = Session().dataset(DATASET)
        serial = run_on_dataset(CONFIG, dataset)

        queue = FileWorkQueue(tmp_path / "q", lease_ttl=5)
        executor = MultiHostExecutor(
            tmp_path / "q", lease_ttl=5, poll_interval=0.05, timeout=60
        )
        # A stuck worker grabs the first shard and is SIGKILL'd mid-lease.
        env = dict(os.environ)
        env["PYTHONPATH"] = os.pathsep.join(
            p for p in ["src", env.get("PYTHONPATH", "")] if p
        )
        proc = subprocess.Popen(
            [sys.executable, "-c", stuck_worker_script(queue.root)],
            stdout=subprocess.PIPE,
            env=env,
            text=True,
        )
        try:
            done = {}

            def run_multihost():
                done["run"] = run_on_dataset(CONFIG, dataset, executor=executor)

            coordinator = threading.Thread(target=run_multihost, daemon=True)
            coordinator.start()
            # The stuck worker must own its shard before the healthy worker
            # starts, or the healthy one could drain the whole queue first.
            assert proc.stdout.readline().strip() == "CLAIMED"
            healthy = background_worker(queue, max_tasks=len(dataset.sequences))
            os.kill(proc.pid, signal.SIGKILL)
            proc.wait(timeout=10)
            # Age the dead worker's lease past its TTL so the coordinator's
            # straggler sweep re-leases it instead of waiting out real time.
            deadline = time.time() + 30
            while time.time() < deadline and "run" not in done:
                for lease_path in queue.lease_dir.glob("*.json"):
                    stat = lease_path.stat()
                    os.utime(lease_path, (stat.st_atime, stat.st_mtime - 6))
                time.sleep(0.05)
            coordinator.join(timeout=60)
            healthy.join(timeout=60)
        finally:
            if proc.poll() is None:
                proc.kill()
        assert "run" in done, "multihost run never completed after the kill"
        assert run_to_dict(done["run"]) == run_to_dict(serial)

    def test_relisted_task_counts_the_dead_workers_attempt(self, tmp_path):
        queue = FileWorkQueue(tmp_path / "q", lease_ttl=10)
        task_id = queue.submit(
            sequence_task(CONFIG, dataset=DATASET.to_dict(), index=1)
        )
        queue.claim("doomed")
        queue.recover_expired(now=time.time() + 11)
        drain(queue, max_tasks=1)
        envelope = queue.result(task_id)
        assert envelope is not None and envelope["kind"] == "sequence"
        # The re-executed shard matches a direct serial execution.
        dataset = Session().dataset(DATASET)
        direct = run_on_dataset(CONFIG, dataset).sequences[dataset.sequences[1].name]
        from repro.harness.io import sequence_result_from_dict, sequence_result_to_dict

        rebuilt = sequence_result_from_dict(envelope["payload"]["sequence"])
        assert sequence_result_to_dict(rebuilt) == sequence_result_to_dict(direct)


class TestClusterObservability:
    def test_queue_metrics_count_transitions(self, tmp_path):
        from repro.obs import MetricsRegistry

        reg = MetricsRegistry()
        queue = FileWorkQueue(tmp_path / "q", lease_ttl=10, metrics=reg)
        task_id = queue.submit(
            sequence_task(CONFIG, dataset=DATASET.to_dict(), index=0)
        )
        queue.submit(sequence_task(CONFIG, dataset=DATASET.to_dict(), index=1))
        lease = queue.claim("w1")
        assert lease.task_id == task_id
        lease.complete({"ok": True})
        tasks = reg.get("cluster_tasks_total")
        assert tasks.value(("submitted",)) == 2
        assert tasks.value(("claimed",)) == 1
        assert tasks.value(("completed",)) == 1
        # stats() refreshes the depth gauges as a side effect.
        queue.stats()
        depth = reg.get("cluster_queue_depth")
        assert depth.value(("pending",)) == 1
        assert depth.value(("done",)) == 1

    def test_expired_lease_increments_retry_and_dead_letter_counters(
        self, tmp_path
    ):
        from repro.obs import MetricsRegistry

        reg = MetricsRegistry()
        queue = FileWorkQueue(
            tmp_path / "q", lease_ttl=10, max_attempts=2, metrics=reg
        )
        queue.submit(sequence_task(CONFIG, dataset=DATASET.to_dict(), index=0))
        for _ in range(2):
            queue.claim("doomed")
            queue.recover_expired(now=time.time() + 11)
        tasks = reg.get("cluster_tasks_total")
        assert tasks.value(("lease_expired",)) == 2
        assert tasks.value(("retried",)) == 1
        assert tasks.value(("dead_lettered",)) == 1

    def test_lease_lost_without_sigkill_is_counted_and_structured(
        self, tmp_path, monkeypatch
    ):
        """The lease-lost path emits a counter, an event, and a sink record.

        No SIGKILL involved: an observer expires the lease while the
        worker keeps executing (the slow-shard/short-TTL scenario), and
        the loss must surface as telemetry instead of a silent envelope
        flag.
        """
        from repro.cluster import worker as worker_mod
        from repro.obs import MetricsRegistry, Sink

        class ListSink(Sink):
            def __init__(self):
                self.records = []

            def emit(self, record):
                self.records.append(record)

        queue = FileWorkQueue(tmp_path / "q", lease_ttl=1.0)
        task_id = queue.submit(
            sequence_task(CONFIG, dataset=DATASET.to_dict(), index=0)
        )
        reg = MetricsRegistry()
        sink = ListSink()
        worker = Worker(
            queue, cache_dir=None, heartbeat_interval=0.05,
            metrics=reg, sinks=sink, health=None,
        )
        real_execute = worker_mod.execute_task

        def expire_then_execute(task, **kwargs):
            # Observer's view: the lease aged out; re-queue it while the
            # original worker is still mid-execution...
            assert queue.recover_expired(now=time.time() + 2.0) == [task_id]
            # ...and outlive a few heartbeat periods so the renewal
            # thread notices the lease file is gone.
            time.sleep(0.3)
            return real_execute(task, **kwargs)

        monkeypatch.setattr(worker_mod, "execute_task", expire_then_execute)
        assert worker.run_one()
        assert worker.tasks_done == 1
        assert worker.leases_lost == 1
        (event,) = worker.lease_lost_events
        assert event["task_id"] == task_id
        assert event["attempt"] == 1
        assert event["elapsed_seconds"] > 0
        assert event["worker"] == worker.worker_id
        assert reg.get("worker_leases_lost_total").value() == 1
        lost = [r for r in sink.records if r["record"] == "worker.lease_lost"]
        assert len(lost) == 1 and lost[0]["task_id"] == task_id

    def test_worker_health_file_lifecycle(self, tmp_path):
        from repro.obs import health_dir, read_health

        queue = FileWorkQueue(tmp_path / "q")
        queue.submit(sequence_task(CONFIG, dataset=DATASET.to_dict(), index=0))
        worker = Worker(queue, cache_dir=None, heartbeat_interval=0.2)
        seen = {}

        def on_task(processed):
            seen["records"] = read_health(health_dir(queue.root))

        worker.run(max_tasks=1, poll_interval=0.02, idle_timeout=30,
                   on_task=on_task)
        (record,) = seen["records"]
        assert record["component"] == "worker"
        assert record["id"] == worker.worker_id
        # Clean shutdown removes the snapshot: nothing left to go stale.
        assert read_health(health_dir(queue.root)) == []


class TestExecutorParity:
    def test_every_registered_executor_kind_is_byte_identical(self, tmp_path):
        dataset = Session().dataset(DATASET)
        baseline = run_to_dict(
            run_on_dataset(CONFIG, dataset, executor=EXECUTORS.get("serial")(1))
        )
        kinds = EXECUTORS.names()
        assert {"serial", "process", "auto", "multihost"} <= set(kinds)
        for kind in kinds:
            if kind == "multihost":
                queue = FileWorkQueue(tmp_path / "q")
                background_worker(queue, max_tasks=len(dataset.sequences))
                executor = EXECUTORS.get(kind)(0, queue_dir=str(tmp_path / "q"))
                executor.poll_interval = 0.05
                executor.timeout = 120
            elif kind == "serial":
                executor = EXECUTORS.get(kind)(1)
            else:
                executor = EXECUTORS.get(kind)(2)
            run = run_on_dataset(CONFIG, dataset, executor=executor)
            assert run_to_dict(run) == baseline, f"{kind} diverged from serial"


class FailingSystem:
    """Picklable stand-in system that dies on one specific sequence."""

    name = "failing"

    def __init__(self, poison):
        self.poison = poison

    def reset(self):
        pass

    def process_sequence(self, sequence):
        if sequence.name == self.poison:
            raise ValueError(f"poisoned sequence {sequence.name}")
        return SequenceResult(sequence_name=sequence.name, frames=[])


class TestFailFastParallelExecutor:
    def test_first_exception_cancels_and_names_the_sequence(self, kitti_small):
        from repro.engine.scheduler import ParallelExecutor

        poison = kitti_small.sequences[0].name
        executor = ParallelExecutor(2)
        with pytest.raises(SequenceExecutionError, match=poison) as excinfo:
            executor.map_sequences(FailingSystem(poison), kitti_small.sequences)
        assert excinfo.value.sequence_name == poison
        assert isinstance(excinfo.value.__cause__, ValueError)

    def test_progress_callback_fires_per_sequence(self, kitti_small):
        from repro.engine.scheduler import ParallelExecutor, SerialExecutor

        for executor in (SerialExecutor(), ParallelExecutor(2)):
            seen = []
            executor.map_sequences(
                FailingSystem(poison="<none>"),
                kitti_small.sequences,
                on_progress=lambda done, total, name: seen.append((done, total, name)),
            )
            assert [d for d, _, _ in seen] == [1, 2]
            assert all(total == 2 for _, total, _ in seen)
            assert {name for _, _, name in seen} == {
                s.name for s in kitti_small.sequences
            }


class TestExecSpecQueueDir:
    def test_round_trip_and_fingerprint_stability(self, tmp_path):
        spec = tiny_spec()
        routed = ExperimentSpec(
            system=spec.system,
            dataset=spec.dataset,
            exec=ExecSpec(executor="multihost", queue_dir=str(tmp_path)),
        )
        assert ExperimentSpec.from_json(routed.to_json()) == routed
        # The execution plan must never move the content address.
        assert routed.fingerprint == spec.fingerprint

    def test_local_executors_ignore_a_leftover_queue_dir(self, tmp_path):
        # Editing a dispatched grid's executor back to a local kind must
        # not trip over the queue_dir the multihost plan left behind.
        spec = ExperimentSpec(
            system=CONFIG,
            dataset=DatasetSpec("kitti", num_sequences=1, frames_per_sequence=10),
            exec=ExecSpec(executor="serial", queue_dir=str(tmp_path)),
        )
        result = Session().run(spec)
        assert result.ops_gops > 0

    def test_multihost_without_queue_dir_is_an_error(self, monkeypatch):
        monkeypatch.delenv("REPRO_QUEUE_DIR", raising=False)
        with pytest.raises(ValueError, match="queue directory"):
            EXECUTORS.get("multihost")(0)

    def test_queue_dir_env_fallback(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_QUEUE_DIR", str(tmp_path))
        executor = EXECUTORS.get("multihost")(0)
        assert executor.queue.root == tmp_path
