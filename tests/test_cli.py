"""Smoke tests for the ``python -m repro`` command-line interface."""

import json

import pytest

from repro.__main__ import main
from repro.api.spec import ExperimentSpec


TINY_RUN = ["--sequences", "1", "--frames", "10"]


class TestModels:
    def test_lists_zoo(self, capsys):
        assert main(["models"]) == 0
        out = capsys.readouterr().out
        assert "resnet50" in out and "resnet10a" in out


class TestRun:
    def test_catdet(self, capsys):
        assert main(["run", "catdet", "resnet50", "resnet10a", *TINY_RUN]) == 0
        out = capsys.readouterr().out
        assert "CaTDet" in out
        assert "mAP=" in out and "ops/frame" in out

    def test_new_system_config_flags(self, capsys):
        argv = [
            "run", "cascade", "resnet50", "resnet10a", *TINY_RUN,
            "--no-detailed-ops", "--input-scale", "0.72", "--margin", "10",
        ]
        assert main(argv) == 0
        assert "Cascaded" in capsys.readouterr().out

    def test_keyframe_kind_available(self, capsys):
        assert main(["run", "keyframe", "resnet10a", *TINY_RUN]) == 0
        assert "keyframe" in capsys.readouterr().out

    def test_run_uses_cache(self, tmp_path, capsys):
        argv = ["run", "single", "resnet10a", *TINY_RUN,
                "--cache-dir", str(tmp_path)]
        assert main(argv) == 0
        assert "1 miss(es)" in capsys.readouterr().out
        assert main(argv) == 0
        assert "1 hit(s)" in capsys.readouterr().out

    def test_no_cache_flag(self, tmp_path, capsys):
        argv = ["run", "single", "resnet10a", *TINY_RUN,
                "--cache-dir", str(tmp_path), "--no-cache"]
        assert main(argv) == 0
        assert "[cache]" not in capsys.readouterr().out
        assert list(tmp_path.iterdir()) == []


class TestTable2:
    def test_structure(self, capsys):
        assert main(["table2", "--sequences", "1", "--frames", "10"]) == 0
        out = capsys.readouterr().out
        assert "Table 2" in out
        # All five headline systems appear.
        assert out.count("CaTDet") == 2
        assert out.count("Cascaded") == 2
        assert "Faster R-CNN" in out


class TestSweep:
    def test_tiny_grid(self, capsys):
        argv = ["sweep", "--models", "resnet10a", "--c-values", "0.1,0.4",
                "--sequences", "1", "--frames", "10"]
        assert main(argv) == 0
        out = capsys.readouterr().out
        assert "C-thresh sweep" in out
        # 1 model x {tracker, no tracker} x 2 C values = 4 rows.
        assert out.count("resnet10a") == 4


class TestSpecCommand:
    def test_example_is_valid_spec(self, capsys):
        assert main(["spec", "--example"]) == 0
        spec = ExperimentSpec.from_json(capsys.readouterr().out)
        assert spec.system.kind == "catdet"

    def test_missing_file_errors(self, capsys):
        assert main(["spec"]) == 2
        assert "spec file" in capsys.readouterr().err

    def _tiny_spec_file(self, tmp_path, capsys, as_list=False):
        main(["spec", "--example"])
        payload = json.loads(capsys.readouterr().out)
        payload["dataset"]["num_sequences"] = 1
        payload["dataset"]["frames_per_sequence"] = 10
        path = tmp_path / "spec.json"
        path.write_text(json.dumps([payload, payload] if as_list else payload))
        return path

    def test_single_spec_runs(self, tmp_path, capsys):
        path = self._tiny_spec_file(tmp_path, capsys)
        assert main(["spec", str(path)]) == 0
        out = capsys.readouterr().out
        assert "1 spec(s)" in out and "CaTDet" in out

    def test_grid_dedupes_and_caches(self, tmp_path, capsys):
        path = self._tiny_spec_file(tmp_path, capsys, as_list=True)
        cache = tmp_path / "cache"
        assert main(["spec", str(path), "--cache-dir", str(cache)]) == 0
        out = capsys.readouterr().out
        assert "2 spec(s)" in out
        assert "1 miss(es)" in out  # two identical specs -> one computation
        assert main(["spec", str(path), "--cache-dir", str(cache)]) == 0
        assert "1 hit(s)" in capsys.readouterr().out

    def test_dry_run_prints_fingerprints(self, tmp_path, capsys):
        path = self._tiny_spec_file(tmp_path, capsys)
        assert main(["spec", str(path), "--dry-run"]) == 0
        line = capsys.readouterr().out.strip()
        fingerprint = line.split()[0]
        assert len(fingerprint) == 64
        assert int(fingerprint, 16) >= 0


SERVE_TINY = ["--streams", "2", "--frames", "8", "--sequences", "2",
              "--seq-frames", "15", "--rate", "10"]


class TestServeCommands:
    def test_serve_reports_throughput_and_slo(self, capsys):
        assert main(["serve", "catdet", "resnet50", "resnet10a",
                     *SERVE_TINY, "--batch-size", "4"]) == 0
        out = capsys.readouterr().out
        assert "Serving report" in out
        assert "(fleet)" in out and "p99(ms)" in out
        assert "throughput:" in out and "detector invocations" in out

    def test_serve_uses_cache(self, tmp_path, capsys):
        argv = ["serve", "single", "resnet10a", *SERVE_TINY,
                "--cache-dir", str(tmp_path)]
        assert main(argv) == 0
        first = capsys.readouterr().out
        assert main(argv) == 0
        second = capsys.readouterr().out
        assert "1 hit(s)" in second
        # The cached report reproduces the fresh run's numbers exactly
        # (ignoring the [cache]/[trace] bookkeeping lines, which differ
        # between a recording run and a pure hit).
        strip = lambda text: [
            line for line in text.splitlines()[2:]
            if not line.startswith("[")
        ]
        assert strip(first) == strip(second)

    def test_loadgen_summary_and_out_file(self, tmp_path, capsys):
        out_file = tmp_path / "schedule.json"
        assert main(["loadgen", *SERVE_TINY, "--pattern", "uniform",
                     "--out", str(out_file)]) == 0
        out = capsys.readouterr().out
        assert "uniform load" in out and "aggregate offered rate" in out
        payload = json.loads(out_file.read_text())
        assert payload["load"]["pattern"] == "uniform"
        assert len(payload["schedule"]) == 16

    def test_serve_rejects_bad_shed_policy(self):
        with pytest.raises(SystemExit):
            main(["serve", "single", "resnet10a", "--shed", "coinflip"])


class TestCostModelCommands:
    def test_run_device_reports_modeled_latency(self, capsys):
        assert main(["run", "catdet", "resnet50", "resnet10a", *TINY_RUN,
                     "--device", "titanx"]) == 0
        out = capsys.readouterr().out
        assert "modeled latency on titanx" in out
        assert "ms/frame" in out and "fps" in out

    def test_table7_prints_paper_comparison(self, capsys):
        assert main(["table7", "--frames", "25"]) == 0
        out = capsys.readouterr().out
        assert "Table 7" in out and "titanx" in out
        assert "Res50 Faster R-CNN" in out and "CaTDet" in out
        assert "speedup" in out

    def test_serve_accepts_device(self, capsys):
        assert main(["serve", "catdet", "resnet50", "resnet10a",
                     *SERVE_TINY, "--device", "titanx"]) == 0
        assert "Serving report" in capsys.readouterr().out

    def test_serve_device_conflicts_with_explicit_rates(self, capsys):
        assert main(["serve", "catdet", "resnet50", "resnet10a",
                     *SERVE_TINY, "--device", "titanx", "--gops", "100"]) == 2
        assert "explicit service model" in capsys.readouterr().err

    def test_serve_tune_requires_target(self, capsys):
        assert main(["serve", "catdet", "resnet50", "resnet10a",
                     *SERVE_TINY, "--tune"]) == 2
        assert "--slo-p99-ms" in capsys.readouterr().err

    def test_serve_tune_picks_policy(self, tmp_path, capsys):
        argv = ["serve", "catdet", "resnet50", "resnet10a", *SERVE_TINY,
                "--rate", "3", "--overhead-ms", "50", "--gops", "1000000",
                "--tune", "--slo-p99-ms", "2000",
                "--batch-grid", "1,8", "--wait-grid", "0",
                "--cache-dir", str(tmp_path)]
        assert main(argv) == 0
        out = capsys.readouterr().out
        assert "Policy sweep" in out and "best policy" in out
        # Re-tune: every grid point must come back from the cache.
        assert main(argv) == 0
        assert "0 miss(es)" in capsys.readouterr().out

    def test_loadgen_bursty_pattern(self, tmp_path, capsys):
        out_file = tmp_path / "bursty.json"
        assert main(["loadgen", *SERVE_TINY, "--pattern", "bursty",
                     "--out", str(out_file)]) == 0
        assert "bursty load" in capsys.readouterr().out
        assert json.loads(out_file.read_text())["load"]["pattern"] == "bursty"


class TestParser:
    def test_unknown_command_exits(self):
        with pytest.raises(SystemExit):
            main(["frobnicate"])

    def test_negative_workers_rejected(self):
        with pytest.raises(SystemExit):
            main(["table2", "--workers", "-1"])


class TestClusterCommands:
    def _spec_file(self, tmp_path, capsys):
        main(["spec", "--example"])
        payload = json.loads(capsys.readouterr().out)
        payload["dataset"]["num_sequences"] = 1
        payload["dataset"]["frames_per_sequence"] = 10
        path = tmp_path / "spec.json"
        path.write_text(json.dumps(payload))
        return path

    def test_dispatch_no_wait_then_worker_then_cached_wait(self, tmp_path, capsys):
        spec_file = self._spec_file(tmp_path, capsys)
        queue_dir = str(tmp_path / "queue")
        assert main(["dispatch", str(spec_file), "--queue-dir", queue_dir,
                     "--no-wait"]) == 0
        captured = capsys.readouterr()
        assert len(captured.out.strip().splitlines()) == 1  # one task id
        assert "1 pending" in captured.err

        # Drain with the worker command, then re-dispatch: pure cache hits,
        # so --wait returns the table without any worker running.
        assert main(["worker", queue_dir, "--max-tasks", "1",
                     "--idle-timeout", "30", "--poll", "0.02"]) == 0
        assert "1 task(s) done" in capsys.readouterr().err
        assert main(["dispatch", str(spec_file), "--queue-dir", queue_dir,
                     "--wait", "--timeout", "30", "--progress"]) == 0
        out = capsys.readouterr().out
        assert "1 spec(s)" in out and "CaTDet" in out

    def test_cache_stats_ls_prune(self, tmp_path, capsys):
        cache_dir = str(tmp_path / "cache")
        argv = ["run", "single", "resnet10a", "--sequences", "1",
                "--frames", "10", "--cache-dir", cache_dir]
        assert main(argv) == 0
        capsys.readouterr()

        assert main(["cache", "stats", "--cache-dir", cache_dir]) == 0
        out = capsys.readouterr().out
        assert "entries: 1" in out

        assert main(["cache", "ls", "--cache-dir", cache_dir]) == 0
        out = capsys.readouterr().out
        assert "1 cached result(s)" in out and "kitti" in out

        assert main(["cache", "prune", "--older-than", "1h",
                     "--cache-dir", cache_dir]) == 0
        assert "pruned 0" in capsys.readouterr().out
        assert main(["cache", "prune", "--older-than", "0s",
                     "--cache-dir", cache_dir]) == 0
        assert "pruned 1" in capsys.readouterr().out
        assert main(["cache", "stats", "--cache-dir", cache_dir]) == 0
        assert "entries: 0" in capsys.readouterr().out

    def test_cache_requires_directory(self, capsys, monkeypatch):
        monkeypatch.delenv("REPRO_CACHE_DIR", raising=False)
        assert main(["cache", "stats"]) == 2
        assert "cache directory" in capsys.readouterr().err

    def test_progress_flag_reports_on_stderr(self, capsys):
        argv = ["run", "single", "resnet10a", "--sequences", "2",
                "--frames", "10", "--progress"]
        assert main(argv) == 0
        err = capsys.readouterr().err
        assert "[progress] 1/2" in err and "[progress] 2/2" in err


SERVE_GATE = [
    "serve", "catdet", "resnet50", "resnet10a",
    "--streams", "2", "--frames", "10", "--sequences", "1",
    "--seq-frames", "10",
]


class TestServeSloGate:
    def test_gate_passes_with_generous_target(self, capsys):
        assert main([*SERVE_GATE, "--slo-p99-ms", "100000"]) == 0
        assert "SLO PASS" in capsys.readouterr().out

    def test_gate_fails_on_p99_miss(self, capsys):
        assert main([*SERVE_GATE, "--slo-p99-ms", "0.001"]) == 1
        err = capsys.readouterr().err
        assert "SLO FAIL" in err and "p99" in err

    def test_gate_fails_on_shed_frames(self, capsys):
        # A 1-slot queue under 4 bursty streams must shed; even a huge
        # p99 target cannot make dropped load pass the gate.
        argv = [
            "serve", "catdet", "resnet50", "resnet10a",
            "--streams", "4", "--frames", "10", "--sequences", "1",
            "--seq-frames", "10", "--rate", "1000", "--queue-capacity", "1",
            "--slo-p99-ms", "100000000",
        ]
        assert main(argv) == 1
        err = capsys.readouterr().err
        assert "SLO FAIL" in err and "shed" in err

    def test_gate_fails_on_queue_wait_bound(self, capsys):
        argv = [*SERVE_GATE, "--slo-p99-ms", "100000",
                "--slo-wait-p95-ms", "0.0001"]
        assert main(argv) == 1
        assert "queue-wait p95" in capsys.readouterr().err

    def test_tune_accepts_wait_bound(self, capsys):
        argv = [*SERVE_GATE, "--tune", "--slo-p99-ms", "100000",
                "--slo-wait-p95-ms", "100000",
                "--batch-grid", "1,2", "--wait-grid", "0"]
        assert main(argv) == 0
        out = capsys.readouterr().out
        assert "queue-wait p95 <= 100000 ms" in out and "qwait p95" in out


class TestServeSink:
    def test_jsonl_sink_records_balance(self, tmp_path, capsys):
        path = tmp_path / "frames.jsonl"
        assert main([*SERVE_GATE, "--sink", f"jsonl:{path}"]) == 0
        capsys.readouterr()
        records = [json.loads(line) for line in path.read_text().splitlines()]
        kinds = {}
        for record in records:
            kinds[record["record"]] = kinds.get(record["record"], 0) + 1
        assert kinds["serve.summary"] == 1
        (summary,) = [r for r in records if r["record"] == "serve.summary"]
        # Conservation: every offered frame is served or shed.
        assert summary["frames_offered"] == (
            summary["frames_served"] + summary["frames_shed"]
        )
        assert kinds["serve.frame"] == summary["frames_served"]
        assert kinds.get("serve.shed", 0) == summary["frames_shed"]

    def test_table_sink_prints_summary(self, capsys):
        assert main([*SERVE_GATE, "--sink", "table"]) == 0
        out = capsys.readouterr().out
        assert "sink summary" in out and "serve.frame" in out

    def test_bad_sink_spec_is_a_usage_error(self, capsys):
        assert main([*SERVE_GATE, "--sink", "bogus:x"]) == 2
        assert "unknown sink" in capsys.readouterr().err


class TestQueryCommand:
    QUERY_ARGS = [
        "query", "catdet", "resnet50", "resnet10a",
        "--sequences", "2", "--seq-frames", "30",
        "--streams", "2", "--frames", "30", "--no-cache",
    ]

    def _spec_file(self, tmp_path, capsys):
        assert main(["query", "--example"]) == 0
        text = capsys.readouterr().out
        path = tmp_path / "query.json"
        path.write_text(text)
        return str(path)

    def test_example_round_trips(self, capsys):
        from repro.query import QuerySpec

        assert main(["query", "--example"]) == 0
        spec = QuerySpec.from_json(capsys.readouterr().out)
        assert spec.name == "car-enters-and-persists"

    def test_spec_required(self, capsys):
        assert main(["query", "catdet", "resnet50", "resnet10a"]) == 2
        assert "--spec" in capsys.readouterr().err

    def test_bad_spec_file(self, tmp_path, capsys):
        path = tmp_path / "bad.json"
        path.write_text('{"format": "nope"}')
        assert main(["query", "catdet", "resnet50", "resnet10a",
                     "--spec", str(path)]) == 2
        assert "bad query spec" in capsys.readouterr().err

    def test_offline_and_serve_print_identical_tables(
        self, tmp_path, capsys
    ):
        spec_file = self._spec_file(tmp_path, capsys)
        assert main([*self.QUERY_ARGS, "--spec", spec_file]) == 0
        offline = capsys.readouterr().out
        assert main([*self.QUERY_ARGS, "--spec", spec_file, "--serve"]) == 0
        served = capsys.readouterr().out
        strip = lambda text: "\n".join(
            line for line in text.splitlines() if not line.startswith("query:")
        )
        assert strip(offline) == strip(served)
        assert "window(s) over 2 stream(s)" in offline

    def test_out_file_and_sink(self, tmp_path, capsys):
        spec_file = self._spec_file(tmp_path, capsys)
        out = tmp_path / "report.json"
        sink = tmp_path / "events.jsonl"
        assert main([*self.QUERY_ARGS, "--spec", spec_file, "--serve",
                     "--out", str(out), "--sink", f"jsonl:{sink}"]) == 0
        capsys.readouterr()
        report = json.loads(out.read_text())
        total = sum(len(f["windows"]) for f in report["streams"].values())
        records = [json.loads(line) for line in sink.read_text().splitlines()]
        window_records = [r for r in records if r["record"] == "query.window"]
        assert len(window_records) == total
        (summary,) = [r for r in records if r["record"] == "serve.summary"]
        assert summary["query_events"] == total


class TestStatus:
    def test_status_after_dispatch_and_drain(self, tmp_path, capsys):
        spec = ExperimentSpec.from_dict(json.loads(
            _example_spec_json(capsys)
        ))
        payload = spec.to_dict()
        payload["dataset"]["num_sequences"] = 1
        payload["dataset"]["frames_per_sequence"] = 10
        spec_file = tmp_path / "spec.json"
        spec_file.write_text(json.dumps(payload))
        queue_dir = str(tmp_path / "queue")
        assert main(["dispatch", str(spec_file), "--queue-dir", queue_dir,
                     "--no-wait"]) == 0
        capsys.readouterr()

        assert main(["status", queue_dir]) == 0
        out = capsys.readouterr().out
        assert "pending" in out and "is anything running?" in out

        assert main(["worker", queue_dir, "--max-tasks", "1",
                     "--idle-timeout", "30", "--poll", "0.02"]) == 0
        capsys.readouterr()

        assert main(["status", queue_dir, "--json"]) == 0
        status = json.loads(capsys.readouterr().out)
        assert status["counts"]["done"] == 1
        assert status["counts"]["dead"] == 0
        assert status["counts"]["pending"] == 0

    def test_status_on_missing_queue_is_empty_not_crash(self, tmp_path, capsys):
        assert main(["status", str(tmp_path / "nowhere")]) == 0
        assert "pending" in capsys.readouterr().out


TINY_FLEET = [
    "fleet", "run", "single", "resnet10a",
    "--streams", "2", "--frames", "10", "--rate", "5",
    "--devices", "edge", "--replicas", "2",
]


class TestFleet:
    def test_run_report_roundtrip_and_gate(self, tmp_path, capsys):
        report_file = tmp_path / "fleet.json"
        argv = [*TINY_FLEET, "--report-out", str(report_file),
                "--slo-p99-ms", "5000"]
        assert main(argv) == 0
        out = capsys.readouterr().out
        assert "Fleet report" in out and "SLO PASS" in out
        assert main(["fleet", "report", str(report_file),
                     "--slo-p99-ms", "5000"]) == 0
        out = capsys.readouterr().out
        assert "Fleet report" in out and "SLO PASS" in out
        # An unmeetable target fails the same saved report.
        assert main(["fleet", "report", str(report_file),
                     "--slo-p99-ms", "0.001"]) == 1

    def test_run_publishes_fleet_health(self, tmp_path, capsys):
        status_dir = tmp_path / "ops"
        assert main([*TINY_FLEET, "--status-dir", str(status_dir)]) == 0
        capsys.readouterr()
        assert main(["status", str(status_dir)]) == 0
        out = capsys.readouterr().out
        assert "fleets" in out and "peak replicas" in out

    def test_autoscale_flags_and_sink(self, tmp_path, capsys):
        sink_file = tmp_path / "records.jsonl"
        argv = [*TINY_FLEET, "--replicas", "1", "--autoscale",
                "--max-replicas", "2", "--interval-s", "0.5",
                "--sink", f"jsonl:{sink_file}"]
        assert main(argv) == 0
        records = [json.loads(line) for line in
                   sink_file.read_text().splitlines()]
        kinds = {r.get("record") for r in records}
        assert "fleet.summary" in kinds

    def test_tune_picks_and_caches(self, tmp_path, capsys):
        argv = ["fleet", "tune", "single", "resnet10a",
                "--streams", "2", "--frames", "10", "--rate", "5",
                "--devices", "edge", "--slo-p99-ms", "5000",
                "--replica-grid", "1,2", "--batch-grid", "2,4",
                "--cache-dir", str(tmp_path)]
        assert main(argv) == 0
        out = capsys.readouterr().out
        assert "Fleet sweep" in out and "best fleet:" in out
        assert "4 miss(es)" in out
        assert main(argv) == 0
        assert "4 hit(s), 0 miss(es)" in capsys.readouterr().out

    def test_unknown_device_is_a_usage_error(self, capsys):
        argv = ["fleet", "run", "single", "resnet10a", "--devices", "warp"]
        assert main(argv) == 2
        assert "error" in capsys.readouterr().err

    def test_rate_per_stream_flag(self, capsys):
        assert main(["loadgen", "--pattern", "uniform", "--streams", "3",
                     "--frames", "5", "--rate-per-stream", "2,10"]) == 0
        out = capsys.readouterr().out
        assert "~14.0 frames/s" in out


def _example_spec_json(capsys):
    assert main(["spec", "--example"]) == 0
    return capsys.readouterr().out
