"""Smoke tests for the ``python -m repro`` command-line interface."""

import json

import pytest

from repro.__main__ import main
from repro.api.spec import ExperimentSpec


TINY_RUN = ["--sequences", "1", "--frames", "10"]


class TestModels:
    def test_lists_zoo(self, capsys):
        assert main(["models"]) == 0
        out = capsys.readouterr().out
        assert "resnet50" in out and "resnet10a" in out


class TestRun:
    def test_catdet(self, capsys):
        assert main(["run", "catdet", "resnet50", "resnet10a", *TINY_RUN]) == 0
        out = capsys.readouterr().out
        assert "CaTDet" in out
        assert "mAP=" in out and "ops/frame" in out

    def test_new_system_config_flags(self, capsys):
        argv = [
            "run", "cascade", "resnet50", "resnet10a", *TINY_RUN,
            "--no-detailed-ops", "--input-scale", "0.72", "--margin", "10",
        ]
        assert main(argv) == 0
        assert "Cascaded" in capsys.readouterr().out

    def test_keyframe_kind_available(self, capsys):
        assert main(["run", "keyframe", "resnet10a", *TINY_RUN]) == 0
        assert "keyframe" in capsys.readouterr().out

    def test_run_uses_cache(self, tmp_path, capsys):
        argv = ["run", "single", "resnet10a", *TINY_RUN,
                "--cache-dir", str(tmp_path)]
        assert main(argv) == 0
        assert "1 miss(es)" in capsys.readouterr().out
        assert main(argv) == 0
        assert "1 hit(s)" in capsys.readouterr().out

    def test_no_cache_flag(self, tmp_path, capsys):
        argv = ["run", "single", "resnet10a", *TINY_RUN,
                "--cache-dir", str(tmp_path), "--no-cache"]
        assert main(argv) == 0
        assert "[cache]" not in capsys.readouterr().out
        assert list(tmp_path.iterdir()) == []


class TestTable2:
    def test_structure(self, capsys):
        assert main(["table2", "--sequences", "1", "--frames", "10"]) == 0
        out = capsys.readouterr().out
        assert "Table 2" in out
        # All five headline systems appear.
        assert out.count("CaTDet") == 2
        assert out.count("Cascaded") == 2
        assert "Faster R-CNN" in out


class TestSweep:
    def test_tiny_grid(self, capsys):
        argv = ["sweep", "--models", "resnet10a", "--c-values", "0.1,0.4",
                "--sequences", "1", "--frames", "10"]
        assert main(argv) == 0
        out = capsys.readouterr().out
        assert "C-thresh sweep" in out
        # 1 model x {tracker, no tracker} x 2 C values = 4 rows.
        assert out.count("resnet10a") == 4


class TestSpecCommand:
    def test_example_is_valid_spec(self, capsys):
        assert main(["spec", "--example"]) == 0
        spec = ExperimentSpec.from_json(capsys.readouterr().out)
        assert spec.system.kind == "catdet"

    def test_missing_file_errors(self, capsys):
        assert main(["spec"]) == 2
        assert "spec file" in capsys.readouterr().err

    def _tiny_spec_file(self, tmp_path, capsys, as_list=False):
        main(["spec", "--example"])
        payload = json.loads(capsys.readouterr().out)
        payload["dataset"]["num_sequences"] = 1
        payload["dataset"]["frames_per_sequence"] = 10
        path = tmp_path / "spec.json"
        path.write_text(json.dumps([payload, payload] if as_list else payload))
        return path

    def test_single_spec_runs(self, tmp_path, capsys):
        path = self._tiny_spec_file(tmp_path, capsys)
        assert main(["spec", str(path)]) == 0
        out = capsys.readouterr().out
        assert "1 spec(s)" in out and "CaTDet" in out

    def test_grid_dedupes_and_caches(self, tmp_path, capsys):
        path = self._tiny_spec_file(tmp_path, capsys, as_list=True)
        cache = tmp_path / "cache"
        assert main(["spec", str(path), "--cache-dir", str(cache)]) == 0
        out = capsys.readouterr().out
        assert "2 spec(s)" in out
        assert "1 miss(es)" in out  # two identical specs -> one computation
        assert main(["spec", str(path), "--cache-dir", str(cache)]) == 0
        assert "1 hit(s)" in capsys.readouterr().out

    def test_dry_run_prints_fingerprints(self, tmp_path, capsys):
        path = self._tiny_spec_file(tmp_path, capsys)
        assert main(["spec", str(path), "--dry-run"]) == 0
        line = capsys.readouterr().out.strip()
        fingerprint = line.split()[0]
        assert len(fingerprint) == 64
        assert int(fingerprint, 16) >= 0


class TestParser:
    def test_unknown_command_exits(self):
        with pytest.raises(SystemExit):
            main(["frobnicate"])

    def test_negative_workers_rejected(self):
        with pytest.raises(SystemExit):
            main(["table2", "--workers", "-1"])
