"""Perf-trajectory harness: BENCH_<n>.json bookkeeping and the CLI gate.

The heavy measurement paths run in ``benchmarks/``; here we cover the
bookkeeping (file indexing, payload shape, regression comparison) plus the
``repro bench`` command wiring with a stubbed measurement.
"""

import json
from pathlib import Path

import numpy as np
import pytest

import repro.bench as bench
from repro.__main__ import main


class TestTrajectoryFiles:
    def test_write_assigns_next_index(self, tmp_path):
        p1 = bench.write_bench(tmp_path, {"schema": 1})
        assert p1.name == "BENCH_1.json"
        p2 = bench.write_bench(tmp_path, {"schema": 1})
        assert p2.name == "BENCH_2.json"
        assert json.loads(p2.read_text())["index"] == 2

    def test_list_sorts_and_ignores_foreign_files(self, tmp_path):
        for name in ("BENCH_10.json", "BENCH_2.json", "BENCH_x.json", "bench_3.json"):
            (tmp_path / name).write_text("{}")
        assert [i for i, _ in bench.list_bench_files(tmp_path)] == [2, 10]

    def test_latest_parses_highest_index(self, tmp_path):
        bench.write_bench(tmp_path, {"marker": "a"})
        bench.write_bench(tmp_path, {"marker": "b"})
        index, payload = bench.latest_bench(tmp_path)
        assert index == 2
        assert payload["marker"] == "b"

    def test_latest_none_when_empty(self, tmp_path):
        assert bench.latest_bench(tmp_path) is None


def _payload(catdet=3.0, sort=2.5):
    return {
        "kernels": {
            "tracker_catdet": {"speedup": catdet},
            "tracker_sort": {"speedup": sort},
        }
    }


class TestRegressionCheck:
    def test_within_tolerance_passes(self):
        assert bench.check_regression(_payload(2.5), _payload(3.0), tolerance=0.2) == []

    def test_beyond_tolerance_fails_with_metric_name(self):
        failures = bench.check_regression(_payload(2.0), _payload(3.0), tolerance=0.2)
        assert len(failures) == 1
        assert "tracker_catdet" in failures[0]

    def test_improvement_passes(self):
        assert bench.check_regression(_payload(9.9), _payload(3.0)) == []

    def test_missing_metric_skipped(self):
        assert bench.check_regression({"kernels": {}}, _payload()) == []
        assert bench.check_regression(_payload(), {"kernels": {}}) == []

    def test_tune_sweep_ratio_is_gated(self):
        assert "tune_sweep.speedup" in bench.GATED_METRICS
        base = {"tune_sweep": {"speedup": 5.0}}
        slower = {"tune_sweep": {"speedup": 3.0}}
        failures = bench.check_regression(slower, base, tolerance=0.2)
        assert len(failures) == 1
        assert "tune_sweep" in failures[0]
        # Baselines predating the metric never gate it.
        assert bench.check_regression(slower, _payload()) == []


class TestKernelBench:
    def test_tiny_run_has_all_kernels_and_positive_rates(self):
        kernels = bench.bench_kernels(num_tracks=4, num_frames=3, repeats=1)
        assert set(kernels) == {"tracker_catdet", "tracker_sort", "nms", "merge"}
        for entry in kernels.values():
            assert entry["speedup"] > 0
            assert all(v > 0 for k, v in entry.items() if k.endswith(("_fps", "_cps")))

    def test_tracker_frames_deterministic(self):
        a = bench._tracker_frames(4, 6, seed=3)
        b = bench._tracker_frames(4, 6, seed=3)
        for fa, fb in zip(a, b):
            np.testing.assert_array_equal(fa.boxes, fb.boxes)
            np.testing.assert_array_equal(fa.scores, fb.scores)


class TestBenchCommand:
    @pytest.fixture
    def stubbed(self, monkeypatch):
        def fake_run_bench(quick=False, num_tracks=60, on_progress=None):
            return {
                "schema": 1,
                "quick": quick,
                "systems": {"single": {"fps": 100.0, "frames": 10, "seconds": 0.1}},
                "kernels": {
                    "tracker_catdet": {"speedup": 2.5},
                    "tracker_sort": {"speedup": 2.2},
                },
            }

        monkeypatch.setattr(bench, "run_bench", fake_run_bench)

    def test_writes_next_entry(self, stubbed, tmp_path, capsys):
        assert main(["bench", "--quick", "--output-dir", str(tmp_path)]) == 0
        assert (tmp_path / "BENCH_1.json").exists()
        assert "tracker_catdet" in capsys.readouterr().out

    def test_no_write_leaves_directory_empty(self, stubbed, tmp_path):
        assert main(["bench", "--no-write", "--output-dir", str(tmp_path)]) == 0
        assert bench.list_bench_files(tmp_path) == []

    def test_check_gates_against_pre_run_baseline(self, stubbed, tmp_path, capsys):
        bench.write_bench(tmp_path, _payload(catdet=2.4, sort=2.0))
        assert main(["bench", "--check", "--output-dir", str(tmp_path)]) == 0
        # The new entry was still written, with the next index.
        assert (tmp_path / "BENCH_2.json").exists()
        assert "within" in capsys.readouterr().out

    def test_check_fails_on_regression(self, stubbed, tmp_path, capsys):
        bench.write_bench(tmp_path, _payload(catdet=9.0))
        assert main(["bench", "--check", "--output-dir", str(tmp_path)]) == 1
        assert "REGRESSION" in capsys.readouterr().err

    def test_check_without_baseline_passes(self, stubbed, tmp_path):
        assert main(["bench", "--check", "--no-write", "--output-dir", str(tmp_path)]) == 0
