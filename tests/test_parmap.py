"""Deterministic process-pool map tests (:mod:`repro.utils.parmap`)."""

import pytest

from repro.engine.scheduler import effective_cpu_count
from repro.utils.parmap import parallel_map, resolve_workers


def _square(x):
    return x * x


def _maybe_fail(x):
    if x == 3:
        raise RuntimeError("boom at 3")
    return x


class TestResolveWorkers:
    def test_none_and_one_mean_serial(self):
        assert resolve_workers(None, 10) == 1
        assert resolve_workers(1, 10) == 1

    def test_zero_means_one_per_core(self):
        assert resolve_workers(0, 1000) == effective_cpu_count()

    def test_clamped_to_items(self):
        assert resolve_workers(8, 3) == 3
        assert resolve_workers(8, 0) == 1

    def test_negative_rejected(self):
        with pytest.raises(ValueError, match="workers"):
            resolve_workers(-1, 4)


class TestParallelMap:
    def test_serial_matches_comprehension(self):
        items = list(range(7))
        assert parallel_map(_square, items) == [x * x for x in items]

    def test_parallel_results_in_input_order(self):
        items = list(range(9))
        out = parallel_map(_square, items, workers=2)
        assert out == [x * x for x in items]

    def test_serial_progress_in_input_order(self):
        seen = []
        parallel_map(
            _square,
            [4, 5, 6],
            labels=["a", "b", "c"],
            on_progress=lambda done, total, label: seen.append(
                (done, total, label)
            ),
        )
        assert seen == [(1, 3, "a"), (2, 3, "b"), (3, 3, "c")]

    def test_parallel_progress_is_dense_and_complete(self):
        seen = []
        parallel_map(
            _square,
            list(range(6)),
            workers=2,
            labels=[f"p{i}" for i in range(6)],
            on_progress=lambda done, total, label: seen.append(
                (done, total, label)
            ),
        )
        assert [d for d, _, _ in seen] == [1, 2, 3, 4, 5, 6]
        assert {label for _, _, label in seen} == {f"p{i}" for i in range(6)}

    def test_label_length_mismatch_rejected(self):
        with pytest.raises(ValueError, match="labels"):
            parallel_map(_square, [1, 2], labels=["only-one"])

    def test_worker_exception_propagates(self):
        with pytest.raises(RuntimeError, match="boom at 3"):
            parallel_map(_maybe_fail, list(range(6)), workers=2)

    def test_serial_exception_propagates(self):
        with pytest.raises(RuntimeError, match="boom at 3"):
            parallel_map(_maybe_fail, list(range(6)))
