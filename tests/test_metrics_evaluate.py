"""Unit + integration tests for dataset-level evaluation."""

import numpy as np
import pytest

from repro.datasets.types import ClassSpec, Dataset, ObjectTrack, Sequence
from repro.detections import Detections
from repro.metrics.curves import precision_recall_delay_curves
from repro.metrics.evaluate import evaluate_dataset
from repro.metrics.kitti_eval import EASY, HARD, MODERATE, care_mask


def _perfect_world():
    """One sequence, one large unoccluded object, 5 frames."""
    boxes = np.stack([np.array([100.0, 100.0, 200.0, 180.0])] * 5)
    track = ObjectTrack(0, 0, 0, boxes, np.zeros(5), np.zeros(5))
    seq = Sequence("s", 400, 300, 5, 10.0, tracks=[track])
    return Dataset("d", (ClassSpec("Car", 0, 0.7),), [seq])


def _perfect_detections(dataset, score=0.9):
    out = {}
    for seq in dataset.sequences:
        frames = []
        for f in range(seq.num_frames):
            ann = seq.annotations(f)
            frames.append(
                Detections(ann.boxes, np.full(len(ann), score), ann.labels)
            )
        out[seq.name] = frames
    return out


class TestEvaluateDataset:
    def test_perfect_detector_perfect_scores(self):
        ds = _perfect_world()
        res = evaluate_dataset(ds, _perfect_detections(ds), HARD)
        assert res.mean_ap() == pytest.approx(1.0)
        assert res.mean_delay(0.8) == 0.0

    def test_missing_sequence_raises(self):
        ds = _perfect_world()
        with pytest.raises(KeyError, match="missing sequence"):
            evaluate_dataset(ds, {}, HARD)

    def test_wrong_frame_count_raises(self):
        ds = _perfect_world()
        with pytest.raises(ValueError, match="frames"):
            evaluate_dataset(ds, {"s": [Detections.empty()]}, HARD)

    def test_blind_detector_zero_ap_max_delay(self):
        ds = _perfect_world()
        results = {"s": [Detections.empty()] * 5}
        res = evaluate_dataset(ds, results, HARD)
        assert res.mean_ap() == 0.0
        assert res.mean_delay(0.8) == 5.0  # undetected = full track length

    def test_late_detection_delay(self):
        ds = _perfect_world()
        perfect = _perfect_detections(ds)["s"]
        results = {"s": [Detections.empty(), Detections.empty()] + perfect[2:]}
        res = evaluate_dataset(ds, results, HARD)
        assert res.mean_delay(0.8) == 2.0

    def test_sparse_labels_restrict_evaluation(self):
        ds = _perfect_world()
        ds.labeled_frames = {"s": [2]}
        # Detections only on frame 2; other frames empty — AP unaffected.
        perfect = _perfect_detections(ds)["s"]
        results = {"s": [Detections.empty()] * 2 + [perfect[2]] + [Detections.empty()] * 2}
        res = evaluate_dataset(ds, results, HARD, with_delay=False)
        assert res.mean_ap() == pytest.approx(1.0)

    def test_class_eval_lookup(self):
        ds = _perfect_world()
        res = evaluate_dataset(ds, _perfect_detections(ds), HARD)
        assert res.class_eval("Car").num_gt == 5
        with pytest.raises(KeyError):
            res.class_eval("Plane")

    def test_summary_keys(self):
        ds = _perfect_world()
        res = evaluate_dataset(ds, _perfect_detections(ds), HARD)
        summary = res.summary()
        assert "mAP" in summary and "AP[Car]" in summary and "mD@0.8" in summary


class TestDifficultyFilters:
    def test_care_mask_ordering(self, kitti_sequence):
        """Easy ⊆ Moderate ⊆ Hard."""
        for frame in range(0, 40, 7):
            ann = kitti_sequence.annotations(frame)
            easy = care_mask(ann, EASY)
            mod = care_mask(ann, MODERATE)
            hard = care_mask(ann, HARD)
            assert np.all(~easy | mod)   # easy implies moderate
            assert np.all(~mod | hard)   # moderate implies hard

    def test_height_gate(self):
        from repro.datasets.types import FrameAnnotations

        ann = FrameAnnotations(
            frame=0,
            boxes=np.array([[0, 0, 50, 20], [0, 0, 50, 60]]),
            labels=np.zeros(2, dtype=int),
            track_ids=np.arange(2),
            occlusion=np.zeros(2),
            truncation=np.zeros(2),
        )
        assert care_mask(ann, HARD).tolist() == [False, True]

    def test_occlusion_gate(self):
        from repro.datasets.types import FrameAnnotations

        ann = FrameAnnotations(
            frame=0,
            boxes=np.tile(np.array([[0.0, 0.0, 50.0, 60.0]]), (3, 1)),
            labels=np.zeros(3, dtype=int),
            track_ids=np.arange(3),
            occlusion=np.array([0.1, 0.6, 0.9]),
            truncation=np.zeros(3),
        )
        assert care_mask(ann, EASY).tolist() == [True, False, False]
        assert care_mask(ann, MODERATE).tolist() == [True, False, False]
        assert care_mask(ann, HARD).tolist() == [True, True, False]


class TestCurves:
    def test_monotone_recall_vs_threshold(self):
        ds = _perfect_world()
        res = evaluate_dataset(ds, _perfect_detections(ds), HARD)
        points = precision_recall_delay_curves(res.class_eval("Car"), num_points=8)
        recalls = [p.recall for p in points]
        assert recalls == sorted(recalls, reverse=True)

    def test_empty_class(self):
        ds = _perfect_world()
        results = {"s": [Detections.empty()] * 5}
        res = evaluate_dataset(ds, results, HARD)
        assert precision_recall_delay_curves(res.class_eval("Car")) == []

    def test_num_points_validation(self):
        ds = _perfect_world()
        res = evaluate_dataset(ds, _perfect_detections(ds), HARD)
        with pytest.raises(ValueError, match="num_points"):
            precision_recall_delay_curves(res.class_eval("Car"), num_points=1)
