"""Unit tests for the greedy GPU box-merging heuristic (Appendix I)."""

import numpy as np
import pytest

from repro.boxes.box import area
from repro.boxes.merge import MergeCostModel, greedy_merge_boxes


class TestMergeCostModel:
    def test_region_time_linear(self):
        m = MergeCostModel(alpha=1e-6, base_area=100.0)
        assert m.region_time(0.0) == pytest.approx(1e-4)
        assert m.region_time(900.0) == pytest.approx(1e-6 * 1000)

    def test_total_time(self):
        m = MergeCostModel(alpha=1.0, base_area=10.0)
        boxes = np.array([[0, 0, 2, 2], [0, 0, 3, 3]])  # areas 4 and 9
        assert m.total_time(boxes) == pytest.approx(4 + 10 + 9 + 10)

    def test_invalid_params(self):
        with pytest.raises(ValueError, match="alpha"):
            MergeCostModel(alpha=0.0)
        with pytest.raises(ValueError, match="base_area"):
            MergeCostModel(base_area=-1.0)
        with pytest.raises(ValueError, match="region_area"):
            MergeCostModel().region_time(-5.0)


class TestGreedyMerge:
    def test_adjacent_small_boxes_merge(self):
        # Two tiny nearby boxes: merged rectangle saves one launch overhead.
        model = MergeCostModel(alpha=1.0, base_area=1000.0)
        boxes = np.array([[0, 0, 10, 10], [12, 0, 22, 10]])
        merged, assignment = greedy_merge_boxes(boxes, model)
        assert merged.shape[0] == 1
        assert assignment.tolist() == [0, 0]
        np.testing.assert_allclose(merged[0], [0, 0, 22, 10])

    def test_distant_boxes_stay_separate(self):
        # Overhead small relative to the empty area a merge would add.
        model = MergeCostModel(alpha=1.0, base_area=10.0)
        boxes = np.array([[0, 0, 10, 10], [500, 500, 510, 510]])
        merged, assignment = greedy_merge_boxes(boxes, model)
        assert merged.shape[0] == 2
        assert sorted(assignment.tolist()) == [0, 1]

    def test_merge_never_increases_estimated_time(self):
        rng = np.random.default_rng(11)
        model = MergeCostModel(alpha=1e-3, base_area=400 * 400)
        for _ in range(10):
            n = int(rng.integers(1, 12))
            xy = rng.random((n, 2)) * 1000
            wh = rng.random((n, 2)) * 100 + 5
            boxes = np.concatenate([xy, xy + wh], axis=1)
            merged, _ = greedy_merge_boxes(boxes, model)
            assert model.total_time(merged) <= model.total_time(boxes) + 1e-9

    def test_merged_boxes_cover_originals(self):
        rng = np.random.default_rng(5)
        model = MergeCostModel(alpha=1.0, base_area=5000.0)
        xy = rng.random((8, 2)) * 300
        boxes = np.concatenate([xy, xy + 20], axis=1)
        merged, assignment = greedy_merge_boxes(boxes, model)
        for i, box in enumerate(boxes):
            region = merged[assignment[i]]
            assert region[0] <= box[0] and region[1] <= box[1]
            assert region[2] >= box[2] and region[3] >= box[3]

    def test_empty_input(self):
        merged, assignment = greedy_merge_boxes(np.zeros((0, 4)))
        assert merged.shape == (0, 4)
        assert assignment.shape == (0,)

    def test_single_box_unchanged(self):
        boxes = np.array([[1.0, 2.0, 3.0, 4.0]])
        merged, assignment = greedy_merge_boxes(boxes)
        np.testing.assert_allclose(merged, boxes)
        assert assignment.tolist() == [0]
