"""Observability & live-ops: metrics, health snapshots, result sinks.

``repro.obs`` is a dependency-free leaf package — stdlib only, imported
by every other layer (engine, cluster, serve) and importing none of
them.  Three surfaces:

* :mod:`repro.obs.registry` — in-process metrics (``Counter`` /
  ``Gauge`` / fixed-bucket ``Histogram``) behind a thread-safe
  :class:`MetricsRegistry` whose ``snapshot()`` is plain JSON.
* :mod:`repro.obs.health` — atomic per-component health files next to a
  queue, read back by ``repro status`` (:mod:`repro.obs.status`).
* :mod:`repro.obs.sinks` — a tiny ``Sink`` interface (jsonl, summary
  table, null) so long runs stream records instead of accumulating.
"""

from repro.obs.health import (
    DEFAULT_STALE_AFTER,
    HEALTH_SUBDIR,
    HealthReporter,
    health_dir,
    read_health,
)
from repro.obs.registry import (
    DEFAULT_LATENCY_BUCKETS,
    DEFAULT_SIZE_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    default_registry,
    exponential_buckets,
    linear_buckets,
    resolve_registry,
    set_default_registry,
)
from repro.obs.sinks import (
    JsonlSink,
    MultiSink,
    NullSink,
    Sink,
    SummaryTableSink,
    as_sinks,
    make_sink,
)
from repro.obs.status import format_status, gather_status

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "default_registry",
    "set_default_registry",
    "resolve_registry",
    "linear_buckets",
    "exponential_buckets",
    "DEFAULT_LATENCY_BUCKETS",
    "DEFAULT_SIZE_BUCKETS",
    "HealthReporter",
    "read_health",
    "health_dir",
    "HEALTH_SUBDIR",
    "DEFAULT_STALE_AFTER",
    "Sink",
    "NullSink",
    "JsonlSink",
    "SummaryTableSink",
    "MultiSink",
    "make_sink",
    "as_sinks",
    "gather_status",
    "format_status",
]
