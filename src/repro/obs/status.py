"""Fleet status: one read-only view over a queue directory.

``repro status <queue-dir>`` is an operator's glance at a running
fleet: queue depth by state (pending / leased / done / dead), lease
ages, dead-letter reasons, and per-component health (from the
``health/`` files workers and servers refresh — see
:mod:`repro.obs.health`).

This module reads the queue's documented directory layout directly
(``tasks/ leases/ results/ dead/``, see :mod:`repro.cluster.queue`)
rather than importing the cluster package, so ``repro.obs`` stays a
leaf: every other layer may depend on it, it depends on nothing.
All reads are snapshot-style and race-tolerant — files appearing or
vanishing mid-scan are fine, status is an observation not a transaction.
"""

from __future__ import annotations

import json
import time
from pathlib import Path
from typing import Any, Dict, List, Optional, Union

from repro.obs.health import DEFAULT_STALE_AFTER, health_dir, read_health

#: Queue state directories, in display order (mirrors FileWorkQueue).
_QUEUE_DIRS = ("tasks", "leases", "results", "dead")
_STATE_NAMES = {"tasks": "pending", "leases": "leased", "results": "done", "dead": "dead"}


def _count(directory: Path) -> int:
    return sum(1 for _ in directory.glob("*.json")) if directory.is_dir() else 0


def _dead_letters(directory: Path, limit: int = 20) -> List[Dict[str, Any]]:
    out: List[Dict[str, Any]] = []
    if not directory.is_dir():
        return out
    for path in sorted(directory.glob("*.json"))[:limit]:
        try:
            with open(path, "r", encoding="utf-8") as fh:
                record = json.load(fh)
        except (OSError, json.JSONDecodeError):
            continue
        history = record.get("history") or []
        reason = str(history[-1]) if history else str(record.get("error", "?"))
        # First line only: dead-letter reasons are often full tracebacks.
        reason = reason.strip().splitlines()[-1] if reason.strip() else "?"
        out.append(
            {
                "id": record.get("id", path.stem),
                "attempts": record.get("attempts", len(history)),
                "reason": reason,
            }
        )
    return out


def _lease_ages(directory: Path, now: float) -> List[float]:
    ages = []
    if not directory.is_dir():
        return ages
    for path in directory.glob("*.json"):
        try:
            ages.append(max(0.0, now - path.stat().st_mtime))
        except OSError:
            continue
    return ages


def gather_status(
    queue_root: Union[str, Path],
    *,
    stale_after: float = DEFAULT_STALE_AFTER,
    now: Optional[float] = None,
) -> Dict[str, Any]:
    """Everything ``repro status`` shows, as one JSON-able dict."""
    root = Path(queue_root)
    now = time.time() if now is None else now
    counts = {
        _STATE_NAMES[name]: _count(root / name) for name in _QUEUE_DIRS
    }
    ages = _lease_ages(root / "leases", now)
    return {
        "queue": str(root),
        "counts": counts,
        "oldest_lease_age_seconds": max(ages) if ages else 0.0,
        "dead_letters": _dead_letters(root / "dead"),
        "components": read_health(health_dir(root), stale_after=stale_after, now=now),
    }


def _metric_total(metrics: Dict[str, Any], name: str) -> Optional[float]:
    """Sum of a counter/gauge's series inside a metrics snapshot."""
    metric = metrics.get(name)
    if not isinstance(metric, dict):
        return None
    return sum(s.get("value", 0) for s in metric.get("series", []))


def format_status(status: Dict[str, Any]) -> str:
    """Render a gathered status dict as the operator-facing report."""
    from repro.harness.tables import format_table

    parts: List[str] = []
    counts = status["counts"]
    parts.append(
        format_table(
            ["pending", "leased", "done", "dead", "oldest lease (s)"],
            [[
                counts["pending"],
                counts["leased"],
                counts["done"],
                counts["dead"],
                round(status["oldest_lease_age_seconds"], 1),
            ]],
            title=f"queue {status['queue']}",
        )
    )

    components = status.get("components", [])
    if components:
        rows = []
        for c in components:
            metrics = c.get("metrics", {})
            done = _metric_total(metrics, "worker_tasks_total")
            rows.append(
                [
                    c.get("component", "?"),
                    c.get("id", "?"),
                    c.get("host", "?"),
                    "stale" if c.get("stale") else "live",
                    round(c.get("uptime_seconds", 0.0), 1),
                    round(c.get("age_seconds", 0.0), 1),
                    c.get("in_flight") or "-",
                    int(done) if done is not None else "-",
                ]
            )
        parts.append(
            format_table(
                ["component", "id", "host", "state", "uptime (s)", "beat age (s)", "in flight", "tasks"],
                rows,
                title="components",
            )
        )
    else:
        parts.append("no component health files (is anything running?)")

    fleets = [c for c in components if c.get("component") == "fleet"]
    if fleets:
        rows = []
        for c in fleets:
            p99 = c.get("p99_ms")
            rows.append(
                [
                    c.get("id", "?"),
                    "stale" if c.get("stale") else "live",
                    c.get("replicas", "-"),
                    c.get("frames_served", "-"),
                    c.get("frames_shed", "-"),
                    c.get("scale_events", "-"),
                    round(float(p99), 1) if p99 is not None else "-",
                ]
            )
        parts.append(
            format_table(
                ["fleet", "state", "peak replicas", "served", "shed",
                 "scale events", "p99 (ms)"],
                rows,
                title="fleets",
            )
        )

    dead = status.get("dead_letters", [])
    if dead:
        parts.append(
            format_table(
                ["task", "attempts", "reason"],
                [[d["id"], d["attempts"], d["reason"][:80]] for d in dead],
                title="dead letters",
            )
        )
    return "\n\n".join(parts)
