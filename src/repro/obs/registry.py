"""Dependency-free metrics: counters, gauges, fixed-bucket histograms.

The registry is the one place run-time signals accumulate while a
component (engine, worker, server) is live — everything else in the
observability layer (health snapshots, ``repro status``, sinks) reads
*from* it.  Design constraints, in order:

* **zero-alloc hot path** — ``Counter.inc`` / ``Histogram.observe`` are
  a dict lookup, a bisect into a pre-computed bounds tuple and a few
  float adds under one lock; no objects are created after a label series
  has been touched once;
* **thread-safe** — a worker's heartbeat thread, the serving loop and a
  health reporter may all touch one registry concurrently.  Every metric
  of a registry shares the registry's single re-entrant lock, and
  :meth:`MetricsRegistry.snapshot` holds it across the whole walk, so a
  snapshot is internally consistent;
* **plain-dict snapshots** — ``snapshot()`` returns JSON-native types
  only (dicts, lists, str, int, float), so it round-trips through
  ``json.dumps``/``loads`` losslessly and can be embedded verbatim in
  health files, sink records and reports;
* **hermetic tests** — components default to the process-global registry
  (:func:`default_registry`) but accept an injected one, so tests never
  see each other's counts.

Labels are positional tuples of strings, declared once per metric
(``labels=("reason",)``) and passed frozen at call sites
(``drops.inc(labels=("shed_oldest",))``) — no per-call dict building.
"""

from __future__ import annotations

import math
import threading
from bisect import bisect_left
from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple

LabelValues = Tuple[str, ...]


def linear_buckets(start: float, width: float, count: int) -> Tuple[float, ...]:
    """``count`` upper bounds: start, start+width, ... (overflow implicit)."""
    if count < 1:
        raise ValueError(f"count must be >= 1, got {count}")
    if width <= 0:
        raise ValueError(f"width must be positive, got {width}")
    return tuple(start + width * i for i in range(count))


def exponential_buckets(start: float, factor: float, count: int) -> Tuple[float, ...]:
    """``count`` geometric upper bounds: start, start*factor, ..."""
    if count < 1:
        raise ValueError(f"count must be >= 1, got {count}")
    if start <= 0 or factor <= 1:
        raise ValueError(
            f"start must be positive and factor > 1, got {start}, {factor}"
        )
    return tuple(start * factor**i for i in range(count))


#: Default latency layout in seconds: ~1 ms to ~80 s, x1.6 per bucket.
DEFAULT_LATENCY_BUCKETS = exponential_buckets(0.001, 1.6, 25)

#: Default layout for small cardinal quantities (batch sizes, regions).
DEFAULT_SIZE_BUCKETS = (1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0, 128.0)


def _check_labels(values: Sequence[str], names: Tuple[str, ...], metric: str) -> None:
    if len(values) != len(names):
        raise ValueError(
            f"metric {metric!r} expects {len(names)} label value(s) "
            f"{names}, got {len(values)}: {tuple(values)}"
        )


class Metric:
    """Common shell: a name, a help string, declared label names."""

    kind = "metric"

    def __init__(
        self,
        name: str,
        help: str = "",
        labels: Sequence[str] = (),
        *,
        lock: Optional[threading.RLock] = None,
    ):
        self.name = name
        self.help = help
        self.label_names: Tuple[str, ...] = tuple(labels)
        self._lock = lock if lock is not None else threading.RLock()
        self._series: Dict[LabelValues, Any] = {}

    def labels_seen(self) -> List[LabelValues]:
        with self._lock:
            return sorted(self._series)

    def _snapshot_series(self) -> List[Dict[str, Any]]:
        raise NotImplementedError

    def snapshot(self) -> Dict[str, Any]:
        """This metric as plain JSON-native dicts (see module docs)."""
        with self._lock:
            out: Dict[str, Any] = {
                "type": self.kind,
                "help": self.help,
                "labels": list(self.label_names),
                "series": self._snapshot_series(),
            }
            return out


class Counter(Metric):
    """A monotonically increasing sum per label tuple."""

    kind = "counter"

    def inc(self, amount: float = 1, labels: LabelValues = ()) -> None:
        if amount < 0:
            raise ValueError(f"counters only go up, got {amount}")
        _check_labels(labels, self.label_names, self.name)
        with self._lock:
            self._series[labels] = self._series.get(labels, 0) + amount

    def value(self, labels: LabelValues = ()) -> float:
        with self._lock:
            return self._series.get(labels, 0)

    def total(self) -> float:
        """Sum across every label series."""
        with self._lock:
            return sum(self._series.values())

    def _snapshot_series(self) -> List[Dict[str, Any]]:
        return [
            {"labels": list(k), "value": v}
            for k, v in sorted(self._series.items())
        ]


class Gauge(Metric):
    """A point-in-time value per label tuple (set, inc, dec)."""

    kind = "gauge"

    def set(self, value: float, labels: LabelValues = ()) -> None:
        _check_labels(labels, self.label_names, self.name)
        with self._lock:
            self._series[labels] = value

    def inc(self, amount: float = 1, labels: LabelValues = ()) -> None:
        _check_labels(labels, self.label_names, self.name)
        with self._lock:
            self._series[labels] = self._series.get(labels, 0) + amount

    def dec(self, amount: float = 1, labels: LabelValues = ()) -> None:
        self.inc(-amount, labels)

    def value(self, labels: LabelValues = ()) -> float:
        with self._lock:
            return self._series.get(labels, 0)

    def _snapshot_series(self) -> List[Dict[str, Any]]:
        return [
            {"labels": list(k), "value": v}
            for k, v in sorted(self._series.items())
        ]


class _HistSeries:
    """One label tuple's accumulation: bucket counts + running moments."""

    __slots__ = ("counts", "count", "sum", "min", "max")

    def __init__(self, num_buckets: int):
        self.counts = [0] * num_buckets
        self.count = 0
        self.sum = 0.0
        self.min = math.inf
        self.max = -math.inf


class Histogram(Metric):
    """Fixed upper-bound buckets plus an implicit overflow bucket.

    ``bounds`` are strictly increasing *upper* edges; a sample lands in
    the first bucket whose bound is ``>= value`` (overflow past the last
    bound).  Alongside the counts, each series keeps exact ``count``,
    ``sum``, ``min`` and ``max``, so means are exact and quantile
    brackets are clamped to observed extremes.

    Quantiles follow numpy's default ``"linear"`` convention: the
    ``q``-th percentile interpolates between order statistics at
    positions ``floor(p)`` and ``ceil(p)`` where ``p = q/100 * (n-1)``.
    :meth:`quantile` returns a point estimate interpolated inside its
    bucket; :meth:`quantile_bracket` returns hard ``(lo, hi)`` bounds the
    exact ``numpy.percentile`` value provably lies in — the property the
    test suite pins.
    """

    kind = "histogram"

    def __init__(
        self,
        name: str,
        help: str = "",
        labels: Sequence[str] = (),
        *,
        buckets: Sequence[float] = DEFAULT_LATENCY_BUCKETS,
        lock: Optional[threading.RLock] = None,
    ):
        super().__init__(name, help, labels, lock=lock)
        bounds = tuple(float(b) for b in buckets)
        if not bounds:
            raise ValueError("a histogram needs at least one bucket bound")
        if any(b >= a for b, a in zip(bounds, bounds[1:])):
            raise ValueError(f"bucket bounds must strictly increase: {bounds}")
        self.bounds = bounds

    # ------------------------------------------------------------------ #
    # Hot path
    # ------------------------------------------------------------------ #

    def observe(self, value: float, labels: LabelValues = ()) -> None:
        with self._lock:
            series = self._series.get(labels)
            if series is None:
                _check_labels(labels, self.label_names, self.name)
                series = self._series[labels] = _HistSeries(len(self.bounds) + 1)
            series.counts[bisect_left(self.bounds, value)] += 1
            series.count += 1
            series.sum += value
            if value < series.min:
                series.min = value
            if value > series.max:
                series.max = value

    # ------------------------------------------------------------------ #
    # Reading
    # ------------------------------------------------------------------ #

    def count(self, labels: LabelValues = ()) -> int:
        with self._lock:
            series = self._series.get(labels)
            return series.count if series is not None else 0

    def sum(self, labels: LabelValues = ()) -> float:
        with self._lock:
            series = self._series.get(labels)
            return series.sum if series is not None else 0.0

    def mean(self, labels: LabelValues = ()) -> float:
        with self._lock:
            series = self._series.get(labels)
            if series is None or series.count == 0:
                return 0.0
            return series.sum / series.count

    def merge(self, other: "Histogram") -> None:
        """Fold ``other``'s series into this histogram (same bounds)."""
        if other.bounds != self.bounds:
            raise ValueError(
                f"cannot merge histograms with different bounds: "
                f"{self.bounds} vs {other.bounds}"
            )
        with other._lock:
            items = [(k, s) for k, s in other._series.items()]
        with self._lock:
            for key, theirs in items:
                mine = self._series.get(key)
                if mine is None:
                    mine = self._series[key] = _HistSeries(len(self.bounds) + 1)
                for i, c in enumerate(theirs.counts):
                    mine.counts[i] += c
                mine.count += theirs.count
                mine.sum += theirs.sum
                mine.min = min(mine.min, theirs.min)
                mine.max = max(mine.max, theirs.max)

    def _bucket_edges(self, index: int, series: _HistSeries) -> Tuple[float, float]:
        """(lower, upper) edges of bucket ``index`` clamped to observations."""
        lo = -math.inf if index == 0 else self.bounds[index - 1]
        hi = math.inf if index >= len(self.bounds) else self.bounds[index]
        return max(lo, series.min), min(hi, series.max)

    def _bucket_of_order_stat(self, series: _HistSeries, rank: int) -> int:
        """Bucket index holding the 0-based order statistic ``rank``."""
        remaining = rank + 1  # 1-based cumulative target
        for i, c in enumerate(series.counts):
            remaining -= c
            if remaining <= 0:
                return i
        return len(series.counts) - 1  # pragma: no cover - counts sum == count

    def quantile(self, q: float, labels: LabelValues = ()) -> float:
        """Point estimate of the ``q``-th percentile (0 when empty)."""
        if not 0 <= q <= 100:
            raise ValueError(f"q must be in [0, 100], got {q}")
        with self._lock:
            series = self._series.get(labels)
            if series is None or series.count == 0:
                return 0.0
            if series.count == 1:
                return series.min
            p = q / 100.0 * (series.count - 1)
            index = self._bucket_of_order_stat(series, int(math.floor(p)))
            lo, hi = self._bucket_edges(index, series)
            in_bucket = series.counts[index]
            if in_bucket == 0 or hi <= lo:  # pragma: no cover - defensive
                return lo
            if in_bucket == 1:
                return (lo + hi) / 2.0
            # The bucket's order statistics occupy ranks [before,
            # before + in_bucket - 1]; interpolate linearly across that
            # span so rank `before` maps to the lower edge and the
            # bucket's last rank to the upper edge.
            before = sum(series.counts[:index])
            frac = (p - before) / (in_bucket - 1)
            return lo + (hi - lo) * min(max(frac, 0.0), 1.0)

    def quantile_bracket(
        self, q: float, labels: LabelValues = ()
    ) -> Tuple[float, float]:
        """Hard bounds containing ``numpy.percentile(samples, q)``.

        The exact percentile interpolates between the order statistics at
        ``floor(p)`` and ``ceil(p)``; the bracket spans from the lower
        edge of the bucket holding the first to the upper edge of the
        bucket holding the second, clamped to the observed min/max.
        """
        if not 0 <= q <= 100:
            raise ValueError(f"q must be in [0, 100], got {q}")
        with self._lock:
            series = self._series.get(labels)
            if series is None or series.count == 0:
                return (0.0, 0.0)
            p = q / 100.0 * (series.count - 1)
            lo_bucket = self._bucket_of_order_stat(series, int(math.floor(p)))
            hi_bucket = self._bucket_of_order_stat(series, int(math.ceil(p)))
            lo, _ = self._bucket_edges(lo_bucket, series)
            _, hi = self._bucket_edges(hi_bucket, series)
            return (lo, hi)

    def _snapshot_series(self) -> List[Dict[str, Any]]:
        out = []
        for key, s in sorted(self._series.items()):
            out.append(
                {
                    "labels": list(key),
                    "count": s.count,
                    "sum": s.sum,
                    "min": s.min if s.count else None,
                    "max": s.max if s.count else None,
                    "counts": list(s.counts),
                }
            )
        return out

    def snapshot(self) -> Dict[str, Any]:
        with self._lock:
            out = super().snapshot()
            out["buckets"] = list(self.bounds)
            return out


class MetricsRegistry:
    """A named collection of metrics with get-or-create semantics.

    ``counter`` / ``gauge`` / ``histogram`` return the existing metric
    when the name is already registered — instrumented components can
    therefore share one registry without coordinating creation order —
    but re-registration with a *different* type, label set or bucket
    layout raises: silent shape drift would corrupt every reader.
    """

    def __init__(self) -> None:
        self._lock = threading.RLock()
        self._metrics: Dict[str, Metric] = {}

    def _get_or_create(self, cls, name: str, help: str, labels, **kwargs) -> Any:
        with self._lock:
            existing = self._metrics.get(name)
            if existing is not None:
                if type(existing) is not cls:
                    raise ValueError(
                        f"metric {name!r} already registered as "
                        f"{existing.kind}, not {cls.kind}"
                    )
                if existing.label_names != tuple(labels):
                    raise ValueError(
                        f"metric {name!r} already registered with labels "
                        f"{existing.label_names}, not {tuple(labels)}"
                    )
                if cls is Histogram and "buckets" in kwargs:
                    bounds = tuple(float(b) for b in kwargs["buckets"])
                    if existing.bounds != bounds:
                        raise ValueError(
                            f"histogram {name!r} already registered with "
                            f"different bucket bounds"
                        )
                return existing
            metric = cls(name, help, labels, lock=self._lock, **kwargs)
            self._metrics[name] = metric
            return metric

    def counter(self, name: str, help: str = "", labels: Sequence[str] = ()) -> Counter:
        return self._get_or_create(Counter, name, help, labels)

    def gauge(self, name: str, help: str = "", labels: Sequence[str] = ()) -> Gauge:
        return self._get_or_create(Gauge, name, help, labels)

    def histogram(
        self,
        name: str,
        help: str = "",
        labels: Sequence[str] = (),
        *,
        buckets: Sequence[float] = DEFAULT_LATENCY_BUCKETS,
    ) -> Histogram:
        return self._get_or_create(Histogram, name, help, labels, buckets=buckets)

    def get(self, name: str) -> Optional[Metric]:
        with self._lock:
            return self._metrics.get(name)

    def names(self) -> List[str]:
        with self._lock:
            return sorted(self._metrics)

    def snapshot(self) -> Dict[str, Any]:
        """Every metric as one JSON-native dict, internally consistent.

        Holds the registry lock across the whole walk, so concurrent
        ``inc``/``observe`` calls can never produce a snapshot where one
        metric reflects a later state than another.
        """
        with self._lock:
            return {name: m.snapshot() for name, m in sorted(self._metrics.items())}


# --------------------------------------------------------------------- #
# The process-global default
# --------------------------------------------------------------------- #

_DEFAULT = MetricsRegistry()
_DEFAULT_LOCK = threading.Lock()


def default_registry() -> MetricsRegistry:
    """The process-global registry components fall back to."""
    return _DEFAULT


def set_default_registry(registry: MetricsRegistry) -> MetricsRegistry:
    """Swap the process-global registry; returns the previous one.

    Meant for tests and embedders that want a clean slate — library code
    should accept an injected registry instead of calling this.
    """
    global _DEFAULT
    with _DEFAULT_LOCK:
        previous = _DEFAULT
        _DEFAULT = registry
        return previous


def resolve_registry(metrics: Optional[MetricsRegistry]) -> MetricsRegistry:
    """``metrics`` itself, or the process default when ``None``."""
    return metrics if metrics is not None else default_registry()
