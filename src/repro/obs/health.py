"""Health/readiness snapshots for long-running components.

Workers and servers periodically write one small JSON file each into a
``health/`` directory next to the queue (or wherever the operator
points them).  Each write is atomic (tmp + ``os.replace``), so readers
— ``repro status``, a watchdog, another host on the shared filesystem —
always see a complete document, and the *file mtime* doubles as the
liveness signal: a component that stops refreshing goes stale without
any unregister step, exactly like the queue's lease files.

A snapshot carries identity (component kind, id, pid, host), timing
(started / uptime / heartbeat), what the component is doing right now
(``in_flight``), and a full ``metrics`` snapshot from its registry, so
``status`` can surface counters without talking to the process.
"""

from __future__ import annotations

import json
import os
import socket
import time
from pathlib import Path
from typing import Any, Dict, List, Optional, Union

from repro.obs.registry import MetricsRegistry

#: Directory for health files under a queue root (sibling of tasks/leases).
HEALTH_SUBDIR = "health"

#: Seconds without a refresh before a component is reported as stale.
DEFAULT_STALE_AFTER = 15.0


def health_dir(queue_root: Union[str, Path]) -> Path:
    """Where a queue's components write health files: ``<root>/health``."""
    return Path(queue_root) / HEALTH_SUBDIR


def _safe_id(component_id: str) -> str:
    """A component id as a filesystem-safe file stem."""
    return "".join(c if (c.isalnum() or c in "-_.") else "_" for c in component_id)


class HealthReporter:
    """Writes one component's health file, rate-limited and atomic.

    ``beat()`` is cheap to call from a hot loop: it returns immediately
    unless ``interval`` seconds have passed since the last write (or
    ``force=True``).  The reporter never raises out of ``beat()`` for
    filesystem errors — health is best-effort telemetry and must not
    take down the component it describes.
    """

    def __init__(
        self,
        directory: Union[str, Path],
        *,
        component: str,
        component_id: str,
        registry: Optional[MetricsRegistry] = None,
        interval: float = 2.0,
    ):
        self.directory = Path(directory)
        self.component = component
        self.component_id = component_id
        self.registry = registry
        self.interval = float(interval)
        self.path = self.directory / f"{_safe_id(component_id)}.json"
        self.started = time.time()
        self.in_flight: Optional[str] = None
        self.extra: Dict[str, Any] = {}
        self._last_write = 0.0

    def due(self, now: Optional[float] = None) -> bool:
        """Whether the next :meth:`beat` would actually write.

        Lets callers skip gathering expensive ``extra`` payloads (queue
        sweeps, snapshots) on the iterations where beat() would no-op.
        """
        now = time.time() if now is None else now
        return now - self._last_write >= self.interval

    def beat(self, *, force: bool = False, now: Optional[float] = None) -> bool:
        """Refresh the health file if due; returns whether it was written."""
        now = time.time() if now is None else now
        if not force and now - self._last_write < self.interval:
            return False
        record: Dict[str, Any] = {
            "component": self.component,
            "id": self.component_id,
            "pid": os.getpid(),
            "host": socket.gethostname(),
            "started": self.started,
            "uptime_seconds": now - self.started,
            "heartbeat": now,
            "in_flight": self.in_flight,
        }
        if self.extra:
            record.update(self.extra)
        if self.registry is not None:
            record["metrics"] = self.registry.snapshot()
        try:
            self.directory.mkdir(parents=True, exist_ok=True)
            tmp = self.path.with_suffix(f".tmp.{os.getpid()}")
            with open(tmp, "w", encoding="utf-8") as fh:
                json.dump(record, fh)
            os.replace(tmp, self.path)
        except OSError:
            return False
        self._last_write = now
        return True

    def close(self) -> None:
        """Remove this component's health file (clean shutdown)."""
        try:
            self.path.unlink(missing_ok=True)
        except OSError:
            pass


def read_health(
    directory: Union[str, Path],
    *,
    stale_after: float = DEFAULT_STALE_AFTER,
    now: Optional[float] = None,
) -> List[Dict[str, Any]]:
    """Every parseable health record under ``directory``, oldest-id first.

    Each record gains two reader-side fields: ``age_seconds`` (since the
    file's last refresh, from its mtime) and ``stale`` (age beyond
    ``stale_after``).  Unparseable or concurrently-removed files are
    skipped — a reader races writers by design.
    """
    directory = Path(directory)
    now = time.time() if now is None else now
    records: List[Dict[str, Any]] = []
    if not directory.is_dir():
        return records
    for path in sorted(directory.glob("*.json")):
        try:
            mtime = path.stat().st_mtime
            with open(path, "r", encoding="utf-8") as fh:
                record = json.load(fh)
        except (OSError, json.JSONDecodeError):
            continue
        if not isinstance(record, dict):
            continue
        age = max(0.0, now - mtime)
        record["age_seconds"] = age
        record["stale"] = age > stale_after
        records.append(record)
    return records
