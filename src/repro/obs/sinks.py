"""Pluggable result sinks: stream records out instead of accumulating.

A :class:`Sink` receives small JSON-able dicts as a run progresses —
per-frame serve results, per-task worker acks, end-of-run summaries —
so long runs can write as they go rather than holding everything in
memory for a final report.  The interface is deliberately tiny
(``emit`` / ``flush`` / ``close``) so new backends are one small class.

Sinks are configured either programmatically (``Worker(sinks=[...])``,
``Session.serve(..., sinks=[...])``) or from CLI specs via
:func:`make_sink`::

    jsonl:<path>   append one JSON object per line to <path>
    table          human summary table on stdout at close
    null           discard (the explicit no-op)

Every record a component emits carries a ``"record"`` key naming its
type (``"serve.frame"``, ``"worker.task"``, ``"serve.summary"``, ...),
so one stream can safely multiplex record kinds.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Dict, IO, Iterable, List, Optional, Sequence, Union


class Sink:
    """Receives a stream of JSON-able record dicts."""

    def emit(self, record: Dict[str, Any]) -> None:
        raise NotImplementedError

    def flush(self) -> None:  # pragma: no cover - trivial default
        pass

    def close(self) -> None:  # pragma: no cover - trivial default
        pass

    def __enter__(self) -> "Sink":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


class NullSink(Sink):
    """Discards everything (the explicit no-op backend)."""

    def emit(self, record: Dict[str, Any]) -> None:
        pass


class JsonlSink(Sink):
    """Appends one compact JSON object per line to a file.

    The file handle is opened lazily on first emit and line-buffered at
    close/flush boundaries — a crashed run leaves every flushed record
    intact and parseable, which is the point of streaming.
    """

    def __init__(self, path: Union[str, Path]):
        self.path = Path(path)
        self._fh: Optional[IO[str]] = None
        self.records_written = 0

    def emit(self, record: Dict[str, Any]) -> None:
        if self._fh is None:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            self._fh = open(self.path, "a", encoding="utf-8")
        self._fh.write(json.dumps(record, sort_keys=True) + "\n")
        self.records_written += 1

    def flush(self) -> None:
        if self._fh is not None:
            self._fh.flush()

    def close(self) -> None:
        if self._fh is not None:
            self._fh.close()
            self._fh = None


class SummaryTableSink(Sink):
    """Counts records by type and prints one summary table at close."""

    def __init__(self, write=None):
        # ``write`` defaults to print-to-stdout at close time, injectable
        # for tests.
        self._write = write
        self.counts: Dict[str, int] = {}
        self.total = 0

    def emit(self, record: Dict[str, Any]) -> None:
        kind = str(record.get("record", "?"))
        self.counts[kind] = self.counts.get(kind, 0) + 1
        self.total += 1

    def format(self) -> str:
        from repro.harness.tables import format_table

        rows = [[kind, count] for kind, count in sorted(self.counts.items())]
        rows.append(["total", self.total])
        return format_table(["record", "count"], rows, title="sink summary")

    def close(self) -> None:
        text = self.format()
        if self._write is not None:
            self._write(text)
        else:
            print(text)


class MultiSink(Sink):
    """Fans every record out to each wrapped sink."""

    def __init__(self, sinks: Sequence[Sink]):
        self.sinks: List[Sink] = list(sinks)

    def emit(self, record: Dict[str, Any]) -> None:
        for sink in self.sinks:
            sink.emit(record)

    def flush(self) -> None:
        for sink in self.sinks:
            sink.flush()

    def close(self) -> None:
        for sink in self.sinks:
            sink.close()


def make_sink(spec: str) -> Sink:
    """Build a sink from a CLI spec string (see module docs)."""
    kind, _, arg = spec.partition(":")
    if kind == "jsonl":
        if not arg:
            raise ValueError("jsonl sink needs a path: jsonl:<path>")
        return JsonlSink(arg)
    if kind == "table":
        return SummaryTableSink()
    if kind == "null":
        return NullSink()
    raise ValueError(
        f"unknown sink spec {spec!r} (expected jsonl:<path>, table, or null)"
    )


def as_sinks(sinks: Union[None, Sink, Iterable[Sink]]) -> List[Sink]:
    """Normalize a sinks argument: None, one sink, or an iterable."""
    if sinks is None:
        return []
    if isinstance(sinks, Sink):
        return [sinks]
    return list(sinks)
