"""From-scratch linear Kalman filter and the SORT box-state specialization.

SORT (Bewley et al., 2016) models a track as a constant-velocity linear
system over ``[cx, cy, area, aspect]`` with velocities on the first three
components.  CaTDet replaces this with an exponential-decay model (see
:mod:`repro.tracker.motion`); the Kalman version is kept as the ablation
baseline the paper compares against.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np


class KalmanFilter:
    """Standard linear-Gaussian Kalman filter.

    State evolves as ``x' = F x + w`` with ``w ~ N(0, Q)``; observations are
    ``z = H x + v`` with ``v ~ N(0, R)``.
    """

    def __init__(
        self,
        transition: np.ndarray,
        observation: np.ndarray,
        process_noise: np.ndarray,
        observation_noise: np.ndarray,
        initial_state: np.ndarray,
        initial_covariance: np.ndarray,
    ):
        self.F = np.asarray(transition, dtype=np.float64)
        self.H = np.asarray(observation, dtype=np.float64)
        self.Q = np.asarray(process_noise, dtype=np.float64)
        self.R = np.asarray(observation_noise, dtype=np.float64)
        self.x = np.asarray(initial_state, dtype=np.float64).reshape(-1)
        self.P = np.asarray(initial_covariance, dtype=np.float64)

        d = self.x.shape[0]
        k = self.H.shape[0]
        if self.F.shape != (d, d):
            raise ValueError(f"transition must be ({d}, {d}), got {self.F.shape}")
        if self.H.shape != (k, d):
            raise ValueError(f"observation must be (k, {d}), got {self.H.shape}")
        if self.Q.shape != (d, d):
            raise ValueError(f"process_noise must be ({d}, {d}), got {self.Q.shape}")
        if self.R.shape != (k, k):
            raise ValueError(f"observation_noise must be ({k}, {k}), got {self.R.shape}")
        if self.P.shape != (d, d):
            raise ValueError(f"initial_covariance must be ({d}, {d}), got {self.P.shape}")

    def predict(self) -> np.ndarray:
        """Advance the state one step; returns the predicted state mean."""
        self.x = self.F @ self.x
        self.P = self.F @ self.P @ self.F.T + self.Q
        return self.x.copy()

    def update(self, z: np.ndarray) -> np.ndarray:
        """Condition on observation ``z``; returns the posterior state mean."""
        z = np.asarray(z, dtype=np.float64).reshape(-1)
        if z.shape[0] != self.H.shape[0]:
            raise ValueError(f"observation must have length {self.H.shape[0]}, got {z.shape[0]}")
        y = z - self.H @ self.x
        S = self.H @ self.P @ self.H.T + self.R
        K = self.P @ self.H.T @ np.linalg.inv(S)
        self.x = self.x + K @ y
        identity = np.eye(self.P.shape[0])
        self.P = (identity - K @ self.H) @ self.P
        return self.x.copy()


class ConstantVelocityBoxKalman:
    """SORT's box-state Kalman filter.

    State is ``[cx, cy, s, r, vcx, vcy, vs]`` where ``s`` is box area and
    ``r`` the (constant) aspect ratio.  Noise scales follow the original
    SORT implementation.
    """

    _DIM = 7

    def __init__(self, box: np.ndarray):
        cx, cy, s, r = self._box_to_z(np.asarray(box, dtype=np.float64))
        F = np.eye(self._DIM)
        F[0, 4] = F[1, 5] = F[2, 6] = 1.0
        H = np.zeros((4, self._DIM))
        H[0, 0] = H[1, 1] = H[2, 2] = H[3, 3] = 1.0
        Q = np.eye(self._DIM)
        Q[4:, 4:] *= 0.01
        Q[6, 6] *= 0.01
        R = np.diag([1.0, 1.0, 10.0, 10.0])
        P = np.eye(self._DIM) * 10.0
        P[4:, 4:] *= 1000.0  # high uncertainty on unobserved velocities
        x0 = np.array([cx, cy, s, r, 0.0, 0.0, 0.0])
        self._kf = KalmanFilter(F, H, Q, R, x0, P)

    @staticmethod
    def _box_to_z(box: np.ndarray) -> Tuple[float, float, float, float]:
        x1, y1, x2, y2 = box.reshape(4)
        w = x2 - x1
        h = y2 - y1
        if w <= 0 or h <= 0:
            raise ValueError(f"box must have positive size, got {box.tolist()}")
        return x1 + w / 2.0, y1 + h / 2.0, w * h, w / h

    @staticmethod
    def _z_to_box(z: np.ndarray) -> np.ndarray:
        cx, cy, s, r = z.reshape(4)
        s = max(s, 1e-6)
        r = max(r, 1e-6)
        w = np.sqrt(s * r)
        h = s / w
        return np.array([cx - w / 2.0, cy - h / 2.0, cx + w / 2.0, cy + h / 2.0])

    def predict(self) -> np.ndarray:
        """Predict the next-frame box.

        Clamps the area-velocity when it would drive the area negative, as
        the reference SORT implementation does.
        """
        if self._kf.x[2] + self._kf.x[6] <= 0:
            self._kf.x[6] = 0.0
        state = self._kf.predict()
        return self._z_to_box(state[:4])

    def update(self, box: np.ndarray) -> np.ndarray:
        """Condition on an observed box; returns the corrected box."""
        z = np.array(self._box_to_z(np.asarray(box, dtype=np.float64)))
        state = self._kf.update(z)
        return self._z_to_box(state[:4])

    @property
    def box(self) -> np.ndarray:
        """Current state as a box (without advancing time)."""
        return self._z_to_box(self._kf.x[:4])
