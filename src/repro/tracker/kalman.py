"""From-scratch linear Kalman filter and the SORT box-state specialization.

SORT (Bewley et al., 2016) models a track as a constant-velocity linear
system over ``[cx, cy, area, aspect]`` with velocities on the first three
components.  CaTDet replaces this with an exponential-decay model (see
:mod:`repro.tracker.motion`); the Kalman version is kept as the ablation
baseline the paper compares against.

Two layers are provided:

* :class:`KalmanFilter` / :class:`ConstantVelocityBoxKalman` — one filter
  per track, the original scalar formulation;
* :class:`BatchKalman` / :class:`BatchBoxKalman` — all tracks stacked into
  ``(T, d)`` means and ``(T, d, d)`` covariances sharing one set of system
  matrices, with predict/update as batched matmuls and a batched
  ``solve`` for the gain.  The trackers run on the batch layer; the scalar
  classes remain the public single-track API and the property-test oracle.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np


class KalmanFilter:
    """Standard linear-Gaussian Kalman filter.

    State evolves as ``x' = F x + w`` with ``w ~ N(0, Q)``; observations are
    ``z = H x + v`` with ``v ~ N(0, R)``.
    """

    def __init__(
        self,
        transition: np.ndarray,
        observation: np.ndarray,
        process_noise: np.ndarray,
        observation_noise: np.ndarray,
        initial_state: np.ndarray,
        initial_covariance: np.ndarray,
    ):
        self.F = np.asarray(transition, dtype=np.float64)
        self.H = np.asarray(observation, dtype=np.float64)
        self.Q = np.asarray(process_noise, dtype=np.float64)
        self.R = np.asarray(observation_noise, dtype=np.float64)
        self.x = np.asarray(initial_state, dtype=np.float64).reshape(-1)
        self.P = np.asarray(initial_covariance, dtype=np.float64)

        d = self.x.shape[0]
        k = self.H.shape[0]
        if self.F.shape != (d, d):
            raise ValueError(f"transition must be ({d}, {d}), got {self.F.shape}")
        if self.H.shape != (k, d):
            raise ValueError(f"observation must be (k, {d}), got {self.H.shape}")
        if self.Q.shape != (d, d):
            raise ValueError(f"process_noise must be ({d}, {d}), got {self.Q.shape}")
        if self.R.shape != (k, k):
            raise ValueError(f"observation_noise must be ({k}, {k}), got {self.R.shape}")
        if self.P.shape != (d, d):
            raise ValueError(f"initial_covariance must be ({d}, {d}), got {self.P.shape}")

    def predict(self) -> np.ndarray:
        """Advance the state one step; returns the predicted state mean."""
        self.x = self.F @ self.x
        self.P = self.F @ self.P @ self.F.T + self.Q
        return self.x.copy()

    def update(self, z: np.ndarray) -> np.ndarray:
        """Condition on observation ``z``; returns the posterior state mean."""
        z = np.asarray(z, dtype=np.float64).reshape(-1)
        if z.shape[0] != self.H.shape[0]:
            raise ValueError(f"observation must have length {self.H.shape[0]}, got {z.shape[0]}")
        y = z - self.H @ self.x
        S = self.H @ self.P @ self.H.T + self.R
        K = self.P @ self.H.T @ np.linalg.inv(S)
        self.x = self.x + K @ y
        identity = np.eye(self.P.shape[0])
        self.P = (identity - K @ self.H) @ self.P
        return self.x.copy()


class ConstantVelocityBoxKalman:
    """SORT's box-state Kalman filter.

    State is ``[cx, cy, s, r, vcx, vcy, vs]`` where ``s`` is box area and
    ``r`` the (constant) aspect ratio.  Noise scales follow the original
    SORT implementation.
    """

    _DIM = 7

    def __init__(self, box: np.ndarray):
        cx, cy, s, r = self._box_to_z(np.asarray(box, dtype=np.float64))
        F = np.eye(self._DIM)
        F[0, 4] = F[1, 5] = F[2, 6] = 1.0
        H = np.zeros((4, self._DIM))
        H[0, 0] = H[1, 1] = H[2, 2] = H[3, 3] = 1.0
        Q = np.eye(self._DIM)
        Q[4:, 4:] *= 0.01
        Q[6, 6] *= 0.01
        R = np.diag([1.0, 1.0, 10.0, 10.0])
        P = np.eye(self._DIM) * 10.0
        P[4:, 4:] *= 1000.0  # high uncertainty on unobserved velocities
        x0 = np.array([cx, cy, s, r, 0.0, 0.0, 0.0])
        self._kf = KalmanFilter(F, H, Q, R, x0, P)

    @staticmethod
    def _box_to_z(box: np.ndarray) -> Tuple[float, float, float, float]:
        x1, y1, x2, y2 = box.reshape(4)
        w = x2 - x1
        h = y2 - y1
        if w <= 0 or h <= 0:
            raise ValueError(f"box must have positive size, got {box.tolist()}")
        return x1 + w / 2.0, y1 + h / 2.0, w * h, w / h

    @staticmethod
    def _z_to_box(z: np.ndarray) -> np.ndarray:
        cx, cy, s, r = z.reshape(4)
        s = max(s, 1e-6)
        r = max(r, 1e-6)
        w = np.sqrt(s * r)
        h = s / w
        return np.array([cx - w / 2.0, cy - h / 2.0, cx + w / 2.0, cy + h / 2.0])

    def predict(self) -> np.ndarray:
        """Predict the next-frame box.

        Clamps the area-velocity when it would drive the area negative, as
        the reference SORT implementation does.
        """
        if self._kf.x[2] + self._kf.x[6] <= 0:
            self._kf.x[6] = 0.0
        state = self._kf.predict()
        return self._z_to_box(state[:4])

    def update(self, box: np.ndarray) -> np.ndarray:
        """Condition on an observed box; returns the corrected box."""
        z = np.array(self._box_to_z(np.asarray(box, dtype=np.float64)))
        state = self._kf.update(z)
        return self._z_to_box(state[:4])

    @property
    def box(self) -> np.ndarray:
        """Current state as a box (without advancing time)."""
        return self._z_to_box(self._kf.x[:4])


class BatchKalman:
    """A bank of identical linear-Gaussian Kalman filters, stacked.

    All filters share the system matrices ``F``, ``H``, ``Q``, ``R``; the
    per-filter state lives in one ``(T, d)`` mean array and one
    ``(T, d, d)`` covariance array.  ``predict``/``update`` are batched
    matmuls plus one batched ``solve`` — no Python loop over tracks.

    Rows are append-only via :meth:`add`; dead filters are compacted out
    with :meth:`keep`.  The arrays grow geometrically so steady-state
    insertion does not reallocate.
    """

    def __init__(
        self,
        transition: np.ndarray,
        observation: np.ndarray,
        process_noise: np.ndarray,
        observation_noise: np.ndarray,
        capacity: int = 16,
    ):
        self.F = np.asarray(transition, dtype=np.float64)
        self.H = np.asarray(observation, dtype=np.float64)
        self.Q = np.asarray(process_noise, dtype=np.float64)
        self.R = np.asarray(observation_noise, dtype=np.float64)
        d = self.F.shape[0]
        k = self.H.shape[0]
        if self.F.shape != (d, d):
            raise ValueError(f"transition must be square, got {self.F.shape}")
        if self.H.shape != (k, d):
            raise ValueError(f"observation must be (k, {d}), got {self.H.shape}")
        if self.Q.shape != (d, d):
            raise ValueError(f"process_noise must be ({d}, {d}), got {self.Q.shape}")
        if self.R.shape != (k, k):
            raise ValueError(f"observation_noise must be ({k}, {k}), got {self.R.shape}")
        self._dim = d
        self._obs = k
        self._size = 0
        self._x = np.zeros((max(capacity, 1), d))
        self._P = np.zeros((max(capacity, 1), d, d))

    def __len__(self) -> int:
        return self._size

    @property
    def x(self) -> np.ndarray:
        """(T, d) view of the live state means."""
        return self._x[: self._size]

    @property
    def P(self) -> np.ndarray:
        """(T, d, d) view of the live covariances."""
        return self._P[: self._size]

    def add(self, state: np.ndarray, covariance: np.ndarray) -> int:
        """Append one filter; returns its row index."""
        state = np.asarray(state, dtype=np.float64).reshape(-1)
        covariance = np.asarray(covariance, dtype=np.float64)
        if state.shape[0] != self._dim or covariance.shape != (self._dim, self._dim):
            raise ValueError("state/covariance shape mismatch with the bank dimension")
        if self._size == self._x.shape[0]:
            new_cap = self._x.shape[0] * 2
            self._x = np.concatenate([self._x, np.zeros_like(self._x)])[:new_cap]
            self._P = np.concatenate([self._P, np.zeros_like(self._P)])[:new_cap]
        row = self._size
        self._x[row] = state
        self._P[row] = covariance
        self._size += 1
        return row

    def add_many(self, states: np.ndarray, covariances: np.ndarray) -> np.ndarray:
        """Append a batch of filters at once; returns their row indices.

        ``covariances`` may be a single ``(d, d)`` matrix (shared initial
        uncertainty, the common spawn case) or one per state.
        """
        states = np.asarray(states, dtype=np.float64).reshape(-1, self._dim)
        b = states.shape[0]
        if b == 0:
            return np.zeros(0, dtype=np.int64)
        covariances = np.asarray(covariances, dtype=np.float64)
        if covariances.shape not in ((self._dim, self._dim), (b, self._dim, self._dim)):
            raise ValueError("covariance shape mismatch with the bank dimension")
        cap = self._x.shape[0]
        if self._size + b > cap:
            while cap < self._size + b:
                cap *= 2
            grown_x = np.zeros((cap, self._dim))
            grown_x[: self._size] = self._x[: self._size]
            self._x = grown_x
            grown_P = np.zeros((cap, self._dim, self._dim))
            grown_P[: self._size] = self._P[: self._size]
            self._P = grown_P
        rows = np.arange(self._size, self._size + b, dtype=np.int64)
        self._x[rows] = states
        self._P[rows] = covariances
        self._size += b
        return rows

    def keep(self, mask: np.ndarray) -> None:
        """Compact the bank down to the rows where ``mask`` is True."""
        mask = np.asarray(mask, dtype=bool).reshape(-1)
        if mask.shape[0] != self._size:
            raise ValueError(f"mask must have length {self._size}, got {mask.shape[0]}")
        kept = int(mask.sum())
        self._x[:kept] = self._x[: self._size][mask]
        self._P[:kept] = self._P[: self._size][mask]
        self._size = kept

    def predict(self, rows: Optional[np.ndarray] = None) -> np.ndarray:
        """Advance the selected filters one step; returns their state means.

        ``rows=None`` advances every filter.
        """
        if rows is None:
            x = self._x[: self._size] @ self.F.T
            self._x[: self._size] = x
            self._P[: self._size] = self.F @ self._P[: self._size] @ self.F.T + self.Q
            return x
        rows = np.asarray(rows, dtype=np.int64).reshape(-1)
        x = self._x[rows] @ self.F.T
        self._x[rows] = x
        self._P[rows] = self.F @ self._P[rows] @ self.F.T + self.Q
        return x

    def update(self, rows: np.ndarray, z: np.ndarray) -> np.ndarray:
        """Condition filters ``rows`` on observations ``z`` (one row each)."""
        rows = np.asarray(rows, dtype=np.int64).reshape(-1)
        z = np.asarray(z, dtype=np.float64).reshape(-1, self._obs)
        if rows.shape[0] != z.shape[0]:
            raise ValueError("rows and observations must have equal length")
        if rows.shape[0] == 0:
            return np.zeros((0, self._dim))
        x = self._x[rows]  # (B, d)
        P = self._P[rows]  # (B, d, d)
        y = z - x @ self.H.T  # (B, k)
        PHt = P @ self.H.T  # (B, d, k)
        S = self.H @ PHt + self.R  # (B, k, k)
        # K = PHt @ inv(S) solved as S^T K^T = PHt^T (one batched solve).
        K = np.linalg.solve(S.transpose(0, 2, 1), PHt.transpose(0, 2, 1)).transpose(0, 2, 1)
        x = x + np.einsum("bdk,bk->bd", K, y)
        identity = np.eye(self._dim)
        self._x[rows] = x
        self._P[rows] = (identity - K @ self.H) @ P
        return x


class BatchBoxKalman:
    """All SORT box-state filters of a tracker in one :class:`BatchKalman`.

    System matrices and the conversion between boxes and the
    ``[cx, cy, s, r, vcx, vcy, vs]`` state replicate
    :class:`ConstantVelocityBoxKalman` (including the area-velocity clamp
    on predict and the ``1e-6`` floors when converting back to boxes), but
    over all tracks at once.
    """

    _DIM = 7

    def __init__(self, capacity: int = 16):
        F = np.eye(self._DIM)
        F[0, 4] = F[1, 5] = F[2, 6] = 1.0
        H = np.zeros((4, self._DIM))
        H[0, 0] = H[1, 1] = H[2, 2] = H[3, 3] = 1.0
        Q = np.eye(self._DIM)
        Q[4:, 4:] *= 0.01
        Q[6, 6] *= 0.01
        R = np.diag([1.0, 1.0, 10.0, 10.0])
        self._bank = BatchKalman(F, H, Q, R, capacity=capacity)

    def __len__(self) -> int:
        return len(self._bank)

    @staticmethod
    def boxes_to_z(boxes: np.ndarray) -> np.ndarray:
        """Vectorized ``[x1,y1,x2,y2] -> [cx, cy, s, r]`` conversion."""
        boxes = np.asarray(boxes, dtype=np.float64).reshape(-1, 4)
        w = boxes[:, 2] - boxes[:, 0]
        h = boxes[:, 3] - boxes[:, 1]
        if np.any(w <= 0) or np.any(h <= 0):
            raise ValueError("boxes must have positive size")
        return np.stack([boxes[:, 0] + w / 2.0, boxes[:, 1] + h / 2.0, w * h, w / h], axis=1)

    @staticmethod
    def z_to_boxes(z: np.ndarray) -> np.ndarray:
        """Vectorized ``[cx, cy, s, r] -> [x1,y1,x2,y2]`` conversion."""
        z = np.asarray(z, dtype=np.float64).reshape(-1, 4)
        s = np.maximum(z[:, 2], 1e-6)
        r = np.maximum(z[:, 3], 1e-6)
        w = np.sqrt(s * r)
        h = s / w
        cx, cy = z[:, 0], z[:, 1]
        return np.stack(
            [cx - w / 2.0, cy - h / 2.0, cx + w / 2.0, cy + h / 2.0], axis=1
        )

    def add(self, box: np.ndarray) -> int:
        """Start a new filter at the given box; returns its row index."""
        z = self.boxes_to_z(np.asarray(box, dtype=np.float64).reshape(1, 4))[0]
        P = np.eye(self._DIM) * 10.0
        P[4:, 4:] *= 1000.0  # high uncertainty on unobserved velocities
        x0 = np.concatenate([z, np.zeros(3)])
        return self._bank.add(x0, P)

    def add_many(self, boxes: np.ndarray) -> np.ndarray:
        """Start one filter per box in a single batch; returns row indices."""
        boxes = np.asarray(boxes, dtype=np.float64).reshape(-1, 4)
        if boxes.shape[0] == 0:
            return np.zeros(0, dtype=np.int64)
        z = self.boxes_to_z(boxes)
        P = np.eye(self._DIM) * 10.0
        P[4:, 4:] *= 1000.0
        x0 = np.concatenate([z, np.zeros((boxes.shape[0], 3))], axis=1)
        return self._bank.add_many(x0, P)

    def keep(self, mask: np.ndarray) -> None:
        self._bank.keep(mask)

    def predict(self, rows: Optional[np.ndarray] = None) -> np.ndarray:
        """Advance the selected filters; returns their predicted boxes.

        Applies SORT's clamp: area-velocity is zeroed when it would drive
        the area negative.
        """
        x = self._bank.x if rows is None else self._bank._x[np.asarray(rows, dtype=np.int64)]
        negative = x[:, 2] + x[:, 6] <= 0
        if rows is None:
            self._bank.x[negative, 6] = 0.0
        else:
            sel = np.asarray(rows, dtype=np.int64).reshape(-1)[negative]
            self._bank._x[sel, 6] = 0.0
        state = self._bank.predict(rows)
        return self.z_to_boxes(state[:, :4])

    def update(self, rows: np.ndarray, boxes: np.ndarray) -> np.ndarray:
        """Condition filters ``rows`` on observed boxes; returns corrected boxes."""
        z = self.boxes_to_z(boxes)
        state = self._bank.update(rows, z)
        return self.z_to_boxes(state[:, :4])

    @property
    def boxes(self) -> np.ndarray:
        """Current states as boxes (without advancing time)."""
        return self.z_to_boxes(self._bank.x[:, :4])

    def state_of(self, row: int) -> Tuple[np.ndarray, np.ndarray]:
        """Copy of ``(mean, covariance)`` for one filter (for snapshots)."""
        return self._bank.x[row].copy(), self._bank.P[row].copy()
