"""Multi-object-tracking metrics: MOTA, ID switches, fragmentation.

The CaTDet tracker is not a tracklet producer, but its SORT baseline is,
and validating the tracking substrate against the standard CLEAR-MOT
quantities (Bernardin & Stiefelhagen, 2008) guards the association and
lifecycle logic that CaTDet reuses.

Per frame, hypotheses are matched to ground truth by IoU (Hungarian,
gated); the accumulators then count misses, false positives and identity
switches.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence as Seq

import numpy as np

from repro.boxes.iou import iou_matrix
from repro.datasets.types import Sequence
from repro.hungarian import hungarian


@dataclass
class MotAccumulator:
    """CLEAR-MOT event counters."""

    num_gt: int = 0
    misses: int = 0
    false_positives: int = 0
    id_switches: int = 0
    matches: int = 0
    iou_sum: float = 0.0
    #: last hypothesis id matched to each GT track id
    _last_hypothesis: Dict[int, int] = field(default_factory=dict)

    @property
    def mota(self) -> float:
        """Multi-Object Tracking Accuracy: 1 - (FN + FP + IDSW) / GT."""
        if self.num_gt == 0:
            return float("nan")
        return 1.0 - (self.misses + self.false_positives + self.id_switches) / self.num_gt

    @property
    def motp(self) -> float:
        """Multi-Object Tracking Precision: mean IoU over matches."""
        if self.matches == 0:
            return float("nan")
        return self.iou_sum / self.matches

    def update(
        self,
        gt_boxes: np.ndarray,
        gt_ids: np.ndarray,
        hyp_boxes: np.ndarray,
        hyp_ids: np.ndarray,
        iou_threshold: float = 0.5,
    ) -> None:
        """Accumulate one frame.

        Parameters
        ----------
        gt_boxes, gt_ids:
            Ground-truth boxes and track ids for the frame.
        hyp_boxes, hyp_ids:
            Tracker-output boxes and hypothesis ids.
        iou_threshold:
            Minimum overlap for a valid correspondence.
        """
        gt_boxes = np.asarray(gt_boxes, dtype=np.float64).reshape(-1, 4)
        hyp_boxes = np.asarray(hyp_boxes, dtype=np.float64).reshape(-1, 4)
        gt_ids = np.asarray(gt_ids, dtype=np.int64).reshape(-1)
        hyp_ids = np.asarray(hyp_ids, dtype=np.int64).reshape(-1)
        if gt_boxes.shape[0] != gt_ids.shape[0]:
            raise ValueError("gt_boxes and gt_ids must agree in length")
        if hyp_boxes.shape[0] != hyp_ids.shape[0]:
            raise ValueError("hyp_boxes and hyp_ids must agree in length")

        n_gt, n_hyp = gt_boxes.shape[0], hyp_boxes.shape[0]
        self.num_gt += n_gt
        if n_gt == 0:
            self.false_positives += n_hyp
            return
        if n_hyp == 0:
            self.misses += n_gt
            return

        ious = iou_matrix(gt_boxes, hyp_boxes)
        rows, cols = hungarian(-ious)
        matched_gt = set()
        matched_hyp = set()
        for g, h in zip(rows, cols):
            if ious[g, h] < iou_threshold:
                continue
            matched_gt.add(int(g))
            matched_hyp.add(int(h))
            self.matches += 1
            self.iou_sum += float(ious[g, h])
            gt_id = int(gt_ids[g])
            hyp_id = int(hyp_ids[h])
            previous = self._last_hypothesis.get(gt_id)
            if previous is not None and previous != hyp_id:
                self.id_switches += 1
            self._last_hypothesis[gt_id] = hyp_id

        self.misses += n_gt - len(matched_gt)
        self.false_positives += n_hyp - len(matched_hyp)


def hypothesis_frames_from_tracklets(
    tracklets: Dict[int, "object"],
    num_frames: int,
) -> List:
    """Convert :attr:`repro.tracker.Sort.tracklets` into per-frame hypotheses.

    Returns a list of ``(boxes, ids)`` tuples suitable for
    :func:`evaluate_tracking`.
    """
    frames: List = [([], []) for _ in range(num_frames)]
    for tracklet in tracklets.values():
        for frame, box in zip(tracklet.frames, tracklet.boxes):
            if 0 <= frame < num_frames:
                frames[frame][0].append(box)
                frames[frame][1].append(tracklet.track_id)
    return [
        (
            np.stack(boxes) if boxes else np.zeros((0, 4)),
            np.asarray(ids, dtype=np.int64),
        )
        for boxes, ids in frames
    ]


def evaluate_tracking(
    sequence: Sequence,
    hypothesis_frames: Seq,
    *,
    iou_threshold: float = 0.5,
    min_gt_height: float = 0.0,
) -> MotAccumulator:
    """Evaluate a tracker's output against a sequence's ground truth.

    Parameters
    ----------
    sequence:
        Ground truth.
    hypothesis_frames:
        One entry per frame: a tuple ``(boxes (N,4), ids (N,))`` — e.g.
        collected from :class:`repro.tracker.Sort` output, where detections
        double as hypotheses with their track ids.
    iou_threshold:
        Correspondence gate.
    min_gt_height:
        Ignore ground truths shorter than this (difficulty-style gating).
    """
    if len(hypothesis_frames) != sequence.num_frames:
        raise ValueError(
            f"expected {sequence.num_frames} hypothesis frames, "
            f"got {len(hypothesis_frames)}"
        )
    acc = MotAccumulator()
    for frame in range(sequence.num_frames):
        annotations = sequence.annotations(frame)
        keep = (annotations.boxes[:, 3] - annotations.boxes[:, 1]) >= min_gt_height
        hyp_boxes, hyp_ids = hypothesis_frames[frame]
        acc.update(
            annotations.boxes[keep],
            annotations.track_ids[keep],
            hyp_boxes,
            hyp_ids,
            iou_threshold,
        )
    return acc
