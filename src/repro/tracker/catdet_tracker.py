"""The CaTDet tracker (paper §4.1).

Unlike a conventional tracker, the output is the *predicted next-frame
locations* of tracked objects — these become regions of interest for the
refinement network.  The implementation follows the paper:

* object association with the Hungarian algorithm over negative IoU,
  gated at ``beta`` and run once per class;
* exponential-decay motion prediction (``eta = 0.7`` by default);
* adaptive confidence lifecycle: every match adds confidence up to an upper
  limit, every miss subtracts, and tracks are discarded below zero —
  replacing SORT's fixed ``max_age``;
* prediction filters that drop objects that are too small (width < 10 px)
  or largely chopped by the image boundary, to keep the refinement-network
  workload low.

Track state is columnar: one motion bank (see :mod:`repro.tracker.motion`)
plus flat per-field arrays (ids, labels, confidence, hits/misses/age,
last boxes), so per-frame maintenance — predict, filter, lifecycle update,
prune — is a handful of array operations instead of a Python loop over
track objects.  Outputs are bit-identical to the original per-object loop
(kept as :class:`repro.tracker.reference.ScalarCaTDetTracker`) for the
decay motion model, whose math is purely elementwise.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from repro.boxes.box import clip_boxes, is_valid
from repro.detections import Detections
from repro.tracker.association import associate_per_class
from repro.tracker.motion import DecayMotionBank, KalmanMotionBank
from repro.tracker.state import TrackState


@dataclass(frozen=True)
class TrackerConfig:
    """Hyper-parameters of the CaTDet tracker.

    Parameters
    ----------
    eta:
        Exponential-decay coefficient of the motion model (paper: 0.7).
    iou_threshold:
        Association gate ``beta`` (paper: 0).
    input_score_threshold:
        Minimum detection confidence to enter the tracker ("confidence
        threshold for the tracker's input", §4.3 — the T-thresh knob).
    match_gain / miss_penalty / max_confidence / initial_confidence:
        The adaptive lifecycle: each match adds ``match_gain`` capped at
        ``max_confidence``; each miss subtracts ``miss_penalty``; tracks are
        discarded when confidence drops below zero.  Defaults allow an
        object matched for a while to survive ~3 consecutive misses.
    min_prediction_width:
        Predictions narrower than this are filtered out (paper: 10 px).
    min_visible_fraction:
        Predictions with less than this fraction of their area inside the
        image are filtered out ("largely chopped by the boundary").
    motion_model:
        ``"decay"`` (paper) or ``"kalman"`` (SORT baseline, for ablation).
    """

    eta: float = 0.7
    iou_threshold: float = 0.0
    input_score_threshold: float = 0.5
    match_gain: float = 1.0
    miss_penalty: float = 1.0
    max_confidence: float = 3.0
    initial_confidence: float = 1.0
    min_prediction_width: float = 10.0
    min_visible_fraction: float = 0.3
    motion_model: str = "decay"

    def __post_init__(self) -> None:
        if not (0.0 <= self.eta <= 1.0):
            raise ValueError(f"eta must lie in [0, 1], got {self.eta}")
        if not (0.0 <= self.iou_threshold <= 1.0):
            raise ValueError(f"iou_threshold must lie in [0, 1], got {self.iou_threshold}")
        if self.motion_model not in ("decay", "kalman"):
            raise ValueError(f"motion_model must be 'decay' or 'kalman', got {self.motion_model!r}")
        if self.max_confidence <= 0:
            raise ValueError("max_confidence must be positive")


class CaTDetTracker:
    """Tracks high-confidence detections and predicts next-frame locations.

    Usage per frame::

        predictions = tracker.predict()      # RoIs for the refinement net
        ...                                   # run detection
        tracker.update(final_detections)      # feed back calibrated output

    ``predict`` returns a :class:`Detections` whose scores are the tracks'
    (normalized) lifecycle confidences.
    """

    def __init__(
        self,
        config: TrackerConfig = TrackerConfig(),
        image_size: Optional[tuple] = None,
    ):
        """
        Parameters
        ----------
        config:
            Tracker hyper-parameters.
        image_size:
            ``(width, height)``; required for the boundary filter.  When
            ``None`` the boundary filter is disabled.
        """
        self.config = config
        self.image_size = image_size
        self._size = 0
        cap = 16
        self._track_ids = np.zeros(cap, dtype=np.int64)
        self._labels = np.zeros(cap, dtype=np.int64)
        self._confidence = np.zeros(cap)
        self._hits = np.zeros(cap, dtype=np.int64)
        self._misses = np.zeros(cap, dtype=np.int64)
        self._age = np.zeros(cap, dtype=np.int64)
        self._last_boxes = np.zeros((cap, 4))
        self._bank = self._make_bank()
        self._next_id = 0
        self._frames_processed = 0
        # Prediction cache: boxes for the exact id-set they were made for.
        self._pred_boxes: Optional[np.ndarray] = None
        self._pred_ids: Optional[np.ndarray] = None

    def _make_bank(self):
        if self.config.motion_model == "decay":
            return DecayMotionBank(eta=self.config.eta)
        return KalmanMotionBank()

    def _ensure_capacity(self, extra: int) -> None:
        needed = self._size + extra
        cap = self._track_ids.shape[0]
        if needed <= cap:
            return
        while cap < needed:
            cap *= 2
        for name in ("_track_ids", "_labels", "_hits", "_misses", "_age"):
            arr = getattr(self, name)
            grown = np.zeros(cap, dtype=np.int64)
            grown[: self._size] = arr[: self._size]
            setattr(self, name, grown)
        grown = np.zeros(cap)
        grown[: self._size] = self._confidence[: self._size]
        self._confidence = grown
        grown_boxes = np.zeros((cap, 4))
        grown_boxes[: self._size] = self._last_boxes[: self._size]
        self._last_boxes = grown_boxes

    # ------------------------------------------------------------------ #
    # Public API
    # ------------------------------------------------------------------ #

    @property
    def tracks(self) -> List[TrackState]:
        """Live tracks as per-track state snapshots (read-only view)."""
        return [
            TrackState(
                track_id=int(self._track_ids[i]),
                label=int(self._labels[i]),
                motion=self._bank.snapshot(i),
                confidence=float(self._confidence[i]),
                hits=int(self._hits[i]),
                misses=int(self._misses[i]),
                age=int(self._age[i]),
                last_box=self._last_boxes[i].copy(),
            )
            for i in range(self._size)
        ]

    @property
    def frames_processed(self) -> int:
        """Number of ``update`` calls so far."""
        return self._frames_processed

    def reset(self) -> None:
        """Drop all state (start of a new sequence)."""
        self._size = 0
        self._bank = self._make_bank()
        self._next_id = 0
        self._frames_processed = 0
        self._pred_boxes = None
        self._pred_ids = None

    def predict(self) -> Detections:
        """Predicted next-frame locations of tracked objects.

        Applies the size and boundary filters; the returned scores are
        lifecycle confidences normalized to [0, 1].
        """
        self._pred_boxes = None
        self._pred_ids = None
        t = self._size
        if t == 0:
            return Detections.empty()
        preds = self._bank.predict_all()
        self._pred_boxes = preds
        self._pred_ids = self._track_ids[:t].copy()

        cfg = self.config
        width = preds[:, 2] - preds[:, 0]
        height = preds[:, 3] - preds[:, 1]
        mask = (width >= cfg.min_prediction_width) & (height > 0)
        out_boxes = preds
        if self.image_size is not None:
            img_w, img_h = self.image_size
            clipped = clip_boxes(preds, img_w, img_h)
            full_area = np.maximum(width * height, 1e-9)
            vis_area = np.maximum(0.0, clipped[:, 2] - clipped[:, 0]) * np.maximum(
                0.0, clipped[:, 3] - clipped[:, 1]
            )
            mask &= vis_area / full_area >= cfg.min_visible_fraction
            out_boxes = clipped
        if not mask.any():
            return Detections.empty()
        scores = np.minimum(self._confidence[:t] / cfg.max_confidence, 1.0)
        return Detections(out_boxes[mask], scores[mask], self._labels[:t][mask].copy())

    def update(self, detections: Detections) -> np.ndarray:
        """Feed back the calibrated detections of the current frame.

        High-confidence detections are associated to the tracks' predicted
        locations; matches update motion and confidence, misses coast, and
        emerging objects spawn new tracks with zero initial velocity.

        Returns the per-detection track identity for every *input*
        detection (length ``len(detections)``): the matched track's id, a
        freshly spawned id, or -1 for detections the tracker ignored
        (below the input score threshold, or an invalid box).
        """
        cfg = self.config
        keep = detections.scores >= cfg.input_score_threshold
        dets = detections.select(keep)
        t = self._size

        # Predicted boxes for association: use cached predictions from the
        # last predict() call when they cover exactly the live id-set
        # (unfiltered), else recompute.
        if t and (
            self._pred_ids is None
            or not np.array_equal(self._pred_ids, self._track_ids[:t])
        ):
            self._pred_boxes = self._bank.predict_all()
            self._pred_ids = self._track_ids[:t].copy()

        track_boxes = self._pred_boxes if t else np.zeros((0, 4))
        track_labels = self._labels[:t]

        result = associate_per_class(
            track_boxes, track_labels, dets.boxes, dets.labels, cfg.iou_threshold
        )

        det_ids = np.full(len(dets), -1, dtype=np.int64)
        if result.matches.shape[0]:
            det_ids[result.matches[:, 1]] = self._track_ids[result.matches[:, 0]]

        if result.matches.shape[0]:
            rows = result.matches[:, 0]
            matched_boxes = dets.boxes[result.matches[:, 1]]
            self._bank.update(rows, matched_boxes)
            self._last_boxes[rows] = matched_boxes
            self._confidence[rows] = np.minimum(
                self._confidence[rows] + cfg.match_gain, cfg.max_confidence
            )
            self._hits[rows] += 1
            self._misses[rows] = 0
            self._age[rows] += 1
        if result.unmatched_tracks.size:
            rows = result.unmatched_tracks
            self._bank.coast(rows)
            self._confidence[rows] -= cfg.miss_penalty
            self._misses[rows] += 1
            self._age[rows] += 1
        if result.unmatched_detections.size:
            spawned = self._spawn_many(
                dets.boxes[result.unmatched_detections],
                dets.labels[result.unmatched_detections],
            )
            det_ids[result.unmatched_detections] = spawned

        alive = self._confidence[: self._size] >= 0.0
        if not alive.all():
            kept = int(alive.sum())
            self._track_ids[:kept] = self._track_ids[: self._size][alive]
            self._labels[:kept] = self._labels[: self._size][alive]
            self._confidence[:kept] = self._confidence[: self._size][alive]
            self._hits[:kept] = self._hits[: self._size][alive]
            self._misses[:kept] = self._misses[: self._size][alive]
            self._age[:kept] = self._age[: self._size][alive]
            self._last_boxes[:kept] = self._last_boxes[: self._size][alive]
            self._bank.keep(alive)
            self._size = kept
        self._frames_processed += 1
        self._pred_boxes = None
        self._pred_ids = None

        track_ids = np.full(len(detections), -1, dtype=np.int64)
        track_ids[np.flatnonzero(keep)] = det_ids
        return track_ids

    # ------------------------------------------------------------------ #
    # Internals
    # ------------------------------------------------------------------ #

    def _spawn_many(self, boxes: np.ndarray, labels: np.ndarray) -> np.ndarray:
        """Start one track per valid box, in input order.

        Invalid boxes are skipped without consuming a track id, exactly as
        the original per-detection spawn loop did.  Returns the assigned
        track id per *input* box (-1 for skipped invalid boxes).
        """
        boxes = np.asarray(boxes, dtype=np.float64).reshape(-1, 4)
        valid = is_valid(boxes)
        assigned = np.full(valid.shape[0], -1, dtype=np.int64)
        boxes = boxes[valid]
        b = boxes.shape[0]
        if b == 0:
            return assigned
        assigned[np.flatnonzero(valid)] = np.arange(self._next_id, self._next_id + b)
        self._ensure_capacity(b)
        lo, hi = self._size, self._size + b
        self._bank.add_many(boxes)
        self._track_ids[lo:hi] = np.arange(self._next_id, self._next_id + b)
        self._labels[lo:hi] = np.asarray(labels, dtype=np.int64).reshape(-1)[valid]
        self._confidence[lo:hi] = self.config.initial_confidence
        self._hits[lo:hi] = 1
        self._misses[lo:hi] = 0
        self._age[lo:hi] = 0
        self._last_boxes[lo:hi] = boxes
        self._size = hi
        self._next_id += b
        return assigned
