"""The CaTDet tracker (paper §4.1).

Unlike a conventional tracker, the output is the *predicted next-frame
locations* of tracked objects — these become regions of interest for the
refinement network.  The implementation follows the paper:

* object association with the Hungarian algorithm over negative IoU,
  gated at ``beta`` and run once per class;
* exponential-decay motion prediction (``eta = 0.7`` by default);
* adaptive confidence lifecycle: every match adds confidence up to an upper
  limit, every miss subtracts, and tracks are discarded below zero —
  replacing SORT's fixed ``max_age``;
* prediction filters that drop objects that are too small (width < 10 px)
  or largely chopped by the image boundary, to keep the refinement-network
  workload low.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from repro.boxes.box import clip_boxes, empty_boxes, is_valid, width_height
from repro.detections import Detections
from repro.tracker.association import associate_per_class
from repro.tracker.motion import ExponentialDecayMotion, KalmanMotion, MotionModel
from repro.tracker.state import TrackState


@dataclass(frozen=True)
class TrackerConfig:
    """Hyper-parameters of the CaTDet tracker.

    Parameters
    ----------
    eta:
        Exponential-decay coefficient of the motion model (paper: 0.7).
    iou_threshold:
        Association gate ``beta`` (paper: 0).
    input_score_threshold:
        Minimum detection confidence to enter the tracker ("confidence
        threshold for the tracker's input", §4.3 — the T-thresh knob).
    match_gain / miss_penalty / max_confidence / initial_confidence:
        The adaptive lifecycle: each match adds ``match_gain`` capped at
        ``max_confidence``; each miss subtracts ``miss_penalty``; tracks are
        discarded when confidence drops below zero.  Defaults allow an
        object matched for a while to survive ~3 consecutive misses.
    min_prediction_width:
        Predictions narrower than this are filtered out (paper: 10 px).
    min_visible_fraction:
        Predictions with less than this fraction of their area inside the
        image are filtered out ("largely chopped by the boundary").
    motion_model:
        ``"decay"`` (paper) or ``"kalman"`` (SORT baseline, for ablation).
    """

    eta: float = 0.7
    iou_threshold: float = 0.0
    input_score_threshold: float = 0.5
    match_gain: float = 1.0
    miss_penalty: float = 1.0
    max_confidence: float = 3.0
    initial_confidence: float = 1.0
    min_prediction_width: float = 10.0
    min_visible_fraction: float = 0.3
    motion_model: str = "decay"

    def __post_init__(self) -> None:
        if not (0.0 <= self.eta <= 1.0):
            raise ValueError(f"eta must lie in [0, 1], got {self.eta}")
        if not (0.0 <= self.iou_threshold <= 1.0):
            raise ValueError(f"iou_threshold must lie in [0, 1], got {self.iou_threshold}")
        if self.motion_model not in ("decay", "kalman"):
            raise ValueError(f"motion_model must be 'decay' or 'kalman', got {self.motion_model!r}")
        if self.max_confidence <= 0:
            raise ValueError("max_confidence must be positive")


class CaTDetTracker:
    """Tracks high-confidence detections and predicts next-frame locations.

    Usage per frame::

        predictions = tracker.predict()      # RoIs for the refinement net
        ...                                   # run detection
        tracker.update(final_detections)      # feed back calibrated output

    ``predict`` returns a :class:`Detections` whose scores are the tracks'
    (normalized) lifecycle confidences.
    """

    def __init__(
        self,
        config: TrackerConfig = TrackerConfig(),
        image_size: Optional[tuple] = None,
    ):
        """
        Parameters
        ----------
        config:
            Tracker hyper-parameters.
        image_size:
            ``(width, height)``; required for the boundary filter.  When
            ``None`` the boundary filter is disabled.
        """
        self.config = config
        self.image_size = image_size
        self._tracks: List[TrackState] = []
        self._next_id = 0
        self._frames_processed = 0
        self._last_predictions: Dict[int, np.ndarray] = {}

    # ------------------------------------------------------------------ #
    # Public API
    # ------------------------------------------------------------------ #

    @property
    def tracks(self) -> List[TrackState]:
        """Live tracks (read-only view)."""
        return list(self._tracks)

    @property
    def frames_processed(self) -> int:
        """Number of ``update`` calls so far."""
        return self._frames_processed

    def reset(self) -> None:
        """Drop all state (start of a new sequence)."""
        self._tracks.clear()
        self._next_id = 0
        self._frames_processed = 0
        self._last_predictions.clear()

    def predict(self) -> Detections:
        """Predicted next-frame locations of tracked objects.

        Applies the size and boundary filters; the returned scores are
        lifecycle confidences normalized to [0, 1].
        """
        self._last_predictions = {}
        if not self._tracks:
            return Detections.empty()
        boxes = []
        scores = []
        labels = []
        for track in self._tracks:
            pred = track.motion.predict()
            self._last_predictions[track.track_id] = pred
            if not self._passes_filters(pred):
                continue
            boxes.append(self._clip(pred))
            scores.append(min(track.confidence / self.config.max_confidence, 1.0))
            labels.append(track.label)
        if not boxes:
            return Detections.empty()
        return Detections(np.stack(boxes), np.array(scores), np.array(labels, dtype=np.int64))

    def update(self, detections: Detections) -> None:
        """Feed back the calibrated detections of the current frame.

        High-confidence detections are associated to the tracks' predicted
        locations; matches update motion and confidence, misses coast, and
        emerging objects spawn new tracks with zero initial velocity.
        """
        cfg = self.config
        dets = detections.above_score(cfg.input_score_threshold)

        # Predicted boxes for association: use cached predictions from the
        # last predict() call when available (unfiltered), else recompute.
        if self._tracks and set(self._last_predictions) != {t.track_id for t in self._tracks}:
            self._last_predictions = {t.track_id: t.motion.predict() for t in self._tracks}

        track_boxes = (
            np.stack([self._last_predictions[t.track_id] for t in self._tracks])
            if self._tracks
            else empty_boxes()
        )
        track_labels = np.array([t.label for t in self._tracks], dtype=np.int64)

        result = associate_per_class(
            track_boxes, track_labels, dets.boxes, dets.labels, cfg.iou_threshold
        )

        for t_idx, d_idx in result.matches:
            self._tracks[t_idx].mark_matched(
                dets.boxes[d_idx], cfg.match_gain, cfg.max_confidence
            )
        for t_idx in result.unmatched_tracks:
            self._tracks[t_idx].mark_missed(cfg.miss_penalty)
        for d_idx in result.unmatched_detections:
            self._spawn(dets.boxes[d_idx], int(dets.labels[d_idx]))

        self._tracks = [t for t in self._tracks if t.alive]
        self._frames_processed += 1
        self._last_predictions = {}

    # ------------------------------------------------------------------ #
    # Internals
    # ------------------------------------------------------------------ #

    def _spawn(self, box: np.ndarray, label: int) -> None:
        if not is_valid(box[None, :])[0]:
            return
        motion: MotionModel
        if self.config.motion_model == "decay":
            motion = ExponentialDecayMotion(box, eta=self.config.eta)
        else:
            motion = KalmanMotion(box)
        self._tracks.append(
            TrackState(
                track_id=self._next_id,
                label=label,
                motion=motion,
                confidence=self.config.initial_confidence,
                last_box=np.asarray(box, dtype=np.float64).copy(),
            )
        )
        self._next_id += 1

    def _clip(self, box: np.ndarray) -> np.ndarray:
        if self.image_size is None:
            return box
        w, h = self.image_size
        return clip_boxes(box[None, :], w, h)[0]

    def _passes_filters(self, box: np.ndarray) -> bool:
        cfg = self.config
        width = box[2] - box[0]
        height = box[3] - box[1]
        if width < cfg.min_prediction_width or height <= 0:
            return False
        if self.image_size is not None:
            img_w, img_h = self.image_size
            clipped = self._clip(box)
            full_area = max(width * height, 1e-9)
            vis_area = max(0.0, clipped[2] - clipped[0]) * max(0.0, clipped[3] - clipped[1])
            if vis_area / full_area < cfg.min_visible_fraction:
                return False
        return True
