"""Trackers: the CaTDet tracker (paper §4.1) and a SORT baseline.

The CaTDet tracker is *not* a conventional tracklet producer: its output is
the predicted next-frame locations of currently tracked objects, which are
fed to the refinement network as regions of interest.
"""

from repro.tracker.kalman import (
    BatchBoxKalman,
    BatchKalman,
    ConstantVelocityBoxKalman,
    KalmanFilter,
)
from repro.tracker.motion import (
    DecayMotionBank,
    ExponentialDecayMotion,
    KalmanMotion,
    KalmanMotionBank,
    MotionModel,
)
from repro.tracker.state import TrackState
from repro.tracker.association import AssociationResult, associate, associate_per_class
from repro.tracker.catdet_tracker import CaTDetTracker, TrackerConfig
from repro.tracker.mot_metrics import (
    MotAccumulator,
    evaluate_tracking,
    hypothesis_frames_from_tracklets,
)
from repro.tracker.reference import ScalarCaTDetTracker, ScalarSort
from repro.tracker.sort import Sort, SortConfig, Tracklet

__all__ = [
    "KalmanFilter",
    "ConstantVelocityBoxKalman",
    "BatchKalman",
    "BatchBoxKalman",
    "ExponentialDecayMotion",
    "KalmanMotion",
    "DecayMotionBank",
    "KalmanMotionBank",
    "MotionModel",
    "TrackState",
    "AssociationResult",
    "associate",
    "associate_per_class",
    "CaTDetTracker",
    "TrackerConfig",
    "Sort",
    "SortConfig",
    "Tracklet",
    "ScalarCaTDetTracker",
    "ScalarSort",
    "MotAccumulator",
    "evaluate_tracking",
    "hypothesis_frames_from_tracklets",
]
