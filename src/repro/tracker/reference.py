"""Scalar (pre-vectorization) reference trackers.

These are the original per-track-object implementations of
:class:`repro.tracker.sort.Sort` and
:class:`repro.tracker.catdet_tracker.CaTDetTracker`, kept verbatim after the
trackers moved to stacked columnar state (one motion bank + flat arrays per
field instead of a Python list of track objects).  They serve two purposes:

* **oracles** — the property tests drive both implementations with the same
  detection streams and assert identical emitted detections and lifecycle
  state (bit-identical for the decay motion model, allclose for Kalman,
  whose batched matmuls may differ in the last ulp);
* **baselines** — ``repro bench`` measures the columnar trackers against
  these loops, making the ≥2x batched-vs-scalar gate a recorded number.

Do not use them in production paths.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from repro.boxes.box import clip_boxes, empty_boxes, is_valid
from repro.detections import Detections
from repro.tracker.association import associate_per_class
from repro.tracker.catdet_tracker import TrackerConfig
from repro.tracker.kalman import ConstantVelocityBoxKalman
from repro.tracker.motion import ExponentialDecayMotion, KalmanMotion, MotionModel
from repro.tracker.sort import SortConfig, Tracklet
from repro.tracker.state import TrackState


class _ScalarSortTrack:
    def __init__(self, track_id: int, label: int, box: np.ndarray):
        self.track_id = track_id
        self.label = label
        self.kf = ConstantVelocityBoxKalman(box)
        self.hits = 1
        self.time_since_update = 0
        self.age = 0
        self.last_box = np.asarray(box, dtype=np.float64).copy()


class ScalarSort:
    """The original per-track-object SORT loop (reference implementation)."""

    def __init__(self, config: SortConfig = SortConfig()):
        self.config = config
        self._tracks: List[_ScalarSortTrack] = []
        self._next_id = 0
        self._frame = 0
        self.tracklets: Dict[int, Tracklet] = {}

    def reset(self) -> None:
        self._tracks.clear()
        self._next_id = 0
        self._frame = 0
        self.tracklets.clear()

    def update(self, detections: Detections) -> Detections:
        cfg = self.config
        predictions = []
        for track in self._tracks:
            predictions.append(track.kf.predict())
            track.age += 1
            track.time_since_update += 1
        pred_boxes = np.stack(predictions) if predictions else empty_boxes()
        pred_labels = np.array([t.label for t in self._tracks], dtype=np.int64)

        result = associate_per_class(
            pred_boxes, pred_labels, detections.boxes, detections.labels, cfg.iou_threshold
        )

        for t_idx, d_idx in result.matches:
            track = self._tracks[t_idx]
            track.kf.update(detections.boxes[d_idx])
            track.last_box = detections.boxes[d_idx].copy()
            track.hits += 1
            track.time_since_update = 0
        for d_idx in result.unmatched_detections:
            self._spawn(detections.boxes[d_idx], int(detections.labels[d_idx]))

        self._tracks = [t for t in self._tracks if t.time_since_update <= cfg.max_age]

        out_boxes, out_labels, out_ids = [], [], []
        for track in self._tracks:
            confirmed = track.hits >= cfg.min_hits or self._frame < cfg.min_hits
            if track.time_since_update == 0 and confirmed:
                out_boxes.append(track.last_box)
                out_labels.append(track.label)
                out_ids.append(track.track_id)
                tracklet = self.tracklets.setdefault(
                    track.track_id, Tracklet(track.track_id, track.label)
                )
                tracklet.append(self._frame, track.last_box)
        self._frame += 1

        if not out_boxes:
            return Detections.empty()
        return Detections(
            np.stack(out_boxes),
            np.ones(len(out_boxes)),
            np.array(out_labels, dtype=np.int64),
        )

    def _spawn(self, box: np.ndarray, label: int) -> None:
        if box[2] <= box[0] or box[3] <= box[1]:
            return
        self._tracks.append(_ScalarSortTrack(self._next_id, label, box))
        self._next_id += 1


class ScalarCaTDetTracker:
    """The original per-track-object CaTDet tracker loop (reference)."""

    def __init__(
        self,
        config: TrackerConfig = TrackerConfig(),
        image_size: Optional[tuple] = None,
    ):
        self.config = config
        self.image_size = image_size
        self._tracks: List[TrackState] = []
        self._next_id = 0
        self._frames_processed = 0
        self._last_predictions: Dict[int, np.ndarray] = {}

    @property
    def tracks(self) -> List[TrackState]:
        return list(self._tracks)

    @property
    def frames_processed(self) -> int:
        return self._frames_processed

    def reset(self) -> None:
        self._tracks.clear()
        self._next_id = 0
        self._frames_processed = 0
        self._last_predictions.clear()

    def predict(self) -> Detections:
        self._last_predictions = {}
        if not self._tracks:
            return Detections.empty()
        boxes = []
        scores = []
        labels = []
        for track in self._tracks:
            pred = track.motion.predict()
            self._last_predictions[track.track_id] = pred
            if not self._passes_filters(pred):
                continue
            boxes.append(self._clip(pred))
            scores.append(min(track.confidence / self.config.max_confidence, 1.0))
            labels.append(track.label)
        if not boxes:
            return Detections.empty()
        return Detections(np.stack(boxes), np.array(scores), np.array(labels, dtype=np.int64))

    def update(self, detections: Detections) -> np.ndarray:
        cfg = self.config
        keep = detections.scores >= cfg.input_score_threshold
        dets = detections.select(keep)

        if self._tracks and set(self._last_predictions) != {t.track_id for t in self._tracks}:
            self._last_predictions = {t.track_id: t.motion.predict() for t in self._tracks}

        track_boxes = (
            np.stack([self._last_predictions[t.track_id] for t in self._tracks])
            if self._tracks
            else empty_boxes()
        )
        track_labels = np.array([t.label for t in self._tracks], dtype=np.int64)

        result = associate_per_class(
            track_boxes, track_labels, dets.boxes, dets.labels, cfg.iou_threshold
        )

        det_ids = np.full(len(dets), -1, dtype=np.int64)
        for t_idx, d_idx in result.matches:
            det_ids[d_idx] = self._tracks[t_idx].track_id
            self._tracks[t_idx].mark_matched(
                dets.boxes[d_idx], cfg.match_gain, cfg.max_confidence
            )
        for t_idx in result.unmatched_tracks:
            self._tracks[t_idx].mark_missed(cfg.miss_penalty)
        for d_idx in result.unmatched_detections:
            det_ids[d_idx] = self._spawn(dets.boxes[d_idx], int(dets.labels[d_idx]))

        self._tracks = [t for t in self._tracks if t.alive]
        self._frames_processed += 1
        self._last_predictions = {}

        track_ids = np.full(len(detections), -1, dtype=np.int64)
        track_ids[np.flatnonzero(keep)] = det_ids
        return track_ids

    def _spawn(self, box: np.ndarray, label: int) -> int:
        if not is_valid(box[None, :])[0]:
            return -1
        motion: MotionModel
        if self.config.motion_model == "decay":
            motion = ExponentialDecayMotion(box, eta=self.config.eta)
        else:
            motion = KalmanMotion(box)
        self._tracks.append(
            TrackState(
                track_id=self._next_id,
                label=label,
                motion=motion,
                confidence=self.config.initial_confidence,
                last_box=np.asarray(box, dtype=np.float64).copy(),
            )
        )
        spawned = self._next_id
        self._next_id += 1
        return spawned

    def _clip(self, box: np.ndarray) -> np.ndarray:
        if self.image_size is None:
            return box
        w, h = self.image_size
        return clip_boxes(box[None, :], w, h)[0]

    def _passes_filters(self, box: np.ndarray) -> bool:
        cfg = self.config
        width = box[2] - box[0]
        height = box[3] - box[1]
        if width < cfg.min_prediction_width or height <= 0:
            return False
        if self.image_size is not None:
            img_w, img_h = self.image_size
            clipped = self._clip(box)
            full_area = max(width * height, 1e-9)
            vis_area = max(0.0, clipped[2] - clipped[0]) * max(0.0, clipped[3] - clipped[1])
            if vis_area / full_area < cfg.min_visible_fraction:
                return False
        return True
