"""Per-track bookkeeping state."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from repro.tracker.motion import MotionModel


@dataclass
class TrackState:
    """One tracked object inside the CaTDet tracker.

    Attributes
    ----------
    track_id:
        Unique id within the tracker instance.
    label:
        Class index of the object.
    motion:
        The motion model carrying position/velocity state.
    confidence:
        Adaptive lifecycle confidence (paper §4.1): every match adds to it up
        to an upper limit, every miss subtracts; the track is discarded when
        it drops below zero.
    hits / misses / age:
        Total matched frames, consecutive missed frames, and frames since
        creation (diagnostics and lifecycle decisions).
    last_box:
        Most recent associated detection box (or coasted prediction).
    """

    track_id: int
    label: int
    motion: MotionModel
    confidence: float
    hits: int = 1
    misses: int = 0
    age: int = 0
    last_box: Optional[np.ndarray] = None

    def mark_matched(self, box: np.ndarray, gain: float, max_confidence: float) -> None:
        """Register a matched detection this frame."""
        self.motion.update(box)
        self.last_box = np.asarray(box, dtype=np.float64).reshape(4).copy()
        self.confidence = min(self.confidence + gain, max_confidence)
        self.hits += 1
        self.misses = 0
        self.age += 1

    def mark_missed(self, penalty: float) -> None:
        """Register a missed frame (track coasts on constant motion)."""
        self.motion.coast()
        self.confidence -= penalty
        self.misses += 1
        self.age += 1

    @property
    def alive(self) -> bool:
        """Tracks die when adaptive confidence goes below zero."""
        return self.confidence >= 0.0
