"""SORT baseline tracker (Bewley et al., 2016).

The conventional tracklet-producing tracker CaTDet's tracker is derived
from: Kalman constant-velocity motion, Hungarian association over IoU, and a
fixed ``max_age`` / ``min_hits`` lifecycle.  Included as the comparison
baseline for tracker ablations.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from repro.boxes.box import empty_boxes
from repro.detections import Detections
from repro.tracker.association import associate_per_class
from repro.tracker.kalman import ConstantVelocityBoxKalman


@dataclass(frozen=True)
class SortConfig:
    """SORT hyper-parameters (defaults follow the reference implementation)."""

    max_age: int = 1
    min_hits: int = 3
    iou_threshold: float = 0.3

    def __post_init__(self) -> None:
        if self.max_age < 0:
            raise ValueError(f"max_age must be >= 0, got {self.max_age}")
        if self.min_hits < 0:
            raise ValueError(f"min_hits must be >= 0, got {self.min_hits}")
        if not (0.0 <= self.iou_threshold <= 1.0):
            raise ValueError(f"iou_threshold must lie in [0, 1], got {self.iou_threshold}")


@dataclass
class Tracklet:
    """One confirmed track segment emitted by :class:`Sort`."""

    track_id: int
    label: int
    frames: List[int] = field(default_factory=list)
    boxes: List[np.ndarray] = field(default_factory=list)

    def append(self, frame: int, box: np.ndarray) -> None:
        self.frames.append(frame)
        self.boxes.append(np.asarray(box, dtype=np.float64).copy())

    def __len__(self) -> int:
        return len(self.frames)


class _SortTrack:
    def __init__(self, track_id: int, label: int, box: np.ndarray):
        self.track_id = track_id
        self.label = label
        self.kf = ConstantVelocityBoxKalman(box)
        self.hits = 1
        self.time_since_update = 0
        self.age = 0
        self.last_box = np.asarray(box, dtype=np.float64).copy()


class Sort:
    """Frame-by-frame SORT tracker.

    Call :meth:`update` with each frame's detections; it returns the
    confirmed tracks visible in that frame as ``(boxes, labels, track_ids)``.
    Completed tracklets accumulate in :attr:`tracklets`.
    """

    def __init__(self, config: SortConfig = SortConfig()):
        self.config = config
        self._tracks: List[_SortTrack] = []
        self._next_id = 0
        self._frame = 0
        self.tracklets: Dict[int, Tracklet] = {}

    def reset(self) -> None:
        """Drop all state."""
        self._tracks.clear()
        self._next_id = 0
        self._frame = 0
        self.tracklets.clear()

    def update(self, detections: Detections) -> Detections:
        """Process one frame; returns confirmed tracks as detections.

        The returned scores are all 1.0 (SORT has no per-track confidence).
        """
        cfg = self.config
        predictions = []
        for track in self._tracks:
            predictions.append(track.kf.predict())
            track.age += 1
            track.time_since_update += 1
        pred_boxes = np.stack(predictions) if predictions else empty_boxes()
        pred_labels = np.array([t.label for t in self._tracks], dtype=np.int64)

        result = associate_per_class(
            pred_boxes, pred_labels, detections.boxes, detections.labels, cfg.iou_threshold
        )

        for t_idx, d_idx in result.matches:
            track = self._tracks[t_idx]
            track.kf.update(detections.boxes[d_idx])
            track.last_box = detections.boxes[d_idx].copy()
            track.hits += 1
            track.time_since_update = 0
        for d_idx in result.unmatched_detections:
            self._spawn(detections.boxes[d_idx], int(detections.labels[d_idx]))

        self._tracks = [t for t in self._tracks if t.time_since_update <= cfg.max_age]

        out_boxes, out_labels, out_ids = [], [], []
        for track in self._tracks:
            confirmed = track.hits >= cfg.min_hits or self._frame < cfg.min_hits
            if track.time_since_update == 0 and confirmed:
                out_boxes.append(track.last_box)
                out_labels.append(track.label)
                out_ids.append(track.track_id)
                tracklet = self.tracklets.setdefault(
                    track.track_id, Tracklet(track.track_id, track.label)
                )
                tracklet.append(self._frame, track.last_box)
        self._frame += 1

        if not out_boxes:
            return Detections.empty()
        return Detections(
            np.stack(out_boxes),
            np.ones(len(out_boxes)),
            np.array(out_labels, dtype=np.int64),
        )

    def _spawn(self, box: np.ndarray, label: int) -> None:
        if box[2] <= box[0] or box[3] <= box[1]:
            return
        self._tracks.append(_SortTrack(self._next_id, label, box))
        self._next_id += 1
