"""SORT baseline tracker (Bewley et al., 2016).

The conventional tracklet-producing tracker CaTDet's tracker is derived
from: Kalman constant-velocity motion, Hungarian association over IoU, and a
fixed ``max_age`` / ``min_hits`` lifecycle.  Included as the comparison
baseline for tracker ablations.

Track state is columnar: all Kalman filters live in one
:class:`repro.tracker.kalman.BatchBoxKalman` and the lifecycle counters in
flat arrays, so per-frame maintenance is batched array math rather than a
loop over track objects (the original loop is preserved as
:class:`repro.tracker.reference.ScalarSort`).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

import numpy as np

from repro.detections import Detections
from repro.tracker.association import associate_per_class
from repro.tracker.kalman import BatchBoxKalman


@dataclass(frozen=True)
class SortConfig:
    """SORT hyper-parameters (defaults follow the reference implementation)."""

    max_age: int = 1
    min_hits: int = 3
    iou_threshold: float = 0.3

    def __post_init__(self) -> None:
        if self.max_age < 0:
            raise ValueError(f"max_age must be >= 0, got {self.max_age}")
        if self.min_hits < 0:
            raise ValueError(f"min_hits must be >= 0, got {self.min_hits}")
        if not (0.0 <= self.iou_threshold <= 1.0):
            raise ValueError(f"iou_threshold must lie in [0, 1], got {self.iou_threshold}")


@dataclass
class Tracklet:
    """One confirmed track segment emitted by :class:`Sort`."""

    track_id: int
    label: int
    frames: List[int] = field(default_factory=list)
    boxes: List[np.ndarray] = field(default_factory=list)

    def append(self, frame: int, box: np.ndarray) -> None:
        self.frames.append(frame)
        self.boxes.append(np.asarray(box, dtype=np.float64).copy())

    def __len__(self) -> int:
        return len(self.frames)


class Sort:
    """Frame-by-frame SORT tracker.

    Call :meth:`update` with each frame's detections; it returns the
    confirmed tracks visible in that frame as ``(boxes, labels, track_ids)``.
    Completed tracklets accumulate in :attr:`tracklets`.
    """

    def __init__(self, config: SortConfig = SortConfig()):
        self.config = config
        self._size = 0
        cap = 16
        self._track_ids = np.zeros(cap, dtype=np.int64)
        self._labels = np.zeros(cap, dtype=np.int64)
        self._hits = np.zeros(cap, dtype=np.int64)
        self._time_since_update = np.zeros(cap, dtype=np.int64)
        self._age = np.zeros(cap, dtype=np.int64)
        self._last_boxes = np.zeros((cap, 4))
        self._kf = BatchBoxKalman()
        self._next_id = 0
        self._frame = 0
        self.tracklets: Dict[int, Tracklet] = {}

    def reset(self) -> None:
        """Drop all state."""
        self._size = 0
        self._kf = BatchBoxKalman()
        self._next_id = 0
        self._frame = 0
        self.tracklets.clear()

    def _ensure_capacity(self, extra: int) -> None:
        needed = self._size + extra
        cap = self._track_ids.shape[0]
        if needed <= cap:
            return
        while cap < needed:
            cap *= 2
        for name in ("_track_ids", "_labels", "_hits", "_time_since_update", "_age"):
            arr = getattr(self, name)
            grown = np.zeros(cap, dtype=np.int64)
            grown[: self._size] = arr[: self._size]
            setattr(self, name, grown)
        grown_boxes = np.zeros((cap, 4))
        grown_boxes[: self._size] = self._last_boxes[: self._size]
        self._last_boxes = grown_boxes

    def update(self, detections: Detections) -> Detections:
        """Process one frame; returns confirmed tracks as detections.

        The returned scores are all 1.0 (SORT has no per-track confidence).
        """
        cfg = self.config
        t = self._size
        pred_boxes = self._kf.predict() if t else np.zeros((0, 4))
        self._age[:t] += 1
        self._time_since_update[:t] += 1
        pred_labels = self._labels[:t]

        result = associate_per_class(
            pred_boxes, pred_labels, detections.boxes, detections.labels, cfg.iou_threshold
        )

        if result.matches.shape[0]:
            rows = result.matches[:, 0]
            matched_boxes = detections.boxes[result.matches[:, 1]]
            self._kf.update(rows, matched_boxes)
            self._last_boxes[rows] = matched_boxes
            self._hits[rows] += 1
            self._time_since_update[rows] = 0
        if result.unmatched_detections.size:
            self._spawn_many(
                detections.boxes[result.unmatched_detections],
                detections.labels[result.unmatched_detections],
            )

        keep = self._time_since_update[: self._size] <= cfg.max_age
        if not keep.all():
            kept = int(keep.sum())
            self._track_ids[:kept] = self._track_ids[: self._size][keep]
            self._labels[:kept] = self._labels[: self._size][keep]
            self._hits[:kept] = self._hits[: self._size][keep]
            self._time_since_update[:kept] = self._time_since_update[: self._size][keep]
            self._age[:kept] = self._age[: self._size][keep]
            self._last_boxes[:kept] = self._last_boxes[: self._size][keep]
            self._kf.keep(keep)
            self._size = kept

        # Emit confirmed tracks seen this frame, in track order.
        t = self._size
        confirmed = (self._hits[:t] >= cfg.min_hits) | (self._frame < cfg.min_hits)
        emit = np.flatnonzero((self._time_since_update[:t] == 0) & confirmed)
        for i in emit:
            tid = int(self._track_ids[i])
            tracklet = self.tracklets.setdefault(tid, Tracklet(tid, int(self._labels[i])))
            tracklet.append(self._frame, self._last_boxes[i])
        self._frame += 1

        if emit.size == 0:
            return Detections.empty()
        return Detections(
            self._last_boxes[emit],
            np.ones(emit.size),
            self._labels[emit].copy(),
        )

    def _spawn_many(self, boxes: np.ndarray, labels: np.ndarray) -> None:
        """Start one track per non-degenerate box, in input order.

        Degenerate boxes are skipped without consuming a track id, exactly
        as the original per-detection spawn loop did.
        """
        boxes = np.asarray(boxes, dtype=np.float64).reshape(-1, 4)
        valid = (boxes[:, 2] > boxes[:, 0]) & (boxes[:, 3] > boxes[:, 1])
        boxes = boxes[valid]
        b = boxes.shape[0]
        if b == 0:
            return
        self._ensure_capacity(b)
        lo, hi = self._size, self._size + b
        self._kf.add_many(boxes)
        self._track_ids[lo:hi] = np.arange(self._next_id, self._next_id + b)
        self._labels[lo:hi] = np.asarray(labels, dtype=np.int64).reshape(-1)[valid]
        self._hits[lo:hi] = 1
        self._time_since_update[lo:hi] = 0
        self._age[lo:hi] = 0
        self._last_boxes[lo:hi] = boxes
        self._size = hi
        self._next_id += b
