"""Object association between consecutive frames (paper §4.1).

An N-to-M matching problem over negative-IoU costs, solved with the
Hungarian algorithm.  Pairs whose IoU does not exceed the threshold ``beta``
are declared non-relevant regardless of the assignment (the paper gates at
``beta = 0``, i.e. any positive overlap is allowed).  Association runs once
per class.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

import numpy as np

from repro.boxes.iou import iou_matrix
from repro.hungarian import hungarian


@dataclass
class AssociationResult:
    """Outcome of matching previous-frame tracks to new-frame detections.

    Attributes
    ----------
    matches : (K, 2) int array
        Pairs ``(track_index, detection_index)``.
    unmatched_tracks : int array
        Indices of tracks with no surviving match ("lost objects").
    unmatched_detections : int array
        Indices of detections with no surviving match ("emerging objects").
    """

    matches: np.ndarray
    unmatched_tracks: np.ndarray
    unmatched_detections: np.ndarray


def associate(
    track_boxes: np.ndarray,
    detection_boxes: np.ndarray,
    iou_threshold: float = 0.0,
) -> AssociationResult:
    """Match one class's tracks to detections by maximum-IoU assignment.

    Parameters
    ----------
    track_boxes : (N, 4) array
        Predicted locations of existing tracks.
    detection_boxes : (M, 4) array
        Current-frame detections of the same class.
    iou_threshold:
        ``beta`` — pairs with ``IoU <= beta`` are severed after assignment.

    Notes
    -----
    The cost matrix holds negative IoUs, so the minimum-cost assignment
    maximizes total IoU, exactly as in SORT.
    """
    track_boxes = np.asarray(track_boxes, dtype=np.float64).reshape(-1, 4)
    detection_boxes = np.asarray(detection_boxes, dtype=np.float64).reshape(-1, 4)
    n, m = track_boxes.shape[0], detection_boxes.shape[0]
    if n == 0 or m == 0:
        return AssociationResult(
            matches=np.zeros((0, 2), dtype=np.int64),
            unmatched_tracks=np.arange(n, dtype=np.int64),
            unmatched_detections=np.arange(m, dtype=np.int64),
        )

    ious = iou_matrix(track_boxes, detection_boxes)
    rows, cols = hungarian(-ious)

    keep = ious[rows, cols] > iou_threshold
    matches = np.stack([rows[keep], cols[keep]], axis=1) if keep.any() else np.zeros((0, 2), dtype=np.int64)
    # Assignment indices are unique, so the unmatched sets are plain sorted
    # set differences — no per-index membership scan.
    unmatched_tracks = np.setdiff1d(np.arange(n, dtype=np.int64), matches[:, 0], assume_unique=True)
    unmatched_detections = np.setdiff1d(np.arange(m, dtype=np.int64), matches[:, 1], assume_unique=True)
    return AssociationResult(matches.astype(np.int64), unmatched_tracks, unmatched_detections)


def associate_per_class(
    track_boxes: np.ndarray,
    track_labels: np.ndarray,
    detection_boxes: np.ndarray,
    detection_labels: np.ndarray,
    iou_threshold: float = 0.0,
) -> AssociationResult:
    """Run :func:`associate` independently for every class label.

    Index spaces of the returned result refer to the *full* input arrays.
    """
    track_labels = np.asarray(track_labels, dtype=np.int64).reshape(-1)
    detection_labels = np.asarray(detection_labels, dtype=np.int64).reshape(-1)
    track_boxes = np.asarray(track_boxes, dtype=np.float64).reshape(-1, 4)
    detection_boxes = np.asarray(detection_boxes, dtype=np.float64).reshape(-1, 4)
    if track_boxes.shape[0] != track_labels.shape[0]:
        raise ValueError("track_boxes and track_labels must agree in length")
    if detection_boxes.shape[0] != detection_labels.shape[0]:
        raise ValueError("detection_boxes and detection_labels must agree in length")

    all_matches: List[np.ndarray] = []
    unmatched_tracks: List[np.ndarray] = []
    unmatched_dets: List[np.ndarray] = []
    labels = np.unique(np.concatenate([track_labels, detection_labels]))
    # One stable label-sorted permutation per side; each class's indices are
    # then a contiguous block (in ascending original order, since the sort is
    # stable) instead of a fresh full scan of the label arrays per class.
    t_perm = np.argsort(track_labels, kind="stable")
    d_perm = np.argsort(detection_labels, kind="stable")
    t_sorted = track_labels[t_perm]
    d_sorted = detection_labels[d_perm]
    t_lo = np.searchsorted(t_sorted, labels, side="left")
    t_hi = np.searchsorted(t_sorted, labels, side="right")
    d_lo = np.searchsorted(d_sorted, labels, side="left")
    d_hi = np.searchsorted(d_sorted, labels, side="right")
    for k, cls in enumerate(labels):
        t_idx = t_perm[t_lo[k] : t_hi[k]]
        d_idx = d_perm[d_lo[k] : d_hi[k]]
        res = associate(track_boxes[t_idx], detection_boxes[d_idx], iou_threshold)
        if res.matches.shape[0]:
            all_matches.append(
                np.stack([t_idx[res.matches[:, 0]], d_idx[res.matches[:, 1]]], axis=1)
            )
        unmatched_tracks.append(t_idx[res.unmatched_tracks])
        unmatched_dets.append(d_idx[res.unmatched_detections])

    matches = (
        np.concatenate(all_matches, axis=0)
        if all_matches
        else np.zeros((0, 2), dtype=np.int64)
    )
    return AssociationResult(
        matches=matches.astype(np.int64),
        unmatched_tracks=np.sort(np.concatenate(unmatched_tracks)).astype(np.int64)
        if unmatched_tracks
        else np.zeros(0, dtype=np.int64),
        unmatched_detections=np.sort(np.concatenate(unmatched_dets)).astype(np.int64)
        if unmatched_dets
        else np.zeros(0, dtype=np.int64),
    )
