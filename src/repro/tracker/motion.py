"""Motion prediction models for the tracker.

The paper replaces SORT's Kalman filter with an exponential-decay velocity
estimate (§4.1, equations 1–3): it needs no per-dataset tuning and is robust
across frame rates and resolutions.  Both models are provided behind a common
interface so the choice is an ablation knob.

State convention (paper §4.1): position vector ``x = [x, y, s]`` holds the
box center and its *width*; a scalar ``r`` holds the height/width aspect
ratio.  Velocities ``x_dot`` live on the same three components.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Optional

import numpy as np

from repro.tracker.kalman import ConstantVelocityBoxKalman


def box_to_xsr(box: np.ndarray) -> tuple:
    """Convert ``[x1,y1,x2,y2]`` to the paper's ``(x, y, s, r)`` state."""
    x1, y1, x2, y2 = np.asarray(box, dtype=np.float64).reshape(4)
    w = x2 - x1
    h = y2 - y1
    if w <= 0 or h <= 0:
        raise ValueError(f"box must have positive size, got {[x1, y1, x2, y2]}")
    return x1 + w / 2.0, y1 + h / 2.0, w, h / w


def xsr_to_box(x: float, y: float, s: float, r: float) -> np.ndarray:
    """Convert the paper's ``(x, y, s, r)`` state back to a box."""
    s = max(float(s), 1e-6)
    r = max(float(r), 1e-6)
    w = s
    h = s * r
    return np.array([x - w / 2.0, y - h / 2.0, x + w / 2.0, y + h / 2.0])


class MotionModel(ABC):
    """Per-track motion predictor interface."""

    @abstractmethod
    def predict(self) -> np.ndarray:
        """Predicted box for the next frame (does not consume an observation)."""

    @abstractmethod
    def update(self, box: np.ndarray) -> None:
        """Incorporate the matched detection for the current frame."""

    @abstractmethod
    def coast(self) -> None:
        """Advance one frame without an observation (missed detection)."""


class ExponentialDecayMotion(MotionModel):
    """The paper's exponential-decay motion model.

    Update rule (paper equations 1–3), with ``eta`` the decay coefficient:

    .. math::

        \\dot x_{n+1} = \\eta \\dot x_n + (1 - \\eta)(x_{n+1} - x_n)

        x'_{n+1} = x_n + \\dot x_n, \\qquad r'_{n+1} = r_n

    On a miss the motion is kept constant and the state coasts forward.
    Emerging objects start with zero velocity.
    """

    def __init__(self, box: np.ndarray, eta: float = 0.7):
        if not (0.0 <= eta <= 1.0):
            raise ValueError(f"eta must lie in [0, 1], got {eta}")
        self.eta = float(eta)
        x, y, s, r = box_to_xsr(box)
        self.pos = np.array([x, y, s])
        self.vel = np.zeros(3)
        self.r = float(r)

    def predict(self) -> np.ndarray:
        """Next-frame box: position advanced by current velocity, aspect kept."""
        nxt = self.pos + self.vel
        return xsr_to_box(nxt[0], nxt[1], nxt[2], self.r)

    def update(self, box: np.ndarray) -> None:
        x, y, s, r = box_to_xsr(box)
        new_pos = np.array([x, y, s])
        self.vel = self.eta * self.vel + (1.0 - self.eta) * (new_pos - self.pos)
        self.pos = new_pos
        self.r = float(r)

    def coast(self) -> None:
        """Missed frame: keep velocity constant, advance position."""
        self.pos = self.pos + self.vel


class KalmanMotion(MotionModel):
    """SORT's constant-velocity Kalman filter behind the common interface."""

    def __init__(self, box: np.ndarray):
        self._kf = ConstantVelocityBoxKalman(box)
        self._predicted: Optional[np.ndarray] = None

    def predict(self) -> np.ndarray:
        self._predicted = self._kf.predict()
        return self._predicted.copy()

    def update(self, box: np.ndarray) -> None:
        self._kf.update(box)

    def coast(self) -> None:
        # Prediction already advanced the filter state; nothing more to do.
        if self._predicted is None:
            self._kf.predict()
