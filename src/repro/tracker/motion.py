"""Motion prediction models for the tracker.

The paper replaces SORT's Kalman filter with an exponential-decay velocity
estimate (§4.1, equations 1–3): it needs no per-dataset tuning and is robust
across frame rates and resolutions.  Both models are provided behind a common
interface so the choice is an ablation knob.

State convention (paper §4.1): position vector ``x = [x, y, s]`` holds the
box center and its *width*; a scalar ``r`` holds the height/width aspect
ratio.  Velocities ``x_dot`` live on the same three components.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Optional

import numpy as np

from repro.tracker.kalman import BatchBoxKalman, ConstantVelocityBoxKalman, KalmanFilter


def box_to_xsr(box: np.ndarray) -> tuple:
    """Convert ``[x1,y1,x2,y2]`` to the paper's ``(x, y, s, r)`` state."""
    x1, y1, x2, y2 = np.asarray(box, dtype=np.float64).reshape(4)
    w = x2 - x1
    h = y2 - y1
    if w <= 0 or h <= 0:
        raise ValueError(f"box must have positive size, got {[x1, y1, x2, y2]}")
    return x1 + w / 2.0, y1 + h / 2.0, w, h / w


def xsr_to_box(x: float, y: float, s: float, r: float) -> np.ndarray:
    """Convert the paper's ``(x, y, s, r)`` state back to a box."""
    s = max(float(s), 1e-6)
    r = max(float(r), 1e-6)
    w = s
    h = s * r
    return np.array([x - w / 2.0, y - h / 2.0, x + w / 2.0, y + h / 2.0])


class MotionModel(ABC):
    """Per-track motion predictor interface."""

    @abstractmethod
    def predict(self) -> np.ndarray:
        """Predicted box for the next frame (does not consume an observation)."""

    @abstractmethod
    def update(self, box: np.ndarray) -> None:
        """Incorporate the matched detection for the current frame."""

    @abstractmethod
    def coast(self) -> None:
        """Advance one frame without an observation (missed detection)."""


class ExponentialDecayMotion(MotionModel):
    """The paper's exponential-decay motion model.

    Update rule (paper equations 1–3), with ``eta`` the decay coefficient:

    .. math::

        \\dot x_{n+1} = \\eta \\dot x_n + (1 - \\eta)(x_{n+1} - x_n)

        x'_{n+1} = x_n + \\dot x_n, \\qquad r'_{n+1} = r_n

    On a miss the motion is kept constant and the state coasts forward.
    Emerging objects start with zero velocity.
    """

    def __init__(self, box: np.ndarray, eta: float = 0.7):
        if not (0.0 <= eta <= 1.0):
            raise ValueError(f"eta must lie in [0, 1], got {eta}")
        self.eta = float(eta)
        x, y, s, r = box_to_xsr(box)
        self.pos = np.array([x, y, s])
        self.vel = np.zeros(3)
        self.r = float(r)

    def predict(self) -> np.ndarray:
        """Next-frame box: position advanced by current velocity, aspect kept."""
        nxt = self.pos + self.vel
        return xsr_to_box(nxt[0], nxt[1], nxt[2], self.r)

    def update(self, box: np.ndarray) -> None:
        x, y, s, r = box_to_xsr(box)
        new_pos = np.array([x, y, s])
        self.vel = self.eta * self.vel + (1.0 - self.eta) * (new_pos - self.pos)
        self.pos = new_pos
        self.r = float(r)

    def coast(self) -> None:
        """Missed frame: keep velocity constant, advance position."""
        self.pos = self.pos + self.vel


class KalmanMotion(MotionModel):
    """SORT's constant-velocity Kalman filter behind the common interface."""

    def __init__(self, box: np.ndarray):
        self._kf = ConstantVelocityBoxKalman(box)
        self._predicted: Optional[np.ndarray] = None

    def predict(self) -> np.ndarray:
        self._predicted = self._kf.predict()
        return self._predicted.copy()

    def update(self, box: np.ndarray) -> None:
        self._kf.update(box)

    def coast(self) -> None:
        # Prediction already advanced the filter state; nothing more to do.
        if self._predicted is None:
            self._kf.predict()


# --------------------------------------------------------------------------- #
# Batched motion banks
# --------------------------------------------------------------------------- #
#
# The trackers keep all live tracks' motion state stacked in one of these
# banks so per-frame predict/update/coast are single array operations.  Row
# indices are positional: `keep(mask)` compacts rows exactly like filtering
# a Python list, so the tracker's own columnar arrays stay aligned with the
# bank by construction.


def boxes_to_xsr(boxes: np.ndarray) -> tuple:
    """Vectorized :func:`box_to_xsr`: returns ``(pos (N,3), r (N,))``."""
    boxes = np.asarray(boxes, dtype=np.float64).reshape(-1, 4)
    w = boxes[:, 2] - boxes[:, 0]
    h = boxes[:, 3] - boxes[:, 1]
    if np.any(w <= 0) or np.any(h <= 0):
        raise ValueError("boxes must have positive size")
    pos = np.stack([boxes[:, 0] + w / 2.0, boxes[:, 1] + h / 2.0, w], axis=1)
    return pos, h / w


def xsr_to_boxes(pos: np.ndarray, r: np.ndarray) -> np.ndarray:
    """Vectorized :func:`xsr_to_box` over stacked ``(N, 3)`` positions."""
    pos = np.asarray(pos, dtype=np.float64).reshape(-1, 3)
    s = np.maximum(pos[:, 2], 1e-6)
    rr = np.maximum(np.asarray(r, dtype=np.float64).reshape(-1), 1e-6)
    w = s
    h = s * rr
    x, y = pos[:, 0], pos[:, 1]
    return np.stack([x - w / 2.0, y - h / 2.0, x + w / 2.0, y + h / 2.0], axis=1)


class DecayMotionBank:
    """All tracks' :class:`ExponentialDecayMotion` state, stacked.

    Positions ``(T, 3)``, velocities ``(T, 3)`` and aspect ratios ``(T,)``
    live in growing arrays; every operation is elementwise and therefore
    bit-identical to looping the scalar model over tracks.
    """

    def __init__(self, eta: float = 0.7, capacity: int = 16):
        if not (0.0 <= eta <= 1.0):
            raise ValueError(f"eta must lie in [0, 1], got {eta}")
        self.eta = float(eta)
        cap = max(capacity, 1)
        self._pos = np.zeros((cap, 3))
        self._vel = np.zeros((cap, 3))
        self._r = np.zeros(cap)
        self._size = 0

    def __len__(self) -> int:
        return self._size

    def add(self, box: np.ndarray) -> int:
        pos, r = boxes_to_xsr(np.asarray(box, dtype=np.float64).reshape(1, 4))
        if self._size == self._pos.shape[0]:
            self._pos = np.concatenate([self._pos, np.zeros_like(self._pos)])
            self._vel = np.concatenate([self._vel, np.zeros_like(self._vel)])
            self._r = np.concatenate([self._r, np.zeros_like(self._r)])
        row = self._size
        self._pos[row] = pos[0]
        self._vel[row] = 0.0
        self._r[row] = r[0]
        self._size += 1
        return row

    def add_many(self, boxes: np.ndarray) -> np.ndarray:
        """Start one zero-velocity track per box; returns row indices."""
        pos, r = boxes_to_xsr(boxes)
        b = pos.shape[0]
        if b == 0:
            return np.zeros(0, dtype=np.int64)
        while self._size + b > self._pos.shape[0]:
            self._pos = np.concatenate([self._pos, np.zeros_like(self._pos)])
            self._vel = np.concatenate([self._vel, np.zeros_like(self._vel)])
            self._r = np.concatenate([self._r, np.zeros_like(self._r)])
        rows = np.arange(self._size, self._size + b, dtype=np.int64)
        self._pos[rows] = pos
        self._vel[rows] = 0.0
        self._r[rows] = r
        self._size += b
        return rows

    def keep(self, mask: np.ndarray) -> None:
        mask = np.asarray(mask, dtype=bool).reshape(-1)
        kept = int(mask.sum())
        self._pos[:kept] = self._pos[: self._size][mask]
        self._vel[:kept] = self._vel[: self._size][mask]
        self._r[:kept] = self._r[: self._size][mask]
        self._size = kept

    def predict_all(self) -> np.ndarray:
        """Next-frame boxes of all tracks (pure, like the scalar model)."""
        t = self._size
        nxt = self._pos[:t] + self._vel[:t]
        return xsr_to_boxes(nxt, self._r[:t])

    def update(self, rows: np.ndarray, boxes: np.ndarray) -> None:
        rows = np.asarray(rows, dtype=np.int64).reshape(-1)
        if rows.size == 0:
            return
        new_pos, new_r = boxes_to_xsr(boxes)
        old_pos = self._pos[rows]
        self._vel[rows] = self.eta * self._vel[rows] + (1.0 - self.eta) * (new_pos - old_pos)
        self._pos[rows] = new_pos
        self._r[rows] = new_r

    def coast(self, rows: np.ndarray) -> None:
        rows = np.asarray(rows, dtype=np.int64).reshape(-1)
        if rows.size == 0:
            return
        self._pos[rows] += self._vel[rows]

    def snapshot(self, row: int) -> ExponentialDecayMotion:
        """Scalar :class:`ExponentialDecayMotion` copy of one track's state."""
        motion = ExponentialDecayMotion.__new__(ExponentialDecayMotion)
        motion.eta = self.eta
        motion.pos = self._pos[row].copy()
        motion.vel = self._vel[row].copy()
        motion.r = float(self._r[row])
        return motion


class KalmanMotionBank:
    """All tracks' :class:`KalmanMotion` state in one :class:`BatchBoxKalman`.

    Replicates the scalar wrapper's behavior: ``predict`` advances the
    filters (mutating), and ``coast`` only advances filters that have never
    been predicted (the prediction itself already consumed the time step).
    """

    def __init__(self, capacity: int = 16):
        self._kf = BatchBoxKalman(capacity=capacity)
        self._predicted = np.zeros(max(capacity, 1), dtype=bool)

    def __len__(self) -> int:
        return len(self._kf)

    def add(self, box: np.ndarray) -> int:
        row = self._kf.add(box)
        if row >= self._predicted.shape[0]:
            self._predicted = np.concatenate([self._predicted, np.zeros_like(self._predicted)])
        self._predicted[row] = False
        return row

    def add_many(self, boxes: np.ndarray) -> np.ndarray:
        """Start one filter per box in a single batch; returns row indices."""
        rows = self._kf.add_many(boxes)
        while len(self._kf) > self._predicted.shape[0]:
            self._predicted = np.concatenate([self._predicted, np.zeros_like(self._predicted)])
        self._predicted[rows] = False
        return rows

    def keep(self, mask: np.ndarray) -> None:
        mask = np.asarray(mask, dtype=bool).reshape(-1)
        kept = int(mask.sum())
        self._predicted[:kept] = self._predicted[: len(self._kf)][mask]
        self._kf.keep(mask)

    def predict_all(self) -> np.ndarray:
        boxes = self._kf.predict()
        self._predicted[: len(self._kf)] = True
        return boxes

    def update(self, rows: np.ndarray, boxes: np.ndarray) -> None:
        rows = np.asarray(rows, dtype=np.int64).reshape(-1)
        if rows.size == 0:
            return
        self._kf.update(rows, boxes)

    def coast(self, rows: np.ndarray) -> None:
        # Like the scalar wrapper: a predicted filter already advanced this
        # frame; only never-predicted filters step forward (flag left unset,
        # matching KalmanMotion.coast).
        rows = np.asarray(rows, dtype=np.int64).reshape(-1)
        pending = rows[~self._predicted[rows]]
        if pending.size:
            self._kf.predict(pending)

    def snapshot(self, row: int) -> KalmanMotion:
        """Scalar :class:`KalmanMotion` copy of one track's state."""
        x, P = self._kf.state_of(row)
        motion = KalmanMotion.__new__(KalmanMotion)
        kf = ConstantVelocityBoxKalman.__new__(ConstantVelocityBoxKalman)
        F = np.eye(7)
        F[0, 4] = F[1, 5] = F[2, 6] = 1.0
        H = np.zeros((4, 7))
        H[0, 0] = H[1, 1] = H[2, 2] = H[3, 3] = 1.0
        Q = np.eye(7)
        Q[4:, 4:] *= 0.01
        Q[6, 6] *= 0.01
        R = np.diag([1.0, 1.0, 10.0, 10.0])
        kf._kf = KalmanFilter(F, H, Q, R, x, P)
        motion._kf = kf
        motion._predicted = self._kf.z_to_boxes(x[None, :4])[0] if self._predicted[row] else None
        return motion
