"""The simulated detector: samples per-frame detections from a profile.

Determinism contract: detections for (model, seed, sequence, frame) are a
pure function of those four values — independent of call order or of which
other frames were queried.  All per-track randomness is derived from keyed
RNG streams (see :class:`repro.utils.rng.RngFactory`) and cached.
"""

from __future__ import annotations

import weakref
from collections import OrderedDict
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Tuple

import numpy as np

from repro.boxes.box import clip_boxes
from repro.boxes.mask import RegionMask
from repro.detections import Detections
from repro.datasets.types import FrameAnnotations, Sequence
from repro.simdet.profile import DetectorProfile, sigmoid
from repro.utils.rng import RngFactory


@dataclass
class _ClutterSource:
    """A persistent false-positive source (textured background, glare...)."""

    first_frame: int
    last_frame: int
    boxes: np.ndarray  # one per active frame
    label: int
    fire: np.ndarray   # bool per active frame
    score_logits: np.ndarray


class SimulatedDetector:
    """Samples detections for frames of a sequence according to a profile.

    Parameters
    ----------
    profile:
        The model's behavioral statistics.
    seed:
        Experiment-level seed; combined with ``profile.name`` so different
        models see independent randomness on the same data.
    input_scale:
        Image downscale factor applied before the (simulated) network: the
        detector perceives objects ``input_scale`` times smaller.  Used for
        high-resolution datasets processed at reduced resolution
        (CityPersons, §7).
    """

    def __init__(self, profile: DetectorProfile, seed: int = 0, input_scale: float = 1.0):
        if input_scale <= 0:
            raise ValueError(f"input_scale must be positive, got {input_scale}")
        self.profile = profile
        self.seed = int(seed)
        self.input_scale = float(input_scale)
        self._factory = RngFactory(seed)
        self._model_key = profile.name
        # Caches keyed by sequence name.
        self._persistent: Dict[Tuple[str, int], float] = {}
        self._temporal: Dict[Tuple[str, int], np.ndarray] = {}
        self._clutter: Dict[str, List[_ClutterSource]] = {}
        self._track_index: Dict[str, Dict[int, object]] = {}
        # name -> weakref of the sequence object currently owning that
        # name's cache entries, in least-recently-claimed order (see
        # _claim).
        self._owners: "OrderedDict[str, weakref.ref]" = OrderedDict()
        #: Sequences whose latents stay cached at once.  Caches are pure
        #: deterministic values, so eviction never changes results — it
        #: only bounds memory for long-lived detectors serving stream
        #: churn (new sequence names arriving over days).
        self.max_cached_sequences = 64
        #: Detector invocations so far; a batched call counts as **one**
        #: (the quantity serving layers amortize fixed per-call overhead
        #: over — see :mod:`repro.serve`).
        self.invocations = 0

    def reset(self, sequence_name: Optional[str] = None) -> None:
        """Drop cached RNG-derived latents (all, or one sequence's).

        The caches are themselves deterministic functions of
        ``(model, seed, sequence)``, so this restores the detector to the
        exact state of a freshly-constructed instance — back-to-back runs
        on one detector are bit-identical to runs on separate ones.
        ``sequence_name`` restricts the purge to that sequence's entries,
        leaving other concurrently-streamed sequences' caches warm.
        The invocation counter is *not* cleared: it is execution
        accounting, not sampled state, and never affects results.
        """
        if sequence_name is None:
            self._persistent.clear()
            self._temporal.clear()
            self._clutter.clear()
            self._track_index.clear()
            self._owners.clear()
            return
        for cache in (self._persistent, self._temporal):
            for key in [k for k in cache if k[0] == sequence_name]:
                del cache[key]
        self._clutter.pop(sequence_name, None)
        self._track_index.pop(sequence_name, None)
        self._owners.pop(sequence_name, None)

    def _claim(self, sequence: Sequence) -> None:
        """Guard the name-keyed caches against sequence-name collisions.

        Caches are keyed by ``sequence.name``, but their contents depend
        on the sequence's ground truth.  When a *different* sequence
        object shows up under a name whose caches another object
        populated (live feeds reusing camera ids, ad-hoc test data), the
        stale entries are purged so every sample is derived from the
        claiming sequence.  Interleaved multi-stream use with distinct
        names never triggers a purge, so concurrent streams sharing one
        detector keep their caches warm.

        Also bounds total cache footprint: beyond
        :attr:`max_cached_sequences` distinct names, the
        least-recently-claimed sequence's latents are evicted (a pure
        recompute cost — never a result change).
        """
        owner = self._owners.get(sequence.name)
        if owner is not None:
            if owner() is sequence:
                self._owners.move_to_end(sequence.name)
                return
            self.reset(sequence.name)
        while len(self._owners) >= self.max_cached_sequences:
            stale, _ = self._owners.popitem(last=False)
            self.reset(stale)
        self._owners[sequence.name] = weakref.ref(sequence)

    def _track_of(self, sequence: Sequence, track_id: int):
        index = self._track_index.get(sequence.name)
        if index is None:
            index = {t.track_id: t for t in sequence.tracks}
            self._track_index[sequence.name] = index
        return index[track_id]

    # ------------------------------------------------------------------ #
    # Latent caches
    # ------------------------------------------------------------------ #

    def _persistent_latent(self, sequence: Sequence, track_id: int) -> float:
        key = (sequence.name, track_id)
        if key not in self._persistent:
            rng = self._factory.child("persistent", self._model_key, sequence.name, track_id)
            self._persistent[key] = float(rng.normal())
        return self._persistent[key]

    def _temporal_noise(self, sequence: Sequence, track_id: int, length: int) -> np.ndarray:
        key = (sequence.name, track_id)
        cached = self._temporal.get(key)
        if cached is None or cached.shape[0] < length:
            rng = self._factory.child("temporal", self._model_key, sequence.name, track_id)
            rho = self.profile.temporal_rho
            innov = np.sqrt(max(1.0 - rho**2, 1e-12))
            noise = np.empty(length)
            state = rng.normal()
            for t in range(length):
                noise[t] = state
                state = rho * state + innov * rng.normal()
            self._temporal[key] = noise
            cached = noise
        return cached

    def _clutter_sources(self, sequence: Sequence) -> List[_ClutterSource]:
        if sequence.name in self._clutter:
            return self._clutter[sequence.name]
        rng = self._factory.child("clutter", self._model_key, sequence.name)
        sources: List[_ClutterSource] = []
        expected = self.profile.clutter_rate * sequence.num_frames / 100.0
        labels = sorted({t.label for t in sequence.tracks}) or [0]
        for _ in range(rng.poisson(expected)):
            first = int(rng.integers(0, sequence.num_frames))
            duration = 3 + int(rng.geometric(1.0 / 12.0))
            last = min(first + duration, sequence.num_frames - 1)
            length = last - first + 1
            w = float(np.exp(rng.normal(3.6, 0.5)))
            h = w * float(np.exp(rng.normal(0.0, 0.4)))
            cx = rng.uniform(0.05, 0.95) * sequence.width
            cy = rng.uniform(0.3, 0.95) * sequence.height
            drift = rng.normal(scale=1.0, size=2)
            boxes = np.empty((length, 4))
            for t in range(length):
                px = cx + drift[0] * t
                py = cy + drift[1] * t
                boxes[t] = [px - w / 2, py - h / 2, px + w / 2, py + h / 2]
            boxes = clip_boxes(boxes, sequence.width, sequence.height)
            fire = rng.random(length) < self.profile.clutter_persistence
            score_logits = rng.normal(
                self.profile.fp_score_mean + 0.5, self.profile.fp_score_std, size=length
            )
            sources.append(
                _ClutterSource(
                    first_frame=first,
                    last_frame=last,
                    boxes=boxes,
                    label=int(labels[int(rng.integers(0, len(labels)))]),
                    fire=fire,
                    score_logits=score_logits,
                )
            )
        self._clutter[sequence.name] = sources
        return sources

    # ------------------------------------------------------------------ #
    # Core sampling
    # ------------------------------------------------------------------ #

    def _object_logits(
        self, sequence: Sequence, annotations: FrameAnnotations
    ) -> np.ndarray:
        """Full (base + latent) detection logits for the frame's GT objects."""
        n = len(annotations)
        if n == 0:
            return np.zeros(0)
        widths = (annotations.boxes[:, 2] - annotations.boxes[:, 0]) * self.input_scale
        base = self.profile.base_logit(
            widths, annotations.occlusion, annotations.truncation
        )
        latents = np.empty(n)
        temporal = np.empty(n)
        for i, track_id in enumerate(annotations.track_ids):
            track = self._track_of(sequence, int(track_id))
            offset = annotations.frame - track.first_frame
            latents[i] = self._persistent_latent(sequence, int(track_id))
            temporal[i] = self._temporal_noise(sequence, int(track_id), track.length)[offset]
        return (
            base
            + self.profile.persistent_weight * latents
            + self.profile.temporal_weight * temporal
        )

    def _jitter_boxes(
        self, boxes: np.ndarray, rng: np.random.Generator, loc_noise: float
    ) -> np.ndarray:
        """Localization noise: center shift + log-size jitter."""
        if boxes.shape[0] == 0 or loc_noise == 0.0:
            return boxes.copy()
        w = boxes[:, 2] - boxes[:, 0]
        h = boxes[:, 3] - boxes[:, 1]
        cx = boxes[:, 0] + w / 2 + rng.normal(scale=loc_noise, size=len(boxes)) * w
        cy = boxes[:, 1] + h / 2 + rng.normal(scale=loc_noise, size=len(boxes)) * h
        w = w * np.exp(rng.normal(scale=loc_noise, size=len(boxes)))
        h = h * np.exp(rng.normal(scale=loc_noise, size=len(boxes)))
        return np.stack([cx - w / 2, cy - h / 2, cx + w / 2, cy + h / 2], axis=1)

    def _tp_scores(self, logits: np.ndarray, rng: np.random.Generator) -> np.ndarray:
        p = self.profile
        raw = p.score_center + p.score_scale * logits + rng.normal(
            scale=p.score_noise, size=len(logits)
        )
        return sigmoid(raw)

    def _sample_false_positives(
        self,
        sequence: Sequence,
        frame: int,
        rng: np.random.Generator,
        rate: float,
        region: Optional[RegionMask] = None,
    ) -> Detections:
        """Transient false positives, uniform over the image (or the mask)."""
        n = rng.poisson(rate)
        if n == 0:
            return Detections.empty()
        labels_pool = sorted({t.label for t in sequence.tracks}) or [0]
        w = np.exp(rng.normal(3.5, 0.6, size=n))
        h = w * np.exp(rng.normal(0.2, 0.5, size=n))
        if region is not None and region.expanded_boxes.shape[0] > 0:
            anchors = region.expanded_boxes[
                rng.integers(0, region.expanded_boxes.shape[0], size=n)
            ]
            cx = anchors[:, 0] + rng.random(n) * np.maximum(anchors[:, 2] - anchors[:, 0], 1.0)
            cy = anchors[:, 1] + rng.random(n) * np.maximum(anchors[:, 3] - anchors[:, 1], 1.0)
        else:
            cx = rng.uniform(0, sequence.width, size=n)
            cy = rng.uniform(sequence.height * 0.25, sequence.height, size=n)
        boxes = np.stack([cx - w / 2, cy - h / 2, cx + w / 2, cy + h / 2], axis=1)
        boxes = clip_boxes(boxes, sequence.width, sequence.height)
        valid = (boxes[:, 2] - boxes[:, 0] > 2) & (boxes[:, 3] - boxes[:, 1] > 2)
        boxes = boxes[valid]
        n = boxes.shape[0]
        scores = sigmoid(
            rng.normal(self.profile.fp_score_mean, self.profile.fp_score_std, size=n)
        )
        labels = np.asarray(labels_pool, dtype=np.int64)[
            rng.integers(0, len(labels_pool), size=n)
        ]
        return Detections(boxes, scores, labels)

    def _clutter_detections(self, sequence: Sequence, frame: int) -> Detections:
        parts = []
        for source in self._clutter_sources(sequence):
            if not (source.first_frame <= frame <= source.last_frame):
                continue
            t = frame - source.first_frame
            if not source.fire[t]:
                continue
            parts.append(
                Detections(
                    source.boxes[t][None, :],
                    np.array([float(sigmoid(np.array([source.score_logits[t]]))[0])]),
                    np.array([source.label], dtype=np.int64),
                )
            )
        return Detections.concatenate(parts) if parts else Detections.empty()

    # ------------------------------------------------------------------ #
    # Public API
    # ------------------------------------------------------------------ #

    def detect_full_frame(self, sequence: Sequence, frame: int) -> Detections:
        """Full-image detection pass (single-model or proposal network).

        Returns NMS-filtered detections with confidence scores in [0, 1].
        """
        self.invocations += 1
        return self._full_frame_impl(sequence, frame)

    def detect_full_frame_batch(
        self, items: Iterable[Tuple[Sequence, int]]
    ) -> List[Detections]:
        """One *batched* full-frame invocation over several frames.

        The per-frame samples are bit-identical to per-frame
        :meth:`detect_full_frame` calls — the determinism contract keys
        every draw by ``(model, seed, sequence, frame)``, never by batch
        composition — but the whole batch counts as a single detector
        invocation, which is what serving layers amortize fixed per-call
        overhead (kernel launch, weight residency, host round-trip) over.
        """
        items = list(items)
        if not items:
            return []
        self.invocations += 1
        return [self._full_frame_impl(seq, frame) for seq, frame in items]

    def _full_frame_impl(self, sequence: Sequence, frame: int) -> Detections:
        self._claim(sequence)
        annotations = sequence.annotations(frame)
        logits = self._object_logits(sequence, annotations)
        rng = self._factory.child("frame", self._model_key, sequence.name, frame)

        p_detect = self.profile.detection_probability(logits)
        detected = rng.random(len(annotations)) < p_detect

        tp_boxes = self._jitter_boxes(
            annotations.boxes[detected], rng, self.profile.loc_noise
        )
        tp_scores = self._tp_scores(logits[detected], rng)
        tp = Detections(tp_boxes, tp_scores, annotations.labels[detected])

        fp = self._sample_false_positives(sequence, frame, rng, self.profile.fp_rate)
        clutter = self._clutter_detections(sequence, frame)
        merged = Detections.concatenate([tp, fp, clutter])
        merged = Detections(
            clip_boxes(merged.boxes, sequence.width, sequence.height),
            merged.scores,
            merged.labels,
        )
        return merged.nms(0.5)

    def detect_regions(
        self,
        sequence: Sequence,
        frame: int,
        region: RegionMask,
    ) -> Detections:
        """Region-restricted detection pass (the refinement network).

        Only objects covered by ``region`` can be detected; covered objects
        get the profile's ``refine_boost`` (validation is easier than
        detection) and reduced localization noise.  False positives arise
        from background-region confirmations plus a coverage-scaled
        transient rate.
        """
        self.invocations += 1
        return self._regions_impl(sequence, frame, region)

    def detect_regions_batch(
        self, items: Iterable[Tuple[Sequence, int, RegionMask]]
    ) -> List[Detections]:
        """One batched region-restricted invocation over several frames.

        Same contract as :meth:`detect_full_frame_batch`: per-frame
        results are bit-identical to serial :meth:`detect_regions` calls,
        and the batch costs one detector invocation.
        """
        items = list(items)
        if not items:
            return []
        self.invocations += 1
        return [
            self._regions_impl(seq, frame, region) for seq, frame, region in items
        ]

    def _regions_impl(
        self, sequence: Sequence, frame: int, region: RegionMask
    ) -> Detections:
        self._claim(sequence)
        annotations = sequence.annotations(frame)
        logits = self._object_logits(sequence, annotations)
        rng = self._factory.child("refine", self._model_key, sequence.name, frame)

        covered = region.contains(annotations.boxes, min_overlap=0.5)
        boosted = logits + self.profile.refine_boost
        p_detect = self.profile.detection_probability(boosted) * covered

        detected = rng.random(len(annotations)) < p_detect
        loc = self.profile.loc_noise * self.profile.refine_loc_factor
        tp_boxes = self._jitter_boxes(annotations.boxes[detected], rng, loc)
        tp_scores = self._tp_scores(boosted[detected], rng)
        tp = Detections(tp_boxes, tp_scores, annotations.labels[detected])

        # Background proposals occasionally confirmed as objects.
        n_regions = region.boxes.shape[0]
        confirm_parts: List[Detections] = []
        if n_regions and self.profile.fp_confirm_rate > 0:
            # Regions that do not overlap any GT object are background.
            from repro.boxes.iou import iou_matrix

            if len(annotations):
                overlap = iou_matrix(region.boxes, annotations.boxes).max(axis=1)
            else:
                overlap = np.zeros(n_regions)
            background = overlap < 0.2
            confirm = background & (rng.random(n_regions) < self.profile.fp_confirm_rate)
            if confirm.any():
                c_boxes = self._jitter_boxes(region.boxes[confirm], rng, loc)
                c_scores = sigmoid(
                    rng.normal(
                        self.profile.fp_score_mean + 0.3,
                        self.profile.fp_score_std,
                        size=int(confirm.sum()),
                    )
                )
                labels_pool = sorted({t.label for t in sequence.tracks}) or [0]
                c_labels = np.array(
                    [labels_pool[int(rng.integers(0, len(labels_pool)))] for _ in range(int(confirm.sum()))],
                    dtype=np.int64,
                )
                confirm_parts.append(Detections(c_boxes, c_scores, c_labels))

        fp = self._sample_false_positives(
            sequence,
            frame,
            rng,
            self.profile.fp_rate * region.coverage_fraction() * 0.5,
            region=region,
        )
        merged = Detections.concatenate([tp, fp] + confirm_parts)
        merged = Detections(
            clip_boxes(merged.boxes, sequence.width, sequence.height),
            merged.scores,
            merged.labels,
        )
        return merged.nms(0.5)
