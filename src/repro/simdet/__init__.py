"""Stochastic detector simulation.

Each DNN detector of the paper is modeled as a :class:`DetectorProfile`: a
set of statistics governing per-object detection probability (vs. size,
occlusion, truncation), localization noise, confidence scores and false
positives.  :class:`SimulatedDetector` samples detections for a frame, in
full-frame mode (single-model / proposal network) or region-restricted mode
(refinement network).

Detection events are *temporally correlated*: each (track, model) pair draws
a persistent difficulty latent, plus an AR(1) per-frame component.  This is
the statistical property that makes the tracker matter — a cascade without
memory repeatedly misses the same hard objects, while a tracker can lock on
after one lucky detection (paper §6.4, Figure 6).
"""

from repro.simdet.profile import DetectorProfile
from repro.simdet.detector import SimulatedDetector
from repro.simdet.zoo import MODEL_ZOO, ZooEntry, get_model

__all__ = [
    "DetectorProfile",
    "SimulatedDetector",
    "MODEL_ZOO",
    "ZooEntry",
    "get_model",
]
