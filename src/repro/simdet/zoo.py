"""Model zoo: the detectors evaluated in the paper.

Each entry couples a behavioral :class:`DetectorProfile` (calibrated so the
single-model Faster R-CNN mAPs land near Tables 4/5) with the architecture
description used for operation counting.

``roi_pool`` note: the standard torchvision-style models (ResNet-18,
ResNet-50) are counted with the framework's 14x14 pre-pool crop (RoI head
output 7x7), while the paper's custom slim proposal nets pool directly at
7x7 (head output 4x4) — this reproduces Table 1's op counts under a single
one-MAC-one-op convention (see EXPERIMENTS.md).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Union

from repro.flops.rcnn import FasterRCNNOps
from repro.flops.resnet import (
    RESNET10A,
    RESNET10B,
    RESNET10C,
    RESNET18,
    RESNET50,
    ResNetArch,
)
from repro.flops.retinanet import RetinaNetOps
from repro.flops.vgg import VGG16, VGGArch
from repro.simdet.profile import DetectorProfile


@dataclass(frozen=True)
class ZooEntry:
    """One detector model: behavior profile + ops architecture."""

    profile: DetectorProfile
    arch: Union[ResNetArch, VGGArch]
    roi_pool: int = 7
    detector_type: str = "faster_rcnn"  # or "retinanet"

    def rcnn_ops(self, width: int, height: int, num_classes: int = 2) -> FasterRCNNOps:
        """Faster R-CNN op model for this entry at the given image size."""
        if self.detector_type != "faster_rcnn":
            raise ValueError(f"{self.profile.name} is not a Faster R-CNN model")
        return FasterRCNNOps(
            self.arch, width, height, roi_pool=self.roi_pool, num_classes=num_classes
        )

    def retinanet_ops(self, width: int, height: int, num_classes: int = 2) -> RetinaNetOps:
        """RetinaNet op model for this entry at the given image size."""
        if self.detector_type != "retinanet":
            raise ValueError(f"{self.profile.name} is not a RetinaNet model")
        if not isinstance(self.arch, ResNetArch):
            raise TypeError("RetinaNet requires a ResNet backbone")
        return RetinaNetOps(self.arch, width, height, num_classes=num_classes)


# --------------------------------------------------------------------- #
# Behavioral profiles, ordered strongest to weakest.
#
# Calibration targets (single-model Faster R-CNN, KITTI Hard mAP, Table 4/5):
#   ResNet-50 0.740 | VGG-16 0.742 | ResNet-18 0.687 | ResNet-10a 0.606
#   ResNet-10b 0.564 | ResNet-10c 0.542
# --------------------------------------------------------------------- #

# Calibration rationale: all models keep *high per-frame recall* at low
# score thresholds (real proposal nets rarely miss an object region
# entirely); quality differences show up as (a) precision — false-positive
# rate and TP/FP score separability, (b) localization noise (KITTI Car
# needs IoU 0.7), and (c) genuinely hard objects — small/occluded — where
# weaker models' detection probability sags, with a persistent component
# that a cascade cannot buy back by lowering its threshold.

_RES50 = DetectorProfile(
    name="resnet50",
    size_midpoint=3.38,
    size_slope=1.7,
    max_recall=0.975,
    occlusion_penalty=10.0,
    truncation_penalty=3.0,
    persistent_weight=0.7,
    temporal_weight=0.7,
    temporal_rho=0.7,
    loc_noise=0.053,
    score_center=0.9,
    score_scale=0.55,
    score_noise=0.6,
    fp_rate=18.0,
    fp_score_mean=-2.3,
    fp_score_std=1.3,
    clutter_rate=2.5,
    refine_boost=0.15,
    fp_confirm_rate=0.06,
    refine_loc_factor=1.0,
)

_VGG16 = _RES50.with_overrides(
    name="vgg16",
    size_midpoint=3.36,
    loc_noise=0.051,
    fp_rate=19.0,
)

_RES18 = _RES50.with_overrides(
    name="resnet18",
    size_midpoint=3.4,
    size_slope=1.6,
    max_recall=0.97,
    occlusion_penalty=10.4,
    truncation_penalty=3.2,
    persistent_weight=0.8,
    temporal_weight=0.8,
    loc_noise=0.062,
    score_center=0.7,
    score_scale=0.5,
    score_noise=0.7,
    fp_rate=26.0,
    fp_score_mean=-2.9,
    fp_score_std=1.45,
    clutter_rate=3.5,
    fp_confirm_rate=0.07,
    temporal_rho=0.8,
)

_RES10A = _RES50.with_overrides(
    name="resnet10a",
    size_midpoint=2.9,
    size_slope=1.5,
    max_recall=0.97,
    occlusion_penalty=10.8,
    truncation_penalty=3.4,
    persistent_weight=1.5,
    temporal_weight=0.9,
    loc_noise=0.08,
    score_center=0.5,
    score_scale=0.45,
    score_noise=0.9,
    fp_rate=55.0,
    fp_score_mean=-3.4,
    fp_score_std=1.6,
    clutter_rate=6.0,
    refine_boost=0.15,
    fp_confirm_rate=0.05,
    temporal_rho=0.85,
)

_RES10B = _RES10A.with_overrides(
    name="resnet10b",
    size_midpoint=3.1,
    max_recall=0.96,
    occlusion_penalty=11.0,
    loc_noise=0.082,
    score_center=0.4,
    fp_rate=60.0,
    fp_score_mean=-4.0,
    clutter_rate=7.0,
)

_RES10C = _RES10B.with_overrides(
    name="resnet10c",
    size_midpoint=3.2,
    max_recall=0.955,
    occlusion_penalty=11.2,
    loc_noise=0.086,
    score_center=0.35,
    fp_rate=65.0,
    fp_score_mean=-4.05,
    clutter_rate=7.5,
)

# RetinaNet-ResNet50: the paper's Table 8 single-model mAP on Moderate is
# 0.773 (vs 0.812 for Faster R-CNN ResNet-50) — a slightly weaker profile.
_RETINA50 = _RES50.with_overrides(
    name="retinanet50",
    size_midpoint=3.45,
    max_recall=0.97,
    loc_noise=0.058,
    score_center=0.75,
    fp_rate=22.0,
    fp_score_mean=-2.7,
    clutter_rate=1.8,
)

MODEL_ZOO: Dict[str, ZooEntry] = {
    "resnet50": ZooEntry(profile=_RES50, arch=RESNET50, roi_pool=14),
    "vgg16": ZooEntry(profile=_VGG16, arch=VGG16, roi_pool=7),
    "resnet18": ZooEntry(profile=_RES18, arch=RESNET18, roi_pool=14),
    "resnet10a": ZooEntry(profile=_RES10A, arch=RESNET10A, roi_pool=7),
    "resnet10b": ZooEntry(profile=_RES10B, arch=RESNET10B, roi_pool=7),
    "resnet10c": ZooEntry(profile=_RES10C, arch=RESNET10C, roi_pool=7),
    "retinanet50": ZooEntry(
        profile=_RETINA50, arch=RESNET50, roi_pool=14, detector_type="retinanet"
    ),
}


def get_model(name: str) -> ZooEntry:
    """Look up a zoo entry by name, with a helpful error."""
    try:
        return MODEL_ZOO[name]
    except KeyError:
        known = ", ".join(sorted(MODEL_ZOO))
        raise KeyError(f"unknown model {name!r}; known models: {known}") from None
