"""Detector behavioral profiles.

A profile reduces a trained detector to the statistics that drive the
paper's system-level measurements.  The per-object detection probability in
one frame is::

    L = size_slope * (log2(visible_width) - size_midpoint)
        - occlusion_penalty * occlusion
        - truncation_penalty * truncation
        + persistent_weight * u          # per (track, model), frozen
        + temporal_weight * e_t          # AR(1) over frames
    p  = max_recall * sigmoid(L)

with an extra ``refine_boost`` added to ``L`` in region-restricted mode
(validating a proposed region is easier than re-detection, §3).
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Optional

import numpy as np


def sigmoid(x: np.ndarray) -> np.ndarray:
    """Numerically stable logistic function."""
    x = np.asarray(x, dtype=np.float64)
    out = np.empty_like(x, dtype=np.float64)
    pos = x >= 0
    out[pos] = 1.0 / (1.0 + np.exp(-x[pos]))
    ex = np.exp(x[~pos])
    out[~pos] = ex / (1.0 + ex)
    return out


@dataclass(frozen=True)
class DetectorProfile:
    """Behavioral statistics of one detector model.

    Parameters
    ----------
    name:
        Model identifier (keys RNG streams — two detectors with the same
        name and seed behave identically).
    size_midpoint:
        ``log2`` of the visible box width at which detection probability is
        half of ``max_recall``.  Weaker models need larger objects.
    size_slope:
        Sharpness of the size-detectability sigmoid.
    max_recall:
        Per-frame detection-probability ceiling for easy objects.
    occlusion_penalty / truncation_penalty:
        Logit penalties scaled by the occluded / truncated fraction.
        Occlusion is raised to ``occlusion_exponent`` first: detectors
        degrade gently under light occlusion and collapse past ~50 %.
    persistent_weight:
        Weight of the frozen per-(track, model) difficulty latent.  This is
        what makes misses *systematic*: raising proposal counts cannot
        recover an object the model fundamentally cannot see.
    temporal_weight / temporal_rho:
        Weight and AR(1) coefficient of the per-frame difficulty noise.
        High rho means misses come in bursts (motion blur, partial
        occlusion episodes) rather than i.i.d. flickers.
    loc_noise:
        Localization jitter: box center/size noise as a fraction of box
        dimensions.  Drives IoU-threshold failures (KITTI Car needs 0.7).
    score_center / score_scale / score_noise:
        True-positive confidence model:
        ``score = sigmoid(score_center + score_scale * L + noise)``.
    fp_rate:
        Expected false positives per full-frame scan.
    fp_score_mean / fp_score_std:
        Logit-space false-positive confidence distribution.
    clutter_rate:
        Expected number of *persistent* clutter tracks per 100 frames: FP
        sources (e.g. textured background) that recur at the same drifting
        location and can fool the tracker.
    clutter_persistence:
        Per-frame probability a clutter source fires while active.
    refine_boost:
        Logit boost in region-restricted mode when the object was proposed.
    refine_loc_factor:
        Multiplier (< 1) on ``loc_noise`` in region-restricted mode —
        calibration is easier than detection.
    fp_confirm_rate:
        Probability that this model, used as a refinement network, confirms
        a background (non-object) proposal as a detection.
    """

    name: str
    size_midpoint: float
    size_slope: float = 1.6
    max_recall: float = 0.95
    occlusion_penalty: float = 2.5
    occlusion_exponent: float = 2.0
    truncation_penalty: float = 2.0
    persistent_weight: float = 0.9
    temporal_weight: float = 0.9
    temporal_rho: float = 0.7
    loc_noise: float = 0.05
    score_center: float = 0.3
    score_scale: float = 0.55
    score_noise: float = 0.8
    fp_rate: float = 1.5
    fp_score_mean: float = -1.6
    fp_score_std: float = 1.1
    clutter_rate: float = 1.0
    clutter_persistence: float = 0.6
    refine_boost: float = 1.2
    refine_loc_factor: float = 0.7
    fp_confirm_rate: float = 0.03

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("profile name must be non-empty")
        if not (0.0 < self.max_recall <= 1.0):
            raise ValueError(f"max_recall must lie in (0, 1], got {self.max_recall}")
        if not (0.0 <= self.temporal_rho < 1.0):
            raise ValueError(f"temporal_rho must lie in [0, 1), got {self.temporal_rho}")
        if self.occlusion_exponent <= 0:
            raise ValueError(
                f"occlusion_exponent must be positive, got {self.occlusion_exponent}"
            )
        if self.loc_noise < 0:
            raise ValueError(f"loc_noise must be >= 0, got {self.loc_noise}")
        if self.fp_rate < 0 or self.clutter_rate < 0:
            raise ValueError("false-positive rates must be >= 0")
        if not (0.0 <= self.clutter_persistence <= 1.0):
            raise ValueError(
                f"clutter_persistence must lie in [0, 1], got {self.clutter_persistence}"
            )
        if not (0.0 <= self.fp_confirm_rate <= 1.0):
            raise ValueError(
                f"fp_confirm_rate must lie in [0, 1], got {self.fp_confirm_rate}"
            )
        if not (0.0 < self.refine_loc_factor <= 1.0):
            raise ValueError(
                f"refine_loc_factor must lie in (0, 1], got {self.refine_loc_factor}"
            )

    # ------------------------------------------------------------------ #

    def base_logit(
        self,
        visible_width: np.ndarray,
        occlusion: np.ndarray,
        truncation: np.ndarray,
    ) -> np.ndarray:
        """Deterministic part of the detection logit for a set of objects."""
        width = np.maximum(np.asarray(visible_width, dtype=np.float64), 1.0)
        occ = np.asarray(occlusion, dtype=np.float64)
        return (
            self.size_slope * (np.log2(width) - self.size_midpoint)
            - self.occlusion_penalty * occ**self.occlusion_exponent
            - self.truncation_penalty * np.asarray(truncation, dtype=np.float64)
        )

    def detection_probability(self, logit: np.ndarray) -> np.ndarray:
        """Map a full logit (base + latents) to per-frame probability."""
        return self.max_recall * sigmoid(np.asarray(logit, dtype=np.float64))

    def with_overrides(self, **kwargs) -> "DetectorProfile":
        """Copy with some fields replaced (keeps the frozen dataclass API)."""
        return replace(self, **kwargs)
