"""Terminal visualization: ASCII rendering of frames, tracks and regions.

Useful for eyeballing what the world generator produces and what a system
is doing per frame, without any plotting dependency::

    print(render_frame(sequence, frame=10, detections=dets, mask=mask))
"""

from __future__ import annotations

from typing import Optional, Sequence as Seq

import numpy as np

from repro.boxes.mask import RegionMask
from repro.datasets.types import Sequence
from repro.detections import Detections

#: Drawing layers, later layers overwrite earlier ones.
_GT_CHAR = "#"
_DET_CHAR = "o"
_MASK_CHAR = "."


def _paint_box(
    canvas: np.ndarray,
    box: np.ndarray,
    char: str,
    sx: float,
    sy: float,
    *,
    fill: bool = False,
) -> None:
    rows, cols = canvas.shape
    x1 = int(np.clip(np.floor(box[0] * sx), 0, cols - 1))
    x2 = int(np.clip(np.ceil(box[2] * sx), 0, cols - 1))
    y1 = int(np.clip(np.floor(box[1] * sy), 0, rows - 1))
    y2 = int(np.clip(np.ceil(box[3] * sy), 0, rows - 1))
    if fill:
        canvas[y1 : y2 + 1, x1 : x2 + 1] = char
    else:
        canvas[y1, x1 : x2 + 1] = char
        canvas[y2, x1 : x2 + 1] = char
        canvas[y1 : y2 + 1, x1] = char
        canvas[y1 : y2 + 1, x2] = char


def render_frame(
    sequence: Sequence,
    frame: int,
    *,
    detections: Optional[Detections] = None,
    mask: Optional[RegionMask] = None,
    width: int = 100,
    min_score: float = 0.5,
) -> str:
    """Render one frame as ASCII art.

    Ground-truth boxes draw as ``#`` outlines, detections (above
    ``min_score``) as ``o`` outlines, and the region-of-interest mask as a
    ``.`` fill underneath everything.

    Parameters
    ----------
    sequence:
        The ground-truth sequence.
    frame:
        Frame index.
    detections:
        Optional detections to overlay.
    mask:
        Optional :class:`RegionMask` to show as background fill.
    width:
        Canvas width in characters (height follows the aspect ratio).
    min_score:
        Detections below this score are not drawn.
    """
    if width < 10:
        raise ValueError(f"width must be >= 10, got {width}")
    # Terminal cells are ~2x taller than wide; halve the row count.
    height = max(4, int(round(width * sequence.height / sequence.width / 2.0)))
    canvas = np.full((height, width), " ", dtype="<U1")
    sx = (width - 1) / sequence.width
    sy = (height - 1) / sequence.height

    if mask is not None:
        for box in mask.expanded_boxes:
            _paint_box(canvas, box, _MASK_CHAR, sx, sy, fill=True)

    annotations = sequence.annotations(frame)
    for box in annotations.boxes:
        _paint_box(canvas, box, _GT_CHAR, sx, sy)

    if detections is not None:
        for box, score, _ in detections:
            if score >= min_score:
                _paint_box(canvas, box, _DET_CHAR, sx, sy)

    border = "+" + "-" * width + "+"
    body = "\n".join("|" + "".join(row) + "|" for row in canvas)
    legend = (
        f"frame {frame}: {_GT_CHAR}=ground truth"
        + (f"  {_DET_CHAR}=detections(>= {min_score})" if detections is not None else "")
        + (f"  {_MASK_CHAR}=RoI mask ({mask.coverage_fraction():.0%})" if mask is not None else "")
    )
    return "\n".join([legend, border, body, border])


def render_track_timeline(
    sequence: Sequence,
    *,
    max_tracks: int = 20,
    width: int = 80,
) -> str:
    """Render the sequence's tracks as a Gantt-style timeline.

    One row per track; ``=`` marks visible frames, ``x`` marks frames with
    occlusion above 50 %.
    """
    if width < 10:
        raise ValueError(f"width must be >= 10, got {width}")
    scale = width / sequence.num_frames
    lines = [f"track timeline ({sequence.num_frames} frames):"]
    for track in sequence.tracks[:max_tracks]:
        row = [" "] * width
        for offset in range(track.length):
            col = min(int((track.first_frame + offset) * scale), width - 1)
            row[col] = "x" if track.occlusion[offset] > 0.5 else "="
        label = f"{track.track_id:4d} c{track.label}"
        lines.append(f"{label} |{''.join(row)}|")
    if len(sequence.tracks) > max_tracks:
        lines.append(f"... and {len(sequence.tracks) - max_tracks} more tracks")
    return "\n".join(lines)
