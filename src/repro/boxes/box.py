"""Core bounding-box array operations.

All functions are vectorized over ``(N, 4)`` arrays of ``[x1, y1, x2, y2]``
boxes and never mutate their inputs.
"""

from __future__ import annotations

from typing import Tuple, Union

import numpy as np

ArrayLike = Union[np.ndarray, list, tuple]


def empty_boxes() -> np.ndarray:
    """Return an empty ``(0, 4)`` float64 box array."""
    return np.zeros((0, 4), dtype=np.float64)


def as_boxes(boxes: ArrayLike, *, validate: bool = False) -> np.ndarray:
    """Coerce input into an ``(N, 4)`` float64 box array.

    A single box given as a flat length-4 sequence is promoted to ``(1, 4)``.
    With ``validate=True``, degenerate boxes (``x2 <= x1`` or ``y2 <= y1``)
    raise :class:`ValueError`.
    """
    arr = np.asarray(boxes, dtype=np.float64)
    if arr.size == 0:
        return empty_boxes()
    if arr.ndim == 1:
        if arr.shape[0] != 4:
            raise ValueError(f"a single box must have 4 coordinates, got {arr.shape[0]}")
        arr = arr[None, :]
    if arr.ndim != 2 or arr.shape[1] != 4:
        raise ValueError(f"boxes must have shape (N, 4), got {arr.shape}")
    if validate and not np.all(is_valid(arr)):
        bad = np.flatnonzero(~is_valid(arr))
        raise ValueError(f"degenerate boxes at indices {bad.tolist()}")
    return arr.copy()


def is_valid(boxes: np.ndarray) -> np.ndarray:
    """Boolean mask of boxes with strictly positive width and height."""
    boxes = np.asarray(boxes, dtype=np.float64).reshape(-1, 4)
    return (boxes[:, 2] > boxes[:, 0]) & (boxes[:, 3] > boxes[:, 1])


def area(boxes: np.ndarray) -> np.ndarray:
    """Areas of boxes; degenerate boxes get area 0."""
    boxes = np.asarray(boxes, dtype=np.float64).reshape(-1, 4)
    w = np.maximum(0.0, boxes[:, 2] - boxes[:, 0])
    h = np.maximum(0.0, boxes[:, 3] - boxes[:, 1])
    return w * h


def width_height(boxes: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
    """Widths and heights of boxes (may be negative for degenerate input)."""
    boxes = np.asarray(boxes, dtype=np.float64).reshape(-1, 4)
    return boxes[:, 2] - boxes[:, 0], boxes[:, 3] - boxes[:, 1]


def box_center_size(boxes: np.ndarray) -> np.ndarray:
    """Convert ``[x1,y1,x2,y2]`` boxes to ``[cx, cy, w, h]``."""
    boxes = np.asarray(boxes, dtype=np.float64).reshape(-1, 4)
    w = boxes[:, 2] - boxes[:, 0]
    h = boxes[:, 3] - boxes[:, 1]
    cx = boxes[:, 0] + 0.5 * w
    cy = boxes[:, 1] + 0.5 * h
    return np.stack([cx, cy, w, h], axis=1)


def center_size_to_boxes(cs: np.ndarray) -> np.ndarray:
    """Convert ``[cx, cy, w, h]`` arrays back to ``[x1,y1,x2,y2]`` boxes."""
    cs = np.asarray(cs, dtype=np.float64).reshape(-1, 4)
    half_w = 0.5 * cs[:, 2]
    half_h = 0.5 * cs[:, 3]
    return np.stack(
        [cs[:, 0] - half_w, cs[:, 1] - half_h, cs[:, 0] + half_w, cs[:, 1] + half_h],
        axis=1,
    )


def clip_boxes(boxes: np.ndarray, width: float, height: float) -> np.ndarray:
    """Clip boxes to the image rectangle ``[0, width] x [0, height]``."""
    boxes = np.asarray(boxes, dtype=np.float64).reshape(-1, 4)
    out = boxes.copy()
    out[:, 0] = np.clip(out[:, 0], 0.0, width)
    out[:, 2] = np.clip(out[:, 2], 0.0, width)
    out[:, 1] = np.clip(out[:, 1], 0.0, height)
    out[:, 3] = np.clip(out[:, 3], 0.0, height)
    return out


def expand_boxes(boxes: np.ndarray, margin: float) -> np.ndarray:
    """Grow each box by ``margin`` pixels on every side (CaTDet uses 30 px)."""
    boxes = np.asarray(boxes, dtype=np.float64).reshape(-1, 4)
    out = boxes.copy()
    out[:, 0] -= margin
    out[:, 1] -= margin
    out[:, 2] += margin
    out[:, 3] += margin
    return out


def scale_boxes(boxes: np.ndarray, sx: float, sy: float) -> np.ndarray:
    """Scale box coordinates by ``(sx, sy)`` about the origin."""
    boxes = np.asarray(boxes, dtype=np.float64).reshape(-1, 4)
    out = boxes.copy()
    out[:, 0] *= sx
    out[:, 2] *= sx
    out[:, 1] *= sy
    out[:, 3] *= sy
    return out


def union_box(boxes: np.ndarray) -> np.ndarray:
    """Smallest single box enclosing all input boxes.

    Raises :class:`ValueError` on empty input.
    """
    boxes = np.asarray(boxes, dtype=np.float64).reshape(-1, 4)
    if boxes.shape[0] == 0:
        raise ValueError("union_box requires at least one box")
    return np.array(
        [boxes[:, 0].min(), boxes[:, 1].min(), boxes[:, 2].max(), boxes[:, 3].max()]
    )


def intersect_box(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Intersection of two single boxes; degenerate (zero-area) if disjoint."""
    a = np.asarray(a, dtype=np.float64).reshape(4)
    b = np.asarray(b, dtype=np.float64).reshape(4)
    x1 = max(a[0], b[0])
    y1 = max(a[1], b[1])
    x2 = min(a[2], b[2])
    y2 = min(a[3], b[3])
    return np.array([x1, y1, max(x1, x2), max(y1, y2)])
