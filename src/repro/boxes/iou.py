"""Vectorized Intersection-over-Union computations."""

from __future__ import annotations

import numpy as np

from repro.boxes.box import area


def iou_matrix(boxes_a: np.ndarray, boxes_b: np.ndarray) -> np.ndarray:
    """Pairwise IoU between two box sets.

    Parameters
    ----------
    boxes_a : (N, 4) array
    boxes_b : (M, 4) array

    Returns
    -------
    (N, M) array of IoU values in [0, 1].  Degenerate boxes yield IoU 0.
    """
    a = np.asarray(boxes_a, dtype=np.float64).reshape(-1, 4)
    b = np.asarray(boxes_b, dtype=np.float64).reshape(-1, 4)
    if a.shape[0] == 0 or b.shape[0] == 0:
        return np.zeros((a.shape[0], b.shape[0]))

    x1 = np.maximum(a[:, None, 0], b[None, :, 0])
    y1 = np.maximum(a[:, None, 1], b[None, :, 1])
    x2 = np.minimum(a[:, None, 2], b[None, :, 2])
    y2 = np.minimum(a[:, None, 3], b[None, :, 3])

    inter = np.maximum(0.0, x2 - x1) * np.maximum(0.0, y2 - y1)
    union = area(a)[:, None] + area(b)[None, :] - inter
    with np.errstate(divide="ignore", invalid="ignore"):
        iou = np.where(union > 0, inter / union, 0.0)
    return iou


def iou_pairwise(boxes_a: np.ndarray, boxes_b: np.ndarray) -> np.ndarray:
    """Element-wise IoU of two equal-length box sets (``(N,4)`` vs ``(N,4)``)."""
    a = np.asarray(boxes_a, dtype=np.float64).reshape(-1, 4)
    b = np.asarray(boxes_b, dtype=np.float64).reshape(-1, 4)
    if a.shape[0] != b.shape[0]:
        raise ValueError(f"box sets must have equal length, got {a.shape[0]} and {b.shape[0]}")
    x1 = np.maximum(a[:, 0], b[:, 0])
    y1 = np.maximum(a[:, 1], b[:, 1])
    x2 = np.minimum(a[:, 2], b[:, 2])
    y2 = np.minimum(a[:, 3], b[:, 3])
    inter = np.maximum(0.0, x2 - x1) * np.maximum(0.0, y2 - y1)
    union = area(a) + area(b) - inter
    with np.errstate(divide="ignore", invalid="ignore"):
        return np.where(union > 0, inter / union, 0.0)


def ioa_matrix(boxes_a: np.ndarray, boxes_b: np.ndarray) -> np.ndarray:
    """Pairwise intersection-over-area-of-A.

    ``ioa[i, j]`` is the fraction of box ``a_i`` covered by box ``b_j``; used
    to decide whether a ground-truth object lies inside a region of interest.
    """
    a = np.asarray(boxes_a, dtype=np.float64).reshape(-1, 4)
    b = np.asarray(boxes_b, dtype=np.float64).reshape(-1, 4)
    if a.shape[0] == 0 or b.shape[0] == 0:
        return np.zeros((a.shape[0], b.shape[0]))
    x1 = np.maximum(a[:, None, 0], b[None, :, 0])
    y1 = np.maximum(a[:, None, 1], b[None, :, 1])
    x2 = np.minimum(a[:, None, 2], b[None, :, 2])
    y2 = np.minimum(a[:, None, 3], b[None, :, 3])
    inter = np.maximum(0.0, x2 - x1) * np.maximum(0.0, y2 - y1)
    area_a = area(a)[:, None]
    with np.errstate(divide="ignore", invalid="ignore"):
        return np.where(area_a > 0, inter / area_a, 0.0)
