"""Vectorized Intersection-over-Union computations.

All pairwise kernels share the same structure: broadcast the coordinate
extrema, clamp negative overlaps to zero, and guard the degenerate
zero-area denominators explicitly (``np.divide(..., where=valid)`` over a
zero-filled result — no division ever executes on a degenerate pair).
Empty inputs short-circuit before any ``(N, M)`` broadcast is built.

:func:`iou_matrix` additionally accepts a preallocated ``out`` buffer so
per-frame hot paths (NMS runs once or twice per frame per class) can
reuse one growing scratch matrix instead of reallocating ``(N, N)``
arrays every call.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.boxes.box import area


def iou_matrix(
    boxes_a: np.ndarray,
    boxes_b: np.ndarray,
    out: Optional[np.ndarray] = None,
) -> np.ndarray:
    """Pairwise IoU between two box sets.

    Parameters
    ----------
    boxes_a : (N, 4) array
    boxes_b : (M, 4) array
    out : optional C-contiguous float64 array with at least N * M elements
        In-place variant: the result is written into the buffer's first
        ``N * M`` elements (viewed as a contiguous ``(N, M)`` block — not
        ``out[:N, :M]``, which would be a strided view) and no ``(N, M)``
        allocation happens.

    Returns
    -------
    (N, M) array of IoU values in [0, 1].  Degenerate boxes (zero-area
    union) yield IoU 0 without ever dividing by zero.
    """
    a = np.asarray(boxes_a, dtype=np.float64).reshape(-1, 4)
    b = np.asarray(boxes_b, dtype=np.float64).reshape(-1, 4)
    n, m = a.shape[0], b.shape[0]
    if n == 0 or m == 0:
        # Empty fast path: skip the (N, M) broadcast entirely.
        return np.zeros((n, m))

    if out is None:
        inter = np.empty((n, m))
    else:
        if out.dtype != np.float64 or not out.flags["C_CONTIGUOUS"]:
            raise ValueError("out must be a C-contiguous float64 array")
        if out.size < n * m:
            raise ValueError(
                f"out buffer with {out.size} elements too small for ({n}, {m}) result"
            )
        inter = out.reshape(-1)[: n * m].reshape(n, m)

    # inter = max(0, x2 - x1) * max(0, y2 - y1), built in-place.
    x1 = np.maximum(a[:, None, 0], b[None, :, 0])
    y1 = np.maximum(a[:, None, 1], b[None, :, 1])
    x2 = np.minimum(a[:, None, 2], b[None, :, 2])
    y2 = np.minimum(a[:, None, 3], b[None, :, 3])
    np.subtract(x2, x1, out=x2)
    np.maximum(x2, 0.0, out=x2)
    np.subtract(y2, y1, out=y2)
    np.maximum(y2, 0.0, out=y2)
    np.multiply(x2, y2, out=inter)

    union = x2  # reuse: x2's overlap widths are no longer needed
    np.add(area(a)[:, None], area(b)[None, :], out=union)
    np.subtract(union, inter, out=union)

    valid = union > 0
    iou = inter  # divide in place; invalid entries are zeroed below
    np.divide(inter, union, out=iou, where=valid)
    iou[~valid] = 0.0
    return iou


def iou_pairwise(boxes_a: np.ndarray, boxes_b: np.ndarray) -> np.ndarray:
    """Element-wise IoU of two equal-length box sets (``(N,4)`` vs ``(N,4)``)."""
    a = np.asarray(boxes_a, dtype=np.float64).reshape(-1, 4)
    b = np.asarray(boxes_b, dtype=np.float64).reshape(-1, 4)
    if a.shape[0] != b.shape[0]:
        raise ValueError(f"box sets must have equal length, got {a.shape[0]} and {b.shape[0]}")
    if a.shape[0] == 0:
        return np.zeros(0)
    x1 = np.maximum(a[:, 0], b[:, 0])
    y1 = np.maximum(a[:, 1], b[:, 1])
    x2 = np.minimum(a[:, 2], b[:, 2])
    y2 = np.minimum(a[:, 3], b[:, 3])
    inter = np.maximum(0.0, x2 - x1) * np.maximum(0.0, y2 - y1)
    union = area(a) + area(b) - inter
    valid = union > 0
    result = np.zeros_like(inter)
    np.divide(inter, union, out=result, where=valid)
    return result


def ioa_matrix(boxes_a: np.ndarray, boxes_b: np.ndarray) -> np.ndarray:
    """Pairwise intersection-over-area-of-A.

    ``ioa[i, j]`` is the fraction of box ``a_i`` covered by box ``b_j``; used
    to decide whether a ground-truth object lies inside a region of interest.
    """
    a = np.asarray(boxes_a, dtype=np.float64).reshape(-1, 4)
    b = np.asarray(boxes_b, dtype=np.float64).reshape(-1, 4)
    if a.shape[0] == 0 or b.shape[0] == 0:
        return np.zeros((a.shape[0], b.shape[0]))
    x1 = np.maximum(a[:, None, 0], b[None, :, 0])
    y1 = np.maximum(a[:, None, 1], b[None, :, 1])
    x2 = np.minimum(a[:, None, 2], b[None, :, 2])
    y2 = np.minimum(a[:, None, 3], b[None, :, 3])
    inter = np.maximum(0.0, x2 - x1) * np.maximum(0.0, y2 - y1)
    area_a = area(a)[:, None]
    valid = area_a > 0
    result = np.zeros_like(inter)
    np.divide(inter, np.broadcast_to(area_a, inter.shape), out=result, where=valid)
    return result
