"""Axis-aligned bounding-box kernel: representation, IoU, NMS, masks, merging.

Boxes are ``(N, 4)`` float arrays in ``[x1, y1, x2, y2]`` pixel coordinates
(``x2 > x1``, ``y2 > y1``), the convention used by KITTI labels and by most
detection codebases.
"""

from repro.boxes.box import (
    area,
    as_boxes,
    box_center_size,
    center_size_to_boxes,
    clip_boxes,
    empty_boxes,
    expand_boxes,
    intersect_box,
    is_valid,
    scale_boxes,
    union_box,
    width_height,
)
from repro.boxes.iou import iou_matrix, iou_pairwise, ioa_matrix
from repro.boxes.nms import nms, class_aware_nms, soft_nms
from repro.boxes.mask import RegionMask, boxes_coverage_fraction
from repro.boxes.merge import greedy_merge_boxes, MergeCostModel
from repro.boxes.reference import scalar_greedy_merge_boxes, scalar_nms
from repro.boxes.anchors import (
    AnchorCoverage,
    anchor_coverage,
    anchor_shapes,
    generate_anchors,
)

__all__ = [
    "area",
    "as_boxes",
    "box_center_size",
    "center_size_to_boxes",
    "clip_boxes",
    "empty_boxes",
    "expand_boxes",
    "intersect_box",
    "is_valid",
    "scale_boxes",
    "union_box",
    "width_height",
    "iou_matrix",
    "iou_pairwise",
    "ioa_matrix",
    "nms",
    "class_aware_nms",
    "soft_nms",
    "RegionMask",
    "boxes_coverage_fraction",
    "greedy_merge_boxes",
    "MergeCostModel",
    "scalar_greedy_merge_boxes",
    "scalar_nms",
    "AnchorCoverage",
    "anchor_coverage",
    "anchor_shapes",
    "generate_anchors",
]
