"""RPN anchor generation and coverage analysis.

The proposal network predicts "3 types of anchors with 4 different scales
for each location" of its stride-16 feature map (paper §4.2).  This module
builds that anchor grid and measures *anchor coverage* — the fraction of
ground-truth objects having at least one anchor above an IoU threshold —
which upper-bounds the proposal network's recall and justifies the anchor
configuration.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence as Seq, Tuple

import numpy as np

from repro.boxes.iou import iou_matrix

#: Anchor shapes: 3 aspect ratios x 4 scales (the paper's "3 types of
#: anchors with 4 different scales").  Scales are chosen for KITTI object
#: statistics (anchor sides 16-128 px); ImageNet-style detectors use larger
#: scales on their resized inputs.
DEFAULT_RATIOS = (0.5, 1.0, 2.0)
DEFAULT_SCALES = (1.0, 2.0, 4.0, 8.0)
DEFAULT_STRIDE = 16


def anchor_shapes(
    ratios: Seq[float] = DEFAULT_RATIOS,
    scales: Seq[float] = DEFAULT_SCALES,
    stride: int = DEFAULT_STRIDE,
) -> np.ndarray:
    """The (len(ratios)*len(scales), 2) table of anchor (width, height).

    Each anchor has area ``(scale * stride)^2`` and aspect ratio
    ``height/width = ratio``, the standard Faster R-CNN parameterization.
    """
    shapes = []
    for scale in scales:
        side = float(scale) * stride
        area = side * side
        for ratio in ratios:
            if ratio <= 0:
                raise ValueError(f"ratios must be positive, got {ratio}")
            w = np.sqrt(area / ratio)
            h = w * ratio
            shapes.append((w, h))
    return np.asarray(shapes)


def generate_anchors(
    image_width: int,
    image_height: int,
    *,
    ratios: Seq[float] = DEFAULT_RATIOS,
    scales: Seq[float] = DEFAULT_SCALES,
    stride: int = DEFAULT_STRIDE,
    clip: bool = True,
) -> np.ndarray:
    """The full anchor grid for an image, as an ``(A, 4)`` box array.

    Anchors are centered on feature-map cells (every ``stride`` pixels).
    With the defaults on KITTI-sized input this is ~22k anchors — the
    population the RPN scores before NMS selects 300 proposals.
    """
    if image_width <= 0 or image_height <= 0:
        raise ValueError(
            f"image size must be positive, got {image_width}x{image_height}"
        )
    shapes = anchor_shapes(ratios, scales, stride)
    feat_w = -(-image_width // stride)
    feat_h = -(-image_height // stride)
    cx = (np.arange(feat_w) + 0.5) * stride
    cy = (np.arange(feat_h) + 0.5) * stride
    grid_x, grid_y = np.meshgrid(cx, cy)
    centers = np.stack([grid_x.ravel(), grid_y.ravel()], axis=1)  # (L, 2)

    half = shapes / 2.0  # (S, 2)
    # (L, S, 4) -> (L*S, 4)
    x1 = centers[:, None, 0] - half[None, :, 0]
    y1 = centers[:, None, 1] - half[None, :, 1]
    x2 = centers[:, None, 0] + half[None, :, 0]
    y2 = centers[:, None, 1] + half[None, :, 1]
    anchors = np.stack([x1, y1, x2, y2], axis=2).reshape(-1, 4)
    if clip:
        anchors[:, 0] = np.clip(anchors[:, 0], 0, image_width)
        anchors[:, 2] = np.clip(anchors[:, 2], 0, image_width)
        anchors[:, 1] = np.clip(anchors[:, 1], 0, image_height)
        anchors[:, 3] = np.clip(anchors[:, 3], 0, image_height)
    return anchors


@dataclass(frozen=True)
class AnchorCoverage:
    """Coverage of a ground-truth box set by an anchor grid."""

    covered_fraction: float
    mean_best_iou: float
    num_gt: int

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"coverage {self.covered_fraction:.1%} of {self.num_gt} boxes "
            f"(mean best IoU {self.mean_best_iou:.2f})"
        )


def anchor_coverage(
    gt_boxes: np.ndarray,
    anchors: np.ndarray,
    iou_threshold: float = 0.5,
    *,
    chunk: int = 256,
) -> AnchorCoverage:
    """Fraction of ground truths matched by some anchor at ``iou_threshold``.

    Computed in chunks over the (large) anchor set to bound memory.
    """
    gt_boxes = np.asarray(gt_boxes, dtype=np.float64).reshape(-1, 4)
    anchors = np.asarray(anchors, dtype=np.float64).reshape(-1, 4)
    n = gt_boxes.shape[0]
    if n == 0:
        return AnchorCoverage(covered_fraction=0.0, mean_best_iou=0.0, num_gt=0)
    best = np.zeros(n)
    for start in range(0, n, chunk):
        block = gt_boxes[start : start + chunk]
        ious = iou_matrix(block, anchors)
        best[start : start + chunk] = ious.max(axis=1) if anchors.shape[0] else 0.0
    return AnchorCoverage(
        covered_fraction=float((best >= iou_threshold).mean()),
        mean_best_iou=float(best.mean()),
        num_gt=n,
    )
