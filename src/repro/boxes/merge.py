"""Greedy bounding-box merging for GPU execution efficiency (paper Appendix I).

GPUs are inefficient on many small irregular workloads, so before feeding
regions to the refinement network the paper merges boxes whenever the merged
rectangle is *cheaper under a linear time model* than running the two parts
separately: the model is ``T = alpha * W + b`` where ``W`` is the conv
workload (proportional to area) and ``b`` a fixed per-launch overhead
(roughly the cost of a 400x400 crop).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

import numpy as np

from repro.boxes.box import area, union_box


@dataclass(frozen=True)
class MergeCostModel:
    """Linear GPU-time model ``T = alpha * W + b`` for one region.

    Parameters
    ----------
    alpha:
        Seconds per unit workload.  Workload here is region area in square
        pixels (ops are proportional to area for a fixed network).
    base_area:
        The fixed overhead ``b`` expressed as an equivalent area; the paper
        estimates it as "roughly the execution time of a 400x400 image".
    """

    alpha: float = 1.0e-9
    base_area: float = 400.0 * 400.0

    def __post_init__(self) -> None:
        if self.alpha <= 0:
            raise ValueError(f"alpha must be positive, got {self.alpha}")
        if self.base_area < 0:
            raise ValueError(f"base_area must be >= 0, got {self.base_area}")

    def region_time(self, region_area: float) -> float:
        """Estimated GPU time for a single region of the given area."""
        if region_area < 0:
            raise ValueError(f"region_area must be >= 0, got {region_area}")
        return self.alpha * (region_area + self.base_area)

    def total_time(self, boxes: np.ndarray) -> float:
        """Estimated GPU time for running each region separately."""
        boxes = np.asarray(boxes, dtype=np.float64).reshape(-1, 4)
        return float(sum(self.region_time(a) for a in area(boxes)))


def _merge_gain(model: MergeCostModel, box_a: np.ndarray, box_b: np.ndarray) -> float:
    """Time saved by merging two boxes into their bounding rectangle.

    Positive gain means the merged box is cheaper than the two separately.
    """
    merged = union_box(np.stack([box_a, box_b]))
    t_merged = model.region_time(float(area(merged[None, :])[0]))
    t_separate = model.region_time(float(area(box_a[None, :])[0])) + model.region_time(
        float(area(box_b[None, :])[0])
    )
    return t_separate - t_merged


def greedy_merge_boxes(
    boxes: np.ndarray,
    model: MergeCostModel = MergeCostModel(),
    max_iterations: int = 10_000,
) -> Tuple[np.ndarray, np.ndarray]:
    """Iteratively merge the best pair of boxes while any merge saves time.

    Implements the paper's greedy algorithm: "two bounding boxes are merged
    if the merged box has a smaller estimated execution time than the sum of
    both".  At each step the pair with the largest saving is merged.

    Returns
    -------
    merged_boxes : (M, 4) array
        The merged regions, ``M <= N``.
    assignment : (N,) int array
        For each input box, the index of the merged region containing it.
    """
    boxes = np.asarray(boxes, dtype=np.float64).reshape(-1, 4)
    n = boxes.shape[0]
    if n == 0:
        return boxes.copy(), np.zeros(0, dtype=np.int64)

    current: List[np.ndarray] = [boxes[i].copy() for i in range(n)]
    groups: List[List[int]] = [[i] for i in range(n)]

    for _ in range(max_iterations):
        m = len(current)
        if m <= 1:
            break
        best_gain = 0.0
        best_pair = None
        for i in range(m):
            for j in range(i + 1, m):
                gain = _merge_gain(model, current[i], current[j])
                if gain > best_gain:
                    best_gain = gain
                    best_pair = (i, j)
        if best_pair is None:
            break
        i, j = best_pair
        merged = union_box(np.stack([current[i], current[j]]))
        new_group = groups[i] + groups[j]
        # Remove j first (higher index) to keep i valid.
        for k in sorted((i, j), reverse=True):
            current.pop(k)
            groups.pop(k)
        current.append(merged)
        groups.append(new_group)

    merged_boxes = np.stack(current) if current else np.zeros((0, 4))
    assignment = np.zeros(n, dtype=np.int64)
    for region_idx, members in enumerate(groups):
        for member in members:
            assignment[member] = region_idx
    return merged_boxes, assignment
