"""Greedy bounding-box merging for GPU execution efficiency (paper Appendix I).

GPUs are inefficient on many small irregular workloads, so before feeding
regions to the refinement network the paper merges boxes whenever the merged
rectangle is *cheaper under a linear time model* than running the two parts
separately: the model is ``T = alpha * W + b`` where ``W`` is the conv
workload (proportional to area) and ``b`` a fixed per-launch overhead
(roughly the cost of a 400x400 crop).

The greedy loop is vectorized: each step computes the full pairwise gain
matrix with broadcasting (one ``(m, m)`` kernel instead of ``m^2 / 2``
Python-level cost-model calls) and merges the best positive pair.  The
per-pair arithmetic mirrors the scalar cost model term for term, so merge
decisions — including tie-breaking on the first best pair in row-major
order — are exactly those of the original double loop (kept as
:func:`repro.boxes.reference.scalar_greedy_merge_boxes`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

import numpy as np

from repro.boxes.box import area


@dataclass(frozen=True)
class MergeCostModel:
    """Linear GPU-time model ``T = alpha * W + b`` for one region.

    Parameters
    ----------
    alpha:
        Seconds per unit workload.  Workload here is region area in square
        pixels (ops are proportional to area for a fixed network).
    base_area:
        The fixed overhead ``b`` expressed as an equivalent area; the paper
        estimates it as "roughly the execution time of a 400x400 image".
    """

    alpha: float = 1.0e-9
    base_area: float = 400.0 * 400.0

    def __post_init__(self) -> None:
        if self.alpha <= 0:
            raise ValueError(f"alpha must be positive, got {self.alpha}")
        if self.base_area < 0:
            raise ValueError(f"base_area must be >= 0, got {self.base_area}")

    def region_time(self, region_area: float) -> float:
        """Estimated GPU time for a single region of the given area."""
        if region_area < 0:
            raise ValueError(f"region_area must be >= 0, got {region_area}")
        return self.alpha * (region_area + self.base_area)

    def region_times(self, region_areas: np.ndarray) -> np.ndarray:
        """Vectorized :meth:`region_time` over an array of areas."""
        region_areas = np.asarray(region_areas, dtype=np.float64)
        if np.any(region_areas < 0):
            raise ValueError("region areas must be >= 0")
        return self.alpha * (region_areas + self.base_area)

    def total_time(self, boxes: np.ndarray) -> float:
        """Estimated GPU time for running each region separately."""
        boxes = np.asarray(boxes, dtype=np.float64).reshape(-1, 4)
        return float(sum(self.region_time(a) for a in area(boxes)))


def _pairwise_gains(model: MergeCostModel, boxes: np.ndarray) -> np.ndarray:
    """(m, m) matrix of time saved by merging each pair of boxes.

    Entry ``(i, j)`` is ``region_time(a_i) + region_time(a_j) -
    region_time(union_area(i, j))``, computed with the exact elementwise
    operation sequence of the scalar cost model so every gain is
    bit-identical to :func:`repro.boxes.reference._merge_gain`.
    """
    times = model.alpha * (area(boxes) + model.base_area)  # region_time per box
    x1 = np.minimum(boxes[:, None, 0], boxes[None, :, 0])
    y1 = np.minimum(boxes[:, None, 1], boxes[None, :, 1])
    x2 = np.maximum(boxes[:, None, 2], boxes[None, :, 2])
    y2 = np.maximum(boxes[:, None, 3], boxes[None, :, 3])
    merged_area = np.maximum(0.0, x2 - x1) * np.maximum(0.0, y2 - y1)
    t_merged = model.alpha * (merged_area + model.base_area)
    return (times[:, None] + times[None, :]) - t_merged


def greedy_merge_boxes(
    boxes: np.ndarray,
    model: MergeCostModel = MergeCostModel(),
    max_iterations: int = 10_000,
) -> Tuple[np.ndarray, np.ndarray]:
    """Iteratively merge the best pair of boxes while any merge saves time.

    Implements the paper's greedy algorithm: "two bounding boxes are merged
    if the merged box has a smaller estimated execution time than the sum of
    both".  At each step the pair with the largest saving is merged.

    Returns
    -------
    merged_boxes : (M, 4) array
        The merged regions, ``M <= N``.
    assignment : (N,) int array
        For each input box, the index of the merged region containing it.
    """
    boxes = np.asarray(boxes, dtype=np.float64).reshape(-1, 4)
    n = boxes.shape[0]
    if n == 0:
        return boxes.copy(), np.zeros(0, dtype=np.int64)

    current = boxes.copy()
    groups: List[List[int]] = [[i] for i in range(n)]

    for _ in range(max_iterations):
        m = current.shape[0]
        if m <= 1:
            break
        gains = _pairwise_gains(model, current)
        # Only pairs i < j are candidates; the greedy scalar loop scanned
        # them in row-major order with a strict ">" so np.argmax (first
        # maximum, row-major) reproduces its tie-breaking exactly.
        gains[np.tril_indices(m)] = -np.inf
        flat = int(np.argmax(gains))
        if not (gains.flat[flat] > 0.0):
            break
        i, j = divmod(flat, m)
        merged = np.array(
            [
                min(current[i, 0], current[j, 0]),
                min(current[i, 1], current[j, 1]),
                max(current[i, 2], current[j, 2]),
                max(current[i, 3], current[j, 3]),
            ]
        )
        new_group = groups[i] + groups[j]
        keep = np.ones(m, dtype=bool)
        keep[[i, j]] = False
        current = np.concatenate([current[keep], merged[None, :]], axis=0)
        # Remove j first (higher index) to keep i valid.
        for k in sorted((i, j), reverse=True):
            groups.pop(k)
        groups.append(new_group)

    assignment = np.zeros(n, dtype=np.int64)
    for region_idx, members in enumerate(groups):
        for member in members:
            assignment[member] = region_idx
    return current, assignment
