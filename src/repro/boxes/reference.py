"""Scalar (pre-vectorization) reference implementations of the box kernels.

These are the original per-box Python loops that :func:`repro.boxes.nms.nms`
and :func:`repro.boxes.merge.greedy_merge_boxes` replaced with array-level
code.  They are kept verbatim for two reasons:

* **oracles** — the property tests assert the vectorized kernels produce
  *exactly* the same outputs on randomized inputs (including tie-breaking
  order), so any future change that silently alters semantics fails fast;
* **baselines** — ``repro bench`` measures the vectorized kernels against
  these loops, making the speedup a recorded, regression-gated number.

Do not use them in production paths.
"""

from __future__ import annotations

from typing import List, Tuple

import numpy as np

from repro.boxes.box import area, union_box
from repro.boxes.iou import iou_matrix
from repro.boxes.merge import MergeCostModel


def scalar_nms(
    boxes: np.ndarray, scores: np.ndarray, iou_threshold: float = 0.5
) -> np.ndarray:
    """Greedy NMS with the original per-box Python loop."""
    boxes = np.asarray(boxes, dtype=np.float64).reshape(-1, 4)
    scores = np.asarray(scores, dtype=np.float64).reshape(-1)
    if boxes.shape[0] != scores.shape[0]:
        raise ValueError(
            f"boxes and scores must have equal length, got {boxes.shape[0]} and {scores.shape[0]}"
        )
    if not (0.0 <= iou_threshold <= 1.0):
        raise ValueError(f"iou_threshold must lie in [0, 1], got {iou_threshold}")
    n = boxes.shape[0]
    if n == 0:
        return np.zeros(0, dtype=np.int64)

    order = np.argsort(-scores, kind="stable")
    ious = iou_matrix(boxes, boxes)
    suppressed = np.zeros(n, dtype=bool)
    keep = []
    for idx in order:
        if suppressed[idx]:
            continue
        keep.append(idx)
        suppressed |= ious[idx] > iou_threshold
        suppressed[idx] = True  # a box never suppresses itself out of `keep`
    return np.asarray(keep, dtype=np.int64)


def _merge_gain(model: MergeCostModel, box_a: np.ndarray, box_b: np.ndarray) -> float:
    """Time saved by merging two boxes into their bounding rectangle."""
    merged = union_box(np.stack([box_a, box_b]))
    t_merged = model.region_time(float(area(merged[None, :])[0]))
    t_separate = model.region_time(float(area(box_a[None, :])[0])) + model.region_time(
        float(area(box_b[None, :])[0])
    )
    return t_separate - t_merged


def scalar_greedy_merge_boxes(
    boxes: np.ndarray,
    model: MergeCostModel = MergeCostModel(),
    max_iterations: int = 10_000,
) -> Tuple[np.ndarray, np.ndarray]:
    """Greedy box merging with the original O(m^2)-per-step Python loop."""
    boxes = np.asarray(boxes, dtype=np.float64).reshape(-1, 4)
    n = boxes.shape[0]
    if n == 0:
        return boxes.copy(), np.zeros(0, dtype=np.int64)

    current: List[np.ndarray] = [boxes[i].copy() for i in range(n)]
    groups: List[List[int]] = [[i] for i in range(n)]

    for _ in range(max_iterations):
        m = len(current)
        if m <= 1:
            break
        best_gain = 0.0
        best_pair = None
        for i in range(m):
            for j in range(i + 1, m):
                gain = _merge_gain(model, current[i], current[j])
                if gain > best_gain:
                    best_gain = gain
                    best_pair = (i, j)
        if best_pair is None:
            break
        i, j = best_pair
        merged = union_box(np.stack([current[i], current[j]]))
        new_group = groups[i] + groups[j]
        # Remove j first (higher index) to keep i valid.
        for k in sorted((i, j), reverse=True):
            current.pop(k)
            groups.pop(k)
        current.append(merged)
        groups.append(new_group)

    merged_boxes = np.stack(current) if current else np.zeros((0, 4))
    assignment = np.zeros(n, dtype=np.int64)
    for region_idx, members in enumerate(groups):
        for member in members:
            assignment[member] = region_idx
    return merged_boxes, assignment
