"""Non-maximum suppression variants.

CaTDet applies NMS at two points: inside each simulated detector's output
head, and after the refinement network where tracker- and proposal-sourced
duplicates of the same object must be collapsed (Figure 2d of the paper).

The greedy :func:`nms` is fully array-level: boxes are reindexed into
score order once, suppression is IoU-matrix row masking, and the only
Python loop is over the *kept* boxes (``K`` iterations, not ``N`` — on
detector outputs most boxes are suppressed duplicates).  The pairwise IoU
matrix is computed into a per-thread scratch buffer via
``iou_matrix(..., out=...)``, so steady-state NMS performs no per-call
``(N, N)`` allocation.  Outputs are exactly those of the original
per-box loop (see :mod:`repro.boxes.reference`), including tie order.
"""

from __future__ import annotations

import threading
from typing import Tuple

import numpy as np

from repro.boxes.iou import iou_matrix

_scratch = threading.local()


def _iou_scratch(n: int) -> np.ndarray:
    """Per-thread square scratch matrix, grown geometrically."""
    buf = getattr(_scratch, "iou", None)
    if buf is None or buf.shape[0] < n:
        cap = 32
        while cap < n:
            cap <<= 1
        buf = np.empty((cap, cap), dtype=np.float64)
        _scratch.iou = buf
    return buf


def _mask_scratch(n: int) -> np.ndarray:
    """Per-thread square boolean scratch matrix, grown geometrically."""
    buf = getattr(_scratch, "mask", None)
    if buf is None or buf.shape[0] < n:
        cap = 32
        while cap < n:
            cap <<= 1
        buf = np.empty((cap, cap), dtype=bool)
        _scratch.mask = buf
    return buf


def nms(boxes: np.ndarray, scores: np.ndarray, iou_threshold: float = 0.5) -> np.ndarray:
    """Greedy non-maximum suppression.

    Parameters
    ----------
    boxes : (N, 4) array
    scores : (N,) array
    iou_threshold:
        Boxes with IoU above this value against an already-kept higher-scoring
        box are suppressed.

    Returns
    -------
    Indices of kept boxes, sorted by descending score.
    """
    boxes = np.asarray(boxes, dtype=np.float64).reshape(-1, 4)
    scores = np.asarray(scores, dtype=np.float64).reshape(-1)
    if boxes.shape[0] != scores.shape[0]:
        raise ValueError(
            f"boxes and scores must have equal length, got {boxes.shape[0]} and {scores.shape[0]}"
        )
    if not (0.0 <= iou_threshold <= 1.0):
        raise ValueError(f"iou_threshold must lie in [0, 1], got {iou_threshold}")
    n = boxes.shape[0]
    if n == 0:
        return np.zeros(0, dtype=np.int64)
    if n == 1:
        return np.zeros(1, dtype=np.int64)

    order = np.argsort(-scores, kind="stable")
    ious = iou_matrix(boxes[order], boxes[order], out=_iou_scratch(n))
    # Threshold the whole matrix once; the loop is then pure row masking.
    over = _mask_scratch(n).reshape(-1)[: n * n].reshape(n, n)
    np.greater(ious, iou_threshold, out=over)
    suppressed = np.zeros(n, dtype=bool)
    keep = []
    p = 0
    while p < n:
        keep.append(int(order[p]))
        # Mask everything this box suppresses, in one row operation.
        np.logical_or(suppressed, over[p], out=suppressed)
        # Scan forward to the next surviving candidate.
        p += 1
        while p < n and suppressed[p]:
            p += 1
    return np.asarray(keep, dtype=np.int64)


def class_aware_nms(
    boxes: np.ndarray,
    scores: np.ndarray,
    labels: np.ndarray,
    iou_threshold: float = 0.5,
) -> np.ndarray:
    """NMS applied independently per class label.

    Returns kept indices into the original arrays (descending score within
    each class, classes interleaved by global score order).  Classes are
    sliced from one stable label-sorted permutation instead of rescanning
    the label array once per class.
    """
    boxes = np.asarray(boxes, dtype=np.float64).reshape(-1, 4)
    scores = np.asarray(scores, dtype=np.float64).reshape(-1)
    labels = np.asarray(labels).reshape(-1)
    if not (boxes.shape[0] == scores.shape[0] == labels.shape[0]):
        raise ValueError("boxes, scores and labels must have equal length")
    n = boxes.shape[0]
    keep_mask = np.zeros(n, dtype=bool)
    if n:
        perm = np.argsort(labels, kind="stable")
        sorted_labels = labels[perm]
        splits = np.flatnonzero(sorted_labels[1:] != sorted_labels[:-1]) + 1
        for cls_idx in np.split(perm, splits):
            kept = nms(boxes[cls_idx], scores[cls_idx], iou_threshold)
            keep_mask[cls_idx[kept]] = True
    kept_all = np.flatnonzero(keep_mask)
    return kept_all[np.argsort(-scores[kept_all], kind="stable")]


def soft_nms(
    boxes: np.ndarray,
    scores: np.ndarray,
    iou_threshold: float = 0.5,
    sigma: float = 0.5,
    score_threshold: float = 1e-3,
) -> Tuple[np.ndarray, np.ndarray]:
    """Gaussian Soft-NMS (Bodla et al., 2017) — provided for ablations.

    Instead of removing overlapping boxes, their scores decay by
    ``exp(-iou^2 / sigma)``.  Returns ``(kept_indices, decayed_scores)``.
    """
    boxes = np.asarray(boxes, dtype=np.float64).reshape(-1, 4)
    scores = np.asarray(scores, dtype=np.float64).reshape(-1).copy()
    if boxes.shape[0] != scores.shape[0]:
        raise ValueError("boxes and scores must have equal length")
    if sigma <= 0:
        raise ValueError(f"sigma must be positive, got {sigma}")
    n = boxes.shape[0]
    if n == 0:
        return np.zeros(0, dtype=np.int64), np.zeros(0)

    ious = iou_matrix(boxes, boxes)
    alive = np.ones(n, dtype=bool)
    keep = []
    kept_scores = []
    while alive.any():
        live_idx = np.flatnonzero(alive)
        best = live_idx[np.argmax(scores[live_idx])]
        if scores[best] < score_threshold:
            break
        keep.append(best)
        kept_scores.append(scores[best])
        alive[best] = False
        overlapping = ious[best] > iou_threshold
        decay = np.exp(-(ious[best] ** 2) / sigma)
        scores = np.where(alive & overlapping, scores * decay, scores)
    return np.asarray(keep, dtype=np.int64), np.asarray(kept_scores)
