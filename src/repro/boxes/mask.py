"""Region-of-interest occupancy masks.

The CaTDet refinement network only computes backbone features over the union
of the proposed regions (paper §4.3: "the regions-of-interest are not
required to be rectangular").  Its operation count therefore scales with the
*union area* of the (margin-expanded) proposal boxes, not their sum.  This
module computes exact union areas via coordinate compression, which is exact
for the box counts involved (tens per frame) and avoids pixel rasterization.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from repro.boxes.box import clip_boxes, expand_boxes
from repro.boxes.iou import ioa_matrix


def _union_area(boxes: np.ndarray) -> float:
    """Exact area of the union of boxes via coordinate compression."""
    boxes = np.asarray(boxes, dtype=np.float64).reshape(-1, 4)
    valid = (boxes[:, 2] > boxes[:, 0]) & (boxes[:, 3] > boxes[:, 1])
    boxes = boxes[valid]
    if boxes.shape[0] == 0:
        return 0.0
    xs = np.unique(np.concatenate([boxes[:, 0], boxes[:, 2]]))
    ys = np.unique(np.concatenate([boxes[:, 1], boxes[:, 3]]))
    # Cell (i, j) spans [xs[i], xs[i+1]] x [ys[j], ys[j+1]]; it is covered iff
    # some box contains its lower-left corner strictly inside.
    cx = xs[:-1]
    cy = ys[:-1]
    dx = np.diff(xs)
    dy = np.diff(ys)
    # covered[i, j]: any box with x1 <= cx[i] < x2 and y1 <= cy[j] < y2
    in_x = (boxes[:, None, 0] <= cx[None, :]) & (cx[None, :] < boxes[:, None, 2])  # (B, X)
    in_y = (boxes[:, None, 1] <= cy[None, :]) & (cy[None, :] < boxes[:, None, 3])  # (B, Y)
    covered = np.einsum("bx,by->xy", in_x.astype(np.float64), in_y.astype(np.float64)) > 0
    return float(np.sum(covered * dx[:, None] * dy[None, :]))


@dataclass
class RegionMask:
    """Union of margin-expanded proposal boxes clipped to the image.

    Parameters
    ----------
    boxes:
        ``(N, 4)`` proposal boxes in image coordinates.
    width, height:
        Image dimensions in pixels.
    margin:
        Pixels of context appended around every proposal before taking the
        union (the paper uses 30).
    """

    boxes: np.ndarray
    width: float
    height: float
    margin: float = 30.0
    _expanded: np.ndarray = field(init=False, repr=False)

    def __post_init__(self) -> None:
        if self.width <= 0 or self.height <= 0:
            raise ValueError(
                f"image dimensions must be positive, got {self.width}x{self.height}"
            )
        if self.margin < 0:
            raise ValueError(f"margin must be >= 0, got {self.margin}")
        boxes = np.asarray(self.boxes, dtype=np.float64).reshape(-1, 4)
        self.boxes = boxes
        self._expanded = clip_boxes(expand_boxes(boxes, self.margin), self.width, self.height)

    @property
    def expanded_boxes(self) -> np.ndarray:
        """Margin-expanded, image-clipped boxes forming the mask."""
        return self._expanded

    def union_area(self) -> float:
        """Exact area of the mask in square pixels."""
        return _union_area(self._expanded)

    def coverage_fraction(self) -> float:
        """Mask area as a fraction of the full image area, in [0, 1]."""
        return self.union_area() / (self.width * self.height)

    def contains(self, query_boxes: np.ndarray, min_overlap: float = 0.7) -> np.ndarray:
        """Which query boxes are (mostly) inside the mask.

        A query box counts as contained when at least ``min_overlap`` of its
        area is covered by some single expanded region.  This is a slight
        under-approximation of coverage by the union, which is conservative:
        objects straddling two disjoint regions may be reported uncovered.
        """
        query = np.asarray(query_boxes, dtype=np.float64).reshape(-1, 4)
        if query.shape[0] == 0:
            return np.zeros(0, dtype=bool)
        if self._expanded.shape[0] == 0:
            return np.zeros(query.shape[0], dtype=bool)
        ioa = ioa_matrix(query, self._expanded)
        return ioa.max(axis=1) >= min_overlap

    def is_empty(self) -> bool:
        """True when the mask contains no regions."""
        return self._expanded.shape[0] == 0


def boxes_coverage_fraction(
    boxes: np.ndarray,
    width: float,
    height: float,
    margin: float = 0.0,
) -> float:
    """Convenience wrapper: fraction of the image covered by the box union."""
    return RegionMask(boxes, width, height, margin).coverage_fraction()
