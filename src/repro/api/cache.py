"""Content-addressed on-disk cache of experiment results.

Entries are keyed by a spec fingerprint (see
:attr:`repro.api.spec.ExperimentSpec.fingerprint`) or, for ad-hoc
datasets, by a combined (config, dataset content, eval) digest from
:func:`experiment_key`.  Payloads are the lossless
``repro-experiment-full/1`` JSON of :mod:`repro.harness.io`, so a cache
hit returns a result bit-identical to the original computation —
boxes, scores, labels and op accounts included.

Layout: ``<root>/<fp[:2]>/<fp>.json`` (two-level sharding keeps any one
directory small on big sweeps).  Writes are atomic (tmp file + rename),
so concurrent sessions sharing a cache directory at worst duplicate
work, never corrupt entries; corrupt or truncated files are treated as
misses and rewritten.
"""

from __future__ import annotations

import hashlib
import json
import os
import time
from dataclasses import dataclass
from pathlib import Path
from typing import TYPE_CHECKING, Any, Dict, List, Optional, Union

from repro.core.config import SystemConfig, config_to_dict

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.api.spec import EvalSpec
    from repro.datasets.types import Dataset
    from repro.harness.experiment import ExperimentResult


def fingerprint_dataset(dataset: "Dataset") -> str:
    """Stable content digest of a dataset's ground truth.

    Hashes the geometry and every track's boxes/occlusion/truncation
    arrays, so two datasets with identical content share cache entries
    regardless of how they were constructed.
    """
    h = hashlib.sha256()
    h.update(repr((dataset.name, [
        (c.name, c.label, c.min_iou) for c in dataset.classes
    ], dataset.labeled_frames)).encode("utf-8"))
    for seq in dataset.sequences:
        h.update(
            repr((seq.name, seq.width, seq.height, seq.num_frames, seq.fps)).encode("utf-8")
        )
        for track in seq.tracks:
            h.update(repr((track.track_id, track.label, track.first_frame)).encode("utf-8"))
            h.update(track.boxes.tobytes())
            h.update(track.occlusion.tobytes())
            h.update(track.truncation.tobytes())
    return h.hexdigest()


def experiment_key(
    config: SystemConfig, dataset_fingerprint: str, eval_spec: "EvalSpec"
) -> str:
    """Cache key for the classic ``run_experiment(config, dataset)`` path."""
    payload = {
        "format": "repro-experiment-key/1",
        "system": config_to_dict(config),
        "dataset": dataset_fingerprint,
        "eval": eval_spec.result_key_dict(),
    }
    canonical = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


@dataclass(frozen=True)
class CacheEntry:
    """One stored result: its key plus on-disk accounting."""

    fingerprint: str
    path: Path
    size_bytes: int
    mtime: float
    label: Optional[str] = None


class ResultCache:
    """Content-addressed store of serialized :class:`ExperimentResult`\\ s."""

    def __init__(self, root: Union[str, Path]):
        self.root = Path(root)
        self.hits = 0
        self.misses = 0

    def path_for(self, fingerprint: str) -> Path:
        return self.root / fingerprint[:2] / f"{fingerprint}.json"

    def load(self, fingerprint: str) -> Optional["ExperimentResult"]:
        """The cached result for ``fingerprint``, or ``None`` on a miss.

        Unreadable entries (corrupt JSON, foreign formats) count as
        misses: the caller recomputes and overwrites them.
        """
        from repro.harness.io import experiment_from_dict

        path = self.path_for(fingerprint)
        try:
            with open(path, "r", encoding="utf-8") as fh:
                payload = json.load(fh)
            result = experiment_from_dict(payload["result"])
        except FileNotFoundError:
            self.misses += 1
            return None
        except (json.JSONDecodeError, KeyError, ValueError, TypeError):
            self.misses += 1
            return None
        self.hits += 1
        return result

    def store(
        self,
        fingerprint: str,
        result: "ExperimentResult",
        *,
        spec: Optional[Dict[str, Any]] = None,
    ) -> Path:
        """Atomically write ``result`` under ``fingerprint``.

        ``spec`` (a plain dict, e.g. ``ExperimentSpec.to_dict()``) is
        stored alongside for human inspection of what produced the entry.
        """
        from repro.harness.io import experiment_to_dict

        payload: Dict[str, Any] = {
            "format": "repro-result-cache/1",
            "fingerprint": fingerprint,
            "spec": spec,
            "result": experiment_to_dict(result),
        }
        path = self.path_for(fingerprint)
        path.parent.mkdir(parents=True, exist_ok=True)
        tmp = path.with_suffix(f".tmp.{os.getpid()}")
        with open(tmp, "w", encoding="utf-8") as fh:
            json.dump(payload, fh, allow_nan=True)
        os.replace(tmp, path)
        return path

    def __contains__(self, fingerprint: str) -> bool:
        return self.path_for(fingerprint).exists()

    def __len__(self) -> int:
        if not self.root.exists():
            return 0
        return sum(1 for _ in self.root.glob("*/*.json"))

    def clear(self) -> int:
        """Delete every entry; returns how many were removed."""
        removed = 0
        if self.root.exists():
            for entry in self.root.glob("*/*.json"):
                entry.unlink()
                removed += 1
        return removed

    def entries(self, *, with_labels: bool = False) -> List[CacheEntry]:
        """Every stored entry, newest first.

        ``with_labels`` additionally opens each file to pull the stored
        spec's human label (slower — it reads every payload).
        """
        out: List[CacheEntry] = []
        if not self.root.exists():
            return out
        for path in self.root.glob("*/*.json"):
            try:
                stat = path.stat()
            except OSError:
                continue  # pruned/overwritten concurrently
            label = None
            if with_labels:
                label = self._entry_label(path)
            out.append(
                CacheEntry(
                    fingerprint=path.stem,
                    path=path,
                    size_bytes=stat.st_size,
                    mtime=stat.st_mtime,
                    label=label,
                )
            )
        out.sort(key=lambda e: e.mtime, reverse=True)
        return out

    @staticmethod
    def _entry_label(path: Path) -> Optional[str]:
        try:
            with open(path, "r", encoding="utf-8") as fh:
                payload = json.load(fh)
            spec = payload.get("spec") or {}
            system = spec.get("system") or payload.get("result", {}).get("config")
            if system is None:
                return None
            from repro.core.config import config_from_dict

            label = config_from_dict(system).label
            family = (spec.get("dataset") or {}).get("family")
            return f"{label} @ {family}" if family else label
        except (OSError, json.JSONDecodeError, ValueError, TypeError, KeyError):
            return None

    def stats(self) -> Dict[str, Any]:
        """Aggregate accounting: entry count, bytes, oldest/newest age."""
        entries = self.entries()
        now = time.time()
        return {
            "root": str(self.root),
            "entries": len(entries),
            "total_bytes": sum(e.size_bytes for e in entries),
            "newest_age_seconds": now - entries[0].mtime if entries else None,
            "oldest_age_seconds": now - entries[-1].mtime if entries else None,
        }

    def prune(self, older_than_seconds: float) -> int:
        """Delete entries not written in the last ``older_than_seconds``.

        Returns how many entries were removed; empty shard directories
        are cleaned up too.
        """
        if older_than_seconds < 0:
            raise ValueError(f"older_than_seconds must be >= 0, got {older_than_seconds}")
        cutoff = time.time() - older_than_seconds
        removed = 0
        for entry in self.entries():
            if entry.mtime < cutoff:
                try:
                    entry.path.unlink()
                    removed += 1
                except OSError:
                    continue
        if self.root.exists():
            for shard in self.root.iterdir():
                if shard.is_dir():
                    try:
                        shard.rmdir()  # only succeeds when empty
                    except OSError:
                        pass
        return removed
