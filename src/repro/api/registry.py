"""Plugin registries for systems, dataset families and executors.

The declarative API (:mod:`repro.api.spec`) names everything by string —
``"catdet"``, ``"kitti"``, ``"process"`` — and these registries resolve the
strings to builders.  Third-party scenarios plug in without touching core::

    from repro.api import register_system

    @register_system("mydet")
    def _build_mydet(config):          # config: SystemConfig
        return MyDetSystem(config.refinement_model, seed=config.seed)

    SystemConfig("mydet", "resnet50")  # now a valid kind everywhere:
                                       # CLI, specs, caches, tables.

This module is intentionally dependency-free (nothing from ``repro`` is
imported at module level) so any layer — ``core.config``, the dataset
modules, the engine — can import it without cycles.  Built-in entries
live next to their implementations and are pulled in lazily by each
registry's ``bootstrap`` hook on first lookup.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, Iterator, Optional, Tuple


class Registry:
    """A named string → value table with decorator-style registration.

    Parameters
    ----------
    kind:
        Human-readable description of what is being registered (used in
        error messages: ``"system kind"``, ``"dataset family"``, ...).
    bootstrap:
        Zero-argument callable importing the modules that register the
        built-in entries.  Invoked once, before the first lookup, so
        built-ins resolve regardless of import order.
    """

    def __init__(self, kind: str, bootstrap: Optional[Callable[[], None]] = None):
        self.kind = kind
        self._entries: Dict[str, Any] = {}
        self._bootstrap = bootstrap
        self._booted = bootstrap is None

    def _boot(self) -> None:
        if not self._booted:
            # Flip first: the bootstrap import triggers register() calls and
            # may itself perform lookups (e.g. a module-level SystemConfig).
            self._booted = True
            self._bootstrap()

    def register(self, name: str, value: Any = None, *, override: bool = False):
        """Register ``value`` under ``name``; usable as a decorator.

        Raises :class:`ValueError` on duplicate names unless ``override``
        is set — silent shadowing of a built-in is almost always a typo.
        """
        if not name or not isinstance(name, str):
            raise ValueError(f"{self.kind} name must be a non-empty string, got {name!r}")

        def _add(obj: Any) -> Any:
            if not override and name in self._entries:
                raise ValueError(
                    f"{self.kind} {name!r} is already registered; "
                    f"pass override=True to replace it"
                )
            self._entries[name] = obj
            return obj

        if value is None:
            return _add
        return _add(value)

    def get(self, name: str) -> Any:
        self._boot()
        try:
            return self._entries[name]
        except KeyError:
            known = ", ".join(repr(n) for n in self.names())
            raise KeyError(
                f"unknown {self.kind} {name!r}; registered: {known}"
            ) from None

    def names(self) -> Tuple[str, ...]:
        self._boot()
        return tuple(sorted(self._entries))

    def __contains__(self, name: str) -> bool:
        self._boot()
        return name in self._entries

    def __iter__(self) -> Iterator[str]:
        return iter(self.names())

    def __len__(self) -> int:
        self._boot()
        return len(self._entries)


@dataclass(frozen=True)
class SystemEntry:
    """One registered system kind.

    ``builder`` maps a :class:`~repro.core.config.SystemConfig` to a
    runnable :class:`~repro.core.systems.DetectionSystem`;
    ``requires_proposal`` drives config validation (cascade-style systems
    need a proposal network, single-model ones must not demand it).
    ``frame_parallel`` declares that the system's frames are mutually
    independent (no cross-frame feedback like a tracker), so executors
    may split *within* a sequence by frame range and workers may execute
    partial-sequence shards — output stays byte-identical to the serial
    frame loop.
    """

    builder: Callable[[Any], Any]
    requires_proposal: bool = False
    frame_parallel: bool = False


def _boot_systems() -> None:
    import repro.core.config  # noqa: F401  (registers single/cascade/catdet/keyframe)


def _boot_datasets() -> None:
    import repro.datasets.citypersons  # noqa: F401
    import repro.datasets.kitti  # noqa: F401


def _boot_executors() -> None:
    import repro.cluster.coordinator  # noqa: F401  (registers multihost)
    import repro.engine.scheduler  # noqa: F401


#: System kind → :class:`SystemEntry`.
SYSTEMS = Registry("system kind", bootstrap=_boot_systems)

#: Dataset family → factory ``(num_sequences=None, frames_per_sequence=None,
#: seed=None) -> Dataset`` (``None`` means the family's own default).
DATASET_FAMILIES = Registry("dataset family", bootstrap=_boot_datasets)

#: Executor name → factory ``(workers: Optional[int]) -> SequenceExecutor``.
EXECUTORS = Registry("executor", bootstrap=_boot_executors)


def register_system(
    name: str,
    *,
    requires_proposal: bool = False,
    frame_parallel: bool = False,
    override: bool = False,
):
    """Decorator registering a system builder under ``name``.

    The decorated callable receives the full ``SystemConfig`` and returns a
    runnable system; ``name`` becomes a valid ``SystemConfig.kind``.
    Declare ``frame_parallel=True`` only for systems with no cross-frame
    feedback (see :class:`SystemEntry`).

    Cache-correctness contract: the builder must derive every
    result-affecting parameter from the config it receives.  A knob baked
    into the builder's body is invisible to the spec fingerprint, so the
    content-addressed result cache would serve stale entries after the
    builder changes.
    """

    def _decorate(builder: Callable[[Any], Any]):
        SYSTEMS.register(
            name,
            SystemEntry(
                builder=builder,
                requires_proposal=requires_proposal,
                frame_parallel=frame_parallel,
            ),
            override=override,
        )
        return builder

    return _decorate


def register_dataset_family(name: str, *, override: bool = False):
    """Decorator registering a dataset-family factory under ``name``."""

    def _decorate(factory: Callable[..., Any]):
        DATASET_FAMILIES.register(name, factory, override=override)
        return factory

    return _decorate


def register_executor(name: str, *, override: bool = False):
    """Decorator registering an executor factory under ``name``."""

    def _decorate(factory: Callable[..., Any]):
        EXECUTORS.register(name, factory, override=override)
        return factory

    return _decorate
