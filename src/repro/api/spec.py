"""Declarative, JSON-round-trippable experiment specifications.

An :class:`ExperimentSpec` fully describes one operating point of the
paper's grids — which system (:class:`~repro.core.config.SystemConfig`),
on which data (:class:`DatasetSpec`), evaluated how (:class:`EvalSpec`),
executed how (:class:`ExecSpec`).  Specs are frozen, hashable, serialize
to/from JSON exactly (``spec == ExperimentSpec.from_json(spec.to_json())``)
and carry a stable content :attr:`~ExperimentSpec.fingerprint` that keys
the on-disk result cache (:mod:`repro.api.cache`).

The fingerprint covers only result-affecting fields — the execution plan
(worker count, executor choice) is excluded, because results are
byte-identical at any worker count.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field, replace
from typing import Any, Dict, Optional, Tuple

from repro.core.config import SystemConfig, config_from_dict, config_to_dict
from repro.metrics.kitti_eval import DIFFICULTIES

SPEC_FORMAT = "repro-spec/1"

_AP_METHODS = ("r40", "voc11")


@dataclass(frozen=True)
class DatasetSpec:
    """Which evaluation data to generate.

    Parameters
    ----------
    family:
        A registered dataset family (built-ins: ``"kitti"``,
        ``"citypersons"``; extend with
        :func:`repro.api.registry.register_dataset_family`).
    num_sequences / frames_per_sequence / seed:
        Size and world seed; ``None`` defers to the family's defaults.
    """

    family: str = "kitti"
    num_sequences: Optional[int] = None
    frames_per_sequence: Optional[int] = None
    seed: Optional[int] = None

    def __post_init__(self) -> None:
        if not self.family or not isinstance(self.family, str):
            raise ValueError(f"family must be a non-empty string, got {self.family!r}")
        for name in ("num_sequences", "frames_per_sequence"):
            value = getattr(self, name)
            if value is not None and value < 1:
                raise ValueError(f"{name} must be >= 1, got {value}")

    def to_dict(self) -> Dict[str, Any]:
        return {
            "family": self.family,
            "num_sequences": self.num_sequences,
            "frames_per_sequence": self.frames_per_sequence,
            "seed": self.seed,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "DatasetSpec":
        return cls(**_known_fields(cls, data))


@dataclass(frozen=True)
class EvalSpec:
    """How to score a run.

    Parameters
    ----------
    difficulties:
        KITTI difficulty names to evaluate at (see
        :data:`repro.metrics.kitti_eval.DIFFICULTIES`).
    ap_method:
        ``"r40"`` (KITTI 40-recall-point) or ``"voc11"``.
    delay_beta:
        Precision level of the reported mean delay (``mD@beta``).
    with_delay:
        Track per-object delay records (disable for sparse-label data).
    """

    difficulties: Tuple[str, ...] = ("moderate", "hard")
    ap_method: str = "r40"
    delay_beta: float = 0.8
    with_delay: bool = True

    def __post_init__(self) -> None:
        object.__setattr__(self, "difficulties", tuple(self.difficulties))
        if not self.difficulties:
            raise ValueError("at least one difficulty is required")
        for name in self.difficulties:
            if name not in DIFFICULTIES:
                raise ValueError(
                    f"unknown difficulty {name!r}; known: {tuple(sorted(DIFFICULTIES))}"
                )
        if self.ap_method not in _AP_METHODS:
            raise ValueError(f"ap_method must be one of {_AP_METHODS}, got {self.ap_method!r}")
        if not (0.0 < self.delay_beta <= 1.0):
            raise ValueError(f"delay_beta must lie in (0, 1], got {self.delay_beta}")

    def to_dict(self) -> Dict[str, Any]:
        return {
            "difficulties": list(self.difficulties),
            "ap_method": self.ap_method,
            "delay_beta": self.delay_beta,
            "with_delay": self.with_delay,
        }

    def result_key_dict(self) -> Dict[str, Any]:
        """The subset of fields that change the *stored* result.

        ``ap_method`` and ``delay_beta`` are applied at read time on the
        cached evaluation state, so specs differing only in them share one
        cache entry.
        """
        return {"difficulties": list(self.difficulties), "with_delay": self.with_delay}

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "EvalSpec":
        return cls(**_known_fields(cls, data))


@dataclass(frozen=True)
class ExecSpec:
    """How to execute a run — never affects the numbers, only the speed.

    Parameters
    ----------
    executor:
        A registered executor name (built-ins: ``"auto"``, ``"serial"``,
        ``"process"``, ``"multihost"``).
    workers:
        Sequence-level worker processes (``1`` = serial, ``0`` = one per
        CPU; ignored by ``"multihost"``, whose fleet size is whoever runs
        ``repro worker``).
    queue_dir:
        Shared work-queue directory for distributed executors
        (``"multihost"``); local executors ignore it.
    """

    executor: str = "auto"
    workers: int = 1
    queue_dir: Optional[str] = None

    def __post_init__(self) -> None:
        if not self.executor or not isinstance(self.executor, str):
            raise ValueError(f"executor must be a non-empty string, got {self.executor!r}")
        if self.workers < 0:
            raise ValueError(f"workers must be >= 0, got {self.workers}")
        if self.queue_dir is not None and not isinstance(self.queue_dir, str):
            raise ValueError(f"queue_dir must be a string path, got {self.queue_dir!r}")

    def to_dict(self) -> Dict[str, Any]:
        return {
            "executor": self.executor,
            "workers": self.workers,
            "queue_dir": self.queue_dir,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "ExecSpec":
        return cls(**_known_fields(cls, data))


@dataclass(frozen=True)
class ExperimentSpec:
    """One fully-described experiment: system + data + scoring + execution."""

    system: SystemConfig
    dataset: DatasetSpec = field(default_factory=DatasetSpec)
    eval: EvalSpec = field(default_factory=EvalSpec)
    exec: ExecSpec = field(default_factory=ExecSpec)

    def __post_init__(self) -> None:
        if not isinstance(self.system, SystemConfig):
            raise TypeError(f"system must be a SystemConfig, got {type(self.system).__name__}")

    @property
    def label(self) -> str:
        """The system's table label plus the dataset family."""
        return f"{self.system.label} @ {self.dataset.family}"

    def to_dict(self) -> Dict[str, Any]:
        return {
            "format": SPEC_FORMAT,
            "system": config_to_dict(self.system),
            "dataset": self.dataset.to_dict(),
            "eval": self.eval.to_dict(),
            "exec": self.exec.to_dict(),
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "ExperimentSpec":
        fmt = data.get("format", SPEC_FORMAT)
        if fmt != SPEC_FORMAT:
            raise ValueError(f"unsupported spec format {fmt!r}, expected {SPEC_FORMAT!r}")
        if "system" not in data:
            raise ValueError("spec is missing the required 'system' section")
        return cls(
            system=config_from_dict(data["system"]),
            dataset=DatasetSpec.from_dict(data.get("dataset", {})),
            eval=EvalSpec.from_dict(data.get("eval", {})),
            exec=ExecSpec.from_dict(data.get("exec", {})),
        )

    def to_json(self, *, indent: Optional[int] = None) -> str:
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "ExperimentSpec":
        return cls.from_dict(json.loads(text))

    @property
    def fingerprint(self) -> str:
        """Stable content address of the *result* this spec determines.

        Hashes the canonical JSON of the system, dataset and the
        result-affecting eval fields — not ``exec`` (worker count and
        executor choice never change the numbers) and not
        ``ap_method``/``delay_beta`` (applied at read time on the cached
        evaluation state).  Specs differing only in those therefore share
        one cache entry.
        """
        payload = {
            "format": SPEC_FORMAT,
            "system": config_to_dict(self.system),
            "dataset": self.dataset.to_dict(),
            "eval": self.eval.result_key_dict(),
        }
        canonical = json.dumps(payload, sort_keys=True, separators=(",", ":"))
        return hashlib.sha256(canonical.encode("utf-8")).hexdigest()

    def with_system(self, **changes: Any) -> "ExperimentSpec":
        """A copy with :class:`SystemConfig` fields replaced."""
        return replace(self, system=replace(self.system, **changes))

    @property
    def device(self) -> Optional[str]:
        """The modeled device the run reports latency for.

        Lives on the :class:`SystemConfig` (it rides along wherever the
        system description travels — worker processes, cluster
        envelopes, cache keys) and is therefore part of the content
        fingerprint: the same system on a different modeled device is a
        different result.
        """
        return self.system.device

    def with_device(self, device: Optional[str]) -> "ExperimentSpec":
        """A copy reporting latency for ``device`` (a registered
        :data:`repro.cost.DEVICE_PROFILES` name, or ``None`` to disable
        timing accounting)."""
        return self.with_system(device=device)


def _known_fields(cls, data: Dict[str, Any]) -> Dict[str, Any]:
    known = set(cls.__dataclass_fields__)
    unknown = set(data) - known
    if unknown:
        raise ValueError(f"unknown {cls.__name__} fields: {sorted(unknown)}")
    return dict(data)


# --------------------------------------------------------------------- #
# Serving specs
# --------------------------------------------------------------------- #

SERVE_SPEC_FORMAT = "repro-serve-spec/1"


@dataclass(frozen=True)
class ServeSpec:
    """One fully-described serving deployment: system + data + load + knobs.

    The online-serving sibling of :class:`ExperimentSpec`: which system
    serves (:class:`~repro.core.config.SystemConfig`), which dataset
    family supplies the camera streams (:class:`DatasetSpec`), the
    open-loop load offered (:class:`~repro.serve.loadgen.LoadSpec`), the
    server's admission/batching policy
    (:class:`~repro.serve.server.ServePolicy`) and the accelerator timing
    model (:class:`~repro.serve.server.ServiceModel`).  Frozen, JSON
    round-trippable, and content-fingerprinted: serving is a
    deterministic simulation, so a spec's throughput/latency report is a
    pure function of the spec and
    :meth:`repro.api.session.Session.serve` caches it by fingerprint.

    Unlike :class:`ExperimentSpec`, *every* section is result-affecting
    (the policy changes batching, the service model changes every
    latency), so the fingerprint covers the whole spec — including the
    ``device``.

    The accelerator is named once: pass ``device`` (a registered
    :data:`repro.cost.DEVICE_PROFILES` name) and the
    :class:`~repro.serve.server.ServiceModel` is calibrated from that
    profile.  Passing an *explicit* uncalibrated service model together
    with a device is an error — the two would silently disagree about
    what a MAC costs.  With neither, the ``"abstract"`` profile (the
    historical serving defaults) applies; a ``device`` on the
    :class:`SystemConfig` itself, if any, takes precedence over that
    fallback so offline timing and serving simulate the same hardware.

    ``query`` optionally attaches a scenario query
    (:class:`~repro.query.spec.QuerySpec`) evaluated online per stream
    during the run; its windows land in the report's ``query_windows``
    section.  Like every other section it is part of the fingerprint —
    the same deployment under a different query is a different report.
    """

    system: SystemConfig
    dataset: DatasetSpec = field(default_factory=DatasetSpec)
    load: "Any" = None
    policy: "Any" = None
    service: "Any" = None
    device: Optional[str] = None
    query: "Any" = None

    def __post_init__(self) -> None:
        from repro.query.spec import QuerySpec
        from repro.serve.loadgen import LoadSpec
        from repro.serve.server import ServePolicy, ServiceModel

        if not isinstance(self.system, SystemConfig):
            raise TypeError(
                f"system must be a SystemConfig, got {type(self.system).__name__}"
            )
        if self.load is None:
            object.__setattr__(self, "load", LoadSpec())
        elif not isinstance(self.load, LoadSpec):
            raise TypeError(f"load must be a LoadSpec, got {type(self.load).__name__}")
        if self.policy is None:
            object.__setattr__(self, "policy", ServePolicy())
        elif not isinstance(self.policy, ServePolicy):
            raise TypeError(
                f"policy must be a ServePolicy, got {type(self.policy).__name__}"
            )
        if self.device is not None and not isinstance(self.device, str):
            raise TypeError(f"device must be a string, got {type(self.device).__name__}")
        if self.query is not None and not isinstance(self.query, QuerySpec):
            raise TypeError(
                f"query must be a QuerySpec, got {type(self.query).__name__}"
            )
        if self.service is None:
            device = self.device or self.system.device or "abstract"
            object.__setattr__(self, "service", ServiceModel.for_device(device))
            object.__setattr__(self, "device", device)
        elif not isinstance(self.service, ServiceModel):
            raise TypeError(
                f"service must be a ServiceModel, got {type(self.service).__name__}"
            )
        elif self.device is not None and self.device != self.service.device:
            raise ValueError(
                f"ServeSpec got both an explicit service model and "
                f"device={self.device!r}; pass one or the other — the device "
                f"profile is what calibrates the service model "
                f"(use ServiceModel.for_device({self.device!r}))"
            )
        else:
            # Record the service model's provenance (None for explicit
            # uncalibrated rates) so to_dict/from_dict round-trips exactly.
            object.__setattr__(self, "device", self.service.device)

    @property
    def label(self) -> str:
        return (
            f"{self.system.label} @ {self.dataset.family} "
            f"x{self.load.num_streams} {self.load.pattern}"
        )

    def to_dict(self) -> Dict[str, Any]:
        return {
            "format": SERVE_SPEC_FORMAT,
            "system": config_to_dict(self.system),
            "dataset": self.dataset.to_dict(),
            "load": self.load.to_dict(),
            "policy": self.policy.to_dict(),
            "service": self.service.to_dict(),
            "device": self.device,
            "query": None if self.query is None else self.query.to_dict(),
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "ServeSpec":
        from repro.query.spec import QuerySpec
        from repro.serve.loadgen import LoadSpec
        from repro.serve.server import ServePolicy, ServiceModel

        fmt = data.get("format", SERVE_SPEC_FORMAT)
        if fmt != SERVE_SPEC_FORMAT:
            raise ValueError(
                f"unsupported serve-spec format {fmt!r}, expected {SERVE_SPEC_FORMAT!r}"
            )
        if "system" not in data:
            raise ValueError("serve spec is missing the required 'system' section")
        return cls(
            system=config_from_dict(data["system"]),
            dataset=DatasetSpec.from_dict(data.get("dataset", {})),
            load=LoadSpec.from_dict(data.get("load", {})),
            policy=ServePolicy.from_dict(data.get("policy", {})),
            service=ServiceModel.from_dict(data.get("service", {})),
            device=data.get("device"),
            query=(
                None
                if data.get("query") is None
                else QuerySpec.from_dict(data["query"])
            ),
        )

    def to_json(self, *, indent: Optional[int] = None) -> str:
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "ServeSpec":
        return cls.from_dict(json.loads(text))

    @property
    def fingerprint(self) -> str:
        """Stable content address of the report this spec determines."""
        canonical = json.dumps(self.to_dict(), sort_keys=True, separators=(",", ":"))
        return hashlib.sha256(canonical.encode("utf-8")).hexdigest()
