"""Declarative experiment API: specs, registries, sessions, result cache.

The composable-service layer on top of the engine::

    from repro.api import DatasetSpec, ExperimentSpec, Session
    from repro.core.config import SystemConfig

    session = Session(cache_dir=".repro-cache")
    spec = ExperimentSpec(
        system=SystemConfig("catdet", "resnet50", "resnet10a"),
        dataset=DatasetSpec("kitti", num_sequences=6, frames_per_sequence=100),
    )
    result = session.run(spec)     # cached on disk; reruns are instant

Only the registry infrastructure is imported eagerly — everything else
loads on first attribute access, so low-level modules (``core.config``,
the dataset families, the engine) can import :mod:`repro.api.registry`
to self-register without creating import cycles.
"""

from repro.api.registry import (
    DATASET_FAMILIES,
    EXECUTORS,
    SYSTEMS,
    Registry,
    SystemEntry,
    register_dataset_family,
    register_executor,
    register_system,
)

__all__ = [
    "DATASET_FAMILIES",
    "EXECUTORS",
    "SYSTEMS",
    "Registry",
    "SystemEntry",
    "register_dataset_family",
    "register_executor",
    "register_system",
    # Lazy (see __getattr__):
    "DatasetSpec",
    "EvalSpec",
    "ExecSpec",
    "ExperimentSpec",
    "ServeSpec",
    "SPEC_FORMAT",
    "SERVE_SPEC_FORMAT",
    "ResultCache",
    "experiment_key",
    "fingerprint_dataset",
    "Session",
    "build_dataset",
    "QuerySpec",
    "QueryReport",
    "QueryEvaluator",
    "evaluate_frames",
]

_LAZY = {
    "DatasetSpec": "repro.api.spec",
    "EvalSpec": "repro.api.spec",
    "ExecSpec": "repro.api.spec",
    "ExperimentSpec": "repro.api.spec",
    "ServeSpec": "repro.api.spec",
    "SPEC_FORMAT": "repro.api.spec",
    "SERVE_SPEC_FORMAT": "repro.api.spec",
    "ResultCache": "repro.api.cache",
    "experiment_key": "repro.api.cache",
    "fingerprint_dataset": "repro.api.cache",
    "Session": "repro.api.session",
    "build_dataset": "repro.api.session",
    "QuerySpec": "repro.query.spec",
    "QueryReport": "repro.query.offline",
    "QueryEvaluator": "repro.query.automaton",
    "evaluate_frames": "repro.query.offline",
}


def __getattr__(name: str):
    module_name = _LAZY.get(name)
    if module_name is None:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
    import importlib

    return getattr(importlib.import_module(module_name), name)


def __dir__():
    return sorted(set(globals()) | set(_LAZY))
