"""The :class:`Session` facade: specs in, (cached) results out.

The three-line happy path::

    from repro.api import DatasetSpec, ExperimentSpec, Session, SystemConfig

    session = Session(cache_dir="~/.cache/repro")
    spec = ExperimentSpec(SystemConfig("catdet", "resnet50", "resnet10a"))
    result = session.run(spec)          # second call: served from disk

``run`` routes every spec through the content-addressed result cache —
revisited operating points (the Figure-6 grid, tuning searches, repeated
table regenerations) load from disk bit-identical instead of recomputing.
``run_many`` additionally dedupes identical specs before scheduling, so a
grid with repeated points costs one computation per distinct fingerprint.
"""

from __future__ import annotations

import weakref
from functools import lru_cache
from pathlib import Path
from typing import Any, Callable, Dict, Iterable, List, Optional, Tuple, Union

from repro.api.cache import ResultCache, experiment_key, fingerprint_dataset
from repro.api.registry import DATASET_FAMILIES, EXECUTORS
from repro.api.spec import DatasetSpec, EvalSpec, ExecSpec, ExperimentSpec
from repro.core.config import SystemConfig
from repro.core.pipeline import run_on_dataset
from repro.datasets.types import Dataset
from repro.harness.experiment import ExperimentResult
from repro.metrics.evaluate import evaluate_dataset
from repro.metrics.kitti_eval import DIFFICULTIES, HARD, MODERATE, DifficultyFilter


def make_spec_executor(exec_spec: ExecSpec):
    """Build the executor an :class:`ExecSpec` names.

    Distributed factories declare a ``queue_dir`` keyword and receive the
    spec's; local factories keep their plain ``(workers)`` signature and
    any ``queue_dir`` left on the spec is ignored, as documented.
    """
    import inspect

    factory = EXECUTORS.get(exec_spec.executor)
    if exec_spec.queue_dir is not None:
        if "queue_dir" in inspect.signature(factory).parameters:
            return factory(exec_spec.workers, queue_dir=exec_spec.queue_dir)
    return factory(exec_spec.workers)


@lru_cache(maxsize=8)
def build_dataset(spec: DatasetSpec) -> Dataset:
    """Build (and memoize per process) the dataset a spec describes."""
    factory = DATASET_FAMILIES.get(spec.family)
    return factory(
        num_sequences=spec.num_sequences,
        frames_per_sequence=spec.frames_per_sequence,
        seed=spec.seed,
    )


class Session:
    """Runs experiment specs through a content-addressed result cache.

    Parameters
    ----------
    cache_dir:
        Directory for the on-disk result cache; ``None`` disables
        caching (every run computes).
    """

    def __init__(self, cache_dir: Optional[Union[str, Path]] = None):
        self.cache: Optional[ResultCache] = (
            ResultCache(cache_dir) if cache_dir is not None else None
        )
        # id -> (weakref, fingerprint): sweeps call run_experiment once per
        # operating point on one dataset object; hash its content once.
        self._dataset_fp_memo: Dict[int, Tuple[weakref.ref, str]] = {}
        # Compute-trace accounting (see repro.serve.trace): how many
        # serving simulations found a recorded compute phase to replay,
        # and how many admitted frames skipped the engine because of it.
        self.trace_hits = 0
        self.trace_misses = 0
        self.frames_replayed = 0

    def _dataset_fingerprint(self, dataset: Dataset) -> str:
        entry = self._dataset_fp_memo.get(id(dataset))
        if entry is not None and entry[0]() is dataset:
            return entry[1]
        fp = fingerprint_dataset(dataset)
        self._dataset_fp_memo[id(dataset)] = (weakref.ref(dataset), fp)
        return fp

    @property
    def cache_hits(self) -> int:
        # `is not None`, not truthiness: ResultCache.__len__ makes an
        # *empty* cache falsy, which would hide hits on stores (like the
        # serve report store) that don't live in the top-level layout.
        return self.cache.hits if self.cache is not None else 0

    @property
    def cache_misses(self) -> int:
        return self.cache.misses if self.cache is not None else 0

    def dataset(self, spec: DatasetSpec) -> Dataset:
        """The (memoized) dataset ``spec`` describes."""
        return build_dataset(spec)

    def run(
        self,
        spec: ExperimentSpec,
        *,
        use_cache: bool = True,
        on_progress: Optional[Callable[[int, int, str], None]] = None,
    ) -> ExperimentResult:
        """Run one spec, serving revisited fingerprints from the cache.

        A hit returns a result bit-identical to the original computation
        (same boxes, scores, labels and op accounts) without running the
        pipeline.  ``on_progress(done, total, sequence_name)`` fires per
        finished sequence on a miss (a hit never fires it).
        """
        executor = make_spec_executor(spec.exec)
        return self._run(
            spec.system,
            lambda: self.dataset(spec.dataset),
            tuple(DIFFICULTIES[name] for name in spec.eval.difficulties),
            with_delay=spec.eval.with_delay,
            key=spec.fingerprint,
            spec_dict=spec.to_dict(),
            executor=executor,
            use_cache=use_cache,
            on_progress=on_progress,
        )

    def run_many(
        self,
        specs: Iterable[ExperimentSpec],
        *,
        use_cache: bool = True,
        on_progress: Optional[Callable[[int, int, str], None]] = None,
    ) -> List[ExperimentResult]:
        """Run several specs, computing each distinct fingerprint once.

        Results come back aligned with the input order; duplicate specs
        (same fingerprint — execution plans may differ) share one result
        object.  ``on_progress(done, total, label)`` fires after each
        distinct spec completes.

        Specs whose execution plan names the ``"multihost"`` executor are
        dispatched *as one batch* to the shared work queue — the whole
        grid fans out across the worker fleet instead of blocking point
        by point — and reassemble bit-identically in input order.
        """
        specs = list(specs)
        unique: Dict[str, ExperimentSpec] = {}
        for spec in specs:
            unique.setdefault(spec.fingerprint, spec)

        results: Dict[str, ExperimentResult] = {}
        local = {
            fp: spec
            for fp, spec in unique.items()
            if spec.exec.executor != "multihost"
        }
        remote = [spec for fp, spec in unique.items() if fp not in local]
        # One monotonic (done, total) stream over the whole grid, whether a
        # spec resolves remotely, from cache, or in the local loop below.
        total = len(unique)
        done = 0

        def remote_progress(_done: int, _total: int, label: str) -> None:
            nonlocal done
            done += 1
            if on_progress is not None:
                on_progress(done, total, label)

        if remote:
            results.update(
                self._dispatch_remote(
                    remote,
                    use_cache=use_cache,
                    on_progress=None if on_progress is None else remote_progress,
                )
            )
            done = len(results)
        for fp, spec in local.items():
            results[fp] = self.run(spec, use_cache=use_cache)
            done += 1
            if on_progress is not None:
                on_progress(done, total, spec.label)
        return [results[spec.fingerprint] for spec in specs]

    def _dispatch_remote(
        self,
        specs: List[ExperimentSpec],
        *,
        use_cache: bool = True,
        on_progress: Optional[Callable[[int, int, str], None]] = None,
    ) -> Dict[str, ExperimentResult]:
        """Batch-dispatch multihost specs through the cluster coordinator.

        The session's own cache root (when set) doubles as the shared
        result store, so workers' finished payloads land where ``run``
        will find them on revisits; otherwise the queue's default
        ``<queue>/cache`` is used.
        """
        import os

        from repro.cluster.coordinator import QUEUE_DIR_ENV, dispatch_specs

        by_queue: Dict[str, List[ExperimentSpec]] = {}
        for spec in specs:
            queue_dir = spec.exec.queue_dir or os.environ.get(QUEUE_DIR_ENV)
            if not queue_dir:
                raise ValueError(
                    "multihost specs need ExecSpec(queue_dir=...) or "
                    f"the {QUEUE_DIR_ENV} environment variable"
                )
            by_queue.setdefault(queue_dir, []).append(spec)
        out: Dict[str, ExperimentResult] = {}
        cache_dir = self.cache.root if self.cache is not None else "auto"
        for queue_dir, batch in sorted(by_queue.items()):
            for spec, result in zip(
                batch,
                dispatch_specs(
                    queue_dir,
                    batch,
                    cache_dir=cache_dir,
                    use_cache=use_cache,
                    on_progress=on_progress,
                ),
            ):
                out[spec.fingerprint] = result
        return out

    def serve(
        self,
        spec: "Any",
        *,
        use_cache: bool = True,
        metrics: "Any" = None,
        sinks: "Any" = None,
    ) -> "Any":
        """Serve a :class:`~repro.api.spec.ServeSpec`, cached by fingerprint.

        Serving is a deterministic discrete-event simulation, so the
        throughput/latency :class:`~repro.serve.server.ServeReport` is a
        pure function of the spec — revisited serving configurations load
        from the cache's ``serve/`` store instead of re-simulating.
        Cached reports carry the statistics only; per-frame detections
        (`report.frame_results`) are available on fresh runs.

        ``metrics`` (a :class:`~repro.obs.registry.MetricsRegistry`) and
        ``sinks`` (:class:`~repro.obs.sinks.Sink`\\ s) are forwarded to
        the live server; they never affect the spec's fingerprint, and a
        cache hit — having simulated nothing — emits nothing.
        """
        from repro.serve.loadgen import generate_load
        from repro.serve.server import DetectionServer, ServeReportStore

        # Same root as the experiment cache: `repro cache stats/ls/prune`
        # then manage serving reports too (content addresses don't collide).
        store = (
            ServeReportStore(self.cache.root) if self.cache is not None else None
        )
        if store is not None and use_cache:
            cached = store.load(spec.fingerprint)
            if cached is not None:
                self.cache.hits += 1
                return cached
            self.cache.misses += 1
        dataset = self.dataset(spec.dataset)
        requests = generate_load(spec.load, dataset)
        trace_store, trace_key, trace = self._load_trace(spec, use_cache)
        server = DetectionServer(
            spec.system,
            policy=spec.policy,
            service=spec.service,
            metrics=metrics,
            sinks=sinks,
            query=spec.query,
            trace=trace,
            record_trace=trace_store is not None,
        )
        report = server.run(requests)
        self._finish_trace(trace_store, trace_key, trace, server)
        if store is not None and use_cache:
            store.store(spec.fingerprint, report, spec=spec.to_dict())
        return report

    def _load_trace(self, spec: "Any", use_cache: bool):
        """The stored :class:`~repro.serve.trace.ComputeTrace` for
        ``spec``'s (system, dataset, load), plus its store and key.

        Returns ``(None, None, None)`` when caching is off — the server
        then runs the plain live path with no recording.
        """
        if self.cache is None or not use_cache:
            return None, None, None
        from repro.serve.trace import TraceStore, trace_fingerprint

        trace_store = TraceStore(self.cache.root)
        trace_key = trace_fingerprint(spec)
        trace = trace_store.load(trace_key)
        if trace is not None:
            self.trace_hits += 1
        else:
            self.trace_misses += 1
        return trace_store, trace_key, trace

    def _finish_trace(self, trace_store, trace_key, trace, server) -> None:
        """Account a finished run's replays and persist its out-trace.

        Stored only when strictly longer than what the store held — a
        shedding policy's truncated trace must never clobber the full
        no-shed recording that every other grid point replays from.
        """
        if trace_store is None:
            return
        self.frames_replayed += server.frames_replayed
        recorded = server.recorded_trace
        stored_frames = trace.total_frames if trace is not None else 0
        if recorded is not None and recorded.total_frames > stored_frames:
            trace_store.store(trace_key, recorded)

    def serve_fleet(
        self,
        spec: "Any",
        *,
        use_cache: bool = True,
        metrics: "Any" = None,
        sinks: "Any" = None,
    ) -> "Any":
        """Serve a :class:`~repro.fleet.spec.FleetSpec`, cached by fingerprint.

        The fleet simulation (replicated servers, stream routing, an
        optional autoscaler) stays a deterministic discrete-event run,
        so its :class:`~repro.fleet.server.FleetReport` is a pure
        function of the spec and caches exactly like a serve report —
        in the same store root, which is what makes
        :meth:`tune_fleet`'s sweeps nearly free on revisits.

        ``metrics`` / ``sinks`` are forwarded to the live fleet server
        (the fleet-level registry and the ``fleet.scale`` /
        ``fleet.summary`` record streams); they never affect the
        fingerprint, and a cache hit emits nothing.
        """
        from repro.fleet.server import FleetReportStore, FleetServer
        from repro.serve.loadgen import generate_load

        store = (
            FleetReportStore(self.cache.root) if self.cache is not None else None
        )
        if store is not None and use_cache:
            cached = store.load(spec.fingerprint)
            if cached is not None:
                self.cache.hits += 1
                return cached
            self.cache.misses += 1
        dataset = self.dataset(spec.dataset)
        requests = generate_load(spec.load, dataset)
        trace_store, trace_key, trace = self._load_trace(spec, use_cache)
        server = FleetServer(
            spec,
            metrics=metrics,
            sinks=sinks,
            trace=trace,
            record_trace=trace_store is not None,
        )
        report = server.run(requests)
        self._finish_trace(trace_store, trace_key, trace, server)
        if store is not None and use_cache:
            store.store(spec.fingerprint, report, spec=spec.to_dict())
        return report

    def tune_fleet(
        self,
        spec: "Any",
        *,
        slo_p99_ms: float,
        replica_counts=None,
        device_mixes=None,
        batch_sizes=None,
        use_cache: bool = True,
        on_progress: Optional[Callable[[int, int, str], None]] = None,
        workers: Optional[int] = None,
    ) -> "Any":
        """Sweep static fleet shapes for ``spec``, pick the cheapest feasible.

        Thin wrapper over :func:`repro.fleet.tune.tune_fleet`: every
        swept point (replica count x device mix x batch size) routes
        through :meth:`serve_fleet`, so a repeated tune is served
        entirely from the report cache.  Feasibility requires meeting
        the p99 target with zero shed frames and zero dead streams; the
        objective is modeled cost-per-frame (allocated replica-time at
        each device's hourly rate).  Returns a
        :class:`repro.fleet.tune.FleetTuneResult`.
        """
        from repro.fleet.tune import DEFAULT_REPLICA_COUNTS, tune_fleet

        return tune_fleet(
            self,
            spec,
            slo_p99_ms=slo_p99_ms,
            replica_counts=(
                DEFAULT_REPLICA_COUNTS if replica_counts is None else replica_counts
            ),
            device_mixes=device_mixes,
            batch_sizes=batch_sizes,
            use_cache=use_cache,
            on_progress=on_progress,
            workers=workers,
        )

    def query(
        self,
        spec: ExperimentSpec,
        query: "Any",
        *,
        use_cache: bool = True,
    ) -> "Any":
        """Evaluate a scenario query over an experiment's cached results.

        Runs ``spec`` through :meth:`run` (revisits load from the cache),
        then replays each sequence's frames through the offline reference
        evaluator — one stream per sequence, named after it.  Returns a
        :class:`~repro.query.offline.QueryReport`; the window table it
        formats is byte-identical to the one a served run of the same
        frames produces.
        """
        from repro.query.offline import QueryReport, evaluate_frames
        from repro.query.spec import QuerySpec

        if not isinstance(query, QuerySpec):
            raise TypeError(f"query must be a QuerySpec, got {type(query).__name__}")
        result = self.run(spec, use_cache=use_cache)
        by_stream = {
            name: evaluate_frames(query, seq.frames, stream=name)
            for name, seq in result.run.sequences.items()
        }
        return QueryReport.build(query, by_stream)

    def tune_serve(
        self,
        spec: "Any",
        *,
        slo_p99_ms: float,
        slo_wait_p95_ms: Optional[float] = None,
        batch_sizes=None,
        max_waits_ms=None,
        use_cache: bool = True,
        on_progress: Optional[Callable[[int, int, str], None]] = None,
        workers: Optional[int] = None,
    ) -> "Any":
        """Sweep batching policies for ``spec`` and pick the SLO-optimal one.

        Thin wrapper over :func:`repro.serve.tune.tune_policy`: every
        grid point routes through :meth:`serve`, so a repeated tune of
        the same deployment is served entirely from the report cache.
        ``slo_wait_p95_ms`` additionally bounds the fleet's p95 *queue
        wait* — a policy can meet end-to-end p99 while still parking
        frames in the queue (large batches, long coalescing windows);
        the wait bound rules those out.  Returns a
        :class:`repro.serve.tune.TuneResult`.
        """
        from repro.serve.tune import (
            DEFAULT_BATCH_SIZES,
            DEFAULT_MAX_WAITS_MS,
            tune_policy,
        )

        return tune_policy(
            self,
            spec,
            slo_p99_ms=slo_p99_ms,
            slo_wait_p95_ms=slo_wait_p95_ms,
            batch_sizes=DEFAULT_BATCH_SIZES if batch_sizes is None else batch_sizes,
            max_waits_ms=DEFAULT_MAX_WAITS_MS if max_waits_ms is None else max_waits_ms,
            use_cache=use_cache,
            on_progress=on_progress,
            workers=workers,
        )

    def run_experiment(
        self,
        config: SystemConfig,
        dataset: Dataset,
        difficulties: Tuple[DifficultyFilter, ...] = (MODERATE, HARD),
        *,
        with_delay: bool = True,
        workers: Optional[int] = 1,
        use_cache: bool = True,
    ) -> ExperimentResult:
        """The classic ``(config, concrete dataset)`` entry point, cached.

        The cache key hashes the dataset *content* (ground-truth tracks),
        so ad-hoc datasets cache correctly too.  Custom difficulty
        filters that aren't the standard named levels bypass the cache —
        their names can't be trusted as content addresses.
        """
        key = None
        if self.cache is not None and use_cache and all(
            DIFFICULTIES.get(d.name) == d for d in difficulties
        ):
            eval_spec = EvalSpec(
                difficulties=tuple(d.name for d in difficulties),
                with_delay=with_delay,
            )
            key = experiment_key(config, self._dataset_fingerprint(dataset), eval_spec)
        return self._run(
            config,
            lambda: dataset,
            tuple(difficulties),
            with_delay=with_delay,
            key=key,
            spec_dict=None,
            executor=EXECUTORS.get("auto")(workers),
            use_cache=use_cache,
        )

    def _run(
        self,
        config: SystemConfig,
        dataset_fn: Callable[[], Dataset],
        filters: Tuple[DifficultyFilter, ...],
        *,
        with_delay: bool,
        key: Optional[str],
        spec_dict,
        executor,
        use_cache: bool,
        on_progress: Optional[Callable[[int, int, str], None]] = None,
    ) -> ExperimentResult:
        if self.cache is not None and use_cache and key is not None:
            cached = self.cache.load(key)
            if cached is not None:
                return cached
        # A miss pays for dataset construction only now — warm sessions in
        # fresh processes skip world generation entirely.
        dataset = dataset_fn()
        run = run_on_dataset(config, dataset, executor=executor, on_progress=on_progress)
        evaluations = {
            diff.name: evaluate_dataset(
                dataset, run.detections_by_sequence, diff, with_delay=with_delay
            )
            for diff in filters
        }
        result = ExperimentResult(config=config, run=run, evaluations=evaluations)
        if self.cache is not None and use_cache and key is not None:
            self.cache.store(key, result, spec=spec_dict)
        return result
