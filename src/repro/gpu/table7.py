"""Shared Table-7 computation: drive the cost model with real regions.

Both the CLI (``python -m repro table7``) and the benchmark
(``benchmarks/test_table7_gpu_timing.py``) regenerate the paper's
GPU-timing comparison the same way — re-running CaTDet's tracker +
proposal loop to capture each frame's *actual* expanded regions, then
pricing them (greedy merging included) under the calibrated linear
model.  This module is the single implementation, so the two surfaces
can never drift.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence as Seq

from repro.core.results import FrameTiming
from repro.cost.model import CostModel
from repro.datasets.types import Sequence


@dataclass(frozen=True)
class Table7Timings:
    """The two rows of Table 7 on one modeled device."""

    single: FrameTiming
    catdet_gpu_seconds: float
    catdet_total_seconds: float


def compute_table7_timings(
    sequences: Seq[Sequence],
    cost: CostModel,
    *,
    proposal_model: str = "resnet10a",
    refinement_model: str = "resnet50",
) -> Table7Timings:
    """Single-model vs CaTDet per-frame timing over ``sequences``.

    The single-model row is one full-frame launch of the refinement
    network at the first sequence's resolution; the CaTDet row averages
    per-frame estimates over every frame of every given sequence, using
    the regions the system's own tracker + proposal loop produces (with
    the system's RoI margin).
    """
    from repro.boxes.mask import RegionMask
    from repro.core.systems import CaTDetSystem
    from repro.detections import Detections
    from repro.simdet.zoo import get_model
    from repro.tracker.catdet_tracker import CaTDetTracker

    if not sequences:
        raise ValueError("at least one sequence is required")
    first = sequences[0]
    single_macs = (
        get_model(refinement_model)
        .rcnn_ops(first.width, first.height)
        .full_frame(300)
        .total
    )
    single = cost.single_model_timing(single_macs)

    system = CaTDetSystem(proposal_model, refinement_model, seed=0)
    gpu_seconds = []
    total_seconds = []
    for sequence in sequences:
        proposal_macs = system._proposal_macs(sequence)
        head_per_proposal = get_model(refinement_model).rcnn_ops(
            sequence.width, sequence.height
        ).head_macs_per_proposal
        tracker = CaTDetTracker(
            system.tracker_config, image_size=sequence.image_size
        )
        for frame in range(sequence.num_frames):
            tracked = tracker.predict()
            proposed = system._regions_for_frame(sequence, frame)
            regions = Detections.concatenate([tracked, proposed])
            mask = RegionMask(
                regions.boxes, sequence.width, sequence.height, system.margin
            )
            detections = system.refinement_detector.detect_regions(
                sequence, frame, mask
            )
            tracker.update(detections)
            timing = cost.catdet_timing(
                proposal_macs,
                mask.expanded_boxes,
                head_per_proposal * len(regions),
            )
            gpu_seconds.append(timing.gpu_seconds)
            total_seconds.append(timing.total_seconds)
    return Table7Timings(
        single=single,
        catdet_gpu_seconds=sum(gpu_seconds) / len(gpu_seconds),
        catdet_total_seconds=sum(total_seconds) / len(total_seconds),
    )
