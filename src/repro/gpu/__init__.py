"""GPU execution-time model (paper Appendix I).

The paper approximates GPU time of a CNN workload as ``T = alpha * W + b``
and derives a greedy box-merging heuristic from it.  The calibrated
constants and all computation now live in the unified cost layer
(:mod:`repro.cost`, profile ``"titanx"``); this package keeps the
historical API as thin deprecation shims and regenerates Table 7
(``python -m repro table7``).
"""

from repro.gpu.timing import (
    GpuTimingModel,
    PipelineTiming,
    estimate_catdet_timing,
    estimate_single_model_timing,
)

__all__ = [
    "GpuTimingModel",
    "PipelineTiming",
    "estimate_catdet_timing",
    "estimate_single_model_timing",
]
