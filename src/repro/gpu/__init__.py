"""GPU execution-time model (paper Appendix I).

The paper approximates GPU time of a CNN workload as ``T = alpha * W + b``
and derives a greedy box-merging heuristic from it.  This package applies
that model to the systems' per-frame op accounts to regenerate Table 7.
"""

from repro.gpu.timing import (
    GpuTimingModel,
    PipelineTiming,
    estimate_catdet_timing,
    estimate_single_model_timing,
)

__all__ = [
    "GpuTimingModel",
    "PipelineTiming",
    "estimate_catdet_timing",
    "estimate_single_model_timing",
]
