"""Linear GPU-time model and pipeline timing estimates (Appendix I).

The paper measures on a Maxwell Titan X: a ResNet-50 Faster R-CNN frame
takes 0.159 s of GPU kernel time (0.193 s wall), and the Res10a+Res50
CaTDet takes 0.042 s GPU (0.094 s wall).  It models GPU time of a workload
``W`` as ``T = alpha * W + b``, with ``b`` roughly the execution time of a
400x400 crop, and merges regions greedily under that model before launch.

This module reproduces those numbers structurally: ``alpha`` is calibrated
from the single-model measurement, per-region launches pay ``b``, and the
CPU side (data loading, NMS, tracker, framework wrapping) is a per-frame
constant plus a per-region term.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence as Seq

import numpy as np

from repro.boxes.merge import MergeCostModel, greedy_merge_boxes
from repro.boxes.box import area

GIGA = 1e9

#: Titan X effective throughput implied by the paper's single-model numbers
#: (254.3 Gops in 0.159 s): ~1.6 Tops/s.
DEFAULT_ALPHA = 0.159 / (254.3 * GIGA)


@dataclass(frozen=True)
class GpuTimingModel:
    """``T = alpha * W + b`` with per-launch overhead.

    Parameters
    ----------
    alpha:
        Seconds per multiply-accumulate (throughput reciprocal).
    base_crop_pixels:
        The fixed overhead ``b`` expressed as the equivalent workload of a
        square crop with this many pixels (400*400 per the paper).
    trunk_macs_per_pixel:
        Backbone cost density used to convert the base crop to ops.
    cpu_frame_overhead:
        Per-frame CPU seconds (data loading, framework wrapping).
    cpu_region_overhead:
        Per-launched-region CPU seconds (tensor slicing, NMS shares).
    """

    alpha: float = DEFAULT_ALPHA
    base_crop_pixels: float = 400.0 * 400.0
    trunk_macs_per_pixel: float = 66_000.0  # ResNet-50 C4 trunk on KITTI
    cpu_frame_overhead: float = 0.034
    cpu_region_overhead: float = 0.001

    def __post_init__(self) -> None:
        if self.alpha <= 0:
            raise ValueError(f"alpha must be positive, got {self.alpha}")
        if self.base_crop_pixels < 0 or self.trunk_macs_per_pixel < 0:
            raise ValueError("workload parameters must be >= 0")
        if self.cpu_frame_overhead < 0 or self.cpu_region_overhead < 0:
            raise ValueError("CPU overheads must be >= 0")

    @property
    def launch_overhead_seconds(self) -> float:
        """The ``b`` term in seconds."""
        return self.alpha * self.base_crop_pixels * self.trunk_macs_per_pixel

    def kernel_time(self, macs: float) -> float:
        """GPU time for one launch of ``macs`` multiply-accumulates."""
        if macs < 0:
            raise ValueError(f"macs must be >= 0, got {macs}")
        return self.alpha * macs + self.launch_overhead_seconds

    def merge_cost_model(self) -> MergeCostModel:
        """The equivalent area-based model for greedy box merging."""
        return MergeCostModel(
            alpha=self.alpha * self.trunk_macs_per_pixel,
            base_area=self.base_crop_pixels,
        )


@dataclass(frozen=True)
class PipelineTiming:
    """Per-frame timing estimate, split the way Table 7 reports it."""

    gpu_seconds: float
    cpu_seconds: float
    num_launches: int

    @property
    def total_seconds(self) -> float:
        """Wall-clock per frame; CPU partially hidden behind GPU is ignored,
        matching the paper's unpipelined measurement."""
        return self.gpu_seconds + self.cpu_seconds


def estimate_single_model_timing(
    frame_macs: float,
    model: GpuTimingModel = GpuTimingModel(),
) -> PipelineTiming:
    """Timing of a single-model detector: one full-frame launch."""
    return PipelineTiming(
        gpu_seconds=model.kernel_time(frame_macs),
        cpu_seconds=model.cpu_frame_overhead,
        num_launches=1,
    )


def estimate_catdet_timing(
    proposal_macs: float,
    region_boxes: np.ndarray,
    refinement_head_macs: float,
    model: GpuTimingModel = GpuTimingModel(),
    *,
    merge: bool = True,
) -> PipelineTiming:
    """Timing of one CaTDet frame.

    Parameters
    ----------
    proposal_macs:
        Full-frame cost of the proposal network.
    region_boxes : (N, 4) array
        Regions of interest fed to the refinement network (tracker +
        proposal sources, margin already applied).
    refinement_head_macs:
        Total RoI-head cost for the frame's proposals.
    model:
        The timing model.
    merge:
        Apply the paper's greedy merging before timing regions.  Merging
        *increases* the computed workload (merged rectangles cover more
        area) but reduces launch overhead — the Appendix I trade-off.
    """
    region_boxes = np.asarray(region_boxes, dtype=np.float64).reshape(-1, 4)
    if merge and region_boxes.shape[0] > 1:
        region_boxes, _ = greedy_merge_boxes(region_boxes, model.merge_cost_model())

    gpu = model.kernel_time(proposal_macs)  # proposal network launch
    for region_area in area(region_boxes):
        gpu += model.kernel_time(region_area * model.trunk_macs_per_pixel)
    if refinement_head_macs > 0:
        gpu += model.alpha * refinement_head_macs  # batched RoI heads

    launches = 1 + region_boxes.shape[0]
    cpu = model.cpu_frame_overhead + model.cpu_region_overhead * launches
    return PipelineTiming(gpu_seconds=gpu, cpu_seconds=cpu, num_launches=launches)
