"""Linear GPU-time model and pipeline timing estimates (Appendix I).

.. deprecated::
    This module is a thin compatibility shim over the unified cost layer
    (:mod:`repro.cost`).  The calibrated Titan X constants now live in
    :data:`repro.cost.TITANX`; :class:`GpuTimingModel` converts itself to
    a :class:`~repro.cost.DeviceProfile` and every estimator delegates to
    :class:`~repro.cost.CostModel` — outputs are bit-for-bit identical to
    the historical implementation.  New code should use the cost layer
    directly (``CostModel.for_device("titanx")``).

The paper measures on a Maxwell Titan X: a ResNet-50 Faster R-CNN frame
takes 0.159 s of GPU kernel time (0.193 s wall), and the Res10a+Res50
CaTDet takes 0.042 s GPU (0.094 s wall).  It models GPU time of a workload
``W`` as ``T = alpha * W + b``, with ``b`` roughly the execution time of a
400x400 crop, and merges regions greedily under that model before launch.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.boxes.merge import MergeCostModel
from repro.core.results import FrameTiming
from repro.cost import GIGA, TITANX, CostModel, DeviceProfile

#: Titan X effective throughput implied by the paper's single-model numbers
#: (254.3 Gops in 0.159 s): ~1.6 Tops/s.  Defined in :mod:`repro.cost`.
DEFAULT_ALPHA = TITANX.alpha

#: Backwards-compatible name for the per-frame timing record, which now
#: lives beside the other result containers as
#: :class:`repro.core.results.FrameTiming`.
PipelineTiming = FrameTiming


@dataclass(frozen=True)
class GpuTimingModel:
    """``T = alpha * W + b`` with per-launch overhead.

    .. deprecated:: prefer :class:`repro.cost.DeviceProfile` — this class
       keeps the historical field names and delegates all computation to
       the cost layer.

    Parameters
    ----------
    alpha:
        Seconds per multiply-accumulate (throughput reciprocal).
    base_crop_pixels:
        The fixed overhead ``b`` expressed as the equivalent workload of a
        square crop with this many pixels (400*400 per the paper).
    trunk_macs_per_pixel:
        Backbone cost density used to convert the base crop to ops.
    cpu_frame_overhead:
        Per-frame CPU seconds (data loading, framework wrapping).
    cpu_region_overhead:
        Per-launched-region CPU seconds (tensor slicing, NMS shares).
    """

    alpha: float = DEFAULT_ALPHA
    base_crop_pixels: float = TITANX.base_crop_pixels
    trunk_macs_per_pixel: float = TITANX.trunk_macs_per_pixel
    cpu_frame_overhead: float = TITANX.cpu_frame_overhead
    cpu_region_overhead: float = TITANX.cpu_invocation_overhead

    def __post_init__(self) -> None:
        # Validation lives in DeviceProfile; constructing one here keeps
        # the historical error messages and fail-fast behavior.
        self.profile()

    def profile(self) -> DeviceProfile:
        """This model's constants as a cost-layer :class:`DeviceProfile`."""
        return DeviceProfile(
            name="gpu-timing-model",
            alpha=self.alpha,
            base_crop_pixels=self.base_crop_pixels,
            trunk_macs_per_pixel=self.trunk_macs_per_pixel,
            cpu_frame_overhead=self.cpu_frame_overhead,
            cpu_invocation_overhead=self.cpu_region_overhead,
        )

    def cost_model(self) -> CostModel:
        """The :class:`~repro.cost.CostModel` this shim delegates to."""
        return CostModel(self.profile())

    @property
    def launch_overhead_seconds(self) -> float:
        """The ``b`` term in seconds."""
        return self.profile().launch_overhead_seconds

    def kernel_time(self, macs: float) -> float:
        """GPU time for one launch of ``macs`` multiply-accumulates."""
        return self.cost_model().kernel_seconds(macs)

    def merge_cost_model(self) -> MergeCostModel:
        """The equivalent area-based model for greedy box merging."""
        return self.cost_model().merge_cost_model()


def estimate_single_model_timing(
    frame_macs: float,
    model: GpuTimingModel = GpuTimingModel(),
) -> FrameTiming:
    """Timing of a single-model detector: one full-frame launch.

    .. deprecated:: shim over :meth:`repro.cost.CostModel.single_model_timing`.
    """
    return model.cost_model().single_model_timing(frame_macs)


def estimate_catdet_timing(
    proposal_macs: float,
    region_boxes: np.ndarray,
    refinement_head_macs: float,
    model: GpuTimingModel = GpuTimingModel(),
    *,
    merge: bool = True,
) -> FrameTiming:
    """Timing of one CaTDet frame.

    .. deprecated:: shim over :meth:`repro.cost.CostModel.catdet_timing`
       (see there for parameter semantics).
    """
    return model.cost_model().catdet_timing(
        proposal_macs, region_boxes, refinement_head_macs, merge=merge
    )
