"""The paper's detection systems (Figure 1).

* :class:`SingleModelSystem` — one Faster R-CNN (or RetinaNet) on every frame.
* :class:`CascadedSystem` — cheap proposal network scans the frame, expensive
  refinement network calibrates only the proposed regions.
* :class:`CaTDetSystem` — the cascade plus a tracker that feeds historical
  objects' predicted locations into the refinement network.
"""

from repro.core.config import SystemConfig, build_system
from repro.core.results import (
    FrameResult,
    FrameResultBuffer,
    OpsAccount,
    SequenceResult,
    SystemRunResult,
)
from repro.core.keyframe import KeyFrameSystem
from repro.core.systems import (
    CascadedSystem,
    CaTDetSystem,
    DetectionSystem,
    SingleModelSystem,
)
from repro.core.pipeline import run_on_dataset

__all__ = [
    "SystemConfig",
    "build_system",
    "FrameResult",
    "FrameResultBuffer",
    "OpsAccount",
    "SequenceResult",
    "SystemRunResult",
    "CascadedSystem",
    "CaTDetSystem",
    "DetectionSystem",
    "KeyFrameSystem",
    "SingleModelSystem",
    "run_on_dataset",
]
