"""Key-frame detection baseline: detect every k-th frame, track in between.

The related work the paper compares against (e.g. Deep Feature Flow) saves
compute by running the expensive detector only on key frames and
propagating results across the gap.  This baseline makes that strategy
comparable inside our framework: a full single-model pass every ``stride``
frames, with the CaTDet tracker coasting detections through the skipped
frames.

It spends *zero* DNN ops on non-key frames — cheaper than CaTDet — but
pays for it in delay (an object entering right after a key frame waits
``stride-1`` frames before it can possibly be found) and in accuracy on
fast-moving objects (coasted boxes drift).
"""

from __future__ import annotations

from typing import Union

from repro.core.results import FrameResult, OpsAccount, SequenceResult
from repro.core.systems import DetectionSystem, _resolve, _scaled_dims
from repro.datasets.types import Sequence
from repro.detections import Detections
from repro.simdet.detector import SimulatedDetector
from repro.simdet.zoo import ZooEntry
from repro.tracker.catdet_tracker import CaTDetTracker, TrackerConfig


class KeyFrameSystem(DetectionSystem):
    """Detect on every ``stride``-th frame; coast the tracker in between.

    Parameters
    ----------
    model:
        Zoo name or entry of the detector used on key frames.
    stride:
        Key-frame interval (1 degenerates to the single-model system).
    seed:
        Detector-simulation seed.
    tracker_config:
        Tracker hyper-parameters for the in-between propagation.
    num_classes / input_scale:
        As for the other systems.
    """

    def __init__(
        self,
        model: Union[str, ZooEntry],
        *,
        stride: int = 5,
        seed: int = 0,
        tracker_config: TrackerConfig = TrackerConfig(),
        num_classes: int = 2,
        input_scale: float = 1.0,
    ):
        if stride < 1:
            raise ValueError(f"stride must be >= 1, got {stride}")
        self.entry = _resolve(model)
        self.stride = int(stride)
        self.detector = SimulatedDetector(self.entry.profile, seed, input_scale=input_scale)
        self.tracker_config = tracker_config
        self.num_classes = int(num_classes)
        self.input_scale = float(input_scale)
        self.name = f"{self.entry.profile.name}-keyframe{stride}"

    def _frame_macs(self, sequence: Sequence) -> float:
        w, h = _scaled_dims(sequence, self.input_scale)
        if self.entry.detector_type == "retinanet":
            return self.entry.retinanet_ops(w, h, self.num_classes).full_frame().total
        return self.entry.rcnn_ops(w, h, self.num_classes).full_frame(300).total

    def process_sequence(self, sequence: Sequence) -> SequenceResult:
        macs = self._frame_macs(sequence)
        tracker = CaTDetTracker(self.tracker_config, image_size=sequence.image_size)
        result = SequenceResult(sequence_name=sequence.name)
        for frame in range(sequence.num_frames):
            predictions = tracker.predict()
            if frame % self.stride == 0:
                detections = self.detector.detect_full_frame(sequence, frame)
                tracker.update(detections)
                frame_ops = OpsAccount(refinement=macs)
            else:
                # Skipped frame: emit the tracker's coasted predictions.
                detections = predictions
                tracker.update(detections)
                frame_ops = OpsAccount()
            result.frames.append(
                FrameResult(
                    frame=frame,
                    detections=detections,
                    ops=frame_ops,
                    num_regions=len(predictions),
                    coverage_fraction=1.0 if frame % self.stride == 0 else 0.0,
                )
            )
        return result
