"""Key-frame detection baseline: detect every k-th frame, track in between.

The related work the paper compares against (e.g. Deep Feature Flow) saves
compute by running the expensive detector only on key frames and
propagating results across the gap.  This baseline makes that strategy
comparable inside our framework: a full single-model pass every ``stride``
frames, with the CaTDet tracker coasting detections through the skipped
frames.

It spends *zero* DNN ops on non-key frames — cheaper than CaTDet — but
pays for it in delay (an object entering right after a key frame waits
``stride-1`` frames before it can possibly be found) and in accuracy on
fast-moving objects (coasted boxes drift).
"""

from __future__ import annotations

from typing import Optional, Union

import repro.engine.stages as engine_stages
from repro.core.results import OpsAccount
from repro.core.systems import DetectionSystem, _resolve
from repro.datasets.types import Sequence
from repro.simdet.detector import SimulatedDetector
from repro.simdet.zoo import ZooEntry
from repro.tracker.catdet_tracker import CaTDetTracker, TrackerConfig


class _KeyFrameStage:
    """Single stage implementing the detect-then-coast loop.

    Implements the :class:`repro.engine.stages.Stage` interface by duck
    typing (the pipeline never isinstance-checks).  It deliberately does
    *not* subclass ``Stage``: this module can execute while
    ``repro.engine.stages`` is still mid-import (core and engine import
    each other), and the module-object import above is only cycle-safe
    because every ``engine_stages.<attr>`` access happens at call time —
    a base class in the ``class`` statement would resolve the attribute
    at import time and break that.
    """

    def __init__(
        self,
        detector: SimulatedDetector,
        macs: "engine_stages.MacsModel",
        stride: int,
        tracker_config: TrackerConfig,
    ):
        self.detector = detector
        self.macs = macs
        self.stride = stride
        self.tracker_config = tracker_config
        self.tracker: Optional[CaTDetTracker] = None

    def begin_sequence(self, sequence: Sequence) -> None:
        # Name-reuse protection for the detector's per-sequence caches is
        # handled by the detector's own ownership guard, so concurrent
        # streams sharing this detector keep their caches warm.
        self.tracker = CaTDetTracker(self.tracker_config, image_size=sequence.image_size)

    def process(self, ctx: "engine_stages.FrameContext") -> None:
        if self.tracker is None:
            self.begin_sequence(ctx.sequence)
        predictions = self.tracker.predict()
        if ctx.frame % self.stride == 0:
            ctx.detections = self.detector.detect_full_frame(ctx.sequence, ctx.frame)
            ctx.ops = OpsAccount(refinement=self.macs.full_frame(ctx.sequence))
            ctx.coverage_fraction = 1.0
        else:
            # Skipped frame: emit the tracker's coasted predictions.
            ctx.detections = predictions
            ctx.ops = OpsAccount()
            ctx.coverage_fraction = 0.0
        ctx.num_regions = len(predictions)

    def end_frame(self, ctx: "engine_stages.FrameContext") -> None:
        self.tracker.update(ctx.detections)

    def reset(self) -> None:
        self.tracker = None


class KeyFrameSystem(DetectionSystem):
    """Detect on every ``stride``-th frame; coast the tracker in between.

    Parameters
    ----------
    model:
        Zoo name or entry of the detector used on key frames.
    stride:
        Key-frame interval (1 degenerates to the single-model system).
    seed:
        Detector-simulation seed.
    tracker_config:
        Tracker hyper-parameters for the in-between propagation.
    num_classes / input_scale:
        As for the other systems.
    """

    def __init__(
        self,
        model: Union[str, ZooEntry],
        *,
        stride: int = 5,
        seed: int = 0,
        tracker_config: TrackerConfig = TrackerConfig(),
        num_classes: int = 2,
        input_scale: float = 1.0,
        device: Optional[str] = None,
    ):
        if stride < 1:
            raise ValueError(f"stride must be >= 1, got {stride}")
        self.entry = _resolve(model)
        self.device = device
        self.stride = int(stride)
        self.detector = SimulatedDetector(self.entry.profile, seed, input_scale=input_scale)
        self.tracker_config = tracker_config
        self.num_classes = int(num_classes)
        self.input_scale = float(input_scale)
        self.name = f"{self.entry.profile.name}-keyframe{stride}"
        self._macs = engine_stages.MacsModel(
            self.entry, num_classes=self.num_classes, input_scale=self.input_scale
        )

    def _frame_macs(self, sequence: Sequence) -> float:
        return self._macs.full_frame(sequence)

    def build_pipeline(self) -> "engine_stages.StagePipeline":
        return engine_stages.StagePipeline(
            self._with_timing(
                [
                    _KeyFrameStage(
                        self.detector, self._macs, self.stride, self.tracker_config
                    )
                ]
            )
        )

    def _detectors(self) -> tuple:
        return (self.detector,)
