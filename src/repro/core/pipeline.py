"""Dataset-level pipeline: run a system over every sequence."""

from __future__ import annotations

from typing import Optional, Union

import repro.engine.scheduler as engine_scheduler
from repro.core.config import SystemConfig, build_system
from repro.core.results import SystemRunResult
from repro.core.systems import DetectionSystem
from repro.datasets.types import Dataset


def run_on_dataset(
    system: Union[DetectionSystem, SystemConfig],
    dataset: Dataset,
    *,
    max_sequences: Optional[int] = None,
    workers: Optional[int] = 1,
    executor: Optional["engine_scheduler.SequenceExecutor"] = None,
    on_progress: Optional["engine_scheduler.ProgressFn"] = None,
) -> SystemRunResult:
    """Process every sequence of ``dataset`` with ``system``.

    Parameters
    ----------
    system:
        A runnable system or a :class:`SystemConfig` to build one from.
    dataset:
        The sequences to process.
    max_sequences:
        Optional cap for quick runs.
    workers:
        Sequence-level parallelism: ``1`` (default) runs serially in this
        process, ``N >= 2`` fans sequences out to ``N`` worker processes,
        ``0`` uses one worker per available CPU.  Results are identical to
        the serial run regardless of the worker count.
    executor:
        Explicit :class:`~repro.engine.scheduler.SerialExecutor` /
        :class:`~repro.engine.scheduler.ParallelExecutor` /
        :class:`~repro.cluster.coordinator.MultiHostExecutor`; overrides
        ``workers``.
    on_progress:
        Optional ``callback(done, total, sequence_name)`` fired as each
        sequence finishes (completion order under parallel executors).

    Returns
    -------
    :class:`SystemRunResult` holding per-frame detections + op accounts,
    ready for :func:`repro.metrics.evaluate_dataset`.
    """
    if executor is None:
        executor = engine_scheduler.make_executor(workers)
    if isinstance(system, SystemConfig) and isinstance(
        executor, engine_scheduler.SerialExecutor
    ):
        # Build once here rather than letting the serial executor build a
        # second throwaway instance after the name lookup below.
        system = build_system(system)
    name = system.name if isinstance(system, DetectionSystem) else build_system(system).name
    result = SystemRunResult(system_name=name)
    sequences = dataset.sequences
    if max_sequences is not None:
        sequences = sequences[:max_sequences]
    if on_progress is None:
        # Keep the bare call so executors predating the progress protocol
        # (third-party map_sequences implementations) keep working.
        seq_results = executor.map_sequences(system, sequences)
    else:
        seq_results = executor.map_sequences(system, sequences, on_progress=on_progress)
    for sequence, seq_result in zip(sequences, seq_results):
        result.sequences[sequence.name] = seq_result
    return result
