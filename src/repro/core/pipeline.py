"""Dataset-level pipeline: run a system over every sequence."""

from __future__ import annotations

from typing import Optional, Union

from repro.core.config import SystemConfig, build_system
from repro.core.results import SystemRunResult
from repro.core.systems import DetectionSystem
from repro.datasets.types import Dataset


def run_on_dataset(
    system: Union[DetectionSystem, SystemConfig],
    dataset: Dataset,
    *,
    max_sequences: Optional[int] = None,
) -> SystemRunResult:
    """Process every sequence of ``dataset`` with ``system``.

    Parameters
    ----------
    system:
        A runnable system or a :class:`SystemConfig` to build one from.
    dataset:
        The sequences to process.
    max_sequences:
        Optional cap for quick runs.

    Returns
    -------
    :class:`SystemRunResult` holding per-frame detections + op accounts,
    ready for :func:`repro.metrics.evaluate_dataset`.
    """
    if isinstance(system, SystemConfig):
        system = build_system(system)
    result = SystemRunResult(system_name=system.name)
    sequences = dataset.sequences
    if max_sequences is not None:
        sequences = sequences[:max_sequences]
    for sequence in sequences:
        system.reset()
        result.sequences[sequence.name] = system.process_sequence(sequence)
    return result
