"""Declarative system configuration + factory.

Experiments describe systems as :class:`SystemConfig` values; the factory
builds the runnable object.  This keeps benchmark tables data-driven.

Valid ``kind`` strings come from the system registry
(:data:`repro.api.registry.SYSTEMS`): the built-ins below register
``"single"``, ``"cascade"``, ``"catdet"`` and ``"keyframe"``, and
third-party scenarios add their own with
:func:`repro.api.registry.register_system` — no edits here required.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Optional

from repro.api.registry import SYSTEMS, SystemEntry, register_system
from repro.cost import DEVICE_PROFILES
from repro.core.systems import (
    CascadedSystem,
    CaTDetSystem,
    DetectionSystem,
    SingleModelSystem,
)
from repro.tracker.catdet_tracker import TrackerConfig


@dataclass(frozen=True)
class SystemConfig:
    """Description of one detection system.

    Parameters
    ----------
    kind:
        A registered system kind (built-ins: ``"single"``, ``"cascade"``,
        ``"catdet"``, ``"keyframe"``).
    refinement_model:
        The (only, for ``single``) expensive model's zoo name.
    proposal_model:
        The cheap scanner's zoo name (cascade / catdet only).
    c_thresh:
        Proposal-network output threshold.
    tracker:
        Tracker hyper-parameters (catdet / keyframe only).
    margin:
        Region-of-interest context margin in pixels.
    seed:
        Detector-simulation seed.
    num_classes:
        Dataset class count (affects op models marginally).
    input_scale:
        Downscale factor applied to frames before the networks (CityPersons
        runs at reduced resolution, §7).
    detailed_ops:
        Whether CaTDet systems also compute the hypothetical per-source
        refinement costs of Table 3 (two extra region-mask unions per
        frame); turn off on throughput-critical paths.
    stride:
        Key-frame interval (``keyframe`` systems only; ``None`` = the
        system's default).  Lives here rather than in the builder so the
        result cache's content fingerprint captures it.
    device:
        Modeled device for per-frame latency accounting — a registered
        :data:`repro.cost.DEVICE_PROFILES` name (``"titanx"``,
        ``"abstract"``, ...).  ``None`` (default) skips timing accounting
        entirely.  Part of the content fingerprint: runs on different
        modeled devices report different timing columns.
    """

    kind: str
    refinement_model: str
    proposal_model: Optional[str] = None
    c_thresh: float = 0.1
    tracker: TrackerConfig = field(default_factory=TrackerConfig)
    margin: float = 30.0
    seed: int = 0
    num_classes: int = 2
    input_scale: float = 1.0
    detailed_ops: bool = True
    stride: Optional[int] = None
    device: Optional[str] = None

    def __post_init__(self) -> None:
        if self.kind not in SYSTEMS:
            raise ValueError(
                f"kind must be one of {SYSTEMS.names()}, got {self.kind!r}"
            )
        if not self.refinement_model:
            raise ValueError(
                f"refinement_model must be a model name, got {self.refinement_model!r}"
            )
        if SYSTEMS.get(self.kind).requires_proposal and not self.proposal_model:
            raise ValueError(f"{self.kind!r} systems require a proposal_model")
        if not (0.0 <= self.c_thresh <= 1.0):
            raise ValueError(f"c_thresh must lie in [0, 1], got {self.c_thresh}")
        if self.margin < 0:
            raise ValueError(f"margin must be >= 0, got {self.margin}")
        if self.num_classes < 1:
            raise ValueError(f"num_classes must be >= 1, got {self.num_classes}")
        if self.input_scale <= 0:
            raise ValueError(f"input_scale must be positive, got {self.input_scale}")
        if self.stride is not None and self.stride < 1:
            raise ValueError(f"stride must be >= 1, got {self.stride}")
        if self.device is not None and self.device not in DEVICE_PROFILES:
            raise ValueError(
                f"unknown device {self.device!r}; registered device "
                f"profiles: {DEVICE_PROFILES.names()}"
            )

    @property
    def label(self) -> str:
        """Short label in the paper's table style."""
        if self.kind == "single":
            return f"{self.refinement_model}, Faster R-CNN"
        if self.kind == "cascade":
            return f"{self.proposal_model}, {self.refinement_model}, Cascaded"
        if self.kind == "catdet":
            return f"{self.proposal_model}, {self.refinement_model}, CaTDet"
        if self.proposal_model:
            return f"{self.proposal_model}, {self.refinement_model}, {self.kind}"
        return f"{self.refinement_model}, {self.kind}"


def build_system(config: SystemConfig) -> DetectionSystem:
    """Instantiate the runnable system described by ``config``.

    Dispatches through the system registry, so any kind registered with
    :func:`repro.api.registry.register_system` builds here — including
    from the CLI and the declarative :class:`repro.api.ExperimentSpec`.
    """
    entry: SystemEntry = SYSTEMS.get(config.kind)
    return entry.builder(config)


def config_to_dict(config: SystemConfig) -> Dict[str, Any]:
    """``SystemConfig`` → plain JSON-safe dict (exact, lossless)."""
    return {
        "kind": config.kind,
        "refinement_model": config.refinement_model,
        "proposal_model": config.proposal_model,
        "c_thresh": config.c_thresh,
        "margin": config.margin,
        "seed": config.seed,
        "num_classes": config.num_classes,
        "input_scale": config.input_scale,
        "detailed_ops": config.detailed_ops,
        "stride": config.stride,
        "device": config.device,
        "tracker": {
            "eta": config.tracker.eta,
            "iou_threshold": config.tracker.iou_threshold,
            "input_score_threshold": config.tracker.input_score_threshold,
            "match_gain": config.tracker.match_gain,
            "miss_penalty": config.tracker.miss_penalty,
            "max_confidence": config.tracker.max_confidence,
            "initial_confidence": config.tracker.initial_confidence,
            "min_prediction_width": config.tracker.min_prediction_width,
            "min_visible_fraction": config.tracker.min_visible_fraction,
            "motion_model": config.tracker.motion_model,
        },
    }


def config_from_dict(data: Dict[str, Any]) -> SystemConfig:
    """Inverse of :func:`config_to_dict`.

    Tolerates missing optional keys (they fall back to the dataclass
    defaults) so older saved experiments still load.
    """
    payload = dict(data)
    tracker_data = payload.pop("tracker", None) or {}
    known_config = {f for f in SystemConfig.__dataclass_fields__ if f != "tracker"}
    known_tracker = set(TrackerConfig.__dataclass_fields__)
    unknown = (set(payload) - known_config) | (set(tracker_data) - known_tracker)
    if unknown:
        raise ValueError(f"unknown SystemConfig fields: {sorted(unknown)}")
    return SystemConfig(
        tracker=TrackerConfig(**tracker_data),
        **{k: v for k, v in payload.items() if k in known_config},
    )


# --------------------------------------------------------------------- #
# Built-in system kinds
# --------------------------------------------------------------------- #

@register_system("single", frame_parallel=True)
def _build_single(config: SystemConfig) -> DetectionSystem:
    return SingleModelSystem(
        config.refinement_model,
        seed=config.seed,
        num_classes=config.num_classes,
        input_scale=config.input_scale,
        device=config.device,
    )


@register_system("cascade", requires_proposal=True, frame_parallel=True)
def _build_cascade(config: SystemConfig) -> DetectionSystem:
    return CascadedSystem(
        config.proposal_model,
        config.refinement_model,
        c_thresh=config.c_thresh,
        margin=config.margin,
        seed=config.seed,
        num_classes=config.num_classes,
        input_scale=config.input_scale,
        device=config.device,
    )


@register_system("catdet", requires_proposal=True)
def _build_catdet(config: SystemConfig) -> DetectionSystem:
    return CaTDetSystem(
        config.proposal_model,
        config.refinement_model,
        c_thresh=config.c_thresh,
        margin=config.margin,
        seed=config.seed,
        num_classes=config.num_classes,
        input_scale=config.input_scale,
        device=config.device,
        tracker_config=config.tracker,
        detailed_ops=config.detailed_ops,
    )


@register_system("keyframe")
def _build_keyframe(config: SystemConfig) -> DetectionSystem:
    # Local import: core.keyframe depends on the engine package, which is
    # mid-import when core/__init__ pulls this module in.
    from repro.core.keyframe import KeyFrameSystem

    kwargs = {} if config.stride is None else {"stride": config.stride}
    return KeyFrameSystem(
        config.refinement_model,
        seed=config.seed,
        tracker_config=config.tracker,
        num_classes=config.num_classes,
        input_scale=config.input_scale,
        device=config.device,
        **kwargs,
    )
