"""Declarative system configuration + factory.

Experiments describe systems as :class:`SystemConfig` values; the factory
builds the runnable object.  This keeps benchmark tables data-driven.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.core.systems import (
    CascadedSystem,
    CaTDetSystem,
    DetectionSystem,
    SingleModelSystem,
)
from repro.tracker.catdet_tracker import TrackerConfig

_KINDS = ("single", "cascade", "catdet")


@dataclass(frozen=True)
class SystemConfig:
    """Description of one detection system.

    Parameters
    ----------
    kind:
        ``"single"``, ``"cascade"`` or ``"catdet"``.
    refinement_model:
        The (only, for ``single``) expensive model's zoo name.
    proposal_model:
        The cheap scanner's zoo name (cascade / catdet only).
    c_thresh:
        Proposal-network output threshold.
    tracker:
        Tracker hyper-parameters (catdet only).
    margin:
        Region-of-interest context margin in pixels.
    seed:
        Detector-simulation seed.
    num_classes:
        Dataset class count (affects op models marginally).
    input_scale:
        Downscale factor applied to frames before the networks (CityPersons
        runs at reduced resolution, §7).
    detailed_ops:
        Whether CaTDet systems also compute the hypothetical per-source
        refinement costs of Table 3 (two extra region-mask unions per
        frame); turn off on throughput-critical paths.
    """

    kind: str
    refinement_model: str
    proposal_model: Optional[str] = None
    c_thresh: float = 0.1
    tracker: TrackerConfig = field(default_factory=TrackerConfig)
    margin: float = 30.0
    seed: int = 0
    num_classes: int = 2
    input_scale: float = 1.0
    detailed_ops: bool = True

    def __post_init__(self) -> None:
        if self.kind not in _KINDS:
            raise ValueError(f"kind must be one of {_KINDS}, got {self.kind!r}")
        if not self.refinement_model:
            raise ValueError(
                f"refinement_model must be a model name, got {self.refinement_model!r}"
            )
        if self.kind != "single" and not self.proposal_model:
            raise ValueError(f"{self.kind!r} systems require a proposal_model")
        if not (0.0 <= self.c_thresh <= 1.0):
            raise ValueError(f"c_thresh must lie in [0, 1], got {self.c_thresh}")
        if self.margin < 0:
            raise ValueError(f"margin must be >= 0, got {self.margin}")
        if self.num_classes < 1:
            raise ValueError(f"num_classes must be >= 1, got {self.num_classes}")
        if self.input_scale <= 0:
            raise ValueError(f"input_scale must be positive, got {self.input_scale}")

    @property
    def label(self) -> str:
        """Short label in the paper's table style."""
        if self.kind == "single":
            return f"{self.refinement_model}, Faster R-CNN"
        suffix = "CaTDet" if self.kind == "catdet" else "Cascaded"
        return f"{self.proposal_model}, {self.refinement_model}, {suffix}"


def build_system(config: SystemConfig) -> DetectionSystem:
    """Instantiate the runnable system described by ``config``."""
    if config.kind == "single":
        return SingleModelSystem(
            config.refinement_model,
            seed=config.seed,
            num_classes=config.num_classes,
            input_scale=config.input_scale,
        )
    if config.kind == "cascade":
        return CascadedSystem(
            config.proposal_model,
            config.refinement_model,
            c_thresh=config.c_thresh,
            margin=config.margin,
            seed=config.seed,
            num_classes=config.num_classes,
            input_scale=config.input_scale,
        )
    return CaTDetSystem(
        config.proposal_model,
        config.refinement_model,
        c_thresh=config.c_thresh,
        margin=config.margin,
        seed=config.seed,
        num_classes=config.num_classes,
        input_scale=config.input_scale,
        tracker_config=config.tracker,
        detailed_ops=config.detailed_ops,
    )
