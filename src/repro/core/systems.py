"""The three detection systems of Figure 1, as stage compositions.

All systems share the same contract: :meth:`process_sequence` walks a video
sequence frame by frame (strictly causal — CaTDet never looks ahead) and
returns per-frame detections plus an exact operation account.  Each system
is a thin composition of :mod:`repro.engine.stages`; the per-frame loop
itself lives in the engine, which also provides the incremental
:meth:`DetectionSystem.stream` API and the parallel dataset executors.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Iterator, Union

import repro.engine.stages as engine_stages
import repro.engine.stream as engine_stream
from repro.core.results import FrameResult, SequenceResult
from repro.datasets.types import Sequence
from repro.detections import Detections
from repro.simdet.detector import SimulatedDetector
from repro.simdet.zoo import ZooEntry, get_model
from repro.tracker.catdet_tracker import TrackerConfig


def _resolve(model: Union[str, ZooEntry]) -> ZooEntry:
    return get_model(model) if isinstance(model, str) else model


def _scaled_dims(sequence: Sequence, input_scale: float) -> tuple:
    """Network input resolution for a sequence under a downscale factor."""
    return (
        max(1, int(round(sequence.width * input_scale))),
        max(1, int(round(sequence.height * input_scale))),
    )


class DetectionSystem(ABC):
    """Common interface of single-model, cascaded and CaTDet systems.

    Subclasses describe themselves as a stage pipeline via
    :meth:`build_pipeline`; batch (:meth:`process_sequence`) and streaming
    (:meth:`stream`) execution are shared engine code.
    """

    name: str
    _stream_state = None  # lazily-created StreamRouter for stream()

    #: Modeled device for per-frame latency estimates (a registered
    #: :data:`repro.cost.DEVICE_PROFILES` name); ``None`` disables timing
    #: accounting entirely (zero overhead on existing paths).
    device = None

    #: Whether every frame is a pure function of ``(config, sequence,
    #: frame)`` — no cross-frame feedback — so frame ranges may execute
    #: independently (mirrors ``SystemEntry.frame_parallel`` for live
    #: instances).  Default False: unknown systems are assumed causal.
    frame_parallel = False

    #: Concurrent sequences :meth:`stream` retains isolated state for;
    #: the least-recently-fed beyond this restarts fresh when it returns.
    max_concurrent_streams = 32

    @abstractmethod
    def build_pipeline(self) -> "engine_stages.StagePipeline":
        """A fresh stage composition bound to this system's detectors."""

    def _with_timing(self, stages: list) -> list:
        """Append a :class:`~repro.engine.stages.TimingAccountingStage`
        when :attr:`device` names a cost-layer profile; subclass
        ``build_pipeline`` implementations route their stage lists
        through here."""
        if self.device is not None:
            from repro.cost import CostModel

            stages.append(
                engine_stages.TimingAccountingStage(CostModel.for_device(self.device))
            )
        return stages

    def process_sequence(self, sequence: Sequence) -> SequenceResult:
        """Run the system over every frame of ``sequence`` in order."""
        return self.build_pipeline().run_sequence(sequence)

    def stream(
        self, frame_source: "engine_stream.FrameSource"
    ) -> Iterator[FrameResult]:
        """Process frames one at a time, yielding each result immediately.

        ``frame_source`` is a :class:`~repro.datasets.types.Sequence`, an
        iterable of :class:`~repro.engine.stream.FrameRef`, or an iterable
        of ``(sequence, frame)`` pairs.  Cross-frame state — most
        importantly the tracker — persists across successive ``stream``
        calls, so a live feed can be consumed in arbitrary chunks.
        Frames of *different* sequences may be interleaved freely: each
        sequence object gets isolated per-stream state (its own tracker)
        and sees exactly the results it would have seen streamed alone —
        for up to :attr:`max_concurrent_streams` concurrent sequences
        (raise it before streaming for larger fleets; the
        least-recently-fed sequence beyond the cap restarts fresh when
        it returns, exactly as any sequence switch did before routing).
        Within one sequence, frames must arrive in causal order.  Call
        :meth:`reset` to drop all streaming state.
        """
        if self._stream_state is None:
            self._stream_state = engine_stream.StreamRouter(
                self.build_pipeline, max_streams=self.max_concurrent_streams
            )
        yield from self._stream_state.run(frame_source)

    def _detectors(self) -> tuple:
        """The simulated detectors whose caches :meth:`reset` clears."""
        return ()

    def reset(self) -> None:
        """Clear all cross-frame and cross-sequence state.

        Drops streaming state and every simulated detector's RNG caches,
        so back-to-back runs on the same instance are bit-identical to
        runs on a freshly-built one.
        """
        if self._stream_state is not None:
            self._stream_state.reset()
            self._stream_state = None
        for detector in self._detectors():
            detector.reset()


class SingleModelSystem(DetectionSystem):
    """One detector on every full frame (Figure 1a).

    Frames are mutually independent (``frame_parallel``).

    Parameters
    ----------
    model:
        Zoo name or entry for the detector.
    seed:
        Randomness seed for the simulated detector.
    num_proposals:
        RPN proposal count for the op model (300, the standard setting).
    output_threshold:
        Minimum confidence kept in the output (0 keeps everything; metrics
        sweep thresholds themselves).
    num_classes:
        Class count for the op model's output layers.
    """

    frame_parallel = True

    def __init__(
        self,
        model: Union[str, ZooEntry],
        seed: int = 0,
        *,
        num_proposals: int = 300,
        output_threshold: float = 0.0,
        num_classes: int = 2,
        input_scale: float = 1.0,
        device: str = None,
    ):
        self.entry = _resolve(model)
        self.device = device
        self.input_scale = float(input_scale)
        self.detector = SimulatedDetector(self.entry.profile, seed, input_scale=input_scale)
        self.num_proposals = int(num_proposals)
        self.output_threshold = float(output_threshold)
        self.num_classes = int(num_classes)
        self.name = f"{self.entry.profile.name}-single"
        self._macs = engine_stages.MacsModel(
            self.entry,
            num_classes=self.num_classes,
            input_scale=self.input_scale,
            num_proposals=self.num_proposals,
        )

    def _frame_macs(self, sequence: Sequence) -> float:
        return self._macs.full_frame(sequence)

    def build_pipeline(self) -> "engine_stages.StagePipeline":
        return engine_stages.StagePipeline(
            self._with_timing(
                [
                    engine_stages.RefinementStage(
                        self.detector,
                        full_frame=True,
                        output_threshold=self.output_threshold,
                    ),
                    engine_stages.OpsAccountingStage(self._macs),
                ]
            )
        )

    def _detectors(self) -> tuple:
        return (self.detector,)


class CascadedSystem(DetectionSystem):
    """Proposal network + refinement network, no tracker (Figure 1b).

    Parameters
    ----------
    proposal_model / refinement_model:
        Zoo names or entries.
    c_thresh:
        Output threshold of the proposal network ("C-thresh" in Figure 6):
        only proposals scoring at least this value reach the refinement
        network.
    margin:
        Pixels of context appended around each region (paper: 30).
    seed:
        Randomness seed shared by both simulated detectors.
    refinement_type:
        ``"faster_rcnn"`` (regions + per-proposal head) or ``"retinanet"``
        (dense head over the region mask, Appendix II).
    """

    frame_parallel = True  # no tracker feedback; CaTDetSystem overrides

    def __init__(
        self,
        proposal_model: Union[str, ZooEntry],
        refinement_model: Union[str, ZooEntry],
        *,
        c_thresh: float = 0.1,
        margin: float = 30.0,
        seed: int = 0,
        num_classes: int = 2,
        input_scale: float = 1.0,
        device: str = None,
    ):
        if not (0.0 <= c_thresh <= 1.0):
            raise ValueError(f"c_thresh must lie in [0, 1], got {c_thresh}")
        if margin < 0:
            raise ValueError(f"margin must be >= 0, got {margin}")
        self.device = device
        self.proposal_entry = _resolve(proposal_model)
        self.refinement_entry = _resolve(refinement_model)
        self.input_scale = float(input_scale)
        self.proposal_detector = SimulatedDetector(
            self.proposal_entry.profile, seed, input_scale=input_scale
        )
        self.refinement_detector = SimulatedDetector(
            self.refinement_entry.profile, seed, input_scale=input_scale
        )
        self.c_thresh = float(c_thresh)
        self.margin = float(margin)
        self.num_classes = int(num_classes)
        self.name = (
            f"{self.proposal_entry.profile.name}+"
            f"{self.refinement_entry.profile.name}-cascade"
        )
        self._proposal_macs_model = engine_stages.MacsModel(
            self.proposal_entry, num_classes=self.num_classes, input_scale=self.input_scale
        )
        self._refinement_macs_model = engine_stages.MacsModel(
            self.refinement_entry, num_classes=self.num_classes, input_scale=self.input_scale
        )

    # ------------------------------------------------------------------ #

    def _proposal_macs(self, sequence: Sequence) -> float:
        return self._proposal_macs_model.full_frame(sequence)

    def _refinement_macs(
        self, sequence: Sequence, coverage: float, n_regions: int
    ) -> float:
        return self._refinement_macs_model.regional(sequence, coverage, n_regions)

    def _regions_for_frame(self, sequence: Sequence, frame: int) -> Detections:
        proposals = self.proposal_detector.detect_full_frame(sequence, frame)
        return proposals.above_score(self.c_thresh)

    def build_pipeline(self) -> "engine_stages.StagePipeline":
        return engine_stages.StagePipeline(
            self._with_timing(
                [
                    engine_stages.ProposalStage(self.proposal_detector, self.c_thresh),
                    engine_stages.RefinementStage(
                        self.refinement_detector, margin=self.margin
                    ),
                    engine_stages.OpsAccountingStage(
                        self._refinement_macs_model,
                        self._proposal_macs_model,
                        margin=self.margin,
                    ),
                ]
            )
        )

    def _detectors(self) -> tuple:
        return (self.proposal_detector, self.refinement_detector)


class CaTDetSystem(CascadedSystem):
    """The full CaTDet system: cascade + tracker feedback (Figure 1c).

    The tracker receives each frame's *final* (refinement) detections and
    predicts regions for the next frame; those predictions are unioned with
    the proposal network's output before refinement.

    Additional parameters
    ---------------------
    tracker_config:
        Tracker hyper-parameters; its ``input_score_threshold`` is the
        "confidence threshold for the tracker's input" of §4.3.
    detailed_ops:
        Also compute the hypothetical single-source refinement costs of
        the Table 3 break-down (two extra region-mask unions per frame).
        Turn off on throughput-critical paths; the actual ``proposal`` /
        ``refinement`` accounting is unaffected.
    """

    frame_parallel = False  # the tracker loop makes frames causal

    def __init__(
        self,
        proposal_model: Union[str, ZooEntry],
        refinement_model: Union[str, ZooEntry],
        *,
        c_thresh: float = 0.1,
        margin: float = 30.0,
        seed: int = 0,
        num_classes: int = 2,
        input_scale: float = 1.0,
        device: str = None,
        tracker_config: TrackerConfig = TrackerConfig(),
        detailed_ops: bool = True,
    ):
        super().__init__(
            proposal_model,
            refinement_model,
            c_thresh=c_thresh,
            margin=margin,
            seed=seed,
            num_classes=num_classes,
            input_scale=input_scale,
            device=device,
        )
        self.tracker_config = tracker_config
        self.detailed_ops = bool(detailed_ops)
        self.name = (
            f"{self.proposal_entry.profile.name}+"
            f"{self.refinement_entry.profile.name}-catdet"
        )

    def build_pipeline(self) -> "engine_stages.StagePipeline":
        return engine_stages.StagePipeline(
            self._with_timing(
                [
                    engine_stages.TrackerStage(self.tracker_config),
                    engine_stages.ProposalStage(self.proposal_detector, self.c_thresh),
                    engine_stages.RefinementStage(
                        self.refinement_detector, margin=self.margin
                    ),
                    engine_stages.OpsAccountingStage(
                        self._refinement_macs_model,
                        self._proposal_macs_model,
                        margin=self.margin,
                        detailed=self.detailed_ops,
                    ),
                ]
            )
        )
