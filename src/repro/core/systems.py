"""The three detection systems of Figure 1.

All systems share the same contract: :meth:`process_sequence` walks a video
sequence frame by frame (strictly causal — CaTDet never looks ahead) and
returns per-frame detections plus an exact operation account.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Optional, Union

import numpy as np

from repro.boxes.mask import RegionMask
from repro.core.results import FrameResult, OpsAccount, SequenceResult
from repro.datasets.types import Sequence
from repro.detections import Detections
from repro.simdet.detector import SimulatedDetector
from repro.simdet.zoo import ZooEntry, get_model
from repro.tracker.catdet_tracker import CaTDetTracker, TrackerConfig


def _resolve(model: Union[str, ZooEntry]) -> ZooEntry:
    return get_model(model) if isinstance(model, str) else model


def _scaled_dims(sequence: Sequence, input_scale: float) -> tuple:
    """Network input resolution for a sequence under a downscale factor."""
    return (
        max(1, int(round(sequence.width * input_scale))),
        max(1, int(round(sequence.height * input_scale))),
    )


class DetectionSystem(ABC):
    """Common interface of single-model, cascaded and CaTDet systems."""

    name: str

    @abstractmethod
    def process_sequence(self, sequence: Sequence) -> SequenceResult:
        """Run the system over every frame of ``sequence`` in order."""

    def reset(self) -> None:
        """Clear any cross-frame state (default: none)."""


class SingleModelSystem(DetectionSystem):
    """One detector on every full frame (Figure 1a).

    Parameters
    ----------
    model:
        Zoo name or entry for the detector.
    seed:
        Randomness seed for the simulated detector.
    num_proposals:
        RPN proposal count for the op model (300, the standard setting).
    output_threshold:
        Minimum confidence kept in the output (0 keeps everything; metrics
        sweep thresholds themselves).
    num_classes:
        Class count for the op model's output layers.
    """

    def __init__(
        self,
        model: Union[str, ZooEntry],
        seed: int = 0,
        *,
        num_proposals: int = 300,
        output_threshold: float = 0.0,
        num_classes: int = 2,
        input_scale: float = 1.0,
    ):
        self.entry = _resolve(model)
        self.input_scale = float(input_scale)
        self.detector = SimulatedDetector(self.entry.profile, seed, input_scale=input_scale)
        self.num_proposals = int(num_proposals)
        self.output_threshold = float(output_threshold)
        self.num_classes = int(num_classes)
        self.name = f"{self.entry.profile.name}-single"

    def _frame_macs(self, sequence: Sequence) -> float:
        w, h = _scaled_dims(sequence, self.input_scale)
        if self.entry.detector_type == "retinanet":
            return self.entry.retinanet_ops(w, h, self.num_classes).full_frame().total
        return self.entry.rcnn_ops(w, h, self.num_classes).full_frame(self.num_proposals).total

    def process_sequence(self, sequence: Sequence) -> SequenceResult:
        macs = self._frame_macs(sequence)
        result = SequenceResult(sequence_name=sequence.name)
        for frame in range(sequence.num_frames):
            detections = self.detector.detect_full_frame(sequence, frame)
            if self.output_threshold > 0:
                detections = detections.above_score(self.output_threshold)
            result.frames.append(
                FrameResult(
                    frame=frame,
                    detections=detections,
                    ops=OpsAccount(proposal=0.0, refinement=macs),
                    num_regions=0,
                    coverage_fraction=1.0,
                )
            )
        return result


class CascadedSystem(DetectionSystem):
    """Proposal network + refinement network, no tracker (Figure 1b).

    Parameters
    ----------
    proposal_model / refinement_model:
        Zoo names or entries.
    c_thresh:
        Output threshold of the proposal network ("C-thresh" in Figure 6):
        only proposals scoring at least this value reach the refinement
        network.
    margin:
        Pixels of context appended around each region (paper: 30).
    seed:
        Randomness seed shared by both simulated detectors.
    refinement_type:
        ``"faster_rcnn"`` (regions + per-proposal head) or ``"retinanet"``
        (dense head over the region mask, Appendix II).
    """

    def __init__(
        self,
        proposal_model: Union[str, ZooEntry],
        refinement_model: Union[str, ZooEntry],
        *,
        c_thresh: float = 0.1,
        margin: float = 30.0,
        seed: int = 0,
        num_classes: int = 2,
        input_scale: float = 1.0,
    ):
        if not (0.0 <= c_thresh <= 1.0):
            raise ValueError(f"c_thresh must lie in [0, 1], got {c_thresh}")
        if margin < 0:
            raise ValueError(f"margin must be >= 0, got {margin}")
        self.proposal_entry = _resolve(proposal_model)
        self.refinement_entry = _resolve(refinement_model)
        self.input_scale = float(input_scale)
        self.proposal_detector = SimulatedDetector(
            self.proposal_entry.profile, seed, input_scale=input_scale
        )
        self.refinement_detector = SimulatedDetector(
            self.refinement_entry.profile, seed, input_scale=input_scale
        )
        self.c_thresh = float(c_thresh)
        self.margin = float(margin)
        self.num_classes = int(num_classes)
        self.name = (
            f"{self.proposal_entry.profile.name}+"
            f"{self.refinement_entry.profile.name}-cascade"
        )

    # ------------------------------------------------------------------ #

    def _proposal_macs(self, sequence: Sequence) -> float:
        w, h = _scaled_dims(sequence, self.input_scale)
        return self.proposal_entry.rcnn_ops(w, h, self.num_classes).full_frame(300).total

    def _refinement_macs(
        self, sequence: Sequence, coverage: float, n_regions: int
    ) -> float:
        w, h = _scaled_dims(sequence, self.input_scale)
        if self.refinement_entry.detector_type == "retinanet":
            return self.refinement_entry.retinanet_ops(
                w, h, self.num_classes
            ).regional(coverage).total
        return self.refinement_entry.rcnn_ops(
            w, h, self.num_classes
        ).regional(coverage, n_regions).total

    def _regions_for_frame(self, sequence: Sequence, frame: int) -> Detections:
        proposals = self.proposal_detector.detect_full_frame(sequence, frame)
        return proposals.above_score(self.c_thresh)

    def process_sequence(self, sequence: Sequence) -> SequenceResult:
        proposal_macs = self._proposal_macs(sequence)
        result = SequenceResult(sequence_name=sequence.name)
        for frame in range(sequence.num_frames):
            regions = self._regions_for_frame(sequence, frame)
            mask = RegionMask(
                regions.boxes, sequence.width, sequence.height, self.margin
            )
            coverage = mask.coverage_fraction()
            detections = self.refinement_detector.detect_regions(sequence, frame, mask)
            refinement_macs = self._refinement_macs(sequence, coverage, len(regions))
            result.frames.append(
                FrameResult(
                    frame=frame,
                    detections=detections,
                    ops=OpsAccount(
                        proposal=proposal_macs,
                        refinement=refinement_macs,
                        refinement_from_proposal=refinement_macs,
                    ),
                    num_regions=len(regions),
                    coverage_fraction=coverage,
                )
            )
        return result


class CaTDetSystem(CascadedSystem):
    """The full CaTDet system: cascade + tracker feedback (Figure 1c).

    The tracker receives each frame's *final* (refinement) detections and
    predicts regions for the next frame; those predictions are unioned with
    the proposal network's output before refinement.

    Additional parameters
    ---------------------
    tracker_config:
        Tracker hyper-parameters; its ``input_score_threshold`` is the
        "confidence threshold for the tracker's input" of §4.3.
    """

    def __init__(
        self,
        proposal_model: Union[str, ZooEntry],
        refinement_model: Union[str, ZooEntry],
        *,
        c_thresh: float = 0.1,
        margin: float = 30.0,
        seed: int = 0,
        num_classes: int = 2,
        input_scale: float = 1.0,
        tracker_config: TrackerConfig = TrackerConfig(),
    ):
        super().__init__(
            proposal_model,
            refinement_model,
            c_thresh=c_thresh,
            margin=margin,
            seed=seed,
            num_classes=num_classes,
            input_scale=input_scale,
        )
        self.tracker_config = tracker_config
        self.name = (
            f"{self.proposal_entry.profile.name}+"
            f"{self.refinement_entry.profile.name}-catdet"
        )

    def process_sequence(self, sequence: Sequence) -> SequenceResult:
        proposal_macs = self._proposal_macs(sequence)
        tracker = CaTDetTracker(self.tracker_config, image_size=sequence.image_size)
        result = SequenceResult(sequence_name=sequence.name)
        for frame in range(sequence.num_frames):
            tracked = tracker.predict()
            proposed = self._regions_for_frame(sequence, frame)
            regions = Detections.concatenate([tracked, proposed])

            mask = RegionMask(regions.boxes, sequence.width, sequence.height, self.margin)
            coverage = mask.coverage_fraction()
            detections = self.refinement_detector.detect_regions(sequence, frame, mask)
            tracker.update(detections)

            refinement_macs = self._refinement_macs(sequence, coverage, len(regions))
            # Hypothetical single-source costs for the Table 3 break-down.
            tracker_mask = RegionMask(
                tracked.boxes, sequence.width, sequence.height, self.margin
            )
            proposal_mask = RegionMask(
                proposed.boxes, sequence.width, sequence.height, self.margin
            )
            from_tracker = self._refinement_macs(
                sequence, tracker_mask.coverage_fraction(), len(tracked)
            )
            from_proposal = self._refinement_macs(
                sequence, proposal_mask.coverage_fraction(), len(proposed)
            )
            result.frames.append(
                FrameResult(
                    frame=frame,
                    detections=detections,
                    ops=OpsAccount(
                        proposal=proposal_macs,
                        refinement=refinement_macs,
                        refinement_from_tracker=from_tracker,
                        refinement_from_proposal=from_proposal,
                    ),
                    num_regions=len(regions),
                    coverage_fraction=coverage,
                )
            )
        return result
