"""Result containers: per-frame detections plus operation accounting."""

from __future__ import annotations

from collections.abc import Sequence as SequenceABC
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Mapping, Optional, Union

import numpy as np

from repro.detections import Detections, DetectionsBuffer

GIGA = 1e9


@dataclass
class OpsAccount:
    """Operation counts (MACs) for one frame of one system.

    ``refinement_from_tracker`` / ``refinement_from_proposal`` are the
    hypothetical refinement costs had only that source supplied regions —
    because the sources overlap, they sum to *more* than ``refinement``
    (exactly the phenomenon Table 3 reports).
    """

    proposal: float = 0.0
    refinement: float = 0.0
    refinement_from_tracker: float = 0.0
    refinement_from_proposal: float = 0.0

    @property
    def total(self) -> float:
        return self.proposal + self.refinement

    def __add__(self, other: "OpsAccount") -> "OpsAccount":
        return OpsAccount(
            proposal=self.proposal + other.proposal,
            refinement=self.refinement + other.refinement,
            refinement_from_tracker=self.refinement_from_tracker
            + other.refinement_from_tracker,
            refinement_from_proposal=self.refinement_from_proposal
            + other.refinement_from_proposal,
        )

    def scaled(self, factor: float) -> "OpsAccount":
        return OpsAccount(
            proposal=self.proposal * factor,
            refinement=self.refinement * factor,
            refinement_from_tracker=self.refinement_from_tracker * factor,
            refinement_from_proposal=self.refinement_from_proposal * factor,
        )


@dataclass(frozen=True)
class FrameTiming:
    """Estimated execution time of one frame on a modeled device.

    Produced by the cost layer (:mod:`repro.cost`) under the paper's
    linear model ``T = alpha * W + b`` per launch, split the way Table 7
    reports it.  ``num_launches`` is an integer for a single frame and a
    fractional mean when averaged over many.
    """

    gpu_seconds: float
    cpu_seconds: float
    num_launches: float

    @property
    def total_seconds(self) -> float:
        """Wall-clock per frame; CPU partially hidden behind GPU is ignored,
        matching the paper's unpipelined measurement."""
        return self.gpu_seconds + self.cpu_seconds

    def __add__(self, other: "FrameTiming") -> "FrameTiming":
        return FrameTiming(
            gpu_seconds=self.gpu_seconds + other.gpu_seconds,
            cpu_seconds=self.cpu_seconds + other.cpu_seconds,
            num_launches=self.num_launches + other.num_launches,
        )

    def scaled(self, factor: float) -> "FrameTiming":
        return FrameTiming(
            gpu_seconds=self.gpu_seconds * factor,
            cpu_seconds=self.cpu_seconds * factor,
            num_launches=self.num_launches * factor,
        )


def _mean_timing(frames: List["FrameResult"]) -> Optional[FrameTiming]:
    """Mean per-frame timing over frames that carry one (None if none do)."""
    timed = [f.timing for f in frames if f.timing is not None]
    if not timed:
        return None
    total = FrameTiming(0.0, 0.0, 0.0)
    for t in timed:
        total = total + t
    return total.scaled(1.0 / len(timed))


@dataclass
class FrameResult:
    """One processed frame: final detections + ops + region stats.

    ``timing`` is populated only when the system was configured with a
    modeled device (``SystemConfig(device=...)``); it is the per-frame
    estimate of the :class:`~repro.engine.stages.TimingAccountingStage`.

    ``track_ids`` carries the per-detection track identity assigned by
    the tracker's feedback loop (length ``len(detections)``, -1 where no
    track claimed the detection); ``None`` for tracker-less systems.
    Excluded from dataclass comparison — numpy array equality is
    elementwise.
    """

    frame: int
    detections: Detections
    ops: OpsAccount
    num_regions: int = 0
    coverage_fraction: float = 0.0
    timing: Optional[FrameTiming] = None
    track_ids: Optional[np.ndarray] = field(default=None, compare=False)


class FrameResultBuffer(SequenceABC):
    """Columnar accumulator of :class:`FrameResult` objects.

    Long served runs append one result per executed frame; storing them as
    Python objects costs five objects plus three small arrays per frame.
    This buffer keeps every numeric field in flat growing arrays and the
    detections in one :class:`~repro.detections.DetectionsBuffer`, and
    materializes :class:`FrameResult` values on access — bit-identical to
    what was appended.

    It is a :class:`collections.abc.Sequence` (with ``append``), so code
    written against ``List[FrameResult]`` — iteration, ``len``, indexing,
    slicing, ``zip`` — keeps working unchanged.
    """

    def __init__(self, capacity: int = 64):
        cap = max(capacity, 1)
        self._frame = np.zeros(cap, dtype=np.int64)
        self._num_regions = np.zeros(cap, dtype=np.int64)
        self._coverage = np.zeros(cap)
        self._ops = np.zeros((cap, 4))  # proposal, refinement, from_tracker, from_proposal
        self._timing = np.zeros((cap, 3))  # gpu_seconds, cpu_seconds, num_launches
        self._has_timing = np.zeros(cap, dtype=bool)
        self._has_track_ids = np.zeros(cap, dtype=bool)
        self._detections = DetectionsBuffer(capacity_frames=cap)
        self._size = 0

    def append(self, result: FrameResult) -> None:
        if self._size == self._frame.shape[0]:
            cap = self._frame.shape[0] * 2
            for name in ("_frame", "_num_regions", "_has_timing", "_has_track_ids"):
                old = getattr(self, name)
                grown = np.zeros(cap, dtype=old.dtype)
                grown[: self._size] = old
                setattr(self, name, grown)
            grown = np.zeros(cap)
            grown[: self._size] = self._coverage
            self._coverage = grown
            for name, width in (("_ops", 4), ("_timing", 3)):
                old = getattr(self, name)
                grown = np.zeros((cap, width))
                grown[: self._size] = old
                setattr(self, name, grown)
        i = self._size
        self._frame[i] = result.frame
        self._num_regions[i] = result.num_regions
        self._coverage[i] = result.coverage_fraction
        ops = result.ops
        self._ops[i] = (
            ops.proposal,
            ops.refinement,
            ops.refinement_from_tracker,
            ops.refinement_from_proposal,
        )
        if result.timing is not None:
            self._timing[i] = (
                result.timing.gpu_seconds,
                result.timing.cpu_seconds,
                result.timing.num_launches,
            )
            self._has_timing[i] = True
        self._has_track_ids[i] = result.track_ids is not None
        self._detections.append(result.detections, result.track_ids)
        self._size += 1

    def __len__(self) -> int:
        return self._size

    def frame_track_ids(self, index: int) -> np.ndarray:
        """Track ids of frame ``index`` (-1 where none was attached)."""
        return self._detections.frame_track_ids(index)

    def _materialize(self, i: int) -> FrameResult:
        timing = None
        if self._has_timing[i]:
            timing = FrameTiming(
                gpu_seconds=float(self._timing[i, 0]),
                cpu_seconds=float(self._timing[i, 1]),
                num_launches=float(self._timing[i, 2]),
            )
        return FrameResult(
            frame=int(self._frame[i]),
            detections=self._detections.frame(i),
            ops=OpsAccount(
                proposal=float(self._ops[i, 0]),
                refinement=float(self._ops[i, 1]),
                refinement_from_tracker=float(self._ops[i, 2]),
                refinement_from_proposal=float(self._ops[i, 3]),
            ),
            num_regions=int(self._num_regions[i]),
            coverage_fraction=float(self._coverage[i]),
            timing=timing,
            track_ids=(
                self._detections.frame_track_ids(i) if self._has_track_ids[i] else None
            ),
        )

    def __getitem__(self, index: Union[int, slice]):
        if isinstance(index, slice):
            return [self._materialize(i) for i in range(*index.indices(self._size))]
        i = int(index)
        if i < 0:
            i += self._size
        if not (0 <= i < self._size):
            raise IndexError(f"index {index} out of range for {self._size} frames")
        return self._materialize(i)

    def __iter__(self) -> Iterator[FrameResult]:
        for i in range(self._size):
            yield self._materialize(i)


@dataclass
class SequenceResult:
    """All frames of one sequence processed by one system."""

    sequence_name: str
    frames: List[FrameResult] = field(default_factory=list)

    @property
    def detections(self) -> List[Detections]:
        """Per-frame detections, in frame order."""
        return [f.detections for f in self.frames]

    @property
    def num_frames(self) -> int:
        return len(self.frames)

    def mean_ops(self) -> OpsAccount:
        """Average per-frame operation account."""
        if not self.frames:
            return OpsAccount()
        total = OpsAccount()
        for f in self.frames:
            total = total + f.ops
        return total.scaled(1.0 / len(self.frames))

    def mean_timing(self) -> Optional[FrameTiming]:
        """Average per-frame device timing (None without a modeled device)."""
        return _mean_timing(self.frames)


@dataclass
class SystemRunResult:
    """One system run over a whole dataset."""

    system_name: str
    sequences: Dict[str, SequenceResult] = field(default_factory=dict)

    @property
    def detections_by_sequence(self) -> Dict[str, List[Detections]]:
        """The mapping :func:`repro.metrics.evaluate_dataset` consumes."""
        return {name: seq.detections for name, seq in self.sequences.items()}

    def mean_ops(self) -> OpsAccount:
        """Per-frame operation account averaged over all frames of all sequences."""
        total = OpsAccount()
        n = 0
        for seq in self.sequences.values():
            for f in seq.frames:
                total = total + f.ops
                n += 1
        return total.scaled(1.0 / n) if n else total

    def mean_ops_gops(self) -> float:
        """Average per-frame total ops in Gops — the paper's headline column."""
        return self.mean_ops().total / GIGA

    def mean_timing(self) -> Optional[FrameTiming]:
        """Average per-frame device timing over all frames of all sequences."""
        return _mean_timing(
            [f for seq in self.sequences.values() for f in seq.frames]
        )

    def mean_regions_per_frame(self) -> float:
        counts = [f.num_regions for s in self.sequences.values() for f in s.frames]
        return float(np.mean(counts)) if counts else 0.0

    def mean_coverage(self) -> float:
        fracs = [f.coverage_fraction for s in self.sequences.values() for f in s.frames]
        return float(np.mean(fracs)) if fracs else 0.0
