"""Result containers: per-frame detections plus operation accounting."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional

import numpy as np

from repro.detections import Detections

GIGA = 1e9


@dataclass
class OpsAccount:
    """Operation counts (MACs) for one frame of one system.

    ``refinement_from_tracker`` / ``refinement_from_proposal`` are the
    hypothetical refinement costs had only that source supplied regions —
    because the sources overlap, they sum to *more* than ``refinement``
    (exactly the phenomenon Table 3 reports).
    """

    proposal: float = 0.0
    refinement: float = 0.0
    refinement_from_tracker: float = 0.0
    refinement_from_proposal: float = 0.0

    @property
    def total(self) -> float:
        return self.proposal + self.refinement

    def __add__(self, other: "OpsAccount") -> "OpsAccount":
        return OpsAccount(
            proposal=self.proposal + other.proposal,
            refinement=self.refinement + other.refinement,
            refinement_from_tracker=self.refinement_from_tracker
            + other.refinement_from_tracker,
            refinement_from_proposal=self.refinement_from_proposal
            + other.refinement_from_proposal,
        )

    def scaled(self, factor: float) -> "OpsAccount":
        return OpsAccount(
            proposal=self.proposal * factor,
            refinement=self.refinement * factor,
            refinement_from_tracker=self.refinement_from_tracker * factor,
            refinement_from_proposal=self.refinement_from_proposal * factor,
        )


@dataclass(frozen=True)
class FrameTiming:
    """Estimated execution time of one frame on a modeled device.

    Produced by the cost layer (:mod:`repro.cost`) under the paper's
    linear model ``T = alpha * W + b`` per launch, split the way Table 7
    reports it.  ``num_launches`` is an integer for a single frame and a
    fractional mean when averaged over many.
    """

    gpu_seconds: float
    cpu_seconds: float
    num_launches: float

    @property
    def total_seconds(self) -> float:
        """Wall-clock per frame; CPU partially hidden behind GPU is ignored,
        matching the paper's unpipelined measurement."""
        return self.gpu_seconds + self.cpu_seconds

    def __add__(self, other: "FrameTiming") -> "FrameTiming":
        return FrameTiming(
            gpu_seconds=self.gpu_seconds + other.gpu_seconds,
            cpu_seconds=self.cpu_seconds + other.cpu_seconds,
            num_launches=self.num_launches + other.num_launches,
        )

    def scaled(self, factor: float) -> "FrameTiming":
        return FrameTiming(
            gpu_seconds=self.gpu_seconds * factor,
            cpu_seconds=self.cpu_seconds * factor,
            num_launches=self.num_launches * factor,
        )


def _mean_timing(frames: List["FrameResult"]) -> Optional[FrameTiming]:
    """Mean per-frame timing over frames that carry one (None if none do)."""
    timed = [f.timing for f in frames if f.timing is not None]
    if not timed:
        return None
    total = FrameTiming(0.0, 0.0, 0.0)
    for t in timed:
        total = total + t
    return total.scaled(1.0 / len(timed))


@dataclass
class FrameResult:
    """One processed frame: final detections + ops + region stats.

    ``timing`` is populated only when the system was configured with a
    modeled device (``SystemConfig(device=...)``); it is the per-frame
    estimate of the :class:`~repro.engine.stages.TimingAccountingStage`.
    """

    frame: int
    detections: Detections
    ops: OpsAccount
    num_regions: int = 0
    coverage_fraction: float = 0.0
    timing: Optional[FrameTiming] = None


@dataclass
class SequenceResult:
    """All frames of one sequence processed by one system."""

    sequence_name: str
    frames: List[FrameResult] = field(default_factory=list)

    @property
    def detections(self) -> List[Detections]:
        """Per-frame detections, in frame order."""
        return [f.detections for f in self.frames]

    @property
    def num_frames(self) -> int:
        return len(self.frames)

    def mean_ops(self) -> OpsAccount:
        """Average per-frame operation account."""
        if not self.frames:
            return OpsAccount()
        total = OpsAccount()
        for f in self.frames:
            total = total + f.ops
        return total.scaled(1.0 / len(self.frames))

    def mean_timing(self) -> Optional[FrameTiming]:
        """Average per-frame device timing (None without a modeled device)."""
        return _mean_timing(self.frames)


@dataclass
class SystemRunResult:
    """One system run over a whole dataset."""

    system_name: str
    sequences: Dict[str, SequenceResult] = field(default_factory=dict)

    @property
    def detections_by_sequence(self) -> Dict[str, List[Detections]]:
        """The mapping :func:`repro.metrics.evaluate_dataset` consumes."""
        return {name: seq.detections for name, seq in self.sequences.items()}

    def mean_ops(self) -> OpsAccount:
        """Per-frame operation account averaged over all frames of all sequences."""
        total = OpsAccount()
        n = 0
        for seq in self.sequences.values():
            for f in seq.frames:
                total = total + f.ops
                n += 1
        return total.scaled(1.0 / n) if n else total

    def mean_ops_gops(self) -> float:
        """Average per-frame total ops in Gops — the paper's headline column."""
        return self.mean_ops().total / GIGA

    def mean_timing(self) -> Optional[FrameTiming]:
        """Average per-frame device timing over all frames of all sequences."""
        return _mean_timing(
            [f for seq in self.sequences.values() for f in seq.frames]
        )

    def mean_regions_per_frame(self) -> float:
        counts = [f.num_regions for s in self.sequences.values() for f in s.frames]
        return float(np.mean(counts)) if counts else 0.0

    def mean_coverage(self) -> float:
        fracs = [f.coverage_fraction for s in self.sequences.values() for f in s.frames]
        return float(np.mean(fracs)) if fracs else 0.0
