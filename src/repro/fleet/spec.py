"""Declarative fleet deployments: frozen, fingerprinted, cacheable.

A :class:`FleetSpec` is the replicated-serving sibling of
:class:`~repro.api.spec.ServeSpec`: one system served over one dataset's
streams under one offered load — but across *N* replica servers over
(possibly heterogeneous) device profiles, with a stream-to-replica
placement policy and an optional :class:`AutoscalerPolicy` controlling
the replica count at runtime.

Like every spec in this repo it is frozen, JSON-round-trippable and
content-fingerprinted.  Fleet serving is a deterministic discrete-event
simulation, so a spec's :class:`~repro.fleet.server.FleetReport` is a
pure function of the spec and :meth:`repro.api.session.Session.serve_fleet`
caches it by fingerprint — which is what makes fleet *tuning* (sweeping
replica count x device mix x batch policy) nearly free on revisits.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from typing import Any, Dict, Optional, Tuple

from repro.api.spec import DatasetSpec, _known_fields
from repro.core.config import SystemConfig, config_from_dict, config_to_dict

FLEET_SPEC_FORMAT = "repro-fleet-spec/1"


@dataclass(frozen=True)
class AutoscalerPolicy:
    """The control loop's knobs: when to scale, how fast, within what bounds.

    The controller reads the PR-7 observability signals each replica's
    :class:`~repro.obs.registry.MetricsRegistry` already exposes and acts
    on *windowed* views of them (what happened since the last control
    tick, not since the beginning of time):

    * **scale out** when the windowed queue-wait p95 dominates — it both
      exceeds ``scale_out_wait_share`` of the ``slo_p99_ms`` budget *and*
      exceeds the windowed compute p95.  Wait-dominated latency means the
      fleet is under-provisioned; compute-dominated latency means the
      work is just expensive, and another replica would not help a
      single stream's frame get computed faster.
    * **scale in** when windowed batch occupancy collapses below
      ``scale_in_occupancy`` of the batch-size cap while queue waits sit
      comfortably inside the budget — capacity is idling.

    Hysteresis comes from ``cooldown_s`` (no two scale actions closer
    than this) plus the hard ``min_replicas``/``max_replicas`` bounds.

    Parameters
    ----------
    min_replicas / max_replicas:
        Hard bounds on the live replica count.
    interval_s:
        Control-tick period on the *simulated* clock.
    cooldown_s:
        Minimum simulated time between two scale actions.
    slo_p99_ms:
        The end-to-end latency budget the controller defends.
    scale_out_wait_share:
        Fraction of the budget the windowed queue-wait p95 may consume
        before wait is considered to dominate.
    scale_in_occupancy:
        Windowed mean batch size below this fraction of
        ``max_batch_size`` marks capacity as collapsed.
    """

    min_replicas: int = 1
    max_replicas: int = 4
    interval_s: float = 2.0
    cooldown_s: float = 4.0
    slo_p99_ms: float = 200.0
    scale_out_wait_share: float = 0.5
    scale_in_occupancy: float = 0.25

    def __post_init__(self) -> None:
        if self.min_replicas < 1:
            raise ValueError(f"min_replicas must be >= 1, got {self.min_replicas}")
        if self.max_replicas < self.min_replicas:
            raise ValueError(
                f"max_replicas ({self.max_replicas}) must be >= "
                f"min_replicas ({self.min_replicas})"
            )
        if self.interval_s <= 0:
            raise ValueError(f"interval_s must be positive, got {self.interval_s}")
        if self.cooldown_s < 0:
            raise ValueError(f"cooldown_s must be >= 0, got {self.cooldown_s}")
        if self.slo_p99_ms <= 0:
            raise ValueError(f"slo_p99_ms must be positive, got {self.slo_p99_ms}")
        if not 0.0 < self.scale_out_wait_share <= 1.0:
            raise ValueError(
                f"scale_out_wait_share must be in (0, 1], "
                f"got {self.scale_out_wait_share}"
            )
        if not 0.0 <= self.scale_in_occupancy < 1.0:
            raise ValueError(
                f"scale_in_occupancy must be in [0, 1), "
                f"got {self.scale_in_occupancy}"
            )

    def to_dict(self) -> Dict[str, Any]:
        return {
            "min_replicas": self.min_replicas,
            "max_replicas": self.max_replicas,
            "interval_s": self.interval_s,
            "cooldown_s": self.cooldown_s,
            "slo_p99_ms": self.slo_p99_ms,
            "scale_out_wait_share": self.scale_out_wait_share,
            "scale_in_occupancy": self.scale_in_occupancy,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "AutoscalerPolicy":
        return cls(**_known_fields(cls, data))


@dataclass(frozen=True)
class FleetSpec:
    """One fully-described fleet deployment.

    Parameters
    ----------
    system / dataset / load / policy / query:
        Exactly as on :class:`~repro.api.spec.ServeSpec` — the system
        every replica serves (detectors shared fleet-wide, trackers per
        stream), the dataset family behind the streams, the offered
        load, the per-replica admission/batching policy, and an optional
        scenario query evaluated per stream.
    replicas:
        Initial replica count (the static count when no autoscaler).
    devices:
        Device-profile names the replica pool cycles through: replica
        ``i`` (by spawn order, including autoscaled spawns) runs on
        ``devices[i % len(devices)]``.  One name = a homogeneous fleet.
    placement:
        Registered placement policy routing *new* streams to replicas
        (see :mod:`repro.fleet.router`; routing is sticky thereafter).
    autoscaler:
        ``None`` for a static fleet, or an :class:`AutoscalerPolicy`;
        ``replicas`` must then lie inside its bounds.
    """

    system: SystemConfig
    dataset: DatasetSpec = field(default_factory=DatasetSpec)
    load: "Any" = None
    policy: "Any" = None
    replicas: int = 2
    devices: Tuple[str, ...] = ("abstract",)
    placement: str = "least_loaded"
    autoscaler: Optional[AutoscalerPolicy] = None
    query: "Any" = None

    def __post_init__(self) -> None:
        from repro.cost import get_device
        from repro.fleet.router import PLACEMENT_POLICIES
        from repro.query.spec import QuerySpec
        from repro.serve.loadgen import LoadSpec
        from repro.serve.server import ServePolicy

        if not isinstance(self.system, SystemConfig):
            raise TypeError(
                f"system must be a SystemConfig, got {type(self.system).__name__}"
            )
        if self.load is None:
            object.__setattr__(self, "load", LoadSpec())
        elif not isinstance(self.load, LoadSpec):
            raise TypeError(f"load must be a LoadSpec, got {type(self.load).__name__}")
        if self.policy is None:
            object.__setattr__(self, "policy", ServePolicy())
        elif not isinstance(self.policy, ServePolicy):
            raise TypeError(
                f"policy must be a ServePolicy, got {type(self.policy).__name__}"
            )
        if self.replicas < 1:
            raise ValueError(f"replicas must be >= 1, got {self.replicas}")
        devices = tuple(self.devices)
        if not devices:
            raise ValueError("devices must name at least one device profile")
        for device in devices:
            get_device(device)  # raises KeyError for unknown names
        object.__setattr__(self, "devices", devices)
        PLACEMENT_POLICIES.get(self.placement)  # raises for unknown names
        if self.autoscaler is not None:
            if not isinstance(self.autoscaler, AutoscalerPolicy):
                raise TypeError(
                    f"autoscaler must be an AutoscalerPolicy, "
                    f"got {type(self.autoscaler).__name__}"
                )
            if not (
                self.autoscaler.min_replicas
                <= self.replicas
                <= self.autoscaler.max_replicas
            ):
                raise ValueError(
                    f"replicas={self.replicas} outside the autoscaler bounds "
                    f"[{self.autoscaler.min_replicas}, "
                    f"{self.autoscaler.max_replicas}]"
                )
        if self.query is not None and not isinstance(self.query, QuerySpec):
            raise TypeError(
                f"query must be a QuerySpec, got {type(self.query).__name__}"
            )

    @property
    def label(self) -> str:
        scale = (
            f"{self.autoscaler.min_replicas}-{self.autoscaler.max_replicas} auto"
            if self.autoscaler is not None
            else f"{self.replicas} static"
        )
        return (
            f"{self.system.label} fleet[{scale} on {'/'.join(self.devices)}] "
            f"@ {self.dataset.family} x{self.load.num_streams} {self.load.pattern}"
        )

    def device_for(self, index: int) -> str:
        """Device profile name of the ``index``-th spawned replica."""
        return self.devices[index % len(self.devices)]

    def to_dict(self) -> Dict[str, Any]:
        return {
            "format": FLEET_SPEC_FORMAT,
            "system": config_to_dict(self.system),
            "dataset": self.dataset.to_dict(),
            "load": self.load.to_dict(),
            "policy": self.policy.to_dict(),
            "replicas": self.replicas,
            "devices": list(self.devices),
            "placement": self.placement,
            "autoscaler": (
                None if self.autoscaler is None else self.autoscaler.to_dict()
            ),
            "query": None if self.query is None else self.query.to_dict(),
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "FleetSpec":
        from repro.query.spec import QuerySpec
        from repro.serve.loadgen import LoadSpec
        from repro.serve.server import ServePolicy

        fmt = data.get("format", FLEET_SPEC_FORMAT)
        if fmt != FLEET_SPEC_FORMAT:
            raise ValueError(
                f"unsupported fleet-spec format {fmt!r}, expected {FLEET_SPEC_FORMAT!r}"
            )
        if "system" not in data:
            raise ValueError("fleet spec is missing the required 'system' section")
        return cls(
            system=config_from_dict(data["system"]),
            dataset=DatasetSpec.from_dict(data.get("dataset", {})),
            load=LoadSpec.from_dict(data.get("load", {})),
            policy=ServePolicy.from_dict(data.get("policy", {})),
            replicas=data.get("replicas", 2),
            devices=tuple(data.get("devices", ("abstract",))),
            placement=data.get("placement", "least_loaded"),
            autoscaler=(
                None
                if data.get("autoscaler") is None
                else AutoscalerPolicy.from_dict(data["autoscaler"])
            ),
            query=(
                None
                if data.get("query") is None
                else QuerySpec.from_dict(data["query"])
            ),
        )

    def to_json(self, *, indent: Optional[int] = None) -> str:
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "FleetSpec":
        return cls.from_dict(json.loads(text))

    @property
    def fingerprint(self) -> str:
        """Stable content address of the report this spec determines."""
        canonical = json.dumps(self.to_dict(), sort_keys=True, separators=(",", ":"))
        return hashlib.sha256(canonical.encode("utf-8")).hexdigest()
