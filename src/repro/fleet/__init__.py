"""Replicated fleet serving: routing, elasticity, and fleet tuning.

The serving layer (:mod:`repro.serve`) models *one* server; this package
scales it sideways without surrendering any of its guarantees:

* :mod:`~repro.fleet.spec` — frozen, fingerprinted
  :class:`FleetSpec` / :class:`AutoscalerPolicy` describing a deployment;
* :mod:`~repro.fleet.router` — sticky stream-to-replica pins over
  pluggable placement policies (``least_loaded``, ``round_robin``,
  ``cost_aware``);
* :mod:`~repro.fleet.replica` — the replica pool: heterogeneous device
  profiles, per-replica metrics registries, drain/retire lifecycle and
  allocation billing;
* :mod:`~repro.fleet.autoscaler` — the windowed, hysteretic control loop
  (scale out when queue-wait dominates the latency budget, in when batch
  occupancy collapses);
* :mod:`~repro.fleet.server` — the fleet event loop and its cacheable
  :class:`FleetReport`;
* :mod:`~repro.fleet.tune` — the cheapest static fleet meeting an SLO.

Determinism carries over verbatim: per-frame detections are keyed by
``(model, seed, sequence, frame)``, so a 1-replica fleet is
byte-identical to a bare ``DetectionServer`` and per-stream outputs are
invariant under replica count and autoscaling schedule.
"""

from repro.fleet.autoscaler import SCALE_IN, SCALE_OUT, Autoscaler, Decision
from repro.fleet.replica import ACTIVE, DRAINING, RETIRED, Replica, ReplicaSet
from repro.fleet.router import (
    PLACEMENT_POLICIES,
    FleetRouter,
    register_placement,
)
from repro.fleet.server import (
    FLEET_REPORT_FORMAT,
    FleetReport,
    FleetReportStore,
    FleetServer,
)
from repro.fleet.spec import FLEET_SPEC_FORMAT, AutoscalerPolicy, FleetSpec
from repro.fleet.tune import (
    DEFAULT_REPLICA_COUNTS,
    FleetCandidate,
    FleetTuneResult,
    tune_fleet,
)

__all__ = [
    "ACTIVE",
    "Autoscaler",
    "AutoscalerPolicy",
    "DEFAULT_REPLICA_COUNTS",
    "DRAINING",
    "Decision",
    "FLEET_REPORT_FORMAT",
    "FLEET_SPEC_FORMAT",
    "FleetCandidate",
    "FleetReport",
    "FleetReportStore",
    "FleetRouter",
    "FleetServer",
    "FleetSpec",
    "FleetTuneResult",
    "PLACEMENT_POLICIES",
    "RETIRED",
    "Replica",
    "ReplicaSet",
    "SCALE_IN",
    "SCALE_OUT",
    "register_placement",
    "tune_fleet",
]
