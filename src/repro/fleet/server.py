"""The fleet server: N replicas, one stream-routing layer, one clock.

:class:`FleetServer` runs the same deterministic discrete-event
simulation as :class:`~repro.serve.server.DetectionServer`, but over a
*pool* of replicas: every replica has its own queue, micro-batcher,
device timing model and metrics registry, while the fleet owns what must
never fork — the per-stream pipeline state (tracker identities, scenario
-query evaluators, frame sequence numbers) and the stream-to-replica
routing table.  Keeping stream state fleet-level is the move that makes
elasticity safe: re-pinning a stream to another replica moves only its
*queued* frames (in-flight batches were already computed at dispatch),
so causality and byte-identity survive any scaling schedule.

Determinism contract, extended to fleets: per-frame detections are keyed
by ``(model, seed, sequence, frame)`` — never by batch, replica or
placement — so a 1-replica fleet is byte-identical to a bare
``DetectionServer`` and per-stream outputs are invariant under replica
count.  What changes with fleet shape is only *when* frames complete:
latency statistics, shedding, cost.

A :class:`FleetReport` is therefore a pure function of its
:class:`~repro.fleet.spec.FleetSpec`, cached content-addressed by
:class:`FleetReportStore` exactly like serve reports.
"""

from __future__ import annotations

import json
import os
import time
from collections import deque
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence as SequenceType, Union

from repro.core.results import FrameResult, FrameResultBuffer
from repro.core.systems import DetectionSystem
from repro.core.config import build_system
from repro.datasets.types import Sequence
from repro.engine.stages import run_frame_batch
from repro.fleet.autoscaler import SCALE_IN, SCALE_OUT, Autoscaler, Decision
from repro.fleet.replica import Replica, ReplicaSet
from repro.fleet.router import FleetRouter
from repro.fleet.spec import FleetSpec
from repro.obs.registry import MetricsRegistry, resolve_registry
from repro.obs.sinks import Sink, as_sinks
from repro.serve.batcher import QueuedFrame
from repro.serve.loadgen import FrameRequest
from repro.serve.server import SHED_OLDEST, ServePolicy
from repro.serve.slo import DEFAULT_MAX_EXACT_SAMPLES, SLOAccount

FLEET_REPORT_FORMAT = "repro-fleet-report/1"

#: Histograms merged from every replica into the fleet-level registry at
#: the end of a run, so dashboards see one fleet-wide distribution.
_MERGED_HISTOGRAMS = (
    "serve_queue_wait_seconds",
    "serve_compute_seconds",
    "serve_latency_seconds",
    "serve_batch_size",
)


@dataclass
class FleetReport:
    """What one fleet deployment cost: latency, scaling history, money.

    ``frame_results`` and ``wall_seconds`` follow the serve-report
    convention — live-run-only evidence, excluded from :meth:`to_dict`.
    """

    policy: ServePolicy
    devices: List[str]
    placement: str
    autoscaler: Optional[Dict[str, Any]]
    frames_offered: int
    frames_served: int
    frames_shed: int
    batches: int
    invocations: int
    makespan_seconds: float
    compute_seconds: float
    replica_seconds: float
    cost: float
    slo: Dict[str, Any]
    replicas: List[Dict[str, Any]] = field(default_factory=list)
    scale_events: List[Dict[str, Any]] = field(default_factory=list)
    dead_streams: List[str] = field(default_factory=list)
    query_windows: Optional[Dict[str, Any]] = None
    frame_results: Optional[Dict[str, SequenceType[FrameResult]]] = None
    wall_seconds: float = 0.0

    @property
    def cost_per_frame(self) -> float:
        """Allocated replica-time priced at each device's hourly rate,
        amortized over served frames (``inf`` when nothing was served).

        Note the difference from the single-server tuner: a fleet pays
        for replicas while they are *allocated*, not while they are
        busy — an idle over-provisioned replica still bills, which is
        exactly why autoscaling wins on cost.
        """
        if not self.frames_served:
            return float("inf")
        return self.cost / self.frames_served

    @property
    def mean_batch_size(self) -> float:
        return self.frames_served / self.batches if self.batches else 0.0

    @property
    def throughput_fps(self) -> float:
        return (
            self.frames_served / self.makespan_seconds
            if self.makespan_seconds > 0
            else 0.0
        )

    @property
    def utilization(self) -> float:
        """Fraction of allocated replica-time spent computing."""
        return (
            self.compute_seconds / self.replica_seconds
            if self.replica_seconds > 0
            else 0.0
        )

    @property
    def peak_replicas(self) -> int:
        return len(self.replicas)

    def query_report(self):
        if self.query_windows is None:
            return None
        from repro.query.offline import QueryReport

        return QueryReport.from_dict(self.query_windows)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "format": FLEET_REPORT_FORMAT,
            "policy": self.policy.to_dict(),
            "devices": list(self.devices),
            "placement": self.placement,
            "autoscaler": self.autoscaler,
            "frames_offered": self.frames_offered,
            "frames_served": self.frames_served,
            "frames_shed": self.frames_shed,
            "batches": self.batches,
            "invocations": self.invocations,
            "mean_batch_size": self.mean_batch_size,
            "makespan_seconds": self.makespan_seconds,
            "compute_seconds": self.compute_seconds,
            "replica_seconds": self.replica_seconds,
            "cost": self.cost,
            "cost_per_frame": self.cost_per_frame,
            "throughput_fps": self.throughput_fps,
            "utilization": self.utilization,
            "slo": self.slo,
            "replicas": self.replicas,
            "scale_events": self.scale_events,
            "dead_streams": list(self.dead_streams),
            "query_windows": self.query_windows,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "FleetReport":
        if data.get("format") != FLEET_REPORT_FORMAT:
            raise ValueError(
                f"unsupported fleet-report format {data.get('format')!r}, "
                f"expected {FLEET_REPORT_FORMAT!r}"
            )
        return cls(
            policy=ServePolicy.from_dict(data["policy"]),
            devices=list(data["devices"]),
            placement=data["placement"],
            autoscaler=data.get("autoscaler"),
            frames_offered=data["frames_offered"],
            frames_served=data["frames_served"],
            frames_shed=data["frames_shed"],
            batches=data["batches"],
            invocations=data["invocations"],
            makespan_seconds=data["makespan_seconds"],
            compute_seconds=data["compute_seconds"],
            replica_seconds=data["replica_seconds"],
            cost=data["cost"],
            slo=data["slo"],
            replicas=list(data.get("replicas", [])),
            scale_events=list(data.get("scale_events", [])),
            dead_streams=list(data.get("dead_streams", [])),
            query_windows=data.get("query_windows"),
        )

    def format(self) -> str:
        """Human-readable fleet report: replicas, latency, scale history."""
        from repro.harness.tables import format_table

        rows = []
        for r in self.replicas:
            retired = r.get("retired_s")
            rows.append(
                [
                    r["name"],
                    r["device"],
                    r["spawned_s"],
                    "-" if retired is None else f"{retired:.1f}",
                    r["frames"],
                    r["batches"],
                    r["busy_seconds"],
                    r["alive_seconds"],
                    r["cost"],
                ]
            )
        table = format_table(
            ["replica", "device", "up(s)", "down(s)", "frames", "batches",
             "busy(s)", "alive(s)", "cost"],
            rows,
            precision=2,
            title="Fleet report",
        )
        fleet = self.slo.get("fleet", {})
        lines = [
            f"offered {self.frames_offered} frames, served {self.frames_served}, "
            f"shed {self.frames_shed}; "
            f"p50 {fleet.get('p50_ms', 0.0):.1f} ms, "
            f"p95 {fleet.get('p95_ms', 0.0):.1f} ms, "
            f"p99 {fleet.get('p99_ms', 0.0):.1f} ms",
            f"replica-seconds {self.replica_seconds:.1f} over "
            f"{self.makespan_seconds:.1f}s makespan "
            f"(utilization {self.utilization:.0%}), "
            f"cost {self.cost:.4f} "
            f"({self.cost_per_frame * 1e3:.4f} per kiloframe)"
            if self.frames_served
            else f"replica-seconds {self.replica_seconds:.1f}, nothing served",
        ]
        if self.dead_streams:
            lines.append(
                f"DEAD STREAMS ({len(self.dead_streams)}): "
                + ", ".join(self.dead_streams)
            )
        if self.scale_events:
            lines.append(f"scale events ({len(self.scale_events)}):")
            for event in self.scale_events:
                lines.append(
                    f"  t={event['t']:7.2f}s {event['action']:<9s} "
                    f"{event['replica']} [{event['device']}] — {event['reason']}"
                )
        elif self.autoscaler is not None:
            lines.append("scale events: none (the initial size held)")
        query_report = self.query_report()
        if query_report is not None:
            lines.append("")
            lines.append(query_report.format())
        return "\n".join([table] + lines)


class _FleetStream:
    """One stream's causal state, owned fleet-wide (never per replica)."""

    __slots__ = ("pipeline", "sequence", "results", "query", "serial")

    def __init__(self, pipeline, serial: int, query=None):
        self.pipeline = pipeline
        self.sequence: Optional[Sequence] = None
        self.results = FrameResultBuffer()
        self.query = query
        self.serial = serial  # admission order; deterministic tiebreak


class FleetServer:
    """Replicated serving of one spec over the deterministic clock.

    Parameters
    ----------
    spec:
        The :class:`~repro.fleet.spec.FleetSpec` to deploy.
    metrics:
        Fleet-level registry (defaults to the process-global one): engine
        counters, ``fleet_*`` gauges/counters, and the end-of-run merge
        of every replica's latency histograms land here.  Each replica
        additionally keeps its own private registry — that is what the
        autoscaler windows.
    sinks:
        Receive ``fleet.scale`` records per scale action, ``query.window``
        records per frames-of-interest window and a final
        ``fleet.summary`` (per-frame records are deliberately skipped —
        a fleet's worth of them belongs in metrics, not an event log).
    """

    def __init__(
        self,
        spec: FleetSpec,
        *,
        system: Optional[DetectionSystem] = None,
        metrics: Optional[MetricsRegistry] = None,
        sinks: Union[None, Sink, List[Sink]] = None,
        max_exact_samples: int = DEFAULT_MAX_EXACT_SAMPLES,
        trace=None,
        record_trace: bool = False,
    ) -> None:
        self.spec = spec
        self.system = system if system is not None else build_system(spec.system)
        self.policy = spec.policy
        self.query = spec.query
        self.metrics = resolve_registry(metrics)
        self.sinks = as_sinks(sinks)
        self.max_exact_samples = max_exact_samples
        self._template = self.system.build_pipeline()
        try:
            self._template.per_stream()
            self._shareable = True
        except TypeError:
            self._shareable = False
        self._streams: Dict[str, _FleetStream] = {}
        # Compute/timing split (see repro.serve.trace): stream state is
        # fleet-owned and strictly causal per stream, so the same trace
        # a bare DetectionServer recorded replays here regardless of
        # replica count, placement or autoscaling.
        self._trace = trace
        self._record_trace = bool(record_trace)
        self._trace_runner = None
        self.frames_replayed = 0
        self.recorded_trace = None

    # ------------------------------------------------------------------ #
    # Stream state (fleet-owned)
    # ------------------------------------------------------------------ #

    def _stream_state(self, request: FrameRequest) -> _FleetStream:
        state = self._streams.get(request.stream)
        if state is None:
            pipeline = (
                self._template.per_stream()
                if self._shareable
                else self.system.build_pipeline()
            )
            evaluator = None
            if self.query is not None:
                from repro.query.automaton import QueryEvaluator

                evaluator = QueryEvaluator(self.query, request.stream)
            state = self._streams[request.stream] = _FleetStream(
                pipeline, serial=len(self._streams), query=evaluator
            )
        if state.sequence is not request.sequence:
            state.pipeline.begin_sequence(request.sequence)
            state.sequence = request.sequence
        return state

    def _measured_invocations(self) -> int:
        return sum(getattr(d, "invocations", 0) for d in self.system._detectors())

    def _execute(self, batch: List[QueuedFrame]) -> tuple:
        if self._trace_runner is not None:
            from repro.serve.trace import traced_execute

            return traced_execute(self, batch)
        work = []
        states = []
        for item in batch:
            state = self._stream_state(item.request)
            states.append(state)
            work.append((state.pipeline, item.request.sequence, item.request.frame))
        before = self._measured_invocations()
        frame_results = run_frame_batch(work, metrics=self.metrics)
        invocations = self._measured_invocations() - before
        macs = sum(fr.ops.total for fr in frame_results)
        windows = []
        for state, fr in zip(states, frame_results):
            state.results.append(fr)
            if state.query is not None:
                window = state.query.observe(fr)
                if window is not None:
                    windows.append(window)
        return frame_results, invocations, macs, windows

    # ------------------------------------------------------------------ #
    # Rebalancing (the only operations that move streams)
    # ------------------------------------------------------------------ #

    @staticmethod
    def _queue_key(state_of):
        def key(item: QueuedFrame):
            return (
                item.enqueued,
                state_of(item.request.stream),
                item.request.frame,
            )

        return key

    def _move_stream(
        self, stream: str, source: Replica, target: Replica, router: FleetRouter
    ) -> None:
        """Re-pin ``stream`` and carry its *queued* frames along.

        In-flight frames stay: their results were computed at dispatch
        time, so finishing on the old replica cannot fork stream state.
        """
        router.repin(stream, source, target)
        moving = [q for q in source.queue if q.request.stream == stream]
        if not moving:
            return
        source.queue = [q for q in source.queue if q.request.stream != stream]
        target.queue.extend(moving)
        target.queue.sort(
            key=self._queue_key(lambda s: self._streams[s].serial if s in self._streams else -1)
        )
        source.m_depth.set(len(source.queue))
        target.m_depth.set(len(target.queue))

    def _rebalance_onto(
        self, replica: Replica, pool: ReplicaSet, router: FleetRouter
    ) -> List[str]:
        """Give a fresh replica its fair share of existing streams.

        Repeatedly takes the deepest-queued stream from the most-pinned
        donor until ``replica`` reaches the mean share — deterministic
        tie-breaks throughout (lowest replica index, lexicographic
        stream name).
        """
        active = pool.active()
        total = sum(r.pinned_streams for r in active)
        target_share = total // len(active)
        moved: List[str] = []
        while replica.pinned_streams < target_share:
            donors = [
                r
                for r in active
                if r is not replica and r.pinned_streams > target_share
            ]
            if not donors:
                break
            donor = min(donors, key=lambda r: (-r.pinned_streams, r.index))
            streams = router.streams_on(donor)
            if not streams:  # pragma: no cover - pinned_streams > 0 implies some
                break

            def queued(s: str) -> int:
                return sum(1 for q in donor.queue if q.request.stream == s)

            stream = max(streams, key=queued)  # sorted() → lowest name on ties
            self._move_stream(stream, donor, replica, router)
            moved.append(stream)
        return moved

    def _drain_streams(
        self, victim: Replica, pool: ReplicaSet, router: FleetRouter
    ) -> List[str]:
        """Re-place every stream of a draining replica over the active set."""
        active = pool.active()
        moved = []
        for stream in router.streams_on(victim):
            target = router._place(stream, active)
            self._move_stream(stream, victim, target, router)
            moved.append(stream)
        return moved

    # ------------------------------------------------------------------ #
    # The event loop
    # ------------------------------------------------------------------ #

    def run(self, requests: List[FrameRequest]) -> FleetReport:
        """Serve an arrival schedule to completion; returns the report.

        Independent per call, like ``DetectionServer.run``: stream state
        and the replica pool are rebuilt, so back-to-back runs of one
        schedule are identical (detector caches persist — pure values).
        """
        self._streams = {}
        if self._trace is not None or self._record_trace:
            from repro.serve.trace import TraceRunner

            self._trace_runner = TraceRunner(
                self._trace, shareable=self._shareable
            )
        else:
            self._trace_runner = None
        wall_start = time.perf_counter()
        spec = self.spec
        account = SLOAccount(
            self.policy.slo_ms / 1e3, max_exact_samples=self.max_exact_samples
        )
        router = FleetRouter(spec.placement)
        pool = ReplicaSet(spec)
        for _ in range(spec.replicas):
            pool.spawn(0.0)
        autoscaler = (
            Autoscaler(spec.autoscaler, self.policy.max_batch_size)
            if spec.autoscaler is not None
            else None
        )
        arrivals = deque(requests)
        now = 0.0
        batches = 0
        invocations = 0
        compute_seconds = 0.0
        last_completion = 0.0
        query_events = 0
        scale_events: List[Dict[str, Any]] = []

        m_fleet_frames = self.metrics.counter(
            "fleet_frames_total", "frames through the fleet", labels=("direction",)
        )
        m_fleet_drops = self.metrics.counter(
            "fleet_drops_total", "fleet frames dropped, by reason", labels=("reason",)
        )
        m_fleet_batches = self.metrics.counter(
            "fleet_batches_total", "batches dispatched fleet-wide"
        )
        m_fleet_invocations = self.metrics.counter(
            "fleet_invocations_total", "batched invocations fleet-wide"
        )
        m_replicas = self.metrics.gauge(
            "fleet_replicas", "live (active) replica count"
        )
        m_scale = self.metrics.counter(
            "fleet_scale_events_total", "autoscaler actions", labels=("action",)
        )
        m_query = (
            self.metrics.counter(
                "serve_query_events_total",
                "frames-of-interest windows emitted by the scenario query",
                labels=("stream",),
            )
            if self.query is not None
            else None
        )
        m_replicas.set(len(pool.active()))

        def shed(request: FrameRequest, replica: Replica, reason: str) -> None:
            account.record_shed(request.stream, reason)
            replica.m_drops.inc(labels=(reason,))
            m_fleet_drops.inc(labels=(reason,))

        def admit(request: FrameRequest) -> None:
            self._stream_state(request)  # assigns the stream's serial
            replica = router.route(request.stream, pool.active())
            m_fleet_frames.inc(labels=("in",))
            replica.m_frames.inc(labels=("in",))
            if len(replica.queue) >= self.policy.queue_capacity:
                if self.policy.shed_policy == SHED_OLDEST:
                    victim = replica.queue.pop(0)
                    shed(victim.request, replica, "shed_oldest")
                else:
                    shed(request, replica, "reject_newest")
                    return
            replica.queue.append(
                QueuedFrame(request=request, enqueued=request.arrival)
            )
            replica.m_depth.set(len(replica.queue))

        def dispatch(replica: Replica) -> Optional[float]:
            """Try to dispatch one batch; returns a wake deadline if not."""
            nonlocal batches, invocations, compute_seconds
            nonlocal last_completion, query_events
            ready = replica.batcher.ready(replica.queue)
            batch, wake = replica.batcher.decide(
                now, ready, more_arrivals=bool(arrivals)
            )
            if batch is None:
                return wake
            for item in batch:
                replica.queue.remove(item)
            replica.m_depth.set(len(replica.queue))
            _, batch_inv, macs, qwindows = self._execute(batch)
            for window in qwindows:
                query_events += 1
                m_query.inc(labels=(window.stream,))
                for sink in self.sinks:
                    sink.emit(
                        {
                            "record": "query.window",
                            "query": self.query.name,
                            "stream": window.stream,
                            "replica": replica.name,
                            "start": window.start,
                            "end": window.end,
                            "phases": list(window.phases),
                        }
                    )
            service = replica.service.batch_seconds(batch_inv, macs, len(batch))
            completion = now + service
            replica.busy_until = completion
            replica.batches += 1
            replica.invocations += batch_inv
            replica.busy_seconds += service
            replica.frames += len(batch)
            batches += 1
            invocations += batch_inv
            compute_seconds += service
            last_completion = max(last_completion, completion)
            replica.m_batches.inc()
            replica.m_invocations.inc(batch_inv)
            replica.m_batch_size.observe(len(batch))
            replica.m_compute.observe(service)
            m_fleet_batches.inc()
            m_fleet_invocations.inc(batch_inv)
            for item in batch:
                wait = now - item.request.arrival
                latency = completion - item.request.arrival
                account.record(
                    item.request.stream, wait=wait, compute=service, latency=latency
                )
                replica.m_frames.inc(labels=("out",))
                replica.m_wait.observe(wait)
                replica.m_latency.observe(latency)
                m_fleet_frames.inc(labels=("out",))
            return None

        def apply(decision: Decision) -> None:
            if decision.action == SCALE_OUT:
                replica = pool.spawn(now)
                moved = self._rebalance_onto(replica, pool, router)
                subject = replica
            else:
                active = pool.active()
                subject = max(active, key=lambda r: (r.cost_per_second, r.index))
                pool.drain(subject)
                moved = self._drain_streams(subject, pool, router)
            m_scale.inc(labels=(decision.action,))
            m_replicas.set(len(pool.active()))
            event = {
                "t": now,
                "action": decision.action,
                "replica": subject.name,
                "device": subject.device,
                "reason": decision.reason,
                "moved_streams": moved,
            }
            scale_events.append(event)
            for sink in self.sinks:
                sink.emit(dict(event, record="fleet.scale"))

        def pending() -> bool:
            return bool(arrivals) or any(
                r.queue or not r.idle for r in pool.serving()
            )

        while pending():
            while arrivals and arrivals[0].arrival <= now:
                admit(arrivals.popleft())
            for replica in pool.serving():
                if replica.busy_until is not None and replica.busy_until <= now:
                    replica.busy_until = None
            pool.retire_idle(now)
            wakes: List[float] = []
            for replica in sorted(pool.serving(), key=lambda r: r.index):
                if replica.idle and replica.queue:
                    wake = dispatch(replica)
                    if wake is not None:
                        wakes.append(wake)
            if autoscaler is not None and now >= autoscaler.next_check:
                decision = autoscaler.tick(now, pool.serving())
                if decision is not None:
                    apply(decision)
                    # A drain may have handed queued frames to an idle
                    # replica; let it dispatch at this same instant.
                    wakes = []
                    for replica in sorted(pool.serving(), key=lambda r: r.index):
                        if replica.idle and replica.queue:
                            wake = dispatch(replica)
                            if wake is not None:
                                wakes.append(wake)
                    pool.retire_idle(now)
            if not pending():
                break
            candidates: List[float] = list(wakes)
            if arrivals:
                candidates.append(arrivals[0].arrival)
            for replica in pool.serving():
                if replica.busy_until is not None:
                    candidates.append(replica.busy_until)
            if autoscaler is not None:
                candidates.append(autoscaler.next_check)
            now = max(now, min(candidates))

        pool.retire_idle(now)
        makespan = last_completion

        # Fold every replica's latency histograms into the fleet registry
        # so dashboards and `repro status` see one fleet-wide view.
        for name in _MERGED_HISTOGRAMS:
            for replica in pool.replicas:
                source = replica.metrics.get(name)
                if source is None or not source.labels_seen():
                    continue
                merged = self.metrics.histogram(
                    name, source.help, buckets=source.bounds
                )
                merged.merge(source)

        fleet = account.fleet()
        query_windows = None
        if self.query is not None:
            from repro.query.offline import QueryReport

            by_stream = {
                stream: state.query.finish()
                for stream, state in self._streams.items()
                if state.query is not None
            }
            query_windows = QueryReport.build(self.query, by_stream).to_dict()
        if self._trace_runner is not None:
            self.frames_replayed = self._trace_runner.frames_replayed
            self.recorded_trace = self._trace_runner.out_trace()
        offered_streams = sorted({r.stream for r in requests})
        slo = account.to_dict()
        served_by = {
            name: stats.get("served", 0)
            for name, stats in slo.get("streams", {}).items()
        }
        dead_streams = [s for s in offered_streams if not served_by.get(s)]
        summary_record = {
            "record": "fleet.summary",
            "frames_offered": len(requests),
            "frames_served": fleet.served,
            "frames_shed": fleet.shed,
            "batches": batches,
            "invocations": invocations,
            "makespan_seconds": makespan,
            "replica_seconds": pool.replica_seconds(makespan),
            "cost": pool.cost(makespan),
            "peak_replicas": len(pool.replicas),
            "scale_events": len(scale_events),
            "dead_streams": len(dead_streams),
            "p99_ms": fleet.percentile(99.0) * 1e3,
        }
        if self.query is not None:
            summary_record["query"] = self.query.name
            summary_record["query_events"] = query_events
        for sink in self.sinks:
            sink.emit(summary_record)
            sink.flush()
        return FleetReport(
            policy=self.policy,
            devices=list(spec.devices),
            placement=spec.placement,
            autoscaler=(
                None if spec.autoscaler is None else spec.autoscaler.to_dict()
            ),
            frames_offered=len(requests),
            frames_served=fleet.served,
            frames_shed=fleet.shed,
            batches=batches,
            invocations=invocations,
            makespan_seconds=makespan,
            compute_seconds=compute_seconds,
            replica_seconds=pool.replica_seconds(makespan),
            cost=pool.cost(makespan),
            slo=slo,
            replicas=[r.to_dict(makespan) for r in pool.replicas],
            scale_events=scale_events,
            dead_streams=dead_streams,
            query_windows=query_windows,
            frame_results={
                stream: state.results
                for stream, state in sorted(self._streams.items())
            },
            wall_seconds=time.perf_counter() - wall_start,
        )


class FleetReportStore:
    """Content-addressed store of serialized :class:`FleetReport`\\ s.

    Same two-level layout, atomic writes and corrupt-entry-is-a-miss
    semantics as :class:`~repro.serve.server.ServeReportStore`, sharing
    the session cache root so ``repro cache stats/ls/prune`` manage
    fleet reports alongside everything else.
    """

    def __init__(self, root: Union[str, Path]):
        self.root = Path(root)

    def path_for(self, fingerprint: str) -> Path:
        return self.root / fingerprint[:2] / f"{fingerprint}.json"

    def load(self, fingerprint: str) -> Optional[FleetReport]:
        try:
            with open(self.path_for(fingerprint), "r", encoding="utf-8") as fh:
                payload = json.load(fh)
            return FleetReport.from_dict(payload["report"])
        except (OSError, json.JSONDecodeError, KeyError, ValueError, TypeError):
            return None

    def store(
        self,
        fingerprint: str,
        report: FleetReport,
        *,
        spec: Optional[Dict[str, Any]] = None,
    ) -> Path:
        path = self.path_for(fingerprint)
        path.parent.mkdir(parents=True, exist_ok=True)
        tmp = path.with_suffix(f".tmp.{os.getpid()}")
        with open(tmp, "w", encoding="utf-8") as fh:
            json.dump(
                {
                    "format": "repro-fleet-cache/1",
                    "fingerprint": fingerprint,
                    "spec": spec,
                    "report": report.to_dict(),
                },
                fh,
                allow_nan=True,
            )
        os.replace(tmp, path)
        return path

    def __contains__(self, fingerprint: str) -> bool:
        return self.path_for(fingerprint).exists()
