"""Fleet tuning: the cheapest static fleet that meets the SLO.

The fleet sibling of :mod:`repro.serve.tune`: sweep replica count x
device mix x batch size, evaluate every point through
:meth:`repro.api.session.Session.serve_fleet` (each point is its own
fingerprinted :class:`~repro.fleet.spec.FleetSpec`, so revisits — and
whole re-tunes — are pure cache hits), and pick the *cheapest feasible*
fleet:

* **feasible** — fleet p99 meets the target, nothing was shed, and no
  stream starved (``dead_streams`` empty: a fleet that parks a camera
  forever is not serving it);
* **cheapest** — least :attr:`~repro.fleet.server.FleetReport.
  cost_per_frame`, i.e. allocated replica-time priced at each device's
  hourly rate per served frame.  Unlike the single-server tuner's
  busy-time objective, allocation cost punishes over-provisioning: an
  idle replica still bills.  Ties break toward fewer replicas, then
  lower p99.

The swept points are *static* fleets (no autoscaler) — the sweep answers
"how big must a fixed fleet be"; comparing the winner against an
autoscaled run of the same spec is exactly the experiment
``repro fleet run`` + ``repro fleet tune`` enable.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, replace
from typing import Callable, List, Optional, Sequence as Seq, Tuple

from repro.fleet.server import FleetReport
from repro.fleet.spec import FleetSpec

#: Default replica-count axis of the sweep.
DEFAULT_REPLICA_COUNTS = (1, 2, 3, 4)


@dataclass(frozen=True)
class FleetCandidate:
    """One evaluated fleet shape of a tuning sweep."""

    spec: FleetSpec
    report: FleetReport
    feasible: bool

    @property
    def p99_ms(self) -> float:
        return float(self.report.slo["fleet"]["p99_ms"])

    @property
    def cost_per_frame(self) -> float:
        return self.report.cost_per_frame

    def sort_key(self):
        return (
            self.cost_per_frame,
            self.spec.replicas,
            self.p99_ms,
            self.spec.policy.max_batch_size,
        )


@dataclass
class FleetTuneResult:
    """Outcome of one fleet sweep (``best`` is ``None`` when infeasible)."""

    slo_p99_ms: float
    candidates: List[FleetCandidate]
    best: Optional[FleetCandidate]

    def format(self) -> str:
        from repro.harness.tables import format_table

        rows = []
        for cand in self.candidates:
            marker = ""
            if cand is self.best:
                marker = "<= best"
            elif cand.feasible:
                marker = "ok"
            cpf = cand.cost_per_frame
            rows.append(
                [
                    cand.spec.replicas,
                    "+".join(cand.spec.devices),
                    cand.spec.policy.max_batch_size,
                    cand.p99_ms,
                    cand.report.frames_shed,
                    len(cand.report.dead_streams),
                    cand.report.replica_seconds,
                    None if not math.isfinite(cpf) else cpf * 1e3,
                    marker,
                ]
            )
        table = format_table(
            ["replicas", "devices", "batch", "p99(ms)", "shed", "dead",
             "repl-s", "cost/kf", ""],
            rows,
            precision=3,
            title=f"Fleet sweep — SLO p99 <= {self.slo_p99_ms:.0f} ms",
        )
        if self.best is None:
            verdict = (
                f"no swept fleet meets p99 <= {self.slo_p99_ms:.0f} ms "
                "without shedding or starving a stream — "
                "widen the sweep or relax the SLO"
            )
        else:
            spec = self.best.spec
            verdict = (
                f"best fleet: {spec.replicas} replica(s) on "
                f"{'+'.join(spec.devices)}, "
                f"max_batch_size={spec.policy.max_batch_size} "
                f"(p99 {self.best.p99_ms:.1f} ms, "
                f"cost/frame {self.best.cost_per_frame:.6f})"
            )
        return f"{table}\n{verdict}"


def tune_fleet(
    session,
    spec: FleetSpec,
    *,
    slo_p99_ms: float,
    replica_counts: Seq[int] = DEFAULT_REPLICA_COUNTS,
    device_mixes: Optional[Seq[Tuple[str, ...]]] = None,
    batch_sizes: Optional[Seq[int]] = None,
    use_cache: bool = True,
    on_progress: Optional[Callable[[int, int, str], None]] = None,
    workers: Optional[int] = None,
) -> FleetTuneResult:
    """Sweep static fleet shapes and pick the cheapest feasible one.

    Every point is ``spec`` with its ``replicas`` / ``devices`` /
    ``policy.max_batch_size`` replaced and the autoscaler removed — the
    system, dataset, load, placement and remaining policy knobs are held
    fixed, so the sweep isolates the capacity question.

    Parameters
    ----------
    session:
        A :class:`repro.api.session.Session` (supplies the report cache).
    spec:
        The base fleet to size.
    slo_p99_ms:
        Feasibility target for the fleet p99 end-to-end latency.
    replica_counts:
        Replica-count axis.
    device_mixes:
        Device-cycle axis; defaults to just ``spec.devices``.
    batch_sizes:
        Batching axis; defaults to just ``spec.policy.max_batch_size``.
    on_progress:
        Optional ``callback(done, total, label)`` per evaluated point —
        grid order when serial, completion order under ``workers``.
    workers:
        Evaluate cold grid points in ``workers`` processes sharing the
        session's cache (``0`` = one per core, ``None``/``1`` = serial);
        all fleet shapes of one deployment replay a single compute
        trace, so results are identical at any worker count.
    """
    if slo_p99_ms <= 0:
        raise ValueError(f"slo_p99_ms must be positive, got {slo_p99_ms}")
    if not replica_counts:
        raise ValueError("replica_counts must be non-empty")
    mixes: List[Tuple[str, ...]] = (
        [tuple(spec.devices)]
        if device_mixes is None
        else [tuple(m) for m in device_mixes]
    )
    batches: List[int] = (
        [spec.policy.max_batch_size]
        if batch_sizes is None
        else [int(b) for b in batch_sizes]
    )
    if not mixes or not batches:
        raise ValueError("device_mixes and batch_sizes must be non-empty")
    grid = [
        (int(count), mix, batch)
        for count in replica_counts
        for mix in mixes
        for batch in batches
    ]
    from repro.serve.tune import sweep_reports

    points: List[FleetSpec] = []
    labels: List[str] = []
    for count, mix, batch in grid:
        points.append(
            replace(
                spec,
                replicas=count,
                devices=mix,
                autoscaler=None,
                policy=replace(spec.policy, max_batch_size=batch),
            )
        )
        labels.append(f"replicas={count} devices={'+'.join(mix)} batch={batch}")

    done = 0

    def progress(label: str) -> None:
        nonlocal done
        done += 1
        if on_progress is not None:
            on_progress(done, len(grid), label)

    reports = sweep_reports(
        session,
        "fleet",
        points,
        labels,
        use_cache=use_cache,
        workers=workers,
        progress=progress,
    )
    candidates: List[FleetCandidate] = []
    for point, report in zip(points, reports):
        feasible = (
            float(report.slo["fleet"]["p99_ms"]) <= slo_p99_ms
            and report.frames_shed == 0
            and not report.dead_streams
        )
        candidates.append(
            FleetCandidate(spec=point, report=report, feasible=feasible)
        )
    feasible = [c for c in candidates if c.feasible]
    best = min(feasible, key=FleetCandidate.sort_key) if feasible else None
    return FleetTuneResult(
        slo_p99_ms=slo_p99_ms, candidates=candidates, best=best
    )
