"""Stream-to-replica routing: sticky pins plus pluggable placement.

The router answers one question — *which replica serves this stream?* —
and answers it **once** per stream: the first frame of a stream picks a
replica via the placement policy, and every later frame follows the pin.
Sticky routing is what makes replication correctness-preserving: all of
a stream's state (tracker identities, scenario-query windows, frame
sequence numbers) lives wherever its frames go, so frames of one stream
must never interleave across replicas.  Rebalancing therefore moves the
*pin* (plus any still-queued frames) — never an in-flight frame, whose
results were already computed at dispatch time.

Placement policies are registered by name (the same plugin idiom as
load patterns and dataset families)::

    from repro.fleet import register_placement

    @register_placement("random-ish")
    def _place(stream, replicas):
        ...  # -> the chosen replica

Policies are deterministic functions of the candidate replicas' state;
ties always break toward the lowest replica index so routing is stable
under dict-ordering accidents.
"""

from __future__ import annotations

from typing import Dict, List

from repro.api.registry import Registry

#: Placement-policy name → ``(stream, replicas) -> replica``.
PLACEMENT_POLICIES = Registry("placement policy")


def register_placement(name: str, *, override: bool = False):
    """Decorator registering a placement policy under ``name``."""

    def _decorate(fn):
        PLACEMENT_POLICIES.register(name, fn, override=override)
        return fn

    return _decorate


@register_placement("least_loaded")
def _least_loaded(stream: str, replicas: List) -> object:
    """The replica with the shallowest queue (the classic default).

    Reads the same queue-depth signal the ``serve_queue_depth`` gauge
    exports, so "load" here is exactly what the dashboards show.
    """
    return min(replicas, key=lambda r: (r.queue_depth, r.index))


@register_placement("round_robin")
def _round_robin(stream: str, replicas: List) -> object:
    """Cycle by pin count — spreads *streams* evenly, ignoring their rates."""
    return min(replicas, key=lambda r: (r.pinned_streams, r.index))


@register_placement("cost_aware")
def _cost_aware(stream: str, replicas: List) -> object:
    """Prefer the cheapest replica that still has queue headroom.

    With a heterogeneous fleet (edge + datacenter), filling cheap
    capacity first minimizes cost-per-frame; the expensive replicas
    absorb the overflow.  A replica has headroom while its queue sits
    below half its capacity — past that, sending more streams to it
    trades money for latency, so fall back to least-loaded over all.
    """
    cheap = [r for r in replicas if r.queue_depth < max(1, r.queue_capacity // 2)]
    if cheap:
        return min(cheap, key=lambda r: (r.cost_per_second, r.queue_depth, r.index))
    return min(replicas, key=lambda r: (r.queue_depth, r.index))


class FleetRouter:
    """Sticky stream-to-replica pins over a placement policy.

    The router holds only the pin table; replica lifecycle (spawn,
    drain, retire) belongs to the :class:`~repro.fleet.replica.ReplicaSet`
    and the control loop — they call :meth:`repin` when moving streams.
    """

    def __init__(self, placement: str = "least_loaded") -> None:
        self.placement = placement
        self._place = PLACEMENT_POLICIES.get(placement)
        self.pins: Dict[str, int] = {}

    def route(self, stream: str, replicas: List) -> object:
        """The replica serving ``stream``, pinning it on first sight.

        ``replicas`` are the currently *active* replicas (placement
        candidates).  If a stream's pin points at a replica no longer in
        the candidate list (the control loop drains replicas by
        re-pinning first, so this is a should-not-happen backstop), the
        stream is placed afresh.
        """
        if not replicas:
            raise ValueError("cannot route: no active replicas")
        index = self.pins.get(stream)
        if index is not None:
            for replica in replicas:
                if replica.index == index:
                    return replica
        chosen = self._place(stream, replicas)
        self.pins[stream] = chosen.index
        chosen.pinned_streams += 1
        return chosen

    def repin(self, stream: str, source, target) -> None:
        """Move ``stream``'s pin from ``source`` to ``target``.

        Bookkeeping only — the caller moves the stream's queued frames.
        ``source`` may be ``None`` for a not-yet-pinned stream.
        """
        if self.pins.get(stream) == target.index:
            return
        self.pins[stream] = target.index
        target.pinned_streams += 1
        if source is not None:
            source.pinned_streams -= 1

    def streams_on(self, replica) -> List[str]:
        """Streams currently pinned to ``replica``, in sorted order."""
        return sorted(s for s, i in self.pins.items() if i == replica.index)
