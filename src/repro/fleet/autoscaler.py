"""The metrics-driven control loop sizing the fleet.

The autoscaler is deliberately *not* clairvoyant: it reads only the
observability signals any operator could read off the PR-7 dashboards —
the per-replica ``serve_queue_wait_seconds`` / ``serve_compute_seconds``
/ ``serve_batch_size`` histograms — and it reads them **windowed**: each
control tick diffs the cumulative bucket counts against the previous
tick's, so decisions reflect what happened *since the last look*, not a
lifetime average that an old burst would pollute forever.

The two rules (see :class:`~repro.fleet.spec.AutoscalerPolicy` for the
knobs):

* **Scale out on wait, not latency.**  p99 latency alone cannot say
  whether another replica would help: if *compute* dominates, frames are
  slow because the model is expensive and more replicas just idle.  Only
  when the windowed queue-wait p95 both eats a configured share of the
  SLO budget *and* exceeds the windowed compute p95 is the fleet
  actually under-provisioned.
* **Scale in on occupancy collapse.**  When windowed mean batch size
  falls below a fraction of the batch-size cap while waits are
  comfortable, replicas are dispatching fragments — capacity is idling
  and the cheapest-to-lose replica can drain.

Quantiles over a *window* come from the diffed bucket counts with a
conservative upper-bound estimate (the bucket's upper edge), so the
controller never scales out on an optimistic read.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.fleet.replica import ACTIVE, Replica
from repro.fleet.spec import AutoscalerPolicy

#: Scale-action names (also the ``action`` field of ``fleet.scale``
#: sink records and the label of ``fleet_scale_events_total``).
SCALE_OUT = "scale_out"
SCALE_IN = "scale_in"

#: The histograms the controller windows, per replica.
_WINDOWED = (
    "serve_queue_wait_seconds",
    "serve_compute_seconds",
    "serve_batch_size",
)


@dataclass(frozen=True)
class Decision:
    """One control-tick verdict: what to do and the signal that said so."""

    action: str  # SCALE_OUT or SCALE_IN
    reason: str
    signals: Dict[str, float]


class _Window:
    """Merged bucket-count deltas of one histogram across the fleet."""

    __slots__ = ("bounds", "counts", "count", "sum")

    def __init__(self, bounds: Tuple[float, ...]) -> None:
        self.bounds = bounds
        self.counts = [0] * (len(bounds) + 1)
        self.count = 0
        self.sum = 0.0

    def add(self, counts: List[int], count: int, total: float) -> None:
        for i, c in enumerate(counts):
            self.counts[i] += c
        self.count += count
        self.sum += total

    @property
    def mean(self) -> float:
        return self.sum / self.count if self.count else 0.0

    def quantile_upper(self, q: float) -> float:
        """Conservative ``q``-th percentile: the holding bucket's upper edge.

        Overflow clamps to the last bound — an underestimate there, but
        by then the signal is far past any threshold that matters.
        """
        if not self.count:
            return 0.0
        rank = max(1, math.ceil(q / 100.0 * self.count))
        remaining = rank
        for i, c in enumerate(self.counts):
            remaining -= c
            if remaining <= 0:
                return self.bounds[min(i, len(self.bounds) - 1)]
        return self.bounds[-1]  # pragma: no cover - counts sum == count


class Autoscaler:
    """Windowed, hysteretic replica-count controller.

    The autoscaler only *decides*; executing a decision (spawning,
    draining, re-pinning streams) is the
    :class:`~repro.fleet.server.FleetServer`'s job, because moving
    streams safely needs the fleet's routing and queue state.
    """

    def __init__(self, policy: AutoscalerPolicy, max_batch_size: int) -> None:
        self.policy = policy
        self.max_batch_size = max_batch_size
        self.next_check = policy.interval_s
        self._last_action: Optional[float] = None
        # (replica index, metric) -> cumulative (counts, count, sum) at
        # the previous tick; the diff against it is the tick's window.
        self._prev: Dict[Tuple[int, str], Tuple[List[int], int, float]] = {}
        self.last_signals: Dict[str, float] = {}

    # ------------------------------------------------------------------ #

    def _window(self, name: str, replicas: List[Replica]) -> _Window:
        window: Optional[_Window] = None
        for replica in replicas:
            metric = replica.metrics.get(name)
            if metric is None:  # pragma: no cover - handles exist from birth
                continue
            if window is None:
                window = _Window(metric.bounds)
            snap = metric.snapshot()
            for series in snap["series"]:
                counts = series["counts"]
                count = series["count"]
                total = series["sum"]
                key = (replica.index, name)
                prev = self._prev.get(key)
                if prev is None:
                    delta = (list(counts), count, total)
                else:
                    delta = (
                        [c - p for c, p in zip(counts, prev[0])],
                        count - prev[1],
                        total - prev[2],
                    )
                self._prev[key] = (list(counts), count, total)
                window.add(*delta)
        if window is None:
            window = _Window((0.0,))
        return window

    def _cooled_down(self, now: float) -> bool:
        return (
            self._last_action is None
            or now - self._last_action >= self.policy.cooldown_s
        )

    # ------------------------------------------------------------------ #

    def tick(self, now: float, replicas: List[Replica]) -> Optional[Decision]:
        """One control tick over the serving replicas.

        Always consumes the window (so the next tick's diff starts
        here) and advances ``next_check``; returns a :class:`Decision`
        or ``None`` to hold.
        """
        while self.next_check <= now:
            self.next_check += self.policy.interval_s
        wait = self._window("serve_queue_wait_seconds", replicas)
        compute = self._window("serve_compute_seconds", replicas)
        batch = self._window("serve_batch_size", replicas)

        wait_p95 = wait.quantile_upper(95.0)
        compute_p95 = compute.quantile_upper(95.0)
        occupancy = batch.mean
        active = sum(1 for r in replicas if r.state == ACTIVE)
        budget = self.policy.slo_p99_ms / 1e3
        wait_limit = self.policy.scale_out_wait_share * budget
        self.last_signals = {
            "wait_p95_ms": wait_p95 * 1e3,
            "compute_p95_ms": compute_p95 * 1e3,
            "occupancy": occupancy,
            "active_replicas": active,
        }
        if not self._cooled_down(now):
            return None
        if (
            wait_p95 > wait_limit
            and wait_p95 > compute_p95
            and active < self.policy.max_replicas
        ):
            self._last_action = now
            return Decision(
                action=SCALE_OUT,
                reason=(
                    f"queue-wait p95 {wait_p95 * 1e3:.0f} ms exceeds "
                    f"{self.policy.scale_out_wait_share:.0%} of the "
                    f"{self.policy.slo_p99_ms:.0f} ms budget and dominates "
                    f"compute p95 {compute_p95 * 1e3:.0f} ms"
                ),
                signals=dict(self.last_signals),
            )
        if (
            occupancy < self.policy.scale_in_occupancy * self.max_batch_size
            and wait_p95 <= 0.5 * wait_limit
            and active > self.policy.min_replicas
        ):
            self._last_action = now
            return Decision(
                action=SCALE_IN,
                reason=(
                    f"batch occupancy {occupancy:.2f} below "
                    f"{self.policy.scale_in_occupancy:.0%} of the "
                    f"{self.max_batch_size}-frame cap with queue-wait p95 "
                    f"{wait_p95 * 1e3:.0f} ms well inside budget"
                ),
                signals=dict(self.last_signals),
            )
        return None
