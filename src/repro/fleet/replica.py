"""Replica servers and their lifecycle: spawn, serve, drain, retire.

A :class:`Replica` is one serving slot of the fleet — its own device
profile, micro-batcher, frame queue and :class:`~repro.obs.registry.
MetricsRegistry` — everything a :class:`~repro.serve.server.
DetectionServer` owns *except* the per-stream pipeline state, which the
:class:`~repro.fleet.server.FleetServer` keeps fleet-wide so streams can
move between replicas without losing tracker identities or query-window
causality.

The :class:`ReplicaSet` owns the pool: it spawns replicas over the
spec's device cycle, drains the ones the autoscaler retires (a draining
replica finishes its in-flight batch but accepts nothing new), and
converts the pool's history into the two numbers the tuner cares about —
**replica-seconds** (allocated capacity over time) and **cost** (those
seconds priced at each device's hourly rate).
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.cost import get_device
from repro.obs.registry import (
    DEFAULT_LATENCY_BUCKETS,
    DEFAULT_SIZE_BUCKETS,
    MetricsRegistry,
)
from repro.serve.batcher import MicroBatcher, QueuedFrame
from repro.serve.server import ServePolicy, ServiceModel

#: Replica lifecycle states.
ACTIVE = "active"  # serving and a placement candidate
DRAINING = "draining"  # finishing in-flight work; no new streams/frames
RETIRED = "retired"  # fully stopped; billing clock ended


class Replica:
    """One serving slot: a device, a queue, a batcher, and its metrics."""

    def __init__(
        self,
        index: int,
        device: str,
        policy: ServePolicy,
        spawned_at: float,
    ) -> None:
        self.index = index
        self.name = f"r{index}"
        self.device = device
        self.profile = get_device(device)
        self.service = ServiceModel.for_device(device)
        self.policy = policy
        self.batcher = MicroBatcher(
            max_batch_size=policy.max_batch_size,
            max_wait=policy.max_wait_ms / 1e3,
        )
        self.queue: List[QueuedFrame] = []
        self.busy_until: Optional[float] = None
        self.state = ACTIVE
        self.spawned_at = spawned_at
        self.retired_at: Optional[float] = None
        self.pinned_streams = 0
        # Lifetime totals (the per-replica rows of the fleet report).
        self.frames = 0
        self.batches = 0
        self.invocations = 0
        self.busy_seconds = 0.0
        # Each replica gets its own registry — the same instruments a
        # standalone DetectionServer exports, so per-replica dashboards
        # and the fleet-level merge both read familiar names.  The
        # autoscaler diffs the wait/compute/batch-size histograms
        # between control ticks for its windowed signals.
        self.metrics = MetricsRegistry()
        self.m_frames = self.metrics.counter(
            "serve_frames_total", "frames through the replica", labels=("direction",)
        )
        self.m_drops = self.metrics.counter(
            "serve_drops_total", "frames dropped, by reason", labels=("reason",)
        )
        self.m_batches = self.metrics.counter(
            "serve_batches_total", "dispatched batches"
        )
        self.m_invocations = self.metrics.counter(
            "serve_invocations_total", "batched detector invocations"
        )
        self.m_wait = self.metrics.histogram(
            "serve_queue_wait_seconds", "arrival to dispatch",
            buckets=DEFAULT_LATENCY_BUCKETS,
        )
        self.m_compute = self.metrics.histogram(
            "serve_compute_seconds", "modeled batch service time",
            buckets=DEFAULT_LATENCY_BUCKETS,
        )
        self.m_latency = self.metrics.histogram(
            "serve_latency_seconds", "arrival to completion",
            buckets=DEFAULT_LATENCY_BUCKETS,
        )
        self.m_batch_size = self.metrics.histogram(
            "serve_batch_size", "frames per dispatched batch",
            buckets=DEFAULT_SIZE_BUCKETS,
        )
        self.m_depth = self.metrics.gauge(
            "serve_queue_depth", "admitted frames awaiting dispatch"
        )

    # ------------------------------------------------------------------ #

    @property
    def queue_depth(self) -> int:
        return len(self.queue)

    @property
    def queue_capacity(self) -> int:
        return self.policy.queue_capacity

    @property
    def cost_per_second(self) -> float:
        return self.profile.cost_per_second

    @property
    def idle(self) -> bool:
        return self.busy_until is None

    def alive_seconds(self, makespan: float) -> float:
        """Billed wall time: spawn to retirement (or end of run)."""
        end = self.retired_at if self.retired_at is not None else makespan
        return max(0.0, end - self.spawned_at)

    def cost(self, makespan: float) -> float:
        """Allocation cost: billed seconds at the device's hourly rate."""
        return self.alive_seconds(makespan) * self.cost_per_second

    def to_dict(self, makespan: float) -> Dict[str, object]:
        return {
            "name": self.name,
            "device": self.device,
            "spawned_s": self.spawned_at,
            "retired_s": self.retired_at,
            "frames": self.frames,
            "batches": self.batches,
            "invocations": self.invocations,
            "busy_seconds": self.busy_seconds,
            "alive_seconds": self.alive_seconds(makespan),
            "cost": self.cost(makespan),
        }


class ReplicaSet:
    """The fleet's replica pool and its billing history.

    Retired replicas stay in ``replicas`` (their lifetime still bills);
    only :meth:`active` members are placement candidates, and
    :meth:`serving` members (active + draining) may still dispatch.
    """

    def __init__(self, spec) -> None:
        self.spec = spec
        self.replicas: List[Replica] = []
        self._next_index = 0

    def spawn(self, now: float) -> Replica:
        """Bring up the next replica on the device cycle's next profile."""
        replica = Replica(
            index=self._next_index,
            device=self.spec.device_for(self._next_index),
            policy=self.spec.policy,
            spawned_at=now,
        )
        self._next_index += 1
        self.replicas.append(replica)
        return replica

    def active(self) -> List[Replica]:
        return [r for r in self.replicas if r.state == ACTIVE]

    def serving(self) -> List[Replica]:
        return [r for r in self.replicas if r.state in (ACTIVE, DRAINING)]

    def drain(self, replica: Replica) -> None:
        """Stop routing to ``replica``; it retires once idle and empty."""
        if replica.state == ACTIVE:
            replica.state = DRAINING

    def retire_idle(self, now: float) -> List[Replica]:
        """Retire draining replicas with no queue and no in-flight batch."""
        done = []
        for replica in self.replicas:
            if (
                replica.state == DRAINING
                and replica.idle
                and not replica.queue
            ):
                replica.state = RETIRED
                replica.retired_at = now
                done.append(replica)
        return done

    def replica_seconds(self, makespan: float) -> float:
        """Total allocated capacity: the sum of every replica's lifetime."""
        return sum(r.alive_seconds(makespan) for r in self.replicas)

    def cost(self, makespan: float) -> float:
        """Fleet allocation cost over the run."""
        return sum(r.cost(makespan) for r in self.replicas)
