"""From-scratch Hungarian (Kuhn–Munkres) assignment solver."""

from repro.hungarian.hungarian import hungarian, linear_sum_assignment

__all__ = ["hungarian", "linear_sum_assignment"]
