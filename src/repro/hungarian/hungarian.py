"""Hungarian algorithm (Kuhn–Munkres) for minimum-cost bipartite matching.

The tracker's object-association step (paper §4.1) solves an N-to-M
assignment over a negative-IoU cost matrix.  SciPy ships a solver, but the
paper's substrate is reimplemented here from scratch; the SciPy version is
used in tests as a reference oracle.

The implementation is the O(n^2 m) shortest-augmenting-path formulation with
dual potentials (the classic Jonker–Volgenant / "e-maxx" variant), operating
on rectangular matrices by transposing so rows are the smaller side.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np


def hungarian(cost: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
    """Solve the rectangular linear sum assignment problem (minimization).

    Parameters
    ----------
    cost : (N, M) array
        Finite cost matrix.  When ``N != M`` the smaller side is fully
        matched and the larger side partially.

    Returns
    -------
    row_indices, col_indices : int arrays
        Matched pairs ``(row_indices[k], col_indices[k])``, sorted by row.
        Length is ``min(N, M)``.

    Raises
    ------
    ValueError
        If the matrix contains NaN or +/-inf, or is not 2-D.
    """
    cost = np.asarray(cost, dtype=np.float64)
    if cost.ndim != 2:
        raise ValueError(f"cost must be 2-D, got {cost.ndim}-D")
    n, m = cost.shape
    if n == 0 or m == 0:
        return np.zeros(0, dtype=np.int64), np.zeros(0, dtype=np.int64)
    if not np.all(np.isfinite(cost)):
        raise ValueError("cost matrix must be finite")

    transposed = n > m
    if transposed:
        cost = cost.T
        n, m = m, n

    # Fast path: a single row is matched to its cheapest column, exactly as
    # the augmenting-path search would (np.argmin picks the first minimum,
    # matching the search's column order).
    if n == 1:
        return _finish(np.zeros(1, dtype=np.int64), np.array([np.argmin(cost[0])], dtype=np.int64), transposed)

    # Fast path for diagonal-dominant instances (the common association case
    # where every track overlaps one detection far more than the others):
    # when each row's minimum is strictly unique within the row and the
    # argmin columns are pairwise distinct, that assignment attains the
    # row-minima lower bound and any other assignment is strictly worse, so
    # it is the unique optimum — identical to the full algorithm's output.
    argmins = np.argmin(cost, axis=1)
    row_mins = cost[np.arange(n), argmins]
    strictly_unique = np.count_nonzero(cost == row_mins[:, None], axis=1) == 1
    if strictly_unique.all() and np.unique(argmins).size == n:
        return _finish(np.arange(n, dtype=np.int64), argmins.astype(np.int64), transposed)

    # Pad to 1-indexed internal arrays; column 0 is the virtual start column.
    a = np.zeros((n + 1, m + 1))
    a[1:, 1:] = cost

    u = np.zeros(n + 1)
    v = np.zeros(m + 1)
    p = np.zeros(m + 1, dtype=np.int64)  # p[j]: row matched to column j (0 = free)
    way = np.zeros(m + 1, dtype=np.int64)

    for i in range(1, n + 1):
        p[0] = i
        j0 = 0
        minv = np.full(m + 1, np.inf)
        used = np.zeros(m + 1, dtype=bool)
        while True:
            used[j0] = True
            i0 = p[j0]
            # Relax edges from row i0 to all unused columns (vectorized).
            free = ~used[1:]
            cur = a[i0, 1:] - u[i0] - v[1:]
            better = free & (cur < minv[1:])
            minv[1:] = np.where(better, cur, minv[1:])
            way[1:] = np.where(better, j0, way[1:])
            candidates = np.where(free, minv[1:], np.inf)
            j1 = int(np.argmin(candidates)) + 1
            delta = candidates[j1 - 1]
            if not np.isfinite(delta):  # pragma: no cover - finite input guard
                raise RuntimeError("augmenting path search failed on finite input")
            # Update dual potentials.
            u[p[used]] += delta
            v[used] -= delta
            minv[~used] -= delta
            j0 = j1
            if p[j0] == 0:
                break
        # Augment along the alternating path back to the virtual column.
        while j0 != 0:
            j1 = way[j0]
            p[j0] = p[j1]
            j0 = j1

    rows = p[1:] - 1
    cols = np.arange(m)
    valid = rows >= 0
    return _finish(rows[valid].astype(np.int64), cols[valid].astype(np.int64), transposed)


def _finish(
    row_indices: np.ndarray, col_indices: np.ndarray, transposed: bool
) -> Tuple[np.ndarray, np.ndarray]:
    """Undo the transpose and sort matched pairs by row index."""
    if transposed:
        row_indices, col_indices = col_indices, row_indices
    order = np.argsort(row_indices, kind="stable")
    return row_indices[order], col_indices[order]


def linear_sum_assignment(cost: np.ndarray, maximize: bool = False) -> Tuple[np.ndarray, np.ndarray]:
    """Drop-in equivalent of :func:`scipy.optimize.linear_sum_assignment`.

    Thin wrapper over :func:`hungarian` adding the ``maximize`` flag.
    """
    cost = np.asarray(cost, dtype=np.float64)
    if maximize:
        cost = -cost
    return hungarian(cost)
