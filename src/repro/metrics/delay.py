"""The paper's mean Delay metric (§5).

Delay of one ground-truth object = number of frames from its first
(evaluated) appearance to the first frame a detection matches it.  Because
delay only penalizes false negatives, methods are compared at a fixed
precision: ``mD@beta`` selects the confidence threshold ``t_beta`` at which
the *mean precision over classes* equals ``beta`` (equation 5) and reports
the per-class average delay at that threshold (equation 4).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Tuple

import numpy as np


@dataclass
class TrackDelayRecord:
    """Matched-detection scores over one track's evaluated frames.

    ``frames`` are absolute frame indices where the track was annotated
    (delay runs from an object's *first appearance*, §5 — including early
    frames where it is still below the difficulty bar);
    ``matched_scores[i]`` is the confidence of the detection that claimed
    the track in ``frames[i]`` (``-inf`` when missed).  ``ever_cared``
    records whether the track met the difficulty bar in any frame — only
    such tracks enter the delay average.
    """

    frames: List[int] = field(default_factory=list)
    matched_scores: List[float] = field(default_factory=list)
    ever_cared: bool = False

    def append(self, frame: int, score: float, cared: bool = True) -> None:
        self.frames.append(frame)
        self.matched_scores.append(score)
        self.ever_cared = self.ever_cared or cared

    def delay_at(self, threshold: float) -> int:
        """Frames from first appearance to first detection at ``threshold``.

        An object never detected gets the maximal delay: its full evaluated
        length (it was missed for its entire lifetime).
        """
        scores = np.asarray(self.matched_scores)
        hits = np.flatnonzero(scores >= threshold)
        if hits.size == 0:
            return len(self.matched_scores)
        return int(hits[0])

    def exit_delay_at(self, threshold: float) -> int:
        """Exit delay (paper §5): actual exit frame minus predicted exit.

        The system implicitly predicts an object's exit when it stops
        detecting it, so the exit delay is the number of trailing frames
        in which the object was still present but no longer detected.
        Objects never detected get the maximal value, their full length.
        """
        scores = np.asarray(self.matched_scores)
        hits = np.flatnonzero(scores >= threshold)
        if hits.size == 0:
            return len(self.matched_scores)
        return int(len(self.matched_scores) - 1 - hits[-1])

    def __len__(self) -> int:
        return len(self.frames)


@dataclass
class DelayEvaluation:
    """Per-class delay inputs: detection score/TP pools + track records."""

    scores: np.ndarray
    tp: np.ndarray
    tracks: List[TrackDelayRecord]

    def precision_at(self, threshold: float) -> float:
        """Precision of this class's detections at ``threshold``.

        Returns 1.0 when no detections survive (vacuous precision — matches
        the convention that raising the threshold never *lowers* measured
        precision to 0 by emptiness).
        """
        keep = self.scores >= threshold
        total = int(keep.sum())
        if total == 0:
            return 1.0
        return float(self.tp[keep].sum()) / total

    def mean_delay(self, threshold: float) -> float:
        """Average delay over tracks at ``threshold`` (NaN with no tracks)."""
        if not self.tracks:
            return float("nan")
        return float(np.mean([t.delay_at(threshold) for t in self.tracks]))

    def mean_exit_delay(self, threshold: float) -> float:
        """Average exit delay over tracks (NaN with no tracks)."""
        if not self.tracks:
            return float("nan")
        return float(np.mean([t.exit_delay_at(threshold) for t in self.tracks]))


def threshold_for_precision(
    per_class: Sequence[DelayEvaluation],
    beta: float,
    *,
    num_candidates: int = 512,
) -> float:
    """Find ``t_beta`` with mean precision over classes closest to ``beta``.

    Candidate thresholds are quantiles of the pooled score distribution
    (plus its extremes); the candidate whose mean precision is nearest to
    ``beta`` wins, with ties broken toward the *lower* threshold (more
    detections, less delay — the conservative choice for comparing methods).
    """
    if not (0.0 < beta <= 1.0):
        raise ValueError(f"beta must lie in (0, 1], got {beta}")
    if not per_class:
        raise ValueError("per_class must be non-empty")
    pooled = np.concatenate([c.scores for c in per_class]) if per_class else np.zeros(0)
    if pooled.size == 0:
        return 0.0
    qs = np.quantile(pooled, np.linspace(0.0, 1.0, num_candidates))
    candidates = np.unique(np.concatenate([[0.0], qs, [pooled.max() + 1e-9]]))
    best_t = candidates[0]
    best_err = np.inf
    for t in candidates:
        mean_prec = float(np.mean([c.precision_at(t) for c in per_class]))
        err = abs(mean_prec - beta)
        if err < best_err - 1e-12:
            best_err = err
            best_t = t
    return float(best_t)


def delay_at_threshold(per_class: Sequence[DelayEvaluation], threshold: float) -> float:
    """Mean over classes of per-class average delay (equation 4)."""
    values = [c.mean_delay(threshold) for c in per_class if c.tracks]
    if not values:
        return float("nan")
    return float(np.mean(values))


def mean_delay_at_precision(
    per_class: Sequence[DelayEvaluation], beta: float = 0.8
) -> Tuple[float, float]:
    """``mD@beta``: returns ``(mean_delay, t_beta)``."""
    t_beta = threshold_for_precision(per_class, beta)
    return delay_at_threshold(per_class, t_beta), t_beta
