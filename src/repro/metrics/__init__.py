"""Evaluation metrics: mAP (VOC-style) and the paper's mean Delay (mD@beta).

The pipeline is: per-frame greedy matching of detections to ground truth
(with KITTI-style difficulty filtering and ignore handling), pooled into
per-class score/TP arrays for AP, and per-track matched-score series for
delay.  ``mD@beta`` picks the score threshold at which mean precision over
classes equals ``beta`` and reports the average first-detection delay.
"""

from repro.metrics.matching import FrameMatchResult, match_frame
from repro.metrics.kitti_eval import (
    EASY,
    HARD,
    MODERATE,
    DifficultyFilter,
    care_mask,
)
from repro.metrics.ap import average_precision, interpolated_precision_at
from repro.metrics.delay import (
    DelayEvaluation,
    delay_at_threshold,
    mean_delay_at_precision,
    threshold_for_precision,
)
from repro.metrics.evaluate import (
    ClassEvaluation,
    EvaluationResult,
    evaluate_dataset,
)
from repro.metrics.curves import precision_recall_delay_curves, CurvePoint

__all__ = [
    "FrameMatchResult",
    "match_frame",
    "EASY",
    "MODERATE",
    "HARD",
    "DifficultyFilter",
    "care_mask",
    "average_precision",
    "interpolated_precision_at",
    "DelayEvaluation",
    "delay_at_threshold",
    "mean_delay_at_precision",
    "threshold_for_precision",
    "ClassEvaluation",
    "EvaluationResult",
    "evaluate_dataset",
    "precision_recall_delay_curves",
    "CurvePoint",
]
