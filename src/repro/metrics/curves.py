"""Recall/delay vs. precision curves (paper Figure 7).

For a grid of score thresholds, computes the operating point (precision,
recall, mean delay) of one class — showing the strong correlation between
recall and delay the paper highlights.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

import numpy as np

from repro.metrics.evaluate import ClassEvaluation


@dataclass(frozen=True)
class CurvePoint:
    """One operating point on the precision/recall/delay trade-off."""

    threshold: float
    precision: float
    recall: float
    mean_delay: float


def precision_recall_delay_curves(
    class_eval: ClassEvaluation,
    *,
    num_points: int = 64,
) -> List[CurvePoint]:
    """Sweep thresholds over one class's detections.

    Thresholds are score quantiles, so points spread evenly over the
    detection set.  Points are returned in increasing-threshold order
    (i.e. increasing precision, decreasing recall — left to right matches
    the paper's x-axis).
    """
    if num_points < 2:
        raise ValueError(f"num_points must be >= 2, got {num_points}")
    delay_eval = class_eval.as_delay_eval()
    if class_eval.scores.size == 0:
        return []
    thresholds = np.unique(
        np.quantile(class_eval.scores, np.linspace(0.0, 1.0, num_points))
    )
    points: List[CurvePoint] = []
    for t in thresholds:
        points.append(
            CurvePoint(
                threshold=float(t),
                precision=delay_eval.precision_at(float(t)),
                recall=class_eval.recall_at(float(t)),
                mean_delay=delay_eval.mean_delay(float(t)),
            )
        )
    return points
