"""Average Precision computation (Pascal VOC style).

Supports the classic 11-point interpolation the paper's era used ("11 recall
values ranging from 0 to 1.0 are averaged", §5) as well as the continuous
(every-point) integral.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np


def _pr_points(
    scores: np.ndarray, tp: np.ndarray, num_gt: int
) -> Tuple[np.ndarray, np.ndarray]:
    """Cumulative precision/recall arrays ordered by descending score."""
    scores = np.asarray(scores, dtype=np.float64).reshape(-1)
    tp = np.asarray(tp, dtype=bool).reshape(-1)
    if scores.shape[0] != tp.shape[0]:
        raise ValueError("scores and tp must have equal length")
    order = np.argsort(-scores, kind="stable")
    tp_sorted = tp[order]
    cum_tp = np.cumsum(tp_sorted)
    cum_fp = np.cumsum(~tp_sorted)
    precision = cum_tp / np.maximum(cum_tp + cum_fp, 1)
    recall = cum_tp / max(num_gt, 1)
    return precision, recall


def average_precision(
    scores: np.ndarray,
    tp: np.ndarray,
    num_gt: int,
    *,
    method: str = "r40",
) -> float:
    """AP from pooled detection scores and TP flags.

    Parameters
    ----------
    scores : (D,) array
        Confidence of every non-ignored detection of this class.
    tp : (D,) bool array
        Whether each detection matched a cared ground truth.
    num_gt:
        Number of cared ground-truth instances.
    method:
        ``"voc11"`` (11-point interpolation, the Pascal VOC convention the
        paper cites), ``"r40"`` (40 recall points excluding 0, the official
        KITTI interpolation — finer-grained, the library default), or
        ``"continuous"`` (area under the interpolated PR curve).
    """
    if num_gt < 0:
        raise ValueError(f"num_gt must be >= 0, got {num_gt}")
    if num_gt == 0:
        return 0.0
    if np.asarray(scores).size == 0:
        return 0.0

    precision, recall = _pr_points(scores, tp, num_gt)
    if method == "voc11":
        ap = 0.0
        for r in np.linspace(0.0, 1.0, 11):
            mask = recall >= r
            p = float(precision[mask].max()) if mask.any() else 0.0
            ap += p / 11.0
        return min(ap, 1.0)  # guard against float accumulation past 1.0
    if method == "r40":
        ap = 0.0
        for r in np.linspace(0.025, 1.0, 40):
            mask = recall >= r
            p = float(precision[mask].max()) if mask.any() else 0.0
            ap += p / 40.0
        return min(ap, 1.0)
    if method == "continuous":
        # Monotone non-increasing interpolated precision envelope.
        mrec = np.concatenate([[0.0], recall, [1.0]])
        mpre = np.concatenate([[0.0], precision, [0.0]])
        for i in range(mpre.shape[0] - 2, -1, -1):
            mpre[i] = max(mpre[i], mpre[i + 1])
        changes = np.flatnonzero(mrec[1:] != mrec[:-1]) + 1
        return float(np.sum((mrec[changes] - mrec[changes - 1]) * mpre[changes]))
    raise ValueError(
        f"unknown AP method {method!r}; use 'voc11', 'r40' or 'continuous'"
    )


def interpolated_precision_at(
    scores: np.ndarray, tp: np.ndarray, num_gt: int, recall_level: float
) -> float:
    """Max precision at recall >= ``recall_level`` (VOC interpolation)."""
    if not (0.0 <= recall_level <= 1.0):
        raise ValueError(f"recall_level must lie in [0, 1], got {recall_level}")
    if num_gt <= 0 or np.asarray(scores).size == 0:
        return 0.0
    precision, recall = _pr_points(scores, tp, num_gt)
    mask = recall >= recall_level
    return float(precision[mask].max()) if mask.any() else 0.0
