"""KITTI difficulty modes (paper §6.1).

Each difficulty level gates which ground-truth objects *count*: objects
below the level's bar are "ignored" — they are not false negatives, and
detections matched to them are not false positives.  The paper evaluates
Moderate and Hard (Easy "does not distinguish different methods").
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.datasets.types import FrameAnnotations


@dataclass(frozen=True)
class DifficultyFilter:
    """A KITTI difficulty level.

    Parameters
    ----------
    name:
        Level name.
    min_height:
        Minimum box height in pixels for a ground truth to count.
    max_occlusion:
        Maximum occluded *fraction* (the synthetic world stores fractions;
        KITTI's discrete levels {0,1,2} map to the bounds used here).
    max_truncation:
        Maximum truncated fraction.
    """

    name: str
    min_height: float
    max_occlusion: float
    max_truncation: float

    def __post_init__(self) -> None:
        if self.min_height < 0:
            raise ValueError(f"min_height must be >= 0, got {self.min_height}")
        if not (0.0 <= self.max_occlusion <= 1.0):
            raise ValueError(f"max_occlusion must lie in [0, 1], got {self.max_occlusion}")
        if not (0.0 <= self.max_truncation <= 1.0):
            raise ValueError(
                f"max_truncation must lie in [0, 1], got {self.max_truncation}"
            )


#: "fully visible, wider than 40 pixels" — occlusion level 0, truncation <= 15 %.
EASY = DifficultyFilter(name="easy", min_height=40.0, max_occlusion=0.15, max_truncation=0.15)
#: occlusion level <= 1 ("partly occluded"), truncation <= 30 %, height >= 25 px.
MODERATE = DifficultyFilter(name="moderate", min_height=25.0, max_occlusion=0.5, max_truncation=0.3)
#: occlusion level <= 2 ("difficult to see"), truncation <= 50 %, height >= 25 px.
HARD = DifficultyFilter(name="hard", min_height=25.0, max_occlusion=0.8, max_truncation=0.5)

#: Name → filter, for declarative specs that reference difficulties by string.
DIFFICULTIES = {EASY.name: EASY, MODERATE.name: MODERATE, HARD.name: HARD}


def care_mask(annotations: FrameAnnotations, difficulty: DifficultyFilter) -> np.ndarray:
    """Boolean mask of ground truths that count at this difficulty.

    Ground truths outside the mask are evaluated as "ignored".
    """
    heights = annotations.boxes[:, 3] - annotations.boxes[:, 1]
    return (
        (heights >= difficulty.min_height)
        & (annotations.occlusion <= difficulty.max_occlusion)
        & (annotations.truncation <= difficulty.max_truncation)
    )
