"""Dataset-level evaluation: pools per-frame matches into mAP and delay.

This is the top-level entry point the benchmarks use::

    result = evaluate_dataset(dataset, per_sequence_detections, HARD)
    result.mean_ap()            # mAP at this difficulty
    result.mean_delay(0.8)      # mD@0.8

``per_sequence_detections`` maps sequence name to a list with one
:class:`~repro.detections.Detections` per frame.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence as Seq, Tuple

import numpy as np

from repro.datasets.types import Dataset
from repro.detections import Detections
from repro.metrics.ap import average_precision
from repro.metrics.delay import (
    DelayEvaluation,
    TrackDelayRecord,
    delay_at_threshold,
    threshold_for_precision,
)
from repro.metrics.kitti_eval import DifficultyFilter, care_mask
from repro.metrics.matching import match_frame


@dataclass
class ClassEvaluation:
    """Pooled evaluation state for one class."""

    label: int
    name: str
    scores: np.ndarray
    tp: np.ndarray
    num_gt: int
    tracks: List[TrackDelayRecord]

    def ap(self, method: str = "r40") -> float:
        """Average precision of this class."""
        return average_precision(self.scores, self.tp, self.num_gt, method=method)

    def recall_at(self, threshold: float) -> float:
        """Recall at a score threshold."""
        if self.num_gt == 0:
            return 0.0
        keep = self.scores >= threshold
        return float(self.tp[keep].sum()) / self.num_gt

    def as_delay_eval(self) -> DelayEvaluation:
        return DelayEvaluation(scores=self.scores, tp=self.tp, tracks=self.tracks)


@dataclass
class EvaluationResult:
    """mAP + delay evaluation of one system on one dataset/difficulty."""

    difficulty: str
    per_class: List[ClassEvaluation]

    def class_eval(self, name: str) -> ClassEvaluation:
        for ce in self.per_class:
            if ce.name == name:
                return ce
        raise KeyError(f"no class named {name!r}")

    def mean_ap(self, method: str = "r40") -> float:
        """mAP: arithmetic mean of per-class APs."""
        if not self.per_class:
            return 0.0
        return float(np.mean([ce.ap(method) for ce in self.per_class]))

    def threshold_at_precision(self, beta: float) -> float:
        """The ``t_beta`` of equation (5)."""
        return threshold_for_precision([ce.as_delay_eval() for ce in self.per_class], beta)

    def mean_delay(self, beta: float = 0.8) -> float:
        """``mD@beta`` (equation 4)."""
        evals = [ce.as_delay_eval() for ce in self.per_class]
        t_beta = threshold_for_precision(evals, beta)
        return delay_at_threshold(evals, t_beta)

    def mean_exit_delay(self, beta: float = 0.8) -> float:
        """Mean exit delay at precision ``beta`` (paper §5 extension).

        Entry delay is the paper's focus; exit delay is defined there but
        not evaluated — provided here for delay-sensitive applications
        that also care how long a departed object lingers undetected-gone.
        """
        evals = [ce.as_delay_eval() for ce in self.per_class]
        t_beta = threshold_for_precision(evals, beta)
        values = [e.mean_exit_delay(t_beta) for e in evals if e.tracks]
        if not values:
            return float("nan")
        return float(np.mean(values))

    def summary(self) -> Dict[str, float]:
        """Compact dict for table printing."""
        out: Dict[str, float] = {"mAP": self.mean_ap()}
        for ce in self.per_class:
            out[f"AP[{ce.name}]"] = ce.ap()
        try:
            out["mD@0.8"] = self.mean_delay(0.8)
        except ValueError:
            out["mD@0.8"] = float("nan")
        return out


def evaluate_dataset(
    dataset: Dataset,
    results: Mapping[str, Seq[Detections]],
    difficulty: DifficultyFilter,
    *,
    with_delay: bool = True,
) -> EvaluationResult:
    """Evaluate per-frame detections against a dataset at one difficulty.

    Parameters
    ----------
    dataset:
        Ground truth.  ``dataset.labeled_frames`` (when set) restricts
        evaluation to the labeled frames (CityPersons-style sparse labels).
    results:
        ``{sequence_name: [Detections, ...one per frame...]}``.
    difficulty:
        The difficulty filter gating which ground truths count.
    with_delay:
        Track per-object delay records (disable for sparse-label datasets
        where delay is meaningless).
    """
    class_scores: Dict[int, List[np.ndarray]] = {c.label: [] for c in dataset.classes}
    class_tp: Dict[int, List[np.ndarray]] = {c.label: [] for c in dataset.classes}
    class_num_gt: Dict[int, int] = {c.label: 0 for c in dataset.classes}
    class_tracks: Dict[int, Dict[Tuple[str, int], TrackDelayRecord]] = {
        c.label: {} for c in dataset.classes
    }

    for sequence in dataset.sequences:
        if sequence.name not in results:
            raise KeyError(f"results missing sequence {sequence.name!r}")
        frame_dets = results[sequence.name]
        if len(frame_dets) != sequence.num_frames:
            raise ValueError(
                f"sequence {sequence.name!r}: expected {sequence.num_frames} "
                f"frames of detections, got {len(frame_dets)}"
            )
        eval_frames = dataset.evaluation_frames(sequence)
        for frame in eval_frames:
            annotations = sequence.annotations(frame)
            care = care_mask(annotations, difficulty)
            for spec in dataset.classes:
                match = match_frame(
                    frame_dets[frame], annotations, spec.label, spec.min_iou, care
                )
                keep = ~match.det_ignored
                class_scores[spec.label].append(match.det_scores[keep])
                class_tp[spec.label].append(match.det_tp[keep])
                class_num_gt[spec.label] += match.num_gt
                if with_delay:
                    records = class_tracks[spec.label]
                    for gt_i, track_id in enumerate(match.gt_track_ids):
                        key = (sequence.name, int(track_id))
                        records.setdefault(key, TrackDelayRecord()).append(
                            frame,
                            float(match.gt_matched_scores[gt_i]),
                            cared=bool(match.gt_care[gt_i]),
                        )

    per_class: List[ClassEvaluation] = []
    for spec in dataset.classes:
        scores = (
            np.concatenate(class_scores[spec.label])
            if class_scores[spec.label]
            else np.zeros(0)
        )
        tp = (
            np.concatenate(class_tp[spec.label])
            if class_tp[spec.label]
            else np.zeros(0, dtype=bool)
        )
        per_class.append(
            ClassEvaluation(
                label=spec.label,
                name=spec.name,
                scores=scores,
                tp=tp.astype(bool),
                num_gt=class_num_gt[spec.label],
                # Only tracks that ever met the difficulty bar enter the
                # delay average; their clock still runs from first frame.
                tracks=[
                    record
                    for record in class_tracks[spec.label].values()
                    if record.ever_cared
                ],
            )
        )
    return EvaluationResult(difficulty=difficulty.name, per_class=per_class)
