"""Per-frame detection-to-ground-truth matching with ignore handling.

The greedy score-ordered matcher used by Pascal VOC and KITTI: detections
are visited in descending confidence; each claims the unclaimed same-class
ground truth with the highest IoU above the class's threshold.  Claims on
"ignored" ground truths (below the difficulty bar) discard the detection
from both TP and FP counts.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.boxes.iou import iou_matrix
from repro.datasets.types import FrameAnnotations
from repro.detections import Detections


@dataclass
class FrameMatchResult:
    """Outcome of matching one frame, one class.

    Attributes
    ----------
    det_indices : (D,) int array
        Indices into the frame's detections for this class, sorted by
        descending score (the order in which matching ran).
    det_scores : (D,) array
        Scores in the same order.
    det_tp : (D,) bool array
        Detection matched a cared ground truth.
    det_ignored : (D,) bool array
        Detection matched an ignored ground truth (excluded from FP).
    gt_track_ids : (G,) int array
        Track ids of *all* ground truths of this class in the frame
        (cared and ignored — delay is counted from an object's first
        annotated frame, before it meets the difficulty bar).
    gt_care : (G,) bool array
        Which of those ground truths count at the difficulty level.
    gt_matched_scores : (G,) array
        For each GT, the score of the detection that claimed it (``-inf``
        when unclaimed).  A GT counts as detected at threshold ``t`` iff
        its matched score is >= ``t``.
    """

    det_indices: np.ndarray
    det_scores: np.ndarray
    det_tp: np.ndarray
    det_ignored: np.ndarray
    gt_track_ids: np.ndarray
    gt_care: np.ndarray
    gt_matched_scores: np.ndarray

    @property
    def num_gt(self) -> int:
        """Number of *cared* ground truths (the AP denominator)."""
        return int(self.gt_care.sum())


def match_frame(
    detections: Detections,
    annotations: FrameAnnotations,
    label: int,
    min_iou: float,
    care: np.ndarray,
) -> FrameMatchResult:
    """Match one frame's detections of ``label`` against its ground truth.

    Parameters
    ----------
    detections:
        All detections for the frame (any class; filtered internally).
    annotations:
        Ground truth for the frame.
    label:
        Class to evaluate.
    min_iou:
        Class-specific overlap requirement (KITTI: 0.7 Car, 0.5 Pedestrian).
    care : (len(annotations),) bool array
        Difficulty mask over *all* ground truths in the frame (see
        :func:`repro.metrics.kitti_eval.care_mask`).
    """
    if care.shape[0] != len(annotations):
        raise ValueError(
            f"care mask length {care.shape[0]} != annotations length {len(annotations)}"
        )
    det_mask = detections.labels == label
    det_idx = np.flatnonzero(det_mask)
    order = det_idx[np.argsort(-detections.scores[det_idx], kind="stable")]
    det_boxes = detections.boxes[order]
    det_scores = detections.scores[order]

    gt_mask = annotations.labels == label
    gt_idx = np.flatnonzero(gt_mask)
    gt_boxes = annotations.boxes[gt_idx]
    gt_care = care[gt_idx]

    n_det = order.shape[0]
    n_gt = gt_idx.shape[0]
    det_tp = np.zeros(n_det, dtype=bool)
    det_ignored = np.zeros(n_det, dtype=bool)
    gt_claimed = np.zeros(n_gt, dtype=bool)
    gt_matched_scores = np.full(n_gt, -np.inf)

    if n_det and n_gt:
        ious = iou_matrix(det_boxes, gt_boxes)
        # A detection whose best IoU over *all* ground truths is below the
        # bar can never claim one (masking claimed GTs only lowers its
        # candidates), so those rows are skipped without touching state —
        # exactly equivalent to visiting them.
        viable = np.flatnonzero(ious.max(axis=1) >= min_iou)
        for d in viable:
            candidates = np.where(~gt_claimed, ious[d], -1.0)
            g = int(np.argmax(candidates))
            if candidates[g] >= min_iou:
                gt_claimed[g] = True
                gt_matched_scores[g] = det_scores[d]
                if gt_care[g]:
                    det_tp[d] = True
                else:
                    det_ignored[d] = True

    return FrameMatchResult(
        det_indices=order,
        det_scores=det_scores,
        det_tp=det_tp,
        det_ignored=det_ignored,
        gt_track_ids=annotations.track_ids[gt_idx],
        gt_care=gt_care,
        gt_matched_scores=gt_matched_scores,
    )
