"""Faster R-CNN operation model: trunk + RPN + per-proposal RoI head.

Two inference modes, mirroring Figure 4 of the paper:

* **full-frame** (standard Faster R-CNN, used by single-model systems and by
  the proposal network): trunk over the whole image, RPN over the whole
  feature map, RoI head on ``n_proposals`` pooled regions (default 300).
* **regional** (the refinement network): proposals come from the tracker and
  the proposal network, so the RPN is skipped, the trunk only computes
  features over the regions-of-interest mask (ops scale with the mask's
  coverage fraction), and the head runs on however many proposals arrived.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Union

from repro.flops.layers import ConvLayer, FCLayer, LayerSpec, total_macs
from repro.flops.resnet import ResNetArch, resnet_head_layers, resnet_trunk_layers
from repro.flops.vgg import VGGArch, vgg_head_layers, vgg_trunk_layers

GIGA = 1e9

ArchLike = Union[ResNetArch, VGGArch]


@dataclass(frozen=True)
class OpsBreakdown:
    """Operation counts (multiply-accumulates) for one inference pass."""

    trunk: float
    rpn: float
    head: float

    @property
    def total(self) -> float:
        return self.trunk + self.rpn + self.head

    @property
    def total_gops(self) -> float:
        return self.total / GIGA

    def __add__(self, other: "OpsBreakdown") -> "OpsBreakdown":
        return OpsBreakdown(
            self.trunk + other.trunk, self.rpn + other.rpn, self.head + other.head
        )

    def scaled(self, factor: float) -> "OpsBreakdown":
        return OpsBreakdown(self.trunk * factor, self.rpn * factor, self.head * factor)


class FasterRCNNOps:
    """Analytic op counts for a Faster R-CNN detector on a fixed image size.

    Parameters
    ----------
    arch:
        A :class:`ResNetArch` or :class:`VGGArch` backbone description.
    image_width, image_height:
        Input resolution in pixels (no resizing, as in the paper).
    rpn_channels:
        Width of the RPN's 3x3 conv (512, the standard setting).
    num_anchors:
        Anchors per feature-map location — "3 types of anchors with 4
        different scales" (§4.2) gives 12.
    roi_pool:
        RoI pooling output resolution for conv heads (7).
    num_classes:
        Foreground classes (for the final cls/reg layers).
    """

    def __init__(
        self,
        arch: ArchLike,
        image_width: int,
        image_height: int,
        rpn_channels: int = 512,
        num_anchors: int = 12,
        roi_pool: int = 7,
        num_classes: int = 2,
    ):
        if image_width <= 0 or image_height <= 0:
            raise ValueError(
                f"image size must be positive, got {image_width}x{image_height}"
            )
        self.arch = arch
        self.image_width = int(image_width)
        self.image_height = int(image_height)
        self.rpn_channels = int(rpn_channels)
        self.num_anchors = int(num_anchors)
        self.roi_pool = int(roi_pool)
        self.num_classes = int(num_classes)

        if isinstance(arch, ResNetArch):
            self._trunk_layers = resnet_trunk_layers(arch)
            self._head_layers: List[LayerSpec] = resnet_head_layers(arch)
            self._head_input_hw = (roi_pool, roi_pool)
        elif isinstance(arch, VGGArch):
            self._trunk_layers = vgg_trunk_layers(arch)
            self._head_layers = vgg_head_layers(arch)
            self._head_input_hw = (1, 1)  # FC head: resolution-independent
        else:
            raise TypeError(f"unsupported architecture type: {type(arch).__name__}")

        self._trunk_macs = float(
            total_macs(self._trunk_layers, self.image_height, self.image_width)
        )
        self._head_macs_per_proposal = float(
            total_macs(self._head_layers, *self._head_input_hw)
        ) + self._final_fc_macs()
        self._rpn_macs = self._compute_rpn_macs()

    # ------------------------------------------------------------------ #

    def _trunk_out_channels(self) -> int:
        return self.arch.trunk_out_channels

    def _head_out_channels(self) -> int:
        return self.arch.head_out_channels

    def _final_fc_macs(self) -> float:
        """Per-proposal classification + box-regression output layers."""
        features = self._head_out_channels()
        cls = FCLayer("cls_score", features, self.num_classes + 1).macs()
        reg = FCLayer("bbox_pred", features, 4 * (self.num_classes + 1)).macs()
        return float(cls + reg)

    def _compute_rpn_macs(self) -> float:
        """RPN 3x3 conv + 1x1 objectness/regression heads over the C4 map."""
        feat_h = -(-self.image_height // 16)  # ceil division, stride-16 trunk
        feat_w = -(-self.image_width // 16)
        conv = ConvLayer(
            "rpn.conv", self._trunk_out_channels(), self.rpn_channels, kernel=3
        ).macs(feat_h, feat_w)
        cls = ConvLayer(
            "rpn.cls", self.rpn_channels, 2 * self.num_anchors, kernel=1
        ).macs(feat_h, feat_w)
        reg = ConvLayer(
            "rpn.reg", self.rpn_channels, 4 * self.num_anchors, kernel=1
        ).macs(feat_h, feat_w)
        return float(conv + cls + reg)

    # ------------------------------------------------------------------ #
    # Public API
    # ------------------------------------------------------------------ #

    @property
    def trunk_macs(self) -> float:
        """Full-image feature-extractor ops."""
        return self._trunk_macs

    @property
    def rpn_macs(self) -> float:
        """Region-proposal-network ops (full feature map)."""
        return self._rpn_macs

    @property
    def head_macs_per_proposal(self) -> float:
        """RoI head ops for a single proposal."""
        return self._head_macs_per_proposal

    def full_frame(self, n_proposals: int = 300) -> OpsBreakdown:
        """Standard Faster R-CNN pass: trunk + RPN + ``n_proposals`` heads."""
        if n_proposals < 0:
            raise ValueError(f"n_proposals must be >= 0, got {n_proposals}")
        return OpsBreakdown(
            trunk=self._trunk_macs,
            rpn=self._rpn_macs,
            head=self._head_macs_per_proposal * n_proposals,
        )

    def regional(self, coverage_fraction: float, n_proposals: int) -> OpsBreakdown:
        """Refinement-network pass over a regions-of-interest mask.

        Parameters
        ----------
        coverage_fraction:
            Fraction of the image covered by the (margin-expanded) union of
            proposal regions, in [0, 1] — see :class:`repro.boxes.RegionMask`.
        n_proposals:
            Number of proposals pooled into the RoI head.
        """
        if not (0.0 <= coverage_fraction <= 1.0):
            raise ValueError(
                f"coverage_fraction must lie in [0, 1], got {coverage_fraction}"
            )
        if n_proposals < 0:
            raise ValueError(f"n_proposals must be >= 0, got {n_proposals}")
        return OpsBreakdown(
            trunk=self._trunk_macs * coverage_fraction,
            rpn=0.0,
            head=self._head_macs_per_proposal * n_proposals,
        )
