"""Per-layer operation counting primitives.

A network is described as a list of layer specs; :func:`count_ops` walks the
list propagating the spatial resolution and accumulating multiply-accumulate
counts.  Convolutions use ``same`` padding semantics (output spatial size is
``ceil(input / stride)``), matching the padded 3x3/7x7 convolutions of the
architectures modeled here.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Sequence, Tuple, Union


@dataclass(frozen=True)
class ConvLayer:
    """A 2-D convolution layer spec.

    Attributes
    ----------
    name:
        Human-readable layer name (appears in breakdowns).
    in_channels, out_channels:
        Channel counts.
    kernel:
        Square kernel size.
    stride:
        Spatial stride (output is ``ceil(in / stride)`` per axis).
    """

    name: str
    in_channels: int
    out_channels: int
    kernel: int = 3
    stride: int = 1

    def __post_init__(self) -> None:
        if self.in_channels <= 0 or self.out_channels <= 0:
            raise ValueError(f"{self.name}: channel counts must be positive")
        if self.kernel <= 0 or self.stride <= 0:
            raise ValueError(f"{self.name}: kernel and stride must be positive")

    def macs(self, out_h: int, out_w: int) -> int:
        """Multiply-accumulates for the given output resolution."""
        return self.kernel * self.kernel * self.in_channels * self.out_channels * out_h * out_w


@dataclass(frozen=True)
class PoolLayer:
    """A pooling layer — contributes no ops but changes resolution."""

    name: str
    stride: int = 2

    def __post_init__(self) -> None:
        if self.stride <= 0:
            raise ValueError(f"{self.name}: stride must be positive")


@dataclass(frozen=True)
class FCLayer:
    """A fully-connected layer spec (resolution-independent)."""

    name: str
    in_features: int
    out_features: int

    def __post_init__(self) -> None:
        if self.in_features <= 0 or self.out_features <= 0:
            raise ValueError(f"{self.name}: feature counts must be positive")

    def macs(self) -> int:
        return self.in_features * self.out_features


LayerSpec = Union[ConvLayer, PoolLayer, FCLayer]


@dataclass(frozen=True)
class LayerOps:
    """Operation count attributed to one layer."""

    name: str
    macs: int
    out_h: int
    out_w: int


def conv_output_hw(h: int, w: int, stride: int) -> Tuple[int, int]:
    """Output spatial size of a same-padded layer with the given stride."""
    return math.ceil(h / stride), math.ceil(w / stride)


def count_ops(layers: Sequence[LayerSpec], h: int, w: int) -> List[LayerOps]:
    """Walk a layer list, returning per-layer op counts.

    Parameters
    ----------
    layers:
        Sequence of :class:`ConvLayer`, :class:`PoolLayer` and
        :class:`FCLayer`.  FC layers must come after all spatial layers.
    h, w:
        Input spatial resolution in pixels.

    Notes
    -----
    Parallel branches (e.g. residual downsampling shortcuts) are expressed
    by convention as layers with ``stride`` matching the branch but listed
    sequentially; callers that need true branching (ResNet blocks) expand
    blocks into a flat list where shortcut convs carry the block's stride
    and the mainline resolution is restored afterwards.  The ResNet/VGG
    builders in this package handle that expansion.
    """
    if h <= 0 or w <= 0:
        raise ValueError(f"input resolution must be positive, got {h}x{w}")
    out: List[LayerOps] = []
    cur_h, cur_w = int(h), int(w)
    for layer in layers:
        if isinstance(layer, ConvLayer):
            cur_h, cur_w = conv_output_hw(cur_h, cur_w, layer.stride)
            out.append(LayerOps(layer.name, layer.macs(cur_h, cur_w), cur_h, cur_w))
        elif isinstance(layer, PoolLayer):
            cur_h, cur_w = conv_output_hw(cur_h, cur_w, layer.stride)
            out.append(LayerOps(layer.name, 0, cur_h, cur_w))
        elif isinstance(layer, FCLayer):
            out.append(LayerOps(layer.name, layer.macs(), 1, 1))
        else:
            raise TypeError(f"unsupported layer spec: {type(layer).__name__}")
    return out


def total_macs(layers: Sequence[LayerSpec], h: int, w: int) -> int:
    """Total multiply-accumulates for a layer list at the given resolution."""
    return sum(entry.macs for entry in count_ops(layers, h, w))
