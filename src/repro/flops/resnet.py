"""ResNet architecture specs and layer-list builders.

Covers the four proposal-network variants of Table 1 (ResNet-18 and the
slimmed ResNet-10a/b/c) plus the bottleneck ResNet-50 refinement backbone.

The detection models follow the C4 Faster R-CNN layout used by the PyTorch
implementation the paper builds on: the *trunk* (conv1 through block3, feature
stride 16) runs over the image; *block4* is the per-proposal RoI head, applied
to 7x7-pooled features with its native stride 2 (output 4x4).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

from repro.flops.layers import ConvLayer, FCLayer, LayerSpec, PoolLayer


@dataclass(frozen=True)
class BasicBlockSpec:
    """One ResNet stage: ``channels`` width repeated ``repeats`` times."""

    channels: int
    repeats: int = 1

    def __post_init__(self) -> None:
        if self.channels <= 0:
            raise ValueError(f"channels must be positive, got {self.channels}")
        if self.repeats <= 0:
            raise ValueError(f"repeats must be positive, got {self.repeats}")


@dataclass(frozen=True)
class ResNetArch:
    """A ResNet-style backbone description.

    Parameters
    ----------
    name:
        e.g. ``"resnet18"``.
    conv1_channels:
        Width of the stem 7x7 convolution.
    stages:
        Four :class:`BasicBlockSpec`, one per stage (block1..block4).
    bottleneck:
        When true, stages use 1x1-3x3-1x1 bottleneck blocks with a 4x
        expansion (ResNet-50 style); otherwise two 3x3 basic blocks.
    """

    name: str
    conv1_channels: int
    stages: Tuple[BasicBlockSpec, BasicBlockSpec, BasicBlockSpec, BasicBlockSpec]
    bottleneck: bool = False

    EXPANSION = 4  # bottleneck output expansion factor

    def stage_out_channels(self, stage_index: int) -> int:
        """Output channel count of a stage (accounting for expansion)."""
        ch = self.stages[stage_index].channels
        return ch * self.EXPANSION if self.bottleneck else ch

    @property
    def trunk_out_channels(self) -> int:
        """Channels of the C4 feature map fed to the RPN / RoI pooling."""
        return self.stage_out_channels(2)

    @property
    def head_out_channels(self) -> int:
        """Channels after the block4 RoI head."""
        return self.stage_out_channels(3)


def _basic_block_layers(
    name: str, in_ch: int, out_ch: int, stride: int
) -> List[LayerSpec]:
    layers: List[LayerSpec] = [
        ConvLayer(f"{name}.conv1", in_ch, out_ch, kernel=3, stride=stride),
        ConvLayer(f"{name}.conv2", out_ch, out_ch, kernel=3, stride=1),
    ]
    if stride != 1 or in_ch != out_ch:
        # Shortcut 1x1 operates at the block's output resolution, so listing
        # it after the strided conv counts it correctly.
        layers.append(ConvLayer(f"{name}.downsample", in_ch, out_ch, kernel=1, stride=1))
    return layers


def _bottleneck_block_layers(
    name: str, in_ch: int, mid_ch: int, stride: int
) -> List[LayerSpec]:
    out_ch = mid_ch * ResNetArch.EXPANSION
    layers: List[LayerSpec] = [
        # 1x1 reduce runs at the *input* resolution; the 3x3 carries the
        # stride (torchvision's default), so the reduce is listed as a
        # strided no-op-resolution trick: we count it before the stride by
        # giving it stride 1 and letting the 3x3 halve the resolution.
        ConvLayer(f"{name}.conv1", in_ch, mid_ch, kernel=1, stride=1),
        ConvLayer(f"{name}.conv2", mid_ch, mid_ch, kernel=3, stride=stride),
        ConvLayer(f"{name}.conv3", mid_ch, out_ch, kernel=1, stride=1),
    ]
    if stride != 1 or in_ch != out_ch:
        layers.append(ConvLayer(f"{name}.downsample", in_ch, out_ch, kernel=1, stride=1))
    return layers


def _stage_layers(
    arch: ResNetArch, stage_index: int, in_ch: int, stride: int
) -> List[LayerSpec]:
    spec = arch.stages[stage_index]
    layers: List[LayerSpec] = []
    current_in = in_ch
    for rep in range(spec.repeats):
        block_name = f"{arch.name}.block{stage_index + 1}.{rep}"
        block_stride = stride if rep == 0 else 1
        if arch.bottleneck:
            layers.extend(
                _bottleneck_block_layers(block_name, current_in, spec.channels, block_stride)
            )
            current_in = spec.channels * ResNetArch.EXPANSION
        else:
            layers.extend(
                _basic_block_layers(block_name, current_in, spec.channels, block_stride)
            )
            current_in = spec.channels
    return layers


def resnet_trunk_layers(arch: ResNetArch) -> List[LayerSpec]:
    """Stem + block1..block3 — the full-image feature extractor (stride 16).

    block1 keeps the post-pool resolution (stride 1); block2 and block3
    halve it, giving the standard C4 feature stride of 16.
    """
    layers: List[LayerSpec] = [
        ConvLayer(f"{arch.name}.conv1", 3, arch.conv1_channels, kernel=7, stride=2),
        PoolLayer(f"{arch.name}.maxpool", stride=2),
    ]
    layers.extend(_stage_layers(arch, 0, arch.conv1_channels, stride=1))
    layers.extend(_stage_layers(arch, 1, arch.stage_out_channels(0), stride=2))
    layers.extend(_stage_layers(arch, 2, arch.stage_out_channels(1), stride=2))
    return layers


def resnet_head_layers(arch: ResNetArch) -> List[LayerSpec]:
    """block4 — the per-proposal RoI head (input: pooled 7x7 C4 features)."""
    return _stage_layers(arch, 3, arch.stage_out_channels(2), stride=2)


def resnet_full_layers(arch: ResNetArch) -> List[LayerSpec]:
    """Stem + all four stages (classification-style backbone, stride 32)."""
    return resnet_trunk_layers(arch) + _stage_layers(arch, 3, arch.stage_out_channels(2), stride=2)


def _simple(name: str, conv1: int, b1: int, b2: int, b3: int, b4: int, repeats: int) -> ResNetArch:
    return ResNetArch(
        name=name,
        conv1_channels=conv1,
        stages=(
            BasicBlockSpec(b1, repeats),
            BasicBlockSpec(b2, repeats),
            BasicBlockSpec(b3, repeats),
            BasicBlockSpec(b4, repeats),
        ),
    )


#: Table 1 architectures.  "In ResNet-18, all blocks are repeated 2 times";
#: the ResNet-10 variants repeat each block once.
RESNET18 = _simple("resnet18", 64, 64, 128, 256, 512, repeats=2)
RESNET10A = _simple("resnet10a", 48, 48, 96, 168, 512, repeats=1)
RESNET10B = _simple("resnet10b", 32, 32, 64, 128, 256, repeats=1)
RESNET10C = _simple("resnet10c", 24, 24, 48, 96, 192, repeats=1)

RESNET50 = ResNetArch(
    name="resnet50",
    conv1_channels=64,
    stages=(
        BasicBlockSpec(64, 3),
        BasicBlockSpec(128, 4),
        BasicBlockSpec(256, 6),
        BasicBlockSpec(512, 3),
    ),
    bottleneck=True,
)
