"""VGG-16 architecture spec (Table 5 refinement-network variant).

The VGG-16 Faster R-CNN layout: conv1_1 .. conv5_3 as the full-image trunk
(feature stride 16 after four pools), and the fc6/fc7 fully-connected pair as
the per-proposal head on 7x7-pooled features.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

from repro.flops.layers import ConvLayer, FCLayer, LayerSpec, PoolLayer


@dataclass(frozen=True)
class VGGArch:
    """A VGG-style backbone: per-stage (channels, conv count)."""

    name: str
    stages: Tuple[Tuple[int, int], ...]
    fc_features: int = 4096
    roi_pool: int = 7

    @property
    def trunk_out_channels(self) -> int:
        return self.stages[-1][0]

    @property
    def head_out_channels(self) -> int:
        return self.fc_features


VGG16 = VGGArch(
    name="vgg16",
    stages=((64, 2), (128, 2), (256, 3), (512, 3), (512, 3)),
)


def vgg_trunk_layers(arch: VGGArch) -> List[LayerSpec]:
    """conv1_1 .. conv5_3 with pools between stages (no pool after stage 5).

    Faster R-CNN drops the fifth pool so the trunk's feature stride is 16.
    """
    layers: List[LayerSpec] = []
    in_ch = 3
    for stage_idx, (channels, n_convs) in enumerate(arch.stages):
        for conv_idx in range(n_convs):
            layers.append(
                ConvLayer(
                    f"{arch.name}.conv{stage_idx + 1}_{conv_idx + 1}",
                    in_ch,
                    channels,
                    kernel=3,
                    stride=1,
                )
            )
            in_ch = channels
        if stage_idx < len(arch.stages) - 1:
            layers.append(PoolLayer(f"{arch.name}.pool{stage_idx + 1}", stride=2))
    return layers


def vgg_head_layers(arch: VGGArch) -> List[LayerSpec]:
    """fc6 + fc7 per-proposal head on ``roi_pool``-sized features."""
    pooled = arch.trunk_out_channels * arch.roi_pool * arch.roi_pool
    return [
        FCLayer(f"{arch.name}.fc6", pooled, arch.fc_features),
        FCLayer(f"{arch.name}.fc7", arch.fc_features, arch.fc_features),
    ]
