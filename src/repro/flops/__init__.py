"""Analytic operation-count models for the detector architectures.

The paper reports "arithmetic operations in convolutional layers and
fully-connected layers" (§6.3).  This package computes those counts exactly
from the architecture and input geometry: per-layer multiply-accumulate
counts for the ResNet variants of Table 1, ResNet-50, VGG-16, the Faster
R-CNN RPN + RoI heads, and RetinaNet's FPN + subnets, including the
masked-region evaluation used by the refinement network.

Counting convention: one multiply-accumulate = one operation (Gops values in
the paper are consistent with this for the proposal networks of Table 1).
"""

from repro.flops.layers import ConvLayer, FCLayer, LayerOps, conv_output_hw, count_ops
from repro.flops.resnet import (
    BasicBlockSpec,
    ResNetArch,
    RESNET10A,
    RESNET10B,
    RESNET10C,
    RESNET18,
    RESNET50,
    resnet_head_layers,
    resnet_trunk_layers,
)
from repro.flops.vgg import VGG16, VGGArch, vgg_head_layers, vgg_trunk_layers
from repro.flops.rcnn import FasterRCNNOps, OpsBreakdown
from repro.flops.retinanet import RetinaNetOps

__all__ = [
    "ConvLayer",
    "FCLayer",
    "LayerOps",
    "conv_output_hw",
    "count_ops",
    "BasicBlockSpec",
    "ResNetArch",
    "RESNET10A",
    "RESNET10B",
    "RESNET10C",
    "RESNET18",
    "RESNET50",
    "resnet_head_layers",
    "resnet_trunk_layers",
    "VGG16",
    "VGGArch",
    "vgg_head_layers",
    "vgg_trunk_layers",
    "FasterRCNNOps",
    "OpsBreakdown",
    "RetinaNetOps",
]
