"""RetinaNet operation model (paper Appendix II).

RetinaNet = ResNet backbone + Feature Pyramid Network + class/box subnets
applied densely at every pyramid level.  As in the appendix, the CaTDet
variant restricts computation to regions of interest, scaling every dense
component (backbone, FPN, subnets) by the mask coverage fraction.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.flops.layers import ConvLayer, conv_output_hw
from repro.flops.resnet import ResNetArch, resnet_full_layers, resnet_trunk_layers
from repro.flops.layers import count_ops

GIGA = 1e9


@dataclass(frozen=True)
class RetinaNetBreakdown:
    """Op counts for one RetinaNet pass."""

    backbone: float
    fpn: float
    subnets: float

    @property
    def total(self) -> float:
        return self.backbone + self.fpn + self.subnets

    @property
    def total_gops(self) -> float:
        return self.total / GIGA


class RetinaNetOps:
    """Analytic op counts for RetinaNet on a fixed image size.

    Parameters
    ----------
    arch:
        Backbone :class:`ResNetArch` (the paper uses ResNet-50).
    image_width, image_height:
        Input resolution.
    fpn_channels:
        Pyramid feature width (256).
    subnet_depth:
        Number of 3x3 convs in each of the class/box subnets (4).
    num_anchors:
        Anchors per location (9).
    num_classes:
        Foreground classes.
    """

    PYRAMID_STRIDES = (8, 16, 32, 64, 128)  # P3..P7

    def __init__(
        self,
        arch: ResNetArch,
        image_width: int,
        image_height: int,
        fpn_channels: int = 256,
        subnet_depth: int = 4,
        num_anchors: int = 9,
        num_classes: int = 2,
    ):
        if image_width <= 0 or image_height <= 0:
            raise ValueError(
                f"image size must be positive, got {image_width}x{image_height}"
            )
        self.arch = arch
        self.image_width = int(image_width)
        self.image_height = int(image_height)
        self.fpn_channels = int(fpn_channels)
        self.subnet_depth = int(subnet_depth)
        self.num_anchors = int(num_anchors)
        self.num_classes = int(num_classes)

        self._backbone_macs = float(
            sum(
                entry.macs
                for entry in count_ops(
                    resnet_full_layers(arch), self.image_height, self.image_width
                )
            )
        )
        self._fpn_macs = self._compute_fpn_macs()
        self._subnet_macs = self._compute_subnet_macs()

    def _level_hw(self, stride: int) -> Tuple[int, int]:
        return -(-self.image_height // stride), -(-self.image_width // stride)

    def _compute_fpn_macs(self) -> float:
        """Lateral 1x1 convs on C3..C5 plus 3x3 output convs on P3..P5 and
        the strided P6/P7 convs."""
        c_channels = {
            8: self.arch.stage_out_channels(1),
            16: self.arch.stage_out_channels(2),
            32: self.arch.stage_out_channels(3),
        }
        macs = 0.0
        for stride, c_in in c_channels.items():
            h, w = self._level_hw(stride)
            macs += ConvLayer("fpn.lateral", c_in, self.fpn_channels, kernel=1).macs(h, w)
            macs += ConvLayer("fpn.output", self.fpn_channels, self.fpn_channels, kernel=3).macs(h, w)
        # P6: 3x3 stride-2 conv from C5; P7: 3x3 stride-2 conv from P6.
        h6, w6 = self._level_hw(64)
        macs += ConvLayer("fpn.p6", self.arch.stage_out_channels(3), self.fpn_channels, kernel=3).macs(h6, w6)
        h7, w7 = self._level_hw(128)
        macs += ConvLayer("fpn.p7", self.fpn_channels, self.fpn_channels, kernel=3).macs(h7, w7)
        return float(macs)

    def _compute_subnet_macs(self) -> float:
        """Class + box subnets applied at every pyramid level."""
        per_location = 0.0
        # Shared structure: subnet_depth 3x3 convs at fpn_channels, then the
        # output conv.  Class head outputs A*K, box head outputs A*4.
        tower = self.subnet_depth * (3 * 3 * self.fpn_channels * self.fpn_channels)
        cls_out = 3 * 3 * self.fpn_channels * (self.num_anchors * self.num_classes)
        box_out = 3 * 3 * self.fpn_channels * (self.num_anchors * 4)
        per_location = 2 * tower + cls_out + box_out

        total = 0.0
        for stride in self.PYRAMID_STRIDES:
            h, w = self._level_hw(stride)
            total += per_location * h * w
        return float(total)

    # ------------------------------------------------------------------ #

    @property
    def backbone_macs(self) -> float:
        return self._backbone_macs

    @property
    def fpn_macs(self) -> float:
        return self._fpn_macs

    @property
    def subnet_macs(self) -> float:
        return self._subnet_macs

    def full_frame(self) -> RetinaNetBreakdown:
        """Dense single-shot pass over the whole image."""
        return RetinaNetBreakdown(
            backbone=self._backbone_macs,
            fpn=self._fpn_macs,
            subnets=self._subnet_macs,
        )

    def regional(self, coverage_fraction: float) -> RetinaNetBreakdown:
        """Pass restricted to the regions-of-interest mask.

        All three components are dense convolutions, so each scales with
        the coverage fraction (paper Appendix II: reduced ops "for both
        Feature Pyramid Network and Classifier Subnets").
        """
        if not (0.0 <= coverage_fraction <= 1.0):
            raise ValueError(
                f"coverage_fraction must lie in [0, 1], got {coverage_fraction}"
            )
        return RetinaNetBreakdown(
            backbone=self._backbone_macs * coverage_fraction,
            fpn=self._fpn_macs * coverage_fraction,
            subnets=self._subnet_macs * coverage_fraction,
        )
