"""Coordinator: shard work, dispatch, watch stragglers, reassemble.

Two sharding granularities (mirroring :mod:`repro.cluster.protocol`):

* :func:`dispatch_specs` shards a ``run_many`` grid — one experiment
  task per *distinct* spec fingerprint, cached fingerprints served
  without enqueueing anything, results reassembled in submission order.
* :class:`MultiHostExecutor` shards a single dataset run — one sequence
  task per sequence, registered as the ``"multihost"`` executor kind so
  ``ExecSpec(executor="multihost", queue_dir=...)`` routes any spec, CLI
  run, sweep or table through the fleet.  Output is byte-identical to
  :class:`~repro.engine.scheduler.SerialExecutor` (same reassembly
  order, deterministic per-sequence execution).

While waiting, the coordinator sweeps expired leases back into the
pending state (:meth:`FileWorkQueue.recover_expired`), so a SIGKILL'd
worker only costs one lease TTL, and surfaces dead-lettered shards as
:class:`ClusterTaskError` instead of hanging.
"""

from __future__ import annotations

import os
import time
from pathlib import Path
from typing import Any, Callable, Dict, List, Optional, Sequence as Seq, Union

from repro.cluster import protocol
from repro.cluster.queue import FileWorkQueue
from repro.cluster.worker import SEQ_CACHE_SUBDIR, default_cache_dir
from repro.core.results import SequenceResult
from repro.datasets.types import Sequence

#: ``on_progress`` callbacks everywhere in the library share one shape:
#: ``callback(done, total, label)``.
ProgressFn = Callable[[int, int, str], None]


class ClusterTaskError(RuntimeError):
    """A shard exhausted its attempt budget (or its envelope was corrupt)."""

    def __init__(self, task_id: str, record: Optional[Dict[str, Any]]):
        history = (record or {}).get("history", [])
        detail = history[-1].strip().splitlines()[-1] if history else "no failure record"
        super().__init__(
            f"task {task_id} was dead-lettered after "
            f"{(record or {}).get('attempts', '?')} attempt(s): {detail}"
        )
        self.task_id = task_id
        self.record = record


class ClusterTimeout(TimeoutError):
    """Dispatch exceeded its wall-clock budget with shards outstanding."""


def _wait_for_results(
    queue: FileWorkQueue,
    task_ids: Seq[str],
    *,
    poll_interval: float = 0.2,
    timeout: Optional[float] = None,
    on_progress: Optional[ProgressFn] = None,
    labels: Optional[Dict[str, str]] = None,
) -> Dict[str, Dict[str, Any]]:
    """Poll until every task id has a result envelope; returns id → envelope.

    Also performs straggler recovery each cycle and raises
    :class:`ClusterTaskError` the moment any shard dead-letters.
    """
    deadline = None if timeout is None else time.monotonic() + timeout
    envelopes: Dict[str, Dict[str, Any]] = {}
    outstanding = list(task_ids)
    while outstanding:
        queue.recover_expired()
        still: List[str] = []
        for task_id in outstanding:
            envelope = queue.result(task_id)
            if envelope is not None:
                envelopes[task_id] = envelope
                if on_progress is not None:
                    label = (labels or {}).get(task_id, task_id)
                    on_progress(len(envelopes), len(task_ids), label)
                continue
            dead = queue.dead_letter(task_id)
            if dead is not None:
                raise ClusterTaskError(task_id, dead)
            still.append(task_id)
        outstanding = still
        if not outstanding:
            break
        if deadline is not None and time.monotonic() > deadline:
            raise ClusterTimeout(
                f"{len(outstanding)}/{len(task_ids)} shard(s) still outstanding "
                f"after {timeout:.0f}s: {outstanding[:5]}"
                + ("..." if len(outstanding) > 5 else "")
            )
        time.sleep(poll_interval)
    return envelopes


# --------------------------------------------------------------------- #
# Spec-grid dispatch (the run_many backend)
# --------------------------------------------------------------------- #


def dispatch_specs(
    queue: Union[FileWorkQueue, str, Path],
    specs: Seq["Any"],
    *,
    cache_dir: Optional[Union[str, Path]] = "auto",
    use_cache: bool = True,
    wait: bool = True,
    poll_interval: float = 0.2,
    timeout: Optional[float] = None,
    on_progress: Optional[ProgressFn] = None,
) -> Union[List[str], List["Any"]]:
    """Shard an :class:`ExperimentSpec` grid across the worker fleet.

    Dedupes by content fingerprint, serves fingerprints already in the
    shared cache without enqueueing, submits the rest as experiment
    tasks, and (with ``wait=True``) returns
    :class:`~repro.harness.experiment.ExperimentResult`\\ s aligned with
    the input order — byte-identical to running the grid serially.
    ``use_cache=False`` forces recomputation end to end: no fingerprint
    is served coordinator-side and the task envelopes order workers to
    bypass their stores too.  ``on_progress(done, total, label)`` fires
    once per distinct fingerprint, cache-served ones included.

    With ``wait=False`` returns the submitted task ids; poll
    ``queue.result(task_id)`` yourself, or simply re-dispatch the same
    grid later — finished fingerprints resolve as cache hits.
    """
    from repro.api.cache import ResultCache
    from repro.harness.io import experiment_from_dict

    queue = queue if isinstance(queue, FileWorkQueue) else FileWorkQueue(queue)
    if cache_dir == "auto":
        cache_dir = default_cache_dir(queue.root)
    if not use_cache:
        cache_dir = None
    cache = ResultCache(cache_dir) if cache_dir is not None else None
    m_specs = queue.metrics.counter(
        "coordinator_specs_total",
        "distinct grid points dispatched, by how they resolved",
        labels=("resolution",),
    )

    specs = list(specs)
    results_by_fp: Dict[str, Any] = {}
    task_by_fp: Dict[str, str] = {}
    labels: Dict[str, str] = {}
    cached_labels: List[str] = []
    for spec in specs:
        fp = spec.fingerprint
        if fp in results_by_fp or fp in task_by_fp:
            continue
        cached = cache.load(fp) if cache is not None else None
        if cached is not None:
            results_by_fp[fp] = cached
            cached_labels.append(spec.label)
            m_specs.inc(labels=("cached",))
            continue
        task_id = queue.submit(
            protocol.experiment_task(spec.to_dict(), fp, use_cache=use_cache)
        )
        task_by_fp[fp] = task_id
        labels[task_id] = spec.label
        m_specs.inc(labels=("dispatched",))
    total = len(results_by_fp) + len(task_by_fp)
    if on_progress is not None:
        for done, label in enumerate(cached_labels, start=1):
            on_progress(done, total, f"{label} (cached)")
    if not wait:
        return list(task_by_fp.values())

    served = len(results_by_fp)
    envelopes = _wait_for_results(
        queue,
        list(task_by_fp.values()),
        poll_interval=poll_interval,
        timeout=timeout,
        on_progress=(
            None
            if on_progress is None
            else lambda done, _t, label: on_progress(served + done, total, label)
        ),
        labels=labels,
    )
    specs_by_fp = {spec.fingerprint: spec for spec in specs}
    for fp, task_id in task_by_fp.items():
        envelope = envelopes[task_id]
        # Prefer the shared store (already parsed-validated path), fall
        # back to the inline copy the worker always embeds.
        result = cache.load(fp) if cache is not None else None
        if result is None:
            result = experiment_from_dict(envelope["payload"]["experiment"])
            if cache is not None:
                # The worker's store isn't ours (different cache topology)
                # — keep the copy so our side's revisits are free too.
                cache.store(fp, result, spec=specs_by_fp[fp].to_dict())
        results_by_fp[fp] = result
    return [results_by_fp[spec.fingerprint] for spec in specs]


# --------------------------------------------------------------------- #
# Dataset-run sharding: the "multihost" executor kind
# --------------------------------------------------------------------- #


class MultiHostExecutor:
    """``map_sequences`` over a shared work queue instead of local processes.

    Drop-in peer of :class:`~repro.engine.scheduler.SerialExecutor` /
    :class:`~repro.engine.scheduler.ParallelExecutor`: one sequence task
    per sequence, results reassembled in submission order, so a dataset
    run through the fleet is byte-identical to the serial loop.

    Requires the *declarative* target (a
    :class:`~repro.core.config.SystemConfig`) — a live system instance
    cannot be shipped to another host.

    Parameters
    ----------
    queue_dir:
        The shared queue directory workers poll (``repro worker <dir>``).
    cache_dir:
        Shared sequence-result store; default ``<queue_dir>/cache``.
    dataset_spec:
        Optional :class:`~repro.api.spec.DatasetSpec` dict; when given,
        sequences that belong to that dataset ship as tiny
        ``(dataset, index)`` references instead of inline track sets.
    timeout / poll_interval:
        Straggler budget for each ``map_sequences`` call.
    """

    #: Like ParallelExecutor.workers — the fleet size is unknown to the
    #: coordinator, so report the only honest number for local planning.
    workers = 0

    def __init__(
        self,
        queue_dir: Union[str, Path],
        *,
        cache_dir: Optional[Union[str, Path]] = "auto",
        dataset_spec: Optional[Dict[str, Any]] = None,
        lease_ttl: Optional[float] = None,
        timeout: Optional[float] = None,
        poll_interval: float = 0.2,
    ):
        kwargs = {} if lease_ttl is None else {"lease_ttl": lease_ttl}
        self.queue = FileWorkQueue(queue_dir, **kwargs)
        if cache_dir == "auto":
            cache_dir = default_cache_dir(self.queue.root)
        self.cache_dir = cache_dir
        self.dataset_spec = dataset_spec
        self.timeout = timeout
        self.poll_interval = poll_interval

    def _sequence_task(self, config, sequence: Sequence, index: int) -> Dict[str, Any]:
        if self.dataset_spec is not None:
            return protocol.sequence_task(
                config, dataset=self.dataset_spec, index=index
            )
        return protocol.sequence_task(config, sequence)

    def map_sequences(
        self,
        target,
        sequences: List[Sequence],
        *,
        on_progress: Optional[ProgressFn] = None,
    ) -> List[SequenceResult]:
        from repro.core.config import SystemConfig

        if not isinstance(target, SystemConfig):
            raise TypeError(
                "the multihost executor needs a SystemConfig (a live "
                f"{type(target).__name__} cannot be shipped to other hosts)"
            )
        if not sequences:
            return []
        store = (
            protocol.SequenceResultStore(Path(self.cache_dir) / SEQ_CACHE_SUBDIR)
            if self.cache_dir is not None
            else None
        )
        results: Dict[int, SequenceResult] = {}
        task_ids: Dict[int, str] = {}
        labels: Dict[str, str] = {}
        for i, sequence in enumerate(sequences):
            task = self._sequence_task(target, sequence, i)
            cached = store.load(task["fingerprint"]) if store is not None else None
            if cached is not None:
                results[i] = cached
                if on_progress is not None:
                    on_progress(len(results), len(sequences), sequence.name)
                continue
            task_ids[i] = self.queue.submit(task)
            labels[task_ids[i]] = sequence.name
        if task_ids:
            done_offset = len(results)
            envelopes = _wait_for_results(
                self.queue,
                list(task_ids.values()),
                poll_interval=self.poll_interval,
                timeout=self.timeout,
                on_progress=(
                    None
                    if on_progress is None
                    else lambda done, total, label: on_progress(
                        done_offset + done, len(sequences), label
                    )
                ),
                labels=labels,
            )
            from repro.harness.io import sequence_result_from_dict

            for i, task_id in task_ids.items():
                results[i] = sequence_result_from_dict(
                    envelopes[task_id]["payload"]["sequence"]
                )
        return [results[i] for i in range(len(sequences))]


# --------------------------------------------------------------------- #
# Executor registration
# --------------------------------------------------------------------- #

from repro.api.registry import register_executor  # noqa: E402

#: Environment fallback for the shared queue directory when the exec spec
#: doesn't carry one (mirrors REPRO_CACHE_DIR for caches).
QUEUE_DIR_ENV = "REPRO_QUEUE_DIR"


@register_executor("multihost")
def _multihost_executor(workers: Optional[int], queue_dir: Optional[str] = None):
    """Fan a dataset run out to workers polling a shared queue directory.

    ``workers`` is ignored — fleet size is whoever runs ``repro worker``
    against the queue.  The queue directory comes from
    ``ExecSpec.queue_dir`` or the ``REPRO_QUEUE_DIR`` environment
    variable.
    """
    queue_dir = queue_dir or os.environ.get(QUEUE_DIR_ENV)
    if not queue_dir:
        raise ValueError(
            "the multihost executor needs a queue directory: set "
            f"ExecSpec(queue_dir=...) or the {QUEUE_DIR_ENV} environment variable"
        )
    return MultiHostExecutor(queue_dir)
