"""Durable file-based work queue: atomic leases over a shared directory.

The broker is the filesystem — any directory visible to every host (NFS,
a shared volume, or plain local disk for same-box workers) is a queue.
No server process, no sockets, no extra dependencies; all transitions
are single ``rename``/``replace`` calls, which POSIX makes atomic within
a filesystem.

Layout under the queue root::

    tasks/<task_id>.json     pending, claimable by any worker
    leases/<task_id>.json    claimed; file mtime + lease_ttl = deadline
    results/<task_id>.json   finished result envelope
    dead/<task_id>.json      dead-lettered after max_attempts failures

Lifecycle:

* **submit** writes ``tasks/<id>.json`` atomically (tmp + rename).
* **claim** renames ``tasks/<id>.json`` → ``leases/<id>.json``.  Rename
  fails for every process but one, so exactly one worker wins each task
  with no locking.
* **heartbeat** is ``os.utime`` on the lease file — the lease deadline is
  its mtime plus the TTL, so renewal is one syscall and crash detection
  needs no clock agreement beyond the shared filesystem's.
* **complete** writes the result, then removes the lease.  A crash
  between the two leaves both files; reconciliation treats any task with
  a result as done.
* **recover_expired** requeues leases past their deadline (incrementing
  the attempt count) and dead-letters tasks that exhausted
  ``max_attempts`` — the crash-safety half of the contract: a SIGKILL'd
  worker's shard reappears in ``tasks/`` after one TTL.

Because execution is deterministic, the races left open are benign: a
worker that outlives its lease at worst duplicates work, producing a
byte-identical result envelope.
"""

from __future__ import annotations

import json
import os
import socket
import time
import uuid
from pathlib import Path
from typing import Any, Dict, List, Optional, Union

from repro.cluster.protocol import validate_task
from repro.obs.registry import MetricsRegistry, resolve_registry

#: Default seconds a claimed task may go without a heartbeat before any
#: observer may re-queue it.
DEFAULT_LEASE_TTL = 60.0

#: Default number of lease grants (first try included) before dead-letter.
DEFAULT_MAX_ATTEMPTS = 3


def default_worker_id() -> str:
    """``host:pid`` — unique enough across a shared-filesystem fleet."""
    return f"{socket.gethostname()}:{os.getpid()}"


class Lease:
    """One claimed task: the envelope plus renewal/ack handles."""

    def __init__(self, queue: "FileWorkQueue", task_id: str, task: Dict[str, Any]):
        self.queue = queue
        self.task_id = task_id
        self.task = task

    @property
    def path(self) -> Path:
        return self.queue.lease_dir / f"{self.task_id}.json"

    def heartbeat(self) -> bool:
        """Renew the lease (reset its deadline).

        Returns ``False`` when the lease no longer exists — an observer
        judged this worker dead and re-queued the task.  The holder should
        stop billing work against it (finishing anyway is harmless: the
        result is byte-identical to the re-executed one).
        """
        try:
            os.utime(self.path)
            return True
        except OSError:
            return False

    def complete(self, result: Dict[str, Any]) -> Path:
        """Write the result envelope, then release the lease."""
        path = self.queue._write_json(self.queue.result_dir / f"{self.task_id}.json", result)
        self.path.unlink(missing_ok=True)
        self.queue._m_tasks.inc(labels=("completed",))
        return path

    def fail(self, error: str) -> None:
        """Record a failure and re-queue (or dead-letter) the task."""
        self.queue._requeue(self.task_id, self.task, error=error, lease_path=self.path)


class FileWorkQueue:
    """A durable task queue over one shared directory (see module docs)."""

    def __init__(
        self,
        root: Union[str, Path],
        *,
        lease_ttl: float = DEFAULT_LEASE_TTL,
        max_attempts: int = DEFAULT_MAX_ATTEMPTS,
        metrics: Optional[MetricsRegistry] = None,
    ):
        if lease_ttl <= 0:
            raise ValueError(f"lease_ttl must be positive, got {lease_ttl}")
        if max_attempts < 1:
            raise ValueError(f"max_attempts must be >= 1, got {max_attempts}")
        self.root = Path(root)
        self.lease_ttl = float(lease_ttl)
        self.max_attempts = int(max_attempts)
        self.task_dir = self.root / "tasks"
        self.lease_dir = self.root / "leases"
        self.result_dir = self.root / "results"
        self.dead_dir = self.root / "dead"
        for d in (self.task_dir, self.lease_dir, self.result_dir, self.dead_dir):
            d.mkdir(parents=True, exist_ok=True)
        # Per-process view of this process's queue traffic (every process
        # touching a shared queue has its own registry; the fleet-wide
        # truth stays on disk and is what `repro status` reads).
        registry = resolve_registry(metrics)
        self.metrics = registry
        self._m_tasks = registry.counter(
            "cluster_tasks_total",
            "queue transitions performed by this process, by event",
            labels=("event",),
        )
        self._m_depth = registry.gauge(
            "cluster_queue_depth", "tasks by state at the last stats() sweep",
            labels=("state",),
        )
        self._m_lease_age = registry.gauge(
            "cluster_oldest_lease_age_seconds",
            "age of the oldest live lease at the last stats() sweep",
        )

    # ----------------------------------------------------------------- #
    # Producer side
    # ----------------------------------------------------------------- #

    def submit(self, task: Dict[str, Any], *, task_id: Optional[str] = None) -> str:
        """Enqueue one task envelope; returns its queue-unique id.

        Generated ids embed the content fingerprint for debuggability but
        stay unique per submission, so re-dispatching a grid never
        collides with an in-flight run.
        """
        validate_task(task)
        if task_id is None:
            task_id = f"{task['fingerprint'][:12]}-{uuid.uuid4().hex[:8]}"
        record = dict(task)
        record.setdefault("attempts", 0)
        record.setdefault("history", [])
        record["id"] = task_id
        self._write_json(self.task_dir / f"{task_id}.json", record)
        self._m_tasks.inc(labels=("submitted",))
        return task_id

    def result(self, task_id: str) -> Optional[Dict[str, Any]]:
        """The finished envelope for ``task_id``, or ``None`` if pending.

        A partially-visible write (rare on NFS renames, impossible
        locally) reads as still-pending and is retried by the caller's
        poll loop.
        """
        try:
            with open(self.result_dir / f"{task_id}.json", "r", encoding="utf-8") as fh:
                return json.load(fh)
        except (OSError, json.JSONDecodeError):
            return None

    def dead_letter(self, task_id: str) -> Optional[Dict[str, Any]]:
        """The dead-letter record for ``task_id``, or ``None``."""
        try:
            with open(self.dead_dir / f"{task_id}.json", "r", encoding="utf-8") as fh:
                return json.load(fh)
        except (OSError, json.JSONDecodeError):
            return None

    # ----------------------------------------------------------------- #
    # Worker side
    # ----------------------------------------------------------------- #

    def claim(self, worker_id: Optional[str] = None) -> Optional[Lease]:
        """Atomically claim one pending task; ``None`` when queue is empty.

        Claim order follows sorted task ids.  Losing a rename race just
        moves on to the next candidate.
        """
        worker_id = worker_id or default_worker_id()
        for entry in sorted(self.task_dir.glob("*.json")):
            lease_path = self.lease_dir / entry.name
            try:
                os.rename(entry, lease_path)
            except OSError:
                continue  # another worker won this one
            try:
                with open(lease_path, "r", encoding="utf-8") as fh:
                    task = json.load(fh)
                validate_task(task)
            except (json.JSONDecodeError, ValueError, KeyError, OSError) as exc:
                self._dead_letter_raw(entry.stem, lease_path, f"unreadable task: {exc}")
                continue
            task["worker"] = worker_id
            task["claimed_at"] = time.time()
            # Rewrite-in-place (atomic, same dir) both records the claimant
            # and freshens mtime, which is what the lease deadline reads.
            self._write_json(lease_path, task)
            self._m_tasks.inc(labels=("claimed",))
            return Lease(self, entry.stem, task)
        return None

    # ----------------------------------------------------------------- #
    # Recovery / observation
    # ----------------------------------------------------------------- #

    def recover_expired(self, *, now: Optional[float] = None) -> List[str]:
        """Re-queue every lease past its deadline; returns affected ids.

        Tasks whose attempt budget is exhausted move to ``dead/`` instead.
        Any observer may call this — workers between claims, the
        coordinator while polling.  Requeue is a single atomic rename of
        the held lease back into ``tasks/``, so concurrent recoveries (or
        a recovery racing a claim) at worst duplicate deterministic work —
        they can never strand a shard outside both directories.
        """
        now = time.time() if now is None else now
        recovered: List[str] = []
        for lease_path in sorted(self.lease_dir.glob("*.json")):
            try:
                expired = lease_path.stat().st_mtime + self.lease_ttl < now
            except OSError:
                continue  # completed/recovered concurrently
            if not expired:
                continue
            task_id = lease_path.stem
            if (self.result_dir / f"{task_id}.json").exists():
                # Finished but crashed before releasing the lease.
                lease_path.unlink(missing_ok=True)
                continue
            try:
                with open(lease_path, "r", encoding="utf-8") as fh:
                    task = json.load(fh)
                validate_task(task)
            except (json.JSONDecodeError, ValueError, KeyError, OSError) as exc:
                self._dead_letter_raw(task_id, lease_path, f"corrupt lease: {exc}")
                recovered.append(task_id)
                continue
            worker = task.get("worker", "?")
            self._m_tasks.inc(labels=("lease_expired",))
            self._requeue(
                task_id, task,
                error=f"lease expired (worker {worker})",
                lease_path=lease_path,
            )
            recovered.append(task_id)
        return recovered

    def stats(self, *, now: Optional[float] = None) -> Dict[str, int]:
        counts = {
            "pending": sum(1 for _ in self.task_dir.glob("*.json")),
            "leased": sum(1 for _ in self.lease_dir.glob("*.json")),
            "done": sum(1 for _ in self.result_dir.glob("*.json")),
            "dead": sum(1 for _ in self.dead_dir.glob("*.json")),
        }
        # Refresh the observational gauges as a side effect: callers that
        # poll stats() (workers' health beats, the coordinator) keep the
        # registry's queue-depth view current for free.
        now = time.time() if now is None else now
        for state, count in counts.items():
            self._m_depth.set(count, labels=(state,))
        oldest = 0.0
        for lease_path in self.lease_dir.glob("*.json"):
            try:
                oldest = max(oldest, now - lease_path.stat().st_mtime)
            except OSError:
                continue
        self._m_lease_age.set(oldest)
        return counts

    # ----------------------------------------------------------------- #
    # Internals
    # ----------------------------------------------------------------- #

    def _write_json(self, path: Path, payload: Dict[str, Any]) -> Path:
        tmp = path.with_suffix(f".tmp.{os.getpid()}.{uuid.uuid4().hex[:6]}")
        with open(tmp, "w", encoding="utf-8") as fh:
            json.dump(payload, fh, allow_nan=True)
        os.replace(tmp, path)
        return path

    def _requeue(
        self,
        task_id: str,
        task: Dict[str, Any],
        *,
        error: str,
        lease_path: Path,
    ) -> None:
        record = dict(task)
        record["attempts"] = int(record.get("attempts", 0)) + 1
        record.setdefault("history", []).append(error)
        record.pop("worker", None)
        record.pop("claimed_at", None)
        if record["attempts"] >= self.max_attempts:
            self._write_json(self.dead_dir / f"{task_id}.json", record)
            lease_path.unlink(missing_ok=True)
            self._m_tasks.inc(labels=("dead_lettered",))
            return
        self._m_tasks.inc(labels=("retried",))
        # Rewrite the held lease with the updated record, then move it back
        # to pending with ONE atomic rename.  Writing to tasks/ first and
        # unlinking the lease after would open a window where a concurrent
        # claim renames the fresh task file onto the still-present lease
        # path and our unlink then deletes the claimant's lease — losing
        # the shard entirely.  With the rename protocol the task is never
        # in zero directories: any race at worst duplicates deterministic
        # work, it cannot lose it.
        try:
            self._write_json(lease_path, record)
            os.rename(lease_path, self.task_dir / f"{task_id}.json")
        except OSError:
            pass  # completed/recovered concurrently; their state wins

    def _dead_letter_raw(self, task_id: str, lease_path: Path, error: str) -> None:
        """Dead-letter a task whose envelope cannot even be parsed."""
        self._write_json(
            self.dead_dir / f"{task_id}.json",
            {"id": task_id, "error": error, "history": [error]},
        )
        lease_path.unlink(missing_ok=True)
        self._m_tasks.inc(labels=("dead_lettered",))
