"""Task and result envelopes for the distributed execution subsystem.

Two shard granularities travel through the work queue
(:mod:`repro.cluster.queue`):

* **experiment** tasks — a full declarative
  :class:`~repro.api.spec.ExperimentSpec`; the worker routes the finished
  :class:`~repro.harness.experiment.ExperimentResult` through the shared
  content-addressed :class:`~repro.api.cache.ResultCache`, so a revisited
  operating point anywhere in the fleet is served without re-execution.
* **sequence** tasks — one ``(SystemConfig, sequence)`` unit of a dataset
  run.  The sequence ships either as a *reference* (``dataset spec +
  index`` — tiny, rebuilt deterministically on the worker) or *inline*
  (the full ground-truth track set, for ad-hoc datasets the worker cannot
  reconstruct).  Finished :class:`~repro.core.results.SequenceResult`
  payloads are content-addressed in a :class:`SequenceResultStore` under
  the same cache root.

Both envelope kinds serialize the system via
:func:`~repro.core.config.config_to_dict`, so every config field —
including the cost-layer ``device`` that makes workers attach a
:class:`~repro.engine.stages.TimingAccountingStage` — rides along and is
part of the task fingerprint: shards of the same system on different
modeled devices never alias in the shared store, and reassembled results
carry per-frame timing byte-identical to a local serial run.

Every envelope is plain JSON.  Result envelopes always carry the payload
inline *and* the cache fingerprint it was stored under — readers prefer
the shared store (free revisits) and fall back to the inline copy, so a
coordinator and a worker never have to agree on cache topology for a run
to complete.
"""

from __future__ import annotations

import hashlib
import json
import os
from pathlib import Path
from typing import Any, Dict, Optional, Tuple, Union

import numpy as np

from repro.core.config import SystemConfig, config_from_dict, config_to_dict
from repro.core.results import SequenceResult
from repro.datasets.types import ObjectTrack, Sequence

TASK_FORMAT = "repro-cluster-task/1"
RESULT_FORMAT = "repro-cluster-result/1"

#: Task kinds understood by :func:`repro.cluster.worker.execute_task`.
KIND_EXPERIMENT = "experiment"
KIND_SEQUENCE = "sequence"


# --------------------------------------------------------------------- #
# Ground-truth sequence shipping (inline payloads)
# --------------------------------------------------------------------- #


def gt_sequence_to_dict(sequence: Sequence) -> Dict[str, Any]:
    """Serialize a ground-truth :class:`Sequence` (geometry + tracks)."""
    return {
        "name": sequence.name,
        "width": sequence.width,
        "height": sequence.height,
        "num_frames": sequence.num_frames,
        "fps": sequence.fps,
        "tracks": [
            {
                "track_id": t.track_id,
                "label": t.label,
                "first_frame": t.first_frame,
                "boxes": t.boxes.tolist(),
                "occlusion": t.occlusion.tolist(),
                "truncation": t.truncation.tolist(),
            }
            for t in sequence.tracks
        ],
    }


def gt_sequence_from_dict(data: Dict[str, Any]) -> Sequence:
    """Inverse of :func:`gt_sequence_to_dict` (bit-identical arrays)."""
    return Sequence(
        name=data["name"],
        width=data["width"],
        height=data["height"],
        num_frames=data["num_frames"],
        fps=data["fps"],
        tracks=[
            ObjectTrack(
                track_id=t["track_id"],
                label=t["label"],
                first_frame=t["first_frame"],
                boxes=np.asarray(t["boxes"], dtype=np.float64).reshape(-1, 4),
                occlusion=np.asarray(t["occlusion"], dtype=np.float64),
                truncation=np.asarray(t["truncation"], dtype=np.float64),
            )
            for t in data["tracks"]
        ],
    )


def _gt_sequence_fingerprint(sequence: Sequence) -> str:
    """Content digest of one sequence's ground truth (mirrors
    :func:`repro.api.cache.fingerprint_dataset`, per sequence)."""
    h = hashlib.sha256()
    h.update(
        repr(
            (sequence.name, sequence.width, sequence.height,
             sequence.num_frames, sequence.fps)
        ).encode("utf-8")
    )
    for track in sequence.tracks:
        h.update(repr((track.track_id, track.label, track.first_frame)).encode("utf-8"))
        h.update(track.boxes.tobytes())
        h.update(track.occlusion.tobytes())
        h.update(track.truncation.tobytes())
    return h.hexdigest()


# --------------------------------------------------------------------- #
# Task envelopes
# --------------------------------------------------------------------- #


def experiment_task(
    spec_dict: Dict[str, Any], fingerprint: str, *, use_cache: bool = True
) -> Dict[str, Any]:
    """A task envelope for one full :class:`ExperimentSpec`.

    Takes the spec as a plain dict (``spec.to_dict()``) plus its content
    fingerprint so this module never imports the api layer at call time.
    ``use_cache=False`` orders the executing worker to recompute even
    when its shared store already holds the fingerprint.
    """
    return {
        "format": TASK_FORMAT,
        "kind": KIND_EXPERIMENT,
        "fingerprint": fingerprint,
        "payload": {"spec": spec_dict, "use_cache": use_cache},
    }


def sequence_task(
    config: SystemConfig,
    sequence: Optional[Sequence] = None,
    *,
    dataset: Optional[Dict[str, Any]] = None,
    index: Optional[int] = None,
    frame_range: Optional[Tuple[int, int]] = None,
) -> Dict[str, Any]:
    """A task envelope for one ``(config, sequence)`` shard.

    Pass either a concrete ``sequence`` (shipped inline) or a
    ``dataset``-spec dict plus sequence ``index`` (shipped as a reference
    the worker resolves through the dataset registry).  The fingerprint
    content-addresses the resulting :class:`SequenceResult`: the system
    config plus the sequence's ground-truth content (inline) or its
    ``(dataset, index)`` coordinates (reference).

    ``frame_range=(start, stop)`` narrows the shard to frames
    ``[start, stop)`` — frame-level parallelism for system kinds whose
    frames are independent (the executing worker enforces causal
    validity, see :func:`repro.engine.scheduler.run_frame_range`).  The
    range is part of the fingerprint, so partial- and full-sequence
    results never alias in the shared store; omitting it keeps existing
    fingerprints unchanged.
    """
    if (sequence is None) == (dataset is None or index is None):
        raise ValueError("pass exactly one of sequence= or (dataset=, index=)")
    if sequence is not None:
        seq_key: Any = {"content": _gt_sequence_fingerprint(sequence)}
        payload: Dict[str, Any] = {"inline": gt_sequence_to_dict(sequence)}
    else:
        seq_key = {"dataset": dataset, "index": index}
        payload = {"dataset": dataset, "index": index}
    key = {
        "format": "repro-seqresult-key/1",
        "system": config_to_dict(config),
        "sequence": seq_key,
    }
    envelope_payload = {"system": config_to_dict(config), "sequence": payload}
    if frame_range is not None:
        start, stop = (int(frame_range[0]), int(frame_range[1]))
        if not (0 <= start < stop):
            raise ValueError(
                f"frame_range must satisfy 0 <= start < stop, got {frame_range}"
            )
        key["frame_range"] = [start, stop]
        envelope_payload["frame_range"] = [start, stop]
    canonical = json.dumps(key, sort_keys=True, separators=(",", ":"))
    return {
        "format": TASK_FORMAT,
        "kind": KIND_SEQUENCE,
        "fingerprint": hashlib.sha256(canonical.encode("utf-8")).hexdigest(),
        "payload": envelope_payload,
    }


def resolve_task_sequence(payload: Dict[str, Any]) -> Sequence:
    """The concrete :class:`Sequence` a sequence-task payload names."""
    entry = payload["sequence"]
    if "inline" in entry:
        return gt_sequence_from_dict(entry["inline"])
    from repro.api.session import build_dataset
    from repro.api.spec import DatasetSpec

    dataset = build_dataset(DatasetSpec.from_dict(entry["dataset"]))
    return dataset.sequences[entry["index"]]


def resolve_task_config(payload: Dict[str, Any]) -> SystemConfig:
    return config_from_dict(payload["system"])


def validate_task(task: Dict[str, Any]) -> Dict[str, Any]:
    """Check an envelope's format/kind; returns it for chaining."""
    if task.get("format") != TASK_FORMAT:
        raise ValueError(
            f"unsupported task format {task.get('format')!r}, expected {TASK_FORMAT!r}"
        )
    if task.get("kind") not in (KIND_EXPERIMENT, KIND_SEQUENCE):
        raise ValueError(f"unknown task kind {task.get('kind')!r}")
    return task


# --------------------------------------------------------------------- #
# Result envelopes
# --------------------------------------------------------------------- #


def result_envelope(
    kind: str,
    fingerprint: str,
    payload: Dict[str, Any],
    *,
    worker: str,
    cached: bool,
) -> Dict[str, Any]:
    """A finished-task envelope: inline payload + cache coordinates.

    ``cached`` records whether the worker *served* the fingerprint from
    the shared store (no execution happened).
    """
    return {
        "format": RESULT_FORMAT,
        "kind": kind,
        "fingerprint": fingerprint,
        "worker": worker,
        "cached": cached,
        "payload": payload,
    }


class SequenceResultStore:
    """Content-addressed store of serialized :class:`SequenceResult`\\ s.

    The sequence-granularity sibling of
    :class:`~repro.api.cache.ResultCache`, sharing its two-level
    ``<root>/<fp[:2]>/<fp>.json`` layout and atomic-write/corrupt-is-a-miss
    semantics.  Lives under ``<cache root>/seq/`` so one shared directory
    serves both granularities.
    """

    def __init__(self, root: Union[str, Path]):
        self.root = Path(root)

    def path_for(self, fingerprint: str) -> Path:
        return self.root / fingerprint[:2] / f"{fingerprint}.json"

    def load(self, fingerprint: str) -> Optional[SequenceResult]:
        from repro.harness.io import sequence_result_from_dict

        try:
            with open(self.path_for(fingerprint), "r", encoding="utf-8") as fh:
                payload = json.load(fh)
            return sequence_result_from_dict(payload["result"])
        except (OSError, json.JSONDecodeError, KeyError, ValueError, TypeError):
            return None

    def store(self, fingerprint: str, result: SequenceResult) -> Path:
        from repro.harness.io import sequence_result_to_dict

        path = self.path_for(fingerprint)
        path.parent.mkdir(parents=True, exist_ok=True)
        tmp = path.with_suffix(f".tmp.{os.getpid()}")
        with open(tmp, "w", encoding="utf-8") as fh:
            json.dump(
                {
                    "format": "repro-seqresult-cache/1",
                    "fingerprint": fingerprint,
                    "result": sequence_result_to_dict(result),
                },
                fh,
                allow_nan=True,
            )
        os.replace(tmp, path)
        return path

    def __contains__(self, fingerprint: str) -> bool:
        return self.path_for(fingerprint).exists()
