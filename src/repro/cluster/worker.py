"""Worker daemon: crash-safe claim → execute → ack loops.

A worker owns nothing but a queue directory and (optionally) a shared
cache root.  Its loop is::

    claim a lease  →  heartbeat in the background  →  execute  →
    write result envelope  →  release the lease

Every transition is durable (see :mod:`repro.cluster.queue`), so a
worker may be SIGKILL'd at any point: an unfinished shard's lease
expires and the task is re-leased to a peer; a finished-but-unreleased
shard reconciles as done.  Execution errors are *not* crashes — the
worker records the traceback on the task and re-queues it, letting the
attempt budget decide when it becomes a dead letter.

Cache routing: experiment tasks run through a
:class:`~repro.api.Session` on the shared cache, sequence tasks through
a :class:`~repro.cluster.protocol.SequenceResultStore` under the same
root — so any fingerprint any host has computed is served, not re-run.
"""

from __future__ import annotations

import threading
import time
import traceback
from pathlib import Path
from typing import Any, Callable, Dict, Optional, Tuple, Union

from repro.cluster.protocol import (
    KIND_EXPERIMENT,
    KIND_SEQUENCE,
    SequenceResultStore,
    resolve_task_config,
    resolve_task_sequence,
    result_envelope,
)
from repro.cluster.queue import FileWorkQueue, Lease, default_worker_id

#: Cache subdirectories under a shared queue root (kept separate from the
#: queue's own state dirs).
CACHE_SUBDIR = "cache"
SEQ_CACHE_SUBDIR = "seq"


def default_cache_dir(queue_root: Union[str, Path]) -> Path:
    """Where dispatch and workers meet by default: ``<queue>/cache``."""
    return Path(queue_root) / CACHE_SUBDIR


def execute_task(
    task: Dict[str, Any],
    *,
    cache_dir: Optional[Union[str, Path]] = None,
    worker_id: str = "inline",
) -> Dict[str, Any]:
    """Execute one task envelope and build its result envelope.

    Pure with respect to the queue — callers (the worker loop, tests,
    an inline fallback) decide where the envelope goes.  ``cached`` in
    the returned envelope reports whether the fingerprint was served
    from the shared store without executing the pipeline.
    """
    kind = task["kind"]
    fingerprint = task["fingerprint"]
    if kind == KIND_EXPERIMENT:
        from dataclasses import replace

        from repro.api.session import Session
        from repro.api.spec import ExecSpec, ExperimentSpec
        from repro.harness.io import experiment_to_dict

        session = Session(cache_dir=cache_dir)
        spec = ExperimentSpec.from_dict(task["payload"]["spec"])
        # Execute locally whatever the spec's plan says — a "multihost"
        # exec plan reaching a worker must not recurse into dispatch.
        # The fingerprint excludes exec, so cache routing is unchanged.
        result = session.run(
            replace(spec, exec=ExecSpec(executor="serial")),
            use_cache=task["payload"].get("use_cache", True),
        )
        return result_envelope(
            kind,
            fingerprint,
            {"experiment": experiment_to_dict(result)},
            worker=worker_id,
            cached=session.cache_hits > 0,
        )
    if kind == KIND_SEQUENCE:
        from repro.core.config import build_system
        from repro.harness.io import sequence_result_to_dict

        store = (
            SequenceResultStore(Path(cache_dir) / SEQ_CACHE_SUBDIR)
            if cache_dir is not None
            else None
        )
        cached = True
        result = store.load(fingerprint) if store is not None else None
        if result is None:
            cached = False
            config = resolve_task_config(task["payload"])
            sequence = resolve_task_sequence(task["payload"])
            frame_range = task["payload"].get("frame_range")
            if frame_range is not None:
                from repro.engine.scheduler import run_frame_range

                # No clamping: a range beyond the sequence raises (the
                # task records a failure) rather than storing a silently
                # truncated result under the full-range fingerprint.
                start, stop = frame_range
                result = run_frame_range(config, sequence, int(start), int(stop))
            else:
                result = build_system(config).process_sequence(sequence)
            if store is not None:
                store.store(fingerprint, result)
        return result_envelope(
            kind,
            fingerprint,
            {"sequence": sequence_result_to_dict(result)},
            worker=worker_id,
            cached=cached,
        )
    raise ValueError(f"unknown task kind {kind!r}")


class _Heartbeat:
    """Background lease renewal while a shard executes."""

    def __init__(self, lease: Lease, interval: float):
        self._lease = lease
        self._interval = interval
        self._stop = threading.Event()
        self.lost = False
        self._thread = threading.Thread(target=self._run, daemon=True)

    def _run(self) -> None:
        while not self._stop.wait(self._interval):
            if not self._lease.heartbeat():
                # An observer re-queued us; keep executing (the result is
                # deterministic and idempotent) but record the loss.
                self.lost = True
                return

    def __enter__(self) -> "_Heartbeat":
        self._thread.start()
        return self

    def __exit__(self, *exc_info) -> None:
        self._stop.set()
        self._thread.join(timeout=1.0)


class Worker:
    """A claim/execute/ack loop over one :class:`FileWorkQueue`.

    Parameters
    ----------
    queue:
        The queue (or its root directory).
    cache_dir:
        Shared result store; defaults to ``<queue root>/cache``.  Pass
        ``cache_dir=None`` explicitly via ``use_cache=False`` semantics
        by giving a falsy path — the CLI exposes ``--no-cache``.
    worker_id:
        Defaults to ``host:pid``.
    heartbeat_interval:
        Lease renewal period; defaults to a third of the queue's TTL.
    """

    def __init__(
        self,
        queue: Union[FileWorkQueue, str, Path],
        *,
        cache_dir: Optional[Union[str, Path]] = "auto",
        worker_id: Optional[str] = None,
        heartbeat_interval: Optional[float] = None,
    ):
        self.queue = queue if isinstance(queue, FileWorkQueue) else FileWorkQueue(queue)
        if cache_dir == "auto":
            cache_dir = default_cache_dir(self.queue.root)
        self.cache_dir = cache_dir
        self.worker_id = worker_id or default_worker_id()
        self.heartbeat_interval = (
            heartbeat_interval
            if heartbeat_interval is not None
            else max(0.05, self.queue.lease_ttl / 3.0)
        )
        self.tasks_done = 0
        self.tasks_failed = 0
        #: Shards finished after an observer had already re-leased them
        #: (the duplicate result is byte-identical, so completion is
        #: harmless — but the count signals the lease TTL is too short
        #: for the shard size).
        self.leases_lost = 0

    def run_one(self) -> bool:
        """Claim and finish (or fail) at most one task; ``True`` if claimed."""
        lease = self.queue.claim(self.worker_id)
        if lease is None:
            return False
        try:
            with _Heartbeat(lease, self.heartbeat_interval) as heartbeat:
                envelope = execute_task(
                    lease.task, cache_dir=self.cache_dir, worker_id=self.worker_id
                )
            if heartbeat.lost:
                self.leases_lost += 1
                envelope["lease_lost"] = True
        except KeyboardInterrupt:
            # Put the shard straight back rather than waiting out the TTL.
            lease.fail("interrupted")
            raise
        except Exception:
            self.tasks_failed += 1
            lease.fail(traceback.format_exc(limit=20))
            return True
        lease.complete(envelope)
        self.tasks_done += 1
        return True

    def run(
        self,
        *,
        max_tasks: Optional[int] = None,
        idle_timeout: Optional[float] = None,
        poll_interval: float = 0.2,
        on_task: Optional[Callable[[int], None]] = None,
        should_stop: Optional[Callable[[], bool]] = None,
    ) -> int:
        """Drain the queue; returns the number of tasks processed.

        Runs until ``max_tasks`` tasks were processed, the queue stayed
        empty for ``idle_timeout`` seconds, or ``should_stop()`` turns
        true — whichever comes first (``None`` limits mean forever, the
        daemon default).  Between claims the worker also sweeps expired
        peers' leases, so a fleet self-heals without a coordinator.
        """
        processed = 0
        idle_since: Optional[float] = None
        while True:
            if should_stop is not None and should_stop():
                return processed
            if max_tasks is not None and processed >= max_tasks:
                return processed
            self.queue.recover_expired()
            if self.run_one():
                processed += 1
                idle_since = None
                if on_task is not None:
                    on_task(processed)
                continue
            now = time.time()
            if idle_since is None:
                idle_since = now
            if idle_timeout is not None and now - idle_since >= idle_timeout:
                return processed
            time.sleep(poll_interval)
