"""Worker daemon: crash-safe claim → execute → ack loops.

A worker owns nothing but a queue directory and (optionally) a shared
cache root.  Its loop is::

    claim a lease  →  heartbeat in the background  →  execute  →
    write result envelope  →  release the lease

Every transition is durable (see :mod:`repro.cluster.queue`), so a
worker may be SIGKILL'd at any point: an unfinished shard's lease
expires and the task is re-leased to a peer; a finished-but-unreleased
shard reconciles as done.  Execution errors are *not* crashes — the
worker records the traceback on the task and re-queues it, letting the
attempt budget decide when it becomes a dead letter.

Cache routing: experiment tasks run through a
:class:`~repro.api.Session` on the shared cache, sequence tasks through
a :class:`~repro.cluster.protocol.SequenceResultStore` under the same
root — so any fingerprint any host has computed is served, not re-run.
"""

from __future__ import annotations

import threading
import time
import traceback
from pathlib import Path
from typing import Any, Callable, Dict, Optional, Tuple, Union

from repro.cluster.protocol import (
    KIND_EXPERIMENT,
    KIND_SEQUENCE,
    SequenceResultStore,
    resolve_task_config,
    resolve_task_sequence,
    result_envelope,
)
from repro.cluster.queue import FileWorkQueue, Lease, default_worker_id
from repro.obs.health import HealthReporter, health_dir
from repro.obs.registry import (
    DEFAULT_LATENCY_BUCKETS,
    MetricsRegistry,
    resolve_registry,
)
from repro.obs.sinks import Sink, as_sinks

#: Cache subdirectories under a shared queue root (kept separate from the
#: queue's own state dirs).
CACHE_SUBDIR = "cache"
SEQ_CACHE_SUBDIR = "seq"

#: Most recent structured lease-lost events kept on the worker (and
#: published in its health snapshot).
MAX_LEASE_LOST_EVENTS = 20


def default_cache_dir(queue_root: Union[str, Path]) -> Path:
    """Where dispatch and workers meet by default: ``<queue>/cache``."""
    return Path(queue_root) / CACHE_SUBDIR


def execute_task(
    task: Dict[str, Any],
    *,
    cache_dir: Optional[Union[str, Path]] = None,
    worker_id: str = "inline",
) -> Dict[str, Any]:
    """Execute one task envelope and build its result envelope.

    Pure with respect to the queue — callers (the worker loop, tests,
    an inline fallback) decide where the envelope goes.  ``cached`` in
    the returned envelope reports whether the fingerprint was served
    from the shared store without executing the pipeline.
    """
    kind = task["kind"]
    fingerprint = task["fingerprint"]
    if kind == KIND_EXPERIMENT:
        from dataclasses import replace

        from repro.api.session import Session
        from repro.api.spec import ExecSpec, ExperimentSpec
        from repro.harness.io import experiment_to_dict

        session = Session(cache_dir=cache_dir)
        spec = ExperimentSpec.from_dict(task["payload"]["spec"])
        # Execute locally whatever the spec's plan says — a "multihost"
        # exec plan reaching a worker must not recurse into dispatch.
        # The fingerprint excludes exec, so cache routing is unchanged.
        result = session.run(
            replace(spec, exec=ExecSpec(executor="serial")),
            use_cache=task["payload"].get("use_cache", True),
        )
        return result_envelope(
            kind,
            fingerprint,
            {"experiment": experiment_to_dict(result)},
            worker=worker_id,
            cached=session.cache_hits > 0,
        )
    if kind == KIND_SEQUENCE:
        from repro.core.config import build_system
        from repro.harness.io import sequence_result_to_dict

        store = (
            SequenceResultStore(Path(cache_dir) / SEQ_CACHE_SUBDIR)
            if cache_dir is not None
            else None
        )
        cached = True
        result = store.load(fingerprint) if store is not None else None
        if result is None:
            cached = False
            config = resolve_task_config(task["payload"])
            sequence = resolve_task_sequence(task["payload"])
            frame_range = task["payload"].get("frame_range")
            if frame_range is not None:
                from repro.engine.scheduler import run_frame_range

                # No clamping: a range beyond the sequence raises (the
                # task records a failure) rather than storing a silently
                # truncated result under the full-range fingerprint.
                start, stop = frame_range
                result = run_frame_range(config, sequence, int(start), int(stop))
            else:
                result = build_system(config).process_sequence(sequence)
            if store is not None:
                store.store(fingerprint, result)
        return result_envelope(
            kind,
            fingerprint,
            {"sequence": sequence_result_to_dict(result)},
            worker=worker_id,
            cached=cached,
        )
    raise ValueError(f"unknown task kind {kind!r}")


class _Heartbeat:
    """Background lease renewal while a shard executes."""

    def __init__(self, lease: Lease, interval: float):
        self._lease = lease
        self._interval = interval
        self._stop = threading.Event()
        self.lost = False
        self._thread = threading.Thread(target=self._run, daemon=True)

    def _run(self) -> None:
        while not self._stop.wait(self._interval):
            if not self._lease.heartbeat():
                # An observer re-queued us; keep executing (the result is
                # deterministic and idempotent) but record the loss.
                self.lost = True
                return

    def __enter__(self) -> "_Heartbeat":
        self._thread.start()
        return self

    def __exit__(self, *exc_info) -> None:
        self._stop.set()
        self._thread.join(timeout=1.0)


class Worker:
    """A claim/execute/ack loop over one :class:`FileWorkQueue`.

    Parameters
    ----------
    queue:
        The queue (or its root directory).
    cache_dir:
        Shared result store; defaults to ``<queue root>/cache``.  Pass
        ``cache_dir=None`` explicitly via ``use_cache=False`` semantics
        by giving a falsy path — the CLI exposes ``--no-cache``.
    worker_id:
        Defaults to ``host:pid``.
    heartbeat_interval:
        Lease renewal period; defaults to a third of the queue's TTL.
    metrics:
        A :class:`~repro.obs.registry.MetricsRegistry` for this worker's
        counters (tasks by outcome, lease-lost events, per-task service
        time); defaults to the process-global registry.
    sinks:
        :class:`~repro.obs.sinks.Sink`\\ s receiving one ``worker.task``
        record per finished/failed task and a ``worker.lease_lost``
        record per lost lease.  Emitted, never closed — lifecycle
        belongs to the caller.
    health:
        ``"auto"`` writes health snapshots to ``<queue>/health/`` while
        :meth:`run` drains; a path overrides the directory; ``None``
        disables health reporting.
    """

    def __init__(
        self,
        queue: Union[FileWorkQueue, str, Path],
        *,
        cache_dir: Optional[Union[str, Path]] = "auto",
        worker_id: Optional[str] = None,
        heartbeat_interval: Optional[float] = None,
        metrics: Optional[MetricsRegistry] = None,
        sinks: Union[None, Sink, list] = None,
        health: Optional[Union[str, Path]] = "auto",
    ):
        self.queue = queue if isinstance(queue, FileWorkQueue) else FileWorkQueue(queue)
        if cache_dir == "auto":
            cache_dir = default_cache_dir(self.queue.root)
        self.cache_dir = cache_dir
        self.worker_id = worker_id or default_worker_id()
        self.heartbeat_interval = (
            heartbeat_interval
            if heartbeat_interval is not None
            else max(0.05, self.queue.lease_ttl / 3.0)
        )
        self.metrics = resolve_registry(metrics)
        self.sinks = as_sinks(sinks)
        if health == "auto":
            health = health_dir(self.queue.root)
        self._health_dir = Path(health) if health is not None else None
        self._health: Optional[HealthReporter] = None
        self.tasks_done = 0
        self.tasks_failed = 0
        #: Shards finished after an observer had already re-leased them
        #: (the duplicate result is byte-identical, so completion is
        #: harmless — but the count signals the lease TTL is too short
        #: for the shard size).
        self.leases_lost = 0
        #: Structured records of those losses (task id, elapsed seconds,
        #: attempt number), newest last; published in health snapshots.
        self.lease_lost_events: list = []
        self._m_tasks = self.metrics.counter(
            "worker_tasks_total", "tasks finished by this worker, by outcome",
            labels=("outcome",),
        )
        self._m_lease_lost = self.metrics.counter(
            "worker_leases_lost_total",
            "leases an observer expired while this worker kept executing",
        )
        self._m_task_seconds = self.metrics.histogram(
            "worker_task_seconds", "wall-clock service time per executed task",
            buckets=DEFAULT_LATENCY_BUCKETS,
        )

    def _record_lease_lost(self, lease: Lease, elapsed: float) -> None:
        """Satellite of the heartbeat-loss path: make the loss observable.

        Before observability, a lease lost mid-execution was silently
        folded into the envelope — no counter, no trace of *which* task
        or how far in.  Now every loss emits a structured event through
        the registry, the sinks, and the health snapshot.
        """
        event = {
            "task_id": lease.task_id,
            "elapsed_seconds": elapsed,
            "attempt": int(lease.task.get("attempts", 0)) + 1,
            "worker": self.worker_id,
        }
        self.leases_lost += 1
        self.lease_lost_events.append(event)
        del self.lease_lost_events[:-MAX_LEASE_LOST_EVENTS]
        self._m_lease_lost.inc()
        for sink in self.sinks:
            sink.emit({"record": "worker.lease_lost", **event})

    def _emit_task(self, task_id: str, outcome: str, elapsed: float) -> None:
        self._m_tasks.inc(labels=(outcome,))
        self._m_task_seconds.observe(elapsed)
        for sink in self.sinks:
            sink.emit(
                {
                    "record": "worker.task",
                    "task_id": task_id,
                    "outcome": outcome,
                    "seconds": elapsed,
                    "worker": self.worker_id,
                }
            )

    def run_one(self) -> bool:
        """Claim and finish (or fail) at most one task; ``True`` if claimed."""
        lease = self.queue.claim(self.worker_id)
        if lease is None:
            return False
        if self._health is not None:
            self._health.in_flight = lease.task_id
            self._health.beat(force=True)
        start = time.perf_counter()
        try:
            with _Heartbeat(lease, self.heartbeat_interval) as heartbeat:
                envelope = execute_task(
                    lease.task, cache_dir=self.cache_dir, worker_id=self.worker_id
                )
            if heartbeat.lost:
                self._record_lease_lost(lease, time.perf_counter() - start)
                envelope["lease_lost"] = True
        except KeyboardInterrupt:
            # Put the shard straight back rather than waiting out the TTL.
            lease.fail("interrupted")
            raise
        except Exception:
            self.tasks_failed += 1
            lease.fail(traceback.format_exc(limit=20))
            self._emit_task(lease.task_id, "failed", time.perf_counter() - start)
            return True
        finally:
            if self._health is not None:
                self._health.in_flight = None
        lease.complete(envelope)
        self.tasks_done += 1
        self._emit_task(lease.task_id, "done", time.perf_counter() - start)
        return True

    def run(
        self,
        *,
        max_tasks: Optional[int] = None,
        idle_timeout: Optional[float] = None,
        poll_interval: float = 0.2,
        on_task: Optional[Callable[[int], None]] = None,
        should_stop: Optional[Callable[[], bool]] = None,
    ) -> int:
        """Drain the queue; returns the number of tasks processed.

        Runs until ``max_tasks`` tasks were processed, the queue stayed
        empty for ``idle_timeout`` seconds, or ``should_stop()`` turns
        true — whichever comes first (``None`` limits mean forever, the
        daemon default).  Between claims the worker also sweeps expired
        peers' leases, so a fleet self-heals without a coordinator.

        While draining, the worker refreshes a health snapshot (pid,
        uptime, in-flight task, lease-lost events, metrics) under the
        queue's ``health/`` directory — ``repro status`` reads it live.
        A clean exit removes the snapshot; a crash leaves it to go stale.
        """
        if self._health_dir is not None:
            self._health = HealthReporter(
                self._health_dir,
                component="worker",
                component_id=self.worker_id,
                registry=self.metrics,
            )
        processed = 0
        idle_since: Optional[float] = None
        try:
            while True:
                if self._health is not None and self._health.due():
                    self._health.extra["lease_lost_events"] = list(
                        self.lease_lost_events
                    )
                    self._health.extra["queue"] = self.queue.stats()
                    self._health.beat()
                if should_stop is not None and should_stop():
                    return processed
                if max_tasks is not None and processed >= max_tasks:
                    return processed
                self.queue.recover_expired()
                if self.run_one():
                    processed += 1
                    idle_since = None
                    if on_task is not None:
                        on_task(processed)
                    continue
                now = time.time()
                if idle_since is None:
                    idle_since = now
                if idle_timeout is not None and now - idle_since >= idle_timeout:
                    return processed
                time.sleep(poll_interval)
        finally:
            if self._health is not None:
                self._health.close()
                self._health = None
