"""Distributed multi-host execution: queue, protocol, worker, coordinator.

The subsystem that takes the single-box reproduction past one machine::

    # terminal 1..N (any host mounting the shared directory)
    python -m repro worker /shared/queue

    # terminal 0
    python -m repro dispatch specs.json --queue-dir /shared/queue --wait

The broker is a plain shared directory (:mod:`repro.cluster.queue` —
durable task leases via atomic renames, heartbeat renewal, bounded
retries, dead-letter state).  Work units and results are JSON envelopes
(:mod:`repro.cluster.protocol`) routed through the content-addressed
result cache, so revisited shards are served, not re-run.  Workers
(:mod:`repro.cluster.worker`) are crash-safe claim/execute/ack loops;
the coordinator (:mod:`repro.cluster.coordinator`) shards spec grids or
dataset runs, recovers stragglers and reassembles results byte-identical
to the serial executor — also available as the registered
``"multihost"`` executor kind and through
``Session.run_many`` via ``ExecSpec(executor="multihost", queue_dir=...)``.
"""

from repro.cluster.protocol import (
    KIND_EXPERIMENT,
    KIND_SEQUENCE,
    RESULT_FORMAT,
    TASK_FORMAT,
    SequenceResultStore,
    experiment_task,
    sequence_task,
)
from repro.cluster.queue import (
    DEFAULT_LEASE_TTL,
    DEFAULT_MAX_ATTEMPTS,
    FileWorkQueue,
    Lease,
    default_worker_id,
)
from repro.cluster.worker import Worker, default_cache_dir, execute_task
from repro.cluster.coordinator import (
    ClusterTaskError,
    ClusterTimeout,
    MultiHostExecutor,
    dispatch_specs,
)

__all__ = [
    "KIND_EXPERIMENT",
    "KIND_SEQUENCE",
    "RESULT_FORMAT",
    "TASK_FORMAT",
    "SequenceResultStore",
    "experiment_task",
    "sequence_task",
    "DEFAULT_LEASE_TTL",
    "DEFAULT_MAX_ATTEMPTS",
    "FileWorkQueue",
    "Lease",
    "default_worker_id",
    "Worker",
    "default_cache_dir",
    "execute_task",
    "ClusterTaskError",
    "ClusterTimeout",
    "MultiHostExecutor",
    "dispatch_specs",
]
