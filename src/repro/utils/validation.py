"""Lightweight argument validation helpers.

These raise :class:`ValueError`/:class:`TypeError` with messages that name the
offending argument, following numpy/scikit-learn conventions.  They are used
at public API boundaries only; internal hot loops stay validation-free.
"""

from __future__ import annotations

from typing import Optional, Sequence, Tuple

import numpy as np


def check_positive(value: float, name: str) -> float:
    """Raise unless ``value`` is a finite number > 0."""
    value = float(value)
    if not np.isfinite(value) or value <= 0:
        raise ValueError(f"{name} must be a finite positive number, got {value!r}")
    return value


def check_nonnegative(value: float, name: str) -> float:
    """Raise unless ``value`` is a finite number >= 0."""
    value = float(value)
    if not np.isfinite(value) or value < 0:
        raise ValueError(f"{name} must be a finite non-negative number, got {value!r}")
    return value


def check_probability(value: float, name: str) -> float:
    """Raise unless ``value`` lies in [0, 1]."""
    value = float(value)
    if not (0.0 <= value <= 1.0):
        raise ValueError(f"{name} must lie in [0, 1], got {value!r}")
    return value


def check_in_range(value: float, name: str, low: float, high: float, *, inclusive: bool = True) -> float:
    """Raise unless ``value`` lies in [low, high] (or (low, high) if not inclusive)."""
    value = float(value)
    ok = (low <= value <= high) if inclusive else (low < value < high)
    if not ok:
        bracket = "[]" if inclusive else "()"
        raise ValueError(
            f"{name} must lie in {bracket[0]}{low}, {high}{bracket[1]}, got {value!r}"
        )
    return value


def check_finite(arr: np.ndarray, name: str) -> np.ndarray:
    """Raise unless all elements of ``arr`` are finite."""
    arr = np.asarray(arr)
    if arr.size and not np.all(np.isfinite(arr)):
        raise ValueError(f"{name} contains non-finite values")
    return arr


def check_shape(arr: np.ndarray, name: str, shape: Tuple[Optional[int], ...]) -> np.ndarray:
    """Raise unless ``arr`` matches ``shape`` (``None`` entries are wildcards).

    Examples
    --------
    >>> check_shape(np.zeros((3, 4)), "boxes", (None, 4)).shape
    (3, 4)
    """
    arr = np.asarray(arr)
    if arr.ndim != len(shape):
        raise ValueError(f"{name} must have {len(shape)} dimensions, got {arr.ndim}")
    for i, (actual, expected) in enumerate(zip(arr.shape, shape)):
        if expected is not None and actual != expected:
            raise ValueError(
                f"{name} has shape {arr.shape}, expected axis {i} to be {expected}"
            )
    return arr
