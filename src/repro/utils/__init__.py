"""Shared utilities: deterministic RNG management and argument validation."""

from repro.utils.rng import RngFactory, as_generator, spawn_seeds
from repro.utils.validation import (
    check_finite,
    check_in_range,
    check_nonnegative,
    check_positive,
    check_probability,
    check_shape,
)

__all__ = [
    "RngFactory",
    "as_generator",
    "spawn_seeds",
    "check_finite",
    "check_in_range",
    "check_nonnegative",
    "check_positive",
    "check_probability",
    "check_shape",
]
